# Build / verify entry points. `make verify` is the tier-1 gate plus the
# race detector; CI should run exactly that.

GO ?= go

# Headline benchmarks captured in BENCH_<n>.json: the parallel-runner
# sweep, the engine fan-out, a full end-to-end artifact, plus the
# per-subsystem micro-benches (memsim access path, cpusim step loop,
# cluster discrete-event run, event-queue backends). BenchmarkCalibration
# is the host-speed canary bench-gate normalizes by — keep it in every
# captured point.
BENCH_REGEX ?= BenchmarkSweepParallel|BenchmarkEngineCells|BenchmarkFig13EndToEnd|BenchmarkEmbeddingKernel|BenchmarkHierarchyAccess|BenchmarkCacheLookupHit|BenchmarkCacheFillEvict|BenchmarkAccessBatch|BenchmarkAccessSequential|BenchmarkCoreStepLoop|BenchmarkClusterSimulate|BenchmarkOpenLoopParallel|BenchmarkChaosOpenLoop|BenchmarkHetSched|BenchmarkEventQueue|BenchmarkCalibration
BENCH_PKGS  ?= . ./internal/memsim ./internal/cpusim ./internal/cluster ./internal/hetsched ./internal/eventq
BENCHTIME   ?= 2s
BENCH_N     ?= 0
# Runs per benchmark in a capture; benchjson folds repeats to the
# fastest run, rejecting episodic noisy-neighbor slowdowns.
BENCH_COUNT ?= 3

.PHONY: build vet test race bench bench-json bench-compare bench-gate golden golden-update fuzz verify

# Per-target budget for `make fuzz` (matches CI's fuzz-smoke job).
FUZZTIME ?= 20s

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The concurrency gate: the deterministic parallel runner, the engine
# cell fan-out, and the scheduler all run under the race detector. Must
# pass clean — a data race here would void the byte-identical-output
# guarantee dlrmbench -workers rests on.
# -timeout 20m: the exp package's registry-wide suites run ~8 minutes
# under the race detector on a 1-CPU host, past the 10m default.
race:
	$(GO) test -race -timeout 20m ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# Emit the perf-trajectory point BENCH_$(BENCH_N).json (plus the raw
# go-bench text as BENCH_$(BENCH_N).bench for benchstat). Run on an idle
# machine; bump BENCH_N per committed point (0 = pre-optimization seed).
bench-json:
	$(GO) test -run '^$$' -bench '$(BENCH_REGEX)' -benchmem -benchtime $(BENCHTIME) -count $(BENCH_COUNT) $(BENCH_PKGS) | tee BENCH_$(BENCH_N).bench | $(GO) run ./cmd/benchjson -out BENCH_$(BENCH_N).json
	@echo "wrote BENCH_$(BENCH_N).json"

# Compare two committed trajectory points. Uses benchstat on the raw
# .bench files when installed; always prints the dependency-free
# benchjson ratio table.
bench-compare:
	@if command -v benchstat >/dev/null 2>&1; then benchstat BENCH_$(OLD).bench BENCH_$(NEW).bench; fi
	$(GO) run ./cmd/benchjson -compare BENCH_$(OLD).json BENCH_$(NEW).json

# Perf-regression gate on the committed trajectory: compare the two most
# recent BENCH_<n>.json points and fail on any >$(BENCH_GATE_PCT)%
# regression in ns/op (normalized by the BenchmarkCalibration host-speed
# canary — successive points are captured on hosts whose effective speed
# drifts) or in allocs/op (raw; allocation counts don't drift). CI runs
# this on every push, so a new trajectory point must pass the gate
# against its predecessor before it is committed. Points that predate
# BenchmarkCalibration (BENCH_0/BENCH_1) can't be ns-gated — benchjson
# skips the ns gate and still gates allocs when the canary is missing
# from the older file (DESIGN.md §13.4).
BENCH_GATE_PCT ?= 10
bench-gate:
	@set -e; \
	files=$$(ls BENCH_[0-9]*.json 2>/dev/null | sort -t_ -k2 -n); \
	n=$$(echo $$files | wc -w); \
	if [ $$n -lt 2 ]; then echo "bench-gate: fewer than two committed BENCH_<n>.json points; nothing to gate"; exit 0; fi; \
	old=$$(echo $$files | awk '{print $$(NF-1)}'); new=$$(echo $$files | awk '{print $$NF}'); \
	echo "bench-gate: $$old -> $$new (threshold $(BENCH_GATE_PCT)%)"; \
	$(GO) run ./cmd/benchjson -compare -gate $(BENCH_GATE_PCT) -calibrate 'BenchmarkCalibration' $$old $$new

# Regenerate every golden regression file after a DELIBERATE change to
# simulator arithmetic (review the diff — this is the regression
# baseline). All pinned quantities live in internal/exp/testdata/golden.json,
# so one -update run covers the engine, serving, cluster, and hetsched
# tiers. `golden` is the historical alias.
golden-update:
	$(GO) test ./internal/exp -run TestGoldenRegression -update

golden: golden-update

# Fuzz the structural invariants: cache residency/accounting, shard-plan
# row ownership, seed-splitting collision freedom, arrival-stream
# monotonicity/determinism, and phase-graph validation-vs-scheduling
# agreement. Each target gets FUZZTIME; the checked-in corpora under
# testdata/fuzz run on every plain `make test` as ordinary seed cases.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzCacheAccess -fuzztime $(FUZZTIME) ./internal/memsim
	$(GO) test -run '^$$' -fuzz FuzzShardPlan -fuzztime $(FUZZTIME) ./internal/cluster
	$(GO) test -run '^$$' -fuzz FuzzChaosSchedule -fuzztime $(FUZZTIME) ./internal/cluster
	$(GO) test -run '^$$' -fuzz FuzzSplitSeed -fuzztime $(FUZZTIME) ./internal/stats
	$(GO) test -run '^$$' -fuzz FuzzArrivalStream -fuzztime $(FUZZTIME) ./internal/traffic
	$(GO) test -run '^$$' -fuzz FuzzPhaseGraph -fuzztime $(FUZZTIME) ./internal/hetsched
	$(GO) test -run '^$$' -fuzz FuzzEventOrder -fuzztime $(FUZZTIME) ./internal/eventq
	$(GO) test -run '^$$' -fuzz FuzzWheelGeometry -fuzztime $(FUZZTIME) ./internal/eventq

verify: build vet test race
