# Build / verify entry points. `make verify` is the tier-1 gate plus the
# race detector; CI should run exactly that.

GO ?= go

# Headline benchmarks captured in BENCH_<n>.json: the parallel-runner
# sweep, the engine fan-out, a full end-to-end artifact, plus the
# per-subsystem micro-benches (memsim access path, cpusim step loop,
# cluster discrete-event run).
BENCH_REGEX ?= BenchmarkSweepParallel|BenchmarkEngineCells|BenchmarkFig13EndToEnd|BenchmarkEmbeddingKernel|BenchmarkHierarchyAccess|BenchmarkCacheLookupHit|BenchmarkCacheFillEvict|BenchmarkCoreStepLoop|BenchmarkClusterSimulate|BenchmarkHetSched
BENCH_PKGS  ?= . ./internal/memsim ./internal/cpusim ./internal/cluster ./internal/hetsched
BENCHTIME   ?= 2s
BENCH_N     ?= 0

.PHONY: build vet test race bench bench-json bench-compare golden golden-update fuzz verify

# Per-target budget for `make fuzz` (matches CI's fuzz-smoke job).
FUZZTIME ?= 20s

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The concurrency gate: the deterministic parallel runner, the engine
# cell fan-out, and the scheduler all run under the race detector. Must
# pass clean — a data race here would void the byte-identical-output
# guarantee dlrmbench -workers rests on.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# Emit the perf-trajectory point BENCH_$(BENCH_N).json (plus the raw
# go-bench text as BENCH_$(BENCH_N).bench for benchstat). Run on an idle
# machine; bump BENCH_N per committed point (0 = pre-optimization seed).
bench-json:
	$(GO) test -run '^$$' -bench '$(BENCH_REGEX)' -benchmem -benchtime $(BENCHTIME) -count 1 $(BENCH_PKGS) | tee BENCH_$(BENCH_N).bench | $(GO) run ./cmd/benchjson -out BENCH_$(BENCH_N).json
	@echo "wrote BENCH_$(BENCH_N).json"

# Compare two committed trajectory points. Uses benchstat on the raw
# .bench files when installed; always prints the dependency-free
# benchjson ratio table.
bench-compare:
	@if command -v benchstat >/dev/null 2>&1; then benchstat BENCH_$(OLD).bench BENCH_$(NEW).bench; fi
	$(GO) run ./cmd/benchjson -compare BENCH_$(OLD).json BENCH_$(NEW).json

# Regenerate every golden regression file after a DELIBERATE change to
# simulator arithmetic (review the diff — this is the regression
# baseline). All pinned quantities live in internal/exp/testdata/golden.json,
# so one -update run covers the engine, serving, cluster, and hetsched
# tiers. `golden` is the historical alias.
golden-update:
	$(GO) test ./internal/exp -run TestGoldenRegression -update

golden: golden-update

# Fuzz the structural invariants: cache residency/accounting, shard-plan
# row ownership, seed-splitting collision freedom, arrival-stream
# monotonicity/determinism, and phase-graph validation-vs-scheduling
# agreement. Each target gets FUZZTIME; the checked-in corpora under
# testdata/fuzz run on every plain `make test` as ordinary seed cases.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzCacheAccess -fuzztime $(FUZZTIME) ./internal/memsim
	$(GO) test -run '^$$' -fuzz FuzzShardPlan -fuzztime $(FUZZTIME) ./internal/cluster
	$(GO) test -run '^$$' -fuzz FuzzSplitSeed -fuzztime $(FUZZTIME) ./internal/stats
	$(GO) test -run '^$$' -fuzz FuzzArrivalStream -fuzztime $(FUZZTIME) ./internal/traffic
	$(GO) test -run '^$$' -fuzz FuzzPhaseGraph -fuzztime $(FUZZTIME) ./internal/hetsched

verify: build vet test race
