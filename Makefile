# Build / verify entry points. `make verify` is the tier-1 gate plus the
# race detector; CI should run exactly that.

GO ?= go

.PHONY: build vet test race bench golden verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The concurrency gate: the deterministic parallel runner, the engine
# cell fan-out, and the scheduler all run under the race detector. Must
# pass clean — a data race here would void the byte-identical-output
# guarantee dlrmbench -workers rests on.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# Regenerate the golden headline quantities after a DELIBERATE change to
# simulator arithmetic (review the diff — this is the regression baseline).
golden:
	$(GO) test ./internal/exp -run TestGoldenRegression -update

verify: build vet test race
