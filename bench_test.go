// Package-level benchmarks: one testing.B benchmark per paper artifact
// (table or figure). Each bench regenerates its artifact at a reduced
// scale and reports the artifact's headline quantity as a custom metric
// (speedups, hit rates, percentile latencies), so `go test -bench=.`
// doubles as a quick-look reproduction of the whole evaluation.
//
// The full-fidelity tables come from `go run ./cmd/dlrmbench -exp all`;
// these benches trade scale for wall-clock so the suite stays fast.
package main

import (
	"context"
	"runtime"
	"testing"
	"time"

	"dlrmsim/internal/core"
	"dlrmsim/internal/dlrm"
	"dlrmsim/internal/exp"
	"dlrmsim/internal/platform"
	"dlrmsim/internal/reuse"
	"dlrmsim/internal/serve"
	"dlrmsim/internal/trace"
)

// benchContext builds a small shared experiment context per bench run.
func benchContext() *exp.Context {
	return exp.NewContext(exp.Config{
		Scale:               20,
		BatchSize:           16,
		Batches:             1,
		Cores:               2,
		Seed:                1,
		BandwidthIterations: 2,
	})
}

// runExperiment drives one registered experiment b.N times.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := exp.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := benchContext()
		if _, err := e.Run(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig01Breakdown(b *testing.B)      { runExperiment(b, "fig1") }
func BenchmarkFig04DatasetSweep(b *testing.B)   { runExperiment(b, "fig4") }
func BenchmarkFig05Hotness(b *testing.B)        { runExperiment(b, "fig5") }
func BenchmarkFig07ReuseDistance(b *testing.B)  { runExperiment(b, "fig7") }
func BenchmarkFig08Scaling(b *testing.B)        { runExperiment(b, "fig8") }
func BenchmarkFig10aCompilerPF(b *testing.B)    { runExperiment(b, "fig10a") }
func BenchmarkFig10bPFDistance(b *testing.B)    { runExperiment(b, "fig10b") }
func BenchmarkFig10cPFAmount(b *testing.B)      { runExperiment(b, "fig10c") }
func BenchmarkFig12EmbeddingStage(b *testing.B) { runExperiment(b, "fig12") }
func BenchmarkFig13EndToEnd(b *testing.B)       { runExperiment(b, "fig13") }
func BenchmarkFig14MixedModel(b *testing.B)     { runExperiment(b, "fig14") }
func BenchmarkFig15L1DMetrics(b *testing.B)     { runExperiment(b, "fig15") }
func BenchmarkFig16Platforms(b *testing.B)      { runExperiment(b, "fig16") }
func BenchmarkFig17TailLatency(b *testing.B)    { runExperiment(b, "fig17") }
func BenchmarkTable4BatchTime(b *testing.B)     { runExperiment(b, "tab4") }
func BenchmarkExt1PrefetchHint(b *testing.B)    { runExperiment(b, "ext1") }
func BenchmarkExt2BatchSize(b *testing.B)       { runExperiment(b, "ext2") }
func BenchmarkExt3ReuseClasses(b *testing.B)    { runExperiment(b, "ext3") }
func BenchmarkExt4NUMAPlacement(b *testing.B)   { runExperiment(b, "ext4") }
func BenchmarkExt5Quantization(b *testing.B)    { runExperiment(b, "ext5") }
func BenchmarkExt6ModelFamilies(b *testing.B)   { runExperiment(b, "ext6") }
func BenchmarkExt7CrossValidation(b *testing.B) { runExperiment(b, "ext7") }
func BenchmarkExt8DynamicBatching(b *testing.B) { runExperiment(b, "ext8") }

// --- parallel-runner benches --------------------------------------------

// sweepIDs is a representative slice of the evaluation grid: the dense
// scheme matrices whose cells the parallel runner overlaps.
var sweepIDs = []string{"fig12", "fig13", "fig14", "fig15", "tab4"}

// BenchmarkSweepSequential times the slice on the strictly sequential
// runner path (dlrmbench -workers 1).
func BenchmarkSweepSequential(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunAll(context.Background(), benchContext(), sweepIDs, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepParallel times the same slice on a full GOMAXPROCS pool
// and reports the wall-clock speedup over the sequential runner as a
// custom metric. The output tables are byte-identical either way (see
// internal/exp/runner_test.go); only the wall-clock moves, and only as
// far as the host's core count allows (parallel-x ≈ 1.0 on one CPU).
func BenchmarkSweepParallel(b *testing.B) {
	workers := runtime.GOMAXPROCS(0)
	b.ReportAllocs()
	var seq, par time.Duration
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if _, err := exp.RunAll(context.Background(), benchContext(), sweepIDs, 1); err != nil {
			b.Fatal(err)
		}
		seq += time.Since(t0)
		t0 = time.Now()
		if _, err := exp.RunAll(context.Background(), benchContext(), sweepIDs, workers); err != nil {
			b.Fatal(err)
		}
		par += time.Since(t0)
	}
	if par > 0 {
		b.ReportMetric(seq.Seconds()/par.Seconds(), "parallel-x")
	}
	b.ReportMetric(float64(workers), "workers")
}

// BenchmarkEngineCells times the engine-level fan-out primitive on a
// scheme × hotness grid, sequential vs pooled.
func BenchmarkEngineCells(b *testing.B) {
	var cells []core.Options
	for _, s := range []core.Scheme{core.Baseline, core.SWPF, core.MPHT, core.Integrated} {
		for _, h := range []trace.Hotness{trace.HighHot, trace.MediumHot, trace.LowHot} {
			cells = append(cells, benchOptions(s, h))
		}
	}
	for _, bc := range []struct {
		name    string
		workers int
	}{{"workers1", 1}, {"workersAll", runtime.GOMAXPROCS(0)}} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.RunCells(context.Background(), cells, bc.workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- headline-metric benches -------------------------------------------
// These report the reproduction's key ratios as custom metrics.

func benchOptions(s core.Scheme, h trace.Hotness) core.Options {
	return core.Options{
		Model:               dlrm.RM2Small().Scaled(16),
		Hotness:             h,
		Scheme:              s,
		BatchSize:           16,
		Cores:               2,
		Seed:                1,
		BandwidthIterations: 2,
	}
}

// BenchmarkHeadlineSpeedups reports the Fig. 13-style speedups of each
// design over baseline as custom metrics.
func BenchmarkHeadlineSpeedups(b *testing.B) {
	b.ReportAllocs()
	var base core.Report
	var err error
	speedups := map[string]float64{}
	for i := 0; i < b.N; i++ {
		base, err = core.Run(benchOptions(core.Baseline, trace.LowHot))
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range []core.Scheme{core.SWPF, core.MPHT, core.Integrated} {
			rep, err := core.Run(benchOptions(s, trace.LowHot))
			if err != nil {
				b.Fatal(err)
			}
			speedups[s.String()] = rep.Speedup(base)
		}
	}
	b.ReportMetric(speedups["SW-PF"], "swpf-x")
	b.ReportMetric(speedups["MP-HT"], "mpht-x")
	b.ReportMetric(speedups["Integrated"], "integrated-x")
}

// BenchmarkEmbeddingKernel measures raw simulator throughput on the
// embedding stage (simulated ops/sec of the host, not simulated time).
func BenchmarkEmbeddingKernel(b *testing.B) {
	opts := benchOptions(core.Baseline, trace.MediumHot)
	opts.EmbeddingOnly = true
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReuseAnalyzer measures stack-distance throughput.
func BenchmarkReuseAnalyzer(b *testing.B) {
	ds, err := trace.NewDataset(trace.Config{
		Hotness: trace.MediumHot, Rows: 50_000, Tables: 2,
		BatchSize: 16, LookupsPerSample: 20, Batches: 2, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	cpu := platform.CascadeLake()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := reuse.Run(ds, reuse.ModelConfig{
			EmbeddingDim: 128, Cores: 2,
			CacheBytes: []int64{cpu.Mem.L1.SizeBytes, cpu.Mem.L2.SizeBytes, cpu.Mem.L3.SizeBytes},
			CacheNames: []string{"L1D", "L2", "L3"},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeSimulator measures the queueing simulator's throughput
// and reports the p95 under a representative load.
func BenchmarkServeSimulator(b *testing.B) {
	b.ReportAllocs()
	var p95 float64
	for i := 0; i < b.N; i++ {
		res, err := serve.Simulate(serve.Config{
			Cores: 8, MeanArrivalMs: 1.5, ServiceMs: 10, Requests: 2000, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		p95 = res.P95
	}
	b.ReportMetric(p95, "p95-ms")
}

// --- ablation benches (DESIGN.md §5 design choices) ----------------------

// BenchmarkAblationFillBuffers sweeps the shared fill-buffer budget: the
// design choice that separates prefetch-side MLP from demand-side MLP.
func BenchmarkAblationFillBuffers(b *testing.B) {
	for _, fb := range []int{8, 13, 20} {
		fb := fb
		b.Run(map[int]string{8: "fb8", 13: "fb13", 20: "fb20"}[fb], func(b *testing.B) {
			b.ReportAllocs()
			var spd float64
			for i := 0; i < b.N; i++ {
				cpu := platform.CascadeLake()
				cpu.Core.FillBuffers = fb
				if cpu.Core.DemandMLP > fb {
					cpu.Core.DemandMLP = fb
				}
				ob := benchOptions(core.Baseline, trace.LowHot)
				ob.CPU = cpu
				os := benchOptions(core.SWPF, trace.LowHot)
				os.CPU = cpu
				base, err := core.Run(ob)
				if err != nil {
					b.Fatal(err)
				}
				swpf, err := core.Run(os)
				if err != nil {
					b.Fatal(err)
				}
				spd = swpf.Speedup(base)
			}
			b.ReportMetric(spd, "swpf-x")
		})
	}
}

// BenchmarkAblationBandwidthFixedPoint compares 1 vs 3 fixed-point
// iterations of the DRAM utilization solve.
func BenchmarkAblationBandwidthFixedPoint(b *testing.B) {
	for _, iters := range []int{1, 3} {
		iters := iters
		b.Run(map[int]string{1: "iters1", 3: "iters3"}[iters], func(b *testing.B) {
			b.ReportAllocs()
			var ms float64
			for i := 0; i < b.N; i++ {
				o := benchOptions(core.Baseline, trace.LowHot)
				o.BandwidthIterations = iters
				rep, err := core.Run(o)
				if err != nil {
					b.Fatal(err)
				}
				ms = rep.BatchLatencyMs
			}
			b.ReportMetric(ms, "batch-ms")
		})
	}
}

// BenchmarkAblationHWPrefetchDegree sweeps the hardware stride
// prefetcher's aggressiveness.
func BenchmarkAblationHWPrefetchDegree(b *testing.B) {
	for _, deg := range []int{1, 2, 4} {
		deg := deg
		b.Run(map[int]string{1: "deg1", 2: "deg2", 4: "deg4"}[deg], func(b *testing.B) {
			b.ReportAllocs()
			var ms float64
			for i := 0; i < b.N; i++ {
				cpu := platform.CascadeLake()
				cpu.Mem.L2PrefetchDegree = deg
				o := benchOptions(core.Baseline, trace.MediumHot)
				o.CPU = cpu
				rep, err := core.Run(o)
				if err != nil {
					b.Fatal(err)
				}
				ms = rep.BatchLatencyMs
			}
			b.ReportMetric(ms, "batch-ms")
		})
	}
}
