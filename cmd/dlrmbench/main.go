// Command dlrmbench regenerates the paper's evaluation artifacts (figures
// and tables) as text tables.
//
// Usage:
//
//	dlrmbench -exp all                 # every artifact, quick scale
//	dlrmbench -exp fig13,fig15         # selected artifacts
//	dlrmbench -exp tab4 -scale 1       # paper-scale model (slow)
//	dlrmbench -list                    # list experiment IDs
//
// -scale divides model dimensions (tables, lookups, rows, MLP widths);
// speedup ratios are stable under scaling, absolute milliseconds are not.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dlrmsim/internal/exp"
)

func main() {
	var (
		expFlag   = flag.String("exp", "all", "comma-separated experiment IDs, or 'all'")
		scale     = flag.Int("scale", 8, "model scale-down divisor (1 = paper scale)")
		cores     = flag.Int("cores", 0, "override multi-core core count (0 = all platform cores)")
		batch     = flag.Int("batch", 64, "batch size")
		batches   = flag.Int("batches", 1, "measured batches per core")
		seed      = flag.Uint64("seed", 1, "random seed")
		bwIters   = flag.Int("bwiters", 2, "DRAM bandwidth fixed-point iterations")
		format    = flag.String("format", "text", "output format: text | csv")
		list      = flag.Bool("list", false, "list experiment IDs and exit")
		quietTime = flag.Bool("notime", false, "suppress per-experiment timing")
	)
	flag.Parse()

	if *list {
		for _, id := range exp.IDs() {
			e, _ := exp.Get(id)
			fmt.Printf("%-8s %s\n", id, e.Title)
		}
		return
	}

	ids := exp.IDs()
	if *expFlag != "all" {
		ids = strings.Split(*expFlag, ",")
	}
	x := exp.NewContext(exp.Config{
		Scale:               *scale,
		BatchSize:           *batch,
		Batches:             *batches,
		Cores:               *cores,
		Seed:                *seed,
		BandwidthIterations: *bwIters,
	})
	if *format == "text" {
		fmt.Printf("dlrmbench: scale=1/%d batch=%d batches=%d seed=%d\n\n",
			x.Cfg.Scale, x.Cfg.BatchSize, x.Cfg.Batches, x.Cfg.Seed)
	}
	for _, id := range ids {
		e, err := exp.Get(strings.TrimSpace(id))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		start := time.Now()
		tbl, err := e.Run(x)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dlrmbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		render := tbl.Render
		if *format == "csv" {
			render = tbl.RenderCSV
		}
		if err := render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if !*quietTime && *format == "text" {
			fmt.Printf("(%s completed in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
		}
	}
}
