// Command dlrmbench regenerates the paper's evaluation artifacts (figures
// and tables) as text tables.
//
// Usage:
//
//	dlrmbench -exp all                 # every artifact, quick scale
//	dlrmbench -exp fig13,fig15         # selected artifacts
//	dlrmbench -exp tab4 -scale 1       # paper-scale model (slow)
//	dlrmbench -exp all -workers 1      # sequential (default: all CPUs)
//	dlrmbench -list                    # list experiment IDs
//
// -scale divides model dimensions (tables, lookups, rows, MLP widths);
// speedup ratios are stable under scaling, absolute milliseconds are not.
//
// -workers fans the sweep's design points out over a goroutine pool. The
// tables are byte-identical for every worker count (every design point is
// a pure function of its options and results are collected in experiment
// order); -workers 1 runs strictly sequentially on one goroutine and
// prints per-experiment timing as each artifact finishes.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"dlrmsim/internal/exp"
	"dlrmsim/internal/prof"
)

func main() {
	var (
		expFlag   = flag.String("exp", "all", "comma-separated experiment IDs, or 'all'")
		scale     = flag.Int("scale", 8, "model scale-down divisor (1 = paper scale)")
		cores     = flag.Int("cores", 0, "override multi-core core count (0 = all platform cores)")
		batch     = flag.Int("batch", 64, "batch size")
		batches   = flag.Int("batches", 1, "measured batches per core")
		seed      = flag.Uint64("seed", 1, "random seed")
		bwIters   = flag.Int("bwiters", 2, "DRAM bandwidth fixed-point iterations")
		workers   = flag.Int("workers", runtime.NumCPU(), "parallel simulation workers (1 = sequential)")
		format    = flag.String("format", "text", "output format: text | csv")
		list      = flag.Bool("list", false, "list experiment IDs and exit")
		quietTime = flag.Bool("notime", false, "suppress timing output")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *list {
		for _, id := range exp.IDs() {
			e, _ := exp.Get(id)
			fmt.Printf("%-8s %s\n", id, e.Title)
		}
		return
	}

	ids := exp.IDs()
	if *expFlag != "all" {
		ids = strings.Split(*expFlag, ",")
	}
	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fail(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "dlrmbench:", err)
		}
	}()
	x := exp.NewContext(exp.Config{
		Scale:               *scale,
		BatchSize:           *batch,
		Batches:             *batches,
		Cores:               *cores,
		Seed:                *seed,
		BandwidthIterations: *bwIters,
	})
	if *format == "text" {
		fmt.Printf("dlrmbench: scale=1/%d batch=%d batches=%d seed=%d\n\n",
			x.Cfg.Scale, x.Cfg.BatchSize, x.Cfg.Batches, x.Cfg.Seed)
	}
	render := func(tbl *exp.Table) {
		r := tbl.Render
		if *format == "csv" {
			r = tbl.RenderCSV
		}
		if err := r(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	ctx := context.Background()
	if *workers == 1 {
		// Sequential path: render and time each artifact as it completes.
		for _, id := range ids {
			start := time.Now()
			tables, err := exp.RunAll(ctx, x, []string{id}, 1)
			if err != nil {
				fail(err)
			}
			render(tables[0])
			if !*quietTime && *format == "text" {
				fmt.Printf("(%s completed in %.1fs)\n\n", tables[0].ID, time.Since(start).Seconds())
			}
		}
		return
	}
	start := time.Now()
	tables, err := exp.RunAll(ctx, x, ids, *workers)
	if err != nil {
		fail(err)
	}
	for _, tbl := range tables {
		render(tbl)
	}
	if !*quietTime && *format == "text" {
		fmt.Printf("(%d experiments completed in %.1fs with %d workers)\n",
			len(tables), time.Since(start).Seconds(), *workers)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dlrmbench:", err)
	if strings.Contains(err.Error(), "unknown experiment") {
		os.Exit(2)
	}
	os.Exit(1)
}
