// Command dlrmbench regenerates the paper's evaluation artifacts (figures
// and tables) as text tables.
//
// Usage:
//
//	dlrmbench -exp all                 # every artifact, quick scale
//	dlrmbench -exp fig13,fig15         # selected artifacts
//	dlrmbench -exp tab4 -scale 1       # paper-scale model (slow)
//	dlrmbench -exp all -workers 1      # sequential (default: all CPUs)
//	dlrmbench -exp all -checkpoint dir # persist cells; an interrupted
//	                                   # re-run resumes where it stopped
//	dlrmbench -exp all -keepgoing      # complete the sweep past failures
//	dlrmbench -list                    # list experiment IDs
//
// -scale divides model dimensions (tables, lookups, rows, MLP widths);
// speedup ratios are stable under scaling, absolute milliseconds are not.
//
// -workers fans the sweep's design points out over a goroutine pool. The
// tables are byte-identical for every worker count (every design point is
// a pure function of its options and results are collected in experiment
// order); -workers 1 runs strictly sequentially on one goroutine and
// prints per-experiment timing as each artifact finishes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"dlrmsim/internal/check"
	"dlrmsim/internal/cluster"
	"dlrmsim/internal/exp"
	"dlrmsim/internal/prof"
)

func main() {
	var (
		expFlag   = flag.String("exp", "all", "comma-separated experiment IDs, or 'all'")
		scale     = flag.Int("scale", 8, "model scale-down divisor (1 = paper scale)")
		cores     = flag.Int("cores", 0, "override multi-core core count (0 = all platform cores)")
		batch     = flag.Int("batch", 64, "batch size")
		batches   = flag.Int("batches", 1, "measured batches per core")
		seed      = flag.Uint64("seed", 1, "random seed")
		bwIters   = flag.Int("bwiters", 2, "DRAM bandwidth fixed-point iterations")
		workers   = flag.Int("workers", runtime.NumCPU(), "parallel simulation workers (1 = sequential)")
		shardW    = flag.Int("shard-workers", 1, "logical processes per cluster simulation (conservative parallel DES; 1 = sequential, byte-identical at any value)")
		format    = flag.String("format", "text", "output format: text | csv")
		list      = flag.Bool("list", false, "list experiment IDs and exit")
		quietTime = flag.Bool("notime", false, "suppress timing output")
		ckptDir   = flag.String("checkpoint", "", "persist completed design points to this directory and resume from it")
		resume    = flag.Bool("resume", true, "with -checkpoint: reuse cells already in the store (false = recompute and overwrite)")
		keepGoing = flag.Bool("keepgoing", false, "complete the sweep past failed experiments; report failures and exit 1")
		checkMode = flag.Bool("check", false, "enable runtime invariant assertions (debug; slower)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	check.Enabled = *checkMode

	if *list {
		for _, id := range exp.IDs() {
			e, _ := exp.Get(id)
			fmt.Printf("%-8s %s\n", id, e.Title)
		}
		return
	}

	ids := exp.IDs()
	if *expFlag != "all" {
		ids = strings.Split(*expFlag, ",")
	}
	cfg := exp.Config{
		Scale:               *scale,
		BatchSize:           *batch,
		Batches:             *batches,
		Cores:               *cores,
		Seed:                *seed,
		BandwidthIterations: *bwIters,
	}
	// Fail on every bad flag at once, before any simulation starts.
	var flagErrs []error
	if err := cfg.Validate(); err != nil {
		flagErrs = append(flagErrs, err)
	}
	if *format != "text" && *format != "csv" {
		flagErrs = append(flagErrs, fmt.Errorf("unknown -format %q (want text or csv)", *format))
	}
	if *workers < 1 {
		flagErrs = append(flagErrs, fmt.Errorf("-workers %d (want >= 1)", *workers))
	}
	if *shardW < 1 {
		flagErrs = append(flagErrs, fmt.Errorf("-shard-workers %d (want >= 1)", *shardW))
	}
	resumeSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "resume" {
			resumeSet = true
		}
	})
	if resumeSet && *ckptDir == "" {
		flagErrs = append(flagErrs, fmt.Errorf("-resume without -checkpoint has no effect"))
	}
	if len(flagErrs) > 0 {
		fail(errors.Join(flagErrs...))
	}
	if *shardW > 1 {
		cluster.SetExecBackend(cluster.Parallel(*shardW))
	}
	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fail(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "dlrmbench:", err)
		}
	}()
	x := exp.NewContext(cfg)
	var cp *exp.Checkpoint
	if *ckptDir != "" {
		cp, err = exp.OpenCheckpoint(*ckptDir)
		if err != nil {
			fail(err)
		}
		defer cp.Close()
		cp.SetWriteOnly(!*resume)
		x.WithCheckpoint(cp)
	}
	if *format == "text" {
		fmt.Printf("dlrmbench: scale=1/%d batch=%d batches=%d seed=%d\n\n",
			x.Cfg.Scale, x.Cfg.BatchSize, x.Cfg.Batches, x.Cfg.Seed)
	}
	render := func(tbl *exp.Table) {
		r := tbl.Render
		if *format == "csv" {
			r = tbl.RenderCSV
		}
		if err := r(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	reportStore := func() {
		if cp == nil || *quietTime || *format != "text" {
			return
		}
		s := cp.Stats()
		fmt.Printf("(checkpoint %s: %d resumed, %d simulated", cp.Dir(), s.Hits, s.Writes)
		if s.Corrupt > 0 {
			fmt.Printf(", %d corrupt entries recomputed", s.Corrupt)
		}
		if s.WriteErrors > 0 {
			fmt.Printf(", %d write errors", s.WriteErrors)
		}
		fmt.Printf(")\n")
	}
	ctx := context.Background()
	if *keepGoing {
		start := time.Now()
		tables, failures, err := exp.RunAllKeepGoing(ctx, x, ids, *workers)
		if err != nil {
			fail(err)
		}
		for _, tbl := range tables {
			if tbl != nil {
				render(tbl)
			}
		}
		if !*quietTime && *format == "text" {
			fmt.Printf("(%d/%d experiments completed in %.1fs with %d workers)\n",
				len(tables)-len(failures), len(tables), time.Since(start).Seconds(), *workers)
		}
		reportStore()
		if len(failures) > 0 {
			fmt.Fprint(os.Stderr, exp.FormatFailures(failures))
			os.Exit(1)
		}
		return
	}
	if *workers == 1 {
		// Sequential path: render and time each artifact as it completes.
		for _, id := range ids {
			start := time.Now()
			tables, err := exp.RunAll(ctx, x, []string{id}, 1)
			if err != nil {
				fail(err)
			}
			render(tables[0])
			if !*quietTime && *format == "text" {
				fmt.Printf("(%s completed in %.1fs)\n\n", tables[0].ID, time.Since(start).Seconds())
			}
		}
		reportStore()
		return
	}
	start := time.Now()
	tables, err := exp.RunAll(ctx, x, ids, *workers)
	if err != nil {
		fail(err)
	}
	for _, tbl := range tables {
		render(tbl)
	}
	if !*quietTime && *format == "text" {
		fmt.Printf("(%d experiments completed in %.1fs with %d workers)\n",
			len(tables), time.Since(start).Seconds(), *workers)
	}
	reportStore()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dlrmbench:", err)
	if strings.Contains(err.Error(), "unknown experiment") {
		os.Exit(2)
	}
	os.Exit(1)
}
