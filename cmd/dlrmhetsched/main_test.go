package main

import (
	"strings"
	"testing"
)

// goodFlags mirrors the flag defaults relevant to validation.
func goodFlags() mainFlags {
	return mainFlags{
		mix: "hetero", policy: "affinity",
		modelName: "rm2_1", hotness: "medium", scheme: "baseline",
		scale: 8, batch: 8,
		requests: 4000, util: 0.75, jitter: 0.25,
	}
}

func setNone(string) bool { return false }

// TestValidateBadInputs is the CLI bad-input regression table: every row
// is a flag combination a user has plausibly typed, and each must be
// rejected with a message naming the offending flag — before any engine
// work starts.
func TestValidateBadInputs(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*mainFlags)
		set  []string // flags "explicitly given" beyond the mutation
		want string
	}{
		{"negative scale", func(o *mainFlags) { o.scale = -1 }, nil, "-scale"},
		{"zero batch", func(o *mainFlags) { o.batch = 0 }, nil, "-batch"},
		{"negative cores", func(o *mainFlags) { o.cores = -2 }, nil, "-cores"},
		{"zero requests", func(o *mainFlags) { o.requests = 0 }, nil, "-requests"},
		{"negative arrival", func(o *mainFlags) { o.arrival = -0.5 }, nil, "-arrival"},
		{"util at 1", func(o *mainFlags) { o.util = 1 }, nil, "-util"},
		{"negative jitter", func(o *mainFlags) { o.jitter = -0.1 }, nil, "-jitter"},
		{"huge jitter", func(o *mainFlags) { o.jitter = 3 }, nil, "-jitter"},
		{"unknown mix", func(o *mainFlags) { o.mix = "tpu9" }, nil, "unknown device mix"},
		{"unknown policy", func(o *mainFlags) { o.policy = "random" }, nil, "unknown policy"},
		{"gather without dense", func(o *mainFlags) { o.gather = 40 }, []string{"gather"}, "-gather and -dense"},
		{"dense without gather", func(o *mainFlags) { o.dense = 30 }, []string{"dense"}, "-gather and -dense"},
		{"zero gather", func(o *mainFlags) { o.dense = 30 }, []string{"gather", "dense"}, "-gather 0"},
		{"negative dense", func(o *mainFlags) { o.gather = 40; o.dense = -1 }, []string{"gather", "dense"}, "-dense"},
		{"model with synthetic graph", func(o *mainFlags) { o.gather = 40; o.dense = 30 },
			[]string{"gather", "dense", "model"}, "-model is an engine-calibration flag"},
		{"scale with synthetic graph", func(o *mainFlags) { o.gather = 40; o.dense = 30 },
			[]string{"gather", "dense", "scale"}, "-scale is an engine-calibration flag"},
		{"negative maxbatch", func(o *mainFlags) { o.maxBatch = -4 }, nil, "-maxbatch"},
		{"negative hold", func(o *mainFlags) { o.hold = -1 }, nil, "-hold"},
		{"maxbatch without a gpu", func(o *mainFlags) { o.mix = "cpu4"; o.maxBatch = 64 },
			[]string{"maxbatch"}, "need a single mix containing one"},
		{"hold with mix all", func(o *mainFlags) { o.mix = "all"; o.hold = 40 },
			[]string{"hold"}, "need a single mix containing one"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := goodFlags()
			tc.mut(&o)
			isSet := setNone
			if len(tc.set) > 0 {
				set := map[string]bool{}
				for _, name := range tc.set {
					set[name] = true
				}
				isSet = func(name string) bool { return set[name] }
			}
			err := o.validate(isSet)
			if err == nil {
				t.Fatalf("validate accepted %+v", o)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestValidateGoodInputs pins the combinations that must pass: the
// defaults, a synthetic graph, an explicit arrival, and a GPU override.
func TestValidateGoodInputs(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*mainFlags)
		set  []string
	}{
		{"defaults", func(o *mainFlags) {}, nil},
		{"all mixes and policies", func(o *mainFlags) { o.mix = "all"; o.policy = "all" }, nil},
		{"synthetic graph", func(o *mainFlags) { o.gather = 40; o.dense = 30 }, []string{"gather", "dense"}},
		{"explicit arrival ignores util", func(o *mainFlags) { o.arrival = 0.05; o.util = 0 }, []string{"arrival"}},
		{"gpu override", func(o *mainFlags) { o.mix = "cpu2gpu1"; o.maxBatch = 64; o.hold = 40 },
			[]string{"maxbatch", "hold"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := goodFlags()
			tc.mut(&o)
			set := map[string]bool{}
			for _, name := range tc.set {
				set[name] = true
			}
			if err := o.validate(func(name string) bool { return set[name] }); err != nil {
				t.Fatalf("validate rejected %+v: %v", o, err)
			}
		})
	}
}
