// Command dlrmhetsched simulates heterogeneous phase-graph scheduling:
// each request is a typed DLRM phase graph (embedding gather → feature
// interaction → MLP, with dependencies) placed by a policy over a fleet
// mixing CPU cores, a batching GPU-like device, and PIM-like gather
// engines (internal/hetsched). Per-phase CPU costs are calibrated from
// the single-node timing simulator, or given explicitly with
// -gather/-dense to skip the engine.
//
// Usage:
//
//	dlrmhetsched -mix hetero -policy steal -util 0.75
//	dlrmhetsched -mix all -policy all -model rm2_1 -hotness medium
//	dlrmhetsched -gather 40 -dense 30 -mix smt2 -policy affinity -jitter 0
//	dlrmhetsched -mix cpu2gpu1 -maxbatch 64 -hold 40
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"dlrmsim/internal/check"
	"dlrmsim/internal/cluster"
	"dlrmsim/internal/core"
	"dlrmsim/internal/dlrm"
	"dlrmsim/internal/hetsched"
	"dlrmsim/internal/platform"
	"dlrmsim/internal/trace"
)

// mainFlags carries every flag that participates in validation, so the
// bad-input paths are a plain function a test can drive without an
// engine run or an os.Exit.
type mainFlags struct {
	mix, policy                 string
	modelName, hotness, scheme  string
	scale, batch, cores         int
	gather, dense               float64
	requests                    int
	arrival, util, jitter, hold float64
	maxBatch                    int
}

// engineFlags are meaningless when -gather/-dense set the phase graph
// explicitly; validate rejects misplaced ones in a single pass.
var engineFlags = []string{"model", "hotness", "scheme", "scale", "batch", "cores"}

// validate reports every bad flag at once, before any engine work starts.
// isSet reports whether a flag was given explicitly on the command line.
func (o mainFlags) validate(isSet func(string) bool) error {
	var errs []error
	if isSet("gather") || isSet("dense") {
		if !isSet("gather") || !isSet("dense") {
			errs = append(errs, fmt.Errorf("-gather and -dense set the synthetic phase graph together"))
		}
		if isSet("gather") && o.gather <= 0 {
			errs = append(errs, fmt.Errorf("-gather %g µs (want > 0)", o.gather))
		}
		if isSet("dense") && o.dense <= 0 {
			errs = append(errs, fmt.Errorf("-dense %g µs (want > 0)", o.dense))
		}
		for _, name := range engineFlags {
			if isSet(name) {
				errs = append(errs, fmt.Errorf("-%s is an engine-calibration flag, unused with -gather/-dense", name))
			}
		}
	} else {
		if o.scale < 1 {
			errs = append(errs, fmt.Errorf("-scale %d (want >= 1)", o.scale))
		}
		if o.batch < 1 {
			errs = append(errs, fmt.Errorf("-batch %d (want >= 1)", o.batch))
		}
		if o.cores < 0 {
			errs = append(errs, fmt.Errorf("-cores %d (want >= 0)", o.cores))
		}
	}
	if o.mix != "all" {
		if _, err := hetsched.NewMix(o.mix); err != nil {
			errs = append(errs, err)
		}
	}
	if o.policy != "all" {
		if _, err := hetsched.ParsePolicy(o.policy); err != nil {
			errs = append(errs, err)
		}
	}
	if o.requests < 1 {
		errs = append(errs, fmt.Errorf("-requests %d (want >= 1)", o.requests))
	}
	if o.arrival < 0 {
		errs = append(errs, fmt.Errorf("-arrival %g ms (want >= 0; 0 derives from -util)", o.arrival))
	}
	if o.arrival == 0 && (o.util <= 0 || o.util >= 1) {
		errs = append(errs, fmt.Errorf("-util %g outside (0,1)", o.util))
	}
	if o.jitter < 0 || o.jitter > 2 {
		errs = append(errs, fmt.Errorf("-jitter %g outside [0,2]", o.jitter))
	}
	if o.maxBatch < 0 {
		errs = append(errs, fmt.Errorf("-maxbatch %d (want >= 0)", o.maxBatch))
	}
	if o.hold < 0 {
		errs = append(errs, fmt.Errorf("-hold %g µs (want >= 0)", o.hold))
	}
	if isSet("maxbatch") || isSet("hold") {
		hasGPU := false
		if o.mix != "all" {
			if devs, err := hetsched.NewMix(o.mix); err == nil {
				for _, d := range devs {
					if d.Class == hetsched.GPUClass {
						hasGPU = true
					}
				}
			}
		}
		if !hasGPU {
			errs = append(errs, fmt.Errorf("-maxbatch/-hold override the GPU and need a single mix containing one (have -mix %s)", o.mix))
		}
	}
	return errors.Join(errs...)
}

func main() {
	var o mainFlags
	flag.StringVar(&o.mix, "mix", "hetero", "device mix: "+strings.Join(hetsched.Mixes, " | ")+" | all")
	flag.StringVar(&o.policy, "policy", "affinity", "placement policy: affinity | eft | steal | all")
	flag.StringVar(&o.modelName, "model", "rm2_1", "rm1 | rm2_1 | rm2_2 | rm2_3")
	flag.StringVar(&o.hotness, "hotness", "medium", "high | medium | low")
	flag.StringVar(&o.scheme, "scheme", "baseline", "per-node design point: baseline | swpf | mpht | integrated")
	flag.IntVar(&o.scale, "scale", 8, "model scale-down divisor")
	flag.IntVar(&o.batch, "batch", 8, "samples per request (sets the gather phase's lookup count)")
	flag.IntVar(&o.cores, "cores", 0, "engine cores for the calibration run (0 = all platform cores)")
	flag.Float64Var(&o.gather, "gather", 0, "explicit gather-phase cost in CPU-µs (with -dense; skips the engine)")
	flag.Float64Var(&o.dense, "dense", 0, "explicit dense (interaction+MLP) cost in CPU-µs (with -gather)")
	flag.IntVar(&o.requests, "requests", 4000, "requests to simulate per sweep point")
	flag.Float64Var(&o.arrival, "arrival", 0, "mean request inter-arrival time in ms (0 = derive from -util per mix)")
	flag.Float64Var(&o.util, "util", 0.75, "target fleet utilization when -arrival is 0")
	flag.Float64Var(&o.jitter, "jitter", 0.25, "lognormal service-time jitter fraction")
	flag.IntVar(&o.maxBatch, "maxbatch", 0, "override the GPU's max batch size (needs a mix with a GPU)")
	flag.Float64Var(&o.hold, "hold", 0, "override the GPU's batching hold window in µs (needs a mix with a GPU)")
	seed := flag.Uint64("seed", 1, "random seed")
	checkMode := flag.Bool("check", false, "enable runtime invariant assertions (debug; slower)")
	flag.Parse()
	check.Enabled = *checkMode

	setFlags := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })
	isSet := func(name string) bool { return setFlags[name] }
	if err := o.validate(isSet); err != nil {
		fatal(err)
	}

	var g hetsched.Graph
	if isSet("gather") {
		g = hetsched.DLRMGraph(o.gather, o.dense)
		fmt.Printf("dlrmhetsched: synthetic phase graph\n")
	} else {
		base, err := dlrm.ByName(o.modelName)
		if err != nil {
			fatal(err)
		}
		h, err := parseHotness(o.hotness)
		if err != nil {
			fatal(err)
		}
		scheme, err := core.ParseScheme(o.scheme)
		if err != nil {
			fatal(err)
		}
		cpu := platform.CascadeLake()
		n := cpu.Cores
		if o.cores > 0 && o.cores <= cpu.Cores {
			n = o.cores
		}
		model := base.Scaled(o.scale)
		// One memoizable engine run calibrates the per-phase CPU costs.
		rep, err := core.Run(core.Options{Model: model, Hotness: h, Scheme: scheme, Cores: n, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		lookups := o.batch * model.Tables * model.LookupsPerSample
		tm := cluster.TimingFromReport(rep, cpu, lookups)
		g = hetsched.DLRMGraph(tm.ColdLookupUs*float64(lookups), tm.DenseMs*1e3)
		fmt.Printf("dlrmhetsched: %s (scale 1/%d), %v, %s design, %d-sample requests\n",
			base.Name, o.scale, h, scheme, o.batch)
	}
	kw := g.KindWorkUs()
	fmt.Printf("phases: %.2f µs gather, %.2f µs interact, %.2f µs mlp (%.2f µs/request on a reference core)\n",
		kw[hetsched.Gather], kw[hetsched.Interact], kw[hetsched.MLP], g.TotalWorkUs())
	if o.arrival > 0 {
		fmt.Printf("load: one request every %.4f ms (mean), jitter %.2f\n", o.arrival, o.jitter)
	} else {
		fmt.Printf("load: sized per mix for %.0f%% fleet utilization, jitter %.2f\n", 100*o.util, o.jitter)
	}
	fmt.Println()

	mixes := []string{o.mix}
	if o.mix == "all" {
		mixes = hetsched.Mixes
	}
	policies := hetsched.AllPolicies
	if o.policy != "all" {
		p, err := hetsched.ParsePolicy(o.policy)
		if err != nil {
			fatal(err)
		}
		policies = []hetsched.Policy{p}
	}

	fmt.Printf("%-10s %-9s %12s %9s %9s %9s %10s %9s %6s %7s %6s %10s %10s\n",
		"mix", "policy", "arrival (ms)", "p50 (ms)", "p95 (ms)", "p99 (ms)", "qps",
		"wait (ms)", "batch", "steals", "util", "cross (ms)", "same (ms)")
	for _, mix := range mixes {
		devs, err := hetsched.NewMix(mix)
		if err != nil {
			fatal(err)
		}
		for i := range devs {
			if devs[i].Class != hetsched.GPUClass {
				continue
			}
			if isSet("maxbatch") {
				devs[i].MaxBatch = o.maxBatch
			}
			if isSet("hold") {
				devs[i].HoldUs = o.hold
			}
		}
		arrival := o.arrival
		if arrival == 0 {
			arrival = hetsched.ArrivalForUtilization(g, devs, o.util)
		}
		for _, pol := range policies {
			cfg := hetsched.Config{
				Graph:         g,
				Devices:       devs,
				Policy:        pol,
				MeanArrivalMs: arrival,
				Requests:      o.requests,
				JitterFrac:    o.jitter,
				Seed:          *seed,
			}
			// Collect every config violation in one report.
			if err := cfg.Validate(); err != nil {
				fatal(err)
			}
			res, err := hetsched.Simulate(cfg)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-10s %-9s %12.4f %9.3f %9.3f %9.3f %10.0f %9.3f %6.2f %7d %5.1f%% %10.1f %10.1f\n",
				mix, pol, arrival, res.P50, res.P95, res.P99, res.ThroughputQPS,
				res.MeanPhaseWaitMs, res.MeanBatchItems, res.Steals, 100*res.UtilTotal,
				res.CrossKindOverlapMs, res.SameKindOverlapMs)
		}
	}
	fmt.Printf("\neach policy owns a regime: affinity on SMT siblings (the paper's MP-HT colocation —\nzero same-kind overlap), earliest-finish on speed-asymmetric big.LITTLE fleets, and\nwork stealing on wide uniform or deeply heterogeneous fleets\n")
}

func parseHotness(s string) (trace.Hotness, error) {
	switch s {
	case "high":
		return trace.HighHot, nil
	case "medium", "med":
		return trace.MediumHot, nil
	case "low":
		return trace.LowHot, nil
	}
	return 0, fmt.Errorf("unknown hotness %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dlrmhetsched:", err)
	os.Exit(1)
}
