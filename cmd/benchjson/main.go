// Command benchjson converts `go test -bench` output into the repo's
// BENCH_<n>.json perf-trajectory format, and compares two such files.
//
// Usage:
//
//	go test -bench ... -benchmem ./... | benchjson -out BENCH_1.json
//	benchjson -compare BENCH_0.json BENCH_1.json
//
// The JSON records, per benchmark: iterations, ns/op, B/op, allocs/op, and
// every custom metric the benchmark reported (parallel-x, p95-ms, …), so
// one file captures both host-side speed and the artifact's headline
// quantities. Compare mode prints old→new ns/op and allocs/op ratios —
// a benchstat-shaped summary with no external dependency.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one benchmark's result row.
type Benchmark struct {
	Pkg        string             `json:"pkg"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BytesPerOp float64            `json:"bytes_per_op,omitempty"`
	AllocsOp   float64            `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// File is the BENCH_<n>.json document.
type File struct {
	Schema     string      `json:"schema"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

const schema = "dlrmsim-bench/v1"

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

func parse(r *bufio.Scanner) (*File, error) {
	f := &File{Schema: schema}
	pkg := ""
	for r.Scan() {
		line := strings.TrimSpace(r.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			f.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			f.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			f.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad iteration count in %q: %w", line, err)
		}
		b := Benchmark{Pkg: pkg, Name: trimProcs(m[1]), Iterations: iters}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value in %q: %w", line, err)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsOp = v
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[unit] = v
			}
		}
		f.Benchmarks = append(f.Benchmarks, b)
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if len(f.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines found on stdin")
	}
	return f, nil
}

// trimProcs drops the trailing -GOMAXPROCS suffix so names are stable
// across machines.
func trimProcs(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

func load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

func key(b Benchmark) string { return b.Pkg + "." + b.Name }

func compare(oldPath, newPath string) error {
	of, err := load(oldPath)
	if err != nil {
		return err
	}
	nf, err := load(newPath)
	if err != nil {
		return err
	}
	olds := map[string]Benchmark{}
	for _, b := range of.Benchmarks {
		olds[key(b)] = b
	}
	var names []string
	news := map[string]Benchmark{}
	for _, b := range nf.Benchmarks {
		news[key(b)] = b
		names = append(names, key(b))
	}
	sort.Strings(names)
	fmt.Printf("%-52s %14s %14s %8s %12s\n", "benchmark", "old ns/op", "new ns/op", "speedup", "allocs o→n")
	fmt.Printf("%s\n", strings.Repeat("-", 104))
	for _, name := range names {
		nb := news[name]
		ob, ok := olds[name]
		if !ok {
			fmt.Printf("%-52s %14s %14.0f %8s %12.0f\n", name, "(new)", nb.NsPerOp, "", nb.AllocsOp)
			continue
		}
		speed := 0.0
		if nb.NsPerOp > 0 {
			speed = ob.NsPerOp / nb.NsPerOp
		}
		fmt.Printf("%-52s %14.0f %14.0f %7.2fx %6.0f→%.0f\n",
			name, ob.NsPerOp, nb.NsPerOp, speed, ob.AllocsOp, nb.AllocsOp)
	}
	return nil
}

func main() {
	out := flag.String("out", "", "output JSON path (default stdout)")
	cmp := flag.Bool("compare", false, "compare two BENCH_<n>.json files instead of parsing stdin")
	flag.Parse()

	if *cmp {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two files")
			os.Exit(2)
		}
		if err := compare(flag.Arg(0), flag.Arg(1)); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	f, err := parse(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
