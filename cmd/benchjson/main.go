// Command benchjson converts `go test -bench` output into the repo's
// BENCH_<n>.json perf-trajectory format, and compares two such files.
//
// Usage:
//
//	go test -bench ... -benchmem ./... | benchjson -out BENCH_1.json
//	benchjson -compare BENCH_0.json BENCH_1.json
//	benchjson -compare -gate 10 -calibrate BenchmarkCalibration BENCH_1.json BENCH_2.json
//
// The JSON records, per benchmark: iterations, ns/op, B/op, allocs/op, and
// every custom metric the benchmark reported (parallel-x, p95-ms, …), so
// one file captures both host-side speed and the artifact's headline
// quantities. Compare mode prints old→new ns/op and allocs/op ratios —
// a benchstat-shaped summary with no external dependency.
//
// Repeated rows for one benchmark (a `-count N` capture) fold to the
// fastest run: shared hosts suffer episodic noisy-neighbor slowdowns
// that inflate individual runs by 20–40%, and the minimum is the
// standard estimator that rejects them (a run can be unlucky-slow, never
// unlucky-fast). `make bench-json` captures with -count 3 for exactly
// this reason.
//
// -gate N makes compare exit nonzero when any benchmark regresses more
// than N% in ns/op or allocs/op — the perf-regression gate CI runs on the
// committed trajectory. Because successive BENCH_<n> points are captured
// in different sessions on hosts whose effective speed drifts (turbo,
// contention, microcode), raw wall-clock gating false-fails; -calibrate
// names a canary benchmark (first of a comma list present in both files)
// whose ns/op ratio estimates the host-speed drift, and gated ns/op
// ratios are normalized by it. The canary must be a fixed pure-CPU
// workload no simulator change touches.
//
// When -gate and -calibrate are both set but no canary exists in BOTH
// files, the ns/op gate is skipped (exit 0, table still printed): the
// older point predates the calibration infrastructure, and uncalibrated
// cross-host ratios false-fail on host drift alone. Allocs/op — which
// doesn't drift with host speed — is still gated.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one benchmark's result row.
type Benchmark struct {
	Pkg        string             `json:"pkg"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BytesPerOp float64            `json:"bytes_per_op,omitempty"`
	AllocsOp   float64            `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// File is the BENCH_<n>.json document.
type File struct {
	Schema     string      `json:"schema"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

const schema = "dlrmsim-bench/v1"

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

func parse(r *bufio.Scanner) (*File, error) {
	f := &File{Schema: schema}
	pkg := ""
	seen := map[string]int{}
	for r.Scan() {
		line := strings.TrimSpace(r.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			f.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			f.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			f.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad iteration count in %q: %w", line, err)
		}
		b := Benchmark{Pkg: pkg, Name: trimProcs(m[1]), Iterations: iters}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value in %q: %w", line, err)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsOp = v
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[unit] = v
			}
		}
		// Fold -count repeats: keep the fastest run (see package comment).
		if i, ok := seen[key(b)]; ok {
			if b.NsPerOp < f.Benchmarks[i].NsPerOp {
				f.Benchmarks[i] = b
			}
			continue
		}
		seen[key(b)] = len(f.Benchmarks)
		f.Benchmarks = append(f.Benchmarks, b)
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if len(f.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines found on stdin")
	}
	return f, nil
}

// trimProcs drops the trailing -GOMAXPROCS suffix so names are stable
// across machines.
func trimProcs(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

func load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

func key(b Benchmark) string { return b.Pkg + "." + b.Name }

// findCanary returns the host-speed scale factor new/old from the first
// calibration benchmark (comma list, matched on bare Name) present in
// both files, plus its name ("" and 1.0 when none matches).
func findCanary(of, nf *File, calibrate string) (string, float64) {
	byName := func(f *File, name string) (Benchmark, bool) {
		for _, b := range f.Benchmarks {
			if b.Name == name {
				return b, true
			}
		}
		return Benchmark{}, false
	}
	for _, name := range strings.Split(calibrate, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		ob, okOld := byName(of, name)
		nb, okNew := byName(nf, name)
		if okOld && okNew && ob.NsPerOp > 0 && nb.NsPerOp > 0 {
			return name, nb.NsPerOp / ob.NsPerOp
		}
	}
	return "", 1.0
}

func compare(oldPath, newPath string, gatePct float64, calibrate string) error {
	of, err := load(oldPath)
	if err != nil {
		return err
	}
	nf, err := load(newPath)
	if err != nil {
		return err
	}
	canary, scale := "", 1.0
	gateNs := gatePct > 0
	if calibrate != "" {
		if canary, scale = findCanary(of, nf, calibrate); canary != "" {
			fmt.Printf("calibrated by %s: host speed factor %.3f (new/old ns)\n", canary, scale)
		} else {
			fmt.Printf("calibration: no benchmark of %q in both files; ns/op shown raw\n", calibrate)
			if gateNs {
				gateNs = false
				fmt.Printf("gate: ns/op gate skipped (pre-calibration trajectory point); allocs/op still gated\n")
			}
		}
	}
	olds := map[string]Benchmark{}
	for _, b := range of.Benchmarks {
		olds[key(b)] = b
	}
	var names []string
	news := map[string]Benchmark{}
	for _, b := range nf.Benchmarks {
		news[key(b)] = b
		names = append(names, key(b))
	}
	sort.Strings(names)
	var failures []string
	fmt.Printf("%-52s %14s %14s %8s %12s\n", "benchmark", "old ns/op", "new ns/op", "speedup", "allocs o→n")
	fmt.Printf("%s\n", strings.Repeat("-", 104))
	for _, name := range names {
		nb := news[name]
		ob, ok := olds[name]
		if !ok {
			fmt.Printf("%-52s %14s %14.0f %8s %12.0f\n", name, "(new)", nb.NsPerOp, "", nb.AllocsOp)
			continue
		}
		speed := 0.0
		if nb.NsPerOp > 0 {
			// scale cancels the host-speed drift the canary measured, so
			// this is the code's speedup, not the machine's.
			speed = ob.NsPerOp * scale / nb.NsPerOp
		}
		fmt.Printf("%-52s %14.0f %14.0f %7.2fx %6.0f→%.0f\n",
			name, ob.NsPerOp, nb.NsPerOp, speed, ob.AllocsOp, nb.AllocsOp)
		if gatePct <= 0 || nb.Name == canary {
			continue
		}
		if gateNs && speed > 0 && speed < 1-gatePct/100 {
			failures = append(failures, fmt.Sprintf("%s: %.2fx calibrated ns/op (threshold %.2fx)",
				name, speed, 1-gatePct/100))
		}
		// Alloc counts don't drift with host speed; gate them raw, with a
		// two-alloc floor so tiny counts aren't flagged on noise.
		if nb.AllocsOp > ob.AllocsOp*(1+gatePct/100) && nb.AllocsOp-ob.AllocsOp > 2 {
			failures = append(failures, fmt.Sprintf("%s: allocs/op %.0f→%.0f (>%.0f%% growth)",
				name, ob.AllocsOp, nb.AllocsOp, gatePct))
		}
	}
	if len(failures) > 0 {
		fmt.Println()
		for _, f := range failures {
			fmt.Printf("REGRESSION %s\n", f)
		}
		return fmt.Errorf("%d benchmark(s) regressed beyond %.0f%%", len(failures), gatePct)
	}
	return nil
}

func main() {
	out := flag.String("out", "", "output JSON path (default stdout)")
	cmp := flag.Bool("compare", false, "compare two BENCH_<n>.json files instead of parsing stdin")
	gate := flag.Float64("gate", 0, "with -compare: exit nonzero on any >N%% ns/op or allocs/op regression")
	calibrate := flag.String("calibrate", "", "with -compare: comma list of canary benchmark names for host-speed normalization")
	flag.Parse()

	if *cmp {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two files")
			os.Exit(2)
		}
		if err := compare(flag.Arg(0), flag.Arg(1), *gate, *calibrate); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	f, err := parse(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
