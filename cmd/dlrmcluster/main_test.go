package main

import (
	"strings"
	"testing"

	"dlrmsim/internal/cluster"
	"dlrmsim/internal/traffic"
)

// goodFlags mirrors the flag defaults relevant to validation.
func goodFlags() mainFlags {
	return mainFlags{
		scale: 8, nodes: 8, batch: 8, servers: 2, queries: 4000,
		util: 0.55, netBW: 10, shardWorkers: 1,
		arrivals: "poisson", admit: "none",
		burstFactor: 2, flashFactor: 3, revisit: 0.6, affinity: 0.5,
	}
}

func setNone(string) bool { return false }

// TestValidateBadInputs is the CLI bad-input regression table: every row
// is a flag combination a user has plausibly typed, and each must be
// rejected with a message naming the offending flag — before any engine
// work starts.
func TestValidateBadInputs(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*mainFlags)
		set  []string // flags "explicitly given" beyond the mutation
		want string
	}{
		{"negative scale", func(o *mainFlags) { o.scale = -1 }, nil, "-scale"},
		{"zero nodes", func(o *mainFlags) { o.nodes = 0 }, nil, "-nodes"},
		{"zero batch", func(o *mainFlags) { o.batch = 0 }, nil, "-batch"},
		{"zero servers", func(o *mainFlags) { o.servers = 0 }, nil, "-servers"},
		{"negative cores", func(o *mainFlags) { o.cores = -2 }, nil, "-cores"},
		{"zero shard workers", func(o *mainFlags) { o.shardWorkers = 0 }, nil, "-shard-workers"},
		{"zero queries closed", func(o *mainFlags) { o.queries = 0 }, nil, "-queries"},
		{"negative arrival", func(o *mainFlags) { o.arrival = -0.5 }, nil, "-arrival"},
		{"util at 1 closed", func(o *mainFlags) { o.util = 1 }, nil, "-util"},
		{"negative netlat", func(o *mainFlags) { o.netLat = -1 }, nil, "-netlat"},
		{"open flag without -open", func(o *mainFlags) {}, []string{"rate"}, "-rate needs -open"},
		{"admit without -open", func(o *mainFlags) { o.admit = "shed" }, []string{"admit"}, "-admit needs -open"},
		{"users without -open", func(o *mainFlags) { o.users = 1000 }, []string{"users"}, "-users needs -open"},
		{"arrival with -open", func(o *mainFlags) { o.open = true; o.arrival = 0.2 }, []string{"arrival"}, "closed-loop flag"},
		{"queries with -open", func(o *mainFlags) { o.open = true }, []string{"queries"}, "closed-loop flag"},
		{"negative rate", func(o *mainFlags) { o.open = true; o.rate = -3 }, nil, "-rate"},
		{"open zero util and rate", func(o *mainFlags) { o.open = true; o.util = 0 }, nil, "-util"},
		{"negative duration", func(o *mainFlags) { o.open = true; o.duration = -1 }, nil, "-duration"},
		{"bad open warmup", func(o *mainFlags) { o.open = true; o.openWarmup = -2 }, nil, "-open-warmup"},
		{"negative sla", func(o *mainFlags) { o.open = true; o.sla = -1 }, nil, "-sla"},
		{"burst knob without mmpp", func(o *mainFlags) { o.open = true; o.burstEvery = 2 }, []string{"burst-every"}, "-burst-every needs -arrivals mmpp"},
		{"flash factor without flash", func(o *mainFlags) { o.open = true; o.flashFactor = 4 }, []string{"flash-factor"}, "-flash-factor needs -flash-every"},
		{"revisit without users", func(o *mainFlags) { o.open = true; o.revisit = 0.9 }, []string{"revisit"}, "-revisit needs -users"},
		{"scale-up without autoscaler", func(o *mainFlags) { o.open = true; o.scaleUp = 1 }, []string{"scale-up"}, "-scale-up needs -scale-every"},
		{"max-nodes without autoscaler", func(o *mainFlags) { o.open = true; o.maxNodes = 4 }, []string{"max-nodes"}, "-max-nodes needs -scale-every"},
		{"domains without chaos", func(o *mainFlags) { o.domains = 4 }, []string{"domains"}, "-domains needs -chaos"},
		{"negative domains", func(o *mainFlags) { o.chaos = "down:dom=0,at=1,for=1"; o.domains = -2 }, nil, "-domains -2"},
		{"unparseable chaos spec", func(o *mainFlags) { o.chaos = "explode:dom=0,at=1" }, nil, "unknown chaos event kind"},
		{"chaos bad value", func(o *mainFlags) { o.chaos = "down:dom=zero,at=1,for=1" }, nil, `value "zero"`},
		{"breaker-min without trip", func(o *mainFlags) { o.breakerMin = 5 }, []string{"breaker-min"}, "-breaker-min needs -breaker-trip"},
		{"breaker-cooldown without trip", func(o *mainFlags) { o.breakerCooldown = 8 }, []string{"breaker-cooldown"}, "-breaker-cooldown needs -breaker-trip"},
		{"adapt-epoch without adaptive", func(o *mainFlags) { o.adaptEpoch = 5 }, []string{"adapt-epoch"}, "-adapt-epoch needs -retry-budget or -breaker-trip"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := goodFlags()
			tc.mut(&o)
			set := map[string]bool{}
			for _, s := range tc.set {
				set[s] = true
			}
			err := o.validate(func(name string) bool { return set[name] })
			if err == nil {
				t.Fatalf("accepted bad flags %+v", o)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestValidateGoodInputs: the defaults and representative good
// combinations pass with no flags explicitly set.
func TestValidateGoodInputs(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*mainFlags)
	}{
		{"defaults", func(o *mainFlags) {}},
		{"open defaults", func(o *mainFlags) { o.open = true }},
		{"open overload util", func(o *mainFlags) { o.open = true; o.util = 1.4 }},
		{"open mmpp bursts", func(o *mainFlags) {
			o.open = true
			o.arrivals = "mmpp"
			o.burstEvery, o.burstDur = 2, 0.3
		}},
		{"open full stack", func(o *mainFlags) {
			o.open = true
			o.users = 100000
			o.admit = "shed"
			o.admitBudget = 0.5
			o.startNodes = 4
			o.scaleEvery, o.scaleUp, o.scaleDown = 1, 0.5, 0.05
		}},
		{"chaos with adaptive mitigation", func(o *mainFlags) {
			o.chaos = "down:dom=2,at=200,for=150;part:a=0,b=1,at=400,for=100"
			o.domains = 4
			o.retryBudget, o.adaptEpoch = 0.25, 8
			o.breakerTrip, o.breakerMin, o.breakerCooldown = 0.5, 4, 32
		}},
		{"open chaos", func(o *mainFlags) {
			o.open = true
			o.chaos = "slow:dom=0,at=10,for=50,x=4;recover:dom=0,at=30"
			o.retryBudget = 0.2
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := goodFlags()
			tc.mut(&o)
			if err := o.validate(setNone); err != nil {
				t.Fatalf("rejected good flags: %v", err)
			}
		})
	}
}

// TestOpenLoopAssembly: the flag-to-config wiring gates each feature's
// knobs on its enabling flag, so defaults for disabled features never
// leak into the cluster config (where they would be misplaced-knob
// errors).
func TestOpenLoopAssembly(t *testing.T) {
	o := goodFlags()
	o.open = true
	o.rate, o.duration, o.sla = 5, 200, 1
	open, err := o.openLoop()
	if err != nil {
		t.Fatal(err)
	}
	if open.Arrivals.Model != traffic.Poisson || open.Arrivals.RatePerMs != 5 {
		t.Fatalf("arrivals = %+v", open.Arrivals)
	}
	if open.Arrivals.BurstFactor != 0 {
		t.Fatalf("poisson stream leaked the burst-factor default: %+v", open.Arrivals)
	}
	if open.Arrivals.FlashFactor != 0 {
		t.Fatalf("flashless stream leaked the flash-factor default: %+v", open.Arrivals)
	}
	if open.Population != nil || open.Autoscale != nil {
		t.Fatalf("disabled features present: %+v", open)
	}
	if open.Admission.Policy != cluster.AdmitAll {
		t.Fatalf("admission = %+v", open.Admission)
	}

	o.arrivals = "mmpp"
	o.burstEvery, o.burstDur = 2, 0.3
	o.flashEvery, o.flashDur = 50, 5
	o.users, o.revisit, o.affinity = 1000, 0.7, 0.4
	o.admit, o.admitBudget = "shed", 0.5
	o.scaleEvery, o.scaleUp, o.scaleDown, o.provision = 1, 0.5, 0.05, 2
	o.minNodes, o.maxNodes = 2, 8
	open, err = o.openLoop()
	if err != nil {
		t.Fatal(err)
	}
	ar := open.Arrivals
	if ar.Model != traffic.MMPP || ar.BurstFactor != 2 || ar.BurstEveryMs != 2 || ar.BurstMeanMs != 0.3 {
		t.Fatalf("mmpp knobs not wired: %+v", ar)
	}
	if ar.FlashEveryMs != 50 || ar.FlashMeanMs != 5 || ar.FlashFactor != 3 {
		t.Fatalf("flash knobs not wired: %+v", ar)
	}
	if open.Population == nil || open.Population.Users != 1000 || open.Population.RevisitProb != 0.7 || open.Population.Affinity != 0.4 {
		t.Fatalf("population not wired: %+v", open.Population)
	}
	if open.Admission.Policy != cluster.ShedOverBudget || open.Admission.QueueBudgetMs != 0.5 {
		t.Fatalf("admission not wired: %+v", open.Admission)
	}
	as := open.Autoscale
	if as == nil || as.IntervalMs != 1 || as.UpBacklogMs != 0.5 || as.DownBacklogMs != 0.05 ||
		as.ProvisionMs != 2 || as.MinNodes != 2 || as.MaxNodes != 8 {
		t.Fatalf("autoscaler not wired: %+v", as)
	}

	o.arrivals = "sawtooth"
	if _, err := o.openLoop(); err == nil {
		t.Fatal("accepted unknown arrival model")
	}
	o.arrivals = "mmpp"
	o.admit = "lifo"
	if _, err := o.openLoop(); err == nil {
		t.Fatal("accepted unknown admission policy")
	}
}

// TestChaosScheduleFlag: -chaos parses through the cluster grammar and
// -domains is stamped into the schedule the config will carry.
func TestChaosScheduleFlag(t *testing.T) {
	o := goodFlags()
	o.chaos = "down:dom=1,at=200,for=150;recover:dom=1,at=300"
	o.domains = 2
	sched, err := o.chaosSchedule()
	if err != nil {
		t.Fatal(err)
	}
	if sched.Domains != 2 || len(sched.Events) != 2 {
		t.Fatalf("schedule = %+v", sched)
	}
	if sched.Events[0].Kind != cluster.DomainOutage || sched.Events[1].Kind != cluster.Recover {
		t.Fatalf("events = %+v", sched.Events)
	}
	o.chaos = "down:dom=1"
	if _, err := o.chaosSchedule(); err == nil {
		t.Fatal("accepted an outage with no window")
	}
}

func TestParseFractions(t *testing.T) {
	if _, err := parseFractions("0,0.5,nope"); err == nil {
		t.Fatal("accepted junk fraction")
	}
	if _, err := parseFractions("1.5"); err == nil {
		t.Fatal("accepted fraction above 1")
	}
	got, err := parseFractions(" 0, 0.01 ,1")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 0 || got[1] != 0.01 || got[2] != 1 {
		t.Fatalf("parsed %v", got)
	}
}

func TestParseHotness(t *testing.T) {
	for _, s := range []string{"high", "medium", "med", "low"} {
		if _, err := parseHotness(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	if _, err := parseHotness("scorching"); err == nil {
		t.Fatal("accepted unknown hotness")
	}
}
