// Command dlrmcluster simulates a sharded multi-node DLRM serving fleet:
// per-node service costs come from the single-node timing simulator, and
// the cluster tier (internal/cluster) models sharding, router fan-out
// over a configurable network, and hot-row replication.
//
// Usage:
//
//	dlrmcluster -model rm2_1 -nodes 8 -policy rowrange -hotness high
//	dlrmcluster -scheme integrated -replicate 0,0.01,0.05 -netlat 0.1
//	dlrmcluster -open -util 1.2 -arrivals mmpp -burst-every 2 -burst-dur 0.3 -admit shed -admit-budget 0.5
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dlrmsim/internal/check"
	"dlrmsim/internal/cluster"
	"dlrmsim/internal/core"
	"dlrmsim/internal/dlrm"
	"dlrmsim/internal/platform"
	"dlrmsim/internal/prof"
	"dlrmsim/internal/trace"
	"dlrmsim/internal/traffic"
)

// mainFlags carries every load-geometry and traffic flag so that flag
// validation and open-loop assembly are plain functions a test can drive
// without an engine run or an os.Exit.
type mainFlags struct {
	scale, nodes, batch, servers, cores, queries int
	arrival, util, netLat, netBW                 float64
	shardWorkers                                 int

	// Chaos schedule and adaptive overload control (both loop modes).
	chaos                        string
	domains                      int
	retryBudget, adaptEpoch      float64
	breakerTrip, breakerCooldown float64
	breakerMin                   int

	// Open-loop live-traffic mode (-open).
	open                              bool
	streamStats                       bool
	rate, duration, openWarmup, sla   float64
	arrivals                          string
	burstFactor, burstEvery, burstDur float64
	day, diurnal                      float64
	flashEvery, flashDur, flashFactor float64
	users                             int
	revisit, affinity                 float64
	admit                             string
	admitBudget                       float64
	startNodes                        int
	scaleEvery, scaleUp, scaleDown    float64
	provision                         float64
	minNodes, maxNodes                int
}

// openOnlyFlags maps each open-loop flag name to a short reason it is
// meaningless without -open; validate uses it to reject misplaced knobs
// in one pass instead of silently ignoring them.
var openOnlyFlags = []string{
	"rate", "duration", "open-warmup", "sla", "arrivals", "stream-stats",
	"burst-factor", "burst-every", "burst-dur",
	"day", "diurnal", "flash-every", "flash-dur", "flash-factor",
	"users", "revisit", "affinity", "admit", "admit-budget",
	"start-nodes", "scale-every", "scale-up", "scale-down", "provision",
	"min-nodes", "max-nodes",
}

// validate reports every bad flag at once, before the engine run starts.
// isSet reports whether a flag was given explicitly on the command line —
// needed because several flags have meaningful non-zero defaults that are
// only wired through when their enabling flag is present.
func (o mainFlags) validate(isSet func(string) bool) error {
	var errs []error
	if o.scale < 1 {
		errs = append(errs, fmt.Errorf("-scale %d (want >= 1)", o.scale))
	}
	if o.nodes < 1 {
		errs = append(errs, fmt.Errorf("-nodes %d (want >= 1)", o.nodes))
	}
	if o.batch < 1 {
		errs = append(errs, fmt.Errorf("-batch %d (want >= 1)", o.batch))
	}
	if o.servers < 1 {
		errs = append(errs, fmt.Errorf("-servers %d (want >= 1)", o.servers))
	}
	if o.cores < 0 {
		errs = append(errs, fmt.Errorf("-cores %d (want >= 0)", o.cores))
	}
	if o.shardWorkers < 1 {
		errs = append(errs, fmt.Errorf("-shard-workers %d (want >= 1)", o.shardWorkers))
	}
	if o.netLat < 0 || o.netBW < 0 {
		errs = append(errs, fmt.Errorf("negative network parameters (-netlat %g, -netbw %g)", o.netLat, o.netBW))
	}
	// Chaos and adaptive-mitigation gating applies in both loop modes.
	if o.chaos == "" {
		if isSet("domains") {
			errs = append(errs, fmt.Errorf("-domains needs -chaos"))
		}
	} else if _, err := o.chaosSchedule(); err != nil {
		errs = append(errs, err)
	}
	if o.domains < 0 {
		errs = append(errs, fmt.Errorf("-domains %d (want >= 0; 0 = one domain per node)", o.domains))
	}
	if o.breakerTrip == 0 {
		for _, name := range []string{"breaker-min", "breaker-cooldown"} {
			if isSet(name) {
				errs = append(errs, fmt.Errorf("-%s needs -breaker-trip", name))
			}
		}
	}
	if o.retryBudget == 0 && o.breakerTrip == 0 && isSet("adapt-epoch") {
		errs = append(errs, fmt.Errorf("-adapt-epoch needs -retry-budget or -breaker-trip"))
	}
	if !o.open {
		for _, name := range openOnlyFlags {
			if isSet(name) {
				errs = append(errs, fmt.Errorf("-%s needs -open", name))
			}
		}
		if o.queries < 1 {
			errs = append(errs, fmt.Errorf("-queries %d (want >= 1)", o.queries))
		}
		if o.arrival < 0 {
			errs = append(errs, fmt.Errorf("-arrival %g (want >= 0)", o.arrival))
		}
		if o.arrival == 0 && (o.util <= 0 || o.util >= 1) {
			errs = append(errs, fmt.Errorf("-util %g outside (0,1)", o.util))
		}
		return errors.Join(errs...)
	}
	// Open-loop mode: the closed-loop load knobs are the misplaced ones,
	// and offered load may deliberately exceed capacity (-util >= 1).
	for _, name := range []string{"arrival", "queries"} {
		if isSet(name) {
			errs = append(errs, fmt.Errorf("-%s is a closed-loop flag, unused with -open", name))
		}
	}
	if o.rate < 0 {
		errs = append(errs, fmt.Errorf("-rate %g (want >= 0; 0 derives from -util)", o.rate))
	}
	if o.rate == 0 && o.util <= 0 {
		errs = append(errs, fmt.Errorf("-util %g (want > 0 to derive the open-loop rate)", o.util))
	}
	if o.duration < 0 {
		errs = append(errs, fmt.Errorf("-duration %g ms (want >= 0; 0 runs 1000 mean arrival periods)", o.duration))
	}
	if o.openWarmup < 0 && o.openWarmup != -1 {
		errs = append(errs, fmt.Errorf("-open-warmup %g ms (use -1 for explicitly no warmup)", o.openWarmup))
	}
	if o.sla < 0 {
		errs = append(errs, fmt.Errorf("-sla %g ms (want >= 0; 0 derives from the per-query work)", o.sla))
	}
	if o.arrivals != "mmpp" {
		for _, name := range []string{"burst-factor", "burst-every", "burst-dur"} {
			if isSet(name) {
				errs = append(errs, fmt.Errorf("-%s needs -arrivals mmpp", name))
			}
		}
	}
	if o.flashEvery == 0 && isSet("flash-factor") {
		errs = append(errs, fmt.Errorf("-flash-factor needs -flash-every"))
	}
	if o.users == 0 {
		for _, name := range []string{"revisit", "affinity"} {
			if isSet(name) {
				errs = append(errs, fmt.Errorf("-%s needs -users", name))
			}
		}
	}
	if o.scaleEvery == 0 {
		for _, name := range []string{"scale-up", "scale-down", "provision", "min-nodes", "max-nodes"} {
			if isSet(name) {
				errs = append(errs, fmt.Errorf("-%s needs -scale-every", name))
			}
		}
	}
	return errors.Join(errs...)
}

// chaosSchedule parses the -chaos spec and stamps -domains into it; the
// cluster tier validates the assembled schedule against the node count.
func (o mainFlags) chaosSchedule() (cluster.ChaosSchedule, error) {
	sched, err := cluster.ParseChaosSchedule(o.chaos)
	if err != nil {
		return cluster.ChaosSchedule{}, err
	}
	sched.Domains = o.domains
	return sched, nil
}

// openLoop assembles the cluster.OpenLoop config from resolved flags
// (rate, duration, and sla defaults already filled in). Knobs of disabled
// features are deliberately left zero — the cluster tier rejects
// misplaced knobs, and validate has already explained any the user set.
func (o mainFlags) openLoop() (*cluster.OpenLoop, error) {
	am, err := traffic.ParseModel(o.arrivals)
	if err != nil {
		return nil, err
	}
	pol, err := cluster.ParseAdmissionPolicy(o.admit)
	if err != nil {
		return nil, err
	}
	ar := traffic.Config{
		Model:        am,
		RatePerMs:    o.rate,
		DayMs:        o.day,
		DiurnalAmp:   o.diurnal,
		FlashEveryMs: o.flashEvery,
		FlashMeanMs:  o.flashDur,
	}
	if am == traffic.MMPP {
		ar.BurstFactor = o.burstFactor
		ar.BurstEveryMs = o.burstEvery
		ar.BurstMeanMs = o.burstDur
	}
	if o.flashEvery > 0 {
		ar.FlashFactor = o.flashFactor
	}
	open := &cluster.OpenLoop{
		Arrivals:    ar,
		DurationMs:  o.duration,
		WarmupMs:    o.openWarmup,
		SLAMs:       o.sla,
		StartNodes:  o.startNodes,
		Admission:   cluster.Admission{Policy: pol, QueueBudgetMs: o.admitBudget},
		StreamStats: o.streamStats,
	}
	if o.users > 0 {
		open.Population = &traffic.Population{Users: o.users, RevisitProb: o.revisit, Affinity: o.affinity}
	}
	if o.scaleEvery > 0 {
		open.Autoscale = &cluster.Autoscaler{
			IntervalMs:    o.scaleEvery,
			UpBacklogMs:   o.scaleUp,
			DownBacklogMs: o.scaleDown,
			ProvisionMs:   o.provision,
			MinNodes:      o.minNodes,
			MaxNodes:      o.maxNodes,
		}
	}
	return open, nil
}

func main() {
	var o mainFlags
	var (
		modelName  = flag.String("model", "rm2_1", "rm1 | rm2_1 | rm2_2 | rm2_3")
		hotness    = flag.String("hotness", "high", "high | medium | low")
		schemeName = flag.String("scheme", "baseline", "per-node design point: baseline | swpf | mpht | integrated")
		policyName = flag.String("policy", "rowrange", "sharding policy: tablewise | rowrange")
		replicate  = flag.String("replicate", "0,0.001,0.01,0.05,0.2", "comma-separated hot-row replication fractions to sweep")
		seed       = flag.Uint64("seed", 1, "random seed")

		slowEvery  = flag.Float64("slowdown-every", 0, "mean ms between per-node slowdown episodes (0 = none)")
		slowDur    = flag.Float64("slowdown-dur", 0, "mean slowdown episode duration (ms)")
		slowFactor = flag.Float64("slowdown-factor", 4, "service-time multiplier during a slowdown episode")
		downEvery  = flag.Float64("down-every", 0, "mean ms between per-node outage windows (0 = none)")
		downDur    = flag.Float64("down-dur", 0, "mean outage window duration (ms)")
		dropProb   = flag.Float64("drop", 0, "per-copy transit drop probability in [0,1)")
		dropDetect = flag.Float64("drop-detect", 0, "transport loss-detection delay in ms (0 = 1 ms default)")
		timeoutMs  = flag.Float64("timeout", 0, "router per-sub-request timeout in ms (0 = no timeouts)")
		retries    = flag.Int("retries", 0, "max timeout retries down the standby chain")
		hedge      = flag.Float64("hedge", 0, "hedged-request delay in ms (0 = no hedging)")
		degraded   = flag.Bool("degraded", false, "join with partial results at the retry budget's deadline")
		checkMode  = flag.Bool("check", false, "enable runtime invariant assertions (debug; slower)")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.IntVar(&o.scale, "scale", 8, "model scale-down divisor")
	flag.IntVar(&o.nodes, "nodes", 8, "cluster size")
	flag.IntVar(&o.batch, "batch", 8, "samples per query batch (also the engine batch size)")
	flag.IntVar(&o.servers, "servers", 2, "concurrent servers per node")
	flag.IntVar(&o.cores, "cores", 0, "engine cores for the timing run (0 = all platform cores)")
	flag.IntVar(&o.shardWorkers, "shard-workers", 1, "logical processes per simulation run (conservative parallel DES; 1 = sequential, byte-identical at any value)")
	flag.IntVar(&o.queries, "queries", 4000, "closed-loop queries to simulate per sweep point")
	flag.Float64Var(&o.arrival, "arrival", 0, "closed-loop mean query inter-arrival time in ms (0 = derive from -util)")
	flag.Float64Var(&o.util, "util", 0.55, "target per-node utilization when -arrival/-rate is 0 (may exceed 1 with -open)")
	flag.Float64Var(&o.netLat, "netlat", 0.05, "one-way network latency per message (ms)")
	flag.Float64Var(&o.netBW, "netbw", 10, "per-link network bandwidth (GB/s)")

	flag.StringVar(&o.chaos, "chaos", "", `deterministic chaos schedule, e.g. "down:dom=2,at=200,for=150;part:a=0,b=1,at=400,for=100" (kinds: down, slow [x=factor], part [a=,b=], recover; times in ms)`)
	flag.IntVar(&o.domains, "domains", 0, "failure-domain count for -chaos (0 = one domain per node)")
	flag.Float64Var(&o.retryBudget, "retry-budget", 0, "cap retries+hedges at this fraction of served primary traffic (0 = uncapped)")
	flag.Float64Var(&o.adaptEpoch, "adapt-epoch", 0, "adaptive-mitigation control epoch in ms (0 = derive from timeout/hedge delay)")
	flag.Float64Var(&o.breakerTrip, "breaker-trip", 0, "open a node's circuit breaker at this windowed timeout rate in (0,1] (0 = no breakers)")
	flag.IntVar(&o.breakerMin, "breaker-min", 0, "min per-epoch samples before a breaker may trip (0 = 10)")
	flag.Float64Var(&o.breakerCooldown, "breaker-cooldown", 0, "ms an open breaker waits before half-open probing (0 = 4 epochs)")

	flag.BoolVar(&o.open, "open", false, "open-loop live-traffic mode: arrivals come from a generated stream, not a closed query count")
	flag.BoolVar(&o.streamStats, "stream-stats", false, "open-loop: fixed-memory streaming percentile sketches instead of exact nearest-rank (long runs; summaries differ within sketch error)")
	flag.Float64Var(&o.rate, "rate", 0, "open-loop base arrival rate in queries/ms (0 = derive from -util)")
	flag.Float64Var(&o.duration, "duration", 0, "open-loop horizon in ms (0 = 1000 mean arrival periods)")
	flag.Float64Var(&o.openWarmup, "open-warmup", 0, "warmup ms excluded from open-loop metrics (0 = 5% of duration, -1 = none)")
	flag.Float64Var(&o.sla, "sla", 0, "per-query latency SLA in ms (0 = 8x the mean per-query work)")
	flag.StringVar(&o.arrivals, "arrivals", "poisson", "arrival model: poisson | mmpp")
	flag.Float64Var(&o.burstFactor, "burst-factor", 2, "mmpp: burst-state rate multiplier")
	flag.Float64Var(&o.burstEvery, "burst-every", 0, "mmpp: mean ms between burst episodes")
	flag.Float64Var(&o.burstDur, "burst-dur", 0, "mmpp: mean burst episode duration (ms)")
	flag.Float64Var(&o.day, "day", 0, "diurnal period in ms (0 = no diurnal ramp)")
	flag.Float64Var(&o.diurnal, "diurnal", 0, "diurnal amplitude in [0,1)")
	flag.Float64Var(&o.flashEvery, "flash-every", 0, "mean ms between flash-crowd episodes (0 = none)")
	flag.Float64Var(&o.flashDur, "flash-dur", 0, "mean flash-crowd duration (ms)")
	flag.Float64Var(&o.flashFactor, "flash-factor", 3, "flash-crowd rate multiplier")
	flag.IntVar(&o.users, "users", 0, "synthetic user population size (0 = anonymous arrivals)")
	flag.Float64Var(&o.revisit, "revisit", 0.6, "probability an arrival revisits a recently seen user")
	flag.Float64Var(&o.affinity, "affinity", 0.5, "probability a revisit lookup draws from the user's profile rows")
	flag.StringVar(&o.admit, "admit", "none", "admission policy: none | shed")
	flag.Float64Var(&o.admitBudget, "admit-budget", 0, "shed arrivals whose worst involved-node backlog exceeds this (ms; 0 = half the SLA)")
	flag.IntVar(&o.startNodes, "start-nodes", 0, "nodes active at t=0 (0 = all)")
	flag.Float64Var(&o.scaleEvery, "scale-every", 0, "autoscaler control interval in ms (0 = no autoscaler)")
	flag.Float64Var(&o.scaleUp, "scale-up", 0, "scale up when mean active-node backlog exceeds this (ms)")
	flag.Float64Var(&o.scaleDown, "scale-down", 0, "drain a node when mean backlog falls below this (ms)")
	flag.Float64Var(&o.provision, "provision", 0, "ms a scaled-up node takes to come online")
	flag.IntVar(&o.minNodes, "min-nodes", 0, "autoscaler floor (0 = 1)")
	flag.IntVar(&o.maxNodes, "max-nodes", 0, "autoscaler ceiling (0 = -nodes)")
	flag.Parse()
	check.Enabled = *checkMode

	setFlags := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })
	if err := o.validate(func(name string) bool { return setFlags[name] }); err != nil {
		fatal(err)
	}
	if o.shardWorkers > 1 {
		cluster.SetExecBackend(cluster.Parallel(o.shardWorkers))
	}

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "dlrmcluster:", err)
		}
	}()

	base, err := dlrm.ByName(*modelName)
	if err != nil {
		fatal(err)
	}
	h, err := parseHotness(*hotness)
	if err != nil {
		fatal(err)
	}
	scheme, err := core.ParseScheme(*schemeName)
	if err != nil {
		fatal(err)
	}
	policy, err := cluster.ParsePolicy(*policyName)
	if err != nil {
		fatal(err)
	}
	fractions, err := parseFractions(*replicate)
	if err != nil {
		fatal(err)
	}
	cpu := platform.CascadeLake()
	n := cpu.Cores
	if o.cores > 0 && o.cores <= cpu.Cores {
		n = o.cores
	}
	model := base.Scaled(o.scale)

	// One memoizable engine run sets the per-node service model.
	rep, err := core.Run(core.Options{Model: model, Hotness: h, Scheme: scheme, Cores: n, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	lookups := o.batch * model.Tables * model.LookupsPerSample
	tm := cluster.TimingFromReport(rep, cpu, lookups)

	plan, err := cluster.NewPlan(model, o.nodes, policy, 0, *seed)
	if err != nil {
		fatal(err)
	}
	cfg := cluster.Config{
		Plan:            plan,
		Hotness:         h,
		SamplesPerQuery: o.batch,
		Timing:          tm,
		Net:             cluster.Network{LatencyMs: o.netLat, BandwidthGBs: o.netBW},
		ServersPerNode:  o.servers,
		JitterFrac:      0.08,
		Faults: cluster.FaultModel{
			SlowdownEveryMs: *slowEvery,
			SlowdownMeanMs:  *slowDur,
			SlowdownFactor:  *slowFactor,
			DownEveryMs:     *downEvery,
			DownMeanMs:      *downDur,
			DropProb:        *dropProb,
			DropDetectMs:    *dropDetect,
		},
		Mitigation: cluster.Mitigation{
			TimeoutMs:         *timeoutMs,
			MaxRetries:        *retries,
			HedgeDelayMs:      *hedge,
			DegradedJoin:      *degraded,
			RetryBudget:       o.retryBudget,
			AdaptEpochMs:      o.adaptEpoch,
			BreakerTripRate:   o.breakerTrip,
			BreakerMinSamples: o.breakerMin,
			BreakerCooldownMs: o.breakerCooldown,
		},
		Seed: *seed,
	}
	if o.chaos != "" {
		sched, err := o.chaosSchedule()
		if err != nil {
			fatal(err)
		}
		cfg.Chaos = sched
	}
	if o.open {
		// Resolve the derive-from-load defaults now that the service model
		// is known, then hand the rest to the cluster tier's validation.
		if o.rate == 0 {
			o.rate = 1 / cluster.ArrivalForUtilization(plan, tm, o.batch, o.servers, o.util)
		}
		if o.duration == 0 {
			o.duration = 1000 / o.rate
		}
		if o.sla == 0 {
			o.sla = 8 * cluster.QueryWorkMs(plan, tm, o.batch)
		}
		if o.admit == "shed" && o.admitBudget == 0 {
			o.admitBudget = o.sla / 2
		}
		open, err := o.openLoop()
		if err != nil {
			fatal(err)
		}
		cfg.Open = open
	} else {
		cfg.MeanArrivalMs = o.arrival
		cfg.Queries = o.queries
		if cfg.MeanArrivalMs <= 0 {
			cfg.MeanArrivalMs = cluster.ArrivalForUtilization(plan, tm, o.batch, o.servers, o.util)
		}
	}
	// Collect every fault/mitigation/traffic/geometry violation in one report.
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}

	fmt.Printf("dlrmcluster: %s (scale 1/%d), %v, %s per-node design\n",
		base.Name, o.scale, h, scheme)
	fmt.Printf("%d nodes, %s sharding: %.1f MB/node shard (%.1f MB total embeddings)\n",
		plan.Nodes, plan.Policy, float64(plan.MaxShardBytes())/1e6, float64(plan.TotalBytes())/1e6)
	fmt.Printf("service: %.3f µs/cold lookup, %.3f µs/hot lookup, dense %.3f ms; network %.3g ms + %g GB/s\n",
		tm.ColdLookupUs, tm.HotLookupUs, tm.DenseMs, o.netLat, o.netBW)
	if o.open {
		fmt.Printf("open-loop: %s arrivals at %.2f q/ms base rate, horizon %.1f ms (warmup %g), SLA %.3f ms\n",
			cfg.Open.Arrivals.Model, o.rate, o.duration, o.openWarmup, o.sla)
		if o.users > 0 {
			fmt.Printf("population: %d users, revisit p=%.2f, profile affinity %.2f\n", o.users, o.revisit, o.affinity)
		}
		fmt.Printf("admission: %s", cfg.Open.Admission.Policy)
		if cfg.Open.Admission.Policy == cluster.ShedOverBudget {
			fmt.Printf(" (backlog budget %.3f ms)", o.admitBudget)
		}
		if a := cfg.Open.Autoscale; a != nil {
			minN, maxN := a.MinNodes, a.MaxNodes
			if minN == 0 {
				minN = 1
			}
			if maxN == 0 {
				maxN = o.nodes
			}
			fmt.Printf("; autoscale every %.2f ms in [%d,%d] nodes", a.IntervalMs, minN, maxN)
		}
		fmt.Println()
	} else {
		fmt.Printf("load: %d-sample queries every %.4f ms (mean), %d servers/node, %d queries\n",
			o.batch, cfg.MeanArrivalMs, o.servers, o.queries)
	}
	faulted := cfg.Faults.Active()
	if faulted {
		fmt.Printf("faults: slowdowns every %g ms (×%g for %g ms), outages every %g ms (%g ms), drop %.1f%%\n",
			cfg.Faults.SlowdownEveryMs, cfg.Faults.SlowdownFactor, cfg.Faults.SlowdownMeanMs,
			cfg.Faults.DownEveryMs, cfg.Faults.DownMeanMs, 100*cfg.Faults.DropProb)
		if cfg.Mitigation.Active() {
			fmt.Printf("mitigation: timeout %g ms × %d retries, hedge %g ms, degraded joins %v\n",
				cfg.Mitigation.TimeoutMs, cfg.Mitigation.MaxRetries, cfg.Mitigation.HedgeDelayMs,
				cfg.Mitigation.DegradedJoin)
		} else {
			fmt.Printf("mitigation: none (naive router waits out every fault)\n")
		}
	}
	if cfg.Chaos.Active() {
		doms := cfg.Chaos.Domains
		if doms == 0 {
			doms = o.nodes
		}
		fmt.Printf("chaos: %d failure domains, schedule %s\n", doms, cfg.Chaos.String())
		if !faulted && cfg.Mitigation.Active() {
			fmt.Printf("mitigation: timeout %g ms × %d retries, hedge %g ms, degraded joins %v\n",
				cfg.Mitigation.TimeoutMs, cfg.Mitigation.MaxRetries, cfg.Mitigation.HedgeDelayMs,
				cfg.Mitigation.DegradedJoin)
		}
	}
	if m := cfg.Mitigation; m.RetryBudget > 0 || m.BreakerTripRate > 0 {
		fmt.Printf("adaptive: retry budget %g of primaries, breaker trip %g (min %d samples, cooldown %g ms), epoch %g ms\n",
			m.RetryBudget, m.BreakerTripRate, m.BreakerMinSamples, m.BreakerCooldownMs, m.AdaptEpochMs)
	}
	fmt.Println()

	points, err := cluster.SweepReplication(cfg, fractions)
	if err != nil {
		fatal(err)
	}
	if o.open {
		autoscaled := cfg.Open.Autoscale != nil
		chaosed := cfg.Chaos.Active()
		fmt.Printf("%-10s %-8s %11s %7s %11s %9s %9s %6s %9s",
			"replicate", "local %", "offered", "shed %", "goodput", "p95 (ms)", "p99 (ms)", "util", "viol min")
		if autoscaled {
			fmt.Printf(" %6s %4s %5s", "nodes", "ups", "downs")
		}
		if chaosed {
			fmt.Printf(" %9s %7s %6s %8s", "ttr (ms)", "avail %", "amp", "brk min")
		}
		fmt.Println()
		for _, p := range points {
			r := p.Result
			fmt.Printf("%-10.3f %-8.1f %11.0f %6.1f%% %11.0f %9.3f %9.3f %5.1f%% %9.1f",
				p.Fraction, 100*r.LocalFraction, r.OfferedQPS, 100*r.ShedRate, r.Goodput,
				r.P95, r.P99, 100*r.Utilization, r.SLAViolationMinutes)
			if autoscaled {
				fmt.Printf(" %6.2f %4d %5d", r.MeanActiveNodes, r.ScaleUps, r.ScaleDowns)
			}
			if chaosed {
				ttr := "never"
				if r.TimeToRecoverMs >= 0 {
					ttr = fmt.Sprintf("%.0f", r.TimeToRecoverMs)
				}
				fmt.Printf(" %9s %6.1f%% %6.2f %8.2f", ttr, 100*r.DomainAvailability,
					r.RetryAmplification, r.BreakerOpenMinutes)
			}
			fmt.Println()
		}
		fmt.Printf("\nopen-loop traffic does not wait for the system: offered load is a function of time,\nso overload shows up as shed queries and SLA-violation minutes instead of slower arrivals\n")
		return
	}
	fmt.Printf("%-10s %-9s %-14s %-8s %-8s %9s %9s %9s %6s",
		"replicate", "hot rows", "replica MB/nd", "local %", "fan-out", "p50 (ms)", "p95 (ms)", "p99 (ms)", "util")
	if faulted {
		fmt.Printf(" %8s %7s %8s %9s", "avail %", "compl", "hedge %", "retries/q")
	}
	fmt.Println()
	for _, p := range points {
		hotRows := 0
		if p.Fraction > 0 {
			hp, err := cluster.NewPlan(model, o.nodes, policy, p.Fraction, *seed)
			if err != nil {
				fatal(err)
			}
			hotRows = hp.HotRows
		}
		r := p.Result
		fmt.Printf("%-10.3f %-9d %-14.2f %-8.1f %-8.2f %9.3f %9.3f %9.3f %5.1f%%",
			p.Fraction, hotRows, float64(r.ReplicaBytesPerNode)/1e6, 100*r.LocalFraction,
			r.MeanFanout, r.P50, r.P95, r.P99, 100*r.Utilization)
		if faulted {
			fmt.Printf(" %7.1f%% %7.4f %7.1f%% %9.2f", 100*r.Availability, r.Completeness,
				100*r.HedgeRate, r.RetriesPerQuery)
		}
		fmt.Println()
	}
	fmt.Printf("\nreplicating the hottest rows trades per-node replica memory for tail latency:\nhot lookups short-circuit the fan-out and are served cache-resident at the query's home node\n")
}

func parseFractions(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad replication fraction %q", part)
		}
		if f < 0 || f > 1 {
			return nil, fmt.Errorf("replication fraction %g out of [0,1]", f)
		}
		out = append(out, f)
	}
	return out, nil
}

func parseHotness(s string) (trace.Hotness, error) {
	switch s {
	case "high":
		return trace.HighHot, nil
	case "medium", "med":
		return trace.MediumHot, nil
	case "low":
		return trace.LowHot, nil
	}
	return 0, fmt.Errorf("unknown hotness %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dlrmcluster:", err)
	os.Exit(1)
}
