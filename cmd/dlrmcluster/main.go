// Command dlrmcluster simulates a sharded multi-node DLRM serving fleet:
// per-node service costs come from the single-node timing simulator, and
// the cluster tier (internal/cluster) models sharding, router fan-out
// over a configurable network, and hot-row replication.
//
// Usage:
//
//	dlrmcluster -model rm2_1 -nodes 8 -policy rowrange -hotness high
//	dlrmcluster -scheme integrated -replicate 0,0.01,0.05 -netlat 0.1
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dlrmsim/internal/check"
	"dlrmsim/internal/cluster"
	"dlrmsim/internal/core"
	"dlrmsim/internal/dlrm"
	"dlrmsim/internal/platform"
	"dlrmsim/internal/prof"
	"dlrmsim/internal/trace"
)

func main() {
	var (
		modelName  = flag.String("model", "rm2_1", "rm1 | rm2_1 | rm2_2 | rm2_3")
		scale      = flag.Int("scale", 8, "model scale-down divisor")
		hotness    = flag.String("hotness", "high", "high | medium | low")
		schemeName = flag.String("scheme", "baseline", "per-node design point: baseline | swpf | mpht | integrated")
		nodes      = flag.Int("nodes", 8, "cluster size")
		policyName = flag.String("policy", "rowrange", "sharding policy: tablewise | rowrange")
		replicate  = flag.String("replicate", "0,0.001,0.01,0.05,0.2", "comma-separated hot-row replication fractions to sweep")
		batch      = flag.Int("batch", 8, "samples per query batch (also the engine batch size)")
		servers    = flag.Int("servers", 2, "concurrent servers per node")
		cores      = flag.Int("cores", 0, "engine cores for the timing run (0 = all platform cores)")
		arrival    = flag.Float64("arrival", 0, "mean query inter-arrival time in ms (0 = derive from -util)")
		util       = flag.Float64("util", 0.55, "target per-node utilization when -arrival is 0")
		netLat     = flag.Float64("netlat", 0.05, "one-way network latency per message (ms)")
		netBW      = flag.Float64("netbw", 10, "per-link network bandwidth (GB/s)")
		queries    = flag.Int("queries", 4000, "queries to simulate per sweep point")
		seed       = flag.Uint64("seed", 1, "random seed")

		slowEvery  = flag.Float64("slowdown-every", 0, "mean ms between per-node slowdown episodes (0 = none)")
		slowDur    = flag.Float64("slowdown-dur", 0, "mean slowdown episode duration (ms)")
		slowFactor = flag.Float64("slowdown-factor", 4, "service-time multiplier during a slowdown episode")
		downEvery  = flag.Float64("down-every", 0, "mean ms between per-node outage windows (0 = none)")
		downDur    = flag.Float64("down-dur", 0, "mean outage window duration (ms)")
		dropProb   = flag.Float64("drop", 0, "per-copy transit drop probability in [0,1)")
		dropDetect = flag.Float64("drop-detect", 0, "transport loss-detection delay in ms (0 = 1 ms default)")
		timeoutMs  = flag.Float64("timeout", 0, "router per-sub-request timeout in ms (0 = no timeouts)")
		retries    = flag.Int("retries", 0, "max timeout retries down the standby chain")
		hedge      = flag.Float64("hedge", 0, "hedged-request delay in ms (0 = no hedging)")
		degraded   = flag.Bool("degraded", false, "join with partial results at the retry budget's deadline")
		checkMode  = flag.Bool("check", false, "enable runtime invariant assertions (debug; slower)")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	check.Enabled = *checkMode

	// Fail on every bad flag at once, before the engine run starts.
	var flagErrs []error
	if *scale < 1 {
		flagErrs = append(flagErrs, fmt.Errorf("-scale %d (want >= 1)", *scale))
	}
	if *nodes < 1 {
		flagErrs = append(flagErrs, fmt.Errorf("-nodes %d (want >= 1)", *nodes))
	}
	if *batch < 1 {
		flagErrs = append(flagErrs, fmt.Errorf("-batch %d (want >= 1)", *batch))
	}
	if *servers < 1 {
		flagErrs = append(flagErrs, fmt.Errorf("-servers %d (want >= 1)", *servers))
	}
	if *cores < 0 {
		flagErrs = append(flagErrs, fmt.Errorf("-cores %d (want >= 0)", *cores))
	}
	if *queries < 1 {
		flagErrs = append(flagErrs, fmt.Errorf("-queries %d (want >= 1)", *queries))
	}
	if *arrival < 0 {
		flagErrs = append(flagErrs, fmt.Errorf("-arrival %g (want >= 0)", *arrival))
	}
	if *arrival == 0 && (*util <= 0 || *util >= 1) {
		flagErrs = append(flagErrs, fmt.Errorf("-util %g outside (0,1)", *util))
	}
	if *netLat < 0 || *netBW < 0 {
		flagErrs = append(flagErrs, fmt.Errorf("negative network parameters (-netlat %g, -netbw %g)", *netLat, *netBW))
	}
	if len(flagErrs) > 0 {
		fatal(errors.Join(flagErrs...))
	}

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "dlrmcluster:", err)
		}
	}()

	base, err := dlrm.ByName(*modelName)
	if err != nil {
		fatal(err)
	}
	h, err := parseHotness(*hotness)
	if err != nil {
		fatal(err)
	}
	scheme, err := core.ParseScheme(*schemeName)
	if err != nil {
		fatal(err)
	}
	policy, err := cluster.ParsePolicy(*policyName)
	if err != nil {
		fatal(err)
	}
	fractions, err := parseFractions(*replicate)
	if err != nil {
		fatal(err)
	}
	cpu := platform.CascadeLake()
	n := cpu.Cores
	if *cores > 0 && *cores <= cpu.Cores {
		n = *cores
	}
	model := base.Scaled(*scale)

	// One memoizable engine run sets the per-node service model.
	rep, err := core.Run(core.Options{Model: model, Hotness: h, Scheme: scheme, Cores: n, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	lookups := *batch * model.Tables * model.LookupsPerSample
	tm := cluster.TimingFromReport(rep, cpu, lookups)

	plan, err := cluster.NewPlan(model, *nodes, policy, 0, *seed)
	if err != nil {
		fatal(err)
	}
	cfg := cluster.Config{
		Plan:            plan,
		Hotness:         h,
		SamplesPerQuery: *batch,
		Timing:          tm,
		Net:             cluster.Network{LatencyMs: *netLat, BandwidthGBs: *netBW},
		ServersPerNode:  *servers,
		MeanArrivalMs:   *arrival,
		JitterFrac:      0.08,
		Queries:         *queries,
		Faults: cluster.FaultModel{
			SlowdownEveryMs: *slowEvery,
			SlowdownMeanMs:  *slowDur,
			SlowdownFactor:  *slowFactor,
			DownEveryMs:     *downEvery,
			DownMeanMs:      *downDur,
			DropProb:        *dropProb,
			DropDetectMs:    *dropDetect,
		},
		Mitigation: cluster.Mitigation{
			TimeoutMs:    *timeoutMs,
			MaxRetries:   *retries,
			HedgeDelayMs: *hedge,
			DegradedJoin: *degraded,
		},
		Seed: *seed,
	}
	if cfg.MeanArrivalMs <= 0 {
		cfg.MeanArrivalMs = cluster.ArrivalForUtilization(plan, tm, *batch, *servers, *util)
	}
	// Collect every fault/mitigation/geometry violation in one report.
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}

	fmt.Printf("dlrmcluster: %s (scale 1/%d), %v, %s per-node design\n",
		base.Name, *scale, h, scheme)
	fmt.Printf("%d nodes, %s sharding: %.1f MB/node shard (%.1f MB total embeddings)\n",
		plan.Nodes, plan.Policy, float64(plan.MaxShardBytes())/1e6, float64(plan.TotalBytes())/1e6)
	fmt.Printf("service: %.3f µs/cold lookup, %.3f µs/hot lookup, dense %.3f ms; network %.3g ms + %g GB/s\n",
		tm.ColdLookupUs, tm.HotLookupUs, tm.DenseMs, *netLat, *netBW)
	fmt.Printf("load: %d-sample queries every %.4f ms (mean), %d servers/node, %d queries\n",
		*batch, cfg.MeanArrivalMs, *servers, *queries)
	faulted := cfg.Faults.Active()
	if faulted {
		fmt.Printf("faults: slowdowns every %g ms (×%g for %g ms), outages every %g ms (%g ms), drop %.1f%%\n",
			cfg.Faults.SlowdownEveryMs, cfg.Faults.SlowdownFactor, cfg.Faults.SlowdownMeanMs,
			cfg.Faults.DownEveryMs, cfg.Faults.DownMeanMs, 100*cfg.Faults.DropProb)
		if cfg.Mitigation.Active() {
			fmt.Printf("mitigation: timeout %g ms × %d retries, hedge %g ms, degraded joins %v\n",
				cfg.Mitigation.TimeoutMs, cfg.Mitigation.MaxRetries, cfg.Mitigation.HedgeDelayMs,
				cfg.Mitigation.DegradedJoin)
		} else {
			fmt.Printf("mitigation: none (naive router waits out every fault)\n")
		}
	}
	fmt.Println()

	points, err := cluster.SweepReplication(cfg, fractions)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%-10s %-9s %-14s %-8s %-8s %9s %9s %9s %6s",
		"replicate", "hot rows", "replica MB/nd", "local %", "fan-out", "p50 (ms)", "p95 (ms)", "p99 (ms)", "util")
	if faulted {
		fmt.Printf(" %8s %7s %8s %9s", "avail %", "compl", "hedge %", "retries/q")
	}
	fmt.Println()
	for _, p := range points {
		hotRows := 0
		if p.Fraction > 0 {
			hp, err := cluster.NewPlan(model, *nodes, policy, p.Fraction, *seed)
			if err != nil {
				fatal(err)
			}
			hotRows = hp.HotRows
		}
		r := p.Result
		fmt.Printf("%-10.3f %-9d %-14.2f %-8.1f %-8.2f %9.3f %9.3f %9.3f %5.1f%%",
			p.Fraction, hotRows, float64(r.ReplicaBytesPerNode)/1e6, 100*r.LocalFraction,
			r.MeanFanout, r.P50, r.P95, r.P99, 100*r.Utilization)
		if faulted {
			fmt.Printf(" %7.1f%% %7.4f %7.1f%% %9.2f", 100*r.Availability, r.Completeness,
				100*r.HedgeRate, r.RetriesPerQuery)
		}
		fmt.Println()
	}
	fmt.Printf("\nreplicating the hottest rows trades per-node replica memory for tail latency:\nhot lookups short-circuit the fan-out and are served cache-resident at the query's home node\n")
}

func parseFractions(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad replication fraction %q", part)
		}
		if f < 0 || f > 1 {
			return nil, fmt.Errorf("replication fraction %g out of [0,1]", f)
		}
		out = append(out, f)
	}
	return out, nil
}

func parseHotness(s string) (trace.Hotness, error) {
	switch s {
	case "high":
		return trace.HighHot, nil
	case "medium", "med":
		return trace.MediumHot, nil
	case "low":
		return trace.LowHot, nil
	}
	return 0, fmt.Errorf("unknown hotness %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dlrmcluster:", err)
	os.Exit(1)
}
