// Command reusedist runs the paper's Fig. 6 reuse-distance model on a
// synthetic trace and prints the Fig. 7 characterization: the distance
// histogram, fully-associative hit rates at the cache capacities, and the
// cold-miss fraction.
//
// Usage:
//
//	reusedist -hotness low -cores 24            # paper's Fig. 7 setup
//	reusedist -hotness high -dim 128 -cores 1   # single-core view
package main

import (
	"flag"
	"fmt"
	"os"

	"dlrmsim/internal/platform"
	"dlrmsim/internal/reuse"
	"dlrmsim/internal/trace"
)

func main() {
	var (
		hotness = flag.String("hotness", "medium", "one-item | high | medium | low | random")
		rows    = flag.Int("rows", 125_000, "rows per embedding table")
		tables  = flag.Int("tables", 8, "number of tables")
		batch   = flag.Int("batch", 64, "batch size")
		lookups = flag.Int("lookups", 120, "lookups per sample")
		cores   = flag.Int("cores", 24, "concurrently executing cores (interleaved streams)")
		dim     = flag.Int("dim", 128, "embedding dimension")
		seed    = flag.Uint64("seed", 1, "random seed")
		hist    = flag.Bool("hist", false, "print the log2 distance histogram")
	)
	flag.Parse()

	h, err := parseHotness(*hotness)
	if err != nil {
		fatal(err)
	}
	ds, err := trace.NewDataset(trace.Config{
		Hotness: h, Rows: *rows, Tables: *tables,
		BatchSize: *batch, LookupsPerSample: *lookups, Batches: *cores, Seed: *seed,
	})
	if err != nil {
		fatal(err)
	}
	cpu := platform.CascadeLake()
	res, err := reuse.Run(ds, reuse.ModelConfig{
		EmbeddingDim: *dim,
		Cores:        *cores,
		CacheBytes:   []int64{cpu.Mem.L1.SizeBytes, cpu.Mem.L2.SizeBytes, cpu.Mem.L3.SizeBytes},
		CacheNames:   []string{"L1D", "L2", "L3"},
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("dataset=%v tables=%d rows=%d cores=%d dim=%d accesses=%d\n",
		h, *tables, *rows, *cores, *dim, res.Accesses)
	for _, name := range []string{"L1D", "L2", "L3"} {
		fmt.Printf("%-4s capacity=%6d vectors  hit rate=%6.2f%%\n",
			name, res.VectorCapacity[name], 100*res.HitRates[name])
	}
	fmt.Printf("cold misses: %.2f%% of accesses\n", 100*res.ColdMissFraction)
	fmt.Printf("mean finite reuse distance: %.0f vectors\n", res.MeanDistance)
	if *hist {
		fmt.Println("\nreuse-distance histogram (log2 buckets):")
		for _, b := range res.Hist.NonEmptyBuckets() {
			if b.Lo < 0 {
				fmt.Printf("  cold        %12d\n", b.Count)
				continue
			}
			fmt.Printf("  [%8d, %8d] %12d\n", b.Lo, b.Hi, b.Count)
		}
	}
}

func parseHotness(s string) (trace.Hotness, error) {
	switch s {
	case "one-item", "oneitem":
		return trace.OneItem, nil
	case "high":
		return trace.HighHot, nil
	case "medium", "med":
		return trace.MediumHot, nil
	case "low":
		return trace.LowHot, nil
	case "random":
		return trace.RandomAccess, nil
	}
	return 0, fmt.Errorf("reusedist: unknown hotness %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "reusedist:", err)
	os.Exit(1)
}
