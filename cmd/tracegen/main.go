// Command tracegen generates and inspects synthetic embedding-lookup
// traces (the substitution for Meta's dlrm_datasets; see DESIGN.md §2).
//
// Usage:
//
//	tracegen -hotness low -rows 1000000 -tables 4 -o trace.bin   # write
//	tracegen -hotness high -stats                                # inspect
//	tracegen -in trace.bin -stats                                # re-read
package main

import (
	"flag"
	"fmt"
	"os"

	"dlrmsim/internal/trace"
)

func main() {
	var (
		hotness = flag.String("hotness", "medium", "one-item | high | medium | low | random")
		rows    = flag.Int("rows", 1_000_000, "rows per embedding table")
		tables  = flag.Int("tables", 4, "number of tables")
		batch   = flag.Int("batch", 64, "batch size")
		lookups = flag.Int("lookups", 120, "lookups per sample")
		batches = flag.Int("batches", 8, "number of batches")
		seed    = flag.Uint64("seed", 1, "random seed")
		out     = flag.String("o", "", "write the trace to this file")
		in      = flag.String("in", "", "read and inspect an existing trace file")
		stats   = flag.Bool("stats", false, "print hotness statistics (Fig. 5 data)")
		topN    = flag.Int("top", 10, "how many top access counts to print with -stats")
	)
	flag.Parse()

	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		st, err := trace.Read(f)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("trace: %+v\n", st.Config)
		tb := st.Batch(0, 0)
		fmt.Printf("batch 0 / table 0: %d samples, %d indices\n", len(tb.Offsets)-1, len(tb.Indices))
		return
	}

	h, err := parseHotness(*hotness)
	if err != nil {
		fatal(err)
	}
	ds, err := trace.NewDataset(trace.Config{
		Hotness: h, Rows: *rows, Tables: *tables,
		BatchSize: *batch, LookupsPerSample: *lookups, Batches: *batches, Seed: *seed,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("dataset: %v, %d tables x %d rows, %d batches x %d samples x %d lookups (zipf s=%.3f)\n",
		h, *tables, *rows, *batches, *batch, *lookups, ds.Exponent())

	if *stats {
		for t := 0; t < min(*tables, 3); t++ {
			counts := ds.AccessCounts(t)
			total := 0
			for _, c := range counts {
				total += c
			}
			fmt.Printf("table %d: unique=%.3f distinct=%d accesses=%d\n",
				t, ds.UniqueFraction(t), len(counts), total)
			n := min(*topN, len(counts))
			fmt.Printf("  top-%d counts:", n)
			for i := 0; i < n; i++ {
				fmt.Printf(" %d", counts[i])
			}
			fmt.Println()
		}
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := trace.Write(f, ds); err != nil {
			fatal(err)
		}
		info, _ := f.Stat()
		fmt.Printf("wrote %s (%d bytes)\n", *out, info.Size())
	}
}

func parseHotness(s string) (trace.Hotness, error) {
	switch s {
	case "one-item", "oneitem":
		return trace.OneItem, nil
	case "high":
		return trace.HighHot, nil
	case "medium", "med":
		return trace.MediumHot, nil
	case "low":
		return trace.LowHot, nil
	case "random":
		return trace.RandomAccess, nil
	}
	return 0, fmt.Errorf("tracegen: unknown hotness %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
