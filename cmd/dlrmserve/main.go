// Command dlrmserve explores tail latency and SLA compliance (the paper's
// Fig. 17): it obtains per-design batch service times from the timing
// simulator and subjects each design to a Poisson arrival sweep.
//
// Usage:
//
//	dlrmserve -model rm2_1 -hotness low -scale 8
//	dlrmserve -model rm1 -schemes baseline,integrated -cores 16
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dlrmsim/internal/core"
	"dlrmsim/internal/dlrm"
	"dlrmsim/internal/platform"
	"dlrmsim/internal/serve"
	"dlrmsim/internal/trace"
)

func main() {
	var (
		modelName = flag.String("model", "rm2_1", "rm1 | rm2_1 | rm2_2 | rm2_3")
		hotness   = flag.String("hotness", "low", "high | medium | low")
		schemes   = flag.String("schemes", "baseline,swpf,mpht,integrated", "comma-separated design points")
		scale     = flag.Int("scale", 8, "model scale-down divisor")
		cores     = flag.Int("cores", 0, "server cores (0 = all platform cores)")
		requests  = flag.Int("requests", 3000, "requests per sweep point")
		seed      = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	base, err := dlrm.ByName(*modelName)
	if err != nil {
		fatal(err)
	}
	h, err := parseHotness(*hotness)
	if err != nil {
		fatal(err)
	}
	cpu := platform.CascadeLake()
	n := cpu.Cores
	if *cores > 0 && *cores <= cpu.Cores {
		n = *cores
	}
	model := base.Scaled(*scale)

	fmt.Printf("dlrmserve: %s (scale 1/%d) on %s, %d cores, %v\n\n", base.Name, *scale, cpu.Name, n, h)

	// Baseline service time anchors the arrival sweep.
	bl, err := core.Run(core.Options{Model: model, Hotness: h, Scheme: core.Baseline, Cores: n, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	arrivals := make([]float64, 0, 6)
	for _, f := range []float64{0.4, 0.7, 1.0, 1.5, 2.5, 4.0} {
		arrivals = append(arrivals, f*bl.BatchLatencyMs/float64(n))
	}
	sla := base.SLATargetMs
	if *scale > 1 {
		sla = 4 * bl.BatchLatencyMs
		fmt.Printf("(scaled run: using SLA = 4x baseline latency = %.2f ms instead of the paper's %.0f ms)\n\n",
			sla, base.SLATargetMs)
	}

	fmt.Printf("%-12s %-10s", "design", "svc (ms)")
	for _, a := range arrivals {
		fmt.Printf("  p95@%.2fms", a)
	}
	fmt.Printf("  fastest SLA-ok\n")

	for _, name := range strings.Split(*schemes, ",") {
		s, err := core.ParseScheme(strings.TrimSpace(name))
		if err != nil {
			fatal(err)
		}
		rep, err := core.Run(core.Options{Model: model, Hotness: h, Scheme: s, Cores: n, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		points, err := serve.SweepArrival(serve.Config{
			Cores:      n,
			ServiceMs:  rep.BatchLatencyMs,
			JitterFrac: 0.08,
			Requests:   *requests,
			Seed:       *seed,
		}, arrivals)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-12s %-10.2f", s, rep.BatchLatencyMs)
		for _, p := range points {
			fmt.Printf("  %9.1f", p.Result.P95)
		}
		if a, ok := serve.FastestCompliantArrival(points, sla); ok {
			fmt.Printf("  %.2f ms\n", a)
		} else {
			fmt.Printf("  saturated\n")
		}
	}
}

func parseHotness(s string) (trace.Hotness, error) {
	switch s {
	case "high":
		return trace.HighHot, nil
	case "medium", "med":
		return trace.MediumHot, nil
	case "low":
		return trace.LowHot, nil
	}
	return 0, fmt.Errorf("dlrmserve: unknown hotness %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dlrmserve:", err)
	os.Exit(1)
}
