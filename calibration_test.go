package main

import "testing"

// calibrationSink defeats dead-code elimination of the canary loop.
var calibrationSink uint64

// BenchmarkCalibration is the host-speed canary for the perf-trajectory
// gate (`make bench-gate`). It is a fixed pure-integer workload — an
// xorshift64 chain with a data-dependent accumulator — that touches no
// simulator code, allocates nothing, and fits in registers, so its ns/op
// moves only with the effective speed of the machine the suite ran on
// (turbo state, contention, microcode), never with changes to this
// repository. benchjson -calibrate divides that drift out of the other
// benchmarks' ratios before applying the regression threshold.
//
// Do not "optimize" or otherwise change this loop: any edit invalidates
// comparisons against every previously committed BENCH_<n>.json.
func BenchmarkCalibration(b *testing.B) {
	b.ReportAllocs()
	acc := calibrationSink
	for i := 0; i < b.N; i++ {
		state := uint64(i) | 1
		for j := 0; j < 1024; j++ {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			acc += state>>1 | acc>>63
		}
	}
	calibrationSink = acc
}
