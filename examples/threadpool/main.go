// Threadpool: the paper's §4.3 PyTorch thread-pool modification as a
// working concurrent component. Two workers ("SMT siblings") per core
// group share a private task queue, so an inference never migrates off
// its physical core; MP-HT then splits one batch's embedding stage and
// Bottom-MLP across the two siblings. This example shows the placement
// guarantee and that the model-parallel decomposition is numerically
// identical to sequential inference.
//
// Run with: go run ./examples/threadpool
package main

import (
	"fmt"
	"log"

	"dlrmsim/internal/dlrm"
	"dlrmsim/internal/embedding"
	"dlrmsim/internal/sched"
	"dlrmsim/internal/trace"
)

func main() {
	cfg := dlrm.RM2Small().Scaled(16)
	model, err := dlrm.New(cfg, 42)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := trace.NewDataset(trace.Config{
		Hotness: trace.MediumHot, Rows: cfg.RowsPerTable, Tables: cfg.Tables,
		BatchSize: 8, LookupsPerSample: cfg.LookupsPerSample, Batches: 12, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}

	const groups = 4
	pool, err := sched.NewPool(sched.PerCoreQueue, groups)
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()
	server, err := sched.NewServer(pool, model, sched.ModelParallel)
	if err != nil {
		log.Fatal(err)
	}

	// Dispatch 12 batches round-robin over the 4 core groups.
	denses := make([][][]float32, 12)
	srcs := make([]embedding.BatchSource, 12)
	for b := range denses {
		b := b
		denses[b] = model.DenseBatch(8, uint64(b))
		srcs[b] = func(tbl int) trace.TableBatch { return ds.Batch(b, tbl) }
	}
	preds, err := server.InferAll(denses, srcs)
	if err != nil {
		log.Fatal(err)
	}

	// Verify the MP-HT decomposition against direct sequential inference.
	maxDiff := float64(0)
	for b := range preds {
		want, err := model.Infer(denses[b], srcs[b])
		if err != nil {
			log.Fatal(err)
		}
		for i := range want {
			if d := float64(preds[b][i] - want[i]); d != 0 {
				if d < 0 {
					d = -d
				}
				if d > maxDiff {
					maxDiff = d
				}
			}
		}
	}
	fmt.Printf("served %d batches on %d core groups (%s pool, %s mode)\n",
		len(preds), groups, pool.Policy(), server.Mode())
	fmt.Printf("max |MP-HT - sequential| over all predictions: %g (stages are independent)\n", maxDiff)
	fmt.Printf("per-group task counts (each batch = embedding + bottom-MLP + join): %v\n", pool.ExecCounts())
	fmt.Println("\nno group ran another group's tasks — the no-stealing guarantee the paper's")
	fmt.Println("thread-pool patch adds, which keeps an inference pinned to one physical core.")
}
