// Custom model: define a DLRM architecture that is not in the paper's
// Table 2 — a wide-and-shallow ranking model — generate a trace for it,
// inspect its stage breakdown, and check which of the paper's designs
// helps it most. This is the workflow a practitioner would follow to
// decide whether to adopt Algorithm 3 / MP-HT for their own model.
//
// Run with: go run ./examples/custom_model
package main

import (
	"fmt"
	"log"

	"dlrmsim/internal/core"
	"dlrmsim/internal/dlrm"
	"dlrmsim/internal/platform"
	"dlrmsim/internal/reuse"
	"dlrmsim/internal/trace"
)

func main() {
	// A hypothetical "wide" model: few, very tall tables, shallow MLPs.
	cfg := dlrm.Config{
		Name: "wide-rank", Class: "custom",
		Tables: 8, RowsPerTable: 400_000, EmbDim: 64, LookupsPerSample: 40,
		BottomMLP:   []int{512, 64},
		TopMLP:      []int{256, 1},
		SLATargetMs: 100,
	}
	if err := cfg.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("custom model %q: %.2f GB of embeddings, %d-deep bottom MLP\n\n",
		cfg.Name, float64(cfg.EmbeddingBytes())/1e9, len(cfg.BottomMLP))

	// 1. Will caches hold its working set? Ask the reuse-distance model.
	cpu := platform.CascadeLake()
	ds, err := trace.NewDataset(trace.Config{
		Hotness: trace.MediumHot, Rows: cfg.RowsPerTable, Tables: cfg.Tables,
		BatchSize: 64, LookupsPerSample: cfg.LookupsPerSample, Batches: 4, Seed: 9,
	})
	if err != nil {
		log.Fatal(err)
	}
	ru, err := reuse.Run(ds, reuse.ModelConfig{
		EmbeddingDim: cfg.EmbDim, Cores: 4,
		CacheBytes: []int64{cpu.Mem.L1.SizeBytes, cpu.Mem.L2.SizeBytes, cpu.Mem.L3.SizeBytes},
		CacheNames: []string{"L1D", "L2", "L3"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reuse model: L1D %.1f%%, L2 %.1f%%, L3 %.1f%% hit; %.1f%% cold misses\n",
		100*ru.HitRates["L1D"], 100*ru.HitRates["L2"], 100*ru.HitRates["L3"],
		100*ru.ColdMissFraction)

	// 2. Stage breakdown under the baseline.
	bl, err := core.Run(core.Options{
		Model: cfg, Hotness: trace.MediumHot, Scheme: core.Baseline, Cores: 4, Seed: 9,
	})
	if err != nil {
		log.Fatal(err)
	}
	total := bl.BatchLatencyCycles
	fmt.Printf("\nbaseline batch latency: %.3f ms\n", bl.BatchLatencyMs)
	for _, st := range []string{core.StageEmbedding, core.StageBottom, core.StageTop} {
		fmt.Printf("  %-22s %5.1f%%\n", st, 100*bl.StageCycles[st]/total)
	}

	// 3. Which design helps this model most?
	fmt.Println("\ndesign comparison:")
	bestName, bestSpd := "", 0.0
	for _, s := range []core.Scheme{core.SWPF, core.MPHT, core.Integrated} {
		rep, err := core.Run(core.Options{
			Model: cfg, Hotness: trace.MediumHot, Scheme: s, Cores: 4, Seed: 9,
		})
		if err != nil {
			log.Fatal(err)
		}
		spd := rep.Speedup(bl)
		fmt.Printf("  %-11s %.2fx\n", s, spd)
		if spd > bestSpd {
			bestName, bestSpd = s.String(), spd
		}
	}
	fmt.Printf("\nrecommendation: deploy %s (%.2fx) for %q\n", bestName, bestSpd, cfg.Name)
}
