// Tail latency: serve a Poisson request stream against a multi-core
// server, comparing the baseline design with the paper's Integrated
// design — the Fig. 17 experiment. A faster batch time both cuts p95 in
// the SLA-compliant region and pushes the saturation knee to faster
// arrival rates.
//
// Run with: go run ./examples/tail_latency
package main

import (
	"fmt"
	"log"

	"dlrmsim/internal/core"
	"dlrmsim/internal/dlrm"
	"dlrmsim/internal/serve"
	"dlrmsim/internal/trace"
)

func main() {
	const cores = 8
	model := dlrm.RM1().Scaled(8)

	service := map[core.Scheme]float64{}
	for _, s := range []core.Scheme{core.Baseline, core.Integrated} {
		rep, err := core.Run(core.Options{
			Model: model, Hotness: trace.LowHot, Scheme: s, Cores: cores, Seed: 3,
		})
		if err != nil {
			log.Fatal(err)
		}
		service[s] = rep.BatchLatencyMs
	}
	fmt.Printf("service times: baseline %.3f ms, integrated %.3f ms (%.2fx)\n\n",
		service[core.Baseline], service[core.Integrated],
		service[core.Baseline]/service[core.Integrated])

	// Sweep mean inter-arrival times from saturation to light load.
	arrivals := []float64{}
	for _, f := range []float64{0.5, 0.8, 1.0, 1.3, 2.0, 4.0} {
		arrivals = append(arrivals, f*service[core.Baseline]/cores)
	}
	sla := 4 * service[core.Baseline]

	fmt.Printf("%-12s", "arrival(ms)")
	for _, a := range arrivals {
		fmt.Printf("%10.3f", a)
	}
	fmt.Println()
	for _, s := range []core.Scheme{core.Baseline, core.Integrated} {
		points, err := serve.SweepArrival(serve.Config{
			Cores:      cores,
			ServiceMs:  service[s],
			JitterFrac: 0.08,
			Requests:   4000,
			Seed:       3,
		}, arrivals)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s", s)
		for _, p := range points {
			fmt.Printf("%10.2f", p.Result.P95)
		}
		if a, ok := serve.FastestCompliantArrival(points, sla); ok {
			fmt.Printf("   <- p95 (ms); SLA-ok down to %.3f ms arrivals", a)
		}
		fmt.Println()
	}
	fmt.Printf("\nSLA target: %.2f ms (4x baseline batch time; the paper uses 100/400 ms at full scale)\n", sla)
}
