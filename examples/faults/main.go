// Fault-injection walkthrough: run the same sharded fleet through a
// deterministic storm of node slowdowns, transient outages, and transit
// drops, then compare the router's mitigation policies — naive waiting,
// hedged backups, standby retries, and degraded joins. The point the
// tail-at-scale literature makes, reproduced in one screen: a policy
// calibrated to the *healthy* tail routes around sick nodes for a few
// percent of duplicated work, while the naive router inherits every
// fault, and degraded joins bound the tail by giving up a measured
// sliver of the answer.
//
// Run with: go run ./examples/faults
package main

import (
	"fmt"
	"log"

	"dlrmsim/internal/cluster"
	"dlrmsim/internal/dlrm"
	"dlrmsim/internal/trace"
)

func main() {
	const (
		scale   = 10
		batch   = 8
		nodes   = 8
		servers = 2
		seed    = 1
	)
	model := dlrm.RM2Small().Scaled(scale)

	// A synthetic per-node service model keeps the example self-contained
	// (the cluster example shows how to derive one from an engine run).
	tm := cluster.Timing{ColdLookupUs: 2, HotLookupUs: 0.1, SubRequestUs: 5, DenseMs: 0.05}

	plan, err := cluster.NewPlan(model, nodes, cluster.RowRange, 0.01, seed)
	if err != nil {
		log.Fatal(err)
	}
	base := cluster.Config{
		Plan:            plan,
		Hotness:         trace.MediumHot,
		SamplesPerQuery: batch,
		Timing:          tm,
		Net:             cluster.DefaultNetwork(),
		ServersPerNode:  servers,
		// 30% utilization leaves the headroom a real fleet keeps for
		// exactly this purpose: absorbing episodes and mitigation copies.
		MeanArrivalMs: cluster.ArrivalForUtilization(plan, tm, batch, servers, 0.30),
		JitterFrac:    0.08,
		Queries:       3000,
		Seed:          seed,
	}

	// 1. The healthy fleet sets the calibration reference.
	clean, err := cluster.Simulate(base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("healthy fleet: p50 %.3f ms, p95 %.3f ms, p99 %.3f ms\n\n", clean.P50, clean.P95, clean.P99)

	// 2. A deterministic storm: rare-but-severe slowdown episodes,
	// occasional outage windows, 2% transit loss — all pure functions of
	// the seed, so every policy below faces the identical storm.
	faults := cluster.FaultModel{
		SlowdownEveryMs: 200, SlowdownMeanMs: 10, SlowdownFactor: 6,
		DownEveryMs: 300, DownMeanMs: 4,
		DropProb: 0.02,
	}

	// 3. Mitigation deadlines hang off the *clean* tail — a policy tuned
	// to the faulted distribution fires far too late to help.
	policies := []struct {
		name string
		mit  cluster.Mitigation
	}{
		{"naive (wait out every fault)", cluster.Mitigation{}},
		{"hedge @2x clean p95", cluster.Mitigation{HedgeDelayMs: 2 * clean.P95}},
		{"retry @2x clean p95, max 3", cluster.Mitigation{TimeoutMs: 2 * clean.P95, MaxRetries: 3}},
		{"degraded join @4x clean p95", cluster.Mitigation{TimeoutMs: 4 * clean.P95, MaxRetries: 1, DegradedJoin: true}},
	}

	fmt.Printf("%-30s %9s %9s %8s %9s %8s %7s\n",
		"policy", "p95 (ms)", "p99 (ms)", "hedge %", "retries/q", "avail %", "compl")
	for _, p := range policies {
		cfg := base
		cfg.Faults = faults
		cfg.Mitigation = p.mit
		res, err := cluster.Simulate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-30s %9.3f %9.3f %7.1f%% %9.2f %7.1f%% %7.4f\n",
			p.name, res.P95, res.P99, 100*res.HedgeRate, res.RetriesPerQuery,
			100*res.Availability, res.Completeness)
	}

	fmt.Printf("\nthe naive router inherits every fault; one hedged backup trims the body of the\n" +
		"tail (p95) but its single standby can be sick too — the retry chain covers the\n" +
		"deep tail at full completeness; degraded joins bound the worst case by\n" +
		"abandoning the slowest shard at the deadline\n")
}
