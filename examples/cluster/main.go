// Cluster quickstart: shard a DLRM model across a small fleet, derive
// per-node service costs from the single-node timing simulator, and
// measure what hot-row replication buys — the memory/tail-latency trade
// the at-scale deployment actually tunes.
//
// Run with: go run ./examples/cluster
package main

import (
	"fmt"
	"log"

	"dlrmsim/internal/cluster"
	"dlrmsim/internal/core"
	"dlrmsim/internal/dlrm"
	"dlrmsim/internal/platform"
	"dlrmsim/internal/trace"
)

func main() {
	const (
		scale   = 10
		batch   = 8
		nodes   = 8
		servers = 2
		seed    = 1
	)
	model := dlrm.RM2Small().Scaled(scale)
	cpu := platform.CascadeLake()

	// 1. One single-node engine run sets the per-lookup service model.
	rep, err := core.Run(core.Options{
		Model: model, Hotness: trace.HighHot, Scheme: core.Baseline,
		Cores: cpu.Cores, Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	tm := cluster.TimingFromReport(rep, cpu, batch*model.Tables*model.LookupsPerSample)
	fmt.Printf("%s sharded over %d nodes: %.3f µs/cold lookup, %.3f µs when cache-resident\n\n",
		model.Name, nodes, tm.ColdLookupUs, tm.HotLookupUs)

	// 2. Row-range sharding spreads the tables evenly; every query fans
	// out to all nodes until replication short-circuits the hot rows.
	plan, err := cluster.NewPlan(model, nodes, cluster.RowRange, 0, seed)
	if err != nil {
		log.Fatal(err)
	}
	cfg := cluster.Config{
		Plan:            plan,
		Hotness:         trace.HighHot,
		SamplesPerQuery: batch,
		Timing:          tm,
		Net:             cluster.DefaultNetwork(),
		ServersPerNode:  servers,
		MeanArrivalMs:   cluster.ArrivalForUtilization(plan, tm, batch, servers, 0.55),
		JitterFrac:      0.08,
		Queries:         3000,
		Seed:            seed,
	}

	// 3. Sweep the replication fraction: each point replicates the top-k
	// hottest Zipf ranks of every table onto every node.
	points, err := cluster.SweepReplication(cfg, []float64{0, 0.001, 0.01, 0.05})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s %-14s %-8s %9s %9s\n", "replicate", "replica MB/nd", "local %", "p95 (ms)", "fan-out")
	for _, p := range points {
		fmt.Printf("%-10.3f %-14.2f %-8.1f %9.3f %9.2f\n",
			p.Fraction, float64(p.Result.ReplicaBytesPerNode)/1e6,
			100*p.Result.LocalFraction, p.Result.P95, p.Result.MeanFanout)
	}
	base, best := points[0].Result, points[len(points)-1].Result
	fmt.Printf("\nreplicating %.1f MB/node of hot rows cuts p95 from %.3f to %.3f ms (%.2fx)\n",
		float64(best.ReplicaBytesPerNode)/1e6, base.P95, best.P95, base.P95/best.P95)
}
