// Quickstart: build the paper's rm2_1 model, run one batch of real
// (numeric) inference, then compare the baseline design against the
// paper's Integrated design (software prefetching + model-parallel
// hyperthreading) on the timing simulator.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dlrmsim/internal/core"
	"dlrmsim/internal/dlrm"
	"dlrmsim/internal/platform"
	"dlrmsim/internal/trace"
)

func main() {
	// A scaled-down rm2_1 keeps the demo snappy; drop .Scaled for the
	// paper-scale model (60 tables × 1M rows × dim 128).
	cfg := dlrm.RM2Small().Scaled(8)
	model, err := dlrm.New(cfg, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model %s: %d tables x %d rows x dim %d (%.2f GB embeddings)\n",
		cfg.Name, cfg.Tables, cfg.RowsPerTable, cfg.EmbDim,
		float64(cfg.EmbeddingBytes())/1e9)

	// --- Numeric inference -------------------------------------------
	ds, err := trace.NewDataset(trace.Config{
		Hotness: trace.MediumHot, Rows: cfg.RowsPerTable, Tables: cfg.Tables,
		BatchSize: 4, LookupsPerSample: cfg.LookupsPerSample, Batches: 1, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	dense := model.DenseBatch(4, 7)
	preds, err := model.Infer(dense, func(t int) trace.TableBatch { return ds.Batch(0, t) })
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CTR predictions for one 4-sample batch: %.4f\n\n", preds)

	// --- Timing: baseline vs the paper's designs ---------------------
	cpu := platform.CascadeLake()
	fmt.Printf("timing on %s (%d cores, %g GHz)\n", cpu.FullName, cpu.Cores, cpu.FrequencyGHz)
	var baseline core.Report
	for _, s := range []core.Scheme{core.Baseline, core.SWPF, core.MPHT, core.Integrated} {
		rep, err := core.Run(core.Options{
			Model:   cfg,
			CPU:     cpu,
			Hotness: trace.MediumHot,
			Scheme:  s,
			Cores:   8,
			Seed:    42,
		})
		if err != nil {
			log.Fatal(err)
		}
		if s == core.Baseline {
			baseline = rep
		}
		fmt.Printf("  %-11s batch latency %7.3f ms   L1D hit %5.1f%%   speedup %.2fx\n",
			s, rep.BatchLatencyMs, 100*rep.L1HitRate, rep.Speedup(baseline))
	}
	fmt.Println("\nThe Integrated design is the paper's headline result (up to 1.59x).")
}
