// Prefetch tuning: explore Algorithm 3's design space (pf_dist ×
// pf_blocks) on a chosen platform, the way the paper derives its Fig. 10
// settings — distance 4 with the whole 8-line row on Cascade Lake, only
// 2 lines on wide-window parts like Sapphire Rapids.
//
// Run with: go run ./examples/prefetch_tuning [-cpu CSL|SKL|ICL|SPR|Zen3]
package main

import (
	"flag"
	"fmt"
	"log"

	"dlrmsim/internal/core"
	"dlrmsim/internal/dlrm"
	"dlrmsim/internal/platform"
	"dlrmsim/internal/trace"
)

func main() {
	cpuName := flag.String("cpu", "CSL", "platform: SKL | CSL | ICL | SPR | Zen3")
	flag.Parse()

	cpu, err := platform.ByName(*cpuName)
	if err != nil {
		log.Fatal(err)
	}
	opts := core.Options{
		Model:   dlrm.RM2Small().Scaled(8),
		CPU:     cpu,
		Hotness: trace.LowHot,
		Cores:   4,
		Seed:    1,
	}
	dists := []int{1, 2, 4, 8, 16}
	blocks := []int{1, 2, 4, 8}
	points, best, err := core.TunePrefetch(opts, dists, blocks)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Algorithm 3 tuning surface on %s (batch latency, cycles):\n\n", cpu.FullName)
	fmt.Printf("%8s", "dist\\blk")
	for _, b := range blocks {
		fmt.Printf("%12d", b)
	}
	fmt.Println()
	i := 0
	for _, d := range dists {
		fmt.Printf("%8d", d)
		for range blocks {
			fmt.Printf("%12.0f", points[i].BatchLatencyCycles)
			i++
		}
		fmt.Println()
	}
	fmt.Printf("\nbest: dist=%d blocks=%d (%.0f cycles, L1D hit %.1f%%)\n",
		best.Dist, best.Blocks, best.BatchLatencyCycles, 100*best.L1HitRate)
	fmt.Printf("platform's shipped tuning: dist=%d blocks=%d\n", cpu.TunedPFDist, cpu.TunedPFBlocks)
}
