package exp

import (
	"dlrmsim/internal/core"
	"dlrmsim/internal/dlrm"
	"dlrmsim/internal/platform"
	"dlrmsim/internal/trace"
)

func init() {
	register(Experiment{ID: "ext6", Title: "Generality across model families: DLRM vs DCN-v2 vs Wide&Deep (§2.3)", Run: runExt6})
}

// runExt6 tests the paper's §2.3 claim that its optimizations transfer to
// other recommendation-model families, because they all share the
// embedding front end: the same rm2_1 embedding configuration is run with
// DLRM's dot interaction, a DCN-v2 cross network, and Wide&Deep-style
// concatenation, under baseline / SW-PF / Integrated.
func runExt6(x *Context) (*Table, error) {
	t := &Table{
		ID: "ext6", Title: "Model families (rm2_1 embeddings, Medium Hot, multi-core)",
		Headers: []string{"family", "baseline (ms)", "emb share", "SW-PF", "Integrated"},
	}
	cores := x.Cfg.multiCores(platform.CascadeLake())
	kinds := []dlrm.InteractionKind{dlrm.DotInteraction, dlrm.CrossInteraction, dlrm.ConcatInteraction}
	schemes := []core.Scheme{core.Baseline, core.SWPF, core.Integrated}
	var cells []core.Options
	for _, kind := range kinds {
		model := x.Cfg.model(dlrm.RM2Small())
		model.Interaction = kind
		model.Name = model.Name + "/" + kind.String()
		for _, s := range schemes {
			cells = append(cells, core.Options{
				Model: model, Hotness: trace.MediumHot, Scheme: s, Cores: cores,
			})
		}
	}
	reps, err := x.RunMany(cells)
	if err != nil {
		return nil, err
	}
	for i, kind := range kinds {
		base, swpf, integ := reps[3*i], reps[3*i+1], reps[3*i+2]
		embShare := base.StageCycles[core.StageEmbedding] / base.BatchLatencyCycles
		t.AddRow(kind.String(), f2(base.BatchLatencyMs), pct(embShare),
			spd(swpf.Speedup(base)), spd(integ.Speedup(base)))
	}
	t.AddNote("every family keeps the embedding bottleneck, so Algorithm 3 and MP-HT transfer; heavier interactions (DCN-v2) dilute the end-to-end win exactly as the rm1-vs-rm2 contrast predicts")
	return t, nil
}
