package exp

import (
	"fmt"

	"dlrmsim/internal/dlrm"
	"dlrmsim/internal/platform"
	"dlrmsim/internal/reuse"
	"dlrmsim/internal/trace"
)

func init() {
	register(Experiment{ID: "ext3", Title: "Reuse-class decomposition (§3.1.2 taxonomy, quantified)", Run: runExt3})
}

// runExt3 quantifies the paper's §3.1.2 reuse taxonomy: every access is
// attributed to cold / intra-table / inter-batch / inter-core, with the
// per-class mean stack distance showing why caches capture some classes
// (intra-table) and not others (inter-batch — the "thick red arrow").
func runExt3(x *Context) (*Table, error) {
	t := &Table{
		ID: "ext3", Title: "Reuse classes (rm2_1 geometry, multi-core interleaving)",
		Headers: []string{"dataset", "class", "share", "mean distance (vectors)"},
	}
	m := x.Cfg.model(dlrm.RM2Small())
	cores := x.Cfg.multiCores(platform.CascadeLake())
	if cores > 8 {
		cores = 8 // the decomposition is O(accesses); cap for quick runs
	}
	for _, h := range trace.ProductionHotness {
		ds, err := trace.NewDataset(trace.Config{
			Hotness: h, Rows: m.RowsPerTable, Tables: m.Tables,
			BatchSize: x.Cfg.BatchSize, LookupsPerSample: m.LookupsPerSample,
			Batches: 2 * cores, Seed: x.Cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		dec, err := reuse.Decompose(ds, cores)
		if err != nil {
			return nil, err
		}
		for _, c := range []reuse.ReuseClass{reuse.ColdAccess, reuse.IntraTable, reuse.InterBatch, reuse.InterCore} {
			dist := "-"
			if c != reuse.ColdAccess && dec.Classes[c].Count > 0 {
				dist = fmt.Sprintf("%.0f", dec.Classes[c].MeanDistance())
			}
			t.AddRow(h.String(), c.String(), pct(dec.Fraction(c)), dist)
		}
	}
	t.AddNote("inter-batch reuses carry huge distances (≈ a whole pass of other tables in between), so caches only capture intra-table reuse — the paper's Fig. 7 insight")
	return t, nil
}
