package exp

import (
	"fmt"

	"dlrmsim/internal/core"
	"dlrmsim/internal/dlrm"
	"dlrmsim/internal/platform"
	"dlrmsim/internal/reuse"
	"dlrmsim/internal/trace"
)

func init() {
	register(Experiment{ID: "fig1", Title: "Execution time breakdown of different DLRMs", Run: runFig1})
	register(Experiment{ID: "fig4", Title: "RM2_1 embedding-stage performance across datasets", Run: runFig4})
	register(Experiment{ID: "fig5", Title: "Hot embedding access counts (sorted) in 3 datasets", Run: runFig5})
	register(Experiment{ID: "fig7", Title: "Reuse-distance study (rm2_1, 24 cores, batch 64)", Run: runFig7})
	register(Experiment{ID: "fig8", Title: "Multi-core scalability: execution time and bandwidth", Run: runFig8})
}

// runFig1 reproduces Fig. 1: per-stage shares of end-to-end time for the
// four Table 2 models on the Medium Hot trace (baseline, multi-core).
func runFig1(x *Context) (*Table, error) {
	t := &Table{
		ID: "fig1", Title: "Execution time breakdown of different DLRMs",
		Headers: []string{"model", "embedding", "bottom-MLP", "inter+top-MLP", "emb% (paper)"},
	}
	paperEmb := map[string]string{"rm2_1": "98%", "rm2_2": "96%", "rm2_3": "95%", "rm1": "65%"}
	cells := make([]core.Options, len(dlrm.Zoo()))
	for i, base := range dlrm.Zoo() {
		cells[i] = core.Options{
			Model:   x.Cfg.model(base),
			Hotness: trace.MediumHot,
			Scheme:  core.Baseline,
			Cores:   x.Cfg.multiCores(platform.CascadeLake()),
		}
	}
	reps, err := x.RunMany(cells)
	if err != nil {
		return nil, err
	}
	for i, base := range dlrm.Zoo() {
		rep := reps[i]
		emb := rep.StageCycles[core.StageEmbedding]
		bot := rep.StageCycles[core.StageBottom]
		top := rep.StageCycles[core.StageTop]
		total := emb + bot + top
		t.AddRow(base.Name, pct(emb/total), pct(bot/total), pct(top/total), paperEmb[base.Name])
	}
	t.AddNote("paper Fig. 1 / Table 2 'Execution time (Emb%%)' column gives the targets")
	return t, nil
}

// runFig4 reproduces Fig. 4: embedding-only batch latency, average load
// latency, and cache hit rates for rm2_1 across the five dataset classes.
func runFig4(x *Context) (*Table, error) {
	t := &Table{
		ID: "fig4", Title: "RM2_1 embedding-stage performance across datasets",
		Headers: []string{"dataset", "batch latency (ms)", "avg load lat (cyc)", "L1D hit", "L2 hit", "L3 hit"},
	}
	model := x.Cfg.model(dlrm.RM2Small())
	for _, h := range trace.AllHotness {
		rep, err := x.Run(core.Options{
			Model:         model,
			Hotness:       h,
			Scheme:        core.Baseline,
			Cores:         x.Cfg.multiCores(platform.CascadeLake()),
			EmbeddingOnly: true,
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(h.String(), f2(rep.BatchLatencyMs), f1(rep.AvgLoadLatency),
			pct(rep.L1HitRate), pct(rep.L2HitRate), pct(rep.L3HitRate))
	}
	t.AddNote("paper: one-item is ~L1-latency bound; latency and hit rates degrade monotonically toward random")
	return t, nil
}

// runFig5 reproduces Fig. 5: sorted access-count histograms and unique
// fractions for the three production-like hotness classes.
func runFig5(x *Context) (*Table, error) {
	t := &Table{
		ID: "fig5", Title: "Hot embedding access counts (sorted)",
		Headers: []string{"dataset", "unique frac", "top-1 count", "top-10 share", "top-1% share", "accesses"},
	}
	m := x.Cfg.model(dlrm.RM2Small())
	for _, h := range trace.ProductionHotness {
		ds, err := trace.NewDataset(trace.Config{
			Hotness: h, Rows: m.RowsPerTable, Tables: 1,
			BatchSize: x.Cfg.BatchSize, LookupsPerSample: m.LookupsPerSample,
			Batches: 8, Seed: x.Cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		counts := ds.AccessCounts(0)
		total, top10, top1pct := 0, 0, 0
		for i, c := range counts {
			total += c
			if i < 10 {
				top10 += c
			}
			if i < (len(counts)+99)/100 {
				top1pct += c
			}
		}
		t.AddRow(h.String(), f3(ds.UniqueFraction(0)), fmt.Sprintf("%d", counts[0]),
			pct(float64(top10)/float64(total)), pct(float64(top1pct)/float64(total)),
			fmt.Sprintf("%d", total))
	}
	t.AddNote("paper §5: unique accesses are 3%% / 24%% / 60%% for High/Medium/Low")
	return t, nil
}

// runFig7 reproduces Fig. 7: reuse-distance characterization per dataset —
// fully-associative hit rates at L1/L2/L3 capacities and the cold-miss
// fraction.
func runFig7(x *Context) (*Table, error) {
	t := &Table{
		ID: "fig7", Title: "Reuse distances (rm2_1 geometry, interleaved cores)",
		Headers: []string{"dataset", "L1D hit", "L2 hit", "L3 hit", "cold misses", "mean dist", "accesses"},
	}
	m := x.Cfg.model(dlrm.RM2Small())
	cpu := platform.CascadeLake()
	cores := x.Cfg.multiCores(cpu)
	for _, h := range trace.ProductionHotness {
		ds, err := trace.NewDataset(trace.Config{
			Hotness: h, Rows: m.RowsPerTable, Tables: m.Tables,
			BatchSize: x.Cfg.BatchSize, LookupsPerSample: m.LookupsPerSample,
			Batches: cores, Seed: x.Cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		res, err := reuse.Run(ds, reuse.ModelConfig{
			EmbeddingDim: m.EmbDim,
			Cores:        cores,
			CacheBytes:   []int64{cpu.Mem.L1.SizeBytes, cpu.Mem.L2.SizeBytes, cpu.Mem.L3.SizeBytes},
			CacheNames:   []string{"L1D", "L2", "L3"},
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(h.String(), pct(res.HitRates["L1D"]), pct(res.HitRates["L2"]),
			pct(res.HitRates["L3"]), pct(res.ColdMissFraction),
			f1(res.MeanDistance), fmt.Sprintf("%d", res.Accesses))
	}
	t.AddNote("paper: L1D hit rates are very poor; cold misses reach 72%% (Low) and ~22%% (High)")
	return t, nil
}

// runFig8 reproduces Fig. 8: embedding-stage execution time and realized
// DRAM bandwidth as core count grows (rm2_1, Medium Hot, baseline).
func runFig8(x *Context) (*Table, error) {
	t := &Table{
		ID: "fig8", Title: "Multi-core scalability (rm2_1, Medium Hot, embedding-only)",
		Headers: []string{"cores", "batch latency (ms)", "bandwidth (GB/s)", "BW util", "latency vs 1-core"},
	}
	model := x.Cfg.model(dlrm.RM2Small())
	cpu := platform.CascadeLake()
	max := x.Cfg.multiCores(cpu)
	var counts []int
	var cells []core.Options
	for _, n := range []int{1, 2, 4, 8, 16, 24} {
		if n > max {
			break
		}
		counts = append(counts, n)
		cells = append(cells, core.Options{
			Model: model, Hotness: trace.MediumHot, Scheme: core.Baseline,
			Cores: n, EmbeddingOnly: true,
		})
	}
	reps, err := x.RunMany(cells)
	if err != nil {
		return nil, err
	}
	var base float64
	for i, n := range counts {
		rep := reps[i]
		if base == 0 {
			base = rep.BatchLatencyCycles
		}
		t.AddRow(fmt.Sprintf("%d", n), f2(rep.BatchLatencyMs), f1(rep.BandwidthGBs),
			pct(rep.BandwidthUtilization), spd(rep.BatchLatencyCycles/base))
	}
	t.AddNote("paper: 1→24 cores costs only ~14%% latency while bandwidth grows ~15.5x")
	return t, nil
}
