package exp

import (
	"dlrmsim/internal/core"
	"dlrmsim/internal/dlrm"
	"dlrmsim/internal/platform"
	"dlrmsim/internal/reuse"
	"dlrmsim/internal/trace"
)

func init() {
	register(Experiment{ID: "ext7", Title: "Reuse-distance model vs simulated execution (§3.1.2 cross-validation)", Run: runExt7})
}

// runExt7 cross-validates the paper's two characterization methodologies
// against each other. §3.1.2 argues for an analytical reuse-distance
// model over instrumenting a real run (speed, core-count flexibility) —
// we have both: the Fig. 6 model's predicted hit rates (fully-associative
// caches, row-vector granularity, embedding rows only) next to the cache
// hit rates the execution-driven simulator observes (set-associative
// caches, every load: rows, accumulators, indices, MLP-free embedding-
// only runs).
//
// The two agree on ordering and rough magnitude but differ where their
// assumptions differ — accumulator traffic inflates the execution L1D hit
// rate, set conflicts depress L2/L3 versus the fully-associative model —
// exactly the gap the paper accepts when it chooses the model.
func runExt7(x *Context) (*Table, error) {
	t := &Table{
		ID: "ext7", Title: "Fig. 6 model vs execution-driven simulation (rm2_1)",
		Headers: []string{"dataset", "method", "L1D hit", "L2 hit", "L3 hit"},
	}
	m := x.Cfg.model(dlrm.RM2Small())
	cpu := platform.CascadeLake()
	cores := x.Cfg.multiCores(cpu)
	if cores > 8 {
		cores = 8
	}
	for _, h := range trace.ProductionHotness {
		ds, err := trace.NewDataset(trace.Config{
			Hotness: h, Rows: m.RowsPerTable, Tables: m.Tables,
			BatchSize: x.Cfg.BatchSize, LookupsPerSample: m.LookupsPerSample,
			Batches: cores, Seed: x.Cfg.Seed ^ 0xDA7A,
		})
		if err != nil {
			return nil, err
		}
		model, err := reuse.Run(ds, reuse.ModelConfig{
			EmbeddingDim: m.EmbDim,
			Cores:        cores,
			CacheBytes:   []int64{cpu.Mem.L1.SizeBytes, cpu.Mem.L2.SizeBytes, cpu.Mem.L3.SizeBytes},
			CacheNames:   []string{"L1D", "L2", "L3"},
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(h.String(), "reuse model", pct(model.HitRates["L1D"]),
			pct(model.HitRates["L2"]), pct(model.HitRates["L3"]))
		exec, err := x.Run(core.Options{
			Model: m, Hotness: h, Scheme: core.Baseline,
			Cores: cores, EmbeddingOnly: true,
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(h.String(), "execution sim", pct(exec.L1HitRate),
			pct(exec.L2HitRate), pct(exec.L3HitRate))
	}
	t.AddNote("same trace, two methods; divergences are the model's documented approximations: execution L1D is inflated by accumulator/index traffic the model excludes, and the model's rates are GLOBAL (all accesses) while the execution's L2/L3 rates are LOCAL (only the upper level's misses arrive), which is why execution L3 looks low on hot traces")
	return t, nil
}
