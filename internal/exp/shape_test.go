package exp

import (
	"strconv"
	"strings"
	"testing"
)

// These tests assert the qualitative SHAPES of the paper's results at a
// tiny scale — who wins, orderings, monotone trends — the reproduction
// contract recorded in EXPERIMENTS.md.

func cell(t *testing.T, tbl *Table, row, col int) string {
	t.Helper()
	if row >= len(tbl.Rows) || col >= len(tbl.Rows[row]) {
		t.Fatalf("table %s has no cell (%d,%d)", tbl.ID, row, col)
	}
	return tbl.Rows[row][col]
}

func parseSpeedup(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "x"), 64)
	if err != nil {
		t.Fatalf("bad speedup cell %q: %v", s, err)
	}
	return v
}

func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("bad percent cell %q: %v", s, err)
	}
	return v
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad float cell %q: %v", s, err)
	}
	return v
}

func runTable(t *testing.T, x *Context, id string) *Table {
	t.Helper()
	e, err := Get(id)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := e.Run(x)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestFig4ShapeLatencyDegradesWithHotness(t *testing.T) {
	tbl := runTable(t, tinyContext(), "fig4")
	// Rows: one-item, High, Medium, Low, random; col 1 = latency (ms).
	var prev float64 = -1
	for r := 0; r < len(tbl.Rows); r++ {
		lat := parseF(t, cell(t, tbl, r, 1))
		if lat < prev*0.9 { // allow 10% noise between adjacent classes
			t.Fatalf("row %d latency %.3f breaks monotone degradation (prev %.3f)", r, lat, prev)
		}
		if lat > prev {
			prev = lat
		}
	}
	// one-item must be far faster than random.
	first := parseF(t, cell(t, tbl, 0, 1))
	last := parseF(t, cell(t, tbl, len(tbl.Rows)-1, 1))
	if last < 4*first {
		t.Fatalf("one-item (%.3f) vs random (%.3f): gap too small", first, last)
	}
}

func TestFig8ShapeBandwidthScales(t *testing.T) {
	tbl := runTable(t, tinyContext(), "fig8")
	if len(tbl.Rows) < 2 {
		t.Fatal("need at least 2 core counts")
	}
	bw1 := parseF(t, cell(t, tbl, 0, 2))
	bwN := parseF(t, cell(t, tbl, len(tbl.Rows)-1, 2))
	if bwN <= bw1 {
		t.Fatalf("bandwidth did not scale: %.2f -> %.2f GB/s", bw1, bwN)
	}
}

func TestFig10cShapeHitRateMonotoneInBlocks(t *testing.T) {
	tbl := runTable(t, tinyContext(), "fig10c")
	// Rows 1.. are blocks 1,2,4,8; col 1 = L1D hit.
	prev := -1.0
	for r := 1; r < len(tbl.Rows); r++ {
		hit := parsePct(t, cell(t, tbl, r, 1))
		if hit < prev-1 {
			t.Fatalf("L1D hit rate fell with more prefetched blocks: row %d %.1f%% < %.1f%%", r, hit, prev)
		}
		prev = hit
	}
	// Full-row prefetch must clearly beat the baseline's hit rate.
	base := parsePct(t, cell(t, tbl, 0, 1))
	full := parsePct(t, cell(t, tbl, len(tbl.Rows)-1, 1))
	if full < base+10 {
		t.Fatalf("full-row prefetch hit %.1f%% not clearly above baseline %.1f%%", full, base)
	}
}

func TestFig12ShapeSWPFWins(t *testing.T) {
	tbl := runTable(t, tinyContext(), "fig12")
	for _, row := range tbl.Rows {
		swpf := parseSpeedup(t, row[4])
		if swpf < 1.05 {
			t.Errorf("%v: SW-PF speedup %.2f < 1.05", row[:3], swpf)
		}
		if swpf > 2.2 {
			t.Errorf("%v: SW-PF speedup %.2f implausible", row[:3], swpf)
		}
	}
}

func TestFig13ShapeSchemeOrdering(t *testing.T) {
	tbl := runTable(t, tinyContext(), "fig13")
	for _, row := range tbl.Rows {
		swpf := parseSpeedup(t, row[4])
		dpht := parseSpeedup(t, row[5])
		integ := parseSpeedup(t, row[7])
		if dpht >= 1.0 {
			t.Errorf("%v: DP-HT %.2f should lose to baseline", row[:3], dpht)
		}
		if integ < swpf-0.02 {
			t.Errorf("%v: Integrated %.2f below SW-PF %.2f", row[:3], integ, swpf)
		}
	}
}

func TestFig15ShapeSWPFLiftsHitRate(t *testing.T) {
	tbl := runTable(t, tinyContext(), "fig15")
	// Rows come in triples: baseline, SW-PF, Integrated per model.
	for r := 0; r+2 < len(tbl.Rows); r += 3 {
		base := parsePct(t, cell(t, tbl, r, 2))
		swpf := parsePct(t, cell(t, tbl, r+1, 2))
		if swpf <= base {
			t.Errorf("%s: SW-PF hit %.1f%% <= baseline %.1f%%", cell(t, tbl, r, 0), swpf, base)
		}
		baseLat := parseF(t, cell(t, tbl, r, 3))
		swpfLat := parseF(t, cell(t, tbl, r+1, 3))
		if swpfLat >= baseLat {
			t.Errorf("%s: SW-PF load latency %.1f >= baseline %.1f", cell(t, tbl, r, 0), swpfLat, baseLat)
		}
	}
}

func TestExt1ShapeT0Best(t *testing.T) {
	tbl := runTable(t, tinyContext(), "ext1")
	// Rows: baseline, T0, T1, T2; col 1 = latency.
	t0 := parseF(t, cell(t, tbl, 1, 1))
	t1 := parseF(t, cell(t, tbl, 2, 1))
	t2 := parseF(t, cell(t, tbl, 3, 1))
	if !(t0 <= t1+1e-9 && t1 <= t2+1e-9) {
		t.Fatalf("hint ordering broken: T0=%.3f T1=%.3f T2=%.3f", t0, t1, t2)
	}
}
