package exp

// The error taxonomy for sweep failures. A panic anywhere inside one
// design point — engine arithmetic, a tripped check.Assert invariant, a
// poisoned experiment body — is converted at the cell boundary into a
// typed *CellError carrying everything needed to reproduce it: the
// experiment ID, the cell's position in its batch, the full core.Options,
// the panic value, and the goroutine stack at the panic site. One bad
// design point therefore surfaces as a structured, attributable failure
// instead of killing a grid that has hours of other cells in flight.

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"strings"

	"dlrmsim/internal/core"
)

// CellError is a panic (or tripped invariant) captured while running one
// design point or experiment body. Fields unknown at the panic site are
// filled by the layers above via attributed copies — the original value is
// never mutated after creation, so concurrent readers need no locking.
type CellError struct {
	// ExpID is the experiment the cell belonged to ("" until the sweep
	// layer attributes it).
	ExpID string
	// CellIndex is the cell's index within its RunMany batch (-1 when the
	// panic happened outside a batch or before attribution).
	CellIndex int
	// Options is the design point, when the panic happened inside an
	// engine cell (zero for experiment-body panics).
	Options core.Options
	// Panic is the recovered value.
	Panic any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

// Error summarizes the failure on one line; the stack is available via
// the Stack field (FormatFailures prints it).
func (e *CellError) Error() string {
	var b strings.Builder
	b.WriteString("panic in ")
	switch {
	case e.ExpID != "" && e.CellIndex >= 0:
		fmt.Fprintf(&b, "%s cell %d", e.ExpID, e.CellIndex)
	case e.ExpID != "":
		b.WriteString(e.ExpID)
	case e.CellIndex >= 0:
		fmt.Fprintf(&b, "cell %d", e.CellIndex)
	default:
		b.WriteString("design point")
	}
	if e.Options.Model.Name != "" {
		fmt.Fprintf(&b, " (%s)", cellKey(e.Options))
	}
	fmt.Fprintf(&b, ": %v", e.Panic)
	return b.String()
}

// withExpID returns err with the experiment attributed, copying the
// CellError when one is in the chain (the original stays immutable).
func withExpID(err error, id string) error {
	var ce *CellError
	if errors.As(err, &ce) && ce.ExpID == "" {
		cp := *ce
		cp.ExpID = id
		return &cp
	}
	return err
}

// withCellIndex returns err with the batch position attributed.
func withCellIndex(err error, i int) error {
	var ce *CellError
	if errors.As(err, &ce) && ce.CellIndex < 0 {
		cp := *ce
		cp.CellIndex = i
		return &cp
	}
	return err
}

// runCell executes one engine cell under panic isolation.
func runCell(ctx context.Context, opts core.Options) (rep core.Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &CellError{CellIndex: -1, Options: opts, Panic: r, Stack: debug.Stack()}
		}
	}()
	return core.RunContext(ctx, opts)
}

// safeRun executes one experiment body under panic isolation, so a panic
// in table-building code (not just engine cells) is also typed.
func safeRun(e Experiment, x *Context) (tbl *Table, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &CellError{ExpID: e.ID, CellIndex: -1, Panic: r, Stack: debug.Stack()}
		}
	}()
	tbl, err = e.Run(x)
	return tbl, withExpID(err, e.ID)
}

// Failure records one experiment that failed during a KeepGoing sweep.
type Failure struct {
	ID  string
	Err error
}

// FormatFailures renders the structured failure summary a KeepGoing sweep
// reports: one block per failed experiment, with the design point and
// panic stack when the failure was a captured panic.
func FormatFailures(failures []Failure) string {
	if len(failures) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d experiment(s) failed:\n", len(failures))
	for _, f := range failures {
		fmt.Fprintf(&b, "  %s: %v\n", f.ID, f.Err)
		var ce *CellError
		if errors.As(f.Err, &ce) && len(ce.Stack) > 0 {
			for _, line := range strings.Split(strings.TrimRight(string(ce.Stack), "\n"), "\n") {
				fmt.Fprintf(&b, "    %s\n", line)
			}
		}
	}
	return b.String()
}
