package exp

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"dlrmsim/internal/cluster"
)

// TestEventBackendsRegistryByteIdentical is the event-core differential
// suite: the full experiment registry — every figure and table, which
// between them exercise the closed-loop sort path, the open-loop queue,
// and the hetsched device timers — must render byte-identical (text and
// CSV) under every cluster event-queue backend, at 1 worker and at 8.
// The legacy sort/boxed-heap paths are the reference; the wheel and the
// generic heap reproduce their total order exactly or this fails with
// the first differing experiment named.
func TestEventBackendsRegistryByteIdentical(t *testing.T) {
	ids := IDs()
	render := func(workers int) [][]byte {
		tables, err := RunAll(context.Background(), tinyContext(), ids, workers)
		if err != nil {
			t.Fatal(err)
		}
		out := make([][]byte, len(tables))
		for i, tbl := range tables {
			var buf bytes.Buffer
			if err := tbl.Render(&buf); err != nil {
				t.Fatal(err)
			}
			if err := tbl.RenderCSV(&buf); err != nil {
				t.Fatal(err)
			}
			out[i] = buf.Bytes()
		}
		return out
	}

	restore := cluster.SetEventBackend(cluster.BackendLegacy)
	want := render(1)
	restore()

	backends := []struct {
		name string
		b    cluster.EventBackend
	}{
		{"legacy", cluster.BackendLegacy},
		{"heap", cluster.BackendHeap},
		{"wheel", cluster.BackendWheel},
		{"default", cluster.BackendDefault},
	}
	for _, bk := range backends {
		for _, workers := range []int{1, 8} {
			if bk.b == cluster.BackendLegacy && workers == 1 {
				continue // the reference run itself
			}
			t.Run(fmt.Sprintf("%s/workers%d", bk.name, workers), func(t *testing.T) {
				restore := cluster.SetEventBackend(bk.b)
				defer restore()
				got := render(workers)
				for i, id := range ids {
					if !bytes.Equal(got[i], want[i]) {
						t.Errorf("%s: output differs from legacy/workers1:\n--- legacy ---\n%s--- %s ---\n%s",
							id, want[i], bk.name, got[i])
					}
				}
			})
		}
	}
}
