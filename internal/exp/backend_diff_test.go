package exp

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"dlrmsim/internal/cluster"
)

// TestEventBackendsRegistryByteIdentical is the event-core differential
// suite: the full experiment registry — every figure and table, which
// between them exercise the closed-loop sort path, the open-loop queue,
// and the hetsched device timers — must render byte-identical (text and
// CSV) under every cluster event-queue backend, at 1 worker and at 8.
// The legacy sort/boxed-heap paths are the reference; the wheel and the
// generic heap reproduce their total order exactly or this fails with
// the first differing experiment named.
// renderRegistry runs the given experiments and returns each table's
// text+CSV rendering — the byte-level artifact the differential suites
// compare across backends.
func renderRegistry(t *testing.T, ids []string, workers int) [][]byte {
	t.Helper()
	tables, err := RunAll(context.Background(), tinyContext(), ids, workers)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]byte, len(tables))
	for i, tbl := range tables {
		var buf bytes.Buffer
		if err := tbl.Render(&buf); err != nil {
			t.Fatal(err)
		}
		if err := tbl.RenderCSV(&buf); err != nil {
			t.Fatal(err)
		}
		out[i] = buf.Bytes()
	}
	return out
}

func TestEventBackendsRegistryByteIdentical(t *testing.T) {
	ids := IDs()
	render := func(workers int) [][]byte { return renderRegistry(t, ids, workers) }

	restore := cluster.SetEventBackend(cluster.BackendLegacy)
	want := render(1)
	restore()

	backends := []struct {
		name string
		b    cluster.EventBackend
	}{
		{"legacy", cluster.BackendLegacy},
		{"heap", cluster.BackendHeap},
		{"wheel", cluster.BackendWheel},
		{"default", cluster.BackendDefault},
	}
	for _, bk := range backends {
		for _, workers := range []int{1, 8} {
			if bk.b == cluster.BackendLegacy && workers == 1 {
				continue // the reference run itself
			}
			t.Run(fmt.Sprintf("%s/workers%d", bk.name, workers), func(t *testing.T) {
				restore := cluster.SetEventBackend(bk.b)
				defer restore()
				got := render(workers)
				for i, id := range ids {
					if !bytes.Equal(got[i], want[i]) {
						t.Errorf("%s: output differs from legacy/workers1:\n--- legacy ---\n%s--- %s ---\n%s",
							id, want[i], bk.name, got[i])
					}
				}
			})
		}
	}
}

// TestExecBackendsRegistryByteIdentical is the execution-backend
// differential suite (DESIGN.md §14): the full registry — including the
// fault-injected cluster sweeps (clu4/clu5) and the open-loop tiers
// (clu6/clu7) — must render byte-identical under the conservative
// parallel backend at 2 and 8 partitions, at 1 worker and at 8, against
// the sequential reference. This is the tentpole's non-negotiable
// pinned end to end: any lost window event, mis-merged router delta, or
// reordered stream-join fold shows up here with the experiment named.
func TestExecBackendsRegistryByteIdentical(t *testing.T) {
	ids := IDs()
	want := renderRegistry(t, ids, 1) // sequential reference

	for _, shards := range []int{2, 8} {
		for _, workers := range []int{1, 8} {
			t.Run(fmt.Sprintf("par%d/workers%d", shards, workers), func(t *testing.T) {
				restore := cluster.SetExecBackend(cluster.Parallel(shards))
				defer restore()
				got := renderRegistry(t, ids, workers)
				for i, id := range ids {
					if !bytes.Equal(got[i], want[i]) {
						t.Errorf("%s: output differs from sequential/workers1:\n--- sequential ---\n%s--- par%d ---\n%s",
							id, want[i], shards, got[i])
					}
				}
			})
		}
	}
}
