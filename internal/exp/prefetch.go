package exp

import (
	"fmt"

	"dlrmsim/internal/core"
	"dlrmsim/internal/dlrm"
	"dlrmsim/internal/embedding"
	"dlrmsim/internal/platform"
	"dlrmsim/internal/trace"
)

func init() {
	register(Experiment{ID: "fig10a", Title: "Compiler-inserted prefetching vs baseline (rm2_1, multi-core)", Run: runFig10a})
	register(Experiment{ID: "fig10b", Title: "Prefetch distance sweep (rm2_1, multi-core)", Run: runFig10b})
	register(Experiment{ID: "fig10c", Title: "Prefetch amount sweep: L1D hit rate and load latency", Run: runFig10c})
}

// runFig10a reproduces Fig. 10(a): off-the-shelf alternatives — hardware
// prefetch off, compiler-style stride prefetching, and an untuned indirect
// compiler pass — against the baseline and Algorithm 3.
func runFig10a(x *Context) (*Table, error) {
	t := &Table{
		ID: "fig10a", Title: "Compiler-inserted prefetching vs baseline (rm2_1, Low Hot)",
		Headers: []string{"design", "batch latency (ms)", "vs baseline"},
	}
	model := x.Cfg.model(dlrm.RM2Small())
	cores := x.Cfg.multiCores(platform.CascadeLake())
	type variant struct {
		name   string
		scheme core.Scheme
		pf     embedding.PrefetchConfig
	}
	variants := []variant{
		{"baseline (HW-PF on)", core.Baseline, embedding.PrefetchConfig{}},
		{"w/o HW-PF", core.NoHWPF, embedding.PrefetchConfig{}},
		{"gcc-style stride PF", core.SWPF, embedding.PrefetchConfig{Dist: 4, Blocks: 8, Mode: embedding.ModeSequential}},
		{"untuned indirect PF (dist 64, 1 line)", core.SWPF, embedding.PrefetchConfig{Dist: 64, Blocks: 1}},
		{"Algorithm 3 (tuned SW-PF)", core.SWPF, embedding.PrefetchConfig{Dist: 4, Blocks: 8}},
	}
	cells := make([]core.Options, len(variants))
	for i, v := range variants {
		cells[i] = core.Options{
			Model: model, Hotness: trace.LowHot, Scheme: v.scheme,
			Cores: cores, Prefetch: v.pf, EmbeddingOnly: true,
		}
	}
	reps, err := x.RunMany(cells)
	if err != nil {
		return nil, err
	}
	base := reps[0].BatchLatencyCycles
	for i, v := range variants {
		t.AddRow(v.name, f2(reps[i].BatchLatencyMs), spd(base/reps[i].BatchLatencyCycles))
	}
	t.AddNote("paper: off-the-shelf techniques show limited benefit or slight degradation; only application-aware prefetching helps")
	return t, nil
}

// runFig10b reproduces Fig. 10(b): execution time vs prefetch distance.
func runFig10b(x *Context) (*Table, error) {
	t := &Table{
		ID: "fig10b", Title: "Prefetch distance sweep (rm2_1, Low Hot, blocks=8)",
		Headers: []string{"pf_dist", "batch latency (ms)", "vs baseline", "L1D hit"},
	}
	model := x.Cfg.model(dlrm.RM2Small())
	cores := x.Cfg.multiCores(platform.CascadeLake())
	dists := []int{1, 2, 4, 8, 16, 32}
	cells := []core.Options{{
		Model: model, Hotness: trace.LowHot, Scheme: core.Baseline,
		Cores: cores, EmbeddingOnly: true,
	}}
	for _, d := range dists {
		cells = append(cells, core.Options{
			Model: model, Hotness: trace.LowHot, Scheme: core.SWPF,
			Cores: cores, Prefetch: embedding.PrefetchConfig{Dist: d, Blocks: 8},
			EmbeddingOnly: true,
		})
	}
	reps, err := x.RunMany(cells)
	if err != nil {
		return nil, err
	}
	baseRep := reps[0]
	t.AddRow("baseline", f2(baseRep.BatchLatencyMs), "1.00x", pct(baseRep.L1HitRate))
	bestDist, bestLat := 0, baseRep.BatchLatencyCycles
	for i, d := range dists {
		rep := reps[i+1]
		t.AddRow(fmt.Sprintf("%d", d), f2(rep.BatchLatencyMs),
			spd(baseRep.BatchLatencyCycles/rep.BatchLatencyCycles), pct(rep.L1HitRate))
		if rep.BatchLatencyCycles < bestLat {
			bestDist, bestLat = d, rep.BatchLatencyCycles
		}
	}
	t.AddNote("best distance measured: %d (paper finds 4 optimal on Cascade Lake)", bestDist)
	return t, nil
}

// runFig10c reproduces Fig. 10(c): L1D hit rate and average load latency
// vs prefetch amount (lines of the 8-line row prefetched).
func runFig10c(x *Context) (*Table, error) {
	t := &Table{
		ID: "fig10c", Title: "Prefetch amount sweep (rm2_1, Low Hot, dist=4)",
		Headers: []string{"pf_blocks", "L1D hit", "avg load lat (cyc)", "batch latency (ms)"},
	}
	model := x.Cfg.model(dlrm.RM2Small())
	cores := x.Cfg.multiCores(platform.CascadeLake())
	blocks := []int{1, 2, 4, 8}
	cells := []core.Options{{
		Model: model, Hotness: trace.LowHot, Scheme: core.Baseline,
		Cores: cores, EmbeddingOnly: true,
	}}
	for _, b := range blocks {
		cells = append(cells, core.Options{
			Model: model, Hotness: trace.LowHot, Scheme: core.SWPF,
			Cores: cores, Prefetch: embedding.PrefetchConfig{Dist: 4, Blocks: b},
			EmbeddingOnly: true,
		})
	}
	reps, err := x.RunMany(cells)
	if err != nil {
		return nil, err
	}
	baseRep := reps[0]
	t.AddRow("baseline", pct(baseRep.L1HitRate), f1(baseRep.AvgLoadLatency), f2(baseRep.BatchLatencyMs))
	for i, b := range blocks {
		rep := reps[i+1]
		t.AddRow(fmt.Sprintf("%d", b), pct(rep.L1HitRate), f1(rep.AvgLoadLatency), f2(rep.BatchLatencyMs))
	}
	t.AddNote("paper: prefetching the complete 8-line vector maximizes hit rate and minimizes latency on CSL")
	return t, nil
}
