package exp

import (
	"dlrmsim/internal/core"
	"dlrmsim/internal/dlrm"
	"dlrmsim/internal/embedding"
	"dlrmsim/internal/platform"
	"dlrmsim/internal/trace"
)

func init() {
	register(Experiment{ID: "ext5", Title: "Quantized embeddings: fp32/fp16/int8 vs the designs (extension)", Run: runExt5})
}

// runExt5 examines how embedding quantization — the other standard
// production lever against memory pressure — interacts with the paper's
// designs. Smaller rows span fewer cache lines, cutting both bandwidth
// and the per-lookup miss count, which shrinks the headroom software
// prefetching has left to exploit.
func runExt5(x *Context) (*Table, error) {
	t := &Table{
		ID: "ext5", Title: "Embedding dtype vs designs (rm2_1, Low Hot, multi-core)",
		Headers: []string{"dtype", "row lines", "baseline (ms)", "SW-PF", "Integrated", "DRAM MB/batch"},
	}
	cores := x.Cfg.multiCores(platform.CascadeLake())
	dtypes := []embedding.DType{embedding.F32, embedding.F16, embedding.Int8}
	schemes := []core.Scheme{core.Baseline, core.SWPF, core.Integrated}
	var cells []core.Options
	for _, d := range dtypes {
		model := x.Cfg.model(dlrm.RM2Small())
		model.EmbDType = d
		for _, s := range schemes {
			cells = append(cells, core.Options{
				Model: model, Hotness: trace.LowHot, Scheme: s, Cores: cores,
			})
		}
	}
	reps, err := x.RunMany(cells)
	if err != nil {
		return nil, err
	}
	for i, d := range dtypes {
		model := x.Cfg.model(dlrm.RM2Small())
		rowLines := embedding.NewTypedTable(0, 1, model.EmbDim, 0, d).RowLines()
		base, swpf, integ := reps[3*i], reps[3*i+1], reps[3*i+2]
		t.AddRow(d.String(), f1(float64(rowLines)), f2(base.BatchLatencyMs),
			spd(swpf.Speedup(base)), spd(integ.Speedup(base)),
			f1(float64(base.DRAMBytes)/1e6/float64(cores)))
	}
	t.AddNote("quantization attacks the same bottleneck from the data side: smaller rows mean fewer misses per lookup, so baselines speed up and prefetching's relative win narrows but persists")
	return t, nil
}
