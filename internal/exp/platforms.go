package exp

import (
	"dlrmsim/internal/core"
	"dlrmsim/internal/dlrm"
	"dlrmsim/internal/platform"
	"dlrmsim/internal/trace"
)

func init() {
	register(Experiment{ID: "fig16", Title: "Speedups across CPU platforms (Low Hot)", Run: runFig16})
}

// runFig16 reproduces Fig. 16: SW-PF / MP-HT / Integrated speedups over
// each platform's own baseline, for rm2_1 and rm1 on Low Hot, single-core
// and multi-core. Prefetch knobs use each platform's tuned values
// (8/8/2/2/4 lines on SKL/CSL/ICL/SPR/Zen3).
func runFig16(x *Context) (*Table, error) {
	t := &Table{
		ID: "fig16", Title: "Cross-platform speedups (Low Hot, platform-tuned prefetch)",
		Headers: []string{"CPU", "model", "cores", "SW-PF", "MP-HT", "Integrated"},
	}
	for _, cpu := range platform.All() {
		for _, base := range []dlrm.Config{dlrm.RM2Small(), dlrm.RM1()} {
			model := x.Cfg.model(base)
			for _, n := range []int{1, x.Cfg.multiCores(cpu)} {
				run := func(s core.Scheme) (core.Report, error) {
					return x.Run(core.Options{
						Model: model, CPU: cpu, Hotness: trace.LowHot,
						Scheme: s, Cores: n,
					})
				}
				bl, err := run(core.Baseline)
				if err != nil {
					return nil, err
				}
				label := "multi"
				if n == 1 {
					label = "single"
				}
				row := []string{cpu.Name, base.Name, label}
				for _, s := range []core.Scheme{core.SWPF, core.MPHT, core.Integrated} {
					rep, err := run(s)
					if err != nil {
						return nil, err
					}
					row = append(row, spd(rep.Speedup(bl)))
				}
				t.AddRow(row...)
			}
		}
	}
	t.AddNote("paper: improvements hold on every platform; multi-core speedups trail single-core (shared-resource interference); wide-window parts (ICL/SPR) see smaller SW-PF gains")
	return t, nil
}
