package exp

import (
	"dlrmsim/internal/core"
	"dlrmsim/internal/dlrm"
	"dlrmsim/internal/platform"
	"dlrmsim/internal/trace"
)

func init() {
	register(Experiment{ID: "fig16", Title: "Speedups across CPU platforms (Low Hot)", Run: runFig16})
}

// runFig16 reproduces Fig. 16: SW-PF / MP-HT / Integrated speedups over
// each platform's own baseline, for rm2_1 and rm1 on Low Hot, single-core
// and multi-core. Prefetch knobs use each platform's tuned values
// (8/8/2/2/4 lines on SKL/CSL/ICL/SPR/Zen3).
func runFig16(x *Context) (*Table, error) {
	t := &Table{
		ID: "fig16", Title: "Cross-platform speedups (Low Hot, platform-tuned prefetch)",
		Headers: []string{"CPU", "model", "cores", "SW-PF", "MP-HT", "Integrated"},
	}
	schemes := []core.Scheme{core.Baseline, core.SWPF, core.MPHT, core.Integrated}
	type combo struct {
		cpu   string
		model string
		cores string
	}
	var combos []combo
	var cells []core.Options
	for _, cpu := range platform.All() {
		for _, base := range []dlrm.Config{dlrm.RM2Small(), dlrm.RM1()} {
			model := x.Cfg.model(base)
			for _, n := range []int{1, x.Cfg.multiCores(cpu)} {
				label := "multi"
				if n == 1 {
					label = "single"
				}
				combos = append(combos, combo{cpu.Name, base.Name, label})
				for _, s := range schemes {
					cells = append(cells, core.Options{
						Model: model, CPU: cpu, Hotness: trace.LowHot,
						Scheme: s, Cores: n,
					})
				}
			}
		}
	}
	reps, err := x.RunMany(cells)
	if err != nil {
		return nil, err
	}
	for i, c := range combos {
		bl := reps[len(schemes)*i]
		row := []string{c.cpu, c.model, c.cores}
		for j := 1; j < len(schemes); j++ {
			row = append(row, spd(reps[len(schemes)*i+j].Speedup(bl)))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper: improvements hold on every platform; multi-core speedups trail single-core (shared-resource interference); wide-window parts (ICL/SPR) see smaller SW-PF gains")
	return t, nil
}
