package exp

import (
	"context"
	"testing"

	"dlrmsim/internal/check"
)

// TestCheckModeCleanRun: with runtime invariant assertions enabled (the
// CLI's -check flag), a representative slice of the registry — engine,
// memory hierarchy, serving, and cluster tiers — still completes. An
// invariant that fires on healthy configs would make -check useless for
// debugging real regressions.
func TestCheckModeCleanRun(t *testing.T) {
	defer func(old bool) { check.Enabled = old }(check.Enabled)
	check.Enabled = true
	if _, err := RunAll(context.Background(), tinyContext(), []string{"fig1", "fig17", "clu1"}, 2); err != nil {
		t.Errorf("check-mode run failed: %v", err)
	}
}
