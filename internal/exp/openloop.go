package exp

// The live-traffic experiment family (clu6–clu7) runs the cluster tier
// against the open-loop traffic generator instead of a closed-loop query
// count: clu6 crosses arrival intensity with the admission policy under
// bursty (MMPP) load, clu7 plays a full scaled day — diurnal ramp, flash
// crowds, a revisiting user population — against static and autoscaled
// fleets.
//
// As in the fault family, every traffic timescale is expressed in
// arrival periods and the SLA and queue budget are calibrated off the
// clean closed-loop p95, so the experiments stay meaningful whatever the
// engine-derived service model is at the active scale.

import (
	"fmt"

	"dlrmsim/internal/cluster"
	"dlrmsim/internal/core"
	"dlrmsim/internal/dlrm"
	"dlrmsim/internal/platform"
	"dlrmsim/internal/trace"
	"dlrmsim/internal/traffic"
)

func init() {
	register(Experiment{ID: "clu6", Title: "Open-loop arrival intensity × admission policy", Run: runClu6})
	register(Experiment{ID: "clu7", Title: "Day-in-the-life: diurnal + flash traffic, static vs autoscaled fleet", Run: runClu7})
}

// openBase carries the shared open-loop fixture: a template config with
// no load attached, the arrival period that fills the fleet to a target
// utilization, and the clean closed-loop p95 deadlines calibrate off.
type openBase struct {
	cfg      cluster.Config // Open left nil; MeanArrivalMs/Queries zero
	cleanP95 float64
	utilCal  float64 // measured utilization per unit of requested utilization
}

// openServers pins the fixture's queue width. The closed-loop family
// inherits the engine's core count here, but the open tier cannot: at an
// overload factor rho the worst queue's waiting time grows as
// (rho-1)·t, while the SLA — a multiple of the clean p95, itself a few
// service times — is nodes·servers·(p95/service) ≈ hundreds of arrival
// periods when servers is large. With 24 servers per node a 1.2×
// overload would need a ~100× longer horizon to breach the SLA at all;
// with 2 it melts within the standard 1000-arrival run at every scale.
const openServers = 2

// openCluBase assembles the open-loop fixture: 8 nodes, row-range
// sharding with no hot-row replication, plus a clean closed-loop
// reference run that calibrates both the deadlines (off its p95) and
// the offered load (off its measured utilization — the analytic
// cold-path estimate counts dense-stage work the queue servers never
// see, so at dense-heavy scales a requested "1.2× capacity" would
// otherwise land well under real capacity and nothing would overload).
// The engine (at its real core count) still supplies the timing model;
// only the queueing width is pinned to openServers.
func openCluBase(x *Context) (openBase, error) {
	model := x.Cfg.model(dlrm.RM2Small())
	cores := x.Cfg.multiCores(platform.CascadeLake())
	tm, err := clusterTiming(x, model, trace.MediumHot, core.Baseline, cores)
	if err != nil {
		return openBase{}, err
	}
	plan, err := cluster.NewPlan(model, 8, cluster.RowRange, 0, x.Cfg.Seed)
	if err != nil {
		return openBase{}, err
	}
	clean, err := cluster.Simulate(cluConfig(x, plan, trace.MediumHot, tm, openServers, 0.55))
	if err != nil {
		return openBase{}, err
	}
	cal := clean.Utilization / 0.55
	if cal <= 0 {
		return openBase{}, fmt.Errorf("exp: clean reference run measured zero utilization")
	}
	return openBase{
		cfg: cluster.Config{
			Plan:            plan,
			Hotness:         trace.MediumHot,
			SamplesPerQuery: x.Cfg.BatchSize,
			Timing:          tm,
			Net:             cluster.DefaultNetwork(),
			ServersPerNode:  openServers,
			JitterFrac:      0.08,
			Seed:            x.Cfg.Seed,
		},
		cleanP95: clean.P95,
		utilCal:  cal,
	}, nil
}

// arrivalAt returns the mean arrival period filling the fixture fleet to
// the given *measured* utilization, correcting the analytic estimate by
// the clean run's calibration factor.
func (b openBase) arrivalAt(x *Context, util float64) float64 {
	return cluster.ArrivalForUtilization(b.cfg.Plan, b.cfg.Timing, x.Cfg.BatchSize, b.cfg.ServersPerNode, util/b.utilCal)
}

// runClu6 crosses offered intensity with the admission policy under MMPP
// bursts. Below capacity both policies look alike; past it the no-shed
// router's queues grow without bound and violation minutes blanket the
// run, while shedding holds admitted latency near the budget and
// converts the overload into an explicit, measured shed rate.
func runClu6(x *Context) (*Table, error) {
	t := &Table{
		ID: "clu6", Title: "Arrival intensity × admission (rm2_1, Medium Hot, 8 nodes, MMPP bursts)",
		Headers: []string{"offered ×cap", "policy", "offered qps", "shed %", "goodput qps", "p99 (ms)", "SLA viol (min)"},
	}
	base, err := openCluBase(x)
	if err != nil {
		return nil, err
	}
	sla := 4 * base.cleanP95
	budget := 2 * base.cleanP95
	for _, util := range []float64{0.6, 0.9, 1.2} {
		arrival := base.arrivalAt(x, util)
		for _, pol := range []struct {
			name string
			adm  cluster.Admission
		}{
			{"none", cluster.Admission{}},
			{"shed", cluster.Admission{Policy: cluster.ShedOverBudget, QueueBudgetMs: budget}},
		} {
			cfg := base.cfg
			cfg.Open = &cluster.OpenLoop{
				Arrivals: traffic.Config{
					Model:        traffic.MMPP,
					RatePerMs:    1 / arrival,
					BurstFactor:  2.5,
					BurstEveryMs: 150 * arrival,
					BurstMeanMs:  15 * arrival,
				},
				DurationMs: 1000 * arrival,
				SLAMs:      sla,
				Admission:  pol.adm,
			}
			res, err := cluster.Simulate(cfg)
			if err != nil {
				return nil, err
			}
			t.AddRow(fmt.Sprintf("%.1f", util), pol.name, f1(res.OfferedQPS), pct(res.ShedRate),
				f1(res.Goodput), f3(res.P99), f1(res.SLAViolationMinutes))
		}
	}
	t.AddNote("SLA = 4x and queue budget = 2x the clean closed-loop p95 (%.3f ms); bursts run 2.5x the base rate; violation minutes are 1/1440 slices of the run containing at least one admitted SLA miss — shedding trades arrivals for bounded queues, so goodput holds while the no-shed router melts", base.cleanP95)
	return t, nil
}

// runClu7 plays one scaled day — diurnal swing, flash crowds, and a
// revisiting population — against three fleets: pinned at the trough
// size, pinned at the peak size, and autoscaled between them. The
// autoscaler should buy most of static-max's goodput at a node budget
// close to static-min's.
func runClu7(x *Context) (*Table, error) {
	t := &Table{
		ID: "clu7", Title: "Day-in-the-life (rm2_1, Medium Hot, 8 nodes, diurnal + flash, revisiting users)",
		Headers: []string{"fleet", "mean nodes", "ups", "downs", "goodput qps", "shed %", "SLA viol (min)", "p99 (ms)", "local %"},
	}
	base, err := openCluBase(x)
	if err != nil {
		return nil, err
	}
	arrival := base.arrivalAt(x, 0.5) // base rate: 0.5× capacity, 0.8× at the diurnal peak
	day := 1500 * arrival
	sla := 4 * base.cleanP95
	budget := 2 * base.cleanP95
	open := func() *cluster.OpenLoop {
		return &cluster.OpenLoop{
			Arrivals: traffic.Config{
				Model:        traffic.Poisson,
				RatePerMs:    1 / arrival,
				DayMs:        day,
				DiurnalAmp:   0.6,
				FlashEveryMs: day / 3,
				FlashMeanMs:  day / 60,
				FlashFactor:  2.5,
			},
			Population: &traffic.Population{
				Users:       1 << 20,
				RevisitProb: 0.6,
				Affinity:    0.5,
			},
			DurationMs: day,
			SLAMs:      sla,
			Admission:  cluster.Admission{Policy: cluster.ShedOverBudget, QueueBudgetMs: budget},
		}
	}
	for _, fleet := range []struct {
		name  string
		shape func(*cluster.OpenLoop)
	}{
		{"static-min", func(o *cluster.OpenLoop) { o.StartNodes = 3 }},
		{"static-max", func(o *cluster.OpenLoop) {}},
		{"autoscale", func(o *cluster.OpenLoop) {
			o.StartNodes = 3
			// The up threshold must sit well below the shed budget: admission
			// caps every queue near the budget and the trigger is a *mean*
			// over active nodes, which Zipf skew holds far under the worst
			// node's backlog — at or above the budget it would never fire.
			o.Autoscale = &cluster.Autoscaler{
				IntervalMs:    day / 96, // a 15-minute control loop, scaled
				UpBacklogMs:   budget / 8,
				DownBacklogMs: budget / 64,
				ProvisionMs:   day / 96,
				MinNodes:      3,
				MaxNodes:      8,
			}
		}},
	} {
		o := open()
		fleet.shape(o)
		cfg := base.cfg
		cfg.Open = o
		res, err := cluster.Simulate(cfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(fleet.name, f2(res.MeanActiveNodes), fmt.Sprint(res.ScaleUps), fmt.Sprint(res.ScaleDowns),
			f1(res.Goodput), pct(res.ShedRate), f1(res.SLAViolationMinutes), f3(res.P99), pct(res.LocalFraction))
	}
	t.AddNote("one scaled day (%.0f ms): diurnal swing ±60%%, flash crowds at 2.5x, users revisit with p=0.6 and draw half their lookups from per-user profiles (local %% counts profile re-hits); the autoscaler's 15-minute control loop tracks the ramp between 3 and 8 nodes", day)
	return t, nil
}
