package exp

// The deterministic parallel runner. The evaluation grid is embarrassingly
// parallel twice over — experiments are independent of each other, and the
// design-point cells inside one experiment are independent engine
// invocations — so the runner fans both levels out over a single bounded
// worker pool. Determinism is preserved by construction:
//
//   - every cell is a pure function of its core.Options (all randomness is
//     derived from Options.Seed by stateless splitmix64 mixing — there is
//     no shared generator state between cells, see stats.SplitSeed), and
//   - results are collected index-ordered (RunMany returns reports aligned
//     with its cell slice, RunAll returns tables aligned with its ID
//     slice), so assembly order never depends on completion order.
//
// Consequently the rendered tables are byte-identical for every worker
// count, which runner_test.go enforces against the whole registry.

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"

	"dlrmsim/internal/core"
)

// WithParallelism arms the context with a cancellation context and a
// worker pool of the given size (<= 0 means GOMAXPROCS; 1 keeps execution
// effectively sequential while still honoring cancellation). It returns x
// for chaining. Call it before sharing the context between goroutines,
// not concurrently with Run.
func (x *Context) WithParallelism(ctx context.Context, workers int) *Context {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	x.ctx = ctx
	x.sem = nil
	if workers > 1 {
		x.sem = make(chan struct{}, workers)
	}
	return x
}

// acquire claims one worker-pool slot (a no-op without a pool) and
// returns its release. Cancellation unblocks waiters; the subsequent
// engine call observes the dead context and returns its error.
func (x *Context) acquire() func() {
	if x.sem == nil {
		return func() {}
	}
	select {
	case x.sem <- struct{}{}:
		return func() { <-x.sem }
	case <-x.ctx.Done():
		return func() {}
	}
}

// RunMany executes a batch of independent design points and returns the
// reports index-aligned with cells. With a worker pool armed the cells
// run concurrently (bounded by the pool, deduplicated by the memo); the
// reports and any error are identical to running the cells sequentially
// in order, because each cell is deterministic in its options.
func (x *Context) RunMany(cells []core.Options) ([]core.Report, error) {
	reps := make([]core.Report, len(cells))
	if x.sem == nil || len(cells) < 2 {
		for i, c := range cells {
			rep, err := x.Run(c)
			if err != nil {
				return nil, withCellIndex(err, i)
			}
			reps[i] = rep
		}
		return reps, nil
	}
	errs := make([]error, len(cells))
	var wg sync.WaitGroup
	for i, c := range cells {
		wg.Add(1)
		go func(i int, c core.Options) {
			defer wg.Done()
			reps[i], errs[i] = x.Run(c)
		}(i, c)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, withCellIndex(err, i)
		}
	}
	return reps, nil
}

// RunAll executes the named experiments on x over a pool of workers and
// returns their tables index-aligned with ids. workers <= 0 uses
// GOMAXPROCS; workers == 1 runs the experiments strictly sequentially on
// the calling goroutine — the pre-runner path. Unknown IDs fail before
// anything runs. The first failing cell cancels every in-flight and
// queued cell of the sweep, and the lowest-index error is returned; a
// panic inside any cell or experiment body surfaces as a *CellError in
// the chain rather than crashing the process.
func RunAll(ctx context.Context, x *Context, ids []string, workers int) ([]*Table, error) {
	tables, failures, err := runExperiments(ctx, x, ids, workers, false)
	if err != nil {
		return nil, err
	}
	if len(failures) > 0 {
		f := failures[0]
		return nil, fmt.Errorf("%s: %w", f.ID, f.Err)
	}
	return tables, nil
}

// RunAllKeepGoing is RunAll in fault-isolation mode: a failing or
// panicking experiment no longer cancels the sweep. Every experiment runs
// to completion (or failure), tables holds nil at failed indexes, and the
// failures — in ids order, each carrying the typed *CellError when the
// cause was a panic — are returned for structured reporting. err is
// non-nil only for pre-flight problems (unknown IDs), so callers decide
// the exit code from len(failures).
func RunAllKeepGoing(ctx context.Context, x *Context, ids []string, workers int) (tables []*Table, failures []Failure, err error) {
	return runExperiments(ctx, x, ids, workers, true)
}

// runExperiments is the shared sweep loop. In keepGoing mode errors are
// collected instead of cancelling the run.
func runExperiments(ctx context.Context, x *Context, ids []string, workers int, keepGoing bool) ([]*Table, []Failure, error) {
	exps := make([]Experiment, len(ids))
	for i, id := range ids {
		e, err := Get(strings.TrimSpace(id))
		if err != nil {
			return nil, nil, err
		}
		exps[i] = e
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	tables := make([]*Table, len(exps))
	errs := make([]error, len(exps))
	if workers == 1 {
		x.WithParallelism(ctx, 1)
		for i, e := range exps {
			tables[i], errs[i] = safeRun(e, x)
			if errs[i] != nil && !keepGoing {
				break
			}
		}
	} else {
		ctx, cancel := context.WithCancel(ctx)
		defer cancel()
		x.WithParallelism(ctx, workers)
		var wg sync.WaitGroup
		for i, e := range exps {
			wg.Add(1)
			go func(i int, e Experiment) {
				defer wg.Done()
				tables[i], errs[i] = safeRun(e, x)
				if errs[i] != nil && !keepGoing {
					cancel()
				}
			}(i, e)
		}
		wg.Wait()
	}
	var failures []Failure
	for i, err := range errs {
		if err != nil {
			failures = append(failures, Failure{ID: exps[i].ID, Err: err})
			tables[i] = nil
		}
	}
	return tables, failures, nil
}
