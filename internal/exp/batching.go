package exp

import (
	"fmt"
	"sort"

	"dlrmsim/internal/core"
	"dlrmsim/internal/dlrm"
	"dlrmsim/internal/platform"
	"dlrmsim/internal/serve"
	"dlrmsim/internal/trace"
)

func init() {
	register(Experiment{ID: "ext8", Title: "SLA-aware batch-size selection (Table 1's batch-64 rationale)", Run: runExt8})
}

// runExt8 closes the loop on the paper's batch-size choice: Table 1 says
// batch 64 "maximizes throughput while meeting the SLA". We fit the
// affine batch-service model from the timing simulator (two batch sizes
// suffice: ext2 shows latency is affine in batch size), then sweep the
// batcher's MaxBatch under query-level Poisson load and report
// throughput and p95 per candidate, with the SLA-compliant best marked.
func runExt8(x *Context) (*Table, error) {
	t := &Table{
		ID: "ext8", Title: "Dynamic batching under SLA (rm2_1, Medium Hot, Integrated design)",
		Headers: []string{"max batch", "mean batch", "p95 (ms)", "throughput (QPS)", "SLA ok"},
	}
	model := x.Cfg.model(dlrm.RM2Small())
	cores := x.Cfg.multiCores(platform.CascadeLake())
	// Fit serviceMs(batch) = base + slope×batch from two simulator runs.
	fit := func(bs int) (core.Report, error) {
		return x.Run(core.Options{
			Model: model, Hotness: trace.MediumHot, Scheme: core.Integrated,
			Cores: cores, BatchSize: bs,
		})
	}
	small, err := fit(16)
	if err != nil {
		return nil, err
	}
	large, err := fit(64)
	if err != nil {
		return nil, err
	}
	slope := (large.BatchLatencyMs - small.BatchLatencyMs) / (64 - 16)
	base := small.BatchLatencyMs - 16*slope
	if base < 0 {
		base = 0
	}
	// The kernel simulator has almost no per-batch fixed cost, but a real
	// serving stack does (framework dispatch, operator setup — the reason
	// tiny batches waste throughput in production). Model it as 25% of
	// the 64-batch service time, a PyTorch-serving ballpark.
	dispatch := 0.25 * large.BatchLatencyMs
	base += dispatch

	// Query load sized to ~85% of the 64-batch capacity (batching policy
	// matters most near saturation); SLA scaled like fig17 (4x the
	// 64-batch latency) so the boundary is inside the sweep.
	arrival := (base + slope*64) / 64 / float64(cores) / 0.85
	sla := 4 * large.BatchLatencyMs
	cfg := serve.BatchingConfig{
		Cores:             cores,
		MeanArrivalMs:     arrival,
		MaxWaitMs:         sla / 4,
		ServiceBaseMs:     base,
		ServicePerQueryMs: slope,
		Queries:           20000,
		Seed:              x.Cfg.Seed,
	}
	candidates := []int{8, 16, 32, 64, 128, 256}
	best, points, ok := serve.BestBatchSize(cfg, candidates, sla)
	keys := make([]int, 0, len(points))
	for b := range points {
		keys = append(keys, b)
	}
	sort.Ints(keys)
	for _, b := range keys {
		r := points[b]
		mark := ""
		if r.P95 <= sla {
			mark = "yes"
			if ok && b == best {
				mark = "yes (best)"
			}
		} else {
			mark = "no"
		}
		t.AddRow(fmt.Sprintf("%d", b), f1(r.MeanBatchSize), f2(r.P95),
			f1(r.ThroughputQPS), mark)
	}
	t.AddNote("service model: %.3f + %.4f×batch ms (kernel fit plus 25%% per-batch dispatch overhead); SLA=%.2f ms (4x the 64-batch latency at this scale); the paper fixes batch 64 by the same throughput-under-SLA criterion", base, slope, sla)
	return t, nil
}
