package exp

import (
	"dlrmsim/internal/core"
	"dlrmsim/internal/dlrm"
	"dlrmsim/internal/platform"
	"dlrmsim/internal/trace"
)

func init() {
	register(Experiment{ID: "fig12", Title: "Embedding-stage speedups (embedding-heavy models)", Run: runFig12})
	register(Experiment{ID: "fig13", Title: "End-to-end speedups (embedding-heavy models)", Run: runFig13})
	register(Experiment{ID: "fig14", Title: "End-to-end speedups (mixed model rm1)", Run: runFig14})
	register(Experiment{ID: "fig15", Title: "L1D hit rate and load latency under the designs", Run: runFig15})
	register(Experiment{ID: "tab4", Title: "Embedding-only batch times (ms), multi-core", Run: runTable4})
}

// coreLabel names a core count in the single/multi convention the paper's
// figures use.
func coreLabel(n int) string {
	if n == 1 {
		return "single"
	}
	return "multi"
}

// runFig12 reproduces Fig. 12: embedding-only speedups of w/o HW-PF and
// SW-PF over baseline, for the three RMC2 models × three datasets ×
// {single, multi}-core. The grid is submitted as one cell batch so the
// parallel runner can overlap the design points.
func runFig12(x *Context) (*Table, error) {
	t := &Table{
		ID: "fig12", Title: "Embedding-stage speedup vs baseline",
		Headers: []string{"model", "dataset", "cores", "w/o HW-PF", "SW-PF"},
	}
	cores := x.Cfg.multiCores(platform.CascadeLake())
	schemes := []core.Scheme{core.Baseline, core.NoHWPF, core.SWPF}
	type combo struct {
		model string
		h     trace.Hotness
		cores string
	}
	var combos []combo
	var cells []core.Options
	for _, base := range dlrm.EmbeddingHeavy() {
		model := x.Cfg.model(base)
		for _, h := range trace.ProductionHotness {
			for _, n := range []int{1, cores} {
				combos = append(combos, combo{base.Name, h, coreLabel(n)})
				for _, s := range schemes {
					cells = append(cells, core.Options{
						Model: model, Hotness: h, Scheme: s, Cores: n, EmbeddingOnly: true,
					})
				}
			}
		}
	}
	reps, err := x.RunMany(cells)
	if err != nil {
		return nil, err
	}
	for i, c := range combos {
		bl, nopf, swpf := reps[3*i], reps[3*i+1], reps[3*i+2]
		t.AddRow(c.model, c.h.String(), c.cores, spd(nopf.Speedup(bl)), spd(swpf.Speedup(bl)))
	}
	t.AddNote("paper: SW-PF gives 1.25x–1.47x single-core and 1.16x–1.43x multi-core; w/o HW-PF is ~1x (slightly better on High Hot)")
	return t, nil
}

// schemesTable runs the full end-to-end scheme matrix for one model.
func schemesTable(x *Context, id, title string, base dlrm.Config, note string) (*Table, error) {
	t := &Table{
		ID: id, Title: title,
		Headers: []string{"dataset", "cores", "w/o HW-PF", "SW-PF", "DP-HT", "MP-HT", "Integrated"},
	}
	model := x.Cfg.model(base)
	cores := x.Cfg.multiCores(platform.CascadeLake())
	schemes := []core.Scheme{core.Baseline, core.NoHWPF, core.SWPF, core.DPHT, core.MPHT, core.Integrated}
	type combo struct {
		h     trace.Hotness
		cores string
	}
	var combos []combo
	var cells []core.Options
	for _, h := range trace.ProductionHotness {
		for _, n := range []int{1, cores} {
			combos = append(combos, combo{h, coreLabel(n)})
			for _, s := range schemes {
				cells = append(cells, core.Options{Model: model, Hotness: h, Scheme: s, Cores: n})
			}
		}
	}
	reps, err := x.RunMany(cells)
	if err != nil {
		return nil, err
	}
	for i, c := range combos {
		bl := reps[len(schemes)*i]
		row := []string{c.h.String(), c.cores}
		for j := 1; j < len(schemes); j++ {
			row = append(row, spd(reps[len(schemes)*i+j].Speedup(bl)))
		}
		t.AddRow(row...)
	}
	t.AddNote("%s", note)
	return t, nil
}

// runFig13 reproduces Fig. 13: end-to-end speedups for the RMC2 models.
func runFig13(x *Context) (*Table, error) {
	t := &Table{
		ID: "fig13", Title: "End-to-end speedup vs baseline (embedding-heavy)",
		Headers: []string{"model", "dataset", "cores", "w/o HW-PF", "SW-PF", "DP-HT", "MP-HT", "Integrated"},
	}
	for _, base := range dlrm.EmbeddingHeavy() {
		sub, err := schemesTable(x, "fig13", "", base, "")
		if err != nil {
			return nil, err
		}
		for _, row := range sub.Rows {
			t.AddRow(append([]string{base.Name}, row...)...)
		}
	}
	t.AddNote("paper: SW-PF 1.21–1.46x single / 1.18–1.42x multi; DP-HT down to 0.62x; MP-HT up to 1.24x; Integrated 1.40–1.59x single / 1.29–1.43x multi")
	return t, nil
}

// runFig14 reproduces Fig. 14: end-to-end speedups for the mixed model.
func runFig14(x *Context) (*Table, error) {
	return schemesTable(x, "fig14", "End-to-end speedup vs baseline (mixed model rm1)",
		dlrm.RM1(),
		"paper: SW-PF ~1.1x (less irregularity to hide); MP-HT 1.25x–1.37x (better overlap); Integrated 1.37x–1.54x")
}

// runFig15 reproduces Fig. 15: L1D hit rate and average load latency of
// the embedding stage under baseline / SW-PF / Integrated on Low Hot.
func runFig15(x *Context) (*Table, error) {
	t := &Table{
		ID: "fig15", Title: "L1D hit rate and avg load latency (Low Hot, multi-core)",
		Headers: []string{"model", "design", "L1D hit", "avg load lat (cyc)"},
	}
	cores := x.Cfg.multiCores(platform.CascadeLake())
	schemes := []core.Scheme{core.Baseline, core.SWPF, core.Integrated}
	var cells []core.Options
	for _, base := range dlrm.EmbeddingHeavy() {
		model := x.Cfg.model(base)
		for _, s := range schemes {
			cells = append(cells, core.Options{
				Model: model, Hotness: trace.LowHot, Scheme: s, Cores: cores,
			})
		}
	}
	reps, err := x.RunMany(cells)
	if err != nil {
		return nil, err
	}
	i := 0
	for _, base := range dlrm.EmbeddingHeavy() {
		for _, s := range schemes {
			rep := reps[i]
			i++
			t.AddRow(base.Name, s.String(), pct(rep.L1HitRate), f1(rep.AvgLoadLatency))
		}
	}
	t.AddNote("paper: baseline 72–84%% / 23–90 cyc; SW-PF 96.7–99.4%% / 5.6–7.1 cyc; Integrated 99.3–99.5%% / 5.5–5.7 cyc")
	return t, nil
}

// runTable4 reproduces Table 4: absolute embedding-only batch times in
// multi-core for all four models × three datasets × three designs.
func runTable4(x *Context) (*Table, error) {
	t := &Table{
		ID: "tab4", Title: "Embedding-only batch execution time (ms), multi-core",
		Headers: []string{"dataset", "model", "HW-PF OFF", "baseline", "SW-PF"},
	}
	cores := x.Cfg.multiCores(platform.CascadeLake())
	schemes := []core.Scheme{core.NoHWPF, core.Baseline, core.SWPF}
	var cells []core.Options
	for _, h := range []trace.Hotness{trace.LowHot, trace.MediumHot, trace.HighHot} {
		for _, base := range dlrm.Zoo() {
			model := x.Cfg.model(base)
			for _, s := range schemes {
				cells = append(cells, core.Options{
					Model: model, Hotness: h, Scheme: s, Cores: cores, EmbeddingOnly: true,
				})
			}
		}
	}
	reps, err := x.RunMany(cells)
	if err != nil {
		return nil, err
	}
	i := 0
	for _, h := range []trace.Hotness{trace.LowHot, trace.MediumHot, trace.HighHot} {
		for _, base := range dlrm.Zoo() {
			row := []string{h.String(), base.Name}
			for range schemes {
				row = append(row, f2(reps[i].BatchLatencyMs))
				i++
			}
			t.AddRow(row...)
		}
	}
	t.AddNote("paper Table 4 (ms, Low/rm2_1): 72.59 / 74.36 / 51.91; absolute values depend on Scale=%d", x.Cfg.Scale)
	return t, nil
}
