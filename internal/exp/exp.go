// Package exp regenerates every table and figure of the paper's evaluation
// as text tables: one registered experiment per artifact (fig1, fig4, fig5,
// fig7, fig8, fig10a/b/c, fig12–fig17, tab4). cmd/dlrmbench is the CLI
// front end; EXPERIMENTS.md records paper-vs-measured for each.
package exp

import (
	"context"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"dlrmsim/internal/core"
	"dlrmsim/internal/dlrm"
	"dlrmsim/internal/platform"
)

// Config scales and seeds an experiment run. The zero value is completed
// by defaults: paper batch size 64, model scale-down 8 (quick mode; use
// Scale=1 to run at paper scale), 1 measured batch per core.
type Config struct {
	// Scale divides model dimensions (see dlrm.Config.Scaled). 1 = paper
	// scale; the default 8 keeps the full suite in minutes.
	Scale int
	// BatchSize per batch (default 64, the paper's setting).
	BatchSize int
	// Batches measured per core (default 1; the paper averages 120).
	Batches int
	// Cores overrides the "multi-core" core count (0 = all platform
	// cores). Single-core panels always use 1.
	Cores int
	// Seed drives everything.
	Seed uint64
	// BandwidthIterations for the DRAM fixed point (default 2).
	BandwidthIterations int
}

// Validate reports every violation in the sweep config at once
// (errors.Join), under withDefaults' zero-means-default convention:
// zero fields are fine, values no default can repair are not.
func (c Config) Validate() error {
	var errs []error
	if c.Scale < 0 {
		errs = append(errs, fmt.Errorf("exp: negative scale %d", c.Scale))
	}
	if c.BatchSize < 0 {
		errs = append(errs, fmt.Errorf("exp: negative batch size %d", c.BatchSize))
	}
	if c.Batches < 0 {
		errs = append(errs, fmt.Errorf("exp: negative batch count %d", c.Batches))
	}
	if c.Cores < 0 {
		errs = append(errs, fmt.Errorf("exp: negative core count %d", c.Cores))
	}
	if c.BandwidthIterations < 0 {
		errs = append(errs, fmt.Errorf("exp: negative bandwidth iterations %d", c.BandwidthIterations))
	}
	return errors.Join(errs...)
}

func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 8
	}
	if c.BatchSize == 0 {
		c.BatchSize = 64
	}
	if c.Batches == 0 {
		c.Batches = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.BandwidthIterations == 0 {
		c.BandwidthIterations = 2
	}
	return c
}

// multiCores resolves the multi-core core count for a platform.
func (c Config) multiCores(cpu platform.CPU) int {
	if c.Cores > 0 && c.Cores <= cpu.Cores {
		return c.Cores
	}
	return cpu.Cores
}

// model returns the (possibly scaled) model config.
func (c Config) model(base dlrm.Config) dlrm.Config { return base.Scaled(c.Scale) }

// Context carries the config plus a memo of engine runs, since several
// experiments share design points (e.g. the multi-core baseline).
//
// A Context is safe for concurrent use: concurrent Run calls for the same
// design point share one computation (the losers wait on the winner's
// memo cell rather than re-simulating), and when the context is armed
// with a worker pool (WithParallelism, done by RunAll) each computation
// occupies one pool slot, bounding total engine concurrency.
type Context struct {
	Cfg Config

	mu   sync.Mutex
	memo map[string]*memoCell

	// ctx cancels in-flight and queued design points; sem, when non-nil,
	// bounds how many engine simulations run at once. Both are configured
	// by WithParallelism; the zero state is sequential and uncancellable,
	// exactly the pre-runner behavior.
	ctx context.Context
	sem chan struct{}

	// cp, when non-nil, is the on-disk cell store (WithCheckpoint):
	// completed cells are persisted as they finish and consulted before
	// simulating, so an interrupted sweep resumes where it stopped.
	cp *Checkpoint
}

// memoCell is the memo entry for one design point. once ensures a single
// computation even when several goroutines request the cell together.
type memoCell struct {
	once sync.Once
	rep  core.Report
	err  error
}

// NewContext returns a run context with defaults applied.
func NewContext(cfg Config) *Context {
	return &Context{
		Cfg:  cfg.withDefaults(),
		memo: map[string]*memoCell{},
		ctx:  context.Background(),
	}
}

// complete fills unset option fields from the run config.
func (x *Context) complete(opts core.Options) core.Options {
	if opts.BatchSize == 0 {
		opts.BatchSize = x.Cfg.BatchSize
	}
	if opts.Batches == 0 {
		opts.Batches = x.Cfg.Batches
	}
	if opts.Seed == 0 {
		opts.Seed = x.Cfg.Seed
	}
	if opts.BandwidthIterations == 0 {
		opts.BandwidthIterations = x.Cfg.BandwidthIterations
	}
	return opts
}

func cellKey(opts core.Options) string {
	return fmt.Sprintf("%s|%v|%s|%v|%v|%d|%d|%d|%v|%v|%d",
		opts.Model.Name, opts.Model.EmbDType, opts.CPU.Name, opts.Hotness, opts.Scheme,
		opts.BatchSize, opts.Batches, opts.Cores, opts.Prefetch, opts.EmbeddingOnly, opts.Seed)
}

// Run executes (or recalls) one engine design point. With a checkpoint
// armed, a cell already in the store is returned without simulating, and
// a freshly simulated cell is committed before Run returns; a panic inside
// the engine is captured as a *CellError rather than propagated.
func (x *Context) Run(opts core.Options) (core.Report, error) {
	opts = x.complete(opts)
	key := cellKey(opts)
	x.mu.Lock()
	cell, ok := x.memo[key]
	if !ok {
		cell = &memoCell{}
		x.memo[key] = cell
	}
	x.mu.Unlock()
	cell.once.Do(func() {
		if x.cp != nil {
			if rep, ok := x.cp.Get(opts); ok {
				cell.rep = rep
				return
			}
		}
		release := x.acquire()
		defer release()
		cell.rep, cell.err = runCell(x.ctx, opts)
		if x.cp != nil && cell.err == nil {
			x.cp.Put(opts, cell.rep)
		}
	})
	return cell.rep, cell.err
}

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a caption line below the table.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	sb.WriteByte('\n')
	_, err := io.WriteString(w, sb.String())
	return err
}

// RenderCSV writes the table as RFC-4180 CSV (headers first; notes are
// emitted as trailing comment rows).
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{"experiment"}, t.Headers...)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(append([]string{t.ID}, row...)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if err := cw.Write([]string{t.ID, "# " + n}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Experiment regenerates one paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(x *Context) (*Table, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("exp: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("exp: unknown experiment %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	return e, nil
}

// IDs lists registered experiment IDs in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// helpers shared by the figure files

func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
func spd(v float64) string { return fmt.Sprintf("%.2fx", v) }
