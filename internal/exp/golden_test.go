package exp

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"dlrmsim/internal/cluster"
	"dlrmsim/internal/core"
	"dlrmsim/internal/dlrm"
	"dlrmsim/internal/hetsched"
	"dlrmsim/internal/serve"
	"dlrmsim/internal/trace"
	"dlrmsim/internal/traffic"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden.json from the current simulator")

// golden pins the reproduction's headline quantities at a small fixed
// configuration (scale 20, batch 8, 2 cores, seed 1). Any refactor that
// silently changes simulator arithmetic — engine, memory hierarchy, trace
// synthesis, serving — trips this file even when the coarser shape tests
// still pass. Regenerate deliberately with:
//
//	go test ./internal/exp -run TestGolden -update
type golden struct {
	// IntegratedSpeedup maps "model|hotness" to the Integrated scheme's
	// end-to-end speedup over baseline (multi-core).
	IntegratedSpeedup map[string]float64 `json:"integrated_speedup"`
	// BatchingP99Ms is the dynamic batcher's p99 query latency under the
	// fixed reference load.
	BatchingP99Ms float64 `json:"batching_p99_ms"`
	// BatchingMeanBatch is the batcher's mean formed batch size there.
	BatchingMeanBatch float64 `json:"batching_mean_batch"`
	// ClusterP95Ms maps "hotness|f=frac" to the cluster tier's p95 under
	// a fixed synthetic service model (goldenClusterConfig), pinning the
	// sharding/router/replication arithmetic independently of the engine.
	ClusterP95Ms map[string]float64 `json:"cluster_p95_ms"`
	// ClusterFaultP99Ms maps a mitigation policy name to the cluster p99
	// under the fixed golden fault model (goldenFaults), pinning the fault
	// injection and router mitigation arithmetic.
	ClusterFaultP99Ms map[string]float64 `json:"cluster_fault_p99_ms"`
	// ClusterFaultCompleteness maps the same policies to the mean join
	// completeness — 1 everywhere except the degraded-join policy.
	ClusterFaultCompleteness map[string]float64 `json:"cluster_fault_completeness"`
	// ClusterOpen* pin the live-traffic tier under the fixed golden
	// overload (goldenOpenConfig): bursty MMPP arrivals 15% past fleet
	// capacity over a revisiting population, keyed by serving mode
	// ("noshed", "shed", "autoscale"). Together they pin the arrival
	// stream, population, admission, and autoscaler arithmetic.
	ClusterOpenGoodputQPS       map[string]float64 `json:"cluster_open_goodput_qps"`
	ClusterOpenShedRate         map[string]float64 `json:"cluster_open_shed_rate"`
	ClusterOpenViolationMinutes map[string]float64 `json:"cluster_open_violation_minutes"`
	ClusterOpenMeanNodes        map[string]float64 `json:"cluster_open_mean_nodes"`
	// ClusterChaos* pin the correlated-failure tier under the fixed golden
	// chaos scenario (goldenChaosConfig — the clu9 retry-storm shape at the
	// synthetic timing): a half-fleet domain outage at 0.72× capacity with
	// two timeout retries, keyed by mitigation mode ("static", "budget",
	// "budget+breaker"). PostFaultRatio is goodput over offered after the
	// schedule clears; RecoverMs is TimeToRecoverMs, whose −1 is the
	// metastable never-recovered signature the static mode must show.
	ClusterChaosPostFaultRatio map[string]float64 `json:"cluster_chaos_post_fault_ratio"`
	ClusterChaosRecoverMs      map[string]float64 `json:"cluster_chaos_recover_ms"`
	ClusterChaosRetryAmp       map[string]float64 `json:"cluster_chaos_retry_amp"`
	ClusterChaosBreakerMin     map[string]float64 `json:"cluster_chaos_breaker_min"`
	// HetP95Ms maps "mix|policy" to the heterogeneous scheduler's p95 over
	// the fixed synthetic phase graph (goldenHetGraph — no engine
	// dependence), pinning the event loop, placement, SMT contention, and
	// batching arithmetic. The pinned mixes are the three policy-winning
	// regimes: smt2 (affinity = MP-HT), biglittle (EFT), hetero (steal).
	HetP95Ms map[string]float64 `json:"het_p95_ms"`
	// HetSMT*OverlapMs pin the SMT-pair overlap accounting for the smt2
	// affinity cell: cross-kind overlap is the colocation working, and
	// same-kind overlap must be exactly zero (the scheme never pays the
	// like-phase contention penalty).
	HetSMTCrossOverlapMs float64 `json:"het_smt_cross_overlap_ms"`
	HetSMTSameOverlapMs  float64 `json:"het_smt_same_overlap_ms"`
	// HetBatchP95Ms maps "u=util|b=maxbatch|h=holdµs" to the cpu2gpu1
	// fleet's p95 under the fixed batching-economics sweep, pinning launch
	// amortization and the hold-window arithmetic.
	HetBatchP95Ms map[string]float64 `json:"het_batch_p95_ms"`
}

// goldenClusterConfig is the fixed reference cluster for the pinned p95
// quantities: 4 nodes, row-range sharding, explicit timing (no engine
// dependence), at the tiny model scale.
func goldenClusterConfig(t *testing.T, model dlrm.Config, h trace.Hotness, frac float64) cluster.Config {
	t.Helper()
	plan, err := cluster.NewPlan(model, 4, cluster.RowRange, frac, 1)
	if err != nil {
		t.Fatal(err)
	}
	return cluster.Config{
		Plan:            plan,
		Hotness:         h,
		SamplesPerQuery: 8,
		Timing:          cluster.Timing{ColdLookupUs: 2, HotLookupUs: 0.1, SubRequestUs: 5, DenseMs: 0.05},
		Net:             cluster.DefaultNetwork(),
		ServersPerNode:  2,
		MeanArrivalMs:   0.15,
		JitterFrac:      0.08,
		Queries:         1500,
		Seed:            1,
	}
}

// goldenFaults is the fixed fault model for the pinned robustness
// quantities: rare-but-severe slowdown episodes, occasional outages, 2%
// transit loss — the regime where mitigation can route around trouble.
func goldenFaults() cluster.FaultModel {
	return cluster.FaultModel{
		SlowdownEveryMs: 200,
		SlowdownMeanMs:  10,
		SlowdownFactor:  6,
		DownEveryMs:     300,
		DownMeanMs:      4,
		DropProb:        0.02,
	}
}

// goldenPolicies are the pinned mitigation policies, with deadlines
// roughly 2× the golden cluster's clean p95 (~0.25 ms). The degraded
// policy is the fail-fast archetype — no standby retry, so blown
// deadlines actually surface as abandoned lookups.
func goldenPolicies() map[string]cluster.Mitigation {
	return map[string]cluster.Mitigation{
		"naive":    {},
		"hedge":    {HedgeDelayMs: 0.5},
		"retry":    {TimeoutMs: 0.5, MaxRetries: 3},
		"degraded": {TimeoutMs: 0.3, DegradedJoin: true},
	}
}

// goldenOpenConfig is the fixed open-loop reference: the golden cluster
// at High Hot with replication off (so the cold-path capacity estimate is
// exact), driven 15% past fleet capacity by bursty MMPP arrivals over a
// revisiting population. The mode selects the serving posture: "noshed"
// admits everything, "shed" bounds queues at a backlog budget, and
// "autoscale" starts at half the fleet and grows under the same budget.
func goldenOpenConfig(t *testing.T, model dlrm.Config, mode string) cluster.Config {
	t.Helper()
	cfg := goldenClusterConfig(t, model, trace.HighHot, 0)
	cfg.MeanArrivalMs = 0
	cfg.Queries = 0
	arrival := cluster.ArrivalForUtilization(cfg.Plan, cfg.Timing, cfg.SamplesPerQuery, cfg.ServersPerNode, 1.15)
	duration := 1200 * arrival
	const budget = 0.25
	open := &cluster.OpenLoop{
		Arrivals: traffic.Config{
			Model:        traffic.MMPP,
			RatePerMs:    1 / arrival,
			BurstFactor:  2,
			BurstEveryMs: 150 * arrival,
			BurstMeanMs:  15 * arrival,
		},
		Population: &traffic.Population{Users: 100000, RevisitProb: 0.6, Affinity: 0.5},
		DurationMs: duration,
		SLAMs:      0.5,
	}
	switch mode {
	case "noshed":
	case "shed":
		open.Admission = cluster.Admission{Policy: cluster.ShedOverBudget, QueueBudgetMs: budget}
	case "autoscale":
		open.Admission = cluster.Admission{Policy: cluster.ShedOverBudget, QueueBudgetMs: budget}
		open.StartNodes = 2
		open.Autoscale = &cluster.Autoscaler{
			IntervalMs:    duration / 96,
			UpBacklogMs:   budget / 8,
			DownBacklogMs: budget / 64,
			ProvisionMs:   duration / 96,
			MinNodes:      2,
			MaxNodes:      4,
		}
	default:
		t.Fatalf("unknown open-loop golden mode %q", mode)
	}
	cfg.Open = open
	return cfg
}

// chaosGoldenModes are the pinned mitigation postures for the chaos
// scenario, mirroring the clu9 experiment's chaosMitigations.
var chaosGoldenModes = []string{"static", "budget", "budget+breaker"}

// goldenChaosConfig is the fixed retry-storm reference: the golden
// cluster at High Hot with replication off, split into two failure
// domains, driven at 0.72× capacity while domain 1 — half the fleet —
// is down for 100 arrival periods. Every posture carries two timeout
// retries; "budget" caps conditional copies at 10% of primaries and
// "budget+breaker" adds per-node circuit breakers. The adaptive epoch
// is 8 arrival periods — the default (4 timeouts) is far coarser than
// the outage itself at the golden timing's microsecond service times.
func goldenChaosConfig(t *testing.T, model dlrm.Config, mode string) cluster.Config {
	t.Helper()
	cfg := goldenClusterConfig(t, model, trace.HighHot, 0)
	cfg.MeanArrivalMs = 0
	cfg.Queries = 0
	arrival := cluster.ArrivalForUtilization(cfg.Plan, cfg.Timing, cfg.SamplesPerQuery, cfg.ServersPerNode, 0.72)
	mit := cluster.Mitigation{TimeoutMs: 0.5, MaxRetries: 2}
	switch mode {
	case "static":
	case "budget":
		mit.RetryBudget = 0.1
		mit.AdaptEpochMs = 8 * arrival
	case "budget+breaker":
		mit.RetryBudget = 0.1
		mit.AdaptEpochMs = 8 * arrival
		mit.BreakerTripRate = 0.5
		mit.BreakerMinSamples = 4
	default:
		t.Fatalf("unknown chaos golden mode %q", mode)
	}
	cfg.Mitigation = mit
	cfg.Chaos = cluster.ChaosSchedule{
		Domains: 2,
		Events: []cluster.ChaosEvent{
			{Kind: cluster.DomainOutage, Domain: 1, AtMs: 200 * arrival, ForMs: 100 * arrival},
		},
	}
	cfg.Open = &cluster.OpenLoop{
		Arrivals:   traffic.Config{Model: traffic.Poisson, RatePerMs: 1 / arrival},
		DurationMs: 2500 * arrival,
		SLAMs:      1,
	}
	return cfg
}

// goldenHetGraph is the fixed synthetic phase graph for the pinned
// heterogeneous-scheduling quantities — 40 µs of gather, 30 µs of dense
// work. Like goldenClusterConfig's explicit Timing, it has no engine
// dependence, so these cells pin the scheduler arithmetic alone.
func goldenHetGraph() hetsched.Graph { return hetsched.DLRMGraph(40, 30) }

// goldenHetConfig is one policy-sweep cell: the named mix at 75% target
// utilization under jitter 0.25 — the same shape the het1 experiment runs,
// minus the calibrated graph.
func goldenHetConfig(t *testing.T, mix string, pol hetsched.Policy) hetsched.Config {
	t.Helper()
	devs, err := hetsched.NewMix(mix)
	if err != nil {
		t.Fatal(err)
	}
	g := goldenHetGraph()
	return hetsched.Config{
		Graph:         g,
		Devices:       devs,
		Policy:        pol,
		MeanArrivalMs: hetsched.ArrivalForUtilization(g, devs, 0.75),
		Requests:      1500,
		JitterFrac:    0.25,
		Seed:          1,
	}
}

// goldenHetBatchConfig is one batching-economics cell: the cpu2gpu1 fleet
// with the GPU's batch limit and hold window overridden, under arrivals
// sized from the fully-amortizing (batch-64) fleet so every cell at one
// util faces identical load. No jitter — the batching arithmetic is the
// quantity under pin.
func goldenHetBatchConfig(t *testing.T, maxBatch int, holdUs, util float64) hetsched.Config {
	t.Helper()
	ref, err := hetGPUFleet(64, 40)
	if err != nil {
		t.Fatal(err)
	}
	devs, err := hetGPUFleet(maxBatch, holdUs)
	if err != nil {
		t.Fatal(err)
	}
	g := goldenHetGraph()
	return hetsched.Config{
		Graph:         g,
		Devices:       devs,
		Policy:        hetsched.Affinity,
		MeanArrivalMs: hetsched.ArrivalForUtilization(g, ref, util),
		Requests:      1500,
		Seed:          1,
	}
}

// goldenBatchingConfig is the fixed reference load for the serving-layer
// quantities.
func goldenBatchingConfig() serve.BatchingConfig {
	return serve.BatchingConfig{
		Cores:             4,
		MeanArrivalMs:     0.5,
		MaxBatch:          64,
		MaxWaitMs:         5,
		ServiceBaseMs:     1,
		ServicePerQueryMs: 0.05,
		Queries:           20000,
		Seed:              1,
	}
}

func computeGolden(t *testing.T) golden {
	t.Helper()
	g := golden{IntegratedSpeedup: map[string]float64{}}
	x := tinyContext().WithParallelism(context.Background(), 0)
	var keys []string
	var cells []core.Options
	for _, base := range dlrm.Zoo() {
		model := x.Cfg.model(base)
		for _, h := range trace.ProductionHotness {
			keys = append(keys, base.Name+"|"+h.String())
			cells = append(cells,
				core.Options{Model: model, Hotness: h, Scheme: core.Baseline, Cores: 2},
				core.Options{Model: model, Hotness: h, Scheme: core.Integrated, Cores: 2})
		}
	}
	reps, err := x.RunMany(cells)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		g.IntegratedSpeedup[k] = reps[2*i+1].Speedup(reps[2*i])
	}
	res, err := serve.SimulateBatching(goldenBatchingConfig())
	if err != nil {
		t.Fatal(err)
	}
	g.BatchingP99Ms = res.P99
	g.BatchingMeanBatch = res.MeanBatchSize
	g.ClusterP95Ms = map[string]float64{}
	cmodel := x.Cfg.model(dlrm.RM2Small())
	for _, h := range []trace.Hotness{trace.HighHot, trace.LowHot} {
		for _, frac := range []float64{0, 0.05} {
			cres, err := cluster.Simulate(goldenClusterConfig(t, cmodel, h, frac))
			if err != nil {
				t.Fatal(err)
			}
			g.ClusterP95Ms[fmt.Sprintf("%s|f=%.2f", h, frac)] = cres.P95
		}
	}
	g.ClusterFaultP99Ms = map[string]float64{}
	g.ClusterFaultCompleteness = map[string]float64{}
	for name, mit := range goldenPolicies() {
		cfg := goldenClusterConfig(t, cmodel, trace.HighHot, 0.05)
		cfg.Faults = goldenFaults()
		cfg.Mitigation = mit
		cres, err := cluster.Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		g.ClusterFaultP99Ms[name] = cres.P99
		g.ClusterFaultCompleteness[name] = cres.Completeness
	}
	g.ClusterOpenGoodputQPS = map[string]float64{}
	g.ClusterOpenShedRate = map[string]float64{}
	g.ClusterOpenViolationMinutes = map[string]float64{}
	g.ClusterOpenMeanNodes = map[string]float64{}
	for _, mode := range []string{"noshed", "shed", "autoscale"} {
		cres, err := cluster.Simulate(goldenOpenConfig(t, cmodel, mode))
		if err != nil {
			t.Fatal(err)
		}
		g.ClusterOpenGoodputQPS[mode] = cres.Goodput
		g.ClusterOpenShedRate[mode] = cres.ShedRate
		g.ClusterOpenViolationMinutes[mode] = cres.SLAViolationMinutes
		g.ClusterOpenMeanNodes[mode] = cres.MeanActiveNodes
	}
	g.ClusterChaosPostFaultRatio = map[string]float64{}
	g.ClusterChaosRecoverMs = map[string]float64{}
	g.ClusterChaosRetryAmp = map[string]float64{}
	g.ClusterChaosBreakerMin = map[string]float64{}
	for _, mode := range chaosGoldenModes {
		cres, err := cluster.Simulate(goldenChaosConfig(t, cmodel, mode))
		if err != nil {
			t.Fatal(err)
		}
		ratio := 0.0
		if cres.PostFaultOfferedQPS > 0 {
			ratio = cres.PostFaultGoodput / cres.PostFaultOfferedQPS
		}
		g.ClusterChaosPostFaultRatio[mode] = ratio
		g.ClusterChaosRecoverMs[mode] = cres.TimeToRecoverMs
		g.ClusterChaosRetryAmp[mode] = cres.RetryAmplification
		g.ClusterChaosBreakerMin[mode] = cres.BreakerOpenMinutes
	}
	g.HetP95Ms = map[string]float64{}
	for _, mix := range []string{"smt2", "biglittle", "hetero"} {
		for _, pol := range hetsched.AllPolicies {
			hres, err := hetsched.Simulate(goldenHetConfig(t, mix, pol))
			if err != nil {
				t.Fatal(err)
			}
			g.HetP95Ms[mix+"|"+pol.String()] = hres.P95
			if mix == "smt2" && pol == hetsched.Affinity {
				g.HetSMTCrossOverlapMs = hres.CrossKindOverlapMs
				g.HetSMTSameOverlapMs = hres.SameKindOverlapMs
			}
		}
	}
	g.HetBatchP95Ms = map[string]float64{}
	for _, util := range []float64{0.35, 0.85} {
		for _, pt := range []struct {
			b int
			h float64
		}{{1, 0}, {64, 40}, {64, 0}} {
			hres, err := hetsched.Simulate(goldenHetBatchConfig(t, pt.b, pt.h, util))
			if err != nil {
				t.Fatal(err)
			}
			g.HetBatchP95Ms[fmt.Sprintf("u=%.2f|b=%d|h=%g", util, pt.b, pt.h)] = hres.P95
		}
	}
	return g
}

const goldenPath = "testdata/golden.json"

// TestGoldenRegression recomputes the pinned quantities at the golden
// seed and compares them to testdata/golden.json within 1e-9.
func TestGoldenRegression(t *testing.T) {
	got := computeGolden(t)
	// The robustness subsystem's acceptance criterion, checked against the
	// freshly computed quantities so it holds in -update runs too: with
	// faults on, mitigation demonstrably improves the tail over the naive
	// router, and only degraded joins give up completeness.
	naiveP99 := got.ClusterFaultP99Ms["naive"]
	for _, policy := range []string{"hedge", "retry", "degraded"} {
		if p99 := got.ClusterFaultP99Ms[policy]; p99 >= naiveP99 {
			t.Errorf("%s policy p99 %.4f ms does not beat naive %.4f ms under golden faults", policy, p99, naiveP99)
		}
	}
	for policy, compl := range got.ClusterFaultCompleteness {
		if policy != "degraded" && compl != 1 {
			t.Errorf("%s policy lost data: completeness %g", policy, compl)
		}
	}
	if got.ClusterFaultCompleteness["degraded"] >= 1 {
		t.Error("degraded policy never abandoned a lookup under golden faults")
	}
	// The live-traffic tier's acceptance criterion, also checked fresh:
	// under the golden overload, admission control demonstrably reduces
	// SLA-violation minutes versus the no-shed baseline at a nonzero shed
	// rate, and the autoscaled fleet actually moves off its floor.
	noshedViol := got.ClusterOpenViolationMinutes["noshed"]
	if noshedViol == 0 {
		t.Error("no-shed baseline saw no SLA violation minutes under the golden overload")
	}
	if shedViol := got.ClusterOpenViolationMinutes["shed"]; shedViol >= noshedViol {
		t.Errorf("shedding does not reduce SLA violation minutes: shed %.1f vs noshed %.1f", shedViol, noshedViol)
	}
	if got.ClusterOpenShedRate["shed"] == 0 {
		t.Error("shed mode never shed an arrival under the golden overload")
	}
	if got.ClusterOpenShedRate["noshed"] != 0 {
		t.Errorf("no-shed mode shed %.3f of arrivals", got.ClusterOpenShedRate["noshed"])
	}
	if mean := got.ClusterOpenMeanNodes["autoscale"]; mean <= 2 || mean > 4 {
		t.Errorf("autoscaled fleet averaged %.2f nodes, want strictly inside (2, 4]", mean)
	}
	// The correlated-failure tier's acceptance criterion, checked fresh:
	// under the golden retry storm, the static router is metastable — its
	// post-fault goodput stays collapsed and it never recovers — while the
	// retry budget restores goodput and circuit breakers restore it
	// strictly faster, with the breaker demonstrably open along the way.
	if ratio := got.ClusterChaosPostFaultRatio["static"]; ratio > 0.7 {
		t.Errorf("static router's post-fault goodput ratio %.3f is not collapsed (want <= 0.7)", ratio)
	}
	if rec := got.ClusterChaosRecoverMs["static"]; rec != -1 {
		t.Errorf("static router recovered at %.3f ms under the golden retry storm; metastability requires never (-1)", rec)
	}
	budgetRec := got.ClusterChaosRecoverMs["budget"]
	breakerRec := got.ClusterChaosRecoverMs["budget+breaker"]
	if budgetRec < 0 {
		t.Error("retry budget never recovered under the golden retry storm")
	}
	if breakerRec < 0 || breakerRec >= budgetRec {
		t.Errorf("budget+breaker recovery %.3f ms is not strictly faster than budget-only %.3f ms", breakerRec, budgetRec)
	}
	if s, b := got.ClusterChaosRetryAmp["static"], got.ClusterChaosRetryAmp["budget"]; s <= b {
		t.Errorf("static retry amplification %.2f does not exceed budgeted %.2f", s, b)
	}
	if got.ClusterChaosBreakerMin["budget+breaker"] <= 0 {
		t.Error("breaker mode never opened a breaker under the golden retry storm")
	}
	for _, mode := range []string{"static", "budget"} {
		if v := got.ClusterChaosBreakerMin[mode]; v != 0 {
			t.Errorf("%s mode reports %.4g breaker-open node-minutes without breakers", mode, v)
		}
	}
	// The heterogeneous-scheduling subsystem's acceptance criterion,
	// checked fresh: each placement policy strictly wins one device-mix
	// regime, and the SMT pair under affinity reproduces the paper's MP-HT
	// colocation — the siblings overlap cross-kind only.
	for mix, winner := range map[string]string{"smt2": "affinity", "biglittle": "eft", "hetero": "steal"} {
		best := got.HetP95Ms[mix+"|"+winner]
		for _, pol := range hetsched.AllPolicies {
			if pol.String() == winner {
				continue
			}
			if other := got.HetP95Ms[mix+"|"+pol.String()]; other <= best {
				t.Errorf("%s does not win %s: p95 %.4f ms vs %s %.4f ms", winner, mix, best, pol, other)
			}
		}
	}
	if got.HetSMTSameOverlapMs != 0 {
		t.Errorf("MP-HT colocation paid same-kind SMT overlap: %.4f ms", got.HetSMTSameOverlapMs)
	}
	if got.HetSMTCrossOverlapMs <= 0 {
		t.Error("MP-HT colocation never overlapped the SMT siblings cross-kind")
	}
	// Batching economics, checked fresh: batch-of-1 drowns in per-launch
	// cost at both loads, and at low load the hold window is a pure
	// latency tax (hold 0 strictly beats hold 40).
	for _, u := range []string{"0.35", "0.85"} {
		solo, amortized := got.HetBatchP95Ms["u="+u+"|b=1|h=0"], got.HetBatchP95Ms["u="+u+"|b=64|h=40"]
		if solo <= amortized {
			t.Errorf("batch-of-1 p95 %.4f ms does not lose to batch-64 %.4f ms at util %s", solo, amortized, u)
		}
	}
	if nohold, hold := got.HetBatchP95Ms["u=0.35|b=64|h=0"], got.HetBatchP95Ms["u=0.35|b=64|h=40"]; nohold >= hold {
		t.Errorf("hold window is free at low load: p95 %.4f ms without vs %.4f ms with", nohold, hold)
	}
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}
	buf, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	var want golden
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	const tol = 1e-9
	close := func(a, b float64) bool {
		return math.Abs(a-b) <= tol*math.Max(1, math.Abs(b))
	}
	var wantKeys []string
	for k := range want.IntegratedSpeedup {
		wantKeys = append(wantKeys, k)
	}
	sort.Strings(wantKeys)
	if len(got.IntegratedSpeedup) != len(wantKeys) {
		t.Errorf("golden has %d speedup cells, computed %d", len(wantKeys), len(got.IntegratedSpeedup))
	}
	for _, k := range wantKeys {
		g, ok := got.IntegratedSpeedup[k]
		if !ok {
			t.Errorf("cell %q missing from computed results", k)
			continue
		}
		if !close(g, want.IntegratedSpeedup[k]) {
			t.Errorf("Integrated speedup[%s] = %.12g, golden %.12g", k, g, want.IntegratedSpeedup[k])
		}
	}
	if !close(got.BatchingP99Ms, want.BatchingP99Ms) {
		t.Errorf("batching p99 = %.12g ms, golden %.12g ms", got.BatchingP99Ms, want.BatchingP99Ms)
	}
	if !close(got.BatchingMeanBatch, want.BatchingMeanBatch) {
		t.Errorf("batching mean batch = %.12g, golden %.12g", got.BatchingMeanBatch, want.BatchingMeanBatch)
	}
	if len(got.ClusterP95Ms) != len(want.ClusterP95Ms) {
		t.Errorf("golden has %d cluster cells, computed %d", len(want.ClusterP95Ms), len(got.ClusterP95Ms))
	}
	var clusterKeys []string
	for k := range want.ClusterP95Ms {
		clusterKeys = append(clusterKeys, k)
	}
	sort.Strings(clusterKeys)
	for _, k := range clusterKeys {
		g, ok := got.ClusterP95Ms[k]
		if !ok {
			t.Errorf("cluster cell %q missing from computed results", k)
			continue
		}
		if !close(g, want.ClusterP95Ms[k]) {
			t.Errorf("cluster p95[%s] = %.12g ms, golden %.12g ms", k, g, want.ClusterP95Ms[k])
		}
	}
	compareMap := func(metric string, gotM, wantM map[string]float64) {
		if len(gotM) != len(wantM) {
			t.Errorf("golden has %d %s cells, computed %d", len(wantM), metric, len(gotM))
		}
		var keys []string
		for k := range wantM {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			g, ok := gotM[k]
			if !ok {
				t.Errorf("%s cell %q missing from computed results", metric, k)
				continue
			}
			if !close(g, wantM[k]) {
				t.Errorf("%s[%s] = %.12g, golden %.12g", metric, k, g, wantM[k])
			}
		}
	}
	compareMap("fault p99", got.ClusterFaultP99Ms, want.ClusterFaultP99Ms)
	compareMap("fault completeness", got.ClusterFaultCompleteness, want.ClusterFaultCompleteness)
	compareMap("open goodput", got.ClusterOpenGoodputQPS, want.ClusterOpenGoodputQPS)
	compareMap("open shed rate", got.ClusterOpenShedRate, want.ClusterOpenShedRate)
	compareMap("open violation minutes", got.ClusterOpenViolationMinutes, want.ClusterOpenViolationMinutes)
	compareMap("open mean nodes", got.ClusterOpenMeanNodes, want.ClusterOpenMeanNodes)
	compareMap("chaos post-fault ratio", got.ClusterChaosPostFaultRatio, want.ClusterChaosPostFaultRatio)
	compareMap("chaos recover ms", got.ClusterChaosRecoverMs, want.ClusterChaosRecoverMs)
	compareMap("chaos retry amp", got.ClusterChaosRetryAmp, want.ClusterChaosRetryAmp)
	compareMap("chaos breaker minutes", got.ClusterChaosBreakerMin, want.ClusterChaosBreakerMin)
	compareMap("het p95", got.HetP95Ms, want.HetP95Ms)
	compareMap("het batching p95", got.HetBatchP95Ms, want.HetBatchP95Ms)
	if !close(got.HetSMTCrossOverlapMs, want.HetSMTCrossOverlapMs) {
		t.Errorf("het SMT cross overlap = %.12g ms, golden %.12g ms", got.HetSMTCrossOverlapMs, want.HetSMTCrossOverlapMs)
	}
	if !close(got.HetSMTSameOverlapMs, want.HetSMTSameOverlapMs) {
		t.Errorf("het SMT same overlap = %.12g ms, golden %.12g ms", got.HetSMTSameOverlapMs, want.HetSMTSameOverlapMs)
	}
}
