package exp

import (
	"context"
	"errors"
	"strings"
	"testing"

	"dlrmsim/internal/core"
	"dlrmsim/internal/dlrm"
	"dlrmsim/internal/trace"
)

// panicProvider is a BatchProvider whose first use panics — a stand-in for
// any bug deep inside one design point's simulation.
type panicProvider struct{}

func (panicProvider) Batch(batchIdx, tableIdx int) trace.TableBatch {
	panic("panicProvider: boom")
}

// panicOptions returns a completed cell that panics inside the engine.
func panicOptions(x *Context) core.Options {
	return x.complete(core.Options{Model: x.Cfg.model(dlrm.RM2Small()), Trace: panicProvider{}})
}

// registerTemp registers an experiment for one test and removes it on
// cleanup, so the registry-wide determinism tests never see it.
func registerTemp(t *testing.T, e Experiment) {
	t.Helper()
	register(e)
	t.Cleanup(func() { delete(registry, e.ID) })
}

// TestRunCellPanicCaptured: a panic inside the engine surfaces as a typed
// *CellError carrying the cell's options, the panic value, and the stack —
// not as a process crash.
func TestRunCellPanicCaptured(t *testing.T) {
	x := tinyContext()
	_, err := x.Run(panicOptions(x))
	var ce *CellError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v (%T), want *CellError", err, err)
	}
	if ce.CellIndex != -1 {
		t.Errorf("CellIndex = %d, want -1 before attribution", ce.CellIndex)
	}
	if ce.Options.Trace == nil {
		t.Error("CellError lost the failing cell's options")
	}
	if len(ce.Stack) == 0 || !strings.Contains(string(ce.Stack), "panicProvider") {
		t.Error("CellError stack does not reach the panic site")
	}
	if s, ok := ce.Panic.(string); !ok || !strings.Contains(s, "boom") {
		t.Errorf("Panic = %v, want the panic value", ce.Panic)
	}
}

// TestRunManyAttributesCellIndex: RunMany stamps the failing cell's index
// without mutating the memoized original (two batches sharing the failed
// memo cell each see their own index).
func TestRunManyAttributesCellIndex(t *testing.T) {
	x := tinyContext().WithParallelism(context.Background(), 1)
	good := x.complete(core.Options{Model: x.Cfg.model(dlrm.RM2Small()), Hotness: trace.LowHot, Cores: 2})
	_, err := x.RunMany([]core.Options{good, panicOptions(x)})
	var ce *CellError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CellError", err)
	}
	if ce.CellIndex != 1 {
		t.Errorf("CellIndex = %d, want 1", ce.CellIndex)
	}
	_, err = x.RunMany([]core.Options{panicOptions(x)})
	if !errors.As(err, &ce) {
		t.Fatal("memoized failure not replayed")
	}
	if ce.CellIndex != 0 {
		t.Errorf("second batch CellIndex = %d, want 0 (original mutated?)", ce.CellIndex)
	}
}

// TestRunAllKeepGoingIsolatesFailure: one deliberately panicking experiment
// does not stop the sweep — every other table completes, the failure comes
// back as a structured *CellError with the experiment attributed, and the
// plain RunAll path still fails fast on the same registry.
func TestRunAllKeepGoingIsolatesFailure(t *testing.T) {
	registerTemp(t, Experiment{
		ID:    "zz-panic",
		Title: "deliberately panicking cell (test only)",
		Run: func(x *Context) (*Table, error) {
			_, err := x.Run(panicOptions(x))
			return nil, err
		},
	})
	ids := []string{"fig1", "zz-panic", "fig10b"}
	for _, workers := range []int{1, 4} {
		tables, failures, err := RunAllKeepGoing(context.Background(), tinyContext(), ids, workers)
		if err != nil {
			t.Fatalf("workers=%d: pre-flight error: %v", workers, err)
		}
		if len(failures) != 1 || failures[0].ID != "zz-panic" {
			t.Fatalf("workers=%d: failures = %+v, want exactly zz-panic", workers, failures)
		}
		var ce *CellError
		if !errors.As(failures[0].Err, &ce) {
			t.Fatalf("workers=%d: failure err = %v, want *CellError", workers, failures[0].Err)
		}
		if ce.ExpID != "zz-panic" {
			t.Errorf("workers=%d: ExpID = %q, want zz-panic", workers, ce.ExpID)
		}
		if tables[0] == nil || tables[2] == nil || tables[1] != nil {
			t.Errorf("workers=%d: tables = [%v %v %v], want only index 1 nil",
				workers, tables[0] != nil, tables[1] != nil, tables[2] != nil)
		}
		report := FormatFailures(failures)
		if !strings.Contains(report, "zz-panic") || !strings.Contains(report, "panicProvider") {
			t.Errorf("workers=%d: FormatFailures output missing ID or stack:\n%s", workers, report)
		}

		if _, err := RunAll(context.Background(), tinyContext(), ids, workers); err == nil {
			t.Errorf("workers=%d: RunAll completed over a panicking experiment", workers)
		}
	}
}

// TestSafeRunCatchesExperimentBodyPanic: a panic in the experiment body
// itself (outside any cell) is also contained and attributed.
func TestSafeRunCatchesExperimentBodyPanic(t *testing.T) {
	e := Experiment{
		ID:    "zz-body-panic",
		Title: "body panic",
		Run:   func(x *Context) (*Table, error) { panic("body boom") },
	}
	_, err := safeRun(e, tinyContext())
	var ce *CellError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CellError", err)
	}
	if ce.ExpID != "zz-body-panic" || ce.Panic != "body boom" {
		t.Errorf("CellError = %+v, want body panic attributed", ce)
	}
}
