package exp

import (
	"bytes"
	"strings"
	"testing"
)

// tinyContext returns a context small enough that every experiment runs in
// a few seconds: scale-down 20, 2 cores, batch 8.
func tinyContext() *Context {
	return NewContext(Config{
		Scale:               20,
		BatchSize:           8,
		Batches:             1,
		Cores:               2,
		Seed:                1,
		BandwidthIterations: 2,
	})
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig1", "fig4", "fig5", "fig7", "fig8",
		"fig10a", "fig10b", "fig10c",
		"fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "tab4",
		"ext1", "ext2", "ext3", "ext4", "ext5", "ext6", "ext7", "ext8",
		"clu1", "clu2", "clu3", "clu4", "clu5", "clu6", "clu7", "clu8", "clu9",
		"het1", "het2",
	}
	ids := IDs()
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(ids) != len(want) {
		t.Errorf("registry has %d experiments, want %d: %v", len(ids), len(want), ids)
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("fig99"); err == nil {
		t.Fatal("accepted unknown experiment")
	}
}

func TestEveryExperimentRuns(t *testing.T) {
	x := tinyContext()
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			e, err := Get(id)
			if err != nil {
				t.Fatal(err)
			}
			tbl, err := e.Run(x)
			if err != nil {
				t.Fatal(err)
			}
			if len(tbl.Rows) == 0 {
				t.Fatal("empty table")
			}
			for _, row := range tbl.Rows {
				if len(row) != len(tbl.Headers) && tbl.ID != "fig17" {
					t.Fatalf("row width %d != header width %d: %v", len(row), len(tbl.Headers), row)
				}
			}
			var buf bytes.Buffer
			if err := tbl.Render(&buf); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(buf.String(), tbl.ID) {
				t.Fatal("render missing ID")
			}
		})
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{ID: "x", Title: "t", Headers: []string{"a", "long-header"}}
	tbl.AddRow("1", "2")
	tbl.AddNote("n=%d", 5)
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== x: t ==", "long-header", "note: n=5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestContextMemoization(t *testing.T) {
	x := tinyContext()
	e, err := Get("fig4")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(x); err != nil {
		t.Fatal(err)
	}
	n := len(x.memo)
	if n == 0 {
		t.Fatal("no memo entries after a run")
	}
	if _, err := e.Run(x); err != nil {
		t.Fatal(err)
	}
	if len(x.memo) != n {
		t.Fatalf("second run added memo entries: %d → %d", n, len(x.memo))
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Scale != 8 || c.BatchSize != 64 || c.Batches != 1 || c.Seed != 1 {
		t.Fatalf("defaults = %+v", c)
	}
}
