package exp

// The cluster experiment family (clu1–clu3) lifts the evaluation from one
// node to the sharded fleet the paper's title problem lives at: per-node
// service costs come from the timing simulator (memoized engine runs),
// the cluster tier is internal/cluster's deterministic discrete-event
// simulation of sharding, router fan-out, and hot-row replication.

import (
	"fmt"

	"dlrmsim/internal/cluster"
	"dlrmsim/internal/core"
	"dlrmsim/internal/dlrm"
	"dlrmsim/internal/platform"
	"dlrmsim/internal/trace"
)

func init() {
	register(Experiment{ID: "clu1", Title: "Cluster sharding: nodes × policy (table-wise vs row-range)", Run: runClu1})
	register(Experiment{ID: "clu2", Title: "Cluster hot-row replication: memory vs tail latency", Run: runClu2})
	register(Experiment{ID: "clu3", Title: "Cluster-level scheme comparison (per-node design points)", Run: runClu3})
}

// cluQueries keeps the cluster sweeps fast at every scale; the discrete-
// event sim is O(queries × lookups).
const cluQueries = 1200

// clusterTiming derives the per-node service model for one scheme from a
// (memoized) engine run.
func clusterTiming(x *Context, model dlrm.Config, h trace.Hotness, scheme core.Scheme, cores int) (cluster.Timing, error) {
	rep, err := x.Run(core.Options{Model: model, Hotness: h, Scheme: scheme, Cores: cores})
	if err != nil {
		return cluster.Timing{}, err
	}
	lookups := x.Cfg.BatchSize * model.Tables * model.LookupsPerSample
	return cluster.TimingFromReport(rep, platform.CascadeLake(), lookups), nil
}

// cluConfig assembles the shared simulation config: the offered load is
// sized from the plan's cold-path work estimate so it stays fixed across
// a replication sweep.
func cluConfig(x *Context, plan *cluster.Plan, h trace.Hotness, tm cluster.Timing, servers int, util float64) cluster.Config {
	return cluster.Config{
		Plan:            plan,
		Hotness:         h,
		SamplesPerQuery: x.Cfg.BatchSize,
		Timing:          tm,
		Net:             cluster.DefaultNetwork(),
		ServersPerNode:  servers,
		MeanArrivalMs:   cluster.ArrivalForUtilization(plan, tm, x.Cfg.BatchSize, servers, util),
		JitterFrac:      0.08,
		Queries:         cluQueries,
		Seed:            x.Cfg.Seed,
	}
}

// runClu1 sweeps cluster size × sharding policy at fixed per-node
// utilization (weak scaling): table-wise sharding bounds fan-out by the
// table count but is lumpy in memory and load; row-range sharding
// balances memory to the row but fans every query out to all nodes.
func runClu1(x *Context) (*Table, error) {
	t := &Table{
		ID: "clu1", Title: "Sharding policy sweep (rm2_1, Medium Hot, baseline nodes)",
		Headers: []string{"nodes", "policy", "shard MB/node", "arrival (ms)", "p50 (ms)", "p95 (ms)", "fan-out", "imbalance", "util"},
	}
	model := x.Cfg.model(dlrm.RM2Small())
	cores := x.Cfg.multiCores(platform.CascadeLake())
	tm, err := clusterTiming(x, model, trace.MediumHot, core.Baseline, cores)
	if err != nil {
		return nil, err
	}
	for _, nodes := range []int{2, 4, 8, 16} {
		for _, policy := range cluster.AllPolicies {
			plan, err := cluster.NewPlan(model, nodes, policy, 0, x.Cfg.Seed)
			if err != nil {
				return nil, err
			}
			cfg := cluConfig(x, plan, trace.MediumHot, tm, cores, 0.55)
			res, err := cluster.Simulate(cfg)
			if err != nil {
				return nil, err
			}
			t.AddRow(fmt.Sprint(nodes), policy.String(), f1(float64(plan.MaxShardBytes())/1e6),
				f3(cfg.MeanArrivalMs), f3(res.P50), f3(res.P95),
				f2(res.MeanFanout), f2(res.Imbalance), pct(res.Utilization))
		}
	}
	t.AddNote("weak scaling: arrival sized for ~55%% utilization per node; table-wise fan-out is capped by the table count, row-range spreads memory evenly but touches every node")
	return t, nil
}

// runClu2 sweeps the hot-row replication fraction per hotness class: the
// BagPipe-style lever — replicating the top-k hottest rows on every node
// short-circuits the fan-out for skewed traffic at a measured memory
// cost. The offered load is fixed per hotness class across the sweep.
func runClu2(x *Context) (*Table, error) {
	t := &Table{
		ID: "clu2", Title: "Hot-row replication sweep (rm2_1, row-range, 8 nodes)",
		Headers: []string{"hotness", "replicate", "replica MB/node", "local %", "fan-out", "p50 (ms)", "p95 (ms)"},
	}
	model := x.Cfg.model(dlrm.RM2Small())
	cores := x.Cfg.multiCores(platform.CascadeLake())
	fractions := []float64{0, 0.001, 0.01, 0.05, 0.2}
	for _, h := range trace.ProductionHotness {
		tm, err := clusterTiming(x, model, h, core.Baseline, cores)
		if err != nil {
			return nil, err
		}
		plan, err := cluster.NewPlan(model, 8, cluster.RowRange, 0, x.Cfg.Seed)
		if err != nil {
			return nil, err
		}
		points, err := cluster.SweepReplication(cluConfig(x, plan, h, tm, cores, 0.55), fractions)
		if err != nil {
			return nil, err
		}
		for _, p := range points {
			t.AddRow(h.String(), fmt.Sprintf("%.3f", p.Fraction),
				f2(float64(p.Result.ReplicaBytesPerNode)/1e6), pct(p.Result.LocalFraction),
				f2(p.Result.MeanFanout), f3(p.Result.P50), f3(p.Result.P95))
		}
	}
	t.AddNote("replicating the top-k Zipf ranks serves High-hot traffic almost entirely from local replicas: p95 falls monotonically with the fraction while replica memory grows linearly; near-uniform Low-hot traffic gains little")
	return t, nil
}

// runClu3 compares the paper's design points at cluster scale: each
// scheme's single-node report sets the per-node service model, every
// scheme faces the identical offered load (sized from the baseline), and
// the cluster p95 shows how much of the node-level win survives the
// network and fan-out.
func runClu3(x *Context) (*Table, error) {
	t := &Table{
		ID: "clu3", Title: "Design points at cluster scale (rm2_1, Low Hot, 8 nodes, row-range, 1% replication)",
		Headers: []string{"design", "cold µs/lookup", "dense (ms)", "p95 (ms)", "cluster speedup"},
	}
	model := x.Cfg.model(dlrm.RM2Small())
	cores := x.Cfg.multiCores(platform.CascadeLake())
	schemes := []core.Scheme{core.Baseline, core.SWPF, core.MPHT, core.Integrated}
	cells := make([]core.Options, len(schemes))
	for i, s := range schemes {
		cells[i] = core.Options{Model: model, Hotness: trace.LowHot, Scheme: s, Cores: cores}
	}
	reps, err := x.RunMany(cells)
	if err != nil {
		return nil, err
	}
	lookups := x.Cfg.BatchSize * model.Tables * model.LookupsPerSample
	plan, err := cluster.NewPlan(model, 8, cluster.RowRange, 0.01, x.Cfg.Seed)
	if err != nil {
		return nil, err
	}
	baseTiming := cluster.TimingFromReport(reps[0], platform.CascadeLake(), lookups)
	arrival := cluster.ArrivalForUtilization(plan, baseTiming, x.Cfg.BatchSize, cores, 0.55)
	var baseP95 float64
	for i, s := range schemes {
		tm := cluster.TimingFromReport(reps[i], platform.CascadeLake(), lookups)
		cfg := cluConfig(x, plan, trace.LowHot, tm, cores, 0.55)
		cfg.MeanArrivalMs = arrival // identical offered load for every scheme
		res, err := cluster.Simulate(cfg)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			baseP95 = res.P95
		}
		speed := 0.0
		if res.P95 > 0 {
			speed = baseP95 / res.P95
		}
		t.AddRow(s.String(), f2(tm.ColdLookupUs), f3(tm.DenseMs), f3(res.P95), spd(speed))
	}
	t.AddNote("per-node scheme wins carry to the cluster tier attenuated by fixed network hops and join overheads — the faster the node, the larger the share of p95 the network owns")
	return t, nil
}
