package exp

// The heterogeneous-scheduling family (het1–het2) generalizes the
// paper's MP-HT colocation: requests are typed phase graphs (gather →
// interact → MLP) routed by a placement policy over a fleet mixing CPU
// cores, a batching GPU-like device, and PIM-like gather engines. The
// per-phase CPU costs are calibrated from the same memoized engine run
// the cluster tier uses, so the phase graph reflects the simulated
// hardware rather than hand-picked constants.

import (
	"fmt"

	"dlrmsim/internal/core"
	"dlrmsim/internal/dlrm"
	"dlrmsim/internal/hetsched"
	"dlrmsim/internal/platform"
	"dlrmsim/internal/trace"
)

func init() {
	register(Experiment{ID: "het1", Title: "Heterogeneous scheduling: placement policy × device mix", Run: runHet1})
	register(Experiment{ID: "het2", Title: "GPU batching economics: max batch × offered load", Run: runHet2})
}

// hetRequests keeps the het sweeps fast at every scale; one simulation is
// O(requests × phases × devices).
const hetRequests = 1500

// hetJitter is the service-time variance the policy sweep runs under —
// large enough that estimate-based placement is meaningfully wrong,
// small enough that placement still dominates luck.
const hetJitter = 0.25

// hetGraph calibrates the DLRM phase graph from a (memoized) engine run:
// the gather phase costs the report's cold per-lookup time over the
// batch's lookups, and the dense phases split the report's dense-stage
// time — the same TimingFromReport numbers the cluster tier serves with.
func hetGraph(x *Context) (hetsched.Graph, error) {
	model := x.Cfg.model(dlrm.RM2Small())
	cores := x.Cfg.multiCores(platform.CascadeLake())
	tm, err := clusterTiming(x, model, trace.MediumHot, core.Baseline, cores)
	if err != nil {
		return hetsched.Graph{}, err
	}
	lookups := x.Cfg.BatchSize * model.Tables * model.LookupsPerSample
	gatherUs := tm.ColdLookupUs * float64(lookups)
	denseUs := tm.DenseMs * 1e3
	return hetsched.DLRMGraph(gatherUs, denseUs), nil
}

// runHet1 sweeps placement policy × device mix at fixed target
// utilization. The interesting structure is that each policy owns a
// regime: affinity wins on SMT siblings (it is the paper's MP-HT
// colocation — the overlap columns show it never pays the same-kind
// contention penalty), work stealing wins on uniform multi-core fleets
// (post-hoc correction beats any ex-ante estimate once jitter lands),
// and earliest-finish-time wins on speed-asymmetric big.LITTLE fleets
// (the one regime where pricing devices matters more than conserving
// work).
func runHet1(x *Context) (*Table, error) {
	t := &Table{
		ID: "het1", Title: "Placement policy × device mix (rm2_1-calibrated phases, ~75% util, jitter 0.25)",
		Headers: []string{"mix", "policy", "arrival (ms)", "p50 (ms)", "p95 (ms)", "wait (ms)", "steals", "util", "smt cross (ms)", "smt same (ms)"},
	}
	g, err := hetGraph(x)
	if err != nil {
		return nil, err
	}
	for _, mix := range hetsched.Mixes {
		devs, err := hetsched.NewMix(mix)
		if err != nil {
			return nil, err
		}
		arrival := hetsched.ArrivalForUtilization(g, devs, 0.75)
		for _, pol := range hetsched.AllPolicies {
			res, err := hetsched.Simulate(hetsched.Config{
				Graph:         g,
				Devices:       devs,
				Policy:        pol,
				MeanArrivalMs: arrival,
				Requests:      hetRequests,
				JitterFrac:    hetJitter,
				Seed:          x.Cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			t.AddRow(mix, pol.String(), f3(arrival), f3(res.P50), f3(res.P95),
				f3(res.MeanPhaseWaitMs), fmt.Sprint(res.Steals), pct(res.UtilTotal),
				f1(res.CrossKindOverlapMs), f1(res.SameKindOverlapMs))
		}
	}
	t.AddNote("every policy owns a regime: affinity on smt2 (MP-HT colocation — zero same-kind overlap), stealing on cpu4/hetero (work conservation), earliest-finish on biglittle (speed-aware pricing); offered load is sized per mix, so compare policies within a mix, not mixes against each other")
	return t, nil
}

// runHet2 sweeps the GPU's max batch size against offered load at fixed
// arrivals (sized from the fully-amortizing fleet, so every batch limit
// faces identical load). The batching economics cross over: at low load
// the hold window is pure added latency and small batches win; at high
// load only amortization keeps the GPU ahead of its own launch overhead.
func runHet2(x *Context) (*Table, error) {
	t := &Table{
		ID: "het2", Title: "GPU batching economics (cpu2gpu1, affinity)",
		Headers: []string{"util", "max batch", "hold (µs)", "arrival (ms)", "p50 (ms)", "p95 (ms)", "wait (ms)", "batch items", "util"},
	}
	g, err := hetGraph(x)
	if err != nil {
		return nil, err
	}
	points := []struct {
		maxBatch int
		holdUs   float64
	}{{1, 0}, {4, 40}, {16, 40}, {64, 40}, {64, 0}}
	for _, util := range []float64{0.35, 0.85} {
		ref, err := hetGPUFleet(64, 40)
		if err != nil {
			return nil, err
		}
		arrival := hetsched.ArrivalForUtilization(g, ref, util)
		for _, pt := range points {
			devs, err := hetGPUFleet(pt.maxBatch, pt.holdUs)
			if err != nil {
				return nil, err
			}
			res, err := hetsched.Simulate(hetsched.Config{
				Graph:         g,
				Devices:       devs,
				Policy:        hetsched.Affinity,
				MeanArrivalMs: arrival,
				Requests:      hetRequests,
				Seed:          x.Cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			t.AddRow(pct(util), fmt.Sprint(pt.maxBatch), f1(pt.holdUs), f3(arrival), f3(res.P50), f3(res.P95),
				f3(res.MeanPhaseWaitMs), f2(res.MeanBatchItems), pct(res.UtilTotal))
		}
	}
	t.AddNote("arrivals are sized from the max-batch-64 fleet, so every row at one util faces identical load; batch-of-1 drowns in per-launch cost even at nominal 35%% load, amortization rescues it with diminishing returns past 16, the hold window is a pure latency tax at low load (hold 0 beats hold 40), and at high load queueing fills batches naturally")
	return t, nil
}

// hetGPUFleet is the cpu2gpu1 mix with the GPU's batch limit and hold
// window overridden.
func hetGPUFleet(maxBatch int, holdUs float64) ([]hetsched.DeviceSpec, error) {
	devs, err := hetsched.NewMix("cpu2gpu1")
	if err != nil {
		return nil, err
	}
	for i := range devs {
		if devs[i].Class == hetsched.GPUClass {
			devs[i].MaxBatch = maxBatch
			devs[i].HoldUs = holdUs
		}
	}
	return devs, nil
}
