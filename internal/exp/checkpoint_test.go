package exp

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"dlrmsim/internal/cluster"
	"dlrmsim/internal/core"
	"dlrmsim/internal/dlrm"
	"dlrmsim/internal/trace"
)

// ckptIDs is the sweep slice the resume tests run: small enough to finish
// in seconds, large enough to span several distinct design-point cells.
var ckptIDs = []string{"fig1", "fig10b", "fig12", "clu6", "clu7", "clu9"}

// renderAll concatenates text+CSV renderings of a table slice.
func renderAll(t *testing.T, tables []*Table) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, tbl := range tables {
		if err := tbl.Render(&buf); err != nil {
			t.Fatal(err)
		}
		if err := tbl.RenderCSV(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func openTestCheckpoint(t *testing.T, dir string) *Checkpoint {
	t.Helper()
	cp, err := OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cp.Close() })
	return cp
}

// TestCheckpointRoundTrip: Put then Get returns the exact report, and the
// entry file plus a manifest line land on disk.
func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cp := openTestCheckpoint(t, dir)
	x := tinyContext()
	opts := x.complete(core.Options{Model: x.Cfg.model(dlrm.RM2Small()), Hotness: trace.LowHot, Cores: 2})
	rep, err := x.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cp.Get(opts); ok {
		t.Fatal("Get hit on an empty store")
	}
	cp.Put(opts, rep)
	got, ok := cp.Get(opts)
	if !ok {
		t.Fatal("Get missed a just-committed cell")
	}
	if !reflect.DeepEqual(got, rep) {
		t.Errorf("report did not round-trip:\nput %+v\ngot %+v", rep, got)
	}
	hash, ok := CellHash(opts)
	if !ok {
		t.Fatal("CellHash not ok for a plain cell")
	}
	if _, err := os.Stat(filepath.Join(dir, hash+".cell")); err != nil {
		t.Errorf("entry file missing: %v", err)
	}
	mf, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil || !bytes.Contains(mf, []byte(hash)) {
		t.Errorf("manifest missing the entry hash (err %v)", err)
	}
	s := cp.Stats()
	if s.Writes != 1 || s.Hits != 1 || s.Misses != 1 || s.Corrupt != 0 {
		t.Errorf("stats = %+v, want 1 write, 1 hit, 1 miss", s)
	}
}

// TestCheckpointResumeByteIdentical is the tentpole's acceptance test: a
// sweep killed mid-run and resumed from its checkpoint renders tables
// byte-identical to an uninterrupted run, at workers 1 and 8.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	clean, err := RunAll(context.Background(), tinyContext(), ckptIDs, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := renderAll(t, clean)

	for _, workers := range []int{1, 8} {
		dir := t.TempDir()

		// Phase 1: run with a checkpoint armed and kill the sweep once at
		// least two cells have committed. Fast machines may finish first —
		// that only makes the resume trivially complete, never wrong.
		cp := openTestCheckpoint(t, dir)
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			defer close(done)
			for cp.Stats().Writes < 2 {
				select {
				case <-ctx.Done():
					return
				default:
					time.Sleep(100 * time.Microsecond)
				}
			}
			cancel()
		}()
		_, err := RunAll(ctx, tinyContext().WithCheckpoint(cp), ckptIDs, workers)
		cancel()
		<-done
		partial := cp.Stats().Writes
		if err == nil && partial < 2 {
			t.Fatalf("workers=%d: uninterrupted run wrote %d cells", workers, partial)
		}
		cp.Close()

		// Phase 2: resume with a fresh context and the same directory.
		cp2 := openTestCheckpoint(t, dir)
		tables, err := RunAll(context.Background(), tinyContext().WithCheckpoint(cp2), ckptIDs, workers)
		if err != nil {
			t.Fatalf("workers=%d: resume failed: %v", workers, err)
		}
		if got := renderAll(t, tables); !bytes.Equal(got, want) {
			t.Errorf("workers=%d: resumed tables differ from uninterrupted run\n--- want ---\n%s--- got ---\n%s",
				workers, want, got)
		}
		if s := cp2.Stats(); partial > 0 && s.Hits == 0 {
			t.Errorf("workers=%d: resume re-simulated everything (stats %+v) despite %d stored cells",
				workers, s, partial)
		}
	}
}

// TestCheckpointResumeParallelBackendIndependent: checkpoint cell keys
// hash the experiment's design point, not the execution strategy — so a
// sweep killed mid-run under the sequential backend must resume under
// the parallel backend (the -resume + -shard-workers path) serving the
// stored cells as hits and rendering bytes identical to an
// uninterrupted sequential run. This pins both halves of the
// contract: keys are backend-independent, and so are the recomputed
// cells the resumed run fills in.
func TestCheckpointResumeParallelBackendIndependent(t *testing.T) {
	clean, err := RunAll(context.Background(), tinyContext(), ckptIDs, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := renderAll(t, clean)

	dir := t.TempDir()

	// Phase 1: sequential run, killed once at least two cells committed.
	cp := openTestCheckpoint(t, dir)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		for cp.Stats().Writes < 2 {
			select {
			case <-ctx.Done():
				return
			default:
				time.Sleep(100 * time.Microsecond)
			}
		}
		cancel()
	}()
	_, err = RunAll(ctx, tinyContext().WithCheckpoint(cp), ckptIDs, 1)
	cancel()
	<-done
	partial := cp.Stats().Writes
	if err == nil && partial < 2 {
		t.Fatalf("uninterrupted run wrote %d cells", partial)
	}
	cp.Close()

	// Phase 2: resume the same directory under the parallel backend.
	restore := cluster.SetExecBackend(cluster.Parallel(4))
	defer restore()
	cp2 := openTestCheckpoint(t, dir)
	tables, err := RunAll(context.Background(), tinyContext().WithCheckpoint(cp2), ckptIDs, 8)
	if err != nil {
		t.Fatalf("parallel resume failed: %v", err)
	}
	if got := renderAll(t, tables); !bytes.Equal(got, want) {
		t.Errorf("parallel-resumed tables differ from sequential run\n--- want ---\n%s--- got ---\n%s", want, got)
	}
	if s := cp2.Stats(); partial > 0 && s.Hits == 0 {
		t.Errorf("parallel resume re-simulated everything (stats %+v) despite %d sequential cells", s, partial)
	}
}

// TestCheckpointCorruptEntryRecomputed: a truncated entry is detected,
// treated as a miss, recomputed, and overwritten — never an error.
func TestCheckpointCorruptEntryRecomputed(t *testing.T) {
	dir := t.TempDir()
	x := tinyContext().WithCheckpoint(openTestCheckpoint(t, dir))
	opts := x.complete(core.Options{Model: x.Cfg.model(dlrm.RM2Small()), Hotness: trace.LowHot, Cores: 2})
	want, err := x.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	hash, _ := CellHash(opts)
	path := filepath.Join(dir, hash+".cell")
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf[:len(buf)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	cp := openTestCheckpoint(t, dir)
	y := tinyContext().WithCheckpoint(cp)
	got, err := y.Run(opts)
	if err != nil {
		t.Fatalf("corrupt entry surfaced as an error: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("recomputed report differs:\nwant %+v\ngot  %+v", want, got)
	}
	s := cp.Stats()
	if s.Corrupt != 1 || s.Writes != 1 {
		t.Errorf("stats = %+v, want 1 corrupt miss and 1 rewrite", s)
	}
	// The rewritten entry must verify again.
	if _, ok := cp.Get(opts); !ok {
		t.Error("rewritten entry still fails verification")
	}
}

// TestCheckpointUncacheableTrace: cells driven by an in-memory trace have
// no canonical encoding and must never be stored or served.
func TestCheckpointUncacheableTrace(t *testing.T) {
	x := tinyContext()
	opts := x.complete(core.Options{Model: x.Cfg.model(dlrm.RM2Small()), Trace: panicProvider{}})
	if _, ok := CellHash(opts); ok {
		t.Error("CellHash content-addressed a traced cell")
	}
	cp := openTestCheckpoint(t, t.TempDir())
	cp.Put(opts, core.Report{})
	if s := cp.Stats(); s.Writes != 0 {
		t.Errorf("traced cell was committed: %+v", s)
	}
	if _, ok := cp.Get(opts); ok {
		t.Error("Get served a traced cell")
	}
}

// TestCheckpointWriteOnly: recompute mode (-resume=false) always misses on
// read but keeps committing.
func TestCheckpointWriteOnly(t *testing.T) {
	dir := t.TempDir()
	cp := openTestCheckpoint(t, dir)
	x := tinyContext()
	opts := x.complete(core.Options{Model: x.Cfg.model(dlrm.RM2Small()), Hotness: trace.LowHot, Cores: 2})
	rep, err := x.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	cp.Put(opts, rep)
	cp.SetWriteOnly(true)
	if _, ok := cp.Get(opts); ok {
		t.Error("write-only store served a hit")
	}
	cp.SetWriteOnly(false)
	if _, ok := cp.Get(opts); !ok {
		t.Error("entry vanished after write-only round")
	}
}
