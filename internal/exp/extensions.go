package exp

import (
	"fmt"

	"dlrmsim/internal/core"
	"dlrmsim/internal/dlrm"
	"dlrmsim/internal/embedding"
	"dlrmsim/internal/memsim"
	"dlrmsim/internal/platform"
	"dlrmsim/internal/trace"
)

func init() {
	register(Experiment{ID: "ext1", Title: "Where to prefetch: L1 vs L2 vs LLC hints (§4.2)", Run: runExt1})
	register(Experiment{ID: "ext2", Title: "Batch-size sensitivity of the designs (extension)", Run: runExt2})
}

// runExt1 quantifies the paper's "Where to prefetch?" design answer: the
// same Algorithm 3 knobs with _MM_HINT_T0/T1/T2 targets. The paper picks
// T0 (L1D) because it puts data closest to the pipeline; the hint sweep
// shows how much of the win each level keeps.
func runExt1(x *Context) (*Table, error) {
	t := &Table{
		ID: "ext1", Title: "Prefetch target level (rm2_1, Low Hot, dist=4, blocks=8)",
		Headers: []string{"hint", "batch latency (ms)", "vs baseline", "L1D hit", "avg load lat (cyc)"},
	}
	model := x.Cfg.model(dlrm.RM2Small())
	cores := x.Cfg.multiCores(platform.CascadeLake())
	hints := []struct {
		name string
		kind memsim.AccessKind
	}{
		{"_MM_HINT_T0 (L1D)", memsim.KindPrefetchL1},
		{"_MM_HINT_T1 (L2)", memsim.KindPrefetchL2},
		{"_MM_HINT_T2 (LLC)", memsim.KindPrefetchL3},
	}
	cells := []core.Options{{
		Model: model, Hotness: trace.LowHot, Scheme: core.Baseline,
		Cores: cores, EmbeddingOnly: true,
	}}
	for _, h := range hints {
		cells = append(cells, core.Options{
			Model: model, Hotness: trace.LowHot, Scheme: core.SWPF, Cores: cores,
			Prefetch:      embedding.PrefetchConfig{Dist: 4, Blocks: 8, Hint: h.kind},
			EmbeddingOnly: true,
		})
	}
	reps, err := x.RunMany(cells)
	if err != nil {
		return nil, err
	}
	base := reps[0]
	t.AddRow("baseline (none)", f2(base.BatchLatencyMs), "1.00x", pct(base.L1HitRate), f1(base.AvgLoadLatency))
	for i, h := range hints {
		rep := reps[i+1]
		t.AddRow(h.name, f2(rep.BatchLatencyMs), spd(base.BatchLatencyCycles/rep.BatchLatencyCycles),
			pct(rep.L1HitRate), f1(rep.AvgLoadLatency))
	}
	t.AddNote("paper §4.2 chooses T0: it brings data closest to the processor; deeper hints retain less of the benefit")
	return t, nil
}

// runExt2 sweeps the batch size — the knob the paper pins at 64 to meet
// SLA — showing how the Integrated win and the per-batch latency trade
// off as batches grow.
func runExt2(x *Context) (*Table, error) {
	t := &Table{
		ID: "ext2", Title: "Batch-size sensitivity (rm2_1, Medium Hot, multi-core)",
		Headers: []string{"batch size", "baseline (ms)", "Integrated (ms)", "speedup"},
	}
	model := x.Cfg.model(dlrm.RM2Small())
	cores := x.Cfg.multiCores(platform.CascadeLake())
	var sizes []int
	var cells []core.Options
	for _, bs := range []int{8, 16, 32, 64, 128} {
		if bs > 4*x.Cfg.BatchSize { // keep quick runs quick
			break
		}
		sizes = append(sizes, bs)
		cells = append(cells,
			core.Options{
				Model: model, Hotness: trace.MediumHot, Scheme: core.Baseline,
				Cores: cores, BatchSize: bs,
			},
			core.Options{
				Model: model, Hotness: trace.MediumHot, Scheme: core.Integrated,
				Cores: cores, BatchSize: bs,
			})
	}
	reps, err := x.RunMany(cells)
	if err != nil {
		return nil, err
	}
	for i, bs := range sizes {
		base, integ := reps[2*i], reps[2*i+1]
		t.AddRow(fmt.Sprintf("%d", bs), f2(base.BatchLatencyMs), f2(integ.BatchLatencyMs),
			spd(integ.Speedup(base)))
	}
	t.AddNote("latency grows ~linearly with batch size in the bandwidth-bound regime; the Integrated win persists across sizes")
	return t, nil
}
