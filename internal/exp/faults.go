package exp

// The robustness experiment family (clu4–clu5) exercises the cluster
// tier's fault model and router mitigation policies: clu4 crosses fault
// intensity with the mitigation toolkit, clu5 sweeps the hedging delay at
// a fixed fault rate to expose the classic hedged-request tradeoff.
//
// Every fault timescale is expressed in arrival periods and every
// mitigation deadline is calibrated off the clean run's p95, so the
// experiments stay meaningful whatever the engine-derived service model
// is at the active scale — a policy tuned to the faulted distribution
// would fire far too late to help.

import (
	"dlrmsim/internal/cluster"
	"dlrmsim/internal/core"
	"dlrmsim/internal/dlrm"
	"dlrmsim/internal/platform"
	"dlrmsim/internal/trace"
)

func init() {
	register(Experiment{ID: "clu4", Title: "Cluster faults: intensity × mitigation policy", Run: runClu4})
	register(Experiment{ID: "clu5", Title: "Cluster hedging delay sweep under faults", Run: runClu5})
}

// cluFaults scales a named fault intensity to the offered load: the
// timescales are multiples of the mean arrival period, so "moderate"
// means the same thing whether a node serves a query in microseconds or
// milliseconds. Moderate trouble saturates a node only transiently;
// severe episodes are longer, slower, and lossier.
func cluFaults(level string, arrivalMs float64) cluster.FaultModel {
	switch level {
	case "moderate":
		return cluster.FaultModel{
			SlowdownEveryMs: 250 * arrivalMs,
			SlowdownMeanMs:  60 * arrivalMs,
			SlowdownFactor:  4,
			DownEveryMs:     400 * arrivalMs,
			DownMeanMs:      25 * arrivalMs,
			DropProb:        0.01,
			DropDetectMs:    7 * arrivalMs,
		}
	case "severe":
		// Longer, slower, lossier than moderate — but still rare enough
		// that a node drains its episode backlog before the next one;
		// past that point no router policy can save a fleet whose offered
		// load exceeds its degraded capacity.
		return cluster.FaultModel{
			SlowdownEveryMs: 400 * arrivalMs,
			SlowdownMeanMs:  50 * arrivalMs,
			SlowdownFactor:  8,
			DownEveryMs:     600 * arrivalMs,
			DownMeanMs:      30 * arrivalMs,
			DropProb:        0.05,
			DropDetectMs:    7 * arrivalMs,
		}
	}
	return cluster.FaultModel{}
}

// cluPolicies is the mitigation toolkit compared in clu4, with deadlines
// calibrated off the clean fleet's p95. The degraded policy is the
// fail-fast archetype — no standby retry, so blown deadlines surface as
// abandoned lookups instead of being quietly rescued.
func cluPolicies(cleanP95 float64) []struct {
	Name string
	Mit  cluster.Mitigation
} {
	return []struct {
		Name string
		Mit  cluster.Mitigation
	}{
		{"naive", cluster.Mitigation{}},
		{"hedge", cluster.Mitigation{HedgeDelayMs: 2 * cleanP95}},
		{"retry", cluster.Mitigation{TimeoutMs: 2 * cleanP95, MaxRetries: 3}},
		{"degraded", cluster.Mitigation{TimeoutMs: 2 * cleanP95, DegradedJoin: true}},
	}
}

// cluFaultConfig assembles the shared fault-experiment config: 8 nodes,
// row-range sharding with 1% hot-row replication (the standby chain
// serves any shard), engine-derived per-node timing, and enough load
// headroom (30% utilization) that a slowdown episode saturates its node
// transiently instead of tipping the whole fleet over.
func cluFaultConfig(x *Context) (cluster.Config, error) {
	model := x.Cfg.model(dlrm.RM2Small())
	cores := x.Cfg.multiCores(platform.CascadeLake())
	tm, err := clusterTiming(x, model, trace.MediumHot, core.Baseline, cores)
	if err != nil {
		return cluster.Config{}, err
	}
	plan, err := cluster.NewPlan(model, 8, cluster.RowRange, 0.01, x.Cfg.Seed)
	if err != nil {
		return cluster.Config{}, err
	}
	return cluConfig(x, plan, trace.MediumHot, tm, cores, 0.30), nil
}

// runClu4 crosses fault intensity with the mitigation toolkit. The clean
// row is the healthy-fleet reference every policy's deadline calibrates
// against; within each intensity the naive router shows what faults cost
// and the mitigated rows show how much of the tail each policy buys back
// — and what it pays in hedged copies, retries, or abandoned lookups.
func runClu4(x *Context) (*Table, error) {
	t := &Table{
		ID: "clu4", Title: "Fault intensity × mitigation (rm2_1, Medium Hot, 8 nodes, row-range)",
		Headers: []string{"faults", "policy", "p50 (ms)", "p99 (ms)", "hedge %", "retries/q", "avail %", "compl"},
	}
	base, err := cluFaultConfig(x)
	if err != nil {
		return nil, err
	}
	clean, err := cluster.Simulate(base)
	if err != nil {
		return nil, err
	}
	t.AddRow("off", "—", f3(clean.P50), f3(clean.P99), pct(clean.HedgeRate),
		f2(clean.RetriesPerQuery), pct(clean.Availability), f3(clean.Completeness))
	for _, level := range []string{"moderate", "severe"} {
		for _, p := range cluPolicies(clean.P95) {
			cfg := base
			cfg.Faults = cluFaults(level, base.MeanArrivalMs)
			cfg.Mitigation = p.Mit
			res, err := cluster.Simulate(cfg)
			if err != nil {
				return nil, err
			}
			t.AddRow(level, p.Name, f3(res.P50), f3(res.P99), pct(res.HedgeRate),
				f2(res.RetriesPerQuery), pct(res.Availability), f3(res.Completeness))
		}
	}
	t.AddNote("deadlines are calibrated off the clean p95 (all at 2x; degraded is fail-fast, no retry); the naive router waits out every fault, hedging and standby retries route around sick nodes at full completeness, degraded joins bound the tail at the cost of abandoned lookups")
	return t, nil
}

// runClu5 sweeps the hedging delay at the moderate fault rate: too eager
// and the fleet serves a large fraction of traffic twice, too lazy and
// the backup arrives after the tail it was meant to rescue — the sweet
// spot sits a small multiple of the healthy p95 above dispatch.
func runClu5(x *Context) (*Table, error) {
	t := &Table{
		ID: "clu5", Title: "Hedging delay sweep at moderate fault rate (rm2_1, Medium Hot, 8 nodes)",
		Headers: []string{"hedge delay (ms)", "hedge %", "p95 (ms)", "p99 (ms)", "mean (ms)", "util"},
	}
	base, err := cluFaultConfig(x)
	if err != nil {
		return nil, err
	}
	clean, err := cluster.Simulate(base)
	if err != nil {
		return nil, err
	}
	faulted := base
	faulted.Faults = cluFaults("moderate", base.MeanArrivalMs)
	naive, err := cluster.Simulate(faulted)
	if err != nil {
		return nil, err
	}
	t.AddRow("∞ (naive)", pct(naive.HedgeRate), f3(naive.P95), f3(naive.P99), f3(naive.Mean), pct(naive.Utilization))
	for _, mult := range []float64{16, 8, 4, 2, 1, 0.5} {
		cfg := faulted
		cfg.Mitigation = cluster.Mitigation{HedgeDelayMs: mult * clean.P95}
		res, err := cluster.Simulate(cfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(f3(cfg.Mitigation.HedgeDelayMs), pct(res.HedgeRate),
			f3(res.P95), f3(res.P99), f3(res.Mean), pct(res.Utilization))
	}
	t.AddNote("delays are multiples of the clean p95 (%.3f ms); shrinking the delay trades hedge volume for tail coverage, and past the sweet spot the extra copies stop buying latency", clean.P95)
	return t, nil
}
