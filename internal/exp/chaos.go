package exp

// The correlated-failure experiment family (clu8–clu9) runs the cluster
// tier's deterministic chaos schedule against the open-loop traffic
// generator: clu8 crosses a single-domain outage with the router's
// mitigation posture, clu9 pushes the fleet into the retry-storm
// metastability regime — offered load well under capacity, yet the naive
// static retry policy never recovers after the outage clears, while a
// retry budget restores goodput and circuit breakers restore it faster.
//
// As in clu6–clu7, timescales are expressed in arrival periods and
// deadlines calibrate off the clean closed-loop p95, so the experiments
// keep their shape whatever the engine-derived service model is.

import (
	"dlrmsim/internal/cluster"
	"dlrmsim/internal/traffic"
)

func init() {
	register(Experiment{ID: "clu8", Title: "Domain outage × adaptive mitigation: recovery observability", Run: runClu8})
	register(Experiment{ID: "clu9", Title: "Retry-storm metastability: static vs budgeted vs breaker mitigation", Run: runClu9})
}

// chaosMitigations returns the three mitigation postures the chaos
// family crosses: static timeout retries, the same retries under a
// global 10% retry budget, and the budget plus per-node circuit
// breakers. The adaptive epoch is passed explicitly: the default (4
// timeouts) spans hundreds of arrival periods at the fixture's
// microsecond service times, far too coarse to track an outage.
func chaosMitigations(timeout, epoch float64, retries int) []struct {
	name string
	mit  cluster.Mitigation
} {
	return []struct {
		name string
		mit  cluster.Mitigation
	}{
		{"static", cluster.Mitigation{TimeoutMs: timeout, MaxRetries: retries}},
		{"budget", cluster.Mitigation{TimeoutMs: timeout, MaxRetries: retries,
			RetryBudget: 0.1, AdaptEpochMs: epoch}},
		{"budget+breaker", cluster.Mitigation{TimeoutMs: timeout, MaxRetries: retries,
			RetryBudget: 0.1, AdaptEpochMs: epoch,
			BreakerTripRate: 0.5, BreakerMinSamples: 4}},
	}
}

// fmtRecover renders TimeToRecoverMs, whose −1 sentinel means the run
// never returned to ≥90% goodput after the schedule cleared.
func fmtRecover(ms float64) string {
	if ms < 0 {
		return "never"
	}
	return f1(ms)
}

// runClu8 drops one failure domain — a quarter of the fleet — for a
// fixed window at moderate load and reads the new recovery observability
// off each mitigation posture: scheduled availability, time to recover,
// retry amplification, and breaker-open time. All three postures recover
// at this load, and the posture contrast is the point: the budget denies
// copies blindly in deadline order — it drains the backlog faster than
// static but also suppresses useful retries, costing some goodput —
// while breakers suppress exactly the copies aimed at the backlogged
// domain, recovering fastest at the highest goodput.
func runClu8(x *Context) (*Table, error) {
	t := &Table{
		ID: "clu8", Title: "Domain outage × mitigation (rm2_1, Medium Hot, 8 nodes in 4 domains)",
		Headers: []string{"mitigation", "avail %", "offered qps", "goodput qps", "post-fault ratio", "recover (ms)", "retry amp", "breaker node-ms"},
	}
	base, err := openCluBase(x)
	if err != nil {
		return nil, err
	}
	arrival := base.arrivalAt(x, 0.45)
	duration := 1600 * arrival
	for _, m := range chaosMitigations(2*base.cleanP95, 8*arrival, 1) {
		cfg := base.cfg
		cfg.Mitigation = m.mit
		cfg.Chaos = cluster.ChaosSchedule{
			Domains: 4,
			Events: []cluster.ChaosEvent{
				{Kind: cluster.DomainOutage, Domain: 2, AtMs: 300 * arrival, ForMs: 300 * arrival},
			},
		}
		cfg.Open = &cluster.OpenLoop{
			Arrivals:   traffic.Config{Model: traffic.Poisson, RatePerMs: 1 / arrival},
			DurationMs: duration,
			SLAMs:      4 * base.cleanP95,
		}
		res, err := cluster.Simulate(cfg)
		if err != nil {
			return nil, err
		}
		ratio := 0.0
		if res.PostFaultOfferedQPS > 0 {
			ratio = res.PostFaultGoodput / res.PostFaultOfferedQPS
		}
		t.AddRow(m.name, pct(res.DomainAvailability), f1(res.OfferedQPS), f1(res.Goodput),
			f3(ratio), fmtRecover(res.TimeToRecoverMs), f2(res.RetryAmplification), f3(res.BreakerOpenMinutes*60000))
	}
	t.AddNote("one of four failure domains (2 of 8 nodes) is down for 300 arrival periods at 0.45x capacity; timeout = 2x and SLA = 4x the clean closed-loop p95 (%.3f ms); post-fault ratio is goodput over offered after the schedule clears, and recover is the time from clear until goodput holds at >=90%% of arrivals", base.cleanP95)
	return t, nil
}

// runClu9 is the metastability demonstration: half the fleet goes down
// for 100 arrival periods at 0.72× capacity with two timeout retries per
// sub-request. Unbudgeted, every blown deadline triple-sends its
// sub-request — offered work exceeds capacity even after the outage
// clears, queues never drain, and goodput stays collapsed (recover =
// never). The retry budget caps amplification below capacity so the
// fleet drains and recovers; breakers additionally stop feeding doomed
// copies to the backlogged domain and recover faster still. The golden
// file pins this scenario's quantities at the fixed synthetic timing
// (goldenChaosConfig in golden_test.go).
func runClu9(x *Context) (*Table, error) {
	t := &Table{
		ID: "clu9", Title: "Retry-storm metastability (rm2_1, Medium Hot, 8 nodes, half-fleet outage at 0.72x load)",
		Headers: []string{"mitigation", "offered qps", "goodput qps", "post-fault ratio", "recover (ms)", "retry amp", "breaker node-ms", "p99 (ms)"},
	}
	base, err := openCluBase(x)
	if err != nil {
		return nil, err
	}
	arrival := base.arrivalAt(x, 0.72)
	duration := 2500 * arrival
	for _, m := range chaosMitigations(2*base.cleanP95, 8*arrival, 2) {
		cfg := base.cfg
		cfg.Mitigation = m.mit
		cfg.Chaos = cluster.ChaosSchedule{
			Domains: 2,
			Events: []cluster.ChaosEvent{
				{Kind: cluster.DomainOutage, Domain: 1, AtMs: 200 * arrival, ForMs: 100 * arrival},
			},
		}
		cfg.Open = &cluster.OpenLoop{
			Arrivals:   traffic.Config{Model: traffic.Poisson, RatePerMs: 1 / arrival},
			DurationMs: duration,
			SLAMs:      4 * base.cleanP95,
		}
		res, err := cluster.Simulate(cfg)
		if err != nil {
			return nil, err
		}
		ratio := 0.0
		if res.PostFaultOfferedQPS > 0 {
			ratio = res.PostFaultGoodput / res.PostFaultOfferedQPS
		}
		t.AddRow(m.name, f1(res.OfferedQPS), f1(res.Goodput), f3(ratio),
			fmtRecover(res.TimeToRecoverMs), f2(res.RetryAmplification), f3(res.BreakerOpenMinutes*60000), f3(res.P99))
	}
	t.AddNote("half the fleet (1 of 2 domains) is down for 100 arrival periods at 0.72x capacity with 2 timeout retries; the static router's retries triple-send every slow sub-request, holding offered work above capacity indefinitely — the classic metastable failure. The 10%% retry budget caps amplification below capacity (recovery), and breakers stop retries into the backlogged domain (faster recovery)")
	return t, nil
}
