package exp

import (
	"fmt"

	"dlrmsim/internal/core"
	"dlrmsim/internal/dlrm"
	"dlrmsim/internal/embedding"
	"dlrmsim/internal/platform"
	"dlrmsim/internal/trace"
)

func init() {
	register(Experiment{ID: "ext4", Title: "Socket pinning vs page-interleaved NUMA (extension)", Run: runExt4})
}

// runExt4 quantifies the paper's implicit deployment choice — pinning
// inference to one socket — against letting the same cores fault half
// their embedding traffic to the remote socket (page-interleaved tables),
// and against doubling the cores across both sockets.
func runExt4(x *Context) (*Table, error) {
	t := &Table{
		ID: "ext4", Title: "NUMA placement (rm2_1, Medium Hot, embedding-only)",
		Headers: []string{"placement", "prefetch", "batch latency (ms)", "avg load lat (cyc)", "remote fills", "per-socket BW (GB/s)"},
	}
	model := x.Cfg.model(dlrm.RM2Small())
	cores := x.Cfg.multiCores(platform.CascadeLake())
	if cores > 8 {
		cores = 8
	}
	type placement struct {
		name        string
		sockets     int
		activeCores int
	}
	placements := []placement{
		{"pinned: 1 socket (paper)", 1, cores},
		{"interleaved: 1 socket's cores, 2 sockets' memory", 2, cores},
		{"spread: both sockets' cores", 2, 2 * cores},
	}
	for _, pl := range placements {
		for _, pf := range []embedding.PrefetchConfig{{}, {Dist: 4, Blocks: 8}} {
			rep, err := core.RunNUMA(core.NUMAOptions{
				Model:               model,
				Hotness:             trace.MediumHot,
				BatchSize:           x.Cfg.BatchSize,
				Seed:                x.Cfg.Seed,
				Sockets:             pl.sockets,
				CoresPerSocket:      cores,
				ActiveCores:         pl.activeCores,
				Prefetch:            pf,
				BandwidthIterations: x.Cfg.BandwidthIterations,
			})
			if err != nil {
				return nil, err
			}
			pfName := "off"
			if pf.Enabled() {
				pfName = "SW-PF"
			}
			bw := ""
			for i, b := range rep.SocketBandwidthGBs {
				if i > 0 {
					bw += " / "
				}
				bw += fmt.Sprintf("%.1f", b)
			}
			t.AddRow(pl.name, pfName, f2(rep.BatchLatencyMs), f1(rep.AvgLoadLatency),
				pct(rep.RemoteFillFraction), bw)
		}
	}
	t.AddNote("pinning avoids the interconnect penalty on every remote fill; SW-PF hides part of the remote latency too, making interleaved placement less painful")
	return t, nil
}
