package exp

import (
	"fmt"

	"dlrmsim/internal/core"
	"dlrmsim/internal/dlrm"
	"dlrmsim/internal/platform"
	"dlrmsim/internal/serve"
	"dlrmsim/internal/trace"
)

func init() {
	register(Experiment{ID: "fig17", Title: "p95 tail latency vs arrival time (Poisson load)", Run: runFig17})
}

// runFig17 reproduces Fig. 17: p95 latency under a Poisson load generator
// as the mean arrival time varies, for rm2_1 and rm1 on Low Hot, across
// the design points. The service time of each design comes from the
// timing simulator; SLA targets are 400 ms (RMC2) and 100 ms (RMC1).
func runFig17(x *Context) (*Table, error) {
	t := &Table{
		ID: "fig17", Title: "p95 tail latency (ms) vs mean arrival time",
		Headers: []string{"model", "design", "service (ms)", "arrival sweep p95 (ms)", "fastest SLA-ok arrival (ms)"},
	}
	cpu := platform.CascadeLake()
	cores := x.Cfg.multiCores(cpu)
	for _, base := range []dlrm.Config{dlrm.RM2Small(), dlrm.RM1()} {
		model := x.Cfg.model(base)
		// Arrival sweep proportional to the baseline service time: from
		// deep saturation to light load.
		bl, err := x.Run(core.Options{
			Model: model, Hotness: trace.LowHot, Scheme: core.Baseline, Cores: cores,
		})
		if err != nil {
			return nil, err
		}
		arrivals := make([]float64, 0, 6)
		for _, f := range []float64{0.4, 0.7, 1.0, 1.5, 2.5, 4.0} {
			arrivals = append(arrivals, f*bl.BatchLatencyMs/float64(cores))
		}
		// Scale the SLA with the model scale so the compliance boundary
		// stays inside the sweep at reduced scale.
		sla := base.SLATargetMs
		if x.Cfg.Scale > 1 {
			sla = 4 * bl.BatchLatencyMs
		}
		schemes := []core.Scheme{core.Baseline, core.SWPF, core.MPHT, core.Integrated}
		cells := make([]core.Options, len(schemes))
		for i, s := range schemes {
			cells[i] = core.Options{Model: model, Hotness: trace.LowHot, Scheme: s, Cores: cores}
		}
		reps, err := x.RunMany(cells)
		if err != nil {
			return nil, err
		}
		for i, s := range schemes {
			rep := reps[i]
			points, err := serve.SweepArrival(serve.Config{
				Cores:      cores,
				ServiceMs:  rep.BatchLatencyMs,
				JitterFrac: 0.08,
				Requests:   3000,
				Seed:       x.Cfg.Seed,
			}, arrivals)
			if err != nil {
				return nil, err
			}
			sweep := ""
			for i, p := range points {
				if i > 0 {
					sweep += " "
				}
				sweep += f1(p.Result.P95)
			}
			fastest := "saturated"
			if a, ok := serve.FastestCompliantArrival(points, sla); ok {
				fastest = f2(a)
			}
			t.AddRow(base.Name, s.String(), f2(rep.BatchLatencyMs), sweep, fastest)
		}
		t.AddRow(base.Name, "(arrivals ms)", "", sweepHeader(arrivals), fmt.Sprintf("SLA=%.1fms", sla))
	}
	t.AddNote("paper: optimized designs cut p95 up to 1.8x (rm2_1) / 2.5x (rm1) and tolerate 1.4x / 2.3x faster arrivals within SLA")
	return t, nil
}

func sweepHeader(arrivals []float64) string {
	s := ""
	for i, a := range arrivals {
		if i > 0 {
			s += " "
		}
		s += f1(a)
	}
	return s
}
