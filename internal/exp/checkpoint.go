package exp

// The crash-safety layer for long sweeps: a content-addressed on-disk
// store of completed engine cells. A full-registry run at -workers N is
// this repo's "training job" — hours of simulation at paper scale — and
// before this store existed one Ctrl-C, OOM kill, or poisoned design
// point threw all of it away. With a Checkpoint armed on the Context,
// every completed cell is persisted as it finishes, and a re-run of the
// same sweep re-simulates only the cells that are missing.
//
// Correctness rests on three properties:
//
//   - Keys are content-addressed: the key is a SHA-256 over a canonical
//     JSON encoding of the cell's fully-completed core.Options (plus a
//     format version), so a cell is reused only for byte-identical
//     configuration. Cells driven by an in-memory trace (Options.Trace
//     != nil) have no canonical encoding and are never checkpointed.
//   - Writes are atomic and durable: entries land via temp file + fsync +
//     rename, and an append-only MANIFEST line is fsync'd per entry, so a
//     crash mid-write can leave a garbage temp file but never a torn
//     entry under a final name.
//   - Reads are paranoid: every entry embeds its canonical key and a
//     SHA-256 of its report payload. A truncated, bit-rotted, or
//     hash-colliding entry fails verification and is treated as a miss —
//     the cell is simply re-simulated — never as an error.
//
// Because core.Report round-trips exactly through encoding/json (floats
// use shortest-round-trip formatting), a resumed sweep renders tables
// byte-identical to an uninterrupted one; checkpoint_test.go enforces
// this at workers 1 and 8.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"dlrmsim/internal/core"
)

// checkpointVersion tags the on-disk entry format and the canonical key
// derivation. Bump it when either changes; stale entries then read as
// misses instead of being misinterpreted.
const checkpointVersion = 1

// manifestName is the append-only audit log of committed entries.
const manifestName = "MANIFEST"

// Checkpoint is a directory-backed store of completed engine cells. It is
// safe for concurrent use; one sweep's worker goroutines share a single
// Checkpoint. Only single-process use is supported (concurrent sweeps over
// one directory would duplicate work, though atomic renames keep the
// entries themselves consistent).
type Checkpoint struct {
	dir string

	// writeOnly makes Get unconditionally miss while Put still commits —
	// recompute mode (dlrmbench -resume=false): the sweep re-simulates
	// every cell and refreshes the store in place.
	writeOnly bool

	mu       sync.Mutex
	manifest *os.File
	stats    CheckpointStats
}

// SetWriteOnly toggles recompute mode: lookups always miss, commits still
// land. Call before the sweep starts (not concurrently with Get/Put).
func (c *Checkpoint) SetWriteOnly(on bool) { c.writeOnly = on }

// CheckpointStats counts store traffic for end-of-run reporting.
type CheckpointStats struct {
	// Hits is the number of cells served from the store.
	Hits int
	// Misses is the number of lookups that found no entry.
	Misses int
	// Corrupt is the subset of Misses caused by an entry that existed but
	// failed checksum/key verification (it will be overwritten).
	Corrupt int
	// Writes is the number of entries committed this run.
	Writes int
	// WriteErrors counts failed commits (the sweep continues; the cell
	// just isn't resumable).
	WriteErrors int
}

// OpenCheckpoint opens (creating if needed) a checkpoint directory.
func OpenCheckpoint(dir string) (*Checkpoint, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("exp: checkpoint dir: %w", err)
	}
	mf, err := os.OpenFile(filepath.Join(dir, manifestName), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("exp: checkpoint manifest: %w", err)
	}
	return &Checkpoint{dir: dir, manifest: mf}, nil
}

// Close releases the manifest handle. Entries already written remain valid.
func (c *Checkpoint) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.manifest == nil {
		return nil
	}
	err := c.manifest.Close()
	c.manifest = nil
	return err
}

// Stats returns a snapshot of the store's counters.
func (c *Checkpoint) Stats() CheckpointStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Dir returns the backing directory.
func (c *Checkpoint) Dir() string { return c.dir }

// cellEntry is the on-disk envelope of one completed cell. Key holds the
// canonical options bytes (so a SHA-256 filename collision or a misplaced
// file is detected by comparison, not trusted), and Sum authenticates the
// report payload byte-for-byte.
type cellEntry struct {
	Version int             `json:"version"`
	Key     json.RawMessage `json:"key"`
	Sum     string          `json:"sum"`
	Report  json.RawMessage `json:"report"`
}

// canonicalCell canonicalizes a cell for hashing. Options.Trace is an
// interface with no stable encoding, so traced cells are uncacheable;
// callers check that before building one.
type canonicalCell struct {
	Version int          `json:"version"`
	Options core.Options `json:"options"`
}

// canonicalOptions returns the canonical key bytes for a cell, or ok=false
// for cells that cannot be content-addressed (external trace attached).
// The encoding is JSON of the completed Options: struct fields marshal in
// declaration order and maps inside (there are none) would be sorted, so
// equal options always produce equal bytes.
func canonicalOptions(opts core.Options) ([]byte, bool) {
	if opts.Trace != nil {
		return nil, false
	}
	buf, err := json.Marshal(canonicalCell{Version: checkpointVersion, Options: opts})
	if err != nil {
		// Options is plain data; this cannot fail for real configs.
		return nil, false
	}
	return buf, true
}

// CellHash returns the content address of a cell (the entry's file stem),
// or ok=false for uncacheable cells. Exported for tests and tooling that
// want to locate or corrupt a specific entry.
func CellHash(opts core.Options) (string, bool) {
	key, ok := canonicalOptions(opts)
	if !ok {
		return "", false
	}
	sum := sha256.Sum256(key)
	return hex.EncodeToString(sum[:]), true
}

func (c *Checkpoint) entryPath(hash string) string {
	return filepath.Join(c.dir, hash+".cell")
}

// Get looks a cell up. ok=false means the cell must be simulated — the
// entry is absent, unreadable, from another format version, or fails
// verification; corruption is never an error, just a miss.
func (c *Checkpoint) Get(opts core.Options) (core.Report, bool) {
	if c.writeOnly {
		return core.Report{}, false
	}
	key, cacheable := canonicalOptions(opts)
	if !cacheable {
		return core.Report{}, false
	}
	sum := sha256.Sum256(key)
	buf, err := os.ReadFile(c.entryPath(hex.EncodeToString(sum[:])))
	if err != nil {
		c.count(func(s *CheckpointStats) { s.Misses++ })
		return core.Report{}, false
	}
	var ent cellEntry
	if err := json.Unmarshal(buf, &ent); err != nil ||
		ent.Version != checkpointVersion ||
		!bytes.Equal(ent.Key, key) ||
		checksum(ent.Report) != ent.Sum {
		c.count(func(s *CheckpointStats) { s.Misses++; s.Corrupt++ })
		return core.Report{}, false
	}
	var rep core.Report
	if err := json.Unmarshal(ent.Report, &rep); err != nil {
		c.count(func(s *CheckpointStats) { s.Misses++; s.Corrupt++ })
		return core.Report{}, false
	}
	c.count(func(s *CheckpointStats) { s.Hits++ })
	return rep, true
}

// Put commits a completed cell. It is best-effort: a failed write is
// counted but does not fail the sweep (the cell simply won't resume).
func (c *Checkpoint) Put(opts core.Options, rep core.Report) {
	key, cacheable := canonicalOptions(opts)
	if !cacheable {
		return
	}
	if err := c.put(key, opts, rep); err != nil {
		c.count(func(s *CheckpointStats) { s.WriteErrors++ })
		return
	}
	c.count(func(s *CheckpointStats) { s.Writes++ })
}

func (c *Checkpoint) put(key []byte, opts core.Options, rep core.Report) error {
	repBuf, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	buf, err := json.Marshal(cellEntry{
		Version: checkpointVersion,
		Key:     key,
		Sum:     checksum(repBuf),
		Report:  repBuf,
	})
	if err != nil {
		return err
	}
	sum := sha256.Sum256(key)
	hash := hex.EncodeToString(sum[:])
	tmp, err := os.CreateTemp(c.dir, ".tmp-cell-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), c.entryPath(hash)); err != nil {
		return err
	}
	// Manifest line: audit trail of commit order. fsync'd so the log
	// survives the same crashes the entries do.
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.manifest != nil {
		fmt.Fprintf(c.manifest, "%s %s\n", hash, cellKey(opts))
		if err := c.manifest.Sync(); err != nil {
			return err
		}
	}
	return nil
}

func (c *Checkpoint) count(f func(*CheckpointStats)) {
	c.mu.Lock()
	f(&c.stats)
	c.mu.Unlock()
}

func checksum(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// WithCheckpoint arms the context with a cell store: Run consults it
// before simulating and commits every freshly computed cell to it. Call
// before sharing the context between goroutines. A nil cp disarms.
func (x *Context) WithCheckpoint(cp *Checkpoint) *Context {
	x.cp = cp
	return x
}
