package exp

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"dlrmsim/internal/core"
	"dlrmsim/internal/dlrm"
	"dlrmsim/internal/trace"
)

// renderBoth returns the text and CSV renderings of a table.
func renderBoth(t *testing.T, tbl *Table) (text, csv []byte) {
	t.Helper()
	var tb, cb bytes.Buffer
	if err := tbl.Render(&tb); err != nil {
		t.Fatal(err)
	}
	if err := tbl.RenderCSV(&cb); err != nil {
		t.Fatal(err)
	}
	return tb.Bytes(), cb.Bytes()
}

// TestParallelMatchesSequential is the runner's determinism contract: for
// every registered experiment, the table produced by the parallel runner
// (8 workers, cells and experiments racing freely) renders byte-identical
// — text and CSV — to the strictly sequential run.
func TestParallelMatchesSequential(t *testing.T) {
	ids := IDs()
	seq, err := RunAll(context.Background(), tinyContext(), ids, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunAll(context.Background(), tinyContext(), ids, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("sequential produced %d tables, parallel %d", len(seq), len(par))
	}
	for i, id := range ids {
		i := i
		t.Run(id, func(t *testing.T) {
			st, sc := renderBoth(t, seq[i])
			pt, pc := renderBoth(t, par[i])
			if !bytes.Equal(st, pt) {
				t.Errorf("text render differs between -workers 1 and -workers 8:\n--- sequential ---\n%s--- parallel ---\n%s", st, pt)
			}
			if !bytes.Equal(sc, pc) {
				t.Errorf("CSV render differs between -workers 1 and -workers 8:\n--- sequential ---\n%s--- parallel ---\n%s", sc, pc)
			}
		})
	}
}

// TestRegistryDeterministicAcrossSeeds re-proves the byte-identical
// contract at a second and third seed, diffing the full registry's
// concatenated text+CSV output between -workers 1 and -workers 8. Two
// properties ride on this beyond TestParallelMatchesSequential's single
// seed: seed plumbing cannot be short-circuited by any cache keyed too
// coarsely, and the pooled cpusim.System reuse in internal/core (systems
// recycled across cells and across these differently-seeded runs within
// one process) must leak no state from one run into the next.
func TestRegistryDeterministicAcrossSeeds(t *testing.T) {
	ids := IDs()
	render := func(seed uint64, workers int) []byte {
		x := NewContext(Config{
			Scale:               20,
			BatchSize:           8,
			Batches:             1,
			Cores:               2,
			Seed:                seed,
			BandwidthIterations: 2,
		})
		tables, err := RunAll(context.Background(), x, ids, workers)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		for _, tbl := range tables {
			if err := tbl.Render(&buf); err != nil {
				t.Fatal(err)
			}
			if err := tbl.RenderCSV(&buf); err != nil {
				t.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	for _, seed := range []uint64{2, 0xD1CE} {
		seq := render(seed, 1)
		par := render(seed, 8)
		if !bytes.Equal(seq, par) {
			t.Errorf("seed %#x: full-registry output differs between -workers 1 (%d bytes) and -workers 8 (%d bytes)",
				seed, len(seq), len(par))
		}
	}
}

func TestRunAllUnknownID(t *testing.T) {
	for _, workers := range []int{1, 4} {
		if _, err := RunAll(context.Background(), tinyContext(), []string{"fig1", "fig99"}, workers); err == nil {
			t.Errorf("workers=%d: accepted unknown experiment", workers)
		}
	}
}

// TestRunAllCancellation: a dead context aborts the sweep instead of
// running (or hanging on) the remaining cells.
func TestRunAllCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		_, err := RunAll(ctx, tinyContext(), []string{"fig1", "fig4"}, workers)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}

// TestRunManyCancellation: a context cancelled before (or during) a batch
// makes RunMany return promptly with the context error instead of
// simulating the remaining cells — the cluster sweeps and the CLI rely on
// this to abort multi-cell batches.
func TestRunManyCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		x := tinyContext().WithParallelism(ctx, workers)
		var cells []core.Options
		for _, s := range []core.Scheme{core.Baseline, core.SWPF, core.MPHT, core.Integrated} {
			cells = append(cells, core.Options{
				Model: x.Cfg.model(dlrm.RM2Small()), Hotness: trace.LowHot, Scheme: s, Cores: 2,
			})
		}
		start := time.Now()
		_, err := x.RunMany(cells)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Errorf("workers=%d: cancelled RunMany took %v", workers, elapsed)
		}
	}
}

// TestRunManyOrdering: reports come back aligned with the submitted cells
// and match individually executed runs.
func TestRunManyOrdering(t *testing.T) {
	x := tinyContext().WithParallelism(context.Background(), 4)
	e, err := Get("fig10b")
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := e.Run(x)
	if err != nil {
		t.Fatal(err)
	}
	// Re-running on a fresh sequential context must reproduce the table.
	y := tinyContext()
	tbl2, err := e.Run(y)
	if err != nil {
		t.Fatal(err)
	}
	at, ac := renderBoth(t, tbl)
	bt, bc := renderBoth(t, tbl2)
	if !bytes.Equal(at, bt) || !bytes.Equal(ac, bc) {
		t.Error("parallel context table differs from fresh sequential context")
	}
}
