package exp

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

func TestRenderCSV(t *testing.T) {
	tbl := &Table{
		ID: "x", Title: "t",
		Headers: []string{"a", "b"},
	}
	tbl.AddRow("1", "two, with comma")
	tbl.AddRow("3", "4")
	tbl.AddNote("a note")
	var buf bytes.Buffer
	if err := tbl.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	r := csv.NewReader(&buf)
	r.FieldsPerRecord = -1 // note rows are shorter than data rows
	records, err := r.ReadAll()
	if err != nil {
		t.Fatalf("output is not valid CSV: %v", err)
	}
	if len(records) != 4 { // header + 2 rows + note
		t.Fatalf("records = %d", len(records))
	}
	if records[0][0] != "experiment" || records[0][1] != "a" {
		t.Fatalf("header = %v", records[0])
	}
	if records[1][2] != "two, with comma" {
		t.Fatalf("comma cell mangled: %v", records[1])
	}
	if !strings.HasPrefix(records[3][1], "# ") {
		t.Fatalf("note row = %v", records[3])
	}
}

func TestRenderCSVEmptyTable(t *testing.T) {
	tbl := &Table{ID: "y", Headers: []string{"h"}}
	var buf bytes.Buffer
	if err := tbl.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "experiment,h" {
		t.Fatalf("empty table CSV = %q", got)
	}
}
