package dlrm

import (
	"math"
	"testing"

	"dlrmsim/internal/cpusim"
	"dlrmsim/internal/trace"
)

func TestZooConfigsValidate(t *testing.T) {
	for _, cfg := range Zoo() {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
}

func TestTable2Footprints(t *testing.T) {
	// Table 2's "Emb. Size (GB)" column: rm2_1 28.6, rm2_2 57.2,
	// rm2_3 81.1, rm1 3.8.
	cases := []struct {
		cfg    Config
		wantGB float64
	}{
		{RM2Small(), 28.6}, {RM2Medium(), 57.2}, {RM2Large(), 81.1}, {RM1(), 3.8},
	}
	for _, c := range cases {
		gotGB := float64(c.cfg.EmbeddingBytes()) / 1e9
		if math.Abs(gotGB-c.wantGB)/c.wantGB > 0.1 {
			t.Errorf("%s: embedding size %.1f GB, paper says %.1f", c.cfg.Name, gotGB, c.wantGB)
		}
	}
}

func TestTable2PerTableCapacity(t *testing.T) {
	// Paper: 488.3 MB per table for RM2, 122.0 MB for RM1 (MB = 2^20).
	if got := float64(RM2Small().PerTableBytes()) / (1 << 20); math.Abs(got-488.3) > 1 {
		t.Errorf("RM2 per-table = %.1f MiB", got)
	}
	if got := float64(RM1().PerTableBytes()) / (1 << 20); math.Abs(got-122.0) > 1 {
		t.Errorf("RM1 per-table = %.1f MiB", got)
	}
}

func TestConfigValidateRejectsBadShapes(t *testing.T) {
	bad := RM2Small()
	bad.BottomMLP = []int{256, 64} // doesn't end in EmbDim
	if bad.Validate() == nil {
		t.Fatal("accepted bottom-MLP mismatch")
	}
	bad = RM2Small()
	bad.TopMLP = []int{64, 2}
	if bad.Validate() == nil {
		t.Fatal("accepted top-MLP output != 1")
	}
	bad = RM2Small()
	bad.Tables = 0
	if bad.Validate() == nil {
		t.Fatal("accepted zero tables")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"rm1", "rm2_1", "rm2_2", "rm2_3"} {
		cfg, err := ByName(name)
		if err != nil || cfg.Name != name {
			t.Fatalf("ByName(%q) = %+v, %v", name, cfg, err)
		}
	}
	if _, err := ByName("rm9"); err == nil {
		t.Fatal("accepted unknown model")
	}
}

func TestScaledPreservesStructure(t *testing.T) {
	s := RM2Large().Scaled(10)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Tables != 17 || s.LookupsPerSample != 18 || s.RowsPerTable != 100_000 {
		t.Fatalf("scaled dims: %+v", s)
	}
	if s.EmbDim != 128 {
		t.Fatal("scaling must not touch the embedding dimension")
	}
	if s.BottomMLP[len(s.BottomMLP)-1] != 128 || s.TopMLP[len(s.TopMLP)-1] != 1 {
		t.Fatal("scaled MLP endpoints broken")
	}
}

func TestScaledFactorOneIsIdentity(t *testing.T) {
	if got := RM1().Scaled(1); got.Name != "rm1" || got.Tables != 32 {
		t.Fatalf("Scaled(1) changed the config: %+v", got)
	}
}

func testModel(t *testing.T) (*Model, *trace.Dataset) {
	t.Helper()
	cfg := RM2Small().Scaled(20) // 3 tables, 6 lookups
	m, err := New(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := trace.NewDataset(trace.Config{
		Hotness: trace.MediumHot, Rows: cfg.RowsPerTable, Tables: cfg.Tables,
		BatchSize: 4, LookupsPerSample: cfg.LookupsPerSample, Batches: 2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m, ds
}

func TestInferProducesProbabilities(t *testing.T) {
	m, ds := testModel(t)
	dense := m.DenseBatch(4, 9)
	preds, err := m.Infer(dense, func(tbl int) trace.TableBatch { return ds.Batch(0, tbl) })
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 4 {
		t.Fatalf("predictions = %d", len(preds))
	}
	for i, p := range preds {
		if p <= 0 || p >= 1 || math.IsNaN(float64(p)) {
			t.Fatalf("prediction %d = %g not a probability", i, p)
		}
	}
}

func TestInferDeterministic(t *testing.T) {
	m, ds := testModel(t)
	dense := m.DenseBatch(4, 9)
	src := func(tbl int) trace.TableBatch { return ds.Batch(0, tbl) }
	a, err := m.Infer(dense, src)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Infer(dense, src)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("inference not deterministic")
		}
	}
}

func TestInferDifferentInputsDiffer(t *testing.T) {
	m, ds := testModel(t)
	dense := m.DenseBatch(4, 9)
	a, _ := m.Infer(dense, func(tbl int) trace.TableBatch { return ds.Batch(0, tbl) })
	b, _ := m.Infer(dense, func(tbl int) trace.TableBatch { return ds.Batch(1, tbl) })
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different sparse inputs gave identical predictions")
	}
}

func TestInferRejectsBatchMismatch(t *testing.T) {
	m, ds := testModel(t)
	dense := m.DenseBatch(3, 9) // dataset batches are 4 samples
	if _, err := m.Infer(dense, func(tbl int) trace.TableBatch { return ds.Batch(0, tbl) }); err == nil {
		t.Fatal("accepted batch-size mismatch")
	}
}

func TestStageStreamsNonEmpty(t *testing.T) {
	m, ds := testModel(t)
	p := StreamParams{FlopsPerCycle: 32, Batch: 4, BufBase: 1 << 33}
	for name, s := range map[string]cpusim.Stream{
		"embedding": m.EmbeddingStream(func(tbl int) trace.TableBatch { return ds.Batch(0, tbl) }, p),
		"bottom":    m.BottomStream(p),
		"top":       m.TopStream(p),
	} {
		counts := cpusim.CountOps(s)
		var total int64
		for _, n := range counts {
			total += n
		}
		if total == 0 {
			t.Errorf("%s stream is empty", name)
		}
	}
}

func TestDenseBatchDeterministic(t *testing.T) {
	m, _ := testModel(t)
	a := m.DenseBatch(2, 1)
	b := m.DenseBatch(2, 1)
	if a[0][0] != b[0][0] || a[1][5] != b[1][5] {
		t.Fatal("dense batch not deterministic")
	}
	c := m.DenseBatch(2, 2)
	if a[0][0] == c[0][0] && a[0][1] == c[0][1] {
		t.Fatal("different seeds identical")
	}
}
