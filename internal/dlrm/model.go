package dlrm

import (
	"fmt"

	"dlrmsim/internal/cpusim"
	"dlrmsim/internal/embedding"
	"dlrmsim/internal/memsim"
	"dlrmsim/internal/nn"
	"dlrmsim/internal/stats"
)

// Model is an instantiated DLRM: procedural embedding tables and MLPs
// built from a Config. Models are cheap to construct (no weight storage).
type Model struct {
	cfg      Config
	tables   []*embedding.Table
	bottom   *nn.MLP
	top      *nn.MLP
	interact nn.Interactor
}

// New builds a model from cfg with all parameters derived from seed.
func New(cfg Config, seed uint64) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Model{cfg: cfg}
	for t := 0; t < cfg.Tables; t++ {
		m.tables = append(m.tables, embedding.NewTypedTable(t, cfg.RowsPerTable, cfg.EmbDim, seed, cfg.EmbDType))
	}
	switch cfg.Interaction {
	case CrossInteraction:
		ci, err := nn.NewCrossInteraction(cfg.EmbDim, cfg.Tables, seed)
		if err != nil {
			return nil, err
		}
		m.interact = ci
	case ConcatInteraction:
		m.interact = nn.ConcatInteraction{Dim: cfg.EmbDim, Tables: cfg.Tables}
	default:
		m.interact = nn.Interaction{Dim: cfg.EmbDim, Tables: cfg.Tables}
	}
	bottomDims := append([]int{DenseFeatures}, cfg.BottomMLP...)
	bot, err := nn.NewMLP(cfg.Name+"/bottom", bottomDims, seed^0xB0, false)
	if err != nil {
		return nil, err
	}
	topDims := append([]int{m.interact.OutputDim()}, cfg.TopMLP...)
	top, err := nn.NewMLP(cfg.Name+"/top", topDims, seed^0x70, true)
	if err != nil {
		return nil, err
	}
	m.bottom, m.top = bot, top
	return m, nil
}

// Config returns the model's architecture.
func (m *Model) Config() Config { return m.cfg }

// Tables returns the embedding tables.
func (m *Model) Tables() []*embedding.Table { return m.tables }

// Bottom and Top return the MLPs.
func (m *Model) Bottom() *nn.MLP { return m.bottom }

// Top returns the top MLP.
func (m *Model) Top() *nn.MLP { return m.top }

// Interaction returns the feature-interaction layer.
func (m *Model) Interaction() nn.Interactor { return m.interact }

// DenseBatch synthesizes a deterministic batch of dense-feature inputs.
func (m *Model) DenseBatch(batchSize int, seed uint64) [][]float32 {
	out := make([][]float32, batchSize)
	for s := range out {
		row := make([]float32, DenseFeatures)
		for f := range row {
			row[f] = float32(stats.MixFloat01(seed ^ uint64(s)<<16 ^ uint64(f)))
		}
		out[s] = row
	}
	return out
}

// Infer runs the full numeric pipeline for one batch: dense features per
// sample plus, per table, the embedding_bag inputs. It returns the CTR
// prediction for each sample.
func (m *Model) Infer(dense [][]float32, src embedding.BatchSource) ([]float32, error) {
	batch := len(dense)
	if batch == 0 {
		return nil, fmt.Errorf("dlrm: empty batch")
	}
	bottomOut, err := m.bottom.Forward(dense)
	if err != nil {
		return nil, err
	}
	pooled, err := m.EmbedBatch(batch, src)
	if err != nil {
		return nil, err
	}
	return m.InteractTop(bottomOut, pooled)
}

// EmbedBatch runs the embedding stage numerically for one batch and
// returns pooled vectors indexed [table][sample][dim]. batch is the
// expected batch size (each table's inputs must match it).
func (m *Model) EmbedBatch(batch int, src embedding.BatchSource) ([][][]float32, error) {
	pooled := make([][][]float32, m.cfg.Tables)
	for t, tbl := range m.tables {
		tb := src(t)
		if got := len(tb.Offsets) - 1; got != batch {
			return nil, fmt.Errorf("dlrm: table %d batch size %d, want %d", t, got, batch)
		}
		out, err := embedding.Bag(tbl, tb, nil)
		if err != nil {
			return nil, err
		}
		pooled[t] = out
	}
	return pooled, nil
}

// InteractTop runs the feature-interaction and top-MLP stages: bottomOut
// is the bottom-MLP output per sample; pooled is EmbedBatch's result. It
// returns the CTR prediction per sample.
func (m *Model) InteractTop(bottomOut [][]float32, pooled [][][]float32) ([]float32, error) {
	if len(pooled) != m.cfg.Tables {
		return nil, fmt.Errorf("dlrm: %d pooled tables, want %d", len(pooled), m.cfg.Tables)
	}
	preds := make([]float32, len(bottomOut))
	embVecs := make([][]float32, m.cfg.Tables)
	for s := range bottomOut {
		for t := range pooled {
			if s >= len(pooled[t]) {
				return nil, fmt.Errorf("dlrm: table %d has only %d samples", t, len(pooled[t]))
			}
			embVecs[t] = pooled[t][s]
		}
		z, err := m.interact.Forward(bottomOut[s], embVecs)
		if err != nil {
			return nil, err
		}
		topOut, err := m.top.Forward([][]float32{z})
		if err != nil {
			return nil, err
		}
		preds[s] = topOut[0][0]
	}
	return preds, nil
}

// StreamParams configures instruction-stream generation for the pipeline
// stages.
type StreamParams struct {
	// FlopsPerCycle is the platform's effective fp32 throughput.
	FlopsPerCycle float64
	// Batch is the batch size.
	Batch int
	// BufBase is the batch's private buffer region (embedding inputs and
	// outputs); concurrent batches need disjoint regions.
	BufBase memsim.Addr
	// Prefetch enables Algorithm 3 software prefetching in the
	// embedding stage.
	Prefetch embedding.PrefetchConfig
}

// EmbeddingStream returns the embedding stage's instruction stream.
func (m *Model) EmbeddingStream(src embedding.BatchSource, p StreamParams) cpusim.Stream {
	return embedding.NewStageStream(m.tables, src, embedding.StreamConfig{
		Prefetch:      p.Prefetch,
		FlopsPerCycle: p.FlopsPerCycle,
		BufBase:       p.BufBase,
	})
}

// BottomStream returns the bottom-MLP stage's instruction stream.
func (m *Model) BottomStream(p StreamParams) cpusim.Stream {
	return m.bottom.NewStream(nn.StreamConfig{FlopsPerCycle: p.FlopsPerCycle, Batch: p.Batch})
}

// TopStream returns the interaction + top-MLP instruction stream (the two
// stages the paper leaves on the main thread in every scheme).
func (m *Model) TopStream(p StreamParams) cpusim.Stream {
	return cpusim.NewConcatStream(
		m.interact.NewStream(nn.StreamConfig{FlopsPerCycle: p.FlopsPerCycle, Batch: p.Batch}),
		m.top.NewStream(nn.StreamConfig{FlopsPerCycle: p.FlopsPerCycle, Batch: p.Batch}),
	)
}
