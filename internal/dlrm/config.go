// Package dlrm assembles the four-stage DLRM inference pipeline — bottom
// MLP, embedding lookup, feature interaction, top MLP — from the
// embedding and nn substrates, and provides the paper's Table 2 model zoo
// (RM1, RM2_1, RM2_2, RM2_3).
package dlrm

import (
	"fmt"

	"dlrmsim/internal/embedding"
)

// DenseFeatures is the dense-input width (the Criteo convention of 13
// continuous features, which the paper's DLRM configurations inherit).
const DenseFeatures = 13

// InteractionKind selects the feature-interaction family — the main
// architectural difference among the recommendation models the paper's
// §2.3 surveys (DLRM, DCN, Wide&Deep, ...). All families keep the same
// embedding front end, which is what the paper's optimizations target.
type InteractionKind int

const (
	// DotInteraction is DLRM's pairwise dot products (the default).
	DotInteraction InteractionKind = iota
	// CrossInteraction is a DCN-v2-style low-rank cross network.
	CrossInteraction
	// ConcatInteraction is Wide&Deep-style concatenation.
	ConcatInteraction
)

// String names the interaction kind.
func (k InteractionKind) String() string {
	switch k {
	case DotInteraction:
		return "dot (DLRM)"
	case CrossInteraction:
		return "cross (DCN-v2)"
	case ConcatInteraction:
		return "concat (Wide&Deep)"
	default:
		return "invalid"
	}
}

// Config describes one DLRM architecture (a row of the paper's Table 2).
type Config struct {
	// Name tags the model in reports ("rm2_1", ...).
	Name string
	// Class is "RMC1" or "RMC2" (the paper's model classes).
	Class string
	// Tables is the number of embedding tables.
	Tables int
	// RowsPerTable is the embedding-table height.
	RowsPerTable int
	// EmbDim is the embedding dimension (also the bottom-MLP output).
	EmbDim int
	// EmbDType is the embedding storage type (zero value = fp32, the
	// paper's configuration; Int8/F16 model quantized deployments).
	EmbDType embedding.DType
	// LookupsPerSample is the pooling factor per table.
	LookupsPerSample int
	// BottomMLP lists the bottom-MLP layer widths (output last; the
	// input is DenseFeatures). The last width must equal EmbDim.
	BottomMLP []int
	// TopMLP lists the top-MLP layer widths (its input is the feature-
	// interaction output; the last width is 1, the CTR logit).
	TopMLP []int
	// Interaction selects the feature-interaction family (zero value =
	// DLRM's pairwise dot products).
	Interaction InteractionKind
	// SLATargetMs is the class's service-level target (Table 1).
	SLATargetMs float64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Tables < 1 || c.RowsPerTable < 1 || c.EmbDim < 1 || c.LookupsPerSample < 1 {
		return fmt.Errorf("dlrm: %s: non-positive dimension", c.Name)
	}
	if len(c.BottomMLP) == 0 || len(c.TopMLP) == 0 {
		return fmt.Errorf("dlrm: %s: missing MLP widths", c.Name)
	}
	if c.BottomMLP[len(c.BottomMLP)-1] != c.EmbDim {
		return fmt.Errorf("dlrm: %s: bottom-MLP output %d != embedding dim %d",
			c.Name, c.BottomMLP[len(c.BottomMLP)-1], c.EmbDim)
	}
	if c.TopMLP[len(c.TopMLP)-1] != 1 {
		return fmt.Errorf("dlrm: %s: top-MLP output must be 1", c.Name)
	}
	return nil
}

// EmbeddingBytes returns the total embedding-table footprint.
func (c Config) EmbeddingBytes() int64 {
	return int64(c.Tables) * c.PerTableBytes()
}

// PerTableBytes returns one table's footprint (the paper's "per table
// capacity" column).
func (c Config) PerTableBytes() int64 {
	rowBytes := int64(c.EmbDim)*int64(c.EmbDType.ElemBytes()) + int64(rowOverhead(c.EmbDType))
	return int64(c.RowsPerTable) * rowBytes
}

// rowOverhead mirrors the per-row metadata embedding.Table stores.
func rowOverhead(d embedding.DType) int {
	if d == embedding.Int8 {
		return 4
	}
	return 0
}

// RM2Small returns rm2_1: the small RMC2 model (60 tables × 1M × 128,
// 120 lookups/sample). ~28.6 GB of embeddings at full scale.
func RM2Small() Config {
	return Config{
		Name: "rm2_1", Class: "RMC2",
		Tables: 60, RowsPerTable: 1_000_000, EmbDim: 128, LookupsPerSample: 120,
		BottomMLP:   []int{256, 128, 128},
		TopMLP:      []int{128, 64, 1},
		SLATargetMs: 400,
	}
}

// RM2Medium returns rm2_2: the medium RMC2 model (120 tables, 150
// lookups). ~57.2 GB at full scale.
func RM2Medium() Config {
	return Config{
		Name: "rm2_2", Class: "RMC2",
		Tables: 120, RowsPerTable: 1_000_000, EmbDim: 128, LookupsPerSample: 150,
		BottomMLP:   []int{1024, 512, 128, 128},
		TopMLP:      []int{384, 192, 1},
		SLATargetMs: 400,
	}
}

// RM2Large returns rm2_3: the large RMC2 model (170 tables, 180 lookups).
// ~81.1 GB at full scale.
func RM2Large() Config {
	return Config{
		Name: "rm2_3", Class: "RMC2",
		Tables: 170, RowsPerTable: 1_000_000, EmbDim: 128, LookupsPerSample: 180,
		BottomMLP:   []int{2048, 1024, 256, 128},
		TopMLP:      []int{512, 256, 1},
		SLATargetMs: 400,
	}
}

// RM1 returns the mixed model (RMC1): lighter embeddings (32 tables ×
// 500K × 64, 80 lookups) with heavy MLPs, ~65% embedding time.
func RM1() Config {
	return Config{
		Name: "rm1", Class: "RMC1",
		Tables: 32, RowsPerTable: 500_000, EmbDim: 64, LookupsPerSample: 80,
		BottomMLP:   []int{2048, 2048, 256, 64},
		TopMLP:      []int{768, 384, 1},
		SLATargetMs: 100,
	}
}

// Zoo returns all Table 2 models in the paper's order.
func Zoo() []Config {
	return []Config{RM2Small(), RM2Medium(), RM2Large(), RM1()}
}

// EmbeddingHeavy returns the three RMC2 models of Figs. 12–13.
func EmbeddingHeavy() []Config {
	return []Config{RM2Small(), RM2Medium(), RM2Large()}
}

// ByName resolves a Table 2 model by name.
func ByName(name string) (Config, error) {
	for _, c := range Zoo() {
		if c.Name == name {
			return c, nil
		}
	}
	return Config{}, fmt.Errorf("dlrm: unknown model %q", name)
}

// Scaled returns a copy of c with tables, lookups, rows, and MLP hidden
// widths divided by factor (respecting minimums and the structural
// constraints: the bottom MLP still ends in EmbDim, the top MLP in 1).
// Embedding work shrinks by ~factor² (tables × lookups) and MLP work by
// ~factor² (width²), preserving the model's stage balance while shrinking
// simulation cost. Used by tests and quick experiment modes; speedup
// *ratios* are insensitive to this scaling because every scheme sees the
// same work.
func (c Config) Scaled(factor int) Config {
	if factor <= 1 {
		return c
	}
	s := c
	s.Name = fmt.Sprintf("%s/div%d", c.Name, factor)
	if s.Tables = c.Tables / factor; s.Tables < 1 {
		s.Tables = 1
	}
	if s.LookupsPerSample = c.LookupsPerSample / factor; s.LookupsPerSample < 1 {
		s.LookupsPerSample = 1
	}
	if s.RowsPerTable = c.RowsPerTable / factor; s.RowsPerTable < 1 {
		s.RowsPerTable = 1
	}
	scaleWidths := func(widths []int, last int) []int {
		out := make([]int, len(widths))
		for i, w := range widths {
			if out[i] = w / factor; out[i] < 8 {
				out[i] = 8
			}
		}
		out[len(out)-1] = last
		return out
	}
	s.BottomMLP = scaleWidths(c.BottomMLP, c.EmbDim)
	s.TopMLP = scaleWidths(c.TopMLP, 1)
	return s
}
