package dlrm

import (
	"math"
	"testing"

	"dlrmsim/internal/embedding"
	"dlrmsim/internal/trace"
)

func TestModelAccessors(t *testing.T) {
	cfg := RM2Small().Scaled(20)
	m, err := New(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Config().Name != cfg.Name {
		t.Fatal("Config accessor")
	}
	if len(m.Tables()) != cfg.Tables {
		t.Fatal("Tables accessor")
	}
	if m.Bottom() == nil || m.Top() == nil || m.Interaction() == nil {
		t.Fatal("stage accessors")
	}
	if m.Bottom().OutputDim() != cfg.EmbDim {
		t.Fatal("bottom output dim")
	}
	if m.Top().InputDim() != m.Interaction().OutputDim() {
		t.Fatal("top input dim must match interaction output")
	}
}

func TestEmbeddingHeavyList(t *testing.T) {
	heavy := EmbeddingHeavy()
	if len(heavy) != 3 {
		t.Fatalf("embedding-heavy models = %d", len(heavy))
	}
	for _, c := range heavy {
		if c.Class != "RMC2" {
			t.Fatalf("%s is not RMC2", c.Name)
		}
	}
}

func TestQuantizedConfigFootprint(t *testing.T) {
	cfg := RM2Small()
	f32 := cfg.EmbeddingBytes()
	cfg.EmbDType = embedding.Int8
	i8 := cfg.EmbeddingBytes()
	// int8 rows: 128 B + 4 B scale vs 512 B → ~3.9x smaller.
	ratio := float64(f32) / float64(i8)
	if ratio < 3.5 || ratio > 4.0 {
		t.Fatalf("fp32/int8 footprint ratio = %.2f", ratio)
	}
}

// crossModel builds a tiny DCN-v2-style model.
func crossModel(t *testing.T, kind InteractionKind) *Model {
	t.Helper()
	cfg := RM2Small().Scaled(20)
	cfg.Interaction = kind
	m, err := New(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestInteractionVariantsProduceProbabilities(t *testing.T) {
	for _, kind := range []InteractionKind{DotInteraction, CrossInteraction, ConcatInteraction} {
		m := crossModel(t, kind)
		cfg := m.Config()
		ds, err := trace.NewDataset(trace.Config{
			Hotness: trace.MediumHot, Rows: cfg.RowsPerTable, Tables: cfg.Tables,
			BatchSize: 3, LookupsPerSample: cfg.LookupsPerSample, Batches: 1, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		preds, err := m.Infer(m.DenseBatch(3, 1), func(tb int) trace.TableBatch { return ds.Batch(0, tb) })
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		for i, p := range preds {
			if p <= 0 || p >= 1 || math.IsNaN(float64(p)) {
				t.Fatalf("%v: prediction %d = %g", kind, i, p)
			}
		}
	}
}

func TestInteractionVariantsDiffer(t *testing.T) {
	// Different interaction families must produce different predictions
	// on the same inputs (they compute different functions).
	cfg := RM2Small().Scaled(20)
	ds, err := trace.NewDataset(trace.Config{
		Hotness: trace.MediumHot, Rows: cfg.RowsPerTable, Tables: cfg.Tables,
		BatchSize: 2, LookupsPerSample: cfg.LookupsPerSample, Batches: 1, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	src := func(tb int) trace.TableBatch { return ds.Batch(0, tb) }
	out := map[InteractionKind][]float32{}
	for _, kind := range []InteractionKind{DotInteraction, CrossInteraction, ConcatInteraction} {
		m := crossModel(t, kind)
		preds, err := m.Infer(m.DenseBatch(2, 1), src)
		if err != nil {
			t.Fatal(err)
		}
		out[kind] = preds
	}
	if out[DotInteraction][0] == out[CrossInteraction][0] &&
		out[DotInteraction][0] == out[ConcatInteraction][0] {
		t.Fatal("all interaction families produced identical predictions")
	}
}

func TestInteractTopValidation(t *testing.T) {
	m := crossModel(t, DotInteraction)
	if _, err := m.InteractTop(nil, nil); err == nil {
		t.Fatal("accepted missing pooled tables")
	}
	// Pooled with too few samples for the bottom batch.
	bottom := [][]float32{make([]float32, m.Config().EmbDim)}
	pooled := make([][][]float32, m.Config().Tables)
	for i := range pooled {
		pooled[i] = nil // zero samples
	}
	if _, err := m.InteractTop(bottom, pooled); err == nil {
		t.Fatal("accepted short pooled tables")
	}
}
