package serve

import (
	"testing"
)

func batchCfg() BatchingConfig {
	return BatchingConfig{
		Cores:             4,
		MeanArrivalMs:     0.2,
		MaxBatch:          32,
		MaxWaitMs:         5,
		ServiceBaseMs:     1,
		ServicePerQueryMs: 0.1,
		Queries:           10000,
		Seed:              3,
	}
}

func TestBatchingBasics(t *testing.T) {
	res, err := SimulateBatching(batchCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Batches == 0 || res.MeanBatchSize <= 0 {
		t.Fatalf("no batches formed: %+v", res)
	}
	if res.MeanBatchSize > 32 {
		t.Fatalf("mean batch %g exceeds MaxBatch", res.MeanBatchSize)
	}
	if !(res.P50 <= res.P95 && res.P95 <= res.P99) {
		t.Fatalf("percentiles out of order: %+v", res)
	}
	if res.ThroughputQPS <= 0 {
		t.Fatal("no throughput")
	}
}

func TestBatchingLightLoadFlushesOnTimeout(t *testing.T) {
	cfg := batchCfg()
	cfg.MeanArrivalMs = 20 // sparse arrivals: batches of ~1, flushed by timeout
	res, err := SimulateBatching(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanBatchSize > 2 {
		t.Fatalf("light load formed batches of %g", res.MeanBatchSize)
	}
	// Latency ≈ wait (up to MaxWaitMs) + service of a small batch.
	if res.P95 > cfg.MaxWaitMs+cfg.ServiceBaseMs+2*cfg.ServicePerQueryMs+1 {
		t.Fatalf("light-load p95 = %g", res.P95)
	}
}

func TestBatchingHeavyLoadFillsBatches(t *testing.T) {
	cfg := batchCfg()
	cfg.MeanArrivalMs = 0.01 // dense arrivals: batches fill to MaxBatch
	res, err := SimulateBatching(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanBatchSize < float64(cfg.MaxBatch)*0.9 {
		t.Fatalf("heavy load mean batch = %g, want ~%d", res.MeanBatchSize, cfg.MaxBatch)
	}
}

func TestBatchingLargerBatchesRaiseThroughput(t *testing.T) {
	// Under overload, a larger MaxBatch amortizes ServiceBaseMs and
	// serves more QPS.
	small, big := batchCfg(), batchCfg()
	small.MeanArrivalMs, big.MeanArrivalMs = 0.02, 0.02
	small.MaxBatch, big.MaxBatch = 4, 64
	rs, err := SimulateBatching(small)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := SimulateBatching(big)
	if err != nil {
		t.Fatal(err)
	}
	if rb.ThroughputQPS <= rs.ThroughputQPS {
		t.Fatalf("batch 64 QPS %.0f <= batch 4 QPS %.0f", rb.ThroughputQPS, rs.ThroughputQPS)
	}
}

func TestBatchingDeterministic(t *testing.T) {
	a, err := SimulateBatching(batchCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateBatching(batchCfg())
	if err != nil {
		t.Fatal(err)
	}
	if a.P95 != b.P95 || a.Batches != b.Batches {
		t.Fatal("not deterministic")
	}
}

func TestBatchingValidation(t *testing.T) {
	bad := batchCfg()
	bad.Cores = 0
	if _, err := SimulateBatching(bad); err == nil {
		t.Fatal("accepted zero cores")
	}
	bad = batchCfg()
	bad.ServicePerQueryMs = 0
	if _, err := SimulateBatching(bad); err == nil {
		t.Fatal("accepted zero per-query service")
	}
	bad = batchCfg()
	bad.MaxWaitMs = 0
	if _, err := SimulateBatching(bad); err == nil {
		t.Fatal("accepted zero wait")
	}
}

func TestBestBatchSizeRespectsSLA(t *testing.T) {
	cfg := batchCfg()
	cfg.MeanArrivalMs = 0.05
	candidates := []int{4, 16, 64, 256}
	// Tight SLA: giant batches must be rejected (their service time alone
	// blows the budget).
	best, points, ok := BestBatchSize(cfg, candidates, 12)
	if !ok {
		t.Fatalf("no compliant batch size; points=%v", points)
	}
	if points[best].P95 > 12 {
		t.Fatalf("chosen batch %d violates SLA: %+v", best, points[best])
	}
	if best == 256 {
		t.Fatal("SLA should have excluded the largest batch")
	}
	// A loose SLA admits larger batches with throughput ≥ the tight pick.
	bestLoose, pointsLoose, ok := BestBatchSize(cfg, candidates, 1e6)
	if !ok {
		t.Fatal("loose SLA found nothing")
	}
	if pointsLoose[bestLoose].ThroughputQPS < points[best].ThroughputQPS {
		t.Fatal("loose SLA picked lower throughput")
	}
}
