package serve

import (
	"testing"

	"dlrmsim/internal/stats"
)

// randBatchingConfig draws a valid batching config from the case RNG.
// Every case gets its own seed split from the suite seed, so cases are
// decorrelated and the suite is reproducible.
func randBatchingConfig(rng *stats.RNG, caseSeed uint64) BatchingConfig {
	return BatchingConfig{
		Cores:             1 + rng.Intn(8),
		MeanArrivalMs:     0.02 + 3*rng.Float64(),
		MaxBatch:          1 + rng.Intn(128),
		MaxWaitMs:         0.1 + 10*rng.Float64(),
		ServiceBaseMs:     2 * rng.Float64(),
		ServicePerQueryMs: 0.005 + 0.3*rng.Float64(),
		Queries:           2000,
		Seed:              caseSeed,
	}
}

// TestBatchingInvariants property-checks the dynamic batcher across
// randomized configurations: percentiles are ordered, formed batches
// respect MaxBatch, and no query finishes faster than the service-time
// floor of a singleton batch.
func TestBatchingInvariants(t *testing.T) {
	rng := stats.NewRNG(0xB47C)
	const eps = 1e-9
	for i := 0; i < 100; i++ {
		cfg := randBatchingConfig(rng, stats.SplitSeed(0xB47C, uint64(i)))
		res, err := SimulateBatching(cfg)
		if err != nil {
			t.Fatalf("case %d (%+v): %v", i, cfg, err)
		}
		if res.Batches <= 0 || res.ThroughputQPS <= 0 {
			t.Fatalf("case %d: no work done: %+v", i, res)
		}
		if res.P50 > res.P95+eps || res.P95 > res.P99+eps {
			t.Errorf("case %d: percentiles out of order: P50=%g P95=%g P99=%g (%+v)",
				i, res.P50, res.P95, res.P99, cfg)
		}
		if res.Mean > res.P99+eps {
			t.Errorf("case %d: mean %g above P99 %g", i, res.Mean, res.P99)
		}
		if res.MeanBatchSize < 1-eps || res.MeanBatchSize > float64(cfg.MaxBatch)+eps {
			t.Errorf("case %d: mean batch size %g outside [1, MaxBatch=%d]",
				i, res.MeanBatchSize, cfg.MaxBatch)
		}
		// Every latency includes the service of a batch with >= 1 query.
		floor := cfg.ServiceBaseMs + cfg.ServicePerQueryMs
		if res.P50 < floor-eps || res.Mean < floor-eps {
			t.Errorf("case %d: latency below service floor %g ms: P50=%g mean=%g",
				i, floor, res.P50, res.Mean)
		}
	}
}

// TestBatchingDeterminism: equal configs give bit-equal results — the
// batcher is a pure function of its config, which the parallel runner's
// determinism guarantee relies on for serving-layer experiments.
func TestBatchingDeterminism(t *testing.T) {
	rng := stats.NewRNG(7)
	cfg := randBatchingConfig(rng, 42)
	a, err := SimulateBatching(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateBatching(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same config, different results:\n%+v\n%+v", a, b)
	}
}

// TestSimulateInvariants property-checks the request-level queueing
// simulator: ordered percentiles and, without jitter, a hard service-time
// floor under every latency.
func TestSimulateInvariants(t *testing.T) {
	rng := stats.NewRNG(0x51A7E)
	const eps = 1e-9
	for i := 0; i < 100; i++ {
		cfg := Config{
			Cores:         1 + rng.Intn(16),
			MeanArrivalMs: 0.05 + 4*rng.Float64(),
			ServiceMs:     0.1 + 20*rng.Float64(),
			Requests:      1500,
			Seed:          stats.SplitSeed(0x51A7E, uint64(i)),
		}
		res, err := Simulate(cfg)
		if err != nil {
			t.Fatalf("case %d (%+v): %v", i, cfg, err)
		}
		if res.P50 > res.P95+eps || res.P95 > res.P99+eps {
			t.Errorf("case %d: percentiles out of order: P50=%g P95=%g P99=%g (%+v)",
				i, res.P50, res.P95, res.P99, cfg)
		}
		if res.P50 < cfg.ServiceMs-eps {
			t.Errorf("case %d: P50 %g below deterministic service time %g",
				i, res.P50, cfg.ServiceMs)
		}
		if res.Utilization <= 0 {
			t.Errorf("case %d: utilization %g", i, res.Utilization)
		}
		if res.MaxQueueWaitMs < 0 {
			t.Errorf("case %d: negative max queue wait %g", i, res.MaxQueueWaitMs)
		}
	}
}
