package serve

import (
	"testing"
)

func baseConfig() Config {
	return Config{
		Cores:         8,
		MeanArrivalMs: 2,
		ServiceMs:     10,
		Requests:      4000,
		Seed:          3,
	}
}

func TestSimulateLightLoad(t *testing.T) {
	cfg := baseConfig()
	cfg.MeanArrivalMs = 100 // utilization ~1.25%
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Nearly no queueing: p95 ≈ service time.
	if res.P95 < 10 || res.P95 > 12 {
		t.Fatalf("light-load p95 = %g, want ~10", res.P95)
	}
	if res.MaxQueueWaitMs > 20 {
		t.Fatalf("light-load max wait = %g", res.MaxQueueWaitMs)
	}
}

func TestSimulateSaturation(t *testing.T) {
	cfg := baseConfig()
	cfg.MeanArrivalMs = 1 // utilization 1.25 > 1: saturated
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Utilization <= 1 {
		t.Fatalf("utilization = %g, want > 1", res.Utilization)
	}
	// Queueing delay should dwarf service time.
	if res.P95 < 50 {
		t.Fatalf("saturated p95 = %g, expected large queueing", res.P95)
	}
}

func TestLatencyMonotoneInLoad(t *testing.T) {
	points, err := SweepArrival(baseConfig(), []float64{50, 5, 2, 1.5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(points); i++ {
		if points[i].Result.P95 < points[i-1].Result.P95-0.5 {
			t.Fatalf("p95 not (weakly) increasing with load: %+v", points)
		}
	}
}

func TestFasterServiceToleratesFasterArrivals(t *testing.T) {
	// The paper's Fig. 17 argument: a faster design (Integrated) stays
	// SLA-compliant at faster arrival rates.
	arrivals := []float64{8, 4, 2, 1.5, 1.2, 1}
	slow := baseConfig()
	slow.ServiceMs = 10
	fast := baseConfig()
	fast.ServiceMs = 6
	ps, err := SweepArrival(slow, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := SweepArrival(fast, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	const sla = 30
	aSlow, okS := FastestCompliantArrival(ps, sla)
	aFast, okF := FastestCompliantArrival(pf, sla)
	if !okS || !okF {
		t.Fatalf("no compliant region: slow=%v fast=%v", okS, okF)
	}
	if aFast >= aSlow {
		t.Fatalf("faster design tolerates %g ms arrivals, slower %g", aFast, aSlow)
	}
}

func TestSLACompliance(t *testing.T) {
	cfg := baseConfig()
	cfg.MeanArrivalMs = 100
	cfg.SLATargetMs = 11
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SLACompliant < 0.99 {
		t.Fatalf("light load compliance = %g", res.SLACompliant)
	}
	cfg.SLATargetMs = 5 // below service time: nothing complies
	res, err = Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SLACompliant != 0 {
		t.Fatalf("impossible SLA compliance = %g", res.SLACompliant)
	}
}

func TestJitterWidensTail(t *testing.T) {
	cfg := baseConfig()
	cfg.MeanArrivalMs = 100
	noJitter, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.JitterFrac = 0.3
	jittered, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if jittered.P99 <= noJitter.P99 {
		t.Fatalf("jitter did not widen tail: %g vs %g", jittered.P99, noJitter.P99)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	a, err := Simulate(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.P95 != b.P95 || a.Mean != b.Mean {
		t.Fatal("simulation not deterministic")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := baseConfig()
	bad.Cores = 0
	if _, err := Simulate(bad); err == nil {
		t.Fatal("accepted zero cores")
	}
	bad = baseConfig()
	bad.ServiceMs = -1
	if _, err := Simulate(bad); err == nil {
		t.Fatal("accepted negative service time")
	}
	if _, err := SweepArrival(baseConfig(), nil); err == nil {
		t.Fatal("accepted empty sweep")
	}
}

func TestFastestCompliantArrivalNoneCompliant(t *testing.T) {
	points := []SweepPoint{{MeanArrivalMs: 1, Result: Result{P95: 100}}}
	if _, ok := FastestCompliantArrival(points, 50); ok {
		t.Fatal("reported compliance where none exists")
	}
}

func TestPercentileOrdering(t *testing.T) {
	cfg := baseConfig()
	cfg.MeanArrivalMs = 1.6
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !(res.P50 <= res.P95 && res.P95 <= res.P99) {
		t.Fatalf("percentiles out of order: %g %g %g", res.P50, res.P95, res.P99)
	}
	if res.Mean <= 0 {
		t.Fatal("missing mean")
	}
}
