package serve

import (
	"math"
	"testing"
)

func baseConfig() Config {
	return Config{
		Cores:         8,
		MeanArrivalMs: 2,
		ServiceMs:     10,
		Requests:      4000,
		Seed:          3,
	}
}

func TestSimulateLightLoad(t *testing.T) {
	cfg := baseConfig()
	cfg.MeanArrivalMs = 100 // utilization ~1.25%
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Nearly no queueing: p95 ≈ service time.
	if res.P95 < 10 || res.P95 > 12 {
		t.Fatalf("light-load p95 = %g, want ~10", res.P95)
	}
	if res.MaxQueueWaitMs > 20 {
		t.Fatalf("light-load max wait = %g", res.MaxQueueWaitMs)
	}
}

func TestSimulateSaturation(t *testing.T) {
	cfg := baseConfig()
	cfg.MeanArrivalMs = 1 // utilization 1.25 > 1: saturated
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Utilization <= 1 {
		t.Fatalf("utilization = %g, want > 1", res.Utilization)
	}
	// Queueing delay should dwarf service time.
	if res.P95 < 50 {
		t.Fatalf("saturated p95 = %g, expected large queueing", res.P95)
	}
}

func TestLatencyMonotoneInLoad(t *testing.T) {
	points, err := SweepArrival(baseConfig(), []float64{50, 5, 2, 1.5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(points); i++ {
		if points[i].Result.P95 < points[i-1].Result.P95-0.5 {
			t.Fatalf("p95 not (weakly) increasing with load: %+v", points)
		}
	}
}

func TestFasterServiceToleratesFasterArrivals(t *testing.T) {
	// The paper's Fig. 17 argument: a faster design (Integrated) stays
	// SLA-compliant at faster arrival rates.
	arrivals := []float64{8, 4, 2, 1.5, 1.2, 1}
	slow := baseConfig()
	slow.ServiceMs = 10
	fast := baseConfig()
	fast.ServiceMs = 6
	ps, err := SweepArrival(slow, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := SweepArrival(fast, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	const sla = 30
	aSlow, okS := FastestCompliantArrival(ps, sla)
	aFast, okF := FastestCompliantArrival(pf, sla)
	if !okS || !okF {
		t.Fatalf("no compliant region: slow=%v fast=%v", okS, okF)
	}
	if aFast >= aSlow {
		t.Fatalf("faster design tolerates %g ms arrivals, slower %g", aFast, aSlow)
	}
}

func TestSLACompliance(t *testing.T) {
	cfg := baseConfig()
	cfg.MeanArrivalMs = 100
	cfg.SLATargetMs = 11
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SLACompliant < 0.99 {
		t.Fatalf("light load compliance = %g", res.SLACompliant)
	}
	cfg.SLATargetMs = 5 // below service time: nothing complies
	res, err = Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SLACompliant != 0 {
		t.Fatalf("impossible SLA compliance = %g", res.SLACompliant)
	}
}

func TestJitterWidensTail(t *testing.T) {
	cfg := baseConfig()
	cfg.MeanArrivalMs = 100
	noJitter, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.JitterFrac = 0.3
	jittered, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if jittered.P99 <= noJitter.P99 {
		t.Fatalf("jitter did not widen tail: %g vs %g", jittered.P99, noJitter.P99)
	}
}

// TestJitterDeterministic: jitter draws come from the seeded RNG, so a
// jittered run is exactly as reproducible as a deterministic one — the
// property the exp runner's byte-identical -workers guarantee needs.
func TestJitterDeterministic(t *testing.T) {
	cfg := baseConfig()
	cfg.JitterFrac = 0.25
	a, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("jittered simulation not deterministic:\n%+v\n%+v", a, b)
	}
	cfg.Seed++
	c, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("different seed produced identical jittered result")
	}
}

// TestJitteredUtilization: with jitter J the mean service time is the
// lognormal mean ServiceMs·exp(J²/2), so reported utilization must carry
// the exp(J²/2) factor — without it the offered load is understated
// (pre-fix the jittered and unjittered configs reported the same value).
func TestJitteredUtilization(t *testing.T) {
	cfg := baseConfig()
	cfg.JitterFrac = 0.4
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.ServiceMs * math.Exp(0.4*0.4/2) / (cfg.MeanArrivalMs * float64(cfg.Cores))
	if math.Abs(res.Utilization-want) > 1e-12 {
		t.Fatalf("jittered utilization = %.12g, want %.12g", res.Utilization, want)
	}
	cfg.JitterFrac = 0
	plain, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Utilization <= plain.Utilization {
		t.Fatalf("jitter did not raise utilization: %g vs %g", res.Utilization, plain.Utilization)
	}
}

// TestExplicitZeroWarmup: WarmupRequests 0 means unset (5% default), -1
// requests explicitly zero warmup, and any other negative is rejected —
// pre-fix, -2 was silently accepted.
func TestExplicitZeroWarmup(t *testing.T) {
	cfg := baseConfig()
	cfg.MeanArrivalMs = 1.6
	cfg.WarmupRequests = -1
	zero, err := Simulate(cfg)
	if err != nil {
		t.Fatalf("explicit-zero warmup rejected: %v", err)
	}
	cfg.WarmupRequests = 0
	def, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The default run drops the first 5% of requests, so at this load the
	// two results must differ somewhere.
	if zero == def {
		t.Fatal("explicit-zero warmup produced the same result as the 5% default")
	}
	cfg.WarmupRequests = -2
	if _, err := Simulate(cfg); err == nil {
		t.Fatal("accepted warmup -2")
	}
}

// TestQueueNonMonotonicArrivals pins the documented earliest-free-server
// semantics when submissions arrive out of dispatch order: requests are
// served in submission order, never re-sorted by arrival, so an early
// arrival submitted late queues behind already-submitted work.
func TestQueueNonMonotonicArrivals(t *testing.T) {
	q := NewQueue(1)
	if start, done := q.Submit(10, 5); start != 10 || done != 15 {
		t.Fatalf("first: start %g done %g, want 10, 15", start, done)
	}
	// Arrival at t=0 submitted second: served after the first request
	// despite arriving earlier — submission order is service order.
	if start, done := q.Submit(0, 5); start != 15 || done != 20 {
		t.Fatalf("out-of-order arrival: start %g done %g, want 15, 20", start, done)
	}
	// Two servers: the out-of-order arrival takes a free server if one
	// exists, starting at its own (earlier) arrival time.
	q2 := NewQueue(2)
	q2.Submit(10, 5)
	if start, done := q2.Submit(0, 3); start != 0 || done != 3 {
		t.Fatalf("free-server early arrival: start %g done %g, want 0, 3", start, done)
	}
	if q2.BusyMs() != 8 {
		t.Fatalf("BusyMs() = %g, want 8", q2.BusyMs())
	}
}

// TestQueueUnavailable: an outage window holds every server until the
// window ends and is not counted as busy time.
func TestQueueUnavailable(t *testing.T) {
	q := NewQueue(2)
	q.Submit(0, 4) // in service when the outage starts
	q.Unavailable(10)
	// A request arriving mid-outage starts when the node comes back.
	if start, done := q.Submit(6, 2); start != 10 || done != 12 {
		t.Fatalf("mid-outage arrival: start %g done %g, want 10, 12", start, done)
	}
	// The other server is also held: next submission queues at 10+.
	if start, _ := q.Submit(6, 1); start != 10 {
		t.Fatalf("second server not held: start %g, want 10", start)
	}
	if q.BusyMs() != 7 {
		t.Fatalf("outage counted as busy: BusyMs() = %g, want 7", q.BusyMs())
	}
	// A window in the past is a no-op.
	q.Unavailable(5)
	if start, _ := q.Submit(20, 1); start != 20 {
		t.Fatalf("stale window delayed an idle-server arrival to %g", start)
	}
}

// TestQueueEarliestFree: the backlog signal is the minimum over server
// free times — zero on an idle queue, and tracking the least-loaded
// server, not the busiest one.
func TestQueueEarliestFree(t *testing.T) {
	q := NewQueue(2)
	if q.EarliestFree() != 0 {
		t.Fatalf("idle queue EarliestFree() = %g, want 0", q.EarliestFree())
	}
	q.Submit(0, 4) // server A busy until 4
	if q.EarliestFree() != 0 {
		t.Fatalf("one idle server left, EarliestFree() = %g, want 0", q.EarliestFree())
	}
	q.Submit(1, 2) // server B busy until 3
	if q.EarliestFree() != 3 {
		t.Fatalf("EarliestFree() = %g, want 3 (least-loaded server)", q.EarliestFree())
	}
	q.Unavailable(10)
	if q.EarliestFree() != 10 {
		t.Fatalf("outage not reflected: EarliestFree() = %g, want 10", q.EarliestFree())
	}
}

// TestMeetsSLABoundary: compliance is inclusive — a p95 exactly on the
// target counts as meeting the SLA.
func TestMeetsSLABoundary(t *testing.T) {
	r := Result{P95: 12.5}
	if !r.MeetsSLA(12.5) {
		t.Error("p95 exactly at target should comply")
	}
	if !r.MeetsSLA(13) {
		t.Error("p95 below target should comply")
	}
	if r.MeetsSLA(12.499999) {
		t.Error("p95 above target should not comply")
	}
}

// TestQueueFCFS pins the exported Queue's discipline: earliest-free
// server, start no earlier than arrival, busy accounting additive.
func TestQueueFCFS(t *testing.T) {
	q := NewQueue(2)
	if q.Servers() != 2 {
		t.Fatalf("Servers() = %d", q.Servers())
	}
	// Two arrivals at t=0 take both servers; the third queues behind the
	// earlier finisher.
	if start, done := q.Submit(0, 10); start != 0 || done != 10 {
		t.Fatalf("first: start %g done %g", start, done)
	}
	if start, done := q.Submit(0, 4); start != 0 || done != 4 {
		t.Fatalf("second: start %g done %g", start, done)
	}
	if start, done := q.Submit(1, 3); start != 4 || done != 7 {
		t.Fatalf("queued: start %g done %g, want 4, 7", start, done)
	}
	// A late arrival to an idle server starts on arrival.
	if start, _ := q.Submit(20, 1); start != 20 {
		t.Fatalf("idle arrival started at %g", start)
	}
	if q.BusyMs() != 18 {
		t.Fatalf("BusyMs() = %g, want 18", q.BusyMs())
	}
}

func TestNewQueuePanicsOnZeroServers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewQueue(0) did not panic")
		}
	}()
	NewQueue(0)
}

func TestSimulateDeterministic(t *testing.T) {
	a, err := Simulate(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.P95 != b.P95 || a.Mean != b.Mean {
		t.Fatal("simulation not deterministic")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := baseConfig()
	bad.Cores = 0
	if _, err := Simulate(bad); err == nil {
		t.Fatal("accepted zero cores")
	}
	bad = baseConfig()
	bad.ServiceMs = -1
	if _, err := Simulate(bad); err == nil {
		t.Fatal("accepted negative service time")
	}
	if _, err := SweepArrival(baseConfig(), nil); err == nil {
		t.Fatal("accepted empty sweep")
	}
}

func TestFastestCompliantArrivalNoneCompliant(t *testing.T) {
	points := []SweepPoint{{MeanArrivalMs: 1, Result: Result{P95: 100}}}
	if _, ok := FastestCompliantArrival(points, 50); ok {
		t.Fatal("reported compliance where none exists")
	}
}

func TestPercentileOrdering(t *testing.T) {
	cfg := baseConfig()
	cfg.MeanArrivalMs = 1.6
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !(res.P50 <= res.P95 && res.P95 <= res.P99) {
		t.Fatalf("percentiles out of order: %g %g %g", res.P50, res.P95, res.P99)
	}
	if res.Mean <= 0 {
		t.Fatal("missing mean")
	}
}

// TestQueueReset: a Reset queue must be indistinguishable from a fresh
// NewQueue — same Submit results, zero busy time — whether the server
// count shrinks, grows within capacity, or grows past it.
func TestQueueReset(t *testing.T) {
	q := NewQueue(4)
	q.Submit(0, 10)
	q.Submit(0, 10)
	q.Unavailable(50)
	for _, servers := range []int{4, 2, 8} {
		q.Reset(servers)
		if q.Servers() != servers || q.BusyMs() != 0 {
			t.Fatalf("after Reset(%d): servers %d busy %g", servers, q.Servers(), q.BusyMs())
		}
		fresh := NewQueue(servers)
		for i := 0; i < 3; i++ {
			arrival := float64(i) * 0.5
			gs, gd := q.Submit(arrival, 2)
			ws, wd := fresh.Submit(arrival, 2)
			if gs != ws || gd != wd {
				t.Fatalf("Reset(%d) submit %d: (%g,%g) vs fresh (%g,%g)", servers, i, gs, gd, ws, wd)
			}
		}
	}
	// Reuse within capacity is allocation-free.
	allocs := testing.AllocsPerRun(20, func() { q.Reset(8) })
	if allocs != 0 {
		t.Fatalf("Reset allocated %.1f times, want 0", allocs)
	}
}

func TestQueueResetPanicsOnZeroServers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Reset(0) did not panic")
		}
	}()
	NewQueue(1).Reset(0)
}
