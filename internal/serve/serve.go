// Package serve models DLRM inference serving for the paper's tail-latency
// evaluation (Fig. 17): a Poisson load generator in front of a multi-core
// server, FCFS dispatch of one batch per free core, and percentile
// reporting against SLA targets.
//
// Service times come from the timing simulator (one design point's batch
// latency); an optional jitter term models the service-time variance real
// systems exhibit.
package serve

import (
	"fmt"
	"math"

	"dlrmsim/internal/check"
	"dlrmsim/internal/stats"
)

// Config describes one serving experiment.
type Config struct {
	// Cores is the number of servers (batches served concurrently).
	Cores int
	// MeanArrivalMs is the mean inter-arrival time of the Poisson load.
	MeanArrivalMs float64
	// ServiceMs is the deterministic batch service time (from the
	// timing simulator's Report.BatchLatencyMs).
	ServiceMs float64
	// JitterFrac adds lognormal-ish service variance: each request's
	// service time is multiplied by exp(J·N(0,1)) with J = JitterFrac.
	// 0 disables jitter.
	JitterFrac float64
	// Requests is the number of requests to simulate (default 2000).
	Requests int
	// WarmupRequests are excluded from the percentiles. 0 means unset
	// (default 5% of Requests); -1 requests explicitly zero warmup.
	WarmupRequests int
	// SLATargetMs marks the compliance threshold (0 = no SLA tracking).
	SLATargetMs float64
	// Seed drives arrivals and jitter.
	Seed uint64
}

func (c *Config) applyDefaults() error {
	if c.Cores < 1 {
		return fmt.Errorf("serve: %d cores", c.Cores)
	}
	if c.MeanArrivalMs <= 0 || c.ServiceMs <= 0 {
		return fmt.Errorf("serve: non-positive times (arrival %g, service %g)", c.MeanArrivalMs, c.ServiceMs)
	}
	if c.Requests == 0 {
		c.Requests = 2000
	}
	if c.Requests < 1 {
		return fmt.Errorf("serve: %d requests", c.Requests)
	}
	switch {
	case c.WarmupRequests == 0:
		c.WarmupRequests = c.Requests / 20
	case c.WarmupRequests == -1:
		c.WarmupRequests = 0
	case c.WarmupRequests < 0:
		return fmt.Errorf("serve: warmup %d (use -1 for explicit zero)", c.WarmupRequests)
	}
	if c.WarmupRequests >= c.Requests {
		return fmt.Errorf("serve: warmup %d >= requests %d", c.WarmupRequests, c.Requests)
	}
	return nil
}

// Result summarizes one serving run.
type Result struct {
	// P50, P95, P99, Mean are end-to-end latencies in ms (queueing +
	// service), measured after warmup.
	P50, P95, P99, Mean float64
	// SLACompliant is the fraction of post-warmup requests meeting the
	// SLA target (1.0 when no target is set).
	SLACompliant float64
	// Utilization is offered load over capacity: mean service / (arrival
	// × cores). With jitter J the mean service time is the lognormal mean
	// ServiceMs·exp(J²/2), not ServiceMs. Above ~1 the system saturates.
	Utilization float64
	// MaxQueueWaitMs is the worst queueing delay observed.
	MaxQueueWaitMs float64
}

// MeetsSLA reports whether the p95 latency is within the target.
func (r Result) MeetsSLA(targetMs float64) bool { return r.P95 <= targetMs }

// Queue is the earliest-free-server FCFS discipline at the heart of
// Simulate, exported so other simulators reuse the same service model —
// internal/cluster runs one Queue per shard node. Submissions should be
// made in dispatch order; each Submit claims the earliest-free of the
// queue's servers.
//
// Submissions with non-monotonic arrival times are accepted but are NOT
// re-sorted into arrival order: requests are served in submission order
// on the earliest-free server, so a late-submitted early arrival queues
// behind everything submitted before it. Callers that can generate
// out-of-order arrivals must therefore order their own submissions —
// internal/cluster processes sub-request copies (including retries and
// hedges, which launch between later queries' dispatches) globally in
// node-arrival order for exactly this reason.
type Queue struct {
	free []float64
	busy float64
}

// NewQueue returns an empty FCFS queue with the given server count. It
// panics if servers < 1, which indicates a programming error.
func NewQueue(servers int) *Queue {
	if servers < 1 {
		panic(fmt.Sprintf("serve: NewQueue with %d servers", servers))
	}
	return &Queue{free: make([]float64, servers)}
}

// Jitter is the multiplicative lognormal service-time factor for one
// standard-normal draw: exp(frac·draw). Every tier that models service
// variance (serve, cluster, hetsched) uses this same convention so their
// jitter knobs are comparable. Callers must skip the normal draw entirely
// when frac is zero — drawing-and-discarding would shift the RNG stream
// and change jitterless results.
func Jitter(frac, draw float64) float64 {
	return math.Exp(frac * draw)
}

// MeanJitter is the expected value of Jitter(frac, N(0,1)) — the
// lognormal mean exp(frac²/2) — for capacity and utilization math.
func MeanJitter(frac float64) float64 {
	return math.Exp(frac * frac / 2)
}

// Submit enqueues one request arriving at the given time with the given
// service duration and returns when it starts and completes. The request
// starts on the earliest-free server, no earlier than its arrival.
func (q *Queue) Submit(arrival, service float64) (start, done float64) {
	best := 0
	for s := 1; s < len(q.free); s++ {
		if q.free[s] < q.free[best] {
			best = s
		}
	}
	start = arrival
	if q.free[best] > start {
		start = q.free[best]
	}
	done = start + service
	q.free[best] = done
	q.busy += service
	if check.Enabled {
		check.Assert(start >= arrival && done >= start && !math.IsNaN(done),
			"serve: queue broke causality (arrival %g, start %g, done %g)", arrival, start, done)
	}
	return start, done
}

// Unavailable marks every server unavailable until the given time — a
// transient outage window: requests already in service are presumed to
// complete but their responses are held until the window ends, and every
// subsequent Submit starts no earlier than until. Outage time is not
// counted as busy time. Callers should apply windows in nondecreasing
// order, as arrivals reach each window's start (internal/cluster's fault
// model and chaos schedule both do); a window applied early also delays
// submissions that arrive before it begins. The raise is a max, so
// overlapping windows from independent callers compose commutatively —
// the fault model's stochastic outages and the chaos schedule's domain
// outages may interleave on one queue in any order.
func (q *Queue) Unavailable(until float64) {
	for s := range q.free {
		if q.free[s] < until {
			q.free[s] = until
		}
	}
}

// Reset returns the queue to the empty state NewQueue(servers) would
// produce, reusing the server slice when its capacity allows — the
// arena-reuse hook internal/cluster pools per-run queues through. It
// panics if servers < 1, matching NewQueue.
func (q *Queue) Reset(servers int) {
	if servers < 1 {
		panic(fmt.Sprintf("serve: Queue.Reset with %d servers", servers))
	}
	if cap(q.free) >= servers {
		q.free = q.free[:servers]
		for s := range q.free {
			q.free[s] = 0
		}
	} else {
		q.free = make([]float64, servers)
	}
	q.busy = 0
}

// Servers returns the queue's server count.
func (q *Queue) Servers() int { return len(q.free) }

// EarliestFree returns the earliest instant any server can start new
// work. max(0, EarliestFree()−now) is the queueing delay a request
// arriving now would see — the backlog signal internal/cluster's
// admission control and autoscaler read.
func (q *Queue) EarliestFree() float64 {
	best := q.free[0]
	for _, f := range q.free[1:] {
		if f < best {
			best = f
		}
	}
	return best
}

// BusyMs returns the total service time submitted so far — the
// numerator of a utilization estimate.
func (q *Queue) BusyMs() float64 { return q.busy }

// Simulate runs the M/D/c-style queueing simulation (deterministic or
// jittered service, Poisson arrivals, FCFS, c servers).
func Simulate(cfg Config) (Result, error) {
	if err := cfg.applyDefaults(); err != nil {
		return Result{}, err
	}
	rng := stats.NewRNG(cfg.Seed ^ 0x5E12E)
	queue := NewQueue(cfg.Cores)
	latencies := make([]float64, 0, cfg.Requests-cfg.WarmupRequests)
	var now, maxWait float64
	slaOK := 0
	for i := 0; i < cfg.Requests; i++ {
		now += rng.ExpFloat64() * cfg.MeanArrivalMs
		service := cfg.ServiceMs
		if cfg.JitterFrac > 0 {
			service *= Jitter(cfg.JitterFrac, rng.NormFloat64())
		}
		start, _ := queue.Submit(now, service)
		if i < cfg.WarmupRequests {
			continue
		}
		wait := start - now
		if wait > maxWait {
			maxWait = wait
		}
		lat := wait + service
		latencies = append(latencies, lat)
		if cfg.SLATargetMs <= 0 || lat <= cfg.SLATargetMs {
			slaOK++
		}
	}
	pct := stats.Percentiles(latencies, 0.50, 0.95, 0.99)
	res := Result{
		P50:            pct[0],
		P95:            pct[1],
		P99:            pct[2],
		Mean:           stats.Mean(latencies),
		SLACompliant:   float64(slaOK) / float64(len(latencies)),
		Utilization:    cfg.ServiceMs * MeanJitter(cfg.JitterFrac) / (cfg.MeanArrivalMs * float64(cfg.Cores)),
		MaxQueueWaitMs: maxWait,
	}
	return res, nil
}

// SweepPoint is one arrival rate's result (a Fig. 17 x-position).
type SweepPoint struct {
	MeanArrivalMs float64
	Result        Result
}

// SweepArrival runs Simulate across the given mean inter-arrival times —
// the x-axis sweep of Fig. 17.
func SweepArrival(cfg Config, arrivalsMs []float64) ([]SweepPoint, error) {
	if len(arrivalsMs) == 0 {
		return nil, fmt.Errorf("serve: empty arrival sweep")
	}
	out := make([]SweepPoint, 0, len(arrivalsMs))
	for _, a := range arrivalsMs {
		c := cfg
		c.MeanArrivalMs = a
		r, err := Simulate(c)
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{MeanArrivalMs: a, Result: r})
	}
	return out, nil
}

// FastestCompliantArrival returns the smallest mean inter-arrival time in
// the sweep whose p95 meets the SLA target — "how fast a load can this
// design tolerate", the paper's headline tail-latency metric. ok is false
// when no point complies.
func FastestCompliantArrival(points []SweepPoint, slaMs float64) (float64, bool) {
	best := math.Inf(1)
	ok := false
	for _, p := range points {
		if p.Result.MeetsSLA(slaMs) && p.MeanArrivalMs < best {
			best = p.MeanArrivalMs
			ok = true
		}
	}
	if !ok {
		return 0, false
	}
	return best, true
}
