package serve

import (
	"strings"
	"testing"
)

func TestConfigValidateCollectsAllViolations(t *testing.T) {
	cfg := Config{
		Cores:          0,
		MeanArrivalMs:  -1,
		ServiceMs:      0,
		JitterFrac:     -0.1,
		Requests:       -5,
		WarmupRequests: -2,
		SLATargetMs:    -3,
	}
	err := cfg.Validate()
	if err == nil {
		t.Fatal("Validate accepted a config with six violations")
	}
	for _, want := range []string{
		"0 cores",
		"non-positive times",
		"jitter fraction",
		"-5 requests",
		"warmup -2",
		"SLA target",
	} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error missing %q:\n%v", want, err)
		}
	}
}

func TestConfigValidateAcceptsDefaults(t *testing.T) {
	cfg := Config{Cores: 2, MeanArrivalMs: 1, ServiceMs: 0.5}
	if err := cfg.Validate(); err != nil {
		t.Errorf("zero-means-default config rejected: %v", err)
	}
	if _, err := Simulate(cfg); err != nil {
		t.Errorf("validated config fails to simulate: %v", err)
	}
	cfg.WarmupRequests = 5000 // above the 2000-request default
	if err := cfg.Validate(); err == nil {
		t.Error("warmup above default request count accepted")
	}
}
