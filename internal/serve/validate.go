package serve

import (
	"errors"
	"fmt"
)

// Validate reports every violation in the serving config at once
// (errors.Join), without mutating it. Simulate's applyDefaults enforces
// the same constraints one at a time while filling defaults; Validate is
// the CLI-facing front door. Zero-means-default fields (Requests,
// WarmupRequests) are accepted as zero.
func (c Config) Validate() error {
	var errs []error
	if c.Cores < 1 {
		errs = append(errs, fmt.Errorf("serve: %d cores", c.Cores))
	}
	if c.MeanArrivalMs <= 0 || c.ServiceMs <= 0 {
		errs = append(errs, fmt.Errorf("serve: non-positive times (arrival %g ms, service %g ms)",
			c.MeanArrivalMs, c.ServiceMs))
	}
	if c.JitterFrac < 0 {
		errs = append(errs, fmt.Errorf("serve: negative jitter fraction %g", c.JitterFrac))
	}
	if c.Requests < 0 {
		errs = append(errs, fmt.Errorf("serve: %d requests", c.Requests))
	}
	if c.WarmupRequests < -1 {
		errs = append(errs, fmt.Errorf("serve: warmup %d (use -1 for explicit zero)", c.WarmupRequests))
	}
	requests := c.Requests
	if requests == 0 {
		requests = 2000
	}
	if c.WarmupRequests >= requests {
		errs = append(errs, fmt.Errorf("serve: warmup %d >= requests %d", c.WarmupRequests, requests))
	}
	if c.SLATargetMs < 0 {
		errs = append(errs, fmt.Errorf("serve: negative SLA target %g ms", c.SLATargetMs))
	}
	return errors.Join(errs...)
}
