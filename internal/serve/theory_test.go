package serve

import (
	"math"
	"testing"
)

// erlangCWait returns the theoretical mean queueing delay of an M/M/c
// queue (Erlang C). Our simulator is M/D/c when JitterFrac is 0; M/D/c
// waits are shorter than M/M/c (deterministic service halves the
// Pollaczek-Khinchine term), so Erlang C bounds the simulated mean wait
// from above while 0 bounds it from below.
func erlangCWait(lambda, mu float64, c int) float64 {
	a := lambda / mu // offered load in Erlangs
	rho := a / float64(c)
	if rho >= 1 {
		return math.Inf(1)
	}
	// Erlang C probability of waiting.
	sum := 0.0
	fact := 1.0
	for k := 0; k < c; k++ {
		if k > 0 {
			fact *= float64(k)
		}
		sum += math.Pow(a, float64(k)) / fact
	}
	factC := fact * float64(c)
	if c == 1 {
		factC = 1
	}
	top := math.Pow(a, float64(c)) / factC * (1 / (1 - rho))
	pWait := top / (sum + top)
	return pWait / (float64(c)*mu - lambda)
}

func TestMeanWaitBoundedByErlangC(t *testing.T) {
	// λ = 1/arrival, μ = 1/service.
	for _, tc := range []struct {
		cores   int
		arrival float64
		service float64
	}{
		{4, 4, 10},   // ρ = 0.625
		{8, 2, 10},   // ρ = 0.625
		{8, 1.6, 10}, // ρ = 0.78
	} {
		res, err := Simulate(Config{
			Cores: tc.cores, MeanArrivalMs: tc.arrival, ServiceMs: tc.service,
			Requests: 20000, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		meanWait := res.Mean - tc.service
		upper := erlangCWait(1/tc.arrival, 1/tc.service, tc.cores)
		if meanWait < -1e-9 {
			t.Fatalf("negative mean wait %g", meanWait)
		}
		// M/D/c wait should be below M/M/c and above ~40% of it.
		if meanWait > upper*1.15 {
			t.Errorf("c=%d ρ=%.2f: simulated wait %.3f exceeds Erlang C bound %.3f",
				tc.cores, tc.service/(tc.arrival*float64(tc.cores)), meanWait, upper)
		}
		if upper > 0.05 && meanWait < upper*0.25 {
			t.Errorf("c=%d: simulated wait %.4f implausibly below M/M/c %.4f", tc.cores, meanWait, upper)
		}
	}
}

func TestUtilizationMatchesDefinition(t *testing.T) {
	res, err := Simulate(Config{Cores: 8, MeanArrivalMs: 2, ServiceMs: 10, Requests: 1000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Utilization, 10.0/(2*8); math.Abs(got-want) > 1e-12 {
		t.Fatalf("utilization = %g, want %g", got, want)
	}
}
