package serve

import (
	"fmt"
	"math"

	"dlrmsim/internal/stats"
)

// BatchingConfig describes query-level serving with dynamic batch
// formation: individual queries arrive Poisson; the batcher flushes a
// batch when it reaches MaxBatch queries or when the oldest enqueued
// query has waited MaxWaitMs. This is the serving layer the paper's
// batch-size choice lives in (Table 1: batch 64 "to maximize throughput
// while meeting the SLA").
type BatchingConfig struct {
	// Cores is the number of servers.
	Cores int
	// MeanArrivalMs is the mean inter-arrival time of single queries.
	MeanArrivalMs float64
	// MaxBatch flushes a batch at this size.
	MaxBatch int
	// MaxWaitMs flushes a batch when its oldest query has waited this
	// long (bounds batching delay under light load).
	MaxWaitMs float64
	// ServiceBaseMs + ServicePerQueryMs×size is a batch's service time —
	// the affine model the timing simulator's batch-size sweep (ext2)
	// justifies.
	ServiceBaseMs     float64
	ServicePerQueryMs float64
	// Queries is the number of queries to simulate (default 20000).
	Queries int
	// Seed drives arrivals.
	Seed uint64
}

func (c *BatchingConfig) applyDefaults() error {
	if c.Cores < 1 || c.MaxBatch < 1 {
		return fmt.Errorf("serve: bad batching config %+v", *c)
	}
	if c.MeanArrivalMs <= 0 || c.MaxWaitMs <= 0 {
		return fmt.Errorf("serve: non-positive times in %+v", *c)
	}
	if c.ServiceBaseMs < 0 || c.ServicePerQueryMs <= 0 {
		return fmt.Errorf("serve: bad service model in %+v", *c)
	}
	if c.Queries == 0 {
		c.Queries = 20000
	}
	return nil
}

// BatchingResult reports query-level latency percentiles and batching
// behavior.
type BatchingResult struct {
	// P50, P95, P99, Mean are end-to-end query latencies in ms
	// (batching wait + queueing + service).
	P50, P95, P99, Mean float64
	// MeanBatchSize is the average formed batch size.
	MeanBatchSize float64
	// Batches is the number of batches dispatched.
	Batches int
	// ThroughputQPS is queries served per second of simulated time.
	ThroughputQPS float64
}

// SimulateBatching runs the query-level serving simulation.
func SimulateBatching(cfg BatchingConfig) (BatchingResult, error) {
	if err := cfg.applyDefaults(); err != nil {
		return BatchingResult{}, err
	}
	rng := stats.NewRNG(cfg.Seed ^ 0xBA7C4)
	// Query arrival times.
	arrivals := make([]float64, cfg.Queries)
	now := 0.0
	for i := range arrivals {
		now += rng.ExpFloat64() * cfg.MeanArrivalMs
		arrivals[i] = now
	}
	free := make([]float64, cfg.Cores)
	latencies := make([]float64, 0, cfg.Queries)
	var batchStart int // index of the first query in the forming batch
	var totalBatch, nBatches int
	var lastFinish float64

	flush := func(members []float64, flushAt float64) {
		best := 0
		for s := 1; s < len(free); s++ {
			if free[s] < free[best] {
				best = s
			}
		}
		start := math.Max(flushAt, free[best])
		service := cfg.ServiceBaseMs + cfg.ServicePerQueryMs*float64(len(members))
		done := start + service
		free[best] = done
		if done > lastFinish {
			lastFinish = done
		}
		for _, arr := range members {
			latencies = append(latencies, done-arr)
		}
		totalBatch += len(members)
		nBatches++
	}

	for i := 0; i < cfg.Queries; i++ {
		// The batch currently forming spans [batchStart, i]. Flush if
		// the deadline of its oldest member passes before query i+1
		// arrives, or if it is full.
		deadline := arrivals[batchStart] + cfg.MaxWaitMs
		size := i - batchStart + 1
		switch {
		case size >= cfg.MaxBatch:
			flush(arrivals[batchStart:i+1], arrivals[i])
			batchStart = i + 1
		case i+1 >= cfg.Queries || arrivals[i+1] > deadline:
			flush(arrivals[batchStart:i+1], deadline)
			batchStart = i + 1
		}
	}
	pct := stats.Percentiles(latencies, 0.50, 0.95, 0.99)
	res := BatchingResult{
		P50:     pct[0],
		P95:     pct[1],
		P99:     pct[2],
		Mean:    stats.Mean(latencies),
		Batches: nBatches,
	}
	if nBatches > 0 {
		res.MeanBatchSize = float64(totalBatch) / float64(nBatches)
	}
	if lastFinish > 0 {
		res.ThroughputQPS = float64(len(latencies)) / (lastFinish / 1e3)
	}
	return res, nil
}

// BestBatchSize sweeps MaxBatch over candidates and returns the size with
// the highest throughput whose p95 meets the SLA, plus every evaluated
// point. ok is false when nothing complies.
func BestBatchSize(cfg BatchingConfig, candidates []int, slaMs float64) (best int, points map[int]BatchingResult, ok bool) {
	points = make(map[int]BatchingResult, len(candidates))
	bestQPS := -1.0
	for _, b := range candidates {
		c := cfg
		c.MaxBatch = b
		res, err := SimulateBatching(c)
		if err != nil {
			continue
		}
		points[b] = res
		if res.P95 <= slaMs && res.ThroughputQPS > bestQPS {
			best, bestQPS, ok = b, res.ThroughputQPS, true
		}
	}
	return best, points, ok
}
