package hetsched

import (
	"math"
	"os"
	"reflect"
	"strings"
	"testing"

	"dlrmsim/internal/check"
)

// TestMain runs the whole package's tests with runtime invariants on, so
// every simulation in this file doubles as an invariant check.
func TestMain(m *testing.M) {
	check.Enabled = true
	os.Exit(m.Run())
}

// testGraph is a mid-weight DLRM request: 40 µs of gathers, 30 µs dense.
func testGraph() Graph { return DLRMGraph(40, 30) }

func mustMix(t testing.TB, name string) []DeviceSpec {
	t.Helper()
	devs, err := NewMix(name)
	if err != nil {
		t.Fatal(err)
	}
	return devs
}

func run(t testing.TB, cfg Config) Result {
	t.Helper()
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	return res
}

func TestSimulateDeterministic(t *testing.T) {
	for _, mix := range Mixes {
		for _, pol := range AllPolicies {
			cfg := Config{
				Graph:         testGraph(),
				Devices:       mustMix(t, mix),
				Policy:        pol,
				MeanArrivalMs: ArrivalForUtilization(testGraph(), mustMix(t, mix), 0.7),
				Requests:      400,
				JitterFrac:    0.2,
				Seed:          7,
			}
			a := run(t, cfg)
			b := run(t, cfg)
			if !reflect.DeepEqual(a, b) {
				t.Errorf("%s/%s: two runs of one config differ:\n%+v\n%+v", mix, pol, a, b)
			}
		}
	}
}

func TestSimulateSeedMatters(t *testing.T) {
	cfg := Config{
		Graph:         testGraph(),
		Devices:       mustMix(t, "cpu4"),
		Policy:        EFT,
		MeanArrivalMs: 0.03,
		Requests:      400,
		JitterFrac:    0.3,
		Seed:          1,
	}
	a := run(t, cfg)
	cfg.Seed = 2
	b := run(t, cfg)
	if a.P95 == b.P95 && a.Mean == b.Mean {
		t.Errorf("different seeds produced identical latencies: %+v", a)
	}
}

// TestMPHTColocation pins the paper's MP-HT reproduction: on the
// two-SMT-thread fleet the affinity policy is exactly the colocation
// scheme — gathers on one thread, dense phases on the other — so sibling
// overlap is always cross-kind, never the contended same-kind case.
func TestMPHTColocation(t *testing.T) {
	g := testGraph()
	devs := mustMix(t, "smt2")
	cfg := Config{
		Graph:         g,
		Devices:       devs,
		Policy:        Affinity,
		MeanArrivalMs: ArrivalForUtilization(g, devs, 0.7),
		Requests:      600,
		Seed:          3,
	}
	res := run(t, cfg)
	if res.SameKindOverlapMs != 0 {
		t.Errorf("MP-HT colocation produced %g ms of same-kind SMT overlap, want 0", res.SameKindOverlapMs)
	}
	if res.CrossKindOverlapMs <= 0 {
		t.Errorf("MP-HT colocation never overlapped gather with dense (cross overlap %g)", res.CrossKindOverlapMs)
	}
	if res.Util[CPUClass] <= 0 || res.UtilTotal <= 0 {
		t.Errorf("no CPU utilization recorded: %+v", res)
	}
}

// TestPIMNeverRunsDense feeds the hetero fleet and checks the incapable
// device is respected: with check.Enabled a misrouted MLP would panic in
// startBatch via a NaN/invariant, and the PIM class must still see gather
// utilization.
func TestPIMUsedForGathers(t *testing.T) {
	g := testGraph()
	devs := mustMix(t, "hetero")
	for _, pol := range AllPolicies {
		cfg := Config{
			Graph:         g,
			Devices:       devs,
			Policy:        pol,
			MeanArrivalMs: ArrivalForUtilization(g, devs, 0.6),
			Requests:      400,
			Seed:          5,
		}
		res := run(t, cfg)
		if pol != EFT && res.Util[PIMClass] <= 0 {
			t.Errorf("%v: PIM class never utilized: %+v", pol, res)
		}
	}
}

// TestBatchingAmortization pins the GPU batching economics: under heavy
// load with a hold window, larger MaxBatch amortizes the fixed launch
// cost into higher sustained batch sizes.
func TestBatchingAmortization(t *testing.T) {
	g := testGraph()
	devs := mustMix(t, "cpu2gpu1")
	for i := range devs {
		if devs[i].Class == GPUClass {
			devs[i].HoldUs = 30
		}
	}
	cfg := Config{
		Graph:         g,
		Devices:       devs,
		Policy:        Affinity,
		MeanArrivalMs: ArrivalForUtilization(g, devs, 0.9),
		Requests:      600,
		Seed:          11,
	}
	res := run(t, cfg)
	if res.MeanBatchItems <= 1 {
		t.Errorf("GPU under load with a hold window batched %.2f items/launch, want > 1", res.MeanBatchItems)
	}
}

func TestStealPolicyCountsSteals(t *testing.T) {
	g := testGraph()
	devs := mustMix(t, "cpu4")
	cfg := Config{
		Graph:         g,
		Devices:       devs,
		Policy:        Steal,
		MeanArrivalMs: ArrivalForUtilization(g, devs, 0.9),
		Requests:      600,
		JitterFrac:    0.4,
		Seed:          13,
	}
	res := run(t, cfg)
	if res.Steals == 0 {
		t.Errorf("steal policy under jittery load recorded zero steals")
	}
	cfg.Policy = Affinity
	if got := run(t, cfg); got.Steals != 0 {
		t.Errorf("affinity policy recorded %d steals, want 0", got.Steals)
	}
}

func TestConfigValidateCollectsAll(t *testing.T) {
	cfg := Config{
		Graph:          Graph{Phases: []Phase{{Kind: NumKinds, WorkUs: -1}}},
		Policy:         numPolicies,
		MeanArrivalMs:  -2,
		Requests:       -5,
		WarmupRequests: -9,
		JitterFrac:     7,
	}
	err := cfg.Validate()
	if err == nil {
		t.Fatal("Validate() = nil for a config wrong in every field")
	}
	for _, want := range []string{
		"invalid kind", "negative work", "no devices", "invalid policy",
		"mean arrival", "negative request count", "warmup", "jitter",
	} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("Validate() error missing %q:\n%v", want, err)
		}
	}
}

func TestConfigValidateIncapableFleet(t *testing.T) {
	cfg := Config{
		Graph:         testGraph(),
		Devices:       []DeviceSpec{PIMDevice()}, // gathers only, graph has MLPs
		MeanArrivalMs: 1,
	}
	err := cfg.Validate()
	if err == nil || !strings.Contains(err.Error(), "no device can run it") {
		t.Errorf("Validate() = %v, want capability error", err)
	}
}

func TestWarmupConventions(t *testing.T) {
	base := Config{
		Graph:         testGraph(),
		Devices:       mustMix(t, "cpu1"),
		Policy:        Affinity,
		MeanArrivalMs: 0.2,
		Requests:      100,
		Seed:          1,
	}
	cfg := base
	if err := cfg.applyDefaults(); err != nil {
		t.Fatal(err)
	}
	if cfg.WarmupRequests != 5 {
		t.Errorf("default warmup = %d, want 5 (5%% of 100)", cfg.WarmupRequests)
	}
	cfg = base
	cfg.WarmupRequests = -1
	if err := cfg.applyDefaults(); err != nil {
		t.Fatal(err)
	}
	if cfg.WarmupRequests != 0 {
		t.Errorf("explicit-zero warmup = %d, want 0", cfg.WarmupRequests)
	}
	cfg = base
	cfg.WarmupRequests = 100
	if _, err := Simulate(cfg); err == nil {
		t.Error("warmup == requests accepted, want error")
	}
}

func TestArrivalForUtilization(t *testing.T) {
	g := testGraph()
	devs := mustMix(t, "cpu4")
	arr := ArrivalForUtilization(g, devs, 0.5)
	if arr <= 0 || math.IsInf(arr, 0) {
		t.Fatalf("ArrivalForUtilization = %g", arr)
	}
	// Doubling target utilization halves the inter-arrival gap.
	if got := ArrivalForUtilization(g, devs, 1.0); math.Abs(got-arr/2) > 1e-12 {
		t.Errorf("arrival at util 1.0 = %g, want %g", got, arr/2)
	}
	// Sanity: simulating at the 0.5 sizing lands utilization in a broad
	// band around it — the heuristic is approximate, not exact.
	cfg := Config{Graph: g, Devices: devs, Policy: EFT, MeanArrivalMs: arr, Requests: 800, Seed: 2}
	res := run(t, cfg)
	if res.UtilTotal < 0.2 || res.UtilTotal > 0.85 {
		t.Errorf("sized for ~0.5 utilization, simulated %.2f", res.UtilTotal)
	}
}

func TestParsePolicy(t *testing.T) {
	for _, pol := range AllPolicies {
		got, err := ParsePolicy(pol.String())
		if err != nil || got != pol {
			t.Errorf("ParsePolicy(%q) = %v, %v", pol.String(), got, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("ParsePolicy accepted bogus")
	}
}

func TestNewMixUnknown(t *testing.T) {
	if _, err := NewMix("toaster"); err == nil {
		t.Error("NewMix accepted unknown mix")
	}
	for _, m := range Mixes {
		devs, err := NewMix(m)
		if err != nil {
			t.Errorf("NewMix(%q): %v", m, err)
			continue
		}
		for i, d := range devs {
			if d.Name == "" {
				t.Errorf("mix %q device %d unnamed", m, i)
			}
			if err := d.validate(i, len(devs)); err != nil {
				t.Errorf("mix %q device %d invalid: %v", m, i, err)
			}
		}
	}
}
