package hetsched

import (
	"strings"
	"testing"
)

func TestGraphValidate(t *testing.T) {
	cases := []struct {
		name string
		g    Graph
		want []string // substrings that must all appear in the error
	}{
		{"empty", Graph{}, []string{"empty phase graph"}},
		{"bad kind", Graph{Phases: []Phase{{Kind: NumKinds}}}, []string{"invalid kind"}},
		{"negative work", Graph{Phases: []Phase{{Kind: MLP, WorkUs: -1}}}, []string{"negative work"}},
		{"out of range dep", Graph{Phases: []Phase{{Kind: MLP, Deps: []int{3}}}}, []string{"out-of-range"}},
		{"negative dep", Graph{Phases: []Phase{{Kind: MLP, Deps: []int{-1}}}}, []string{"out-of-range"}},
		{"self dep", Graph{Phases: []Phase{{Kind: MLP, Deps: []int{0}}}}, []string{"depends on itself"}},
		{"two cycle", Graph{Phases: []Phase{
			{Kind: Gather, Deps: []int{1}},
			{Kind: MLP, Deps: []int{0}},
		}}, []string{"dependency cycle"}},
		{"collect all", Graph{Phases: []Phase{
			{Kind: NumKinds, WorkUs: -2},
			{Kind: MLP, Deps: []int{9}},
		}}, []string{"invalid kind", "negative work", "out-of-range"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.g.Validate()
			if err == nil {
				t.Fatalf("Validate() = nil, want error mentioning %v", tc.want)
			}
			for _, w := range tc.want {
				if !strings.Contains(err.Error(), w) {
					t.Errorf("Validate() error %q missing %q", err, w)
				}
			}
		})
	}
}

func TestDLRMGraphShape(t *testing.T) {
	g := DLRMGraph(40, 30)
	if err := g.Validate(); err != nil {
		t.Fatalf("DLRMGraph invalid: %v", err)
	}
	if len(g.Phases) != 4 {
		t.Fatalf("DLRMGraph has %d phases, want 4", len(g.Phases))
	}
	if got := g.TotalWorkUs(); got != 70 {
		t.Errorf("TotalWorkUs() = %g, want 70 (gather 40 + dense 30)", got)
	}
	w := g.KindWorkUs()
	if w[Gather] != 40 {
		t.Errorf("gather work = %g, want 40", w[Gather])
	}
	if w[Interact]+w[MLP] != 30 {
		t.Errorf("dense work = %g, want 30", w[Interact]+w[MLP])
	}
	n := g.KindCounts()
	if n[Gather] != 1 || n[Interact] != 1 || n[MLP] != 2 {
		t.Errorf("KindCounts() = %v, want [1 1 2]", n)
	}
	// The top MLP must transitively depend on both roots.
	if len(g.Phases[2].Deps) != 2 || len(g.Phases[3].Deps) != 1 || g.Phases[3].Deps[0] != 2 {
		t.Errorf("unexpected dependency structure: %+v", g.Phases)
	}
}

// graphFromBytes decodes an arbitrary byte string into a (frequently
// invalid) phase graph: per phase one kind byte (invalid kind 3 included),
// one work byte biased slightly negative, and two dependency nibbles that
// can point out of range, at the phase itself, or forward (building
// cycles). The fuzz target feeds this to Validate and Simulate.
func graphFromBytes(data []byte) Graph {
	if len(data) == 0 {
		return Graph{}
	}
	n := int(data[0])%6 + 1
	data = data[1:]
	g := Graph{Phases: make([]Phase, n)}
	get := func(j int) byte {
		if j < len(data) {
			return data[j]
		}
		return 0
	}
	for i := 0; i < n; i++ {
		p := Phase{
			Kind:   PhaseKind(get(i*4) % 4),
			WorkUs: float64(int(get(i*4+1)) - 8),
		}
		for _, db := range []byte{get(i*4 + 2), get(i*4 + 3)} {
			if db%4 != 0 {
				p.Deps = append(p.Deps, int(db%16)-4)
			}
		}
		g.Phases[i] = p
	}
	return g
}

// FuzzPhaseGraph checks that Validate is exactly the schedulability gate:
// any graph it accepts simulates to completion without tripping a runtime
// invariant, and any graph it rejects is refused by Simulate too.
func FuzzPhaseGraph(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 1, 20, 0, 0})                                        // single valid gather
	f.Add([]byte{4, 0, 20, 0, 0, 2, 30, 0, 0, 1, 10, 5, 6, 2, 40, 7, 0}) // diamond-ish
	f.Add([]byte{2, 0, 10, 6, 0, 1, 10, 5, 0})                           // mutual deps → cycle
	f.Add([]byte{3, 3, 200, 15, 1, 1, 0, 9, 9})                          // invalid kind + junk deps
	f.Add([]byte{6, 1, 0, 0, 0, 2, 0, 0, 0})                             // zero-work phases
	f.Fuzz(func(t *testing.T, data []byte) {
		g := graphFromBytes(data)
		verr := g.Validate()

		// Pick fleet and policy from the input so odd graphs also exercise
		// the specialist/partition/steal paths.
		var sum byte
		for _, b := range data {
			sum += b
		}
		mix := Mixes[int(sum)%len(Mixes)]
		devs, err := NewMix(mix)
		if err != nil {
			t.Fatalf("NewMix(%q): %v", mix, err)
		}
		cfg := Config{
			Graph:          g,
			Devices:        devs,
			Policy:         AllPolicies[int(sum/16)%len(AllPolicies)],
			MeanArrivalMs:  0.05,
			Requests:       8,
			WarmupRequests: -1,
			JitterFrac:     float64(sum%3) * 0.2,
			Seed:           uint64(sum) + 1,
		}
		res, serr := Simulate(cfg)
		if verr != nil {
			if serr == nil {
				t.Fatalf("graph rejected by Validate (%v) but Simulate accepted it", verr)
			}
			return
		}
		if serr != nil {
			t.Fatalf("graph accepted by Validate but Simulate refused: %v", serr)
		}
		if res.P99 < 0 || res.Mean < 0 {
			t.Fatalf("negative latency summary: %+v", res)
		}
	})
}
