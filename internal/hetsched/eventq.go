package hetsched

import "dlrmsim/internal/eventq"

// EventBackend selects how run() finds the earliest device event. The
// default is an eventq.Heap of device timers; the legacy linear scan
// over all devices is kept selectable so the differential suite can pin
// that the two produce byte-identical results.
type EventBackend int

const (
	// BackendDefault is the heap-backed timer queue.
	BackendDefault EventBackend = iota
	// BackendScan is the original O(devices)-per-event linear scan.
	BackendScan
	// BackendHeap names the heap explicitly (same as the default).
	BackendHeap
)

var eventBackend = BackendDefault

// SetEventBackend selects the device-event backend for subsequent
// Simulate calls and returns a func restoring the previous choice.
// Test-only; not safe for concurrent Simulate calls with different
// backends.
func SetEventBackend(b EventBackend) (restore func()) {
	prev := eventBackend
	eventBackend = b
	return func() { eventBackend = prev }
}

// devTimer is one scheduled device event: a batch completion (busyEnd)
// or a hold-window deadline (holdAt). Timers are invalidated lazily: a
// device's generation counter bumps whenever its event changes, and
// pop skips entries whose gen is stale. The tie order (time, device
// index) reproduces the legacy scan's strict-less lowest-index-wins
// exactly.
type devTimer struct {
	t   float64
	dev int32
	gen uint32
}

func devTimerLess(a, b devTimer) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.dev < b.dev
}

// timerSet schedules device d's (only) live event at time t,
// invalidating any previously scheduled one.
func (st *simState) timerSet(d int, t float64) {
	if st.timers == nil {
		return
	}
	st.devGen[d]++
	st.timers.Push(devTimer{t: t, dev: int32(d), gen: st.devGen[d]})
}

// timerClear invalidates device d's scheduled event (if any) without
// scheduling a new one.
func (st *simState) timerClear(d int) {
	if st.timers == nil {
		return
	}
	st.devGen[d]++
}

// nextTimer peeks the earliest live device event, draining stale
// entries off the front. Returns dev -1 when no device has one.
func (st *simState) nextTimer() (tE float64, dev int) {
	for st.timers.Len() > 0 {
		e := st.timers.Min()
		if e.gen != st.devGen[e.dev] {
			st.timers.Pop()
			continue
		}
		return e.t, int(e.dev)
	}
	return 0, -1
}

func newDevTimers(b EventBackend, nDev int) *eventq.Heap[devTimer] {
	if b == BackendScan {
		return nil
	}
	h := eventq.NewHeap(devTimerLess)
	// Room for one live timer per device plus a stale tail; grows on
	// demand past this.
	h.Grow(4 * nDev)
	return h
}
