package hetsched

import "fmt"

// Policy selects how ready phases are placed onto devices.
type Policy uint8

const (
	// Affinity is static phase-affinity routing: each kind is assigned a
	// fixed subset of the fleet up front (specialists first — gathers to
	// PIM, dense to GPU — then the CPUs are partitioned among the kinds
	// left over, weighted by the graph's per-kind work), and phases
	// round-robin inside their subset. No load information is consulted.
	// On a two-thread SMT fleet this is exactly the paper's MP-HT
	// colocation: gathers pinned to one thread, dense phases to the other.
	Affinity Policy = iota
	// EFT is earliest-finish-time dispatch: each ready phase is placed on
	// the capable device whose estimated finish (current backlog + this
	// phase's solo service estimate) is smallest, ties to the lowest
	// device index. The estimate knows nothing about batching
	// amortization (it charges the full fixed cost per item) or about the
	// jitter a service draw will actually see — those blind spots are
	// what the other policies exploit.
	EFT
	// Steal is affinity routing plus idle-device work stealing: a device
	// that goes idle with an empty queue takes the oldest compatible
	// phase from the most backlogged queue, and a phase headed for a busy
	// device is diverted to an idle, empty, capable one. Placement
	// mistakes are corrected after the fact, which no estimate-based
	// policy can do once service times turn out different than assumed.
	Steal

	numPolicies = 3
)

// AllPolicies lists every policy in sweep order.
var AllPolicies = []Policy{Affinity, EFT, Steal}

func (p Policy) String() string {
	switch p {
	case Affinity:
		return "affinity"
	case EFT:
		return "eft"
	case Steal:
		return "steal"
	}
	return fmt.Sprintf("Policy(%d)", uint8(p))
}

// ParsePolicy resolves a CLI policy name.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "affinity":
		return Affinity, nil
	case "eft":
		return EFT, nil
	case "steal":
		return Steal, nil
	}
	return 0, fmt.Errorf("hetsched: unknown policy %q (want affinity, eft, or steal)", s)
}

// affinityPlan is the static kind→devices assignment the Affinity and
// Steal policies route with. Built once per Simulate from the fleet and
// the graph's per-kind work.
type affinityPlan struct {
	// devs[k] lists the device indices kind k round-robins over.
	devs [NumKinds][]int
	// rr[k] is kind k's round-robin cursor.
	rr [NumKinds]int
}

// buildAffinity computes the static assignment:
//
//  1. a kind with capable specialist devices (PIM for gathers, GPU for
//     interactions and MLPs) is pinned to all of them;
//  2. the kinds left on the CPUs partition the CPU devices among
//     themselves, contiguous slices sized by their share of the graph's
//     work (every kind gets at least one device);
//  3. a kind with no devices after both steps falls back to every
//     capable device.
//
// On the two-thread SMT fleet with the DLRM graph, step 2 pins gathers
// to thread 0 and interact+MLP to thread 1 — the MP-HT split.
func buildAffinity(specs []DeviceSpec, g Graph) *affinityPlan {
	plan := &affinityPlan{}
	specialist := [NumKinds]DeviceClass{Gather: PIMClass, Interact: GPUClass, MLP: GPUClass}
	kindWork := g.KindWorkUs()
	kindCount := g.KindCounts()

	// Step 1: specialists.
	onCPU := make([]PhaseKind, 0, NumKinds)
	for k := PhaseKind(0); k < NumKinds; k++ {
		if kindCount[k] == 0 {
			continue // kind absent from the graph; leave its list empty
		}
		for d, spec := range specs {
			if spec.Class == specialist[k] && spec.can(k) {
				plan.devs[k] = append(plan.devs[k], d)
			}
		}
		if len(plan.devs[k]) == 0 {
			onCPU = append(onCPU, k)
		}
	}

	// Step 2: partition the CPUs among the unassigned kinds by work share.
	var cpus []int
	for d, spec := range specs {
		if spec.Class == CPUClass {
			cpus = append(cpus, d)
		}
	}
	// MP-HT special case: when the CPUs are exactly one SMT sibling pair,
	// splitting a kind across the pair buys nothing — the same-kind
	// contention factor (~2×) cancels the parallelism — so the memory-bound
	// gathers are pinned to one thread and the compute-bound dense kinds to
	// the other, whatever the work imbalance. This is exactly the paper's
	// colocation scheme.
	if len(cpus) == 2 && len(onCPU) > 1 &&
		specs[cpus[0]].SMTSibling == cpus[1] && specs[cpus[1]].SMTSibling == cpus[0] {
		hasMem, hasCompute := false, false
		for _, k := range onCPU {
			if k == Gather {
				hasMem = true
			} else {
				hasCompute = true
			}
		}
		if hasMem && hasCompute {
			for _, k := range onCPU {
				if k == Gather {
					plan.devs[k] = append(plan.devs[k], cpus[0])
				} else {
					plan.devs[k] = append(plan.devs[k], cpus[1])
				}
			}
			onCPU = nil // assignment done
		}
		// Only one side of the memory/compute divide present: fall
		// through to the work-share partition below.
	}

	if len(cpus) > 0 && len(onCPU) > 0 {
		// Weight by work share; a degenerate all-zero-work graph falls back
		// to equal weights so the interval math below stays well-defined.
		weight := kindWork
		var totalWork float64
		for _, k := range onCPU {
			totalWork += weight[k]
		}
		if totalWork == 0 {
			for _, k := range onCPU {
				weight[k] = 1
			}
			totalWork = float64(len(onCPU))
		}
		// Each kind owns the slice of CPUs under its work-share interval
		// along [0,1). onCPU is in kind order — Gather, Interact, MLP, the
		// memory→compute spectrum — so memory-bound kinds land on the low
		// device indices and compute-bound ones on the high indices, with
		// light kinds sharing a device rather than starving. On the
		// two-thread SMT fleet with the DLRM graph this pins gathers to
		// thread 0 and interact+MLP to thread 1 — the MP-HT split.
		n := len(cpus)
		var cum float64
		for _, k := range onCPU {
			lo := int(cum / totalWork * float64(n))
			cum += weight[k]
			hi := int(cum/totalWork*float64(n) + 0.5) // round the boundary
			if lo > n-1 {
				lo = n - 1
			}
			if hi <= lo {
				hi = lo + 1
			}
			if hi > n {
				hi = n
			}
			for _, d := range cpus[lo:hi] {
				plan.devs[k] = append(plan.devs[k], d)
			}
		}
	}

	// Step 3: fall back to every capable device.
	for k := PhaseKind(0); k < NumKinds; k++ {
		if kindCount[k] == 0 || len(plan.devs[k]) > 0 {
			continue
		}
		for d, spec := range specs {
			if spec.can(k) {
				plan.devs[k] = append(plan.devs[k], d)
			}
		}
	}
	return plan
}

// pick returns kind k's next round-robin device.
func (p *affinityPlan) pick(k PhaseKind) int {
	devs := p.devs[k]
	d := devs[p.rr[k]%len(devs)]
	p.rr[k]++
	return d
}
