package hetsched

import (
	"testing"

	"dlrmsim/internal/check"
)

// allocState builds a warmed simulator state whose queues and scratch
// have reached steady-state capacity, so the measured paths exercise no
// amortized slice growth.
func allocState(t testing.TB, policy Policy) *simState {
	t.Helper()
	devs, err := NewMix("hetero")
	if err != nil {
		t.Fatal(err)
	}
	st, err := newSimState(Config{
		Graph:         testGraph(),
		Devices:       devs,
		Policy:        policy,
		MeanArrivalMs: 0.05,
		Requests:      64,
		JitterFrac:    0.2,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Park every device busy far in the future so ready() only routes and
	// enqueues, then pre-grow each pending queue past what a measurement
	// appends.
	for d := range st.specs {
		st.busy[d] = true
		st.busyEnd[d] = 1e12
		st.busyKind[d] = Gather
	}
	for i := 0; i < 1024; i++ {
		st.ready(0, 1)
	}
	// The measurements below push device timers without ever draining
	// the run loop, so settle the heap's capacity up front — in a real
	// run pops balance pushes and the warm capacity is tiny.
	if st.timers != nil {
		st.timers.Grow(4096)
	}
	for d := range st.pend {
		st.pend[d] = st.pend[d][:0]
		st.pendEstMs[d] = 0
	}
	st.steals = 0
	return st
}

// TestDispatchZeroAlloc pins the dispatch hot path — policy routing plus
// enqueue — to zero heap allocations in steady state, for every policy.
// A regression here (a per-dispatch closure, a map, a fresh slice) turns
// into GC pressure on every simulated phase.
func TestDispatchZeroAlloc(t *testing.T) {
	for _, pol := range AllPolicies {
		st := allocState(t, pol)
		i := 0
		avg := testing.AllocsPerRun(200, func() {
			st.ready(0, float64(i))
			i++
		})
		if avg != 0 {
			t.Errorf("%v: dispatch allocates %.2f objects per phase in steady state; want 0", pol, avg)
		}
	}
}

// TestLaunchZeroAlloc pins the other half of the hot path: batch
// formation and service-time computation (SMT factor + jitter draw).
// Runtime checks are disabled for the measurement — their assertion
// arguments box into interfaces, which is exactly why production runs
// keep check.Enabled off.
func TestLaunchZeroAlloc(t *testing.T) {
	st := allocState(t, Affinity)
	// Queue 300 gathers on device 0 (a CPU: batch of 1 per launch).
	for i := 0; i < 300; i++ {
		st.enqueue(0, 0, 1)
	}
	defer func(old bool) { check.Enabled = old }(check.Enabled)
	check.Enabled = false
	i := 0
	avg := testing.AllocsPerRun(200, func() {
		st.busy[0] = false
		st.maybeStart(0, 1e12+float64(i))
		i++
	})
	if avg != 0 {
		t.Errorf("batch launch allocates %.2f objects per batch in steady state; want 0", avg)
	}
}

// BenchmarkHetSched measures the full discrete-event run: 2000 requests
// of the DLRM graph over the five-device hetero fleet under EFT, the
// policy with the most per-dispatch work.
func BenchmarkHetSched(b *testing.B) {
	defer func(old bool) { check.Enabled = old }(check.Enabled)
	check.Enabled = false
	g := testGraph()
	devs, err := NewMix("hetero")
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{
		Graph:         g,
		Devices:       devs,
		Policy:        EFT,
		MeanArrivalMs: ArrivalForUtilization(g, devs, 0.7),
		Requests:      2000,
		JitterFrac:    0.2,
		Seed:          1,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
