package hetsched

import (
	"math"

	"dlrmsim/internal/check"
	"dlrmsim/internal/eventq"
	"dlrmsim/internal/serve"
	"dlrmsim/internal/stats"
)

// Config describes one heterogeneous scheduling simulation: a request
// stream of identical typed phase graphs, a fleet of devices, and a
// placement policy.
type Config struct {
	// Graph is the phase DAG every request instantiates (DLRMGraph for
	// the standard inference shape).
	Graph Graph
	// Devices is the fleet (NewMix for the named ones).
	Devices []DeviceSpec
	// Policy places ready phases onto devices.
	Policy Policy
	// MeanArrivalMs is the mean inter-arrival time of the Poisson
	// request stream.
	MeanArrivalMs float64
	// Requests is the number of requests to simulate (default 2000).
	Requests int
	// WarmupRequests are excluded from the latency metrics. 0 means
	// unset (default 5% of Requests); -1 requests explicitly zero warmup.
	WarmupRequests int
	// JitterFrac multiplies each batch's service time by exp(J·N(0,1)),
	// as in internal/serve. 0 disables jitter — and makes EFT's service
	// estimates exact.
	JitterFrac float64
	// Seed drives arrivals and jitter; every stream is derived
	// statelessly from it via stats.SplitSeed.
	Seed uint64
}

func (c *Config) applyDefaults() error {
	if err := c.Validate(); err != nil {
		return err
	}
	if c.Requests == 0 {
		c.Requests = 2000
	}
	switch {
	case c.WarmupRequests == 0:
		c.WarmupRequests = c.Requests / 20
	case c.WarmupRequests == -1:
		c.WarmupRequests = 0
	}
	return nil
}

// Result summarizes one scheduling run.
type Result struct {
	// P50, P95, P99, Mean are end-to-end request latencies in ms
	// (ready-queue wait + service across the whole phase graph),
	// post-warmup.
	P50, P95, P99, Mean float64
	// ThroughputQPS is post-warmup completed requests per second of
	// simulated time.
	ThroughputQPS float64
	// MeanPhaseWaitMs is the mean time a post-warmup phase spent between
	// becoming ready and starting service.
	MeanPhaseWaitMs float64
	// MeanBatchItems is the mean number of phases served per launch on
	// batching-capable devices (MaxBatch > 1); 0 when the fleet has none.
	MeanBatchItems float64
	// Steals counts phases moved between devices by the Steal policy
	// (both idle-device steals and enqueue-time diversions).
	Steals int
	// Util is each device class's busy time over its capacity for the
	// run (0 for classes absent from the fleet); UtilTotal is the
	// fleet-wide figure.
	Util      [NumClasses]float64
	UtilTotal float64
	// CrossKindOverlapMs is the total time SMT sibling pairs spent
	// concurrently running *different* phase kinds — the colocation the
	// paper's MP-HT scheme engineers. SameKindOverlapMs is the contended
	// complement.
	CrossKindOverlapMs, SameKindOverlapMs float64
}

// phase instance ids are req*len(Graph.Phases)+phaseIndex, int32 to keep
// the queues compact.
type simState struct {
	cfg   Config
	specs []DeviceSpec
	nPh   int
	succ  [][]int32 // graph successors, shared by every request
	plan  *affinityPlan

	// per phase instance
	depsLeft []int8
	readyAt  []float64
	doneAt   []float64

	// per request
	arrivals   []float64
	phasesLeft []int8
	finish     []float64

	// per device
	pend      [][]int32 // ready-phase FIFO (index 0 is the head)
	pendEstMs []float64 // summed service estimates of the queue (EFT)
	busy      []bool
	busyStart []float64
	busyEnd   []float64
	busyKind  []PhaseKind
	holdArmed []bool
	holdAt    []float64
	svcSeq    []uint64  // per-device jitter stream position
	devSeed   []uint64  // per-device jitter seed
	prevEnd   []float64 // invariant: device clocks are monotone
	busyMs    []float64
	timers    *eventq.Heap[devTimer] // live device events; nil = legacy scan
	devGen    []uint32               // per-device timer generation (stale-entry filter)
	batchOf   [][]int32              // each device's in-flight batch members
	doneBatch []int32                // completion scratch: batchOf may be re-launched
	// (and its backing array reused) by the dispatches a completion
	// triggers, so the finished members are copied out first.

	steals               int
	batches, batchItems  int // launches/items on MaxBatch>1 devices
	waitSumMs            float64
	waitCount            int
	crossOverlap         float64
	sameOverlap          float64
	completed, postCount int
	lastFinish           float64
}

const (
	seedArrivals = 0x8E7A1
	seedJitter   = 0x8E7B3
)

func newSimState(cfg Config) (*simState, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	nPh := len(cfg.Graph.Phases)
	nDev := len(cfg.Devices)
	st := &simState{
		cfg:   cfg,
		specs: cfg.Devices,
		nPh:   nPh,
		plan:  buildAffinity(cfg.Devices, cfg.Graph),

		depsLeft: make([]int8, cfg.Requests*nPh),
		readyAt:  make([]float64, cfg.Requests*nPh),
		doneAt:   make([]float64, cfg.Requests*nPh),

		arrivals:   make([]float64, cfg.Requests),
		phasesLeft: make([]int8, cfg.Requests),
		finish:     make([]float64, cfg.Requests),

		pend:      make([][]int32, nDev),
		pendEstMs: make([]float64, nDev),
		busy:      make([]bool, nDev),
		busyStart: make([]float64, nDev),
		busyEnd:   make([]float64, nDev),
		busyKind:  make([]PhaseKind, nDev),
		holdArmed: make([]bool, nDev),
		holdAt:    make([]float64, nDev),
		svcSeq:    make([]uint64, nDev),
		devSeed:   make([]uint64, nDev),
		prevEnd:   make([]float64, nDev),
		busyMs:    make([]float64, nDev),
		timers:    newDevTimers(eventBackend, nDev),
		devGen:    make([]uint32, nDev),
		batchOf:   make([][]int32, nDev),
	}
	st.succ = make([][]int32, nPh)
	maxBatch := 1
	for d, spec := range cfg.Devices {
		st.devSeed[d] = stats.SplitSeed(cfg.Seed^seedJitter, uint64(d))
		st.batchOf[d] = make([]int32, 0, spec.maxBatch())
		if mb := spec.maxBatch(); mb > maxBatch {
			maxBatch = mb
		}
	}
	st.doneBatch = make([]int32, 0, maxBatch)
	for i, p := range cfg.Graph.Phases {
		for _, dep := range p.Deps {
			st.succ[dep] = append(st.succ[dep], int32(i))
		}
	}
	arr := stats.NewRNG(stats.SplitSeed(cfg.Seed^seedArrivals, 0))
	var now float64
	for q := 0; q < cfg.Requests; q++ {
		now += arr.ExpFloat64() * cfg.MeanArrivalMs
		st.arrivals[q] = now
		st.phasesLeft[q] = int8(nPh)
		for i, p := range cfg.Graph.Phases {
			st.depsLeft[q*nPh+i] = int8(len(p.Deps))
		}
	}
	return st, nil
}

// estSvcMs is the policy-side service estimate for one phase on one
// device: the marginal cost plus the fixed cost amortized over a full
// batch. Deliberately optimistic and deliberately incomplete: it assumes
// every batch fills (a lone phase on a MaxBatch-32 device really pays
// the whole launch cost), knows nothing about SMT sibling contention,
// and nothing about the jitter a service draw will actually see — those
// blind spots are what the other policies exploit.
func (st *simState) estSvcMs(d int, k PhaseKind, workUs float64) float64 {
	spec := &st.specs[d]
	return (spec.FixedUs[k]/float64(spec.maxBatch()) + spec.Speed[k]*workUs) / 1e3
}

// ready dispatches one just-ready phase instance per the policy and
// launches the chosen device if it can start. Hot path: zero allocations
// in steady state (guarded by TestDispatchZeroAlloc).
func (st *simState) ready(p int32, t float64) {
	st.readyAt[p] = t
	k := st.cfg.Graph.Phases[int(p)%st.nPh].Kind
	workUs := st.cfg.Graph.Phases[int(p)%st.nPh].WorkUs
	var d int
	switch st.cfg.Policy {
	case EFT:
		best := math.Inf(1)
		d = -1
		for e := range st.specs {
			if !st.specs[e].can(k) {
				continue
			}
			free := t
			if st.busy[e] {
				free = st.busyEnd[e]
			}
			est := free + st.pendEstMs[e] + st.estSvcMs(e, k, workUs)
			if est < best {
				best, d = est, e
			}
		}
	case Steal:
		d = st.plan.pick(k)
		if st.busy[d] || len(st.pend[d]) > 0 {
			// Divert to an idle device with an empty queue that can run
			// the phase — work sharing before the queue even forms.
			for e := range st.specs {
				if e != d && !st.busy[e] && len(st.pend[e]) == 0 && st.specs[e].can(k) {
					d = e
					st.steals++
					break
				}
			}
		}
	default: // Affinity
		d = st.plan.pick(k)
	}
	st.enqueue(d, p, t)
}

func (st *simState) enqueue(d int, p int32, t float64) {
	st.pend[d] = append(st.pend[d], p)
	ph := &st.cfg.Graph.Phases[int(p)%st.nPh]
	st.pendEstMs[d] += st.estSvcMs(d, ph.Kind, ph.WorkUs)
	if !st.busy[d] {
		st.maybeStart(d, t)
	}
}

// maybeStart launches a batch on an idle device, or arms the batching
// hold window when the device prefers to wait for a fuller batch.
func (st *simState) maybeStart(d int, t float64) {
	if st.busy[d] || len(st.pend[d]) == 0 {
		return
	}
	spec := &st.specs[d]
	mb := spec.maxBatch()
	q := st.pend[d]
	k := st.cfg.Graph.Phases[int(q[0])%st.nPh].Kind
	n := 0
	for _, p := range q {
		if st.cfg.Graph.Phases[int(p)%st.nPh].Kind == k {
			n++
			if n == mb {
				break
			}
		}
	}
	if n < mb && spec.HoldUs > 0 {
		// Wait for the window measured from the oldest pending phase.
		deadline := st.readyAt[q[0]] + spec.HoldUs/1e3
		if t < deadline {
			st.holdArmed[d] = true
			st.holdAt[d] = deadline
			st.timerSet(d, deadline)
			return
		}
	}
	st.holdArmed[d] = false
	st.startBatch(d, t, k, n)
}

// startBatch pulls the first n kind-k phases off d's queue and serves
// them as one batch.
func (st *simState) startBatch(d int, t float64, k PhaseKind, n int) {
	spec := &st.specs[d]
	batch := st.batchOf[d][:0]
	q := st.pend[d]
	w := 0 // write cursor for the phases left behind
	svcUs := spec.FixedUs[k]
	for _, p := range q {
		ph := &st.cfg.Graph.Phases[int(p)%st.nPh]
		if len(batch) < n && ph.Kind == k {
			batch = append(batch, p)
			svcUs += spec.Speed[k] * ph.WorkUs
			st.pendEstMs[d] -= st.estSvcMs(d, ph.Kind, ph.WorkUs)
			if check.Enabled {
				check.Assert(st.depsLeft[p] == 0 && st.readyAt[p] <= t,
					"hetsched: phase %d started at %g before ready (deps %d, ready %g)",
					p, t, st.depsLeft[p], st.readyAt[p])
			}
			req := int(p) / st.nPh
			if req >= st.cfg.WarmupRequests {
				st.waitSumMs += t - st.readyAt[p]
				st.waitCount++
			}
			continue
		}
		q[w] = p
		w++
	}
	st.pend[d] = q[:w]
	st.batchOf[d] = batch
	if w == 0 {
		st.pendEstMs[d] = 0 // clamp float drift on empty queues
	}

	// SMT contention: the factor is fixed at launch from what the
	// sibling thread is running right now — an approximation (the
	// sibling may finish mid-batch), but a deterministic one.
	factor := 1.0
	if s := spec.SMTSibling; s >= 0 && st.busy[s] && st.busyEnd[s] > t {
		same, cross := spec.smtFactors()
		if st.busyKind[s] == k {
			factor = same
		} else {
			factor = cross
		}
	}
	svcMs := svcUs / 1e3 * factor
	if st.cfg.JitterFrac > 0 {
		j := stats.SeededRNG(stats.SplitSeed(st.devSeed[d], st.svcSeq[d]))
		svcMs *= serve.Jitter(st.cfg.JitterFrac, j.NormFloat64())
	}
	st.svcSeq[d]++

	if check.Enabled {
		check.Assert(t >= st.prevEnd[d] && !math.IsNaN(svcMs),
			"hetsched: device %d clock moved backwards (start %g before end %g)", d, t, st.prevEnd[d])
	}
	st.busy[d] = true
	st.busyStart[d] = t
	st.busyEnd[d] = t + svcMs
	st.timerSet(d, st.busyEnd[d])
	st.busyKind[d] = k
	st.prevEnd[d] = t + svcMs
	st.busyMs[d] += svcMs
	if spec.maxBatch() > 1 {
		st.batches++
		st.batchItems += len(batch)
	}
	// Overlap accounting against the sibling's in-flight batch.
	if s := spec.SMTSibling; s >= 0 && st.busy[s] && s != d {
		if ov := math.Min(st.busyEnd[s], st.busyEnd[d]) - t; ov > 0 {
			if st.busyKind[s] == k {
				st.sameOverlap += ov
			} else {
				st.crossOverlap += ov
			}
		}
	}
}

// complete finishes device d's in-flight batch: phases are marked done,
// successors that become ready are dispatched, and the device looks for
// its next batch (stealing one if the policy allows).
func (st *simState) complete(d int, t float64) {
	st.busy[d] = false
	st.timerClear(d)
	st.doneBatch = append(st.doneBatch[:0], st.batchOf[d]...)
	st.batchOf[d] = st.batchOf[d][:0]
	for _, p := range st.doneBatch {
		st.finishPhase(p, t)
	}
	st.maybeStart(d, t)
	if st.cfg.Policy == Steal && !st.busy[d] && len(st.pend[d]) == 0 {
		if st.stealInto(d) {
			st.steals++
			st.maybeStart(d, t)
		}
	}
}

func (st *simState) finishPhase(p int32, t float64) {
	st.doneAt[p] = t
	req := int(p) / st.nPh
	base := req * st.nPh
	for _, s := range st.succ[int(p)%st.nPh] {
		st.depsLeft[base+int(s)]--
		if check.Enabled {
			check.Assert(st.depsLeft[base+int(s)] >= 0,
				"hetsched: phase %d dependency count went negative", base+int(s))
		}
		if st.depsLeft[base+int(s)] == 0 {
			st.ready(int32(base+int(s)), t)
		}
	}
	st.phasesLeft[req]--
	if st.phasesLeft[req] == 0 {
		st.finish[req] = t
		st.completed++
		if t > st.lastFinish {
			st.lastFinish = t
		}
	}
}

// stealInto moves the oldest compatible phase from the most backlogged
// queue onto idle device d. Returns false when nothing stealable exists.
func (st *simState) stealInto(d int) bool {
	src, best := -1, 0
	for e := range st.specs {
		if e != d && len(st.pend[e]) > best {
			src, best = e, len(st.pend[e])
		}
	}
	if src < 0 {
		return false
	}
	q := st.pend[src]
	for i, p := range q {
		ph := &st.cfg.Graph.Phases[int(p)%st.nPh]
		if !st.specs[d].can(ph.Kind) {
			continue
		}
		copy(q[i:], q[i+1:])
		st.pend[src] = q[:len(q)-1]
		est := st.estSvcMs(src, ph.Kind, ph.WorkUs)
		st.pendEstMs[src] -= est
		st.pend[d] = append(st.pend[d], p)
		st.pendEstMs[d] += st.estSvcMs(d, ph.Kind, ph.WorkUs)
		return true
	}
	return false
}

// run processes arrivals and device events in global time order.
func (st *simState) run() {
	next := 0 // next arrival index
	for {
		// Earliest device event: a batch completion or a hold deadline.
		// Both backends realize the same total order — (time, device
		// index), lowest index winning ties.
		tE := math.Inf(1)
		dev := -1
		if st.timers != nil {
			if t, d := st.nextTimer(); d >= 0 {
				tE, dev = t, d
				if check.Enabled {
					live := st.busy[d] && tE == st.busyEnd[d] ||
						!st.busy[d] && st.holdArmed[d] && tE == st.holdAt[d]
					check.Assert(live, "hetsched: timer (t %g, dev %d) does not match device state", tE, d)
				}
			}
		} else {
			for d := range st.specs {
				var cand float64
				switch {
				case st.busy[d]:
					cand = st.busyEnd[d]
				case st.holdArmed[d]:
					cand = st.holdAt[d]
				default:
					continue
				}
				if cand < tE {
					tE, dev = cand, d
				}
			}
		}
		tA := math.Inf(1)
		if next < len(st.arrivals) {
			tA = st.arrivals[next]
		}
		switch {
		case dev < 0 && math.IsInf(tA, 1):
			return
		case tA <= tE:
			base := next * st.nPh
			for i := range st.cfg.Graph.Phases {
				if st.depsLeft[base+i] == 0 {
					st.ready(int32(base+i), tA)
				}
			}
			next++
		case st.busy[dev]:
			st.complete(dev, tE)
		default: // hold window expired: launch with what is queued
			st.holdArmed[dev] = false
			st.timerClear(dev)
			q := st.pend[dev]
			if len(q) > 0 {
				k := st.cfg.Graph.Phases[int(q[0])%st.nPh].Kind
				n := 0
				mb := st.specs[dev].maxBatch()
				for _, p := range q {
					if st.cfg.Graph.Phases[int(p)%st.nPh].Kind == k {
						n++
						if n == mb {
							break
						}
					}
				}
				st.startBatch(dev, tE, k, n)
			}
		}
	}
}

// Simulate runs the discrete-event heterogeneous scheduling simulation:
// Poisson request arrivals, each request an instance of the typed phase
// graph; ready phases are routed by the policy, served in batches per
// device, and a request completes when its last phase does.
//
// The arrival stream and each device's jitter stream are pure functions
// of (Seed, index) via stats.SplitSeed, and the event loop is
// single-threaded with total-order tie-breaking (arrivals before device
// events at equal times, lowest device index first), so the result is a
// pure function of the config — byte-identical at any -workers when run
// under the experiment runner.
func Simulate(cfg Config) (Result, error) {
	st, err := newSimState(cfg)
	if err != nil {
		return Result{}, err
	}
	st.run()
	return st.result(), nil
}

func (st *simState) result() Result {
	cfg := st.cfg
	if check.Enabled {
		for q, left := range st.phasesLeft {
			check.Assert(left == 0, "hetsched: request %d ended with %d phases incomplete", q, left)
		}
	}
	lat := make([]float64, 0, cfg.Requests-cfg.WarmupRequests)
	for q := cfg.WarmupRequests; q < cfg.Requests; q++ {
		lat = append(lat, st.finish[q]-st.arrivals[q])
	}
	pct := stats.Percentiles(lat, 0.50, 0.95, 0.99)
	res := Result{
		P50:                pct[0],
		P95:                pct[1],
		P99:                pct[2],
		Mean:               stats.Mean(lat),
		Steals:             st.steals,
		CrossKindOverlapMs: st.crossOverlap,
		SameKindOverlapMs:  st.sameOverlap,
	}
	if span := st.lastFinish - st.arrivals[cfg.WarmupRequests]; span > 0 {
		res.ThroughputQPS = float64(len(lat)) / span * 1e3
	}
	if st.waitCount > 0 {
		res.MeanPhaseWaitMs = st.waitSumMs / float64(st.waitCount)
	}
	if st.batches > 0 {
		res.MeanBatchItems = float64(st.batchItems) / float64(st.batches)
	}
	var classBusy [NumClasses]float64
	var classDevs [NumClasses]int
	var totalBusy float64
	for d, spec := range st.specs {
		classBusy[spec.Class] += st.busyMs[d]
		classDevs[spec.Class]++
		totalBusy += st.busyMs[d]
	}
	if st.lastFinish > 0 {
		for c := 0; c < NumClasses; c++ {
			if classDevs[c] > 0 {
				res.Util[c] = classBusy[c] / (st.lastFinish * float64(classDevs[c]))
			}
		}
		res.UtilTotal = totalBusy / (st.lastFinish * float64(len(st.specs)))
	}
	if check.Enabled {
		check.Assert(check.Finite(res.P50) && check.Finite(res.P99) && check.Finite(res.Mean) && check.Finite(res.UtilTotal),
			"hetsched: non-finite summary (p50 %g, p99 %g, mean %g, util %g)",
			res.P50, res.P99, res.Mean, res.UtilTotal)
	}
	return res
}

// PerRequestDemandMs estimates the mean fleet work one request generates
// under affinity placement — each phase charged at its affinity subset's
// first device, with the fixed cost amortized over a full batch. A
// sizing heuristic for choosing arrival rates, same role as
// cluster.ArrivalForUtilization.
func PerRequestDemandMs(g Graph, specs []DeviceSpec) float64 {
	plan := buildAffinity(specs, g)
	var sum float64
	for _, p := range g.Phases {
		devs := plan.devs[p.Kind]
		if len(devs) == 0 {
			continue
		}
		spec := &specs[devs[0]]
		sum += (spec.FixedUs[p.Kind]/float64(spec.maxBatch()) + spec.Speed[p.Kind]*p.WorkUs) / 1e3
	}
	return sum
}

// ArrivalForUtilization returns the mean request inter-arrival time that
// loads the fleet to the given utilization under the demand estimate.
func ArrivalForUtilization(g Graph, specs []DeviceSpec, util float64) float64 {
	if util <= 0 {
		util = 0.5
	}
	return PerRequestDemandMs(g, specs) / (float64(len(specs)) * util)
}
