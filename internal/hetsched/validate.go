package hetsched

import (
	"errors"
	"fmt"
)

// Validate reports every problem with the config at once (collect-all,
// like the cluster and trace tiers): graph structure, per-device specs,
// policy range, and the stream parameters. Zero-valued fields that have
// defaults (Requests, WarmupRequests, Seed) are not errors.
func (c Config) Validate() error {
	var errs []error
	if err := c.Graph.Validate(); err != nil {
		errs = append(errs, err)
	}
	if len(c.Devices) == 0 {
		errs = append(errs, fmt.Errorf("hetsched: fleet has no devices"))
	}
	for i, d := range c.Devices {
		if err := d.validate(i, len(c.Devices)); err != nil {
			errs = append(errs, err)
		}
	}
	// Every kind present in the graph must have at least one capable
	// device, or requests can never complete. Presence is by phase count:
	// a zero-work phase still needs somewhere to run.
	kindCount := c.Graph.KindCounts()
	for k := PhaseKind(0); k < NumKinds; k++ {
		if kindCount[k] == 0 {
			continue
		}
		capable := false
		for _, d := range c.Devices {
			if d.can(k) {
				capable = true
				break
			}
		}
		if !capable {
			errs = append(errs, fmt.Errorf("hetsched: graph has %s work but no device can run it", k))
		}
	}
	if c.Policy >= numPolicies {
		errs = append(errs, fmt.Errorf("hetsched: invalid policy %d", c.Policy))
	}
	if c.MeanArrivalMs <= 0 {
		errs = append(errs, fmt.Errorf("hetsched: mean arrival %g ms must be positive", c.MeanArrivalMs))
	}
	if c.Requests < 0 {
		errs = append(errs, fmt.Errorf("hetsched: negative request count %d", c.Requests))
	}
	if c.WarmupRequests < -1 {
		errs = append(errs, fmt.Errorf("hetsched: warmup %d must be ≥ -1 (-1 means explicitly zero)", c.WarmupRequests))
	}
	reqs := c.Requests
	if reqs == 0 {
		reqs = 2000
	}
	if c.WarmupRequests > 0 && c.WarmupRequests >= reqs {
		errs = append(errs, fmt.Errorf("hetsched: warmup %d leaves no measured requests (of %d)", c.WarmupRequests, reqs))
	}
	if c.JitterFrac < 0 || c.JitterFrac > 2 {
		errs = append(errs, fmt.Errorf("hetsched: jitter fraction %g outside [0, 2]", c.JitterFrac))
	}
	return errors.Join(errs...)
}
