package hetsched

import "testing"

// TestEventBackendsByteIdentical pins that the heap-backed device-timer
// queue and the legacy linear scan produce identical Results across
// every mix and policy, including batching fleets where hold-window
// timers are armed, re-armed, and cancelled. The (time, device index)
// order is the contract; the backend must be invisible.
func TestEventBackendsByteIdentical(t *testing.T) {
	g := testGraph()
	configs := make([]Config, 0, len(Mixes)*len(AllPolicies))
	for _, mix := range Mixes {
		devs, err := NewMix(mix)
		if err != nil {
			t.Fatal(err)
		}
		for _, pol := range AllPolicies {
			configs = append(configs, Config{
				Graph:         g,
				Devices:       devs,
				Policy:        pol,
				MeanArrivalMs: ArrivalForUtilization(g, devs, 0.75),
				Requests:      400,
				JitterFrac:    0.2,
				Seed:          7,
			})
		}
	}
	for _, cfg := range configs {
		var results []Result
		for _, b := range []EventBackend{BackendDefault, BackendScan, BackendHeap} {
			restore := SetEventBackend(b)
			res, err := Simulate(cfg)
			restore()
			if err != nil {
				t.Fatal(err)
			}
			results = append(results, res)
		}
		for i := 1; i < len(results); i++ {
			if results[i] != results[0] {
				t.Fatalf("policy %v: backend %d diverges:\n%+v\n%+v",
					cfg.Policy, i, results[0], results[i])
			}
		}
	}
}
