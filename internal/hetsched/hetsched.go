// Package hetsched is a heterogeneous multi-phase scheduling laboratory —
// the generalization of the paper's MP-HT trick. The paper colocates a
// memory-bound phase (embedding gather) with a compute-bound phase (MLP)
// on sibling SMT threads; that is a two-device special case of a broader
// question: given requests that are *typed phase graphs* (gather →
// interaction → MLP, with per-phase dependencies) and a fleet of
// heterogeneous device classes, which placement policy wins where?
//
// The package models three device classes:
//
//   - CPU cores, calibrated from the single-node timing simulator (phase
//     work is expressed in CPU-µs, derived from cluster.TimingFromReport's
//     per-lookup and dense-stage costs), optionally paired into SMT
//     siblings with a same-kind contention penalty — running two
//     memory-bound phases on one physical core contends for the load
//     ports, while a memory+compute mix barely does (the paper's Fig. 11
//     insight);
//   - a GPU-like high-throughput device with batching economics — a fixed
//     per-batch launch cost plus a small per-item marginal cost, so large
//     batches amortize the launch and a lone phase is expensive; and
//   - a PIM-like in-memory device (UpDLRM-style) that serves gathers at
//     near-DRAM-bank bandwidth but cannot run MLPs at all.
//
// Three placement policies route ready phases to devices: static
// phase-affinity routing, earliest-finish-time dispatch, and affinity
// with idle-device work stealing. On a two-thread SMT fleet the affinity
// policy degenerates to exactly the paper's MP-HT colocation.
//
// Everything is a deterministic discrete-event simulation: all randomness
// is derived statelessly from Config.Seed via stats.SplitSeed, so results
// are bit-identical regardless of worker count or scheduling order — the
// same contract the experiment runner's -workers guarantee rests on.
package hetsched

import (
	"errors"
	"fmt"
)

// PhaseKind types the work a phase performs; the scheduler routes on it.
type PhaseKind uint8

const (
	// Gather is the memory-bound embedding-lookup phase.
	Gather PhaseKind = iota
	// Interact is the feature-interaction phase (pairwise dots, concat).
	Interact
	// MLP is a compute-bound dense phase (bottom or top MLP).
	MLP

	// NumKinds bounds PhaseKind for capability masks and cost tables.
	NumKinds = 3
)

func (k PhaseKind) String() string {
	switch k {
	case Gather:
		return "gather"
	case Interact:
		return "interact"
	case MLP:
		return "mlp"
	}
	return fmt.Sprintf("PhaseKind(%d)", uint8(k))
}

// Phase is one node of a request's typed phase graph.
type Phase struct {
	// Kind selects the capability/cost row on every device.
	Kind PhaseKind
	// WorkUs is the phase's work in CPU-microseconds: the time a lone
	// reference CPU core takes to run it. Devices scale it by their
	// per-kind speed factor.
	WorkUs float64
	// Deps are indices (into Graph.Phases) of phases that must complete
	// before this one may start.
	Deps []int
}

// Graph is a typed phase DAG; every request instantiates one copy.
type Graph struct {
	Phases []Phase
}

// Validate reports every structural violation at once: empty graphs,
// out-of-range or self dependencies, invalid kinds, negative work, and
// cycles (via Kahn's algorithm). A graph that validates is schedulable:
// repeatedly completing ready phases reaches every phase.
func (g Graph) Validate() error {
	var errs []error
	if len(g.Phases) == 0 {
		errs = append(errs, fmt.Errorf("hetsched: empty phase graph"))
	}
	for i, p := range g.Phases {
		if p.Kind >= NumKinds {
			errs = append(errs, fmt.Errorf("hetsched: phase %d has invalid kind %d", i, p.Kind))
		}
		if p.WorkUs < 0 {
			errs = append(errs, fmt.Errorf("hetsched: phase %d has negative work %g", i, p.WorkUs))
		}
		for _, d := range p.Deps {
			if d < 0 || d >= len(g.Phases) {
				errs = append(errs, fmt.Errorf("hetsched: phase %d depends on out-of-range phase %d", i, d))
			} else if d == i {
				errs = append(errs, fmt.Errorf("hetsched: phase %d depends on itself", i))
			}
		}
	}
	if len(errs) == 0 {
		if !g.acyclic() {
			errs = append(errs, fmt.Errorf("hetsched: phase graph has a dependency cycle"))
		}
	}
	return errors.Join(errs...)
}

// acyclic runs Kahn's algorithm; it assumes deps are in range.
func (g Graph) acyclic() bool {
	n := len(g.Phases)
	indeg := make([]int, n)
	succ := make([][]int, n)
	for i, p := range g.Phases {
		for _, d := range p.Deps {
			succ[d] = append(succ[d], i)
			indeg[i]++
		}
	}
	queue := make([]int, 0, n)
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	done := 0
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		done++
		for _, s := range succ[v] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	return done == n
}

// TotalWorkUs sums the graph's work across phases.
func (g Graph) TotalWorkUs() float64 {
	var sum float64
	for _, p := range g.Phases {
		sum += p.WorkUs
	}
	return sum
}

// KindWorkUs sums the graph's work per phase kind.
func (g Graph) KindWorkUs() [NumKinds]float64 {
	var w [NumKinds]float64
	for _, p := range g.Phases {
		if p.Kind < NumKinds {
			w[p.Kind] += p.WorkUs
		}
	}
	return w
}

// KindCounts tallies the graph's phases per kind. Presence checks must
// use counts, not work: a zero-work phase still needs a capable device.
func (g Graph) KindCounts() [NumKinds]int {
	var n [NumKinds]int
	for _, p := range g.Phases {
		if p.Kind < NumKinds {
			n[p.Kind]++
		}
	}
	return n
}

// DLRMGraph builds the standard DLRM inference phase graph from per-phase
// CPU costs: the embedding gather and the bottom MLP are independent
// roots, the interaction joins them, and the top MLP consumes the
// interaction — the dependency structure every DLRM paper draws.
//
//	0 gather ─┐
//	          ├→ 2 interact → 3 top MLP
//	1 bottom ─┘
//
// gatherUs is the full embedding-stage cost of one request on the
// reference CPU; denseUs is the dense-stage remainder, split 25% bottom
// MLP, 15% interaction, 60% top MLP (the paper's Fig. 1 proportions for
// the RM2 family).
func DLRMGraph(gatherUs, denseUs float64) Graph {
	return Graph{Phases: []Phase{
		{Kind: Gather, WorkUs: gatherUs},
		{Kind: MLP, WorkUs: 0.25 * denseUs},
		{Kind: Interact, WorkUs: 0.15 * denseUs, Deps: []int{0, 1}},
		{Kind: MLP, WorkUs: 0.60 * denseUs, Deps: []int{2}},
	}}
}
