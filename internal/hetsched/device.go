package hetsched

import (
	"errors"
	"fmt"
	"strings"
)

// DeviceClass is the coarse hardware family a device belongs to; the
// affinity policy and the per-class utilization report route on it.
type DeviceClass uint8

const (
	// CPUClass is a general-purpose core: runs every phase kind at the
	// reference speed (phase work is calibrated in CPU-µs).
	CPUClass DeviceClass = iota
	// GPUClass is a high-throughput batching device: a fixed per-batch
	// launch cost plus a small per-item marginal cost, so large batches
	// amortize the launch and a lone phase is expensive.
	GPUClass
	// PIMClass is an in-memory gather engine (UpDLRM-style): near-bank
	// bandwidth for embedding gathers, incapable of dense phases.
	PIMClass

	// NumClasses bounds DeviceClass for per-class accounting.
	NumClasses = 3
)

func (c DeviceClass) String() string {
	switch c {
	case CPUClass:
		return "cpu"
	case GPUClass:
		return "gpu"
	case PIMClass:
		return "pim"
	}
	return fmt.Sprintf("DeviceClass(%d)", uint8(c))
}

// DeviceSpec describes one device of the fleet. The service time of a
// batch B of same-kind phases is
//
//	FixedUs[kind] + Σ_{p∈B} Speed[kind]·p.WorkUs
//
// stretched by the SMT contention factor and the lognormal jitter draw.
// Speed[k] == 0 means the device cannot run kind k at all.
type DeviceSpec struct {
	// Class selects the hardware family (affects affinity and reporting).
	Class DeviceClass
	// Name labels the device in traces and errors ("cpu0", "gpu0"…).
	// Assigned by Fleet construction when empty.
	Name string
	// Speed[k] is the time multiplier versus the reference CPU for kind
	// k: 1 = CPU speed, 0.25 = 4× faster, 0 = incapable.
	Speed [NumKinds]float64
	// FixedUs[k] is the per-batch fixed cost for kind k (dispatch,
	// kernel launch, DMA setup). Charged once per batch, so MaxBatch > 1
	// amortizes it.
	FixedUs [NumKinds]float64
	// MaxBatch is the largest number of same-kind phases served in one
	// batch (0 or 1 = no batching).
	MaxBatch int
	// HoldUs is the batching window: a device whose queue holds fewer
	// than MaxBatch phases waits up to HoldUs after the first enqueue
	// before launching, trading latency for amortization. 0 launches
	// immediately with whatever is queued ("natural" batching only).
	HoldUs float64
	// SMTSibling is the index of this device's SMT sibling thread in the
	// fleet, or -1 when the device is a full core/device of its own.
	// Siblings contend: a phase starting while the sibling is mid-phase
	// runs slower by SMTSameKind (both phases the same kind — fighting
	// over one port) or SMTCrossKind (a memory+compute mix — the paper's
	// MP-HT colocation regime, nearly free).
	SMTSibling int
	// SMTSameKind and SMTCrossKind are the contention multipliers
	// (≥ 1; 0 means "default": 2.0 same-kind, 1.08 cross-kind — the
	// paper's SMT asymmetry between like and unlike phase pairs).
	SMTSameKind, SMTCrossKind float64
}

// Default SMT contention factors: two copies of the same phase kind on
// one physical core fight over the same resource — gathers thrash the
// shared load ports and fill buffers, MLPs the FMA units — and each runs
// about half speed, so colocating likes buys nothing; a memory-bound +
// compute-bound mix barely contends. That asymmetry is the entire reason
// MP-HT colocation works.
const (
	defaultSMTSameKind  = 2.0
	defaultSMTCrossKind = 1.08
)

func (d DeviceSpec) can(k PhaseKind) bool { return d.Speed[k] > 0 }

func (d DeviceSpec) maxBatch() int {
	if d.MaxBatch < 1 {
		return 1
	}
	return d.MaxBatch
}

func (d DeviceSpec) smtFactors() (same, cross float64) {
	same, cross = d.SMTSameKind, d.SMTCrossKind
	if same == 0 {
		same = defaultSMTSameKind
	}
	if cross == 0 {
		cross = defaultSMTCrossKind
	}
	return same, cross
}

// validate reports every violation of one device spec (collect-all).
func (d DeviceSpec) validate(i, fleet int) error {
	var errs []error
	if d.Class >= NumClasses {
		errs = append(errs, fmt.Errorf("hetsched: device %d has invalid class %d", i, d.Class))
	}
	capable := false
	for k := 0; k < NumKinds; k++ {
		if d.Speed[k] < 0 {
			errs = append(errs, fmt.Errorf("hetsched: device %d has negative %s speed %g", i, PhaseKind(k), d.Speed[k]))
		}
		if d.FixedUs[k] < 0 {
			errs = append(errs, fmt.Errorf("hetsched: device %d has negative %s fixed cost %g", i, PhaseKind(k), d.FixedUs[k]))
		}
		if d.Speed[k] > 0 {
			capable = true
		}
	}
	if !capable {
		errs = append(errs, fmt.Errorf("hetsched: device %d can run no phase kind", i))
	}
	if d.MaxBatch < 0 {
		errs = append(errs, fmt.Errorf("hetsched: device %d has negative max batch %d", i, d.MaxBatch))
	}
	if d.HoldUs < 0 {
		errs = append(errs, fmt.Errorf("hetsched: device %d has negative hold window %g", i, d.HoldUs))
	}
	if d.HoldUs > 0 && d.maxBatch() == 1 {
		errs = append(errs, fmt.Errorf("hetsched: device %d holds %g µs for batches but MaxBatch is 1", i, d.HoldUs))
	}
	if d.SMTSibling < -1 || d.SMTSibling >= fleet {
		errs = append(errs, fmt.Errorf("hetsched: device %d SMT sibling %d out of range", i, d.SMTSibling))
	} else if d.SMTSibling == i {
		errs = append(errs, fmt.Errorf("hetsched: device %d is its own SMT sibling", i))
	}
	if d.SMTSameKind < 0 || (d.SMTSameKind > 0 && d.SMTSameKind < 1) {
		errs = append(errs, fmt.Errorf("hetsched: device %d SMT same-kind factor %g < 1", i, d.SMTSameKind))
	}
	if d.SMTCrossKind < 0 || (d.SMTCrossKind > 0 && d.SMTCrossKind < 1) {
		errs = append(errs, fmt.Errorf("hetsched: device %d SMT cross-kind factor %g < 1", i, d.SMTCrossKind))
	}
	return errors.Join(errs...)
}

// CPUDevice is a reference core: every kind at speed 1, a small fixed
// dispatch cost, no batching.
func CPUDevice() DeviceSpec {
	return DeviceSpec{
		Class:      CPUClass,
		Speed:      [NumKinds]float64{Gather: 1, Interact: 1, MLP: 1},
		FixedUs:    [NumKinds]float64{Gather: 2, Interact: 2, MLP: 2},
		SMTSibling: -1,
	}
}

// GPUDevice is the high-throughput batching device, parameterized off
// Jain et al.'s GPU inference-envelope observations: dense phases run
// ~8× the CPU's speed and interactions ~2×, but every batch pays a
// ~35 µs launch+transfer cost, so throughput comes from amortization.
// Gathers run at 0.9 — the GPU *can* gather, but host-side rows arrive
// over the interconnect, so it is no faster than the CPU and far worse
// than PIM.
func GPUDevice() DeviceSpec {
	return DeviceSpec{
		Class:      GPUClass,
		Speed:      [NumKinds]float64{Gather: 0.9, Interact: 0.5, MLP: 0.125},
		FixedUs:    [NumKinds]float64{Gather: 35, Interact: 35, MLP: 35},
		MaxBatch:   32,
		SMTSibling: -1,
	}
}

// PIMDevice is the in-memory gather engine, parameterized off UpDLRM's
// real-world UPMEM measurements: embedding gathers at ~4× effective
// DRAM bandwidth (near-bank parallelism), a tiny per-command cost, and
// no dense capability at all — the MLP speed is 0, which the policies
// must respect.
func PIMDevice() DeviceSpec {
	return DeviceSpec{
		Class:      PIMClass,
		Speed:      [NumKinds]float64{Gather: 0.25},
		FixedUs:    [NumKinds]float64{Gather: 3},
		SMTSibling: -1,
	}
}

// LittleCPUDevice is an efficiency core: the full capability set of a
// CPU at a third of the speed. Fleets mixing big and little cores are
// where speed-blind placement (static affinity, greedy stealing) pays
// for mispricing: a heavy MLP on a little core takes 3× as long as
// queueing briefly for a big one.
func LittleCPUDevice() DeviceSpec {
	d := CPUDevice()
	for k := range d.Speed {
		d.Speed[k] = 3
	}
	return d
}

// SMTPair returns two CPU threads sharing one physical core: each is a
// full-speed CPU device, but concurrent same-kind phases contend (the
// defaultSMT* factors). Affinity routing on exactly this fleet *is* the
// paper's MP-HT colocation.
func SMTPair() []DeviceSpec {
	t0, t1 := CPUDevice(), CPUDevice()
	t0.SMTSibling, t1.SMTSibling = 1, 0
	return []DeviceSpec{t0, t1}
}

// Mixes are the named fleets the CLI and the experiments sweep.
//
//	cpu1      one CPU core (the serial reference)
//	smt2      two SMT sibling threads on one core — the MP-HT special case
//	cpu4      four independent CPU cores
//	biglittle two full-speed cores + two 3×-slower efficiency cores
//	cpu2gpu1  two CPU cores + one batching GPU
//	hetero    two CPU cores + one GPU + two PIM gather engines
var Mixes = []string{"cpu1", "smt2", "cpu4", "biglittle", "cpu2gpu1", "hetero"}

// NewMix builds one of the named fleets. Device names are assigned
// class-indexed ("cpu0", "gpu0", "pim1").
func NewMix(name string) ([]DeviceSpec, error) {
	var specs []DeviceSpec
	switch name {
	case "cpu1":
		specs = []DeviceSpec{CPUDevice()}
	case "smt2":
		specs = SMTPair()
	case "cpu4":
		specs = []DeviceSpec{CPUDevice(), CPUDevice(), CPUDevice(), CPUDevice()}
	case "biglittle":
		specs = []DeviceSpec{CPUDevice(), CPUDevice(), LittleCPUDevice(), LittleCPUDevice()}
	case "cpu2gpu1":
		specs = []DeviceSpec{CPUDevice(), CPUDevice(), GPUDevice()}
	case "hetero":
		specs = []DeviceSpec{CPUDevice(), CPUDevice(), GPUDevice(), PIMDevice(), PIMDevice()}
	default:
		return nil, fmt.Errorf("hetsched: unknown device mix %q (have %s)", name, strings.Join(Mixes, ", "))
	}
	counts := [NumClasses]int{}
	for i := range specs {
		c := specs[i].Class
		specs[i].Name = fmt.Sprintf("%s%d", c, counts[c])
		counts[c]++
	}
	return specs, nil
}
