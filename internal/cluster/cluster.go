// Package cluster models a sharded multi-node DLRM serving fleet — the
// "at-scale" layer above the single-node timing and queueing simulators.
// Production DLRM models (28–81 GB of embeddings, Table 2 at full scale)
// do not fit one node: the tables are sharded across N nodes, a router
// tier splits each query batch into per-shard sub-lookups, fans them out
// over the network, and joins the partial results, so every query pays a
// fan-out/straggler cost that single-node simulation never sees.
//
// The package is a deterministic discrete-event simulator of that tier:
//
//   - sharding policies (table-wise and row-range) with per-shard memory
//     accounting (Plan),
//   - a router that charges a configurable network hop (latency +
//     bandwidth) per sub-request and joins on the slowest shard,
//   - hot-row replication: the top-k hottest rows of every table (by the
//     trace hotness class's Zipf rank) are replicated onto every node, so
//     lookups to them short-circuit the fan-out and are served from the
//     query's home node's cache-resident replica, and
//   - per-node FCFS service reusing internal/serve's exported Queue, with
//     per-lookup service costs derived from a single-node engine report
//     (TimingFromReport), so the cluster-level effect of the paper's
//     schemes (SW-PF, MP-HT, Integrated) can be compared.
//
// All randomness is derived statelessly from Config.Seed via
// stats.SplitSeed, so results are bit-identical regardless of what else
// runs concurrently — the same contract the experiment runner's
// -workers determinism guarantee rests on.
package cluster

import (
	"dlrmsim/internal/core"
	"dlrmsim/internal/platform"
)

// Network is the router↔node hop model: a fixed per-message latency plus
// a bandwidth term proportional to the message size.
type Network struct {
	// LatencyMs is the one-way message latency (RPC + switch traversal).
	LatencyMs float64
	// BandwidthGBs is the per-link bandwidth in GB/s.
	BandwidthGBs float64
}

// DefaultNetwork returns a datacenter-Ethernet-class hop: 50 µs one-way
// latency, 10 GB/s per link.
func DefaultNetwork() Network {
	return Network{LatencyMs: 0.05, BandwidthGBs: 10}
}

// TransferMs returns the bandwidth term for a message of the given size.
func (n Network) TransferMs(bytes int64) float64 {
	if n.BandwidthGBs <= 0 {
		return 0
	}
	// GB/s = 1e6 bytes per ms.
	return float64(bytes) / (n.BandwidthGBs * 1e6)
}

// Timing is the per-node service model the router charges: an affine
// function of the sub-request's lookup counts, split by whether each
// looked-up row is shard-owned (DRAM-resident) or a replicated hot row
// (cache-resident).
type Timing struct {
	// ColdLookupUs is the per-lookup service time for shard-owned rows.
	ColdLookupUs float64
	// HotLookupUs is the per-lookup service time for replicated hot rows
	// (cache-resident on every node, so far cheaper than ColdLookupUs).
	HotLookupUs float64
	// SubRequestUs is the fixed per-sub-request overhead at a node
	// (dispatch, deserialize, result packing).
	SubRequestUs float64
	// DenseMs is the per-query dense-stage time (bottom MLP, interaction,
	// top MLP) charged at the router after the join.
	DenseMs float64
}

// TimingFromReport derives the cluster service model from a single-node
// engine report: the embedding stage amortizes over the batch's lookups
// (that is the work sharding distributes), the remaining batch latency is
// the dense part charged once per query at the router, and replicated hot
// rows are served at the platform's L2 latency instead of the report's
// average load latency (they are cache-resident by construction — that is
// what replication buys). lookupsPerBatch is the report's total lookups
// per batch (batch size × tables × lookups/sample).
func TimingFromReport(rep core.Report, cpu platform.CPU, lookupsPerBatch int) Timing {
	embMs := cpu.CyclesToMs(rep.EmbeddingStageCycles())
	if embMs > rep.BatchLatencyMs {
		embMs = rep.BatchLatencyMs
	}
	dense := rep.BatchLatencyMs - embMs
	if dense < 0 {
		dense = 0
	}
	cold := embMs * 1e3 / float64(lookupsPerBatch)
	ratio := 1.0
	if rep.AvgLoadLatency > 0 {
		ratio = float64(cpu.Mem.L2.LatencyCyc) / rep.AvgLoadLatency
		if ratio > 1 {
			ratio = 1
		}
	}
	return Timing{
		ColdLookupUs: cold,
		HotLookupUs:  cold * ratio,
		SubRequestUs: 5,
		DenseMs:      dense,
	}
}

// QueryWorkMs estimates the mean node-side work one query generates under
// the plan (fan-out overheads plus every lookup at cold cost) — a sizing
// heuristic for choosing arrival rates. It deliberately ignores
// replication, so a replication sweep sized from it keeps the offered
// load fixed across fractions.
func QueryWorkMs(p *Plan, t Timing, samplesPerQuery int) float64 {
	lookups := samplesPerQuery * p.Model.LookupsPerSample * p.Model.Tables
	fanout := p.Nodes
	if p.Policy == TableWise && p.Model.Tables < fanout {
		fanout = p.Model.Tables
	}
	if lookups < fanout {
		fanout = lookups
	}
	return (t.SubRequestUs*float64(fanout) + t.ColdLookupUs*float64(lookups)) / 1e3
}

// ArrivalForUtilization returns the mean query inter-arrival time that
// loads the cluster to the given utilization under the plan's cold-path
// work estimate.
func ArrivalForUtilization(p *Plan, t Timing, samplesPerQuery, serversPerNode int, util float64) float64 {
	if util <= 0 {
		util = 0.5
	}
	if serversPerNode < 1 {
		serversPerNode = 1
	}
	return QueryWorkMs(p, t, samplesPerQuery) / (float64(p.Nodes*serversPerNode) * util)
}
