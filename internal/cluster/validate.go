package cluster

import (
	"errors"
	"fmt"
)

// Validate reports every violation in the cluster configuration at once
// (errors.Join), without mutating the config. Simulate's applyDefaults
// enforces the same constraints one at a time while filling defaults;
// Validate is the CLI-facing front door that lets a user fix every bad
// flag in one round trip. Zero-means-default fields (ServersPerNode,
// Queries, WarmupQueries) are accepted as zero.
func (c Config) Validate() error {
	var errs []error
	if c.Plan == nil {
		errs = append(errs, fmt.Errorf("cluster: nil plan"))
	} else {
		if c.Plan.Nodes < 1 {
			errs = append(errs, fmt.Errorf("cluster: %d nodes", c.Plan.Nodes))
		}
		if err := c.Plan.Model.Validate(); err != nil {
			errs = append(errs, err)
		}
	}
	if c.SamplesPerQuery < 1 {
		errs = append(errs, fmt.Errorf("cluster: %d samples per query", c.SamplesPerQuery))
	}
	if c.Open == nil && c.MeanArrivalMs <= 0 {
		errs = append(errs, fmt.Errorf("cluster: non-positive mean arrival %g ms", c.MeanArrivalMs))
	}
	if err := c.Timing.Validate(); err != nil {
		errs = append(errs, err)
	}
	if c.Net.LatencyMs < 0 || c.Net.BandwidthGBs < 0 {
		errs = append(errs, fmt.Errorf("cluster: negative network parameters (latency %g ms, bandwidth %g GB/s)",
			c.Net.LatencyMs, c.Net.BandwidthGBs))
	}
	if c.ServersPerNode < 0 {
		errs = append(errs, fmt.Errorf("cluster: %d servers per node", c.ServersPerNode))
	}
	if c.JitterFrac < 0 {
		errs = append(errs, fmt.Errorf("cluster: negative jitter fraction %g", c.JitterFrac))
	}
	if c.Queries < 0 {
		errs = append(errs, fmt.Errorf("cluster: %d queries", c.Queries))
	}
	if c.WarmupQueries < -1 {
		errs = append(errs, fmt.Errorf("cluster: warmup %d (use -1 for explicit zero)", c.WarmupQueries))
	}
	if c.Open != nil {
		if c.MeanArrivalMs != 0 || c.Queries != 0 || c.WarmupQueries != 0 {
			errs = append(errs, fmt.Errorf("cluster: closed-loop load knobs (mean arrival %g, queries %d, warmup %d) are unused with an open-loop config",
				c.MeanArrivalMs, c.Queries, c.WarmupQueries))
		}
		nodes := 0
		if c.Plan != nil {
			nodes = c.Plan.Nodes
		}
		errs = append(errs, c.Open.validateErrs(nodes)...)
	} else {
		queries := c.Queries
		if queries == 0 {
			queries = 2000
		}
		if c.WarmupQueries >= queries && queries > 0 {
			errs = append(errs, fmt.Errorf("cluster: warmup %d >= queries %d", c.WarmupQueries, queries))
		}
	}
	f := c.Faults
	if err := f.validate(); err != nil {
		errs = append(errs, err)
	}
	// Copy first: validate resolves adaptive defaults through its pointer
	// receiver, and Validate's contract is mutation-free.
	m := c.Mitigation
	if err := m.validate(); err != nil {
		errs = append(errs, err)
	}
	nodes := 0
	if c.Plan != nil {
		nodes = c.Plan.Nodes
	}
	errs = append(errs, c.Chaos.validateErrs(nodes)...)
	return errors.Join(errs...)
}

// Validate reports every violation in the per-node service model.
func (t Timing) Validate() error {
	var errs []error
	if t.ColdLookupUs <= 0 {
		errs = append(errs, fmt.Errorf("cluster: non-positive cold lookup cost %g µs", t.ColdLookupUs))
	}
	if t.HotLookupUs < 0 {
		errs = append(errs, fmt.Errorf("cluster: negative hot lookup cost %g µs", t.HotLookupUs))
	}
	if t.SubRequestUs < 0 {
		errs = append(errs, fmt.Errorf("cluster: negative sub-request overhead %g µs", t.SubRequestUs))
	}
	if t.DenseMs < 0 {
		errs = append(errs, fmt.Errorf("cluster: negative dense-stage time %g ms", t.DenseMs))
	}
	return errors.Join(errs...)
}
