package cluster

import (
	"testing"

	"dlrmsim/internal/dlrm"
)

func testModel() dlrm.Config { return dlrm.RM2Small().Scaled(20) }

func TestShardBytesCoverModel(t *testing.T) {
	model := testModel()
	for _, policy := range AllPolicies {
		for _, nodes := range []int{1, 2, 3, 8} {
			p, err := NewPlan(model, nodes, policy, 0, 1)
			if err != nil {
				t.Fatal(err)
			}
			var sum int64
			for _, b := range p.ShardBytes {
				if b < 0 {
					t.Fatalf("%v/%d nodes: negative shard bytes", policy, nodes)
				}
				sum += b
			}
			if sum != model.EmbeddingBytes() {
				t.Errorf("%v/%d nodes: shards cover %d bytes, model is %d",
					policy, nodes, sum, model.EmbeddingBytes())
			}
			if p.TotalBytes() != sum {
				t.Errorf("%v/%d nodes: TotalBytes %d != shard sum %d with no replicas",
					policy, nodes, p.TotalBytes(), sum)
			}
		}
	}
}

func TestOwnerInRange(t *testing.T) {
	model := testModel()
	for _, policy := range AllPolicies {
		p, err := NewPlan(model, 5, policy, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		for tab := 0; tab < model.Tables; tab++ {
			for rank := 0; rank < model.RowsPerTable; rank += 97 {
				n := p.Owner(tab, p.rowOfRank(tab, rank))
				if n < 0 || n >= p.Nodes {
					t.Fatalf("%v: owner(%d, rank %d) = %d outside [0,%d)", policy, tab, rank, n, p.Nodes)
				}
			}
		}
	}
}

func TestRowPermutationIsBijective(t *testing.T) {
	model := testModel()
	p, err := NewPlan(model, 4, RowRange, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int32]bool, model.RowsPerTable)
	for rank := 0; rank < model.RowsPerTable; rank++ {
		r := p.rowOfRank(0, rank)
		if seen[r] {
			t.Fatalf("rank %d collides at row %d", rank, r)
		}
		seen[r] = true
	}
}

func TestReplicaAccounting(t *testing.T) {
	model := testModel()
	p0, err := NewPlan(model, 4, RowRange, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p0.HotRows != 0 || p0.ReplicaBytesPerNode() != 0 {
		t.Fatalf("f=0 has replicas: hotRows=%d bytes=%d", p0.HotRows, p0.ReplicaBytesPerNode())
	}
	prev := int64(0)
	for _, f := range []float64{0.0001, 0.01, 0.1, 1} {
		p, err := NewPlan(model, 4, RowRange, f, 1)
		if err != nil {
			t.Fatal(err)
		}
		if p.HotRows < 1 {
			t.Fatalf("f=%g replicates no rows", f)
		}
		b := p.ReplicaBytesPerNode()
		if b < prev {
			t.Fatalf("replica bytes not monotone in f: %d after %d", b, prev)
		}
		prev = b
		// A node never stores more replicas than the full hot set.
		full := int64(p.HotRows) * int64(model.Tables) * (model.PerTableBytes() / int64(model.RowsPerTable))
		if b > full {
			t.Fatalf("f=%g: replica bytes %d exceed full hot set %d", f, b, full)
		}
	}
}

func TestReplicatedRankThreshold(t *testing.T) {
	p, err := NewPlan(testModel(), 4, TableWise, 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Replicated(0) || !p.Replicated(p.HotRows-1) {
		t.Fatal("hottest ranks not replicated")
	}
	if p.Replicated(p.HotRows) {
		t.Fatal("rank beyond the hot set reported replicated")
	}
}

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Policy
	}{{"tablewise", TableWise}, {"table", TableWise}, {"rowrange", RowRange}, {"row", RowRange}} {
		got, err := ParsePolicy(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParsePolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParsePolicy("hash"); err == nil {
		t.Error("accepted unknown policy")
	}
}

func TestNewPlanValidation(t *testing.T) {
	model := testModel()
	if _, err := NewPlan(model, 0, TableWise, 0, 1); err == nil {
		t.Error("accepted zero nodes")
	}
	if _, err := NewPlan(model, 4, TableWise, -0.1, 1); err == nil {
		t.Error("accepted negative replication")
	}
	if _, err := NewPlan(model, 4, TableWise, 1.5, 1); err == nil {
		t.Error("accepted replication > 1")
	}
	if _, err := NewPlan(model, 4, Policy(99), 0, 1); err == nil {
		t.Error("accepted invalid policy")
	}
	bad := model
	bad.Tables = 0
	if _, err := NewPlan(bad, 4, TableWise, 0, 1); err == nil {
		t.Error("accepted invalid model")
	}
}
