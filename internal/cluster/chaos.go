package cluster

// Correlated failure domains and deterministic chaos schedules. The
// stochastic FaultModel (faults.go) injects i.i.d. per-node episodes;
// production fleets additionally fail in *correlated* ways — rack power
// takes a whole failure domain down, a bad deploy slows one, a network
// partition severs traffic between two. ChaosSchedule is the scripted
// counterpart: an ordered list of timed events over rack-like node
// groups (default 1 node = 1 domain) that composes with FaultModel and
// works identically in Simulate and the open event loop.
//
// Determinism: the schedule is static — no RNG, no new seed salt. At
// run start every event is materialized into per-domain outage and
// slowdown windows and per-domain-pair severance windows (a Recover
// event truncates the windows of its domain that are open at its
// instant). Outage windows reach a node's queue through the same
// serve.Queue.Unavailable max-raise path the fault model uses, applied
// in start order by a per-node cursor, so composition with stochastic
// outages is order-independent. Partition severance folds into each
// copy's node-arrival instant at scheduling time (transitShift): a copy
// in flight across a severed domain pair is lost and re-sent when the
// partition heals, exactly like the transport's drop re-sends. All of
// it is a pure function of the config, keeping the byte-identical-at-
// any-worker-count property: nothing here reads mid-window state.
//
// Substitution statement: real chaos tooling (and real incidents) drive
// correlated faults through orchestration APIs with jittered delivery;
// we substitute exact scripted windows so a metastability experiment is
// reproducible bit-for-bit across backends and worker counts.

import (
	"fmt"
	"math"
	"slices"
	"strconv"
	"strings"

	"dlrmsim/internal/serve"
)

// ChaosKind names one scheduled chaos event type.
type ChaosKind int

const (
	// DomainOutage holds every queue in the domain shut for the window —
	// rack power loss. In-flight work waits it out unless mitigation
	// gives up first.
	DomainOutage ChaosKind = iota
	// DomainSlowdown multiplies service times in the domain by Factor
	// for the window — a bad deploy, thermal throttling.
	DomainSlowdown
	// Partition severs traffic between two domains for the window:
	// copies in transit across the pair when it opens (or launched into
	// it) are lost and re-sent when it heals.
	Partition
	// Recover ends the target domain's open outage/slowdown windows and
	// any open partition windows involving it at AtMs — a rollback
	// landing before the scheduled window would have closed.
	Recover
)

// String returns the kind's CLI spelling.
func (k ChaosKind) String() string {
	switch k {
	case DomainOutage:
		return "down"
	case DomainSlowdown:
		return "slow"
	case Partition:
		return "part"
	case Recover:
		return "recover"
	default:
		return "invalid"
	}
}

// ChaosEvent is one scheduled event. Domain is the target domain
// (DomainOutage, DomainSlowdown, Recover) or one end of the severed
// pair (Partition, with Peer the other end).
type ChaosEvent struct {
	Kind   ChaosKind
	Domain int
	Peer   int     // Partition only: the other domain
	AtMs   float64 // event instant
	ForMs  float64 // window length (all kinds but Recover)
	Factor float64 // DomainSlowdown only: service-time multiplier ≥ 1
}

// ChaosSchedule scripts correlated failures over node failure domains.
// The zero value injects nothing. Nodes map to Domains contiguous
// groups (node n belongs to domain n·D/N); Domains 0 defaults to one
// domain per node.
type ChaosSchedule struct {
	Domains int
	Events  []ChaosEvent
}

// Active reports whether the schedule injects anything.
func (s ChaosSchedule) Active() bool { return len(s.Events) > 0 }

// validateErrs reports every violation in the schedule. nodes 0 (no
// plan to check against) skips the domain-range checks; every
// structural rule still applies.
func (s *ChaosSchedule) validateErrs(nodes int) []error {
	var errs []error
	if s.Domains < 0 {
		errs = append(errs, fmt.Errorf("cluster: %d chaos domains", s.Domains))
	}
	if nodes > 0 && s.Domains > nodes {
		errs = append(errs, fmt.Errorf("cluster: %d chaos domains exceed %d nodes", s.Domains, nodes))
	}
	if s.Domains != 0 && len(s.Events) == 0 {
		errs = append(errs, fmt.Errorf("cluster: chaos domains %d set without chaos events", s.Domains))
	}
	d := s.Domains
	if d == 0 {
		d = nodes
	}
	prevAt := math.Inf(-1)
	for i, e := range s.Events {
		if !(e.AtMs >= 0) || math.IsInf(e.AtMs, 0) {
			errs = append(errs, fmt.Errorf("cluster: chaos event %d at non-finite or negative instant %g ms", i, e.AtMs))
			continue
		}
		if e.AtMs < prevAt {
			errs = append(errs, fmt.Errorf("cluster: chaos event %d at %g ms out of order (previous %g ms)", i, e.AtMs, prevAt))
		}
		prevAt = e.AtMs
		if e.Kind == Recover {
			if e.ForMs != 0 {
				errs = append(errs, fmt.Errorf("cluster: chaos recover event %d has a window length %g ms", i, e.ForMs))
			}
		} else if !(e.ForMs > 0) || math.IsInf(e.AtMs+e.ForMs, 0) {
			errs = append(errs, fmt.Errorf("cluster: chaos event %d window length %g ms (need finite > 0)", i, e.ForMs))
		}
		if e.Kind == DomainSlowdown {
			if !(e.Factor >= 1) || math.IsInf(e.Factor, 0) {
				errs = append(errs, fmt.Errorf("cluster: chaos slowdown event %d factor %g < 1", i, e.Factor))
			}
		} else if e.Factor != 0 {
			errs = append(errs, fmt.Errorf("cluster: chaos event %d factor %g on a non-slowdown event", i, e.Factor))
		}
		switch e.Kind {
		case DomainOutage, DomainSlowdown, Recover:
			if e.Domain < 0 || (d > 0 && e.Domain >= d) {
				errs = append(errs, fmt.Errorf("cluster: chaos event %d domain %d outside [0,%d)", i, e.Domain, d))
			}
			if e.Peer != 0 {
				errs = append(errs, fmt.Errorf("cluster: chaos event %d peer %d on a non-partition event", i, e.Peer))
			}
		case Partition:
			if e.Domain < 0 || (d > 0 && e.Domain >= d) || e.Peer < 0 || (d > 0 && e.Peer >= d) {
				errs = append(errs, fmt.Errorf("cluster: chaos partition event %d domains (%d,%d) outside [0,%d)", i, e.Domain, e.Peer, d))
			}
			if e.Domain == e.Peer {
				errs = append(errs, fmt.Errorf("cluster: chaos partition event %d severs domain %d from itself", i, e.Domain))
			}
		default:
			errs = append(errs, fmt.Errorf("cluster: chaos event %d has invalid kind %d", i, int(e.Kind)))
		}
	}
	return errs
}

// validateFirst is validateErrs for the fail-fast applyDefaults path.
func (s *ChaosSchedule) validateFirst(nodes int) error {
	if errs := s.validateErrs(nodes); len(errs) > 0 {
		return errs[0]
	}
	return nil
}

// String renders the schedule in the CLI spec grammar; ParseChaosSchedule
// round-trips it.
func (s ChaosSchedule) String() string {
	var b strings.Builder
	for i, e := range s.Events {
		if i > 0 {
			b.WriteByte(';')
		}
		switch e.Kind {
		case DomainOutage:
			fmt.Fprintf(&b, "down:dom=%d,at=%g,for=%g", e.Domain, e.AtMs, e.ForMs)
		case DomainSlowdown:
			fmt.Fprintf(&b, "slow:dom=%d,at=%g,for=%g,x=%g", e.Domain, e.AtMs, e.ForMs, e.Factor)
		case Partition:
			fmt.Fprintf(&b, "part:a=%d,b=%d,at=%g,for=%g", e.Domain, e.Peer, e.AtMs, e.ForMs)
		case Recover:
			fmt.Fprintf(&b, "recover:dom=%d,at=%g", e.Domain, e.AtMs)
		}
	}
	return b.String()
}

// ParseChaosSchedule parses the CLIs' compact chaos spec: semicolon-
// separated events in schedule order, each `kind:key=value,...`:
//
//	down:dom=D,at=T,for=W      — DomainOutage of domain D
//	slow:dom=D,at=T,for=W,x=F  — DomainSlowdown by factor F
//	part:a=D,b=E,at=T,for=W    — Partition between domains D and E
//	recover:dom=D,at=T         — Recover domain D
//
// An empty spec is the zero (inactive) schedule. Parsing is purely
// syntactic; ChaosSchedule.validateErrs (via Config.Validate) enforces
// the semantic rules, so a parsed-and-validated schedule is runnable.
func ParseChaosSchedule(spec string) (ChaosSchedule, error) {
	var s ChaosSchedule
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return s, nil
	}
	for _, ev := range strings.Split(spec, ";") {
		ev = strings.TrimSpace(ev)
		kindStr, rest, ok := strings.Cut(ev, ":")
		if !ok {
			return ChaosSchedule{}, fmt.Errorf("cluster: chaos event %q missing ':' (want kind:key=value,...)", ev)
		}
		var e ChaosEvent
		switch kindStr {
		case "down":
			e.Kind = DomainOutage
		case "slow":
			e.Kind = DomainSlowdown
		case "part":
			e.Kind = Partition
		case "recover":
			e.Kind = Recover
		default:
			return ChaosSchedule{}, fmt.Errorf("cluster: unknown chaos event kind %q (want down, slow, part, or recover)", kindStr)
		}
		var seen struct{ dom, a, b, at, dur, x bool }
		for _, kv := range strings.Split(rest, ",") {
			k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return ChaosSchedule{}, fmt.Errorf("cluster: chaos event %q field %q missing '='", ev, kv)
			}
			var dup bool
			var err error
			switch {
			case k == "dom" && e.Kind != Partition:
				dup, seen.dom = seen.dom, true
				e.Domain, err = strconv.Atoi(v)
			case k == "a" && e.Kind == Partition:
				dup, seen.a = seen.a, true
				e.Domain, err = strconv.Atoi(v)
			case k == "b" && e.Kind == Partition:
				dup, seen.b = seen.b, true
				e.Peer, err = strconv.Atoi(v)
			case k == "at":
				dup, seen.at = seen.at, true
				e.AtMs, err = strconv.ParseFloat(v, 64)
			case k == "for" && e.Kind != Recover:
				dup, seen.dur = seen.dur, true
				e.ForMs, err = strconv.ParseFloat(v, 64)
			case k == "x" && e.Kind == DomainSlowdown:
				dup, seen.x = seen.x, true
				e.Factor, err = strconv.ParseFloat(v, 64)
			default:
				return ChaosSchedule{}, fmt.Errorf("cluster: chaos %s event %q has unknown key %q", kindStr, ev, k)
			}
			if err != nil {
				return ChaosSchedule{}, fmt.Errorf("cluster: chaos event %q value %q for %q: %v", ev, v, k, err)
			}
			if dup {
				return ChaosSchedule{}, fmt.Errorf("cluster: chaos event %q repeats key %q", ev, k)
			}
		}
		var missing string
		switch {
		case !seen.at:
			missing = "at"
		case e.Kind == Partition && !seen.a:
			missing = "a"
		case e.Kind == Partition && !seen.b:
			missing = "b"
		case e.Kind != Partition && !seen.dom:
			missing = "dom"
		case e.Kind != Recover && !seen.dur:
			missing = "for"
		case e.Kind == DomainSlowdown && !seen.x:
			missing = "x"
		}
		if missing != "" {
			return ChaosSchedule{}, fmt.Errorf("cluster: chaos %s event %q missing key %q", kindStr, ev, missing)
		}
		s.Events = append(s.Events, e)
	}
	return s, nil
}

// chaosWin is one materialized window: [start, end), with the slowdown
// factor for DomainSlowdown windows.
type chaosWin struct {
	start, end, factor float64
}

// chaosRaw is one window during materialization, keyed by domain (out,
// slow) or pair index (part).
type chaosRaw struct {
	kind uint8 // 0 outage, 1 slowdown, 2 partition
	key  int32
	win  chaosWin
}

// chaosState is one run's materialized schedule: per-domain window
// lists in CSR layout (windows of domain d at out[outIdx[d]:outIdx[d+1]],
// start-sorted because events are AtMs-ordered), a per-node cursor for
// the outage→queue application, and the fault-clear instant the
// recovery metrics measure from. Lives in the run arena and recycles
// all of its slices.
type chaosState struct {
	domains int
	nodeDom []int32
	out     []chaosWin
	outIdx  []int32
	slow    []chaosWin
	slowIdx []int32
	part    []chaosWin
	partIdx []int32
	pairs   [][2]int32 // normalized (lo, hi) severed pairs
	// outApplied is the per-node count of outage windows already pushed
	// onto the node's queue; like faults.track.applied it relies on each
	// node seeing its submissions in arrival order.
	outApplied []int32
	clearMs    float64 // last window end: the fault-clear instant

	raws []chaosRaw // build scratch
}

// init materializes a validated schedule for a fleet. Recover events
// truncate the open windows of their domain in event order; zero-length
// (fully recovered) windows are dropped.
func (cs *chaosState) init(sched *ChaosSchedule, nodes int) {
	d := sched.Domains
	if d <= 0 {
		d = nodes
	}
	cs.domains = d
	cs.nodeDom = arenaSlice(&cs.nodeDom, nodes)
	for n := range cs.nodeDom {
		cs.nodeDom[n] = int32(int64(n) * int64(d) / int64(nodes))
	}
	cs.pairs = cs.pairs[:0]
	cs.raws = cs.raws[:0]
	for _, e := range sched.Events {
		switch e.Kind {
		case DomainOutage:
			cs.raws = append(cs.raws, chaosRaw{kind: 0, key: int32(e.Domain),
				win: chaosWin{start: e.AtMs, end: e.AtMs + e.ForMs}})
		case DomainSlowdown:
			cs.raws = append(cs.raws, chaosRaw{kind: 1, key: int32(e.Domain),
				win: chaosWin{start: e.AtMs, end: e.AtMs + e.ForMs, factor: e.Factor}})
		case Partition:
			lo, hi := int32(e.Domain), int32(e.Peer)
			if lo > hi {
				lo, hi = hi, lo
			}
			key := int32(-1)
			for i, p := range cs.pairs {
				if p[0] == lo && p[1] == hi {
					key = int32(i)
					break
				}
			}
			if key < 0 {
				key = int32(len(cs.pairs))
				cs.pairs = append(cs.pairs, [2]int32{lo, hi})
			}
			cs.raws = append(cs.raws, chaosRaw{kind: 2, key: key,
				win: chaosWin{start: e.AtMs, end: e.AtMs + e.ForMs}})
		case Recover:
			dom := int32(e.Domain)
			for i := range cs.raws {
				r := &cs.raws[i]
				hit := r.key == dom
				if r.kind == 2 {
					p := cs.pairs[r.key]
					hit = p[0] == dom || p[1] == dom
				}
				if hit && r.win.start <= e.AtMs && e.AtMs < r.win.end {
					r.win.end = e.AtMs
				}
			}
		}
	}
	live := cs.raws[:0]
	cs.clearMs = 0
	for _, r := range cs.raws {
		if r.win.end > r.win.start {
			live = append(live, r)
			if r.win.end > cs.clearMs {
				cs.clearMs = r.win.end
			}
		}
	}
	cs.raws = live
	// Group by (kind, key); the stable sort preserves the event order,
	// which is start order, so each CSR segment stays start-sorted.
	slices.SortStableFunc(cs.raws, func(a, b chaosRaw) int {
		if a.kind != b.kind {
			return int(a.kind) - int(b.kind)
		}
		return int(a.key) - int(b.key)
	})
	cs.outIdx = arenaSlice(&cs.outIdx, d+1)
	cs.slowIdx = arenaSlice(&cs.slowIdx, d+1)
	cs.partIdx = arenaSlice(&cs.partIdx, len(cs.pairs)+1)
	for i := range cs.outIdx {
		cs.outIdx[i] = 0
	}
	for i := range cs.slowIdx {
		cs.slowIdx[i] = 0
	}
	for i := range cs.partIdx {
		cs.partIdx[i] = 0
	}
	cs.out, cs.slow, cs.part = cs.out[:0], cs.slow[:0], cs.part[:0]
	for _, r := range cs.raws {
		switch r.kind {
		case 0:
			cs.out = append(cs.out, r.win)
			cs.outIdx[r.key+1]++
		case 1:
			cs.slow = append(cs.slow, r.win)
			cs.slowIdx[r.key+1]++
		case 2:
			cs.part = append(cs.part, r.win)
			cs.partIdx[r.key+1]++
		}
	}
	for i := 1; i < len(cs.outIdx); i++ {
		cs.outIdx[i] += cs.outIdx[i-1]
	}
	for i := 1; i < len(cs.slowIdx); i++ {
		cs.slowIdx[i] += cs.slowIdx[i-1]
	}
	for i := 1; i < len(cs.partIdx); i++ {
		cs.partIdx[i] += cs.partIdx[i-1]
	}
	cs.outApplied = arenaSlice(&cs.outApplied, nodes)
	for i := range cs.outApplied {
		cs.outApplied[i] = 0
	}
}

// applyOutages pushes every scheduled outage window of the node's
// domain opening by t onto its queue, in start order — the same
// max-raise Unavailable path the stochastic fault model drives, so the
// two outage sources compose in either order.
func (cs *chaosState) applyOutages(node int, t float64, q *serve.Queue) {
	if cs == nil {
		return
	}
	d := cs.nodeDom[node]
	wins := cs.out[cs.outIdx[d]:cs.outIdx[d+1]]
	for cs.outApplied[node] < int32(len(wins)) && wins[cs.outApplied[node]].start <= t {
		q.Unavailable(wins[cs.outApplied[node]].end)
		cs.outApplied[node]++
	}
}

// slowFactor returns the scheduled service-time multiplier in effect on
// the node's domain at t (the max over overlapping windows; 1 clear).
func (cs *chaosState) slowFactor(node int, t float64) float64 {
	if cs == nil {
		return 1
	}
	d := cs.nodeDom[node]
	f := 1.0
	for _, w := range cs.slow[cs.slowIdx[d]:cs.slowIdx[d+1]] {
		if w.start > t {
			break
		}
		if t < w.end && w.factor > f {
			f = w.factor
		}
	}
	return f
}

// transitShift returns the extra delay (and re-send count) a copy
// departing home's domain for target's domain at depart, with transit
// ms in flight, suffers from scheduled partitions: a copy whose flight
// overlaps a severance window is lost and re-sent when the partition
// heals. Applied to the request leg at scheduling time (the planned
// target's domain — the open loop's drain re-routing does not re-sever).
func (cs *chaosState) transitShift(home, target int, depart, transit float64) (shift float64, resends int) {
	if cs == nil || len(cs.pairs) == 0 {
		return 0, 0
	}
	lo, hi := cs.nodeDom[home], cs.nodeDom[target]
	if lo == hi {
		return 0, 0
	}
	if lo > hi {
		lo, hi = hi, lo
	}
	pair := -1
	for i, p := range cs.pairs {
		if p[0] == lo && p[1] == hi {
			pair = i
			break
		}
	}
	if pair < 0 {
		return 0, 0
	}
	t := depart
	for _, w := range cs.part[cs.partIdx[pair]:cs.partIdx[pair+1]] {
		if t+transit <= w.start {
			break
		}
		if t < w.end {
			shift += w.end - t
			t = w.end
			resends++
		}
	}
	return shift, resends
}

// outageMs returns total scheduled domain-down time over the horizon:
// the per-domain union of outage windows (overlaps merged), clipped to
// [0, horizon], summed across domains — the numerator of the
// DomainAvailability metric.
func (cs *chaosState) outageMs(horizon float64) float64 {
	var total float64
	for d := 0; d < cs.domains; d++ {
		var curS, curE float64
		open := false
		for _, w := range cs.out[cs.outIdx[d]:cs.outIdx[d+1]] {
			s, e := w.start, w.end
			if e > horizon {
				e = horizon
			}
			if e <= s {
				continue
			}
			switch {
			case !open:
				curS, curE, open = s, e, true
			case s <= curE:
				if e > curE {
					curE = e
				}
			default:
				total += curE - curS
				curS, curE = s, e
			}
		}
		if open {
			total += curE - curS
		}
	}
	return total
}
