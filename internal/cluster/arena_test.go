package cluster

import (
	"testing"

	"dlrmsim/internal/trace"
	"dlrmsim/internal/traffic"
)

// TestArenaReuseDeterministic: repeated runs through the recycled arena
// are byte-identical — a reused buffer that leaked state between runs
// would perturb the Result bit-for-bit.
func TestArenaReuseDeterministic(t *testing.T) {
	for name, cfg := range execConfigs(t) {
		want, err := Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			got, err := Simulate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%s: rerun %d through the arena diverged:\n%+v\n%+v", name, i, want, got)
			}
		}
	}
}

// TestSimulateAllocsSteadyState pins the arena's payoff: after a warmup
// run seeds the free list, a closed-loop run performs a handful of
// allocations (the run state, the arrival RNG, the shared Zipf sampler,
// and the percentile summary) instead of the ~40 per-run slices it
// allocated before arena reuse. The bounds are loose enough to survive
// incidental churn but fail if per-run pooling regresses wholesale.
func TestSimulateAllocsSteadyState(t *testing.T) {
	cfg := testConfig(t, 8, RowRange, 0.01, trace.HighHot)
	if _, err := Simulate(cfg); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(5, func() { Simulate(cfg) }); allocs > 10 {
		t.Errorf("closed-loop Simulate allocates %.0f objects/run in steady state, want <= 10", allocs)
	}

	ocfg := openTestConfig(t, 4, &OpenLoop{
		Arrivals:   traffic.Config{Model: traffic.Poisson, RatePerMs: openRate(t, 4, 0.5)},
		DurationMs: 300,
		SLAMs:      50,
	})
	if _, err := Simulate(ocfg); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(5, func() { Simulate(ocfg) }); allocs > 16 {
		t.Errorf("open-loop Simulate allocates %.0f objects/run in steady state, want <= 16", allocs)
	}
}
