package cluster

// Per-run arena reuse (DESIGN.md §14). One closed-loop Simulate call
// allocates a few dozen slices — the per-node queue set, the sub/copy
// schedules, and the phase-1/phase-3 scratch — and the callers that
// matter (SweepReplication, the experiment registry, parameter sweeps
// in the CLIs) run thousands of simulations per process, so the
// steady-state allocation rate is pure churn. The arena keeps one
// run's working set alive on a free list and the next run re-slices it:
// acquire at entry, recapture whatever grew, release at exit.
//
// Correctness is the same argument everywhere: a reused buffer is
// either fully overwritten before it is read (nows, firstSub, the
// pre-draw splits — drawQuery zeroes its own cold slice), explicitly
// re-zeroed here (the active set, partition scratch), or re-sliced to
// length zero and only appended to (subs, copies, latencies, queries).
// Queue and wheel objects reset through their Reset hooks
// (serve.Queue.Reset, eventq.Wheel.Reset). Nothing observable escapes:
// the free list is guarded by a mutex, each concurrent run owns its
// arena exclusively between acquire and release, and a run that errors
// out simply never releases (the arena is garbage-collected).
//
// The AllocsPerRun guards in arena_test.go pin the steady state.

import (
	"sync"

	"dlrmsim/internal/eventq"
	"dlrmsim/internal/serve"
)

// runArena is one simulation run's recyclable working set. Fields are
// capacity carriers only — every run re-establishes length and
// contents before reading.
type runArena struct {
	queues    []*serve.Queue
	subs      []subState
	copies    []subCopy
	cold      []int
	nows      []float64
	firstSub  []int
	latencies []float64
	preHot    []int
	preCold   []int
	scratch   []partScratch

	// Open-loop extras.
	queries  []openQuery
	eff      []int
	active   []bool
	violated map[int]bool
	ring     []openArrival
	ringCold []int
	win      []subCopy
	efStart  []float64
	efHist   [][]efEntry

	// Robustness-tier state (chaos.go, adapt.go): held by value so the
	// per-node and per-window slices inside recycle with the arena, and
	// the recovery-observability minute buckets.
	chaosSt chaosState
	adaptSt adaptState
	ttrArr  []int
	ttrGood []int

	// Recycled event-queue instances (the wheel's 4096 buckets dominate
	// the open loop's fixed cost), valid only for the backend they were
	// built under.
	copyQueues []copyQueue
	cqBackend  EventBackend
}

var (
	arenaMu   sync.Mutex
	arenaFree []*runArena
)

// acquireArena pops a recycled arena or builds a fresh one. The caller
// owns it exclusively until release.
func acquireArena() *runArena {
	arenaMu.Lock()
	defer arenaMu.Unlock()
	if n := len(arenaFree); n > 0 {
		a := arenaFree[n-1]
		arenaFree[n-1] = nil
		arenaFree = arenaFree[:n-1]
		return a
	}
	return &runArena{}
}

// release returns the arena to the free list. The caller must have
// recaptured any slice that grew past its arena field first.
func (a *runArena) release() {
	arenaMu.Lock()
	arenaFree = append(arenaFree, a)
	arenaMu.Unlock()
}

// arenaSlice returns (*buf)[:n] with fresh capacity when needed. The
// contents are UNSPECIFIED — callers must overwrite before reading.
func arenaSlice[T any](buf *[]T, n int) []T {
	if cap(*buf) < n {
		*buf = make([]T, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// arenaInts and arenaFloats are arenaSlice's historical spellings.
func arenaInts(buf *[]int, n int) []int           { return arenaSlice(buf, n) }
func arenaFloats(buf *[]float64, n int) []float64 { return arenaSlice(buf, n) }

// chaosFor materializes a chaos schedule into the arena's recycled
// chaos state.
func (a *runArena) chaosFor(sched *ChaosSchedule, nodes int) *chaosState {
	a.chaosSt.init(sched, nodes)
	return &a.chaosSt
}

// adaptFor resets the arena's recycled adaptive-mitigation state for a
// default-applied policy.
func (a *runArena) adaptFor(m *Mitigation, nodes int) *adaptState {
	a.adaptSt.init(m, nodes)
	return &a.adaptSt
}

// ttrBuckets returns zeroed arrival/goodput minute buckets for the
// recovery-time scan.
func (a *runArena) ttrBuckets(n int) (arr, good []int) {
	arr = arenaSlice(&a.ttrArr, n)
	good = arenaSlice(&a.ttrGood, n)
	for i := 0; i < n; i++ {
		arr[i], good[i] = 0, 0
	}
	return arr, good
}

// queueSet returns plan-sized per-node FCFS queues, recycling queue
// objects through serve.Queue.Reset and building only the missing ones.
func (a *runArena) queueSet(nodes, servers int) []*serve.Queue {
	if cap(a.queues) < nodes {
		old := a.queues
		a.queues = make([]*serve.Queue, nodes)
		copy(a.queues, old)
	}
	a.queues = a.queues[:nodes]
	for n := range a.queues {
		if a.queues[n] == nil {
			a.queues[n] = serve.NewQueue(servers)
		} else {
			a.queues[n].Reset(servers)
		}
	}
	return a.queues
}

// partScratchSet returns parts partition-scratch slots with their
// grown delta/copy buffers intact and their per-window state cleared.
func (a *runArena) partScratchSet(parts int) []partScratch {
	if cap(a.scratch) < parts {
		old := a.scratch
		a.scratch = make([]partScratch, parts)
		copy(a.scratch, old)
	}
	a.scratch = a.scratch[:parts]
	for p := range a.scratch {
		ps := &a.scratch[p]
		ps.copies = ps.copies[:0]
		ps.deltas = ps.deltas[:0]
		ps.maxWait = 0
		ps.pendPrim, ps.pendCond, ps.maxT = 0, 0, 0
	}
	return a.scratch
}

// boolSet returns an n-length all-false slice.
func (a *runArena) boolSet(n int) []bool {
	if cap(a.active) < n {
		a.active = make([]bool, n)
	}
	a.active = a.active[:n]
	for i := range a.active {
		a.active[i] = false
	}
	return a.active
}

// violatedMap returns an empty minute→violated map, reusing the
// previous run's buckets.
func (a *runArena) violatedMap() map[int]bool {
	if a.violated == nil {
		a.violated = make(map[int]bool)
	} else {
		clear(a.violated)
	}
	return a.violated
}

// efHistSet returns nodes earliest-free history slots, keeping each
// node's grown entry buffer. Every window truncates each history before
// appending, so stale entries are never read.
func (a *runArena) efHistSet(nodes int) [][]efEntry {
	if cap(a.efHist) < nodes {
		old := a.efHist
		a.efHist = make([][]efEntry, nodes)
		copy(a.efHist, old)
	}
	a.efHist = a.efHist[:nodes]
	return a.efHist
}

// copyQueueSet returns n empty copy queues for the current event
// backend, recycling instances when the backend matches. Both drivers
// drain their queues completely before finishing, so a recycled queue
// is already empty; the wheel additionally rebases to time zero
// (Wheel.Reset) because its monotone-pop watermark survives draining.
func (a *runArena) copyQueueSet(n int) []copyQueue {
	if a.cqBackend != eventBackend {
		a.copyQueues = nil
	}
	a.cqBackend = eventBackend
	if cap(a.copyQueues) < n {
		old := a.copyQueues
		a.copyQueues = make([]copyQueue, n)
		copy(a.copyQueues, old)
	}
	a.copyQueues = a.copyQueues[:n]
	for i, q := range a.copyQueues {
		if q == nil {
			a.copyQueues[i] = newCopyQueue(eventBackend)
			continue
		}
		if w, ok := q.(*eventq.Wheel[subCopy]); ok {
			w.Reset(0)
		}
	}
	return a.copyQueues
}
