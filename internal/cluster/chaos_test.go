package cluster

import (
	"math"
	"slices"
	"strings"
	"testing"

	"dlrmsim/internal/trace"
	"dlrmsim/internal/traffic"
)

// chaosTestSchedule spans a run horizon with every event kind: a long
// slowdown of domain 0, an outage of domain 1 cut short by a recover
// (which also truncates the partition involving domain 1), and a
// partition between the two domains.
func chaosTestSchedule(horizon float64) ChaosSchedule {
	return ChaosSchedule{Domains: 2, Events: []ChaosEvent{
		{Kind: DomainSlowdown, Domain: 0, AtMs: 0.1 * horizon, ForMs: 0.4 * horizon, Factor: 5},
		{Kind: DomainOutage, Domain: 1, AtMs: 0.2 * horizon, ForMs: 0.3 * horizon},
		{Kind: Partition, Domain: 0, Peer: 1, AtMs: 0.3 * horizon, ForMs: 0.2 * horizon},
		{Kind: Recover, Domain: 1, AtMs: 0.35 * horizon},
	}}
}

// TestChaosSpecRoundTrip: String renders the CLI grammar and
// ParseChaosSchedule reproduces the events exactly (%g round-trips
// float64, so no precision is lost).
func TestChaosSpecRoundTrip(t *testing.T) {
	sched := chaosTestSchedule(1000)
	sched.Events = append(sched.Events, ChaosEvent{Kind: DomainOutage, Domain: 1, AtMs: 400.125, ForMs: 33.6})
	parsed, err := ParseChaosSchedule(sched.String())
	if err != nil {
		t.Fatalf("re-parse of %q: %v", sched.String(), err)
	}
	if !slices.Equal(parsed.Events, sched.Events) {
		t.Errorf("round trip lost events:\nwant %+v\ngot  %+v", sched.Events, parsed.Events)
	}
	empty, err := ParseChaosSchedule("  ")
	if err != nil || empty.Active() {
		t.Errorf("blank spec: schedule %+v, err %v, want inactive, nil", empty, err)
	}
}

func TestParseChaosScheduleErrors(t *testing.T) {
	for _, tc := range []struct{ spec, want string }{
		{"down", "missing ':'"},
		{"boom:dom=1,at=2,for=3", "unknown chaos event kind"},
		{"down:dom=1,at=2", `missing key "for"`},
		{"part:a=0,at=2,for=3", `missing key "b"`},
		{"slow:dom=1,at=2,for=3", `missing key "x"`},
		{"down:at=2,for=3", `missing key "dom"`},
		{"down:dom=1,for=3", `missing key "at"`},
		{"down:dom=1,dom=2,at=0,for=1", `repeats key "dom"`},
		{"down:dom=zz,at=0,for=1", `value "zz"`},
		{"down:dom=1,at=0,for=1,x=2", `unknown key "x"`},
		{"recover:dom=1,at=5,for=2", `unknown key "for"`},
		{"part:dom=1,a=0,b=1,at=0,for=1", `unknown key "dom"`},
		{"down:dom,at=0,for=1", "missing '='"},
	} {
		_, err := ParseChaosSchedule(tc.spec)
		if err == nil {
			t.Errorf("spec %q accepted", tc.spec)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("spec %q: err %v, want mention of %q", tc.spec, err, tc.want)
		}
	}
}

func TestChaosScheduleValidate(t *testing.T) {
	ev := func(es ...ChaosEvent) []ChaosEvent { return es }
	for name, tc := range map[string]struct {
		sched ChaosSchedule
		want  string // "" means valid
	}{
		"good":            {chaosTestSchedule(1000), ""},
		"zero":            {ChaosSchedule{}, ""},
		"neg-domains":     {ChaosSchedule{Domains: -1, Events: ev(ChaosEvent{Kind: DomainOutage, AtMs: 1, ForMs: 1})}, "-1 chaos domains"},
		"too-many":        {ChaosSchedule{Domains: 9, Events: ev(ChaosEvent{Kind: DomainOutage, AtMs: 1, ForMs: 1})}, "exceed 4 nodes"},
		"domains-no-ev":   {ChaosSchedule{Domains: 2}, "without chaos events"},
		"neg-at":          {ChaosSchedule{Events: ev(ChaosEvent{Kind: DomainOutage, AtMs: -1, ForMs: 1})}, "negative instant"},
		"nan-at":          {ChaosSchedule{Events: ev(ChaosEvent{Kind: DomainOutage, AtMs: math.NaN(), ForMs: 1})}, "non-finite"},
		"inf-at":          {ChaosSchedule{Events: ev(ChaosEvent{Kind: DomainOutage, AtMs: math.Inf(1), ForMs: 1})}, "non-finite"},
		"out-of-order":    {ChaosSchedule{Events: ev(ChaosEvent{Kind: DomainOutage, AtMs: 10, ForMs: 1}, ChaosEvent{Kind: DomainOutage, AtMs: 5, ForMs: 1})}, "out of order"},
		"recover-window":  {ChaosSchedule{Events: ev(ChaosEvent{Kind: Recover, AtMs: 1, ForMs: 2})}, "recover event 0 has a window"},
		"zero-window":     {ChaosSchedule{Events: ev(ChaosEvent{Kind: DomainOutage, AtMs: 1})}, "window length 0"},
		"nan-window":      {ChaosSchedule{Events: ev(ChaosEvent{Kind: DomainOutage, AtMs: 1, ForMs: math.NaN()})}, "window length"},
		"inf-overflow":    {ChaosSchedule{Events: ev(ChaosEvent{Kind: DomainOutage, AtMs: 1e308, ForMs: 1e308})}, "window length"},
		"small-factor":    {ChaosSchedule{Events: ev(ChaosEvent{Kind: DomainSlowdown, AtMs: 1, ForMs: 1, Factor: 0.5})}, "factor 0.5 < 1"},
		"stray-factor":    {ChaosSchedule{Events: ev(ChaosEvent{Kind: DomainOutage, AtMs: 1, ForMs: 1, Factor: 2})}, "non-slowdown"},
		"bad-domain":      {ChaosSchedule{Events: ev(ChaosEvent{Kind: DomainOutage, Domain: 4, AtMs: 1, ForMs: 1})}, "outside [0,4)"},
		"self-partition":  {ChaosSchedule{Events: ev(ChaosEvent{Kind: Partition, Domain: 1, Peer: 1, AtMs: 1, ForMs: 1})}, "from itself"},
		"stray-peer":      {ChaosSchedule{Events: ev(ChaosEvent{Kind: DomainOutage, Peer: 2, AtMs: 1, ForMs: 1})}, "non-partition"},
		"bad-kind":        {ChaosSchedule{Events: ev(ChaosEvent{Kind: ChaosKind(9), AtMs: 1, ForMs: 1})}, "invalid kind"},
		"bad-pair-domain": {ChaosSchedule{Domains: 2, Events: ev(ChaosEvent{Kind: Partition, Domain: 0, Peer: 3, AtMs: 1, ForMs: 1})}, "outside [0,2)"},
	} {
		errs := tc.sched.validateErrs(4)
		if tc.want == "" {
			if len(errs) != 0 {
				t.Errorf("%s: unexpected errors %v", name, errs)
			}
			continue
		}
		found := false
		for _, err := range errs {
			if strings.Contains(err.Error(), tc.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: errors %v missing %q", name, errs, tc.want)
		}
	}
}

// TestChaosRecoverTruncation: a recover event cuts the open windows of
// its domain — including partition windows involving it — at its
// instant, and fully recovered (zero-length) windows are dropped.
func TestChaosRecoverTruncation(t *testing.T) {
	var cs chaosState
	cs.init(&ChaosSchedule{Domains: 2, Events: []ChaosEvent{
		{Kind: DomainSlowdown, Domain: 0, AtMs: 50, ForMs: 100, Factor: 3},
		{Kind: DomainOutage, Domain: 1, AtMs: 100, ForMs: 200},
		{Kind: Partition, Domain: 0, Peer: 1, AtMs: 150, ForMs: 200},
		{Kind: Recover, Domain: 1, AtMs: 180},
		{Kind: DomainOutage, Domain: 0, AtMs: 400, ForMs: 50},
		{Kind: Recover, Domain: 0, AtMs: 400},
	}}, 4)
	d0out := cs.out[cs.outIdx[0]:cs.outIdx[1]]
	d1out := cs.out[cs.outIdx[1]:cs.outIdx[2]]
	if len(d0out) != 0 {
		t.Errorf("domain 0 outage recovered at its start must vanish, got %+v", d0out)
	}
	if len(d1out) != 1 || d1out[0] != (chaosWin{start: 100, end: 180}) {
		t.Errorf("domain 1 outage = %+v, want [100,180)", d1out)
	}
	part := cs.part[cs.partIdx[0]:cs.partIdx[1]]
	if len(part) != 1 || part[0] != (chaosWin{start: 150, end: 180}) {
		t.Errorf("partition window = %+v, want [150,180)", part)
	}
	slow := cs.slow[cs.slowIdx[0]:cs.slowIdx[1]]
	if len(slow) != 1 || slow[0] != (chaosWin{start: 50, end: 150, factor: 3}) {
		t.Errorf("slowdown window = %+v, want [50,150) x3", slow)
	}
	if cs.clearMs != 180 {
		t.Errorf("clearMs = %g, want 180 (last surviving window end)", cs.clearMs)
	}
	if f := cs.slowFactor(0, 100); f != 3 {
		t.Errorf("slowFactor(domain 0 node, mid-window) = %g, want 3", f)
	}
	if f := cs.slowFactor(0, 150); f != 1 {
		t.Errorf("slowFactor at window end = %g, want 1 (half-open interval)", f)
	}
	if f := cs.slowFactor(2, 100); f != 1 {
		t.Errorf("slowFactor(domain 1 node) = %g, want 1", f)
	}
}

// TestChaosTransitShift: a copy whose flight overlaps a severance window
// is lost and re-sent when the partition heals; back-to-back windows
// compound.
func TestChaosTransitShift(t *testing.T) {
	var cs chaosState
	cs.init(&ChaosSchedule{Domains: 2, Events: []ChaosEvent{
		{Kind: Partition, Domain: 0, Peer: 1, AtMs: 100, ForMs: 100},
		{Kind: Partition, Domain: 1, Peer: 0, AtMs: 250, ForMs: 50},
	}}, 4)
	for _, tc := range []struct {
		home, target    int
		depart, transit float64
		shift           float64
		resends         int
	}{
		{0, 1, 50, 10, 0, 0},   // lands before the window opens
		{0, 0, 150, 10, 0, 0},  // same domain: never severed
		{0, 2, 95, 10, 105, 1}, // in flight at open: resent at 200
		{2, 0, 150, 5, 50, 1},  // launched into the window (reversed pair)
		{0, 2, 200, 5, 0, 0},   // window end is exclusive
		{0, 2, 95, 60, 205, 2}, // resend at 200 still in flight at 250: resent again at 300
		{0, 2, 240, 5, 0, 0},   // gap between windows, short flight
		{0, 2, 240, 20, 60, 1}, // gap departure, flight overlaps the second window
	} {
		shift, resends := cs.transitShift(tc.home, tc.target, tc.depart, tc.transit)
		if shift != tc.shift || resends != tc.resends {
			t.Errorf("transitShift(%d→%d, depart %g, transit %g) = (%g, %d), want (%g, %d)",
				tc.home, tc.target, tc.depart, tc.transit, shift, resends, tc.shift, tc.resends)
		}
	}
}

// TestChaosOutageMs: the availability numerator merges overlapping
// windows per domain and clips to the horizon.
func TestChaosOutageMs(t *testing.T) {
	var cs chaosState
	cs.init(&ChaosSchedule{Domains: 2, Events: []ChaosEvent{
		{Kind: DomainOutage, Domain: 0, AtMs: 0, ForMs: 100},
		{Kind: DomainOutage, Domain: 0, AtMs: 50, ForMs: 100},
		{Kind: DomainOutage, Domain: 1, AtMs: 60, ForMs: 20},
		{Kind: DomainOutage, Domain: 0, AtMs: 200, ForMs: 50},
	}}, 4)
	if got := cs.outageMs(220); got != 190 {
		t.Errorf("outageMs(220) = %g, want 190 ([0,150)+[200,220) on domain 0, [60,80) on domain 1)", got)
	}
	if got := cs.outageMs(100); got != 120 {
		t.Errorf("outageMs(100) = %g, want 120 (clipped)", got)
	}
}

// TestChaosDomainAvailabilityMetric pins the open-loop recovery
// metrics on an exactly computable schedule: one 50 ms outage of one of
// two domains over a 400 ms horizon.
func TestChaosDomainAvailabilityMetric(t *testing.T) {
	cfg := openTestConfig(t, 4, &OpenLoop{
		Arrivals:   traffic.Config{Model: traffic.Poisson, RatePerMs: openRate(t, 4, 0.4)},
		DurationMs: 400,
		SLAMs:      50,
	})
	cfg.Chaos = ChaosSchedule{Domains: 2, Events: []ChaosEvent{
		{Kind: DomainOutage, Domain: 0, AtMs: 100, ForMs: 50},
	}}
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := 1 - 50.0/(2*400); res.DomainAvailability != want {
		t.Errorf("DomainAvailability = %g, want %g", res.DomainAvailability, want)
	}
	if res.TimeToRecoverMs < 0 {
		t.Errorf("TimeToRecoverMs = %g: a lightly loaded fleet must recover from a 50 ms outage", res.TimeToRecoverMs)
	}
	if res.RetryAmplification < 1 {
		t.Errorf("RetryAmplification = %g, want >= 1 (every query sends at least its primaries)", res.RetryAmplification)
	}
	if res.PostFaultOfferedQPS <= 0 || res.PostFaultGoodput <= 0 {
		t.Errorf("post-fault window empty: offered %g, goodput %g", res.PostFaultOfferedQPS, res.PostFaultGoodput)
	}

	clean := cfg
	clean.Chaos = ChaosSchedule{}
	cres, err := Simulate(clean)
	if err != nil {
		t.Fatal(err)
	}
	if cres.DomainAvailability != 1 || cres.TimeToRecoverMs != 0 || cres.BreakerOpenMinutes != 0 {
		t.Errorf("clean run recovery metrics: availability %g, recover %g, breaker %g, want 1, 0, 0",
			cres.DomainAvailability, cres.TimeToRecoverMs, cres.BreakerOpenMinutes)
	}
}

// TestChaosClosedLoopDeterministic: the closed loop accepts schedules
// too, and repeated runs are bit-identical.
func TestChaosClosedLoopDeterministic(t *testing.T) {
	cfg := testConfig(t, 4, RowRange, 0.01, trace.MediumHot)
	cfg.Chaos = chaosTestSchedule(cfg.MeanArrivalMs * float64(cfg.Queries))
	a, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("chaos run not deterministic:\n%+v\n%+v", a, b)
	}
	if a.DomainAvailability >= 1 {
		t.Errorf("DomainAvailability = %g with a scheduled outage, want < 1", a.DomainAvailability)
	}
}

// TestChaosAdaptiveByteIdentical is the robustness tier's named identity
// suite (CI runs it under -race): every chaos + adaptive-mitigation
// scenario must be byte-identical across Sequential and Parallel(2, 8),
// in both loops and both open-loop summary modes. This is the scripted
// counterpart of the generic exec-backend families; it exists so the
// chaos/budget/breaker path is pinned by name.
func TestChaosAdaptiveByteIdentical(t *testing.T) {
	forceFanOut(t)
	closed := execConfigs(t)
	open := openExecConfigs(t)
	cfgs := map[string]Config{
		"closed-chaos":    closed["chaos"],
		"closed-adaptive": closed["chaos-adaptive"],
		"open-adaptive":   open["chaos-adaptive"],
	}
	stream := open["chaos-adaptive"]
	o := *stream.Open
	o.StreamStats = true
	stream.Open = &o
	cfgs["open-adaptive-stream"] = stream
	for name, cfg := range cfgs {
		t.Run(name, func(t *testing.T) {
			want, err := Simulate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{2, 8} {
				restore := SetExecBackend(Parallel(shards))
				got, err := Simulate(cfg)
				restore()
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("Parallel(%d) diverged from Sequential:\nseq %+v\npar %+v", shards, want, got)
				}
			}
		})
	}
}
