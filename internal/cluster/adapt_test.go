package cluster

import (
	"strings"
	"testing"

	"dlrmsim/internal/trace"
)

// TestAdaptEpochGrid drives the epoch-grid state machine directly
// through one full breaker life cycle: closed → open (rate trip) →
// cooldown → half-open → probe → closed, with the budget's cumulative
// deficit check alongside.
func TestAdaptEpochGrid(t *testing.T) {
	m := &Mitigation{
		TimeoutMs: 10, MaxRetries: 1,
		RetryBudget: 0.5, AdaptEpochMs: 100,
		BreakerTripRate: 0.5, BreakerMinSamples: 2, BreakerCooldownMs: 150,
	}
	var ad adaptState
	ad.init(m, 2)

	// Warmup epoch: nothing settled, so the budget denies (0 >= 0.5·0).
	if ad.allowCond(0) || ad.allowCond(1) {
		t.Error("conditional allowed before the first epoch settled")
	}

	// Node 0 answers 4 primaries, all past the timeout.
	for i := 0; i < 4; i++ {
		ad.observe(0, copyPrimary, 25, &ad.pendPrim, &ad.pendCond)
	}
	ad.advanceTo(100) // settles the [0,100) epoch
	if !ad.allowCond(1) {
		t.Error("budget denies with 0 conditionals against 4 primaries")
	}
	if ad.allowCond(0) {
		t.Error("breaker stayed closed at a 4/4 slow epoch over min samples")
	}
	if ad.breakers[0].state != breakerOpen || ad.breakers[0].until != 250 {
		t.Fatalf("breaker 0 = %+v, want open until 250", ad.breakers[0])
	}

	// Budget: two conditionals against four primaries hits 0.5 exactly —
	// the comparison is >=, so the budget is spent.
	ad.observe(1, copyHedge, 5, &ad.pendPrim, &ad.pendCond)
	ad.observe(1, copyRetry, 5, &ad.pendPrim, &ad.pendCond)
	ad.advanceTo(200) // boundary 200 settles; 200 < until, breaker stays open
	if ad.allowCond(1) {
		t.Error("budget allows past RetryBudget·primaries")
	}
	if ad.breakers[0].state != breakerOpen {
		t.Errorf("breaker half-opened before its cooldown (state %d)", ad.breakers[0].state)
	}

	// More primaries re-arm the budget; boundary 300 >= until half-opens.
	for i := 0; i < 8; i++ {
		ad.observe(1, copyPrimary, 5, &ad.pendPrim, &ad.pendCond)
	}
	ad.advanceTo(300)
	if ad.breakers[0].state != breakerHalfOpen {
		t.Fatalf("breaker 0 state %d at boundary 300, want half-open", ad.breakers[0].state)
	}
	if !ad.allowCond(0) {
		t.Error("half-open breaker must admit a probe")
	}

	// A fast probe closes it at the next boundary.
	ad.observe(0, copyHedge, 5, &ad.pendPrim, &ad.pendCond)
	ad.advanceTo(400)
	if ad.breakers[0].state != breakerClosed {
		t.Errorf("breaker 0 state %d after a fast probe epoch, want closed", ad.breakers[0].state)
	}

	// Open for the [100,200) and [200,300) epochs on one node.
	ad.lastT = 350
	if got := ad.finalize(); got != 200 {
		t.Errorf("finalize() = %g node·ms breaker-open, want 200", got)
	}
}

// TestBudgetSuppressionLowersHedgeRate pins the accounting contract: a
// budget-denied conditional copy was never launched, so it must not
// count in HedgeRate — a starved budget drives the rate itself down,
// not just the served traffic.
func TestBudgetSuppressionLowersHedgeRate(t *testing.T) {
	base := faultConfig(t, trace.HighHot)
	base.Mitigation = Mitigation{HedgeDelayMs: hedgeDelay(t, trace.HighHot)}
	free, err := Simulate(base)
	if err != nil {
		t.Fatal(err)
	}
	if free.HedgeRate <= 0 {
		t.Fatal("fixture produced no hedges; the suppression comparison is vacuous")
	}
	capped := base
	capped.Mitigation.RetryBudget = 0.01
	tight, err := Simulate(capped)
	if err != nil {
		t.Fatal(err)
	}
	if tight.HedgeRate > free.HedgeRate/2 {
		t.Errorf("HedgeRate %g under a 1%% budget vs %g unbudgeted: denied hedges are leaking into the rate",
			tight.HedgeRate, free.HedgeRate)
	}
	if tight.RetryAmplification >= free.RetryAmplification {
		t.Errorf("RetryAmplification %g under budget >= %g unbudgeted", tight.RetryAmplification, free.RetryAmplification)
	}
}

// TestMitigationValidateAdaptive: every bad adaptive knob combination is
// rejected, and the zero-means-default resolution only runs when the
// adaptive machinery is on.
func TestMitigationValidateAdaptive(t *testing.T) {
	for name, tc := range map[string]struct {
		m    Mitigation
		want string // "" means valid
	}{
		"budget-hedge":      {Mitigation{HedgeDelayMs: 1, RetryBudget: 0.2}, ""},
		"budget-retries":    {Mitigation{TimeoutMs: 2, MaxRetries: 1, RetryBudget: 0.2}, ""},
		"breaker":           {Mitigation{TimeoutMs: 2, BreakerTripRate: 0.5}, ""},
		"neg-budget":        {Mitigation{HedgeDelayMs: 1, RetryBudget: -0.1}, "negative adaptive"},
		"budget-nothing":    {Mitigation{RetryBudget: 0.2}, "needs retries or hedges"},
		"trip-too-big":      {Mitigation{TimeoutMs: 2, BreakerTripRate: 1.5}, "outside (0,1]"},
		"trip-no-timeout":   {Mitigation{HedgeDelayMs: 1, BreakerTripRate: 0.5}, "need a timeout"},
		"knobs-no-trip":     {Mitigation{TimeoutMs: 2, MaxRetries: 1, BreakerMinSamples: 5}, "need a trip rate"},
		"epoch-no-adaptive": {Mitigation{TimeoutMs: 2, MaxRetries: 1, AdaptEpochMs: 8}, "needs a retry budget or breaker"},
		"degraded-alone":    {Mitigation{DegradedJoin: true}, "degraded joins need a timeout"},
	} {
		m := tc.m
		err := m.validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: rejected: %v", name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err %v, want mention of %q", name, err, tc.want)
		}
	}

	// Default resolution: epoch from the timeout, cooldown from the epoch.
	m := Mitigation{TimeoutMs: 3, MaxRetries: 1, RetryBudget: 0.2, BreakerTripRate: 0.5}
	if err := m.validate(); err != nil {
		t.Fatal(err)
	}
	if m.AdaptEpochMs != 12 || m.BreakerMinSamples != 10 || m.BreakerCooldownMs != 48 {
		t.Errorf("defaults = epoch %g, min %d, cooldown %g; want 12, 10, 48",
			m.AdaptEpochMs, m.BreakerMinSamples, m.BreakerCooldownMs)
	}

	// Config.Validate must not leak the default resolution.
	cfg := Config{
		Plan:            validPlan(t),
		SamplesPerQuery: 4,
		MeanArrivalMs:   1,
		Timing:          Timing{ColdLookupUs: 0.5},
		Mitigation:      Mitigation{TimeoutMs: 3, MaxRetries: 1, RetryBudget: 0.2},
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Mitigation.AdaptEpochMs != 0 {
		t.Errorf("Validate resolved AdaptEpochMs to %g in the caller's config", cfg.Mitigation.AdaptEpochMs)
	}
}
