package cluster

import (
	"strings"
	"testing"

	"dlrmsim/internal/dlrm"
)

func validPlan(t *testing.T) *Plan {
	t.Helper()
	plan, err := NewPlan(dlrm.RM2Small().Scaled(20), 4, RowRange, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// TestConfigValidateCollectsAllViolations: every problem in one report.
func TestConfigValidateCollectsAllViolations(t *testing.T) {
	cfg := Config{
		Plan:            validPlan(t),
		SamplesPerQuery: 0,
		MeanArrivalMs:   -1,
		Timing:          Timing{ColdLookupUs: -2, DenseMs: -1},
		Net:             Network{LatencyMs: -1},
		ServersPerNode:  -3,
		JitterFrac:      -0.5,
		Queries:         -7,
		Faults:          FaultModel{DropProb: 2},
		Mitigation:      Mitigation{MaxRetries: 3},
		Chaos: ChaosSchedule{
			Domains: 9,
			Events:  []ChaosEvent{{Kind: DomainOutage, Domain: 2, AtMs: 10, ForMs: -5}},
		},
	}
	err := cfg.Validate()
	if err == nil {
		t.Fatal("Validate accepted a config with eleven violations")
	}
	for _, want := range []string{
		"samples per query",
		"mean arrival",
		"cold lookup",
		"dense-stage",
		"network parameters",
		"-3 servers per node",
		"jitter fraction",
		"-7 queries",
		"drop probability",
		"retries need a timeout",
		"chaos domains exceed",
		"window length -5",
	} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error missing %q:\n%v", want, err)
		}
	}
}

// TestConfigValidateDoesNotMutate: unlike applyDefaults (which fills
// DropDetectMs and other defaults in place), Validate must leave the
// config untouched — callers validate the same value they later simulate.
func TestConfigValidateDoesNotMutate(t *testing.T) {
	cfg := Config{
		Plan:            validPlan(t),
		SamplesPerQuery: 4,
		MeanArrivalMs:   1,
		Timing:          Timing{ColdLookupUs: 0.5},
		Faults:          FaultModel{DropProb: 0.1}, // DropDetectMs unset
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if cfg.Faults.DropDetectMs != 0 || cfg.ServersPerNode != 0 || cfg.Queries != 0 {
		t.Errorf("Validate mutated the config: %+v", cfg)
	}
}

func TestConfigValidateAcceptsDefaults(t *testing.T) {
	cfg := Config{
		Plan:            validPlan(t),
		SamplesPerQuery: 4,
		MeanArrivalMs:   1,
		Timing:          Timing{ColdLookupUs: 0.5},
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("zero-means-default config rejected: %v", err)
	}
	if _, err := Simulate(cfg); err != nil {
		t.Errorf("validated config fails to simulate: %v", err)
	}
}

// TestConfigValidateWarmupBounds mirrors applyDefaults' warmup semantics
// (0 = default, -1 = explicit zero, < -1 invalid, >= queries invalid).
func TestConfigValidateWarmupBounds(t *testing.T) {
	base := Config{
		Plan:            validPlan(t),
		SamplesPerQuery: 4,
		MeanArrivalMs:   1,
		Timing:          Timing{ColdLookupUs: 0.5},
	}
	for warmup, wantOK := range map[int]bool{0: true, -1: true, -2: false, 100: true, 4000: false} {
		cfg := base
		cfg.Queries = 2000
		cfg.WarmupQueries = warmup
		if err := cfg.Validate(); (err == nil) != wantOK {
			t.Errorf("warmup %d: err = %v, want ok=%v", warmup, err, wantOK)
		}
	}
}
