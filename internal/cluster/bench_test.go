package cluster

import (
	"testing"

	"dlrmsim/internal/trace"
)

func benchConfig(tb testing.TB, faulted bool) Config {
	tb.Helper()
	plan, err := NewPlan(testModel(), 8, RowRange, 0.01, 1)
	if err != nil {
		tb.Fatal(err)
	}
	tm := testTiming()
	cfg := Config{
		Plan:            plan,
		Hotness:         trace.HighHot,
		SamplesPerQuery: 8,
		Timing:          tm,
		Net:             DefaultNetwork(),
		ServersPerNode:  2,
		MeanArrivalMs:   ArrivalForUtilization(plan, tm, 8, 2, 0.55),
		JitterFrac:      0.08,
		Queries:         1500,
		Seed:            1,
	}
	if faulted {
		cfg.Faults = FaultModel{
			SlowdownEveryMs: 40, SlowdownMeanMs: 6, SlowdownFactor: 4,
			DownEveryMs: 120, DownMeanMs: 3,
			DropProb: 0.01,
		}
		cfg.Mitigation = Mitigation{TimeoutMs: 2, MaxRetries: 2, HedgeDelayMs: 1, DegradedJoin: true}
	}
	return cfg
}

// BenchmarkClusterSimulate measures one full discrete-event cluster run —
// query synthesis, copy scheduling, per-node FCFS service, and the join —
// on a steady fleet and under the fault+mitigation model.
func BenchmarkClusterSimulate(b *testing.B) {
	for _, bc := range []struct {
		name    string
		faulted bool
	}{{"steady", false}, {"faulted", true}} {
		b.Run(bc.name, func(b *testing.B) {
			cfg := benchConfig(b, bc.faulted)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Simulate(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
