package cluster

import (
	"fmt"
	"testing"

	"dlrmsim/internal/trace"
	"dlrmsim/internal/traffic"
)

func benchConfig(tb testing.TB, faulted bool) Config {
	tb.Helper()
	plan, err := NewPlan(testModel(), 8, RowRange, 0.01, 1)
	if err != nil {
		tb.Fatal(err)
	}
	tm := testTiming()
	cfg := Config{
		Plan:            plan,
		Hotness:         trace.HighHot,
		SamplesPerQuery: 8,
		Timing:          tm,
		Net:             DefaultNetwork(),
		ServersPerNode:  2,
		MeanArrivalMs:   ArrivalForUtilization(plan, tm, 8, 2, 0.55),
		JitterFrac:      0.08,
		Queries:         1500,
		Seed:            1,
	}
	if faulted {
		cfg.Faults = FaultModel{
			SlowdownEveryMs: 40, SlowdownMeanMs: 6, SlowdownFactor: 4,
			DownEveryMs: 120, DownMeanMs: 3,
			DropProb: 0.01,
		}
		cfg.Mitigation = Mitigation{TimeoutMs: 2, MaxRetries: 2, HedgeDelayMs: 1, DegradedJoin: true}
	}
	return cfg
}

// openBenchConfig is the day-scale open-loop workload the parallel
// execution backend is benchmarked on: a diurnal Poisson day against a
// population of revisiting users, admission control live, stream-stats
// on (the mode a real day-length run needs for flat memory).
func openBenchConfig(tb testing.TB) Config {
	tb.Helper()
	plan, err := NewPlan(testModel(), 8, RowRange, 0.01, 1)
	if err != nil {
		tb.Fatal(err)
	}
	tm := testTiming()
	return Config{
		Plan:            plan,
		Hotness:         trace.HighHot,
		SamplesPerQuery: 8,
		Timing:          tm,
		Net:             DefaultNetwork(),
		ServersPerNode:  2,
		JitterFrac:      0.08,
		Seed:            1,
		Open: &OpenLoop{
			Arrivals: traffic.Config{
				Model:     traffic.Poisson,
				RatePerMs: 1 / ArrivalForUtilization(plan, tm, 8, 2, 0.7),
				DayMs:     4000, DiurnalAmp: 0.6,
			},
			Population:  &traffic.Population{Users: 1 << 16, RevisitProb: 0.6, Affinity: 0.5},
			DurationMs:  4000,
			SLAMs:       50,
			Admission:   Admission{Policy: ShedOverBudget, QueueBudgetMs: 25},
			StreamStats: true,
		},
	}
}

// BenchmarkOpenLoopParallel measures the open-loop day-scale run under
// the conservative-window parallel backend at 1, 2, 4, and 8 logical
// processes (p1 = the sequential driver; the output is byte-identical
// at every P, so this is a pure execution-cost curve). Speedup over p1
// requires free hardware cores — on a single-CPU host the curve is
// flat and the windowing overhead is what's being measured.
func BenchmarkOpenLoopParallel(b *testing.B) {
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			cfg := openBenchConfig(b)
			restore := SetExecBackend(Parallel(p))
			defer restore()
			// One untimed run seeds the arena free list so allocs/op
			// reports the steady state, not one-time pool growth.
			if _, err := Simulate(cfg); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Simulate(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// chaosBenchConfig layers the robustness tier onto the open-loop day:
// a scheduled single-domain outage mid-day plus the full adaptive
// mitigation stack (retry budget and per-node circuit breakers), the
// configuration the chaos experiments (clu8/clu9) run.
func chaosBenchConfig(tb testing.TB) Config {
	tb.Helper()
	cfg := openBenchConfig(tb)
	cfg.Mitigation = Mitigation{
		TimeoutMs: 2, MaxRetries: 2,
		RetryBudget: 0.1, AdaptEpochMs: 4,
		BreakerTripRate: 0.5, BreakerMinSamples: 4,
	}
	cfg.Chaos = ChaosSchedule{
		Domains: 4,
		Events: []ChaosEvent{
			{Kind: DomainOutage, Domain: 2, AtMs: 1000, ForMs: 500},
		},
	}
	return cfg
}

// BenchmarkChaosOpenLoop measures the open-loop day with an active chaos
// schedule and adaptive overload control — the cost of the robustness
// tier on top of BenchmarkOpenLoopParallel's steady day. Byte-identical
// output at every P, so the p1/p4 pair is a pure execution-cost curve.
func BenchmarkChaosOpenLoop(b *testing.B) {
	for _, p := range []int{1, 4} {
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			cfg := chaosBenchConfig(b)
			restore := SetExecBackend(Parallel(p))
			defer restore()
			// Untimed warmup: steady-state allocs/op, as above.
			if _, err := Simulate(cfg); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Simulate(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestChaosOpenLoopAllocsSteadyState extends the arena's steady-state
// allocation guard to the robustness tier: once a warmup run has seeded
// the free list, an open-loop run with an active chaos schedule, retry
// budget, and breakers must reuse the recycled chaos/adaptive state
// rather than re-allocating it per run. Uses the small open fixture
// (not the day-scale bench config, whose population and stream-stats
// state dominates) so the bound isolates the chaos/adaptive layer.
func TestChaosOpenLoopAllocsSteadyState(t *testing.T) {
	cfg := openTestConfig(t, 4, &OpenLoop{
		Arrivals:   traffic.Config{Model: traffic.Poisson, RatePerMs: openRate(t, 4, 0.5)},
		DurationMs: 300,
		SLAMs:      50,
	})
	cfg.Mitigation = Mitigation{
		TimeoutMs: 2, MaxRetries: 2,
		RetryBudget: 0.1, AdaptEpochMs: 4,
		BreakerTripRate: 0.5, BreakerMinSamples: 4,
	}
	cfg.Chaos = ChaosSchedule{
		Domains: 4,
		Events: []ChaosEvent{
			{Kind: DomainOutage, Domain: 2, AtMs: 80, ForMs: 60},
			{Kind: DomainSlowdown, Domain: 0, AtMs: 150, ForMs: 50, Factor: 3},
		},
	}
	if _, err := Simulate(cfg); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(5, func() { Simulate(cfg) }); allocs > 16 {
		t.Errorf("chaos open-loop Simulate allocates %.0f objects/run in steady state, want <= 16", allocs)
	}
}

// BenchmarkClusterSimulate measures one full discrete-event cluster run —
// query synthesis, copy scheduling, per-node FCFS service, and the join —
// on a steady fleet and under the fault+mitigation model.
func BenchmarkClusterSimulate(b *testing.B) {
	for _, bc := range []struct {
		name    string
		faulted bool
	}{{"steady", false}, {"faulted", true}} {
		b.Run(bc.name, func(b *testing.B) {
			cfg := benchConfig(b, bc.faulted)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Simulate(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
