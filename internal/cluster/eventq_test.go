package cluster

import (
	"testing"

	"dlrmsim/internal/trace"
	"dlrmsim/internal/traffic"
)

// TestEventBackendsByteIdentical pins that the sort, boxed-heap,
// generic-heap, and wheel backends produce identical Results on both
// loops — the comparator is the contract, the backend is invisible.
// (The registry-wide sweep lives in internal/exp's differential suite;
// this is the fast in-package gate.)
func TestEventBackendsByteIdentical(t *testing.T) {
	closed := testConfig(t, 4, RowRange, 0.01, trace.HighHot)
	closed.Queries = 800
	closed.Faults = FaultModel{
		SlowdownEveryMs: 40, SlowdownMeanMs: 6, SlowdownFactor: 4,
		DownEveryMs: 120, DownMeanMs: 3,
		DropProb: 0.01,
	}
	closed.Mitigation = Mitigation{TimeoutMs: 2, MaxRetries: 2, HedgeDelayMs: 1, DegradedJoin: true}
	open := openTestConfig(t, 4, &OpenLoop{
		Arrivals:   traffic.Config{Model: traffic.Poisson, RatePerMs: openRate(t, 4, 0.7)},
		DurationMs: 400,
		SLAMs:      5,
		Admission:  Admission{Policy: ShedOverBudget, QueueBudgetMs: 8},
	})
	open.Mitigation = Mitigation{TimeoutMs: 2, MaxRetries: 1, HedgeDelayMs: 1}

	for _, cfg := range []Config{closed, open} {
		var results []Result
		for _, b := range []EventBackend{BackendDefault, BackendLegacy, BackendHeap, BackendWheel} {
			restore := SetEventBackend(b)
			res, err := Simulate(cfg)
			restore()
			if err != nil {
				t.Fatal(err)
			}
			results = append(results, res)
		}
		for i := 1; i < len(results); i++ {
			if results[i] != results[0] {
				t.Fatalf("backend %d diverges:\n%+v\n%+v", i, results[0], results[i])
			}
		}
	}
}

// TestOpenLoopDispatchAllocs extends the zero-alloc guards to open-loop
// dispatch: pushing and popping scheduled copies through the default
// (wheel) and heap backends must not allocate in steady state — the
// legacy container/heap backend boxed every copy through `any`, one
// heap allocation per scheduled copy in the hot path.
func TestOpenLoopDispatchAllocs(t *testing.T) {
	copies := make([]subCopy, 64)
	for i := range copies {
		copies[i] = subCopy{arrive: float64(i%13) * 0.3, sub: i, seq: i, attempt: i % 3}
	}
	// The last copy lands exactly one ring revolution ahead
	// (openWheelWidthMs × openWheelBuckets), so each cycle advances the
	// wheel by a whole revolution: every cycle reuses the same ring
	// slots and one warm cycle settles all bucket capacities.
	copies[len(copies)-1].arrive = openWheelWidthMs * openWheelBuckets
	for _, tc := range []struct {
		name    string
		backend EventBackend
		want    float64
	}{
		{"wheel", BackendWheel, 0},
		{"heap", BackendHeap, 0},
	} {
		q := newCopyQueue(tc.backend)
		base := 0.0 // keeps pushes monotone across cycles
		cycle := func() {
			start := base
			for _, c := range copies {
				c.arrive += start
				q.Push(c)
			}
			for q.Len() > 0 {
				base = q.Pop().arrive
			}
		}
		for i := 0; i < 8; i++ { // warm bucket/overflow capacity
			cycle()
		}
		if allocs := testing.AllocsPerRun(50, cycle); allocs > tc.want {
			t.Errorf("%s dispatch allocated %.0f times per cycle, want <= %.0f", tc.name, allocs, tc.want)
		}
	}
	// Document the legacy behavior the satellite fixed: boxing allocates
	// per copy.
	q := newCopyQueue(BackendLegacy)
	legacy := testing.AllocsPerRun(10, func() {
		for _, c := range copies {
			q.Push(c)
		}
		for q.Len() > 0 {
			q.Pop()
		}
	})
	if legacy == 0 {
		t.Error("legacy boxed heap unexpectedly allocation-free; the baseline claim in eventq.go is stale")
	}
}
