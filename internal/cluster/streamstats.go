package cluster

// Stream-stats mode for the open-loop tier (-stream-stats in
// cmd/dlrmcluster): instead of retaining one latency sample and one sub
// record per admitted query — O(queries) memory that makes a
// day-in-the-life run at production QPS (billions of events)
// impossible — the join happens INCREMENTALLY. Every sub-request counts
// its outstanding copies; when the last copy is processed the sub folds
// its resolution into its query's join record and returns its slot to a
// freelist, and when a query's last sub folds, the query finalizes:
// its latency goes into a fixed-memory stats.QuantileSketch and its
// record is recycled too. Live state is bounded by the in-flight
// high-water mark, not the run length.
//
// Accuracy contract: every counter metric (goodput, shed rate,
// violation minutes, fanout, retries, availability, completeness) is
// EXACT — the same per-query quantities fold in the same warmup gate as
// the batch join, merely earlier. P50/P95/P99 carry the sketch's
// bounded relative error (~0.8%, stats.QuantileSketch), and Mean can
// differ only by float summation order. The default mode keeps the
// exact batch join, so golden files are untouched.
//
// Event order under recycling: the copy comparator keys ties on the
// sub's monotone creation seq (sim.go), which the freelist does not
// reuse, so admission, queueing, and service times are bit-for-bit
// identical to the batch-join run — only the summary differs.

import "dlrmsim/internal/stats"

// openJoinRec is one in-flight query's incremental join state.
type openJoinRec struct {
	arrive        float64
	joined        float64 // max sub resolution time so far
	subsLeft      int
	queryLookups  int
	servedLookups int
	hedges        int
	retries       int
	fanout        int
	complete      bool
	post          bool // arrived at/after the warmup horizon
}

// streamJoin owns the incremental join: recycled records, the latency
// sketches, and the exact counters the batch join would produce.
//
// Under the parallel execution backend each partition owns one sketch
// and the summary merges them (stats.QuantileSketch.Merge — integer
// bucket addition, so the partition assignment is unobservable in the
// quantiles); the sequential driver runs with a single sketch. latSum
// accumulates every folded latency in canonical completion order —
// shared by both drivers, it keeps Result.Mean bit-for-bit identical
// whatever partition each query's sketch entry landed in.
type streamJoin struct {
	sketches  []stats.QuantileSketch // one per execution partition
	latSum    float64
	joins     []openJoinRec
	freeJoins []int

	warmupMs float64
	slaMs    float64
	denseMs  float64
	minuteMs float64
	violated map[int]bool

	postArr, postShed, postRevisit    int
	goodCount                         int
	fanoutSum, subCount               int
	hedgeCount, retryCount, fullJoins int
	completenessSum                   float64

	// Recovery observability (chaos.go): the minute buckets and
	// post-fault counters the batch join fills in its summary loop,
	// accumulated here at arrival/finalize time instead. ttrArr nil when
	// the run has no chaos schedule. All integer increments keyed by the
	// query's arrival instant, so the parallel driver's fold order is
	// unobservable.
	ttrArr, ttrGood []int
	pfThreshMs      float64
	pfArr, pfGood   int

	maxLiveJoins, maxLiveSubs int
}

// streamHighWater, when non-nil, receives the run's live-record
// high-water marks after a stream-stats run. Test hook for the
// flat-memory guarantee.
var streamHighWater func(liveSubs, liveJoins int)

func newStreamJoin(o *OpenLoop, minuteMs float64, violated map[int]bool, parts int) *streamJoin {
	return &streamJoin{
		sketches: make([]stats.QuantileSketch, parts),
		warmupMs: o.WarmupMs,
		slaMs:    o.SLAMs,
		denseMs:  0, // set by caller (needs cfg.Timing)
		minuteMs: minuteMs,
		violated: violated,
	}
}

// arrival records one arrival's router-side outcome and, when admitted,
// opens a join record. Returns the record's slot (-1 when none needed).
func (sj *streamJoin) arrival(now float64, admitted, revisit bool) int {
	post := now >= sj.warmupMs
	if post {
		sj.postArr++
		if revisit {
			sj.postRevisit++
		}
		if !admitted {
			sj.postShed++
		}
		if sj.ttrArr != nil {
			sj.ttrArr[int(now/sj.minuteMs)]++
			if now >= sj.pfThreshMs {
				sj.pfArr++
			}
		}
	}
	if !admitted {
		return -1
	}
	rec := openJoinRec{arrive: now, joined: now, complete: true, post: post}
	var slot int
	if n := len(sj.freeJoins); n > 0 {
		slot = sj.freeJoins[n-1]
		sj.freeJoins = sj.freeJoins[:n-1]
		sj.joins[slot] = rec
	} else {
		slot = len(sj.joins)
		sj.joins = append(sj.joins, rec)
	}
	if live := len(sj.joins) - len(sj.freeJoins); live > sj.maxLiveJoins {
		sj.maxLiveJoins = live
	}
	return slot
}

// subAttached notes one scheduled sub on a join record.
func (sj *streamJoin) subAttached(slot int) {
	sj.joins[slot].subsLeft++
	sj.joins[slot].fanout++
}

// finalizeIfEmpty closes a join record that attached no subs (an
// admitted query whose every lookup short-circuited): it joins at its
// own arrival, exactly as the batch loop scores it. No copy served it,
// so its latency folds into partition 0's sketch.
func (sj *streamJoin) finalizeIfEmpty(slot int) {
	if slot >= 0 && sj.joins[slot].subsLeft == 0 {
		sj.finalize(slot, 0)
	}
}

// copyDone is called after every processed copy, in canonical copy
// order. part is the execution partition that served the copy (0 under
// the sequential driver) — the sketch a finalizing query folds into.
// When it was the sub's last outstanding copy, the sub resolves into
// its join record and its slot is recycled; when that was the query's
// last sub, the query finalizes.
func (sj *streamJoin) copyDone(st *simState, subIdx int, part int) {
	sub := &st.subs[subIdx]
	sub.copiesLeft--
	if sub.copiesLeft > 0 {
		return
	}
	if live := len(st.subs) - len(st.freeSubs); live > sj.maxLiveSubs {
		sj.maxLiveSubs = live
	}
	rec := &sj.joins[sub.join]
	doneAt, ok := st.resolve(sub)
	if doneAt > rec.joined {
		rec.joined = doneAt
	}
	rec.queryLookups += sub.served
	rec.retries += sub.retries
	if sub.hedged {
		rec.hedges++
	}
	if ok {
		rec.servedLookups += sub.served
	} else {
		rec.complete = false
	}
	st.freeSubs = append(st.freeSubs, subIdx)
	rec.subsLeft--
	if rec.subsLeft == 0 {
		sj.finalize(sub.join, part)
	}
}

// finalize folds one joined query into the summary accumulators —
// the exact statements the batch join loop runs, minus the slice
// append — and recycles the record. part selects the sketch the
// latency lands in; every other accumulator is partition-blind.
func (sj *streamJoin) finalize(slot int, part int) {
	rec := &sj.joins[slot]
	if rec.post {
		lat := rec.joined + sj.denseMs - rec.arrive
		sj.sketches[part].Add(lat)
		sj.latSum += lat
		if lat <= sj.slaMs {
			sj.goodCount++
			if sj.ttrArr != nil {
				sj.ttrGood[int(rec.arrive/sj.minuteMs)]++
				if rec.arrive >= sj.pfThreshMs {
					sj.pfGood++
				}
			}
		} else {
			sj.violated[int(rec.arrive/sj.minuteMs)] = true
		}
		sj.fanoutSum += rec.fanout
		sj.subCount += rec.fanout
		sj.hedgeCount += rec.hedges
		sj.retryCount += rec.retries
		if rec.complete {
			sj.fullJoins++
		}
		if rec.queryLookups > 0 {
			sj.completenessSum += float64(rec.servedLookups) / float64(rec.queryLookups)
		} else {
			sj.completenessSum++
		}
	}
	sj.freeJoins = append(sj.freeJoins, slot)
}
