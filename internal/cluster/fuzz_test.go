package cluster

import (
	"slices"
	"testing"

	"dlrmsim/internal/dlrm"
	"dlrmsim/internal/trace"
)

// FuzzShardPlan checks the sharding invariant every router decision rests
// on: for any plan geometry, every (table, rank) resolves through the
// rank→row bijection to exactly one owning node in range, every row is
// reached by exactly one rank (the affine map is a permutation), and the
// per-node shard bytes account for every table exactly once.
func FuzzShardPlan(f *testing.F) {
	f.Add(uint8(4), uint16(64), uint8(3), false, uint8(0), uint64(1))
	f.Add(uint8(1), uint16(1), uint8(1), true, uint8(255), uint64(42))
	f.Add(uint8(8), uint16(1023), uint8(16), true, uint8(10), uint64(7))
	f.Fuzz(func(t *testing.T, tables uint8, rows uint16, nodes uint8, rowRange bool, fracByte uint8, seed uint64) {
		model := dlrm.RM2Small()
		model.Tables = int(tables%8) + 1
		model.RowsPerTable = int(rows%2048) + 1
		policy := TableWise
		if rowRange {
			policy = RowRange
		}
		frac := float64(fracByte) / 255
		plan, err := NewPlan(model, int(nodes%16)+1, policy, frac, seed)
		if err != nil {
			t.Skip() // invalid geometry is NewPlan's to reject, not ours
		}
		if plan.HotRows > model.RowsPerTable {
			t.Fatalf("HotRows %d exceeds table height %d", plan.HotRows, model.RowsPerTable)
		}
		for tb := 0; tb < model.Tables; tb++ {
			seen := make([]int, model.RowsPerTable) // rank count per row
			for rank := 0; rank < model.RowsPerTable; rank++ {
				row := plan.rowOfRank(tb, rank)
				if row < 0 || int(row) >= model.RowsPerTable {
					t.Fatalf("table %d rank %d: row %d out of range [0,%d)", tb, rank, row, model.RowsPerTable)
				}
				seen[row]++
				owner := plan.Owner(tb, row)
				if owner < 0 || owner >= plan.Nodes {
					t.Fatalf("table %d row %d: owner %d out of range [0,%d)", tb, row, owner, plan.Nodes)
				}
			}
			for row, n := range seen {
				if n != 1 {
					t.Fatalf("table %d row %d reached by %d ranks; want exactly 1", tb, row, n)
				}
			}
		}
		// Owned bytes must cover the whole model exactly once: replicas are
		// accounted separately, so sum(ShardBytes) == all tables' bytes.
		var sum int64
		for _, b := range plan.ShardBytes {
			if b < 0 {
				t.Fatalf("negative shard bytes %d", b)
			}
			sum += b
		}
		if want := model.PerTableBytes() * int64(model.Tables); sum != want {
			t.Fatalf("shards sum to %d bytes, want %d (every row owned exactly once)", sum, want)
		}
	})
}

// FuzzChaosSchedule checks the chaos front door's contract: a spec that
// parses and validates is runnable — materialization and a small
// simulation must not panic — String round-trips through
// ParseChaosSchedule exactly, and the materialized window order is
// deterministic (the schedule is static: no RNG anywhere).
func FuzzChaosSchedule(f *testing.F) {
	f.Add("down:dom=2,at=200,for=150;part:a=0,b=1,at=400,for=100")
	f.Add("slow:dom=0,at=10,for=50,x=4;recover:dom=0,at=30")
	f.Add("part:a=1,b=0,at=0,for=1;part:a=0,b=1,at=2,for=3")
	f.Add("down:dom=0,at=0,for=1e9;down:dom=0,at=5,for=1;recover:dom=0,at=6")
	f.Add("recover:dom=3,at=0")
	f.Add("down:dom=1,at=nan,for=1")
	f.Add("")
	f.Fuzz(func(t *testing.T, spec string) {
		sched, err := ParseChaosSchedule(spec)
		if err != nil {
			return // syntactically invalid: rejection is the contract
		}
		again, err := ParseChaosSchedule(sched.String())
		if err != nil {
			t.Fatalf("String() %q of a parsed schedule does not re-parse: %v", sched.String(), err)
		}
		// Compare canonical forms, not events: NaN parameters (rejected
		// below by validation) are never equal to themselves.
		if again.String() != sched.String() || len(again.Events) != len(sched.Events) {
			t.Fatalf("round trip through %q lost events:\nwant %+v\ngot  %+v", sched.String(), sched.Events, again.Events)
		}
		const nodes = 4
		if len(sched.validateErrs(nodes)) > 0 {
			return // semantically invalid: Config.Validate's to reject
		}
		var a, b chaosState
		a.init(&sched, nodes)
		b.init(&sched, nodes)
		if !slices.Equal(a.out, b.out) || !slices.Equal(a.slow, b.slow) || !slices.Equal(a.part, b.part) {
			t.Fatal("chaos materialization is not deterministic")
		}
		for n := 0; n < nodes; n++ {
			for _, at := range []float64{0, 1, 100, 1e6} {
				if fct := a.slowFactor(n, at); fct < 1 {
					t.Fatalf("slowFactor(%d, %g) = %g < 1", n, at, fct)
				}
				shift, resends := a.transitShift(0, n, at, 1)
				if shift < 0 || resends < 0 || (shift == 0) != (resends == 0) {
					t.Fatalf("transitShift(0→%d, %g) = (%g, %d)", n, at, shift, resends)
				}
			}
		}
		if out := a.outageMs(1e6); out < 0 {
			t.Fatalf("outageMs = %g < 0", out)
		}
		// A validated schedule must simulate without panicking.
		model := dlrm.RM2Small()
		plan, err := NewPlan(model, nodes, RowRange, 0.01, 1)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			Plan:            plan,
			Hotness:         trace.HighHot,
			SamplesPerQuery: 2,
			Timing:          testTiming(),
			Net:             DefaultNetwork(),
			MeanArrivalMs:   0.5,
			Queries:         40,
			WarmupQueries:   -1,
			Seed:            1,
			Chaos:           sched,
		}
		if _, err := Simulate(cfg); err != nil {
			t.Fatalf("validated schedule rejected by Simulate: %v", err)
		}
	})
}
