package cluster

import (
	"testing"

	"dlrmsim/internal/dlrm"
)

// FuzzShardPlan checks the sharding invariant every router decision rests
// on: for any plan geometry, every (table, rank) resolves through the
// rank→row bijection to exactly one owning node in range, every row is
// reached by exactly one rank (the affine map is a permutation), and the
// per-node shard bytes account for every table exactly once.
func FuzzShardPlan(f *testing.F) {
	f.Add(uint8(4), uint16(64), uint8(3), false, uint8(0), uint64(1))
	f.Add(uint8(1), uint16(1), uint8(1), true, uint8(255), uint64(42))
	f.Add(uint8(8), uint16(1023), uint8(16), true, uint8(10), uint64(7))
	f.Fuzz(func(t *testing.T, tables uint8, rows uint16, nodes uint8, rowRange bool, fracByte uint8, seed uint64) {
		model := dlrm.RM2Small()
		model.Tables = int(tables%8) + 1
		model.RowsPerTable = int(rows%2048) + 1
		policy := TableWise
		if rowRange {
			policy = RowRange
		}
		frac := float64(fracByte) / 255
		plan, err := NewPlan(model, int(nodes%16)+1, policy, frac, seed)
		if err != nil {
			t.Skip() // invalid geometry is NewPlan's to reject, not ours
		}
		if plan.HotRows > model.RowsPerTable {
			t.Fatalf("HotRows %d exceeds table height %d", plan.HotRows, model.RowsPerTable)
		}
		for tb := 0; tb < model.Tables; tb++ {
			seen := make([]int, model.RowsPerTable) // rank count per row
			for rank := 0; rank < model.RowsPerTable; rank++ {
				row := plan.rowOfRank(tb, rank)
				if row < 0 || int(row) >= model.RowsPerTable {
					t.Fatalf("table %d rank %d: row %d out of range [0,%d)", tb, rank, row, model.RowsPerTable)
				}
				seen[row]++
				owner := plan.Owner(tb, row)
				if owner < 0 || owner >= plan.Nodes {
					t.Fatalf("table %d row %d: owner %d out of range [0,%d)", tb, row, owner, plan.Nodes)
				}
			}
			for row, n := range seen {
				if n != 1 {
					t.Fatalf("table %d row %d reached by %d ranks; want exactly 1", tb, row, n)
				}
			}
		}
		// Owned bytes must cover the whole model exactly once: replicas are
		// accounted separately, so sum(ShardBytes) == all tables' bytes.
		var sum int64
		for _, b := range plan.ShardBytes {
			if b < 0 {
				t.Fatalf("negative shard bytes %d", b)
			}
			sum += b
		}
		if want := model.PerTableBytes() * int64(model.Tables); sum != want {
			t.Fatalf("shards sum to %d bytes, want %d (every row owned exactly once)", sum, want)
		}
	})
}
