package cluster

// Closed-loop half of the parallel execution backend (DESIGN.md §14).
// Phase 1's lookup draws are pure functions of (Seed, query, table) —
// independent RNG lanes via stats.SplitSeed — so they pre-compute in
// parallel over the query range with no synchronization at all. Phase 2
// is the conservative-window discipline from exec.go over the sorted
// copy order: when the mitigation policy schedules no conditional
// copies the run is one infinite window; otherwise windows of width
// Net.LatencyMs walk the sorted slice with a barrier merge between
// windows.

import (
	"dlrmsim/internal/stats"
	"dlrmsim/internal/trace"
)

// parallelizable reports whether this run can execute under the
// windowed parallel backend: conditional copies (hedges, timeout
// retries) need a positive network lookahead to defer their
// suppression state behind; with a free network there is no window to
// hide the merge in and the run stays sequential.
func (s *simState) parallelizable() bool {
	mit := &s.cfg.Mitigation
	if mit.HedgeDelayMs <= 0 && mit.TimeoutMs <= 0 {
		return true
	}
	return s.cfg.Net.LatencyMs > 0
}

// runParallel is run()'s parallel-backend variant: identical copy
// order, identical per-copy arithmetic, with partitions serving
// disjoint node sets inside each conservative window.
func (s *simState) runParallel(parts int, scratch []partScratch) {
	s.sortCopies()
	mit := &s.cfg.Mitigation
	if mit.HedgeDelayMs <= 0 && mit.TimeoutMs <= 0 {
		// No conditional copies: nothing ever reads the deferred router
		// state mid-run, so the whole schedule is one window.
		s.serveWindow(s.copies, parts, scratch, nil, nil)
		return
	}
	lookahead := s.cfg.Net.LatencyMs
	for i := 0; i < len(s.copies); {
		w := s.copies[i].arrive
		end := w + lookahead
		if ad := s.adapt; ad != nil {
			// Settle every epoch boundary at or before the window start,
			// then truncate the window at the next boundary: windows never
			// span a boundary, so settle() sees exactly the pre-boundary
			// copies — the same pending set the sequential driver folds.
			ad.advanceTo(w)
			if ad.boundary < end {
				end = ad.boundary
			}
		}
		j := i + 1
		for j < len(s.copies) && s.copies[j].arrive < end {
			j++
		}
		s.serveWindow(s.copies[i:j], parts, scratch, nil, nil)
		i = j
	}
}

// drawQuery draws query q's per-table lookups and splits them by the
// plan: cold (len Nodes, overwritten) receives per-owner cold-lookup
// counts and the return value is the replicated-hot count. Extracted
// from the closed-loop phase 1 so the parallel backend can pre-draw
// queries concurrently — every (q, table) stream is a stateless RNG
// lane, so any partitioning of the query range yields identical draws.
func (s *simState) drawQuery(zipf *stats.Zipf, draws, q int, cold []int) (hot int) {
	for n := range cold {
		cold[n] = 0
	}
	model := s.plan.Model
	for t := 0; t < model.Tables; t++ {
		rng := stats.SeededRNG(stats.SplitSeed(s.cfg.Seed^0x100C, uint64(q*model.Tables+t)))
		for l := 0; l < draws; l++ {
			var r int
			switch s.cfg.Hotness {
			case trace.OneItem:
				// rank 0, the single hot row
			case trace.RandomAccess:
				r = rng.Intn(model.RowsPerTable)
			default:
				r = zipf.SampleWith(&rng)
			}
			if s.plan.Replicated(r) {
				hot++
			} else {
				cold[s.plan.Owner(t, s.plan.rowOfRank(t, r))]++
			}
		}
	}
	return hot
}

// predrawQueries computes every query's lookup split concurrently:
// hot[q] and cold[q*Nodes:(q+1)*Nodes] hold what drawQuery would
// produce for q. The static range split is unobservable — each query's
// draws depend only on (Seed, q).
func (s *simState) predrawQueries(zipf *stats.Zipf, draws, queries, parts int, hot, cold []int) {
	nodes := s.plan.Nodes
	chunk := (queries + parts - 1) / parts
	runParts(parts, func(p int) {
		lo := p * chunk
		hi := lo + chunk
		if hi > queries {
			hi = queries
		}
		for q := lo; q < hi; q++ {
			hot[q] = s.drawQuery(zipf, draws, q, cold[q*nodes:(q+1)*nodes])
		}
	})
}
