package cluster

import (
	"math"
	"strings"
	"testing"

	"dlrmsim/internal/stats"
	"dlrmsim/internal/trace"
	"dlrmsim/internal/traffic"
)

// openTestConfig wraps an OpenLoop spec in the standard small-cluster
// fixture. The closed-loop load knobs stay zero — that is the open-mode
// contract.
func openTestConfig(t *testing.T, nodes int, o *OpenLoop) Config {
	t.Helper()
	plan, err := NewPlan(testModel(), nodes, RowRange, 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Plan:            plan,
		Hotness:         trace.HighHot,
		SamplesPerQuery: 8,
		Timing:          testTiming(),
		Net:             DefaultNetwork(),
		ServersPerNode:  2,
		JitterFrac:      0.08,
		Open:            o,
		Seed:            1,
	}
}

// openColdConfig is openTestConfig without hot-row replication, so the
// cold-path work estimate openRate calibrates against is exact — the
// overload tests need true utilization, not the replication-discounted
// one.
func openColdConfig(t *testing.T, nodes int, o *OpenLoop) Config {
	t.Helper()
	cfg := openTestConfig(t, nodes, o)
	plan, err := NewPlan(testModel(), nodes, RowRange, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Plan = plan
	return cfg
}

// openRate returns the arrival rate (queries/ms) loading the fixture
// cluster to the given utilization under the cold-path work estimate.
func openRate(t *testing.T, nodes int, util float64) float64 {
	t.Helper()
	plan, err := NewPlan(testModel(), nodes, RowRange, 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	return 1 / ArrivalForUtilization(plan, testTiming(), 8, 2, util)
}

// TestAdmissionBoundary: the shed rule's boundary is strict — a backlog
// exactly at the budget is admitted, anything beyond sheds, and AdmitAll
// never sheds however deep the queue.
func TestAdmissionBoundary(t *testing.T) {
	a := Admission{Policy: ShedOverBudget, QueueBudgetMs: 5}
	if a.shed(0) || a.shed(4.999) || a.shed(5) {
		t.Error("backlog at or under the budget must be admitted")
	}
	if !a.shed(math.Nextafter(5, 6)) || !a.shed(5e6) {
		t.Error("backlog beyond the budget must shed")
	}
	if (Admission{}).shed(1e18) {
		t.Error("AdmitAll shed a query")
	}
}

func TestOpenLoopDeterministic(t *testing.T) {
	mk := func(seed uint64) Result {
		cfg := openTestConfig(t, 4, &OpenLoop{
			Arrivals:   traffic.Config{Model: traffic.Poisson, RatePerMs: openRate(t, 4, 0.5)},
			DurationMs: 400,
			SLAMs:      50,
			Admission:  Admission{Policy: ShedOverBudget, QueueBudgetMs: 10},
		})
		cfg.Seed = seed
		res, err := Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := mk(1), mk(1)
	if a != b {
		t.Fatalf("open-loop simulation not deterministic:\n%+v\n%+v", a, b)
	}
	if c := mk(2); c == a {
		t.Fatal("different seeds produced identical open-loop results")
	}
}

// TestOpenLoopBaseline: a moderately loaded cluster with no shedding and
// a generous SLA serves everything — the open-loop metrics line up with
// the closed-loop invariants plus full goodput.
func TestOpenLoopBaseline(t *testing.T) {
	cfg := openTestConfig(t, 4, &OpenLoop{
		Arrivals:   traffic.Config{Model: traffic.Poisson, RatePerMs: openRate(t, 4, 0.5)},
		DurationMs: 600,
		SLAMs:      100,
	})
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ShedRate != 0 {
		t.Errorf("AdmitAll shed %.3f of arrivals", res.ShedRate)
	}
	if res.OfferedQPS <= 0 || res.Goodput <= 0 || res.Goodput > res.OfferedQPS {
		t.Errorf("goodput %g outside (0, offered %g]", res.Goodput, res.OfferedQPS)
	}
	if !(res.P50 <= res.P95 && res.P95 <= res.P99) || res.Mean <= 0 {
		t.Errorf("degenerate latency summary: %+v", res)
	}
	if res.Availability != 1 || res.Completeness != 1 {
		t.Errorf("perfect fleet dropped work: availability %g completeness %g", res.Availability, res.Completeness)
	}
	if res.MeanActiveNodes != 4 {
		t.Errorf("static fleet reported %g active nodes", res.MeanActiveNodes)
	}
	if res.Utilization <= 0 || res.Utilization > 1.2 {
		t.Errorf("utilization %g implausible for a 0.5-sized load", res.Utilization)
	}
}

// TestOpenLoopPopulationLocality: a revisiting population with profile
// affinity raises LocalFraction above the replication-only baseline, and
// RevisitRate tracks the configured revisit probability.
func TestOpenLoopPopulationLocality(t *testing.T) {
	base := &OpenLoop{
		Arrivals:   traffic.Config{Model: traffic.Poisson, RatePerMs: openRate(t, 4, 0.4)},
		DurationMs: 600,
		SLAMs:      100,
	}
	noPop, err := Simulate(openTestConfig(t, 4, base))
	if err != nil {
		t.Fatal(err)
	}
	withPop := *base
	withPop.Population = &traffic.Population{
		Users: 1_000_000, RevisitProb: 0.7, Affinity: 0.6,
	}
	popRes, err := Simulate(openTestConfig(t, 4, &withPop))
	if err != nil {
		t.Fatal(err)
	}
	if noPop.RevisitRate != 0 {
		t.Errorf("population-free run reported revisit rate %g", noPop.RevisitRate)
	}
	if math.Abs(popRes.RevisitRate-0.7) > 0.05 {
		t.Errorf("revisit rate %g far from configured 0.7", popRes.RevisitRate)
	}
	if popRes.LocalFraction <= noPop.LocalFraction {
		t.Errorf("profile revisits did not raise locality: %g (population) vs %g (baseline)",
			popRes.LocalFraction, noPop.LocalFraction)
	}
}

// TestOpenLoopShedStormAndWarmup: one node, one server, a service time
// longer than the whole run, and a near-zero budget — the first (warmup)
// arrival is admitted and occupies the node forever, every post-warmup
// arrival sheds. This pins both the all-shed-storm edge (no NaNs, ratio
// metrics stay zero) and the warmup fix: the admitted warmup query
// completes within the SLA, and if warmup arrivals polluted the open-loop
// accounting the way cluster warmup once polluted MaxQueueWaitMs, Goodput
// would be positive and ShedRate below one.
func TestOpenLoopShedStormAndWarmup(t *testing.T) {
	plan, err := NewPlan(testModel(), 1, RowRange, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	tm := Timing{ColdLookupUs: 50, HotLookupUs: 1, SubRequestUs: 5}
	workMs := QueryWorkMs(plan, tm, 2)
	duration := workMs / 2
	warmup := duration / 4
	o := &OpenLoop{
		Arrivals:   traffic.Config{Model: traffic.Poisson, RatePerMs: 200 / duration},
		DurationMs: duration,
		WarmupMs:   warmup,
		SLAMs:      3 * workMs,
		Admission:  Admission{Policy: ShedOverBudget, QueueBudgetMs: 1e-3},
	}
	cfg := Config{
		Plan: plan, Hotness: trace.HighHot, SamplesPerQuery: 2,
		Timing: tm, ServersPerNode: 1, Open: o, Seed: 1,
	}
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ShedRate != 1 {
		t.Fatalf("expected a total post-warmup shed storm, got shed rate %g", res.ShedRate)
	}
	if res.Goodput != 0 {
		t.Errorf("warmup admission leaked into Goodput: %g", res.Goodput)
	}
	if res.SLAViolationMinutes != 0 {
		t.Errorf("shed queries charged as SLA violations: %g minutes", res.SLAViolationMinutes)
	}
	if res.P50 != 0 || res.P99 != 0 || res.Mean != 0 || res.MeanFanout != 0 ||
		res.Availability != 0 || res.Completeness != 0 {
		t.Errorf("all-shed storm left nonzero admitted-query metrics: %+v", res)
	}
	for name, v := range map[string]float64{
		"offered": res.OfferedQPS, "utilization": res.Utilization, "shed": res.ShedRate,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("%s is non-finite: %g", name, v)
		}
	}
	// Cross-check OfferedQPS against the stream the simulator derives:
	// exactly the arrivals in [warmup, duration), per second.
	ar := o.Arrivals
	ar.Seed = stats.SplitSeed(cfg.Seed^saltOpenArrivals, 0)
	stream, err := traffic.NewStream(ar)
	if err != nil {
		t.Fatal(err)
	}
	post := 0
	for {
		a := stream.Next()
		if a >= duration {
			break
		}
		if a >= warmup {
			post++
		}
	}
	if want := float64(post) / ((duration - warmup) / 1e3); res.OfferedQPS != want {
		t.Errorf("OfferedQPS %g, want %g from %d post-warmup arrivals", res.OfferedQPS, want, post)
	}
}

// TestOpenLoopZeroCapacityNode: a shard owner outside the active set
// serves nothing; its work routes down the standby chain and every query
// still joins completely.
func TestOpenLoopZeroCapacityNode(t *testing.T) {
	o := &OpenLoop{
		Arrivals:   traffic.Config{Model: traffic.Poisson, RatePerMs: openRate(t, 4, 0.3)},
		DurationMs: 500,
		SLAMs:      100,
		StartNodes: 3,
	}
	res, err := Simulate(openTestConfig(t, 4, o))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completeness != 1 || res.Availability != 1 {
		t.Errorf("zero-capacity owner lost lookups: completeness %g availability %g",
			res.Completeness, res.Availability)
	}
	if res.MeanActiveNodes != 3 {
		t.Errorf("active set %g, want 3", res.MeanActiveNodes)
	}
	full := *o
	full.StartNodes = 0
	allRes, err := Simulate(openTestConfig(t, 4, &full))
	if err != nil {
		t.Fatal(err)
	}
	if allRes.Mean == res.Mean {
		t.Error("removing a node's capacity left mean latency bit-identical")
	}
}

// TestOpenLoopAdmissionReducesViolations: under bursty overload, shedding
// over a queue budget trades arrivals for SLA compliance — fewer violated
// minutes than the no-shed baseline. This is the tentpole's headline
// property (also pinned in the golden table).
func TestOpenLoopAdmissionReducesViolations(t *testing.T) {
	mk := func(adm Admission) Result {
		o := &OpenLoop{
			Arrivals: traffic.Config{
				Model: traffic.MMPP, RatePerMs: openRate(t, 4, 0.9),
				BurstFactor: 3, BurstEveryMs: 80, BurstMeanMs: 40,
			},
			DurationMs: 800,
			SLAMs:      8,
			Admission:  adm,
		}
		res, err := Simulate(openColdConfig(t, 4, o))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	noshed := mk(Admission{})
	shed := mk(Admission{Policy: ShedOverBudget, QueueBudgetMs: 2})
	if noshed.SLAViolationMinutes == 0 {
		t.Fatal("bursty overload produced no violations; the comparison is vacuous")
	}
	if shed.ShedRate <= 0 {
		t.Error("overload never tripped the queue budget")
	}
	if shed.SLAViolationMinutes >= noshed.SLAViolationMinutes {
		t.Errorf("shedding did not reduce violation minutes: %g (shed) vs %g (no-shed)",
			shed.SLAViolationMinutes, noshed.SLAViolationMinutes)
	}
}

// TestOpenLoopAutoscaler: a diurnal day drives the controller through
// scale-ups into the peak and drains after it, with queries in flight
// across every transition — completeness must hold through add/drain
// races, and the whole run stays deterministic.
func TestOpenLoopAutoscaler(t *testing.T) {
	mk := func() Result {
		o := &OpenLoop{
			Arrivals: traffic.Config{
				Model: traffic.Poisson, RatePerMs: openRate(t, 4, 0.5),
				DayMs: 800, DiurnalAmp: 0.8,
			},
			DurationMs: 800,
			SLAMs:      50,
			StartNodes: 2,
			Autoscale: &Autoscaler{
				IntervalMs:    16,
				UpBacklogMs:   2,
				DownBacklogMs: 0.2,
				ProvisionMs:   16,
				MinNodes:      2,
				MaxNodes:      4,
			},
		}
		res, err := Simulate(openColdConfig(t, 4, o))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := mk()
	if res.ScaleUps == 0 {
		t.Error("diurnal peak never triggered a scale-up")
	}
	if res.ScaleDowns == 0 {
		t.Error("post-peak trough never triggered a drain")
	}
	if res.MeanActiveNodes <= 2 || res.MeanActiveNodes > 4 {
		t.Errorf("mean active nodes %g outside (2,4]", res.MeanActiveNodes)
	}
	if res.Completeness != 1 || res.Availability != 1 {
		t.Errorf("add/drain transitions lost in-flight work: completeness %g availability %g",
			res.Completeness, res.Availability)
	}
	if again := mk(); again != res {
		t.Fatalf("autoscaled run not deterministic:\n%+v\n%+v", res, again)
	}
}

// TestOpenLoopValidate: the collect-all front door reports every
// open-loop violation, and misplaced closed-loop knobs are errors.
func TestOpenLoopValidate(t *testing.T) {
	good := openTestConfig(t, 4, &OpenLoop{
		Arrivals:   traffic.Config{Model: traffic.Poisson, RatePerMs: 1},
		DurationMs: 100,
		SLAMs:      10,
	})
	if err := good.Validate(); err != nil {
		t.Fatalf("valid open-loop config rejected: %v", err)
	}
	for _, tc := range []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"closed-loop knobs", func(c *Config) { c.Queries = 100; c.MeanArrivalMs = 1 }, "closed-loop load knobs"},
		{"traffic seed set", func(c *Config) { c.Open.Arrivals.Seed = 7 }, "traffic seed"},
		{"population seed set", func(c *Config) {
			c.Open.Population = &traffic.Population{Users: 10, Seed: 3}
		}, "population seed"},
		{"no duration", func(c *Config) { c.Open.DurationMs = 0 }, "positive duration"},
		{"warmup too long", func(c *Config) { c.Open.WarmupMs = 100 }, "warmup"},
		{"bad warmup", func(c *Config) { c.Open.WarmupMs = -3 }, "use -1"},
		{"no SLA", func(c *Config) { c.Open.SLAMs = 0 }, "SLA target"},
		{"budget without shed", func(c *Config) { c.Open.Admission.QueueBudgetMs = 5 }, "needs the shed"},
		{"shed without budget", func(c *Config) { c.Open.Admission.Policy = ShedOverBudget }, "positive queue budget"},
		{"start nodes overflow", func(c *Config) { c.Open.StartNodes = 9 }, "start nodes"},
		{"autoscaler thresholds", func(c *Config) {
			c.Open.Autoscale = &Autoscaler{IntervalMs: 10, UpBacklogMs: 1, DownBacklogMs: 2}
		}, "below scale-up"},
		{"autoscaler floor above cap", func(c *Config) {
			c.Open.Autoscale = &Autoscaler{IntervalMs: 10, UpBacklogMs: 5, MinNodes: 3, MaxNodes: 2}
		}, "floor 3 above cap 2"},
		{"start below floor", func(c *Config) {
			c.Open.StartNodes = 1
			c.Open.Autoscale = &Autoscaler{IntervalMs: 10, UpBacklogMs: 5, MinNodes: 2}
		}, "below autoscaler floor"},
		{"bad arrivals", func(c *Config) { c.Open.Arrivals.RatePerMs = 0 }, "arrival rate"},
	} {
		cfg := openTestConfig(t, 4, &OpenLoop{
			Arrivals:   traffic.Config{Model: traffic.Poisson, RatePerMs: 1},
			DurationMs: 100,
			SLAMs:      10,
		})
		tc.mutate(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q missing %q", tc.name, err, tc.want)
		}
		if _, simErr := Simulate(cfg); simErr == nil {
			t.Errorf("%s: Simulate accepted what Validate rejects", tc.name)
		}
	}
}

// TestOpenLoopValidateCollectsAll: one config, many violations, one
// error report naming each.
func TestOpenLoopValidateCollectsAll(t *testing.T) {
	cfg := openTestConfig(t, 4, &OpenLoop{
		Arrivals:  traffic.Config{Model: traffic.Poisson, RatePerMs: -1, Seed: 5},
		SLAMs:     -2,
		Admission: Admission{Policy: AdmissionPolicy(9)},
	})
	err := cfg.Validate()
	if err == nil {
		t.Fatal("accepted a config with five violations")
	}
	for _, want := range []string{"arrival rate", "traffic seed", "positive duration", "SLA target", "admission policy"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error missing %q:\n%v", want, err)
		}
	}
}

// TestOpenLoopConfigNotMutated pins the clone-before-defaults behavior:
// Simulate receives the Config by value but Open is a pointer, and a
// replication sweep reuses one OpenLoop across points. Without cloning,
// resolving WarmupMs -1 → 0 on the first run would turn into the 5%
// default on the second, silently changing its metrics window.
func TestOpenLoopConfigNotMutated(t *testing.T) {
	o := &OpenLoop{
		Arrivals:   traffic.Config{Model: traffic.Poisson, RatePerMs: openRate(t, 4, 0.5)},
		DurationMs: 40,
		WarmupMs:   -1,
		SLAMs:      5,
		Admission:  Admission{Policy: ShedOverBudget, QueueBudgetMs: 2},
		Autoscale: &Autoscaler{
			IntervalMs: 5, UpBacklogMs: 1, DownBacklogMs: 0.1, ProvisionMs: 5,
		},
	}
	first, err := Simulate(openTestConfig(t, 4, o))
	if err != nil {
		t.Fatal(err)
	}
	if o.WarmupMs != -1 || o.StartNodes != 0 {
		t.Fatalf("Simulate mutated the caller's OpenLoop: warmup %g, start nodes %d", o.WarmupMs, o.StartNodes)
	}
	if o.Autoscale.MinNodes != 0 || o.Autoscale.MaxNodes != 0 {
		t.Fatalf("Simulate mutated the caller's Autoscaler: min %d, max %d", o.Autoscale.MinNodes, o.Autoscale.MaxNodes)
	}
	second, err := Simulate(openTestConfig(t, 4, o))
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatalf("rerun with a reused OpenLoop differs:\nfirst  %+v\nsecond %+v", first, second)
	}
	// The fixture plan replicates 1% of rows, so the matching sweep point
	// is 0.01; running it after a fraction-0 point exercises the reuse.
	points, err := SweepReplication(openTestConfig(t, 4, o), []float64{0, 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if points[1].Result != first {
		t.Fatalf("sweep point f=0.01 differs from a direct run:\nsweep  %+v\ndirect %+v", points[1].Result, first)
	}
}
