package cluster

// The open-loop live-traffic tier (DESIGN.md §11): production serving is
// open-loop — users do not wait for each other's responses, so offered
// load is a function of time, not of the system's progress. This file
// runs the cluster simulation against an internal/traffic arrival stream
// (Poisson/MMPP with diurnal ramps and flash crowds) and a synthetic user
// population, adds router-side admission control that sheds queries when
// the backlog of the involved nodes exceeds an SLA budget, and an
// autoscaler that grows and drains the active node set mid-run.
//
// The closed-loop simulator pre-schedules every copy and sorts once; here
// admission decisions must observe queue state at arrival time, so the
// run is a single event loop over three deterministic event sources —
// autoscaler control ticks, stream arrivals, and a min-heap of scheduled
// sub-request copies in the same (arrive, sub, attempt) total order the
// closed-loop sort uses. At equal instants ticks precede arrivals precede
// copies; every source is a pure function of (Seed, index) via
// stats.SplitSeed, so open-loop results keep the registry-wide
// byte-identical-at-any-worker-count determinism property.
//
// Autoscaling never re-shards: the plan stays fixed and the autoscaler
// moves nodes in and out of an *active set*. Sub-requests route to the
// first active node in the shard's standby chain (the same chain retries
// walk), a drain is pure route-away — in-flight work completes, new work
// skips the node — and a provisioning node reuses the fault model's
// outage machinery (serve.Queue.Unavailable) to hold its servers shut
// until it is warm.

import (
	"fmt"
	"math"

	"dlrmsim/internal/check"
	"dlrmsim/internal/stats"
	"dlrmsim/internal/trace"
	"dlrmsim/internal/traffic"
)

// seed salts for the open-loop tier's derived streams.
const (
	saltOpenArrivals uint64 = 0x09E4A1
	saltOpenUsers    uint64 = 0x09E4A2
)

// AdmissionPolicy selects the router's load-shedding behavior.
type AdmissionPolicy int

const (
	// AdmitAll never sheds: every arrival is dispatched however deep the
	// queues are (the no-shed baseline).
	AdmitAll AdmissionPolicy = iota
	// ShedOverBudget sheds an arrival when the worst backlog over the
	// nodes it would fan out to exceeds Admission.QueueBudgetMs. A
	// backlog exactly at the budget is admitted.
	ShedOverBudget
)

// String returns the policy's CLI spelling.
func (p AdmissionPolicy) String() string {
	switch p {
	case AdmitAll:
		return "none"
	case ShedOverBudget:
		return "shed"
	default:
		return "invalid"
	}
}

// ParseAdmissionPolicy resolves a policy from its CLI spelling.
func ParseAdmissionPolicy(name string) (AdmissionPolicy, error) {
	switch name {
	case "none":
		return AdmitAll, nil
	case "shed":
		return ShedOverBudget, nil
	}
	return 0, fmt.Errorf("cluster: unknown admission policy %q", name)
}

// Admission is the router's load-shedding configuration. The zero value
// admits everything.
type Admission struct {
	// Policy selects the shedding rule.
	Policy AdmissionPolicy
	// QueueBudgetMs is the per-node backlog budget ShedOverBudget
	// enforces; queries whose involved nodes are all at or under it are
	// admitted.
	QueueBudgetMs float64
}

// shed decides one arrival's fate from the worst backlog (ms) over the
// nodes it would fan out to. The boundary is strict: a backlog exactly at
// the budget is admitted.
func (a Admission) shed(worstBacklogMs float64) bool {
	return a.Policy == ShedOverBudget && worstBacklogMs > a.QueueBudgetMs
}

func (a Admission) validateErrs() []error {
	var errs []error
	switch a.Policy {
	case AdmitAll:
		if a.QueueBudgetMs != 0 {
			errs = append(errs, fmt.Errorf("cluster: queue budget %g ms needs the shed admission policy", a.QueueBudgetMs))
		}
	case ShedOverBudget:
		if a.QueueBudgetMs <= 0 {
			errs = append(errs, fmt.Errorf("cluster: shed admission needs a positive queue budget (got %g ms)", a.QueueBudgetMs))
		}
	default:
		errs = append(errs, fmt.Errorf("cluster: invalid admission policy %d", a.Policy))
	}
	return errs
}

// Autoscaler grows and drains the active node set on a fixed control
// cadence, driven by the mean backlog over active nodes.
type Autoscaler struct {
	// IntervalMs is the control-loop tick period.
	IntervalMs float64
	// UpBacklogMs triggers a scale-up when the mean active-node backlog
	// exceeds it at a tick.
	UpBacklogMs float64
	// DownBacklogMs triggers a drain when the mean backlog falls below it
	// (must be below UpBacklogMs to avoid flapping).
	DownBacklogMs float64
	// ProvisionMs is the delay before a scaled-up node starts serving —
	// its queue is held shut with the outage machinery until then, and it
	// joins the active set at the first tick past readiness. At most one
	// node provisions at a time.
	ProvisionMs float64
	// MinNodes floors the active set (0 means 1).
	MinNodes int
	// MaxNodes caps the active set (0 means the plan's node count).
	MaxNodes int
}

func (a *Autoscaler) validateErrs(nodes int) []error {
	var errs []error
	if a.IntervalMs <= 0 {
		errs = append(errs, fmt.Errorf("cluster: autoscaler needs a positive control interval (got %g ms)", a.IntervalMs))
	}
	if a.UpBacklogMs <= 0 {
		errs = append(errs, fmt.Errorf("cluster: autoscaler needs a positive scale-up backlog threshold (got %g ms)", a.UpBacklogMs))
	}
	if a.DownBacklogMs < 0 {
		errs = append(errs, fmt.Errorf("cluster: negative scale-down threshold %g ms", a.DownBacklogMs))
	}
	if a.UpBacklogMs > 0 && a.DownBacklogMs >= a.UpBacklogMs {
		errs = append(errs, fmt.Errorf("cluster: scale-down threshold %g ms must sit below scale-up threshold %g ms",
			a.DownBacklogMs, a.UpBacklogMs))
	}
	if a.ProvisionMs < 0 {
		errs = append(errs, fmt.Errorf("cluster: negative provisioning delay %g ms", a.ProvisionMs))
	}
	if a.MinNodes < 0 || a.MinNodes > nodes {
		errs = append(errs, fmt.Errorf("cluster: autoscaler floor %d outside [0,%d]", a.MinNodes, nodes))
	}
	if a.MaxNodes < 0 || a.MaxNodes > nodes {
		errs = append(errs, fmt.Errorf("cluster: autoscaler cap %d outside [0,%d]", a.MaxNodes, nodes))
	}
	minN, maxN := a.MinNodes, a.MaxNodes
	if minN == 0 {
		minN = 1
	}
	if maxN == 0 {
		maxN = nodes
	}
	if minN > maxN {
		errs = append(errs, fmt.Errorf("cluster: autoscaler floor %d above cap %d", minN, maxN))
	}
	return errs
}

// OpenLoop configures the live-traffic mode of Simulate.
type OpenLoop struct {
	// Arrivals is the traffic stream. Its Seed must be left zero — the
	// stream seed is derived from the cluster Config.Seed so one seed
	// still determines the whole run.
	Arrivals traffic.Config
	// Population, when set, attributes arrivals to synthetic users whose
	// revisits layer per-user embedding locality on the hotness class
	// (its Seed must likewise be left zero). Without it every arrival is
	// a fresh anonymous query round-robined across home nodes.
	Population *traffic.Population
	// DurationMs is the simulated horizon; arrivals stop there and
	// in-flight queries run to completion.
	DurationMs float64
	// WarmupMs excludes early arrivals from every metric (the queues
	// still serve them, so steady state is measured, not ramp-up). 0
	// means unset (default 5% of DurationMs); -1 requests explicitly
	// zero warmup.
	WarmupMs float64
	// SLAMs is the per-query latency target Goodput and
	// SLAViolationMinutes are measured against.
	SLAMs float64
	// Admission is the router's load-shedding rule.
	Admission Admission
	// Autoscale, when set, runs the control loop over the active set.
	Autoscale *Autoscaler
	// StartNodes is the initial active-set size (0 means all plan
	// nodes). Inactive nodes hold their shards but serve nothing until
	// the autoscaler brings them in; their work routes down the standby
	// chain, so a deliberately zero-capacity owner is expressible.
	StartNodes int
	// StreamStats switches the summary to the incremental flat-memory
	// join (streamstats.go): live state bounded by the in-flight
	// high-water mark instead of O(queries), counters exact,
	// percentiles within the stats.QuantileSketch error bound (~0.8%).
	// Off by default — the batch join's exact nearest-rank percentiles
	// are the golden baseline.
	StreamStats bool
}

// validateErrs reports every violation without mutating o, accepting the
// zero-means-default fields in either pre- or post-default form.
func (o *OpenLoop) validateErrs(nodes int) []error {
	var errs []error
	ar := o.Arrivals
	if ar.Seed != 0 {
		errs = append(errs, fmt.Errorf("cluster: traffic seed is derived from the cluster seed; leave it zero"))
		ar.Seed = 0
	}
	if err := ar.Validate(); err != nil {
		errs = append(errs, err)
	}
	if o.Population != nil {
		pop := *o.Population
		if pop.Seed != 0 {
			errs = append(errs, fmt.Errorf("cluster: population seed is derived from the cluster seed; leave it zero"))
			pop.Seed = 0
		}
		if err := pop.Validate(); err != nil {
			errs = append(errs, err)
		}
	}
	if o.DurationMs <= 0 {
		errs = append(errs, fmt.Errorf("cluster: open-loop runs need a positive duration (got %g ms)", o.DurationMs))
	}
	if o.WarmupMs < 0 && o.WarmupMs != -1 {
		errs = append(errs, fmt.Errorf("cluster: warmup %g ms (use -1 for explicit zero)", o.WarmupMs))
	}
	if o.DurationMs > 0 {
		w := o.WarmupMs
		switch w {
		case 0:
			w = o.DurationMs / 20
		case -1:
			w = 0
		}
		if w >= o.DurationMs {
			errs = append(errs, fmt.Errorf("cluster: warmup %g ms >= duration %g ms", w, o.DurationMs))
		}
	}
	if o.SLAMs <= 0 {
		errs = append(errs, fmt.Errorf("cluster: open-loop runs need a positive SLA target (got %g ms)", o.SLAMs))
	}
	if o.StartNodes < 0 || o.StartNodes > nodes {
		errs = append(errs, fmt.Errorf("cluster: %d start nodes outside [0,%d]", o.StartNodes, nodes))
	}
	errs = append(errs, o.Admission.validateErrs()...)
	if o.Autoscale != nil {
		errs = append(errs, o.Autoscale.validateErrs(nodes)...)
		minN := o.Autoscale.MinNodes
		if minN == 0 {
			minN = 1
		}
		start := o.StartNodes
		if start == 0 {
			start = nodes
		}
		if start < minN {
			errs = append(errs, fmt.Errorf("cluster: %d start nodes below autoscaler floor %d", start, minN))
		}
	}
	return errs
}

// applyDefaults resolves the zero-means-default fields in place and
// returns the first validation failure (mirroring Config.applyDefaults;
// Config.Validate is the collect-all front door).
func (o *OpenLoop) applyDefaults(nodes int) error {
	if errs := o.validateErrs(nodes); len(errs) > 0 {
		return errs[0]
	}
	switch o.WarmupMs {
	case 0:
		o.WarmupMs = o.DurationMs / 20
	case -1:
		o.WarmupMs = 0
	}
	if o.StartNodes == 0 {
		o.StartNodes = nodes
	}
	if o.Autoscale != nil {
		if o.Autoscale.MinNodes == 0 {
			o.Autoscale.MinNodes = 1
		}
		if o.Autoscale.MaxNodes == 0 {
			o.Autoscale.MaxNodes = nodes
		}
	}
	return nil
}

// copyHeap orders scheduled sub-request copies by (arrive, sub, attempt) —
// the exact total order the closed-loop sort establishes, maintained
// incrementally because arrivals keep scheduling new copies mid-run.
// Legacy backend only (see eventq.go): container/heap boxes every
// Push/Pop through `any`, allocating per scheduled copy; the default
// path now runs the non-boxing eventq wheel in the same total order.
type copyHeap []subCopy

func (h copyHeap) Len() int { return len(h) }
func (h copyHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if a.arrive != b.arrive {
		return a.arrive < b.arrive
	}
	if a.seq != b.seq {
		return a.seq < b.seq
	}
	return a.attempt < b.attempt
}
func (h copyHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *copyHeap) Push(x any)   { *h = append(*h, x.(subCopy)) }
func (h *copyHeap) Pop() any {
	old := *h
	n := len(old)
	c := old[n-1]
	*h = old[:n-1]
	return c
}

// openQuery is one arrival's router-side record.
type openQuery struct {
	arrive   float64
	admitted bool
	revisit  bool
}

// openRun is one open-loop simulation's mutable state, factored out of
// the historical simulateOpen monolith so the sequential driver (loop)
// and the conservative-window parallel driver (openparallel.go) share
// every event handler — tick, arrival, summary — verbatim. Only the
// driver differs; the handlers are where the semantics live.
type openRun struct {
	o    *OpenLoop
	plan *Plan
	st   *simState

	stream   *traffic.Stream
	visitors *traffic.Visitors
	pop      traffic.Population
	zipf     *stats.Zipf

	// The active set. route walks a shard's standby chain to the first
	// active node — the same chain retries use, so any node can serve
	// any shard's rows (standby replicas, as in the fault model).
	active      []bool
	activeCount int

	// Time-weighted active-set accounting; the set only changes at ticks.
	nodeMsSum  float64
	lastChange float64

	as           *Autoscaler
	nextTick     float64
	pendingNode  int
	pendingReady float64
	scaleUps     int
	scaleDowns   int

	minuteMs float64
	violated map[int]bool
	sj       *streamJoin

	h        copyQueue       // the sequential driver's single copy queue
	push     func(c subCopy) // driver-owned: where scheduled copies go
	queries  []openQuery
	firstSub []int
	cold     []int // arrival-scratch: cold lookups per owner node
	eff      []int // arrival-scratch: cold work per effective node
	draws    int

	hotLookups, totalLookups int

	nextArr float64
	q       int

	// Pre-draw ring (openparallel.go): arrivals whose lookup draws were
	// computed ahead, in parallel, as pure functions of (Seed, q, user).
	ring     []openArrival
	ringCold []int
	ringHead int

	// Recovery observability (chaos.go): minute buckets of post-warmup
	// arrivals and in-SLA completions, and the post-fault (arrive >=
	// pfThresh) offered/good counters. Nil/zero without a chaos schedule;
	// the batch join fills them in the summary loop, stream-stats runs
	// fill them through the streamJoin aliases.
	ttrArr, ttrGood []int
	pfThresh        float64
	pfArr, pfGood   int

	// The run's recycled working set (arena.go); simulateOpen releases
	// it after the summary.
	arena *runArena
}

// newOpenRun builds the run state. cfg has been default-applied;
// cfg.Open is non-nil. sketchParts sizes the stream-stats join's
// per-partition sketch set (1 for the sequential driver).
func newOpenRun(cfg Config, sketchParts int) (*openRun, error) {
	o := cfg.Open
	plan := cfg.Plan
	model := plan.Model

	ar := o.Arrivals
	ar.Seed = stats.SplitSeed(cfg.Seed^saltOpenArrivals, 0)
	stream, err := traffic.NewStream(ar)
	if err != nil {
		return nil, err
	}
	var visitors *traffic.Visitors
	var pop traffic.Population
	if o.Population != nil {
		pop = *o.Population
		pop.Seed = stats.SplitSeed(cfg.Seed^saltOpenUsers, 0)
		visitors, err = traffic.NewVisitors(pop)
		if err != nil {
			return nil, err
		}
	}

	a := acquireArena()
	st := &simState{
		cfg:      cfg,
		plan:     plan,
		queues:   a.queueSet(plan.Nodes, cfg.ServersPerNode),
		warmupMs: o.WarmupMs,
	}
	st.subs = a.subs[:0]
	st.copies = a.copies[:0]
	if cfg.Faults.Active() {
		st.faults = newFaultState(cfg.Faults, cfg.Seed, plan.Nodes)
	}
	if cfg.Chaos.Active() {
		st.chaos = a.chaosFor(&cfg.Chaos, plan.Nodes)
	}
	if cfg.Mitigation.adaptive() {
		st.adapt = a.adaptFor(&cfg.Mitigation, plan.Nodes)
	}

	active := a.boolSet(plan.Nodes)
	for n := 0; n < o.StartNodes; n++ {
		active[n] = true
	}

	var zipf *stats.Zipf
	switch cfg.Hotness {
	case trace.OneItem, trace.RandomAccess:
	default:
		zipf = stats.NewSharedZipf(model.RowsPerTable, cfg.Hotness.ReferenceExponent())
	}

	// SLA-violation minutes bucketize on the configured day when the
	// stream defines one, else on the run horizon.
	minuteMs := o.DurationMs / 1440
	if ar.DayMs > 0 {
		minuteMs = ar.DayMs / 1440
	}

	r := &openRun{
		o:           o,
		plan:        plan,
		st:          st,
		stream:      stream,
		visitors:    visitors,
		pop:         pop,
		zipf:        zipf,
		active:      active,
		activeCount: o.StartNodes,
		as:          o.Autoscale,
		nextTick:    math.Inf(1),
		pendingNode: -1,
		minuteMs:    minuteMs,
		violated:    a.violatedMap(),
		queries:     a.queries[:0],
		firstSub:    append(a.firstSub[:0], 0),
		cold:        arenaInts(&a.cold, plan.Nodes),
		eff:         arenaInts(&a.eff, plan.Nodes),
		draws:       cfg.SamplesPerQuery * model.LookupsPerSample,
		ring:        a.ring,
		ringCold:    a.ringCold,
		arena:       a,
	}
	if r.as != nil {
		r.nextTick = r.as.IntervalMs
	}
	if st.chaos != nil {
		r.ttrArr, r.ttrGood = a.ttrBuckets(int(o.DurationMs/minuteMs) + 1)
		clearT := math.Min(st.chaos.clearMs, o.DurationMs)
		r.pfThresh = math.Max(clearT, o.WarmupMs)
	}
	if o.StreamStats {
		r.sj = newStreamJoin(o, minuteMs, r.violated, sketchParts)
		r.sj.denseMs = cfg.Timing.DenseMs
		r.sj.ttrArr, r.sj.ttrGood = r.ttrArr, r.ttrGood
		r.sj.pfThreshMs = r.pfThresh
		st.recycle = true
	}
	return r, nil
}

func (r *openRun) route(n int) int {
	for k := 0; k < r.plan.Nodes; k++ {
		if t := (n + k) % r.plan.Nodes; r.active[t] {
			return t
		}
	}
	return n // unreachable: the active set never empties
}

func (r *openRun) backlog(n int, now float64) float64 {
	if b := r.st.queues[n].EarliestFree() - now; b > 0 {
		return b
	}
	return 0
}

func (r *openRun) noteActive(now float64) {
	r.nodeMsSum += float64(r.activeCount) * (now - r.lastChange)
	r.lastChange = now
}

// sampleRank draws one lookup's hotness rank from any generator — the
// per-(query,table) stream for fresh lookups, a stateless profile
// stream for profile lookups, so profile slots keep the marginal
// hotness distribution while pinning each slot to one row.
func (r *openRun) sampleRank(rng *stats.RNG) int {
	switch r.st.cfg.Hotness {
	case trace.OneItem:
		return 0
	case trace.RandomAccess:
		return rng.Intn(r.plan.Model.RowsPerTable)
	default:
		return r.zipf.SampleWith(rng)
	}
}

// tick runs one autoscaler control tick. Activation first, so a node
// ready exactly at this tick serves the decisions below.
func (r *openRun) tick(now float64) {
	as := r.as
	if r.pendingNode >= 0 && now >= r.pendingReady {
		r.noteActive(now)
		r.active[r.pendingNode] = true
		r.activeCount++
		r.pendingNode = -1
	}
	var sum float64
	for n := range r.active {
		if r.active[n] {
			sum += r.backlog(n, now)
		}
	}
	mean := sum / float64(r.activeCount)
	if mean > as.UpBacklogMs && r.pendingNode < 0 && r.activeCount < as.MaxNodes {
		// Provision the lowest-index inactive node; its queue is
		// held shut with the outage machinery until it is warm.
		for n := range r.active {
			if !r.active[n] {
				r.pendingNode = n
				break
			}
		}
		r.pendingReady = now + as.ProvisionMs
		r.st.queues[r.pendingNode].Unavailable(r.pendingReady)
		r.scaleUps++
	} else if mean < as.DownBacklogMs && r.activeCount > as.MinNodes {
		// Drain the highest-index active node: pure route-away —
		// in-flight work completes, new work skips it.
		for n := r.plan.Nodes - 1; n >= 0; n-- {
			if r.active[n] {
				r.noteActive(now)
				r.active[n] = false
				r.activeCount--
				r.scaleDowns++
				break
			}
		}
	}
	r.nextTick += as.IntervalMs
}

// drawArrival draws arrival q's lookups: cold (len Nodes, overwritten)
// receives per-OWNER cold counts — routing through the active set
// happens at processing time — and hot/warm are the replicated and
// profile-warm counts. A pure function of (Seed, q, user, visit), so
// the parallel driver pre-computes it concurrently (openparallel.go).
func (r *openRun) drawArrival(q int, user uint64, visit int, cold []int) (hot, warm int) {
	cfg := &r.st.cfg
	plan := r.plan
	model := plan.Model
	for n := range cold {
		cold[n] = 0
	}
	for t := 0; t < model.Tables; t++ {
		rng := stats.SeededRNG(stats.SplitSeed(cfg.Seed^0x100C, uint64(q*model.Tables+t)))
		for l := 0; l < r.draws; l++ {
			var rk int
			fromProfile := false
			if r.visitors != nil && rng.Float64() < r.visitors.Affinity() {
				slot := rng.Intn(r.visitors.ProfileSize())
				pr := r.pop.ProfileStream(user, t, slot)
				rk = r.sampleRank(&pr)
				fromProfile = true
			} else {
				rk = r.sampleRank(&rng)
			}
			switch {
			case plan.Replicated(rk):
				hot++
			case fromProfile && visit > 1:
				// The user's earlier visit already pulled this
				// profile row through the home node — warm there.
				warm++
			default:
				cold[plan.Owner(t, plan.rowOfRank(t, rk))]++
			}
		}
	}
	return hot, warm
}

// processArrival handles one arrival whose lookups are already drawn:
// route the cold work through the active set, decide admission off
// backlogAt (the live queues sequentially; a reconstructed as-of-now
// view under the parallel driver), and schedule the sub-request copies
// through r.push. Advances the arrival counter q.
func (r *openRun) processArrival(now float64, user uint64, visit int, hot, warm int, cold []int, backlogAt func(n int, now float64) float64) {
	o := r.o
	plan := r.plan
	model := plan.Model
	cfg := &r.st.cfg
	st := r.st
	home := r.route(int(user % uint64(plan.Nodes)))
	// Route each owner through the active set and merge the cold
	// work per effective node; hot and warm lookups serve at home.
	for n := range r.eff {
		r.eff[n] = 0
	}
	for n, c := range cold {
		if c > 0 {
			r.eff[r.route(n)] += c
		}
	}
	joinSlot := -1
	admitted := true
	if o.Admission.Policy == ShedOverBudget {
		worst := 0.0
		for n, c := range r.eff {
			if c == 0 && !(n == home && hot+warm > 0) {
				continue
			}
			if b := backlogAt(n, now); b > worst {
				worst = b
			}
		}
		admitted = !o.Admission.shed(worst)
	}
	if r.sj != nil {
		joinSlot = r.sj.arrival(now, admitted, visit > 1)
	}
	if admitted {
		for n, c := range r.eff {
			served := c
			svcUs := cfg.Timing.SubRequestUs + cfg.Timing.ColdLookupUs*float64(c)
			if n == home && hot+warm > 0 {
				served += hot + warm
				svcUs += cfg.Timing.HotLookupUs * float64(hot+warm)
			}
			if served == 0 {
				continue
			}
			reqBytes := int64(4*served) + wireHeaderBytes
			pooled := (served + model.LookupsPerSample - 1) / model.LookupsPerSample
			respBytes := int64(pooled)*int64(model.EmbDim)*4 + wireHeaderBytes
			before := len(st.copies)
			idx := st.schedule(r.q, home, n, served, svcUs/1e3, reqBytes, respBytes, now)
			if r.sj != nil {
				st.subs[idx].join = joinSlot
				r.sj.subAttached(joinSlot)
			}
			for _, cp := range st.copies[before:] {
				r.push(cp)
			}
			st.copies = st.copies[:before]
		}
		if now >= o.WarmupMs {
			r.hotLookups += hot + warm
			r.totalLookups += hot + warm
			for _, c := range cold {
				r.totalLookups += c
			}
		}
	}
	if r.sj != nil {
		r.sj.finalizeIfEmpty(joinSlot)
	} else {
		r.queries = append(r.queries, openQuery{arrive: now, admitted: admitted, revisit: visit > 1})
		r.firstSub = append(r.firstSub, len(st.subs))
	}
	r.q++
}

// loop is the sequential driver: one event loop over the three
// deterministic sources. Ticks precede arrivals precede copies at equal
// instants (strict inequalities below encode the tie-break).
func (r *openRun) loop() {
	o := r.o
	r.h = r.arena.copyQueueSet(1)[0]
	r.push = r.h.Push
	r.nextArr = r.stream.Next()
	for {
		now := math.Inf(1)
		kind := 0 // 1 tick, 2 arrival, 3 copy
		if r.nextTick <= o.DurationMs {
			now, kind = r.nextTick, 1
		}
		if r.nextArr < o.DurationMs && r.nextArr < now {
			now, kind = r.nextArr, 2
		}
		if r.h.Len() > 0 {
			if min := r.h.Min(); min.arrive < now {
				now, kind = min.arrive, 3
			}
		}
		switch kind {
		case 0:
			return
		case 1:
			r.tick(now)
		case 2:
			// Arrival: attribute it, draw its lookups, decide admission,
			// and schedule its sub-request copies.
			user, visit := uint64(r.q), 1
			if r.visitors != nil {
				user, visit = r.visitors.Next()
			}
			hot, warm := r.drawArrival(r.q, user, visit, r.cold)
			r.processArrival(now, user, visit, hot, warm, r.cold, r.backlog)
			r.nextArr = r.stream.Next()
		case 3:
			cp := r.h.Pop()
			r.st.serveCopy(&cp, r.route(cp.node))
			if r.sj != nil {
				r.sj.copyDone(r.st, cp.sub, 0)
			}
		}
	}
}

// simulateOpen runs the open-loop live-traffic simulation. cfg has been
// default-applied; cfg.Open is non-nil. The parallel execution backend
// engages when it has partitions to run and a positive network hop to
// hide the window barriers behind (with a free network every
// conservative window is empty and the run stays sequential).
func simulateOpen(cfg Config) (Result, error) {
	parts := execParts(cfg.Plan.Nodes)
	useParallel := parts > 1 && cfg.Net.LatencyMs > 0
	sketchParts := 1
	if useParallel {
		sketchParts = parts
	}
	r, err := newOpenRun(cfg, sketchParts)
	if err != nil {
		return Result{}, err
	}
	if useParallel {
		r.loopParallel(parts)
	} else {
		r.loop()
	}
	res := r.summary()
	a := r.arena
	a.subs, a.copies = r.st.subs, r.st.copies
	a.queries, a.firstSub = r.queries, r.firstSub
	a.ring, a.ringCold = r.ring, r.ringCold
	a.release()
	return res, nil
}

// summary folds the run into a Result — the batch join over retained
// queries, or the stream join's accumulators — plus the fleet-level
// accounting shared by both modes.
func (r *openRun) summary() Result {
	o := r.o
	plan := r.plan
	st := r.st
	cfg := &st.cfg
	sj := r.sj
	queries, firstSub := r.queries, r.firstSub
	violated, minuteMs := r.violated, r.minuteMs
	hotLookups, totalLookups := r.hotLookups, r.totalLookups
	r.noteActive(o.DurationMs)
	nodeMsSum := r.nodeMsSum

	window := o.DurationMs - o.WarmupMs
	var pct []float64
	var mean float64
	var nLat int
	var fanoutSum, subCount, hedgeCount, retryCount, fullJoins int
	var postArr, postShed, postRevisit, goodCount int
	var completenessSum float64
	if sj != nil {
		// Stream-stats: every query already folded at its last copy; the
		// summary reads the accumulators and the sketch.
		if check.Enabled {
			check.Assert(len(sj.freeJoins) == len(sj.joins),
				"cluster: %d stream joins still open after drain", len(sj.joins)-len(sj.freeJoins))
		}
		// Quantiles come from the merged per-partition sketches — the
		// merge is integer bucket addition, so the result is identical
		// whatever partition each query folded into. The mean comes from
		// latSum, which finalize accumulates in canonical completion
		// order in every driver, keeping it bit-for-bit reproducible.
		merged := &sj.sketches[0]
		for i := 1; i < len(sj.sketches); i++ {
			merged.Merge(&sj.sketches[i])
		}
		pct = []float64{merged.Quantile(0.50), merged.Quantile(0.95), merged.Quantile(0.99)}
		nLat = int(merged.Count())
		if nLat > 0 {
			mean = sj.latSum / float64(nLat)
		}
		fanoutSum, subCount = sj.fanoutSum, sj.subCount
		hedgeCount, retryCount, fullJoins = sj.hedgeCount, sj.retryCount, sj.fullJoins
		postArr, postShed, postRevisit, goodCount = sj.postArr, sj.postShed, sj.postRevisit, sj.goodCount
		completenessSum = sj.completenessSum
		r.pfArr, r.pfGood = sj.pfArr, sj.pfGood
		if streamHighWater != nil {
			streamHighWater(sj.maxLiveSubs, sj.maxLiveJoins)
		}
	} else {
		// Batch join: identical to the closed-loop phase 3, over admitted
		// queries, plus the SLA/goodput/shed accounting. The sample slice
		// is sized from the admitted post-warmup count (the closed loop
		// preallocates the same way), so the append loop never reallocates.
		nSamples := 0
		for _, oq := range queries {
			if oq.admitted && oq.arrive >= o.WarmupMs {
				nSamples++
			}
		}
		if cap(r.arena.latencies) < nSamples {
			r.arena.latencies = make([]float64, 0, nSamples)
		}
		latencies := r.arena.latencies[:0]
		for i, oq := range queries {
			post := oq.arrive >= o.WarmupMs
			if post {
				postArr++
				if oq.revisit {
					postRevisit++
				}
				if r.ttrArr != nil {
					r.ttrArr[int(oq.arrive/minuteMs)]++
					if oq.arrive >= r.pfThresh {
						r.pfArr++
					}
				}
			}
			if !oq.admitted {
				if post {
					postShed++
				}
				continue
			}
			joined := oq.arrive
			queryLookups, servedLookups := 0, 0
			hedges, retries := 0, 0
			complete := true
			for s := firstSub[i]; s < firstSub[i+1]; s++ {
				sub := &st.subs[s]
				doneAt, ok := st.resolve(sub)
				if doneAt > joined {
					joined = doneAt
				}
				queryLookups += sub.served
				retries += sub.retries
				if sub.hedged {
					hedges++
				}
				if ok {
					servedLookups += sub.served
				} else {
					complete = false
				}
			}
			finish := joined + cfg.Timing.DenseMs
			if !post {
				continue
			}
			lat := finish - oq.arrive
			latencies = append(latencies, lat)
			if lat <= o.SLAMs {
				goodCount++
				if r.ttrArr != nil {
					r.ttrGood[int(oq.arrive/minuteMs)]++
					if oq.arrive >= r.pfThresh {
						r.pfGood++
					}
				}
			} else {
				violated[int(oq.arrive/minuteMs)] = true
			}
			fanoutSum += firstSub[i+1] - firstSub[i]
			subCount += firstSub[i+1] - firstSub[i]
			hedgeCount += hedges
			retryCount += retries
			if complete {
				fullJoins++
			}
			if queryLookups > 0 {
				completenessSum += float64(servedLookups) / float64(queryLookups)
			} else {
				completenessSum++
			}
		}
		pct = stats.Percentiles(latencies, 0.50, 0.95, 0.99)
		mean = stats.Mean(latencies)
		nLat = len(latencies)
	}

	res := Result{
		P50:                 pct[0],
		P95:                 pct[1],
		P99:                 pct[2],
		Mean:                mean,
		MaxQueueWaitMs:      st.maxWait,
		ReplicaBytesPerNode: plan.ReplicaBytesPerNode(),
		MaxShardBytes:       plan.MaxShardBytes(),
		OfferedQPS:          float64(postArr) / (window / 1e3),
		Goodput:             float64(goodCount) / (window / 1e3),
		SLAViolationMinutes: float64(len(violated)),
		MeanActiveNodes:     nodeMsSum / o.DurationMs,
		ScaleUps:            r.scaleUps,
		ScaleDowns:          r.scaleDowns,
	}
	// An all-shed storm leaves no admitted queries: the ratio metrics are
	// left zero instead of dividing by zero (Percentile/Mean already
	// return 0 on empty slices).
	if n := nLat; n > 0 {
		res.MeanFanout = float64(fanoutSum) / float64(n)
		res.Availability = float64(fullJoins) / float64(n)
		res.Completeness = completenessSum / float64(n)
		res.RetriesPerQuery = float64(retryCount) / float64(n)
		res.RetryAmplification = float64(subCount+hedgeCount+retryCount) / float64(n)
	}
	if st.adapt != nil {
		res.BreakerOpenMinutes = st.adapt.finalize() / 60000
	}
	res.DomainAvailability = 1
	if st.chaos != nil {
		res.DomainAvailability = 1 - st.chaos.outageMs(o.DurationMs)/(float64(st.chaos.domains)*o.DurationMs)
		// Time to recover: the earliest minute bucket past the schedule's
		// clear instant from which every later non-empty bucket keeps an
		// in-SLA fraction of at least 1-recoverEps. Empty buckets are
		// neutral; -1 means the fleet never re-entered a sustained good
		// regime before the horizon (the metastable signature).
		clearT := math.Min(st.chaos.clearMs, o.DurationMs)
		recB := -1
		for b := len(r.ttrArr) - 1; b >= int(clearT/minuteMs)+1; b-- {
			if r.ttrArr[b] == 0 {
				continue
			}
			if float64(r.ttrGood[b]) >= (1-recoverEps)*float64(r.ttrArr[b]) {
				recB = b
			} else {
				break
			}
		}
		res.TimeToRecoverMs = -1
		if recB >= 0 {
			res.TimeToRecoverMs = math.Max(0, float64(recB)*minuteMs-clearT)
		}
		if pfWindow := o.DurationMs - r.pfThresh; pfWindow > 0 {
			res.PostFaultOfferedQPS = float64(r.pfArr) / (pfWindow / 1e3)
			res.PostFaultGoodput = float64(r.pfGood) / (pfWindow / 1e3)
		}
	}
	if postArr > 0 {
		res.ShedRate = float64(postShed) / float64(postArr)
		res.RevisitRate = float64(postRevisit) / float64(postArr)
	}
	if subCount > 0 {
		res.HedgeRate = float64(hedgeCount) / float64(subCount)
	}
	if totalLookups > 0 {
		res.LocalFraction = float64(hotLookups) / float64(totalLookups)
	}
	var busySum float64
	busyByNode := make([]float64, plan.Nodes)
	for n, qu := range st.queues {
		busyByNode[n] = qu.BusyMs()
		busySum += busyByNode[n]
	}
	// Capacity is the time-integrated active set (node·ms), not
	// nodes×horizon — a drained node contributes no capacity.
	if nodeMsSum > 0 {
		res.Utilization = busySum / (nodeMsSum * float64(cfg.ServersPerNode))
	}
	var busyMax float64
	for _, b := range busyByNode {
		if b > busyMax {
			busyMax = b
		}
	}
	if busySum > 0 {
		res.Imbalance = busyMax / (busySum / float64(plan.Nodes))
	}
	if check.Enabled {
		finite := check.Finite
		check.Assert(finite(res.P99) && finite(res.Goodput) && finite(res.ShedRate) && finite(res.Utilization),
			"cluster: non-finite open-loop summary (p99 %g, goodput %g, shed %g, util %g)",
			res.P99, res.Goodput, res.ShedRate, res.Utilization)
		check.Assert(res.SLAViolationMinutes >= 0 && res.MeanActiveNodes > 0,
			"cluster: impossible open-loop accounting (violation minutes %g, active nodes %g)",
			res.SLAViolationMinutes, res.MeanActiveNodes)
		check.Assert(finite(res.RetryAmplification) && finite(res.DomainAvailability) && res.TimeToRecoverMs >= -1,
			"cluster: impossible recovery accounting (amplification %g, domain availability %g, recover %g ms)",
			res.RetryAmplification, res.DomainAvailability, res.TimeToRecoverMs)
	}
	return res
}
