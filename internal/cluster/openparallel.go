package cluster

// Open-loop half of the parallel execution backend (DESIGN.md §14).
// The open event loop cannot pre-sort its copies — arrivals keep
// scheduling new ones, and admission control must observe queue state
// at each arrival instant — so the conservative discipline here runs
// window by window:
//
//   - A window starts at the earliest pending event W and ends at
//     Wend = min(W + Lat, next autoscaler tick), Lat = Net.LatencyMs.
//     Ticks mutate the active set and queue availability, so they only
//     run at barriers; truncating the window at the tick preserves the
//     tick-precedes-everything tie rule exactly.
//   - Every copy arriving in [W, Wend) was scheduled by an arrival
//     before W: an arrival at t schedules copies no earlier than
//     t + Lat >= W + Lat >= Wend. The window's copies are therefore all
//     queued when it opens, and phase A serves them with the same
//     partitioned deferred-merge machinery as the closed loop
//     (exec.go), partition ownership following the routed node — the
//     active set cannot change mid-window, so routing is frozen.
//   - Phase B replays the window's timeline on one goroutine in the
//     exact sequential order — arrivals interleaved with the served
//     copies, arrival-before-copy at equal instants — running the
//     admission/scheduling/stream-join logic the arrival and copy
//     events carry. Admission cannot read the live queues (phase A
//     already pushed them past this arrival's instant); it reads a
//     reconstructed as-of-now view instead: each partition records the
//     node's earliest-free instant after every served copy (efEntry),
//     and the backlog an arrival at t observes is the last record with
//     arrive < t — strict, because an arrival at t precedes a copy at
//     t — falling back to the window-start snapshot. That is exactly
//     the queue state the sequential loop reads.
//
// Sub-request copies (and, under stream-stats, join records and sub
// slots) are created, resolved, and recycled entirely inside phase B,
// in the sequential order — so slot assignment, the monotone seq tie
// key, and every float fold are bit-for-bit the sequential run's.
//
// The arrival draws — the dominant per-event cost — are pure functions
// of (Seed, q, user, visit): the driver pulls arrival times and user
// attributions sequentially into a pre-draw ring a block at a time,
// then fills every entry's lookup split concurrently (RNG lanes via
// stats.SplitSeed, as in the closed loop's predrawQueries).

import (
	"math"
	"slices"
)

// openArrival is one pre-drawn ring entry: the arrival's instant, user
// attribution, and lookup split (its per-owner cold counts live in the
// flat ring buffer alongside).
type openArrival struct {
	t     float64
	user  uint64
	visit int
	hot   int
	warm  int
}

// openPredrawBlock is the pre-draw ring's refill granularity. Draws
// past the horizon are wasted work at most once, at the end of the run.
var openPredrawBlock = 256

// sortCopySlice establishes the canonical (arrive, seq, attempt) total
// order in place — the comparator sortCopies and the eventq backends
// share. No two copies share a (seq, attempt) pair, so the unstable
// sort is deterministic.
func sortCopySlice(cs []subCopy) {
	slices.SortFunc(cs, func(a, b subCopy) int {
		switch {
		case a.arrive < b.arrive:
			return -1
		case a.arrive > b.arrive:
			return 1
		case a.seq != b.seq:
			return a.seq - b.seq
		default:
			return a.attempt - b.attempt
		}
	})
}

// ringFill refills the pre-draw ring: arrival times and user
// attributions pulled sequentially from the shared streams, lookup
// splits computed concurrently. Ring entry i is arrival number r.q+i —
// the ring only refills when fully drained, so the base index is the
// live counter.
func (r *openRun) ringFill(parts int) {
	nodes := r.plan.Nodes
	n := openPredrawBlock
	if cap(r.ring) < n {
		r.ring = make([]openArrival, n)
		r.ringCold = make([]int, n*nodes)
	}
	r.ring = r.ring[:n]
	qb := r.q
	for i := range r.ring {
		a := &r.ring[i]
		a.t = r.stream.Next()
		a.user, a.visit = uint64(qb+i), 1
		if r.visitors != nil {
			a.user, a.visit = r.visitors.Next()
		}
	}
	chunk := (n + parts - 1) / parts
	runParts(parts, func(p int) {
		lo := p * chunk
		hi := min(lo+chunk, n)
		for i := lo; i < hi; i++ {
			a := &r.ring[i]
			a.hot, a.warm = r.drawArrival(qb+i, a.user, a.visit, r.ringCold[i*nodes:(i+1)*nodes])
		}
	})
	r.ringHead = 0
	r.nextArr = r.ring[0].t
}

// loopParallel is the windowed parallel driver. Each partition owns its
// own copy-queue backend instance, keyed by the copy's planned node —
// storage partitioning only; serving ownership follows the routed node
// inside serveWindow.
func (r *openRun) loopParallel(parts int) {
	o := r.o
	st := r.st
	a := r.arena
	lat := st.cfg.Net.LatencyMs
	nodes := r.plan.Nodes
	qs := a.copyQueueSet(parts)
	r.push = func(c subCopy) { qs[c.node%parts].Push(c) }
	scratch := a.partScratchSet(parts)

	// Admission's as-of-now queue view: window-start snapshots plus the
	// per-copy earliest-free histories phase A records. Only built when
	// the shed policy actually reads backlogs.
	shed := o.Admission.Policy == ShedOverBudget
	var efStart []float64
	var efHist [][]efEntry
	backlogAt := r.backlog
	if shed {
		efStart = arenaFloats(&a.efStart, nodes)
		efHist = a.efHistSet(nodes)
		backlogAt = func(n int, now float64) float64 {
			ef := efStart[n]
			h := efHist[n]
			for i := len(h) - 1; i >= 0; i-- {
				if h[i].arrive < now {
					ef = h[i].ef
					break
				}
			}
			if b := ef - now; b > 0 {
				return b
			}
			return 0
		}
	}

	win := a.win[:0]
	defer func() { a.win = win }()
	r.ringFill(parts)
	for {
		// Window start: the earliest pending event. Ticks win ties and
		// run at the barrier; the window never spans one.
		w := math.Inf(1)
		if r.nextArr < o.DurationMs {
			w = r.nextArr
		}
		for p := range qs {
			if qs[p].Len() > 0 {
				if t := qs[p].Min().arrive; t < w {
					w = t
				}
			}
		}
		if r.nextTick <= o.DurationMs && r.nextTick <= w {
			r.tick(r.nextTick)
			continue
		}
		if math.IsInf(w, 1) {
			return
		}
		wend := w + lat
		if r.nextTick <= o.DurationMs && r.nextTick < wend {
			wend = r.nextTick
		}
		if ad := st.adapt; ad != nil {
			// Same discipline as the closed loop (parallel.go): settle
			// every boundary at or before the window start, truncate the
			// window at the next one — no window spans an epoch boundary.
			ad.advanceTo(w)
			if ad.boundary < wend {
				wend = ad.boundary
			}
		}

		// Collect the window's copies — complete by the conservative
		// argument above — and restore the canonical global order across
		// the per-partition queues (each yields a sorted run).
		win = win[:0]
		for p := range qs {
			for qs[p].Len() > 0 {
				if m := qs[p].Min(); m.arrive < wend {
					win = append(win, qs[p].Pop())
				} else {
					break
				}
			}
		}
		sortCopySlice(win)

		// Phase A: partitioned copy service with deferred router-state
		// merges, recording earliest-free histories for admission.
		if shed {
			for n := 0; n < nodes; n++ {
				efStart[n] = st.queues[n].EarliestFree()
				efHist[n] = efHist[n][:0]
			}
		}
		st.serveWindow(win, parts, scratch, r.route, efHist)

		// Phase B: sequential canonical replay of the window's timeline.
		wi := 0
		for {
			tA, tC := math.Inf(1), math.Inf(1)
			if r.nextArr < o.DurationMs && r.nextArr < wend {
				tA = r.nextArr
			}
			if wi < len(win) {
				tC = win[wi].arrive
			}
			if math.IsInf(tA, 1) && math.IsInf(tC, 1) {
				break
			}
			if tA <= tC { // arrivals precede copies at equal instants
				a := &r.ring[r.ringHead]
				coldq := r.ringCold[r.ringHead*nodes : (r.ringHead+1)*nodes]
				r.processArrival(tA, a.user, a.visit, a.hot, a.warm, coldq, backlogAt)
				r.ringHead++
				if r.ringHead == len(r.ring) {
					r.ringFill(parts)
				} else {
					r.nextArr = r.ring[r.ringHead].t
				}
			} else {
				c := &win[wi]
				wi++
				if r.sj != nil {
					r.sj.copyDone(st, c.sub, r.route(c.node)%parts)
				}
			}
		}
	}
}
