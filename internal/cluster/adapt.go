package cluster

// Adaptive overload control: a global retry/hedge budget and per-node
// circuit breakers, the production-RPC-stack answer to retry-storm
// metastability — after a fault clears, naive timeout retries keep
// effective load above capacity indefinitely; capping conditional
// copies at a fraction of primary traffic and suppressing copies to
// broken nodes lets the backlog drain.
//
// The hard constraint is determinism under the conservative-window
// parallel backend (DESIGN.md §14): a token bucket read at every copy
// would make suppression decisions depend on the order copies are
// served *within* a window, which the partitioned backend does not
// preserve. Instead all adaptive state evolves on a fixed epoch grid
// (k·epochMs):
//
//   - During an epoch, observations accumulate as pending *integer*
//     counters that nothing reads: primaries/conditionals served (the
//     budget's traffic measure) and per-node attempt/slow counts (the
//     breaker's timeout-rate window). Integer sums merge commutative-
//     exactly at window barriers; per-node counters are written
//     directly because each node is owned by one partition.
//   - At each boundary, settle() folds pending into settled state and
//     runs the breaker transitions in node order. Suppression decisions
//     (allowCond) read settled state only.
//
// Both drivers settle each boundary b after exactly the copies with
// arrive < b: the sequential driver advances lazily before each copy;
// the parallel drivers truncate windows at the next boundary and
// advance at window starts, so no window spans a boundary and every
// pre-boundary copy has merged when a window at or past b opens. The
// result is byte-identical output at any partition and worker count.
//
// Budget: a conditional copy (hedge or timeout retry) launches only
// while settled condLaunched < RetryBudget·primServed — a cumulative
// deficit bucket on exact integers. Until the first epoch settles the
// counters are zero and conditionals are denied: a ≤-one-epoch warmup
// artifact, documented rather than special-cased.
//
// Breaker: closed → open when an epoch's attempts reach MinSamples and
// the slow fraction (response past TimeoutMs) reaches BreakerTripRate;
// open suppresses conditional copies to the node (primaries always
// flow — the shard has no other owner) until CooldownMs passes, then
// half-open lets conditionals probe; the next epoch with probe traffic
// closes or re-opens it.

import "dlrmsim/internal/check"

// breaker states.
const (
	breakerClosed uint8 = iota
	breakerOpen
	breakerHalfOpen
)

// breakerUnit is one node's circuit breaker.
type breakerUnit struct {
	state uint8
	until float64 // open: first boundary at/past this half-opens
}

// adaptState is one run's adaptive-mitigation state. It lives in the
// run arena and recycles its per-node slices.
type adaptState struct {
	// Policy (from Mitigation, defaults resolved).
	epochMs    float64
	budget     float64
	budgetOn   bool
	breakerOn  bool
	timeoutMs  float64
	tripRate   float64
	minSamples int32
	cooldownMs float64

	boundary float64 // next unsettled epoch boundary

	// Settled state — the only fields allowCond reads.
	primServed   int64
	condLaunched int64
	breakers     []breakerUnit

	// Pending within the current epoch. The sequential driver writes
	// pendPrim/pendCond directly; the parallel drivers defer them
	// through partScratch and fold at barriers. attempts/slow are
	// per-node and node-owned, so both drivers write them in place.
	pendPrim, pendCond int64
	attempts, slow     []int32

	openNodeMs float64 // breaker-open node·ms accrued at settled epochs
	lastT      float64 // max arrive over processed copies (finalize's tail)
}

func (ad *adaptState) init(m *Mitigation, nodes int) {
	ad.epochMs = m.AdaptEpochMs
	ad.budget = m.RetryBudget
	ad.budgetOn = m.RetryBudget > 0
	ad.breakerOn = m.BreakerTripRate > 0
	ad.timeoutMs = m.TimeoutMs
	ad.tripRate = m.BreakerTripRate
	ad.minSamples = int32(m.BreakerMinSamples)
	ad.cooldownMs = m.BreakerCooldownMs
	ad.boundary = ad.epochMs
	ad.primServed, ad.condLaunched = 0, 0
	ad.pendPrim, ad.pendCond = 0, 0
	ad.openNodeMs, ad.lastT = 0, 0
	ad.breakers = arenaSlice(&ad.breakers, nodes)
	ad.attempts = arenaSlice(&ad.attempts, nodes)
	ad.slow = arenaSlice(&ad.slow, nodes)
	for n := 0; n < nodes; n++ {
		ad.breakers[n] = breakerUnit{}
		ad.attempts[n], ad.slow[n] = 0, 0
	}
}

// advanceTo settles every epoch boundary at or before t. Drivers call
// it at sequential points only (before a copy, or at a window start).
func (ad *adaptState) advanceTo(t float64) {
	for ad.boundary <= t {
		ad.settle()
	}
}

// settle closes the epoch ending at the current boundary: fold pending
// budget counters, accrue open-breaker time, and run the breaker
// transitions in node order on the epoch's attempt/slow counts.
func (ad *adaptState) settle() {
	b := ad.boundary
	ad.primServed += ad.pendPrim
	ad.condLaunched += ad.pendCond
	ad.pendPrim, ad.pendCond = 0, 0
	if ad.breakerOn {
		for n := range ad.breakers {
			br := &ad.breakers[n]
			a, s := ad.attempts[n], ad.slow[n]
			ad.attempts[n], ad.slow[n] = 0, 0
			switch br.state {
			case breakerOpen:
				// Open for the whole epoch just ended; the counts are
				// primaries-only traffic, not a probe — discard them.
				ad.openNodeMs += ad.epochMs
				if b >= br.until {
					br.state = breakerHalfOpen
				}
			case breakerClosed:
				if a >= ad.minSamples && float64(s) >= ad.tripRate*float64(a) {
					br.state, br.until = breakerOpen, b+ad.cooldownMs
				}
			case breakerHalfOpen:
				// Probe epoch: any conditional traffic went through; no
				// traffic at all means no verdict yet.
				if a > 0 {
					if float64(s) >= ad.tripRate*float64(a) {
						br.state, br.until = breakerOpen, b+ad.cooldownMs
					} else {
						br.state = breakerClosed
					}
				}
			}
		}
	}
	ad.boundary = b + ad.epochMs
}

// allowCond decides whether a conditional copy (hedge or timeout retry)
// targeting node may launch. Reads settled state only — the decision is
// identical wherever in the current epoch the copy sits.
func (ad *adaptState) allowCond(node int) bool {
	if ad.budgetOn && float64(ad.condLaunched) >= ad.budget*float64(ad.primServed) {
		return false
	}
	if ad.breakerOn && ad.breakers[node].state == breakerOpen {
		return false
	}
	return true
}

// observe records one launched copy's outcome into the pending epoch:
// respMs is the router-observed response time past the copy's launch
// (back − launch), the quantity the router's timeout fires on. prim/
// cond go to the out-params so each driver can route them (directly, or
// through partScratch).
func (ad *adaptState) observe(node int, kind copyKind, respMs float64, pendPrim, pendCond *int64) {
	if kind == copyPrimary {
		*pendPrim++
	} else {
		*pendCond++
	}
	if ad.breakerOn {
		ad.attempts[node]++
		if respMs > ad.timeoutMs {
			ad.slow[node]++
		}
	}
}

// finalize accrues the open-breaker time of the final partial epoch and
// returns total breaker-open node·ms. Every boundary at or before the
// last processed copy has settled in either driver (windows never span
// a boundary), so only the tail [boundary−epochMs, lastT] is pending.
func (ad *adaptState) finalize() float64 {
	if check.Enabled {
		check.Assert(ad.boundary > ad.lastT,
			"cluster: adaptive settle behind schedule (boundary %g, last copy %g)", ad.boundary, ad.lastT)
	}
	if ad.breakerOn {
		if tail := ad.lastT - (ad.boundary - ad.epochMs); tail > 0 {
			for n := range ad.breakers {
				if ad.breakers[n].state == breakerOpen {
					ad.openNodeMs += tail
				}
			}
		}
	}
	return ad.openNodeMs
}
