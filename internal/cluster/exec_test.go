package cluster

import (
	"testing"

	"dlrmsim/internal/trace"
	"dlrmsim/internal/traffic"
)

// forceFanOut makes every non-trivial window take the goroutine path so
// the tests exercise the real partitioned serving, not the inline
// fallback.
func forceFanOut(t *testing.T) {
	t.Helper()
	prev := execFanOutMin
	execFanOutMin = 0
	t.Cleanup(func() { execFanOutMin = prev })
}

// execConfigs spans the closed-loop behavior space the parallel backend
// must reproduce bitwise: the plain path, the fault-injected path, each
// conditional-copy mitigation (hedging and timeout retries) whose
// suppression logic the conservative windows defer, a chaos schedule
// severing domains mid-run, and the adaptive overload controls whose
// epoch-grid state the windows must settle identically.
func execConfigs(t *testing.T) map[string]Config {
	t.Helper()
	plain := testConfig(t, 8, RowRange, 0.01, trace.HighHot)
	faulted := faultConfig(t, trace.MediumHot)
	hedged := faultConfig(t, trace.HighHot)
	hedged.Mitigation = Mitigation{HedgeDelayMs: hedgeDelay(t, trace.HighHot)}
	retried := faultConfig(t, trace.MediumHot)
	retried.Mitigation = Mitigation{TimeoutMs: hedgeDelay(t, trace.MediumHot) * 2, MaxRetries: 2}
	chaotic := faultConfig(t, trace.MediumHot)
	chaotic.Mitigation = Mitigation{HedgeDelayMs: hedgeDelay(t, trace.MediumHot)}
	chaotic.Chaos = chaosTestSchedule(chaotic.MeanArrivalMs * float64(chaotic.Queries))
	adaptive := faultConfig(t, trace.MediumHot)
	adaptive.Mitigation = Mitigation{
		TimeoutMs: hedgeDelay(t, trace.MediumHot) * 2, MaxRetries: 2,
		RetryBudget: 0.25, BreakerTripRate: 0.5, BreakerMinSamples: 4,
	}
	adaptive.Chaos = chaosTestSchedule(adaptive.MeanArrivalMs * float64(adaptive.Queries))
	return map[string]Config{
		"plain":          plain,
		"faults":         faulted,
		"hedge":          hedged,
		"retries":        retried,
		"chaos":          chaotic,
		"chaos-adaptive": adaptive,
	}
}

func hedgeDelay(t *testing.T, h trace.Hotness) float64 {
	t.Helper()
	return cleanBaseline(t, h).P99
}

func TestParallelBackendByteIdenticalClosedLoop(t *testing.T) {
	forceFanOut(t)
	for name, cfg := range execConfigs(t) {
		t.Run(name, func(t *testing.T) {
			want, err := Simulate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{2, 3, 8, 32} {
				restore := SetExecBackend(Parallel(shards))
				got, err := Simulate(cfg)
				restore()
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("Parallel(%d) diverged from Sequential:\nseq %+v\npar %+v", shards, want, got)
				}
			}
		})
	}
}

// TestParallelFallsBackOnFreeNetwork pins the documented degradation:
// conditional copies with zero network latency leave no lookahead, so
// the run must take the sequential path (and still match it exactly).
func TestParallelFallsBackOnFreeNetwork(t *testing.T) {
	forceFanOut(t)
	cfg := faultConfig(t, trace.HighHot)
	cfg.Net = Network{}
	cfg.Mitigation = Mitigation{HedgeDelayMs: hedgeDelay(t, trace.HighHot)}
	want, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	restore := SetExecBackend(Parallel(4))
	defer restore()
	got, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("zero-latency fallback diverged:\nseq %+v\npar %+v", want, got)
	}
}

// openExecConfigs spans the open-loop behavior space the windowed
// parallel driver must reproduce bitwise: the plain admit-all path,
// admission control reading reconstructed queue state, bursty overload,
// autoscaler ticks truncating windows, population revisits flowing
// through the pre-draw ring, and fault injection with hedging.
func openExecConfigs(t *testing.T) map[string]Config {
	t.Helper()
	cfgs := map[string]Config{}

	plain := openTestConfig(t, 4, &OpenLoop{
		Arrivals:   traffic.Config{Model: traffic.Poisson, RatePerMs: openRate(t, 4, 0.5)},
		DurationMs: 400,
		SLAMs:      50,
	})
	cfgs["plain"] = plain

	shed := openTestConfig(t, 4, &OpenLoop{
		Arrivals:   traffic.Config{Model: traffic.Poisson, RatePerMs: openRate(t, 4, 0.5)},
		DurationMs: 400,
		SLAMs:      50,
		Admission:  Admission{Policy: ShedOverBudget, QueueBudgetMs: 10},
	})
	cfgs["shed"] = shed

	cfgs["burst-shed"] = openColdConfig(t, 4, &OpenLoop{
		Arrivals: traffic.Config{
			Model: traffic.MMPP, RatePerMs: openRate(t, 4, 0.9),
			BurstFactor: 3, BurstEveryMs: 80, BurstMeanMs: 40,
		},
		DurationMs: 600,
		SLAMs:      8,
		Admission:  Admission{Policy: ShedOverBudget, QueueBudgetMs: 2},
	})

	cfgs["autoscale"] = openColdConfig(t, 4, &OpenLoop{
		Arrivals: traffic.Config{
			Model: traffic.Poisson, RatePerMs: openRate(t, 4, 0.5),
			DayMs: 800, DiurnalAmp: 0.8,
		},
		DurationMs: 800,
		SLAMs:      50,
		StartNodes: 2,
		Autoscale: &Autoscaler{
			IntervalMs:    16,
			UpBacklogMs:   2,
			DownBacklogMs: 0.2,
			ProvisionMs:   16,
			MinNodes:      2,
			MaxNodes:      4,
		},
	})

	cfgs["population"] = openTestConfig(t, 4, &OpenLoop{
		Arrivals:   traffic.Config{Model: traffic.Poisson, RatePerMs: openRate(t, 4, 0.4)},
		DurationMs: 500,
		SLAMs:      100,
		Population: &traffic.Population{Users: 1 << 16, RevisitProb: 0.7, Affinity: 0.6},
	})

	faulted := openTestConfig(t, 4, &OpenLoop{
		Arrivals:   traffic.Config{Model: traffic.Poisson, RatePerMs: openRate(t, 4, 0.5)},
		DurationMs: 400,
		SLAMs:      50,
	})
	faulted.Faults = testFaults()
	faulted.Mitigation = Mitigation{HedgeDelayMs: hedgeDelay(t, trace.HighHot), DegradedJoin: true,
		TimeoutMs: hedgeDelay(t, trace.HighHot) * 2, MaxRetries: 1}
	cfgs["faults"] = faulted

	chaotic := openTestConfig(t, 4, &OpenLoop{
		Arrivals:   traffic.Config{Model: traffic.Poisson, RatePerMs: openRate(t, 4, 0.6)},
		DurationMs: 500,
		SLAMs:      50,
	})
	chaotic.Chaos = chaosTestSchedule(500)
	chaotic.Mitigation = Mitigation{
		TimeoutMs: hedgeDelay(t, trace.HighHot) * 2, MaxRetries: 2,
		RetryBudget: 0.3, BreakerTripRate: 0.5, BreakerMinSamples: 4,
	}
	cfgs["chaos-adaptive"] = chaotic

	return cfgs
}

// TestParallelBackendByteIdenticalOpenLoop: the windowed driver is
// bit-for-bit the sequential event loop at every shard count, in both
// the batch-join and stream-stats summaries. The tiny pre-draw block
// forces ring refills mid-window, exercising the refill path's
// sequential/concurrent split.
func TestParallelBackendByteIdenticalOpenLoop(t *testing.T) {
	forceFanOut(t)
	prevBlock := openPredrawBlock
	openPredrawBlock = 7
	t.Cleanup(func() { openPredrawBlock = prevBlock })
	for name, cfg := range openExecConfigs(t) {
		for _, stream := range []bool{false, true} {
			label := name
			if stream {
				label += "-stream"
			}
			t.Run(label, func(t *testing.T) {
				cfg := cfg
				o := *cfg.Open
				o.StreamStats = stream
				cfg.Open = &o
				want, err := Simulate(cfg)
				if err != nil {
					t.Fatal(err)
				}
				for _, shards := range []int{2, 3, 8} {
					restore := SetExecBackend(Parallel(shards))
					got, err := Simulate(cfg)
					restore()
					if err != nil {
						t.Fatal(err)
					}
					if got != want {
						t.Fatalf("Parallel(%d) diverged from Sequential:\nseq %+v\npar %+v", shards, want, got)
					}
				}
			})
		}
	}
}

func TestExecBackendShards(t *testing.T) {
	if got := Sequential.Shards(); got != 1 {
		t.Fatalf("Sequential.Shards() = %d", got)
	}
	if got := Parallel(0).Shards(); got != 1 {
		t.Fatalf("Parallel(0).Shards() = %d", got)
	}
	if got := Parallel(6).Shards(); got != 6 {
		t.Fatalf("Parallel(6).Shards() = %d", got)
	}
	restore := SetExecBackend(Parallel(16))
	if got := execParts(4); got != 4 {
		t.Fatalf("execParts(4) under Parallel(16) = %d", got)
	}
	restore()
	if got := execParts(4); got != 1 {
		t.Fatalf("execParts(4) after restore = %d", got)
	}
}
