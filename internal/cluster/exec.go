package cluster

// Execution-backend selection (DESIGN.md §14): HOW one simulation run
// executes its event processing. The event-queue backends (eventq.go)
// pick the container that produces the (arrive, seq, attempt) total
// order; the exec backend picks whether one goroutine walks that order
// end to end (Sequential) or the fleet's nodes are partitioned into P
// logical processes that serve disjoint node sets concurrently
// (Parallel), synchronized with conservative time windows.
//
// The conservative-window argument: every copy travels a network hop,
// so a copy launched at router time L arrives at its node no earlier
// than L + Net.LatencyMs, and every response leaves its node no earlier
// than its arrival plus the same hop. With lookahead Lat = Net.LatencyMs
// and a window [W, W+Lat):
//
//   - every in-window copy has launch <= arrive - Lat < W, and
//   - every in-window response reaches the router at
//     back >= arrive + Lat >= W + Lat > launch of any in-window copy,
//
// so no in-window best-response update can suppress an in-window
// conditional copy (hedge/retry): suppression decisions depend only on
// state merged at the previous barrier. Each node's FCFS queue is owned
// by exactly one partition and still sees its submissions in canonical
// order, so queue evolution is bit-for-bit sequential. The remaining
// cross-partition effects — the router-side best response (float min),
// retry counts (integer sums), hedged flags (boolean or), and the
// max-queue-wait high-water mark (float max) — are commutative-exact,
// so deferring them to the barrier reproduces the sequential values
// bitwise in any merge order. Net result: byte-identical output to the
// Sequential backend at any partition count, pinned by internal/exp's
// differential suite across the experiment registry.
//
// When the mitigation policy schedules no conditional copies, no
// decision ever reads the deferred state mid-run and the whole run is
// one infinite window. When it does and the network hop is free
// (LatencyMs == 0) there is no lookahead to exploit, and the run falls
// back to the sequential path regardless of the configured backend.

import (
	"sync"

	"dlrmsim/internal/serve"
	"dlrmsim/internal/stats"
)

// ExecBackend names one execution strategy for a single run. The zero
// value is Sequential.
type ExecBackend struct {
	shards int
}

// Sequential is the default single-goroutine execution backend.
var Sequential = ExecBackend{}

// Parallel returns the conservative-window parallel backend with the
// given partition (logical process) count. Parallel(1) and values below
// 1 degrade to Sequential.
func Parallel(shards int) ExecBackend {
	return ExecBackend{shards: shards}
}

// Shards returns the backend's partition count (1 for Sequential).
func (b ExecBackend) Shards() int {
	if b.shards < 1 {
		return 1
	}
	return b.shards
}

// execBackend is the process-wide execution backend. Like the event
// backend it is a process-global: the CLIs set it once at startup, the
// differential suite flips it around whole registry renders, and
// callers must not run simulations concurrently with different
// backends.
var execBackend = Sequential

// SetExecBackend overrides the execution backend and returns a restore
// func, mirroring SetEventBackend.
func SetExecBackend(b ExecBackend) (restore func()) {
	prev := execBackend
	execBackend = b
	return func() { execBackend = prev }
}

// execParts resolves the effective partition count for a fleet: never
// more partitions than nodes (an empty partition is pure overhead).
func execParts(nodes int) int {
	p := execBackend.Shards()
	if p > nodes {
		p = nodes
	}
	if p < 1 {
		p = 1
	}
	return p
}

// execFanOutMin is the window size below which the partitioned window
// is served inline on the calling goroutine instead of fanning out:
// with conservative lookahead near the inter-event spacing most windows
// hold a handful of copies, and a goroutine handoff costs more than the
// serving. The inline path runs the same deferred-merge arithmetic, so
// the threshold is unobservable in the output (package var only so
// tests can force the fan-out path on small runs).
var execFanOutMin = 48

// runParts invokes fn(p) for every partition 0..parts-1, on the calling
// goroutine when parts == 1 and on parts goroutines (caller included)
// otherwise.
func runParts(parts int, fn func(p int)) {
	if parts <= 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(parts - 1)
	for p := 1; p < parts; p++ {
		go func(p int) {
			defer wg.Done()
			fn(p)
		}(p)
	}
	fn(0)
	wg.Wait()
}

// copyDelta is one served copy's deferred cross-partition effects: the
// router-side state a partition may not write mid-window because
// another partition could be reading it. All fields merge
// commutative-exactly (min, sum, or).
type copyDelta struct {
	sub     int
	back    float64
	retries int32
	hedged  bool
}

// partScratch is one partition's per-window working set, reused across
// windows.
type partScratch struct {
	copies  []subCopy   // this partition's canonical-order subsequence
	deltas  []copyDelta // deferred sub-state updates
	maxWait float64     // deferred post-warmup queue-wait high-water mark

	// Deferred adaptive-mitigation observations (adapt.go): integer
	// primary/conditional launch counts (commutative-exact sums) and the
	// partition's max processed-copy arrival (float max), folded into
	// adaptState at the barrier. Per-node attempt/slow counts skip the
	// scratch — each node is owned by one partition per window.
	pendPrim, pendCond int64
	maxT               float64
}

// efEntry records a node's earliest-free instant right after one copy
// was served — the per-node history the open-loop admission control
// reconstructs backlog-as-of-t from (openparallel.go).
type efEntry struct {
	arrive float64
	ef     float64
}

// serveCopyDeferred is serveCopy with every cross-partition write
// deferred into ps: the suppression check reads the barrier-merged
// sub.best (exact, per the window argument above), the node's queue and
// fault timelines are partition-owned and mutated directly, and the
// sub-state updates are recorded as a delta for applyDeltas. When
// efHist is non-nil the node's post-submit earliest-free instant is
// appended to its history. Must be called in canonical (arrive, seq,
// attempt) order per node.
func (s *simState) serveCopyDeferred(c *subCopy, node int, ps *partScratch, efHist [][]efEntry) {
	ad := s.adapt
	if ad != nil && c.arrive > ps.maxT {
		ps.maxT = c.arrive
	}
	sub := &s.subs[c.sub]
	if c.kind != copyPrimary && sub.best <= c.launch {
		return // a response arrived before this deadline; never sent
	}
	if ad != nil && c.kind != copyPrimary && !ad.allowCond(node) {
		return // suppressed by budget or breaker: never launched (see serveCopy)
	}
	d := copyDelta{sub: c.sub}
	switch c.kind {
	case copyHedge:
		d.hedged = true
	case copyRetry:
		d.retries++
	}
	d.retries += int32(c.resends)
	cfg := &s.cfg
	s.faults.applyOutages(node, c.arrive, s.queues[node])
	s.chaos.applyOutages(node, c.arrive, s.queues[node])
	svc := sub.svcMs
	if f := s.faults.slowFactor(node, c.arrive); f != 1 {
		svc *= f
	}
	if f := s.chaos.slowFactor(node, c.arrive); f != 1 {
		svc *= f
	}
	if cfg.JitterFrac > 0 {
		var draw float64
		if c.attempt == 0 {
			j := stats.SeededRNG(stats.SplitSeed(cfg.Seed^0x717E2, uint64(sub.q*s.plan.Nodes+node)))
			draw = j.NormFloat64()
		} else {
			draw = retryJitter(cfg.Seed, sub.q, node, c.attempt, s.plan.Nodes)
		}
		svc *= serve.Jitter(cfg.JitterFrac, draw)
	}
	start, done := s.queues[node].Submit(c.arrive, svc)
	if sub.q >= cfg.WarmupQueries && sub.dispatch >= s.warmupMs {
		if w := start - c.arrive; w > ps.maxWait {
			ps.maxWait = w
		}
	}
	d.back = done + cfg.Net.LatencyMs + cfg.Net.TransferMs(sub.respBytes)
	ps.deltas = append(ps.deltas, d)
	if ad != nil {
		ad.observe(node, c.kind, d.back-c.launch, &ps.pendPrim, &ps.pendCond)
	}
	if efHist != nil {
		efHist[node] = append(efHist[node], efEntry{arrive: c.arrive, ef: s.queues[node].EarliestFree()})
	}
}

// applyDeltas folds every partition's deferred effects into the shared
// sub state at a window barrier. Each merge is commutative-exact, so
// the fold order cannot perturb the result.
func (s *simState) applyDeltas(scratch []partScratch) {
	for p := range scratch {
		ps := &scratch[p]
		for i := range ps.deltas {
			d := &ps.deltas[i]
			sub := &s.subs[d.sub]
			if d.back < sub.best {
				sub.best = d.back
			}
			sub.retries += int(d.retries)
			if d.hedged {
				sub.hedged = true
			}
		}
		ps.deltas = ps.deltas[:0]
		if ps.maxWait > s.maxWait {
			s.maxWait = ps.maxWait
		}
		ps.maxWait = 0
		if ad := s.adapt; ad != nil {
			ad.pendPrim += ps.pendPrim
			ad.pendCond += ps.pendCond
			ps.pendPrim, ps.pendCond = 0, 0
			if ps.maxT > ad.lastT {
				ad.lastT = ps.maxT
			}
			ps.maxT = 0
		}
	}
}

// serveWindow serves one conservative window's copies — win is already
// in canonical (arrive, seq, attempt) order — under the partitioned
// deferred-merge discipline, then applies the barrier merge. routeTo,
// when non-nil, maps a copy's planned node to its serving node (the
// open loop's active-set routing, frozen for the window); partition
// ownership follows the routed node, so each node's queue is touched by
// exactly one goroutine. Small windows are served inline: identical
// arithmetic, no handoff.
func (s *simState) serveWindow(win []subCopy, parts int, scratch []partScratch, routeTo func(int) int, efHist [][]efEntry) {
	if parts <= 1 || len(win) < execFanOutMin {
		ps := &scratch[0]
		for i := range win {
			c := win[i]
			node := c.node
			if routeTo != nil {
				node = routeTo(node)
			}
			s.serveCopyDeferred(&c, node, ps, efHist)
		}
		s.applyDeltas(scratch[:1])
		return
	}
	for p := 0; p < parts; p++ {
		scratch[p].copies = scratch[p].copies[:0]
	}
	for i := range win {
		c := win[i]
		if routeTo != nil {
			c.node = routeTo(c.node)
		}
		scratch[c.node%parts].copies = append(scratch[c.node%parts].copies, c)
	}
	runParts(parts, func(p int) {
		ps := &scratch[p]
		for i := range ps.copies {
			c := &ps.copies[i]
			s.serveCopyDeferred(c, c.node, ps, efHist)
		}
	})
	s.applyDeltas(scratch[:parts])
}
