package cluster

import (
	"fmt"
	"math"

	"dlrmsim/internal/serve"
	"dlrmsim/internal/stats"
	"dlrmsim/internal/trace"
)

// wireHeaderBytes is the fixed per-message framing overhead charged on
// each network transfer (RPC envelope, offsets metadata).
const wireHeaderBytes = 64

// Config describes one cluster serving simulation.
type Config struct {
	// Plan is the sharding/replication placement (NewPlan).
	Plan *Plan
	// Hotness selects the access-concentration class of the query
	// stream, matching internal/trace's calibrated classes.
	Hotness trace.Hotness
	// SamplesPerQuery is the number of samples per query batch (each
	// sample performs Model.LookupsPerSample lookups in every table).
	SamplesPerQuery int
	// Timing is the per-node service model (TimingFromReport or explicit).
	Timing Timing
	// Net is the router↔node hop cost (zero value = free network;
	// DefaultNetwork gives datacenter-Ethernet defaults).
	Net Network
	// ServersPerNode is each node's concurrent server count (default 1) —
	// the cores the node dedicates to sub-request service.
	ServersPerNode int
	// MeanArrivalMs is the mean inter-arrival time of the Poisson query
	// load at the router.
	MeanArrivalMs float64
	// JitterFrac multiplies each sub-request's service time by
	// exp(J·N(0,1)), as in internal/serve. 0 disables jitter.
	JitterFrac float64
	// Queries is the number of queries to simulate (default 2000).
	Queries int
	// WarmupQueries are excluded from the percentiles (default 5%).
	WarmupQueries int
	// Seed drives arrivals, lookups, and jitter; every stream is derived
	// statelessly from it via stats.SplitSeed.
	Seed uint64
}

func (c *Config) applyDefaults() error {
	if c.Plan == nil {
		return fmt.Errorf("cluster: nil plan")
	}
	if c.SamplesPerQuery < 1 {
		return fmt.Errorf("cluster: %d samples per query", c.SamplesPerQuery)
	}
	if c.MeanArrivalMs <= 0 {
		return fmt.Errorf("cluster: non-positive mean arrival %g", c.MeanArrivalMs)
	}
	if c.Timing.ColdLookupUs <= 0 {
		return fmt.Errorf("cluster: non-positive cold lookup cost %g", c.Timing.ColdLookupUs)
	}
	if c.ServersPerNode == 0 {
		c.ServersPerNode = 1
	}
	if c.ServersPerNode < 1 {
		return fmt.Errorf("cluster: %d servers per node", c.ServersPerNode)
	}
	if c.Queries == 0 {
		c.Queries = 2000
	}
	if c.Queries < 1 {
		return fmt.Errorf("cluster: %d queries", c.Queries)
	}
	if c.WarmupQueries == 0 {
		c.WarmupQueries = c.Queries / 20
	}
	if c.WarmupQueries >= c.Queries {
		return fmt.Errorf("cluster: warmup %d >= queries %d", c.WarmupQueries, c.Queries)
	}
	return nil
}

// Result summarizes one cluster run.
type Result struct {
	// P50, P95, P99, Mean are end-to-end query latencies in ms (network
	// hops + queueing + service + join + dense stages), post-warmup.
	P50, P95, P99, Mean float64
	// MeanFanout is the mean number of nodes a query touches.
	MeanFanout float64
	// LocalFraction is the fraction of lookups served from replicated
	// hot rows (short-circuiting the shard fan-out).
	LocalFraction float64
	// MaxQueueWaitMs is the worst sub-request queueing delay observed.
	MaxQueueWaitMs float64
	// Utilization is total node busy time over total node capacity.
	Utilization float64
	// Imbalance is the busiest node's service time over the mean — 1.0
	// is perfectly balanced.
	Imbalance float64
	// ReplicaBytesPerNode and MaxShardBytes restate the plan's memory
	// accounting so latency/memory tradeoff curves come from one struct.
	ReplicaBytesPerNode int64
	MaxShardBytes       int64
}

// Simulate runs the discrete-event cluster simulation: Poisson query
// arrivals at the router; each query is split by the plan into per-shard
// sub-lookups (replicated hot rows short-circuit to the query's home
// node), fanned out with a network hop each way, served FCFS per node,
// and joined on the slowest sub-request, after which the dense stages
// are charged at the router.
//
// Queries are dispatched in arrival order; the per-query lookup ranks,
// the arrival stream, and each (query, node) jitter draw are all pure
// functions of (Seed, index) via stats.SplitSeed, so the result is a
// pure function of the config.
func Simulate(cfg Config) (Result, error) {
	if err := cfg.applyDefaults(); err != nil {
		return Result{}, err
	}
	plan := cfg.Plan
	model := plan.Model
	queues := make([]*serve.Queue, plan.Nodes)
	for n := range queues {
		queues[n] = serve.NewQueue(cfg.ServersPerNode)
	}
	arrivals := stats.NewRNG(stats.SplitSeed(cfg.Seed^0xA221, 0))

	cold := make([]int, plan.Nodes) // per-node shard-owned lookups of the current query
	latencies := make([]float64, 0, cfg.Queries-cfg.WarmupQueries)
	var now, maxWait, simEnd float64
	var fanoutSum, hotLookups, totalLookups int

	draws := cfg.SamplesPerQuery * model.LookupsPerSample
	for q := 0; q < cfg.Queries; q++ {
		now += arrivals.ExpFloat64() * cfg.MeanArrivalMs
		home := q % plan.Nodes
		for n := range cold {
			cold[n] = 0
		}
		hot := 0
		for t := 0; t < model.Tables; t++ {
			rng := stats.NewRNG(stats.SplitSeed(cfg.Seed^0x100C, uint64(q*model.Tables+t)))
			var rank func() int
			switch cfg.Hotness {
			case trace.OneItem:
				rank = func() int { return 0 }
			case trace.RandomAccess:
				rank = func() int { return rng.Intn(model.RowsPerTable) }
			default:
				z := stats.NewZipf(rng, model.RowsPerTable, cfg.Hotness.ReferenceExponent())
				rank = z.Sample
			}
			for l := 0; l < draws; l++ {
				r := rank()
				if plan.Replicated(r) {
					hot++
				} else {
					cold[plan.Owner(t, plan.rowOfRank(t, r))]++
				}
			}
		}

		// Fan out: one sub-request per involved node, FCFS at the node,
		// network hop + message transfer each way. The join completes at
		// the slowest sub-request's return.
		joined := now
		fanout := 0
		for n := 0; n < plan.Nodes; n++ {
			served := cold[n]
			svcUs := cfg.Timing.SubRequestUs + cfg.Timing.ColdLookupUs*float64(cold[n])
			if n == home && hot > 0 {
				served += hot
				svcUs += cfg.Timing.HotLookupUs * float64(hot)
			}
			if served == 0 {
				continue
			}
			fanout++
			svc := svcUs / 1e3
			if cfg.JitterFrac > 0 {
				j := stats.NewRNG(stats.SplitSeed(cfg.Seed^0x717E2, uint64(q*plan.Nodes+n)))
				svc *= math.Exp(cfg.JitterFrac * j.NormFloat64())
			}
			reqBytes := int64(4*served) + wireHeaderBytes
			arrive := now + cfg.Net.LatencyMs + cfg.Net.TransferMs(reqBytes)
			start, done := queues[n].Submit(arrive, svc)
			if w := start - arrive; w > maxWait {
				maxWait = w
			}
			// The response carries partial pooled sums: one EmbDim vector
			// per (sample, table) slice served, fp32 on the wire.
			pooled := (served + model.LookupsPerSample - 1) / model.LookupsPerSample
			respBytes := int64(pooled)*int64(model.EmbDim)*4 + wireHeaderBytes
			back := done + cfg.Net.LatencyMs + cfg.Net.TransferMs(respBytes)
			if back > joined {
				joined = back
			}
		}
		finish := joined + cfg.Timing.DenseMs
		if finish > simEnd {
			simEnd = finish
		}
		if q < cfg.WarmupQueries {
			continue
		}
		latencies = append(latencies, finish-now)
		fanoutSum += fanout
		hotLookups += hot
		totalLookups += hot
		for _, c := range cold {
			totalLookups += c
		}
	}

	res := Result{
		P50:                 stats.Percentile(latencies, 0.50),
		P95:                 stats.Percentile(latencies, 0.95),
		P99:                 stats.Percentile(latencies, 0.99),
		Mean:                stats.Mean(latencies),
		MeanFanout:          float64(fanoutSum) / float64(len(latencies)),
		MaxQueueWaitMs:      maxWait,
		ReplicaBytesPerNode: plan.ReplicaBytesPerNode(),
		MaxShardBytes:       plan.MaxShardBytes(),
	}
	if totalLookups > 0 {
		res.LocalFraction = float64(hotLookups) / float64(totalLookups)
	}
	var busySum, busyMax float64
	for _, qu := range queues {
		b := qu.BusyMs()
		busySum += b
		if b > busyMax {
			busyMax = b
		}
	}
	if simEnd > 0 {
		res.Utilization = busySum / (simEnd * float64(plan.Nodes*cfg.ServersPerNode))
	}
	if busySum > 0 {
		res.Imbalance = busyMax / (busySum / float64(plan.Nodes))
	}
	return res, nil
}

// ReplicationPoint is one replication fraction's result.
type ReplicationPoint struct {
	Fraction float64
	Result   Result
}

// SweepReplication reruns the simulation across replication fractions,
// holding everything else (including the offered load and every random
// stream) fixed — the replication-memory vs tail-latency curve. The
// sweep rebuilds the plan per point from cfg.Plan's model, nodes, and
// policy.
func SweepReplication(cfg Config, fractions []float64) ([]ReplicationPoint, error) {
	if len(fractions) == 0 {
		return nil, fmt.Errorf("cluster: empty replication sweep")
	}
	if cfg.Plan == nil {
		return nil, fmt.Errorf("cluster: nil plan")
	}
	out := make([]ReplicationPoint, 0, len(fractions))
	for _, f := range fractions {
		plan, err := NewPlan(cfg.Plan.Model, cfg.Plan.Nodes, cfg.Plan.Policy, f, cfg.Seed)
		if err != nil {
			return nil, err
		}
		c := cfg
		c.Plan = plan
		r, err := Simulate(c)
		if err != nil {
			return nil, err
		}
		out = append(out, ReplicationPoint{Fraction: f, Result: r})
	}
	return out, nil
}
