package cluster

import (
	"fmt"
	"math"
	"slices"

	"dlrmsim/internal/check"
	"dlrmsim/internal/eventq"
	"dlrmsim/internal/serve"
	"dlrmsim/internal/stats"
	"dlrmsim/internal/trace"
)

// wireHeaderBytes is the fixed per-message framing overhead charged on
// each network transfer (RPC envelope, offsets metadata).
const wireHeaderBytes = 64

// Config describes one cluster serving simulation.
type Config struct {
	// Plan is the sharding/replication placement (NewPlan).
	Plan *Plan
	// Hotness selects the access-concentration class of the query
	// stream, matching internal/trace's calibrated classes.
	Hotness trace.Hotness
	// SamplesPerQuery is the number of samples per query batch (each
	// sample performs Model.LookupsPerSample lookups in every table).
	SamplesPerQuery int
	// Timing is the per-node service model (TimingFromReport or explicit).
	Timing Timing
	// Net is the router↔node hop cost (zero value = free network;
	// DefaultNetwork gives datacenter-Ethernet defaults).
	Net Network
	// ServersPerNode is each node's concurrent server count (default 1) —
	// the cores the node dedicates to sub-request service.
	ServersPerNode int
	// MeanArrivalMs is the mean inter-arrival time of the Poisson query
	// load at the router (closed-loop mode; unused when Open is set).
	MeanArrivalMs float64
	// JitterFrac multiplies each sub-request's service time by
	// exp(J·N(0,1)), as in internal/serve. 0 disables jitter.
	JitterFrac float64
	// Queries is the number of queries to simulate (default 2000).
	Queries int
	// WarmupQueries are excluded from the percentiles. 0 means unset
	// (default 5% of Queries); -1 requests explicitly zero warmup.
	WarmupQueries int
	// Faults injects deterministic per-node slowdown episodes, transient
	// unavailability windows, and sub-request drops (zero = perfect
	// fleet).
	Faults FaultModel
	// Chaos scripts correlated failures over node failure domains —
	// domain outages, slowdowns, partitions between domain pairs, and
	// recoveries (chaos.go). Composes with Faults; zero injects nothing.
	Chaos ChaosSchedule
	// Mitigation is the router's fault-survival policy: per-sub-request
	// timeouts with bounded retry to a standby, hedged backups, degraded
	// joins, and the adaptive overload controls — retry/hedge budget and
	// per-node circuit breakers (zero = naive router).
	Mitigation Mitigation
	// Open switches the simulation to open-loop live-traffic mode: a
	// time-driven arrival stream (internal/traffic) with a synthetic user
	// population, admission control, and optional autoscaling, replacing
	// the closed-loop MeanArrivalMs/Queries load. See openloop.go.
	Open *OpenLoop
	// Seed drives arrivals, lookups, jitter, and every fault process;
	// every stream is derived statelessly from it via stats.SplitSeed.
	Seed uint64
}

func (c *Config) applyDefaults() error {
	if c.Plan == nil {
		return fmt.Errorf("cluster: nil plan")
	}
	if c.SamplesPerQuery < 1 {
		return fmt.Errorf("cluster: %d samples per query", c.SamplesPerQuery)
	}
	if c.Timing.ColdLookupUs <= 0 {
		return fmt.Errorf("cluster: non-positive cold lookup cost %g", c.Timing.ColdLookupUs)
	}
	if c.ServersPerNode == 0 {
		c.ServersPerNode = 1
	}
	if c.ServersPerNode < 1 {
		return fmt.Errorf("cluster: %d servers per node", c.ServersPerNode)
	}
	if c.Open != nil {
		// Open-loop mode: load comes from the traffic stream, so the
		// closed-loop knobs must be left zero (a set knob is a config
		// confusion, not a silent no-op).
		if c.MeanArrivalMs != 0 || c.Queries != 0 || c.WarmupQueries != 0 {
			return fmt.Errorf("cluster: closed-loop load knobs (mean arrival %g, queries %d, warmup %d) are unused with an open-loop config",
				c.MeanArrivalMs, c.Queries, c.WarmupQueries)
		}
		if err := c.Faults.validate(); err != nil {
			return err
		}
		if err := c.Mitigation.validate(); err != nil {
			return err
		}
		if err := c.Chaos.validateFirst(c.Plan.Nodes); err != nil {
			return err
		}
		// Clone before resolving defaults: Simulate receives the Config by
		// value but Open is a pointer, and mutating the caller's struct
		// would corrupt reuse — in a replication sweep, an explicit-zero
		// warmup (-1 → 0) would silently turn into the 5% default on the
		// next point.
		open := *c.Open
		if open.Autoscale != nil {
			as := *open.Autoscale
			open.Autoscale = &as
		}
		c.Open = &open
		return c.Open.applyDefaults(c.Plan.Nodes)
	}
	if c.MeanArrivalMs <= 0 {
		return fmt.Errorf("cluster: non-positive mean arrival %g", c.MeanArrivalMs)
	}
	if c.Queries == 0 {
		c.Queries = 2000
	}
	if c.Queries < 1 {
		return fmt.Errorf("cluster: %d queries", c.Queries)
	}
	switch {
	case c.WarmupQueries == 0:
		c.WarmupQueries = c.Queries / 20
	case c.WarmupQueries == -1:
		c.WarmupQueries = 0
	case c.WarmupQueries < 0:
		return fmt.Errorf("cluster: warmup %d (use -1 for explicit zero)", c.WarmupQueries)
	}
	if c.WarmupQueries >= c.Queries {
		return fmt.Errorf("cluster: warmup %d >= queries %d", c.WarmupQueries, c.Queries)
	}
	if err := c.Faults.validate(); err != nil {
		return err
	}
	if err := c.Mitigation.validate(); err != nil {
		return err
	}
	return c.Chaos.validateFirst(c.Plan.Nodes)
}

// Result summarizes one cluster run.
type Result struct {
	// P50, P95, P99, Mean are end-to-end query latencies in ms (network
	// hops + queueing + service + join + dense stages), post-warmup.
	P50, P95, P99, Mean float64
	// MeanFanout is the mean number of nodes a query touches.
	MeanFanout float64
	// LocalFraction is the fraction of lookups served from replicated
	// hot rows (short-circuiting the shard fan-out).
	LocalFraction float64
	// MaxQueueWaitMs is the worst sub-request queueing delay observed.
	MaxQueueWaitMs float64
	// Utilization is total node busy time over total node capacity.
	Utilization float64
	// Imbalance is the busiest node's service time over the mean — 1.0
	// is perfectly balanced.
	Imbalance float64
	// Availability is the fraction of post-warmup queries whose join was
	// complete — every sub-request answered (1.0 on a perfect fleet, and
	// whenever degraded joins are off).
	Availability float64
	// Completeness is the mean fraction of each post-warmup query's
	// lookups included in its joined result; degraded joins trade it for
	// bounded tail latency (1.0 otherwise).
	Completeness float64
	// HedgeRate is hedged backup copies launched per dispatched
	// sub-request (post-warmup).
	HedgeRate float64
	// RetriesPerQuery is the mean number of re-sent sub-request copies
	// per post-warmup query (timeout retries plus transport re-sends).
	RetriesPerQuery float64
	// RetryAmplification is total sub-request copies (primaries, hedges,
	// retries, transport re-sends) per scored query — the load-
	// multiplication factor a retry storm drives above 1× fan-out.
	RetryAmplification float64
	// BreakerOpenMinutes is total circuit-breaker-open time summed over
	// nodes, in node·minutes (0 without breakers).
	BreakerOpenMinutes float64
	// DomainAvailability is 1 minus the scheduled-domain-down fraction
	// of the run: the per-domain union of chaos outage windows over
	// domains × horizon (1.0 when no chaos schedule is active).
	DomainAvailability float64
	// ReplicaBytesPerNode and MaxShardBytes restate the plan's memory
	// accounting so latency/memory tradeoff curves come from one struct.
	ReplicaBytesPerNode int64
	MaxShardBytes       int64

	// The remaining fields are populated by open-loop runs only (Config.Open).

	// OfferedQPS is the post-warmup arrival rate actually drawn from the
	// traffic stream, admitted or not, in queries per second.
	OfferedQPS float64
	// Goodput is admitted post-warmup queries that completed within the
	// SLA, per second of post-warmup simulated time.
	Goodput float64
	// ShedRate is the fraction of post-warmup arrivals the admission
	// policy turned away.
	ShedRate float64
	// SLAViolationMinutes counts scaled minutes — 1/1440 of the diurnal
	// day, or of the run when no day is configured — in which at least one
	// admitted post-warmup query missed the SLA. Shed queries are charged
	// to ShedRate, not to violation minutes.
	SLAViolationMinutes float64
	// MeanActiveNodes is the time-weighted mean size of the active set
	// over the run (constant StartNodes without an autoscaler).
	MeanActiveNodes float64
	// ScaleUps and ScaleDowns count autoscaler provisioning and drain
	// decisions.
	ScaleUps, ScaleDowns int
	// RevisitRate is the fraction of post-warmup arrivals from revisiting
	// users (0 without a population).
	RevisitRate float64
	// TimeToRecoverMs measures recovery from the chaos schedule's last
	// window end (the fault-clear instant): the delay until the start of
	// the largest suffix of scaled-minute buckets in which goodput stays
	// within ε=0.1 of the offered load (per bucket, SLA-met admitted
	// queries ≥ 0.9 × arrivals; empty buckets are neutral). −1 means the
	// run never recovered — the metastable signature. 0 without a chaos
	// schedule.
	TimeToRecoverMs float64
	// PostFaultOfferedQPS and PostFaultGoodput restate OfferedQPS and
	// Goodput over the post-fault-clear window only (chaos runs; 0
	// otherwise) — the window the metastability assertions measure.
	PostFaultOfferedQPS float64
	PostFaultGoodput    float64
}

// recoverEps is TimeToRecoverMs's tolerance: a minute bucket counts as
// recovered when its goodput reaches (1−recoverEps) of its arrivals.
const recoverEps = 0.1

// subState is one sub-request's router-side bookkeeping: the shard fan-out
// unit whose copies (primary, hedge, retries) race to produce a response.
type subState struct {
	q         int
	owner     int
	dispatch  float64
	served    int     // lookups this sub-request covers
	svcMs     float64 // service time of one copy (pre-jitter, pre-slowdown)
	respBytes int64
	best      float64 // earliest response at the router so far
	retries   int     // timeout retries plus transport re-sends
	hedged    bool
	// Stream-stats bookkeeping (openloop.go): the owning join record's
	// slot and the count of scheduled copies not yet processed. Unused
	// (zero) in the default batch-join modes.
	join       int
	copiesLeft int32
}

// copyKind distinguishes how a sub-request copy got launched.
type copyKind uint8

const (
	copyPrimary copyKind = iota
	copyHedge
	copyRetry
)

// subCopy is one scheduled copy of a sub-request. Copies are processed
// globally in node-arrival order, so each node's queue sees submissions
// in true arrival order even though hedges and retries launch between
// later queries' dispatches. arrive folds in the transport's deterministic
// drop re-send delay, so every copy eventually reaches its node.
type subCopy struct {
	arrive  float64 // at the node: launch + drop re-sends + request hop
	launch  float64 // router-side launch deadline (condition reference)
	sub     int     // index into simState.subs
	seq     int     // monotone creation order of the sub — the tie key
	node    int     // target node (owner, or a standby for hedge/retry)
	attempt int     // jitter/drop stream id: 0 primary, 1 hedge, ≥2 retries
	resends int     // transport re-sends folded into arrive
	kind    copyKind
}

// simState is one Simulate run's mutable state.
type simState struct {
	cfg      Config
	plan     *Plan
	queues   []*serve.Queue
	faults   *faultState
	chaos    *chaosState // materialized chaos schedule (nil = none)
	adapt    *adaptState // epoch-grid adaptive mitigation (nil = static)
	subs     []subState
	copies   []subCopy
	warmupMs float64 // open-loop warmup horizon (0 in closed-loop mode)
	maxWait  float64 // worst post-warmup queueing delay (satellite fix:
	// warmup queries' waits are excluded, matching serve.Simulate)

	// Stream-stats recycling (openloop.go). subSeq is the monotone
	// creation counter copies carry as their tie key; with recycle set,
	// finalized sub slots return to freeSubs and the live set stays at
	// the in-flight high-water mark instead of growing with the run.
	// Without recycling seq always equals the slot index, so the
	// (arrive, seq, attempt) order is bit-for-bit the historical
	// (arrive, sub, attempt) order.
	recycle  bool
	subSeq   int
	freeSubs []int
}

// schedule plans every copy one sub-request may launch: the primary at
// dispatch, an optional hedged backup to the shard's standby owner at
// dispatch+HedgeDelayMs, and timeout retries down the standby chain at
// dispatch+k·TimeoutMs. Conditional copies are skipped at processing time
// when a response beat their launch deadline.
// schedule returns the sub's slot in s.subs so the open-loop
// stream-stats joiner can attach it to a join record. home is the
// query's home node — the router's location for chaos partition
// severance (copies crossing a severed domain pair in transit are lost
// and re-sent at heal, composed after the transport's drop re-sends).
func (s *simState) schedule(q, home, owner int, served int, svcMs float64, reqBytes, respBytes int64, dispatch float64) int {
	sub := subState{
		q: q, owner: owner, dispatch: dispatch,
		served: served, svcMs: svcMs, respBytes: respBytes,
		best: math.Inf(1),
	}
	seq := s.subSeq
	s.subSeq++
	var idx int
	if n := len(s.freeSubs); s.recycle && n > 0 {
		idx = s.freeSubs[n-1]
		s.freeSubs = s.freeSubs[:n-1]
		s.subs[idx] = sub
	} else {
		idx = len(s.subs)
		s.subs = append(s.subs, sub)
	}
	transit := s.cfg.Net.LatencyMs + s.cfg.Net.TransferMs(reqBytes)
	add := func(kind copyKind, node, attempt int, launch float64) {
		shift, resends := s.faults.dropShift(q, node, attempt, s.plan.Nodes)
		if s.chaos != nil {
			ps, pr := s.chaos.transitShift(home, node, launch+shift, transit)
			shift += ps
			resends += pr
		}
		s.copies = append(s.copies, subCopy{
			arrive:  launch + shift + transit,
			launch:  launch,
			sub:     idx,
			seq:     seq,
			node:    node,
			attempt: attempt,
			resends: resends,
			kind:    kind,
		})
		s.subs[idx].copiesLeft++
	}
	add(copyPrimary, owner, 0, dispatch)
	mit := &s.cfg.Mitigation
	if mit.HedgeDelayMs > 0 {
		add(copyHedge, (owner+1)%s.plan.Nodes, 1, dispatch+mit.HedgeDelayMs)
	}
	if mit.TimeoutMs > 0 {
		for k := 1; k <= mit.MaxRetries; k++ {
			add(copyRetry, (owner+k)%s.plan.Nodes, k+1, dispatch+float64(k)*mit.TimeoutMs)
		}
	}
	return idx
}

// run processes every scheduled copy in node-arrival order. A conditional
// copy launches only when no response beat its deadline; comparing against
// resolved copies is exact because an unresolved copy's arrival — and
// hence its response — is no earlier than the arrival being processed.
// attempt 0 keeps the legacy jitter stream, so fault-free runs are
// byte-identical to the pre-fault simulator.
func (s *simState) run() {
	// Every copy is known up front, so the native backend is a one-shot
	// sort. (arrive, sub, attempt) is a total order — no two copies share
	// a (sub, attempt) pair — so the unstable slices sort is deterministic
	// and yields exactly the order the reflection-based stable-keyed
	// sort.Slice produced, at a fraction of the cost: the copies are
	// nearly sorted already (queries dispatch in arrival order) and
	// pdqsort exploits that. See DESIGN.md §9 for the alternatives tried.
	// The eventq backends reproduce the identical order incrementally
	// (same comparator); the differential suite pins all three.
	switch eventBackend {
	case BackendHeap, BackendWheel:
		s.runEventq()
		return
	}
	s.sortCopies()
	prevArrive := math.Inf(-1)
	for i := range s.copies {
		c := &s.copies[i]
		if check.Enabled {
			check.Assert(c.arrive >= prevArrive && !math.IsNaN(c.arrive),
				"cluster: copy arrivals not monotone (%g after %g)", c.arrive, prevArrive)
			prevArrive = c.arrive
		}
		s.serveCopy(c, c.node)
	}
}

// sortCopies establishes the canonical (arrive, seq, attempt) total
// order in place — no two copies share a (seq, attempt) pair, so the
// unstable sort is deterministic.
func (s *simState) sortCopies() {
	slices.SortFunc(s.copies, func(a, b subCopy) int {
		switch {
		case a.arrive < b.arrive:
			return -1
		case a.arrive > b.arrive:
			return 1
		case a.seq != b.seq:
			return a.seq - b.seq
		default:
			return a.attempt - b.attempt
		}
	})
}

// runEventq is run()'s forced-backend variant: the copies drain through
// an eventq priority queue instead of a pre-sort. Same comparator, same
// total order, byte-identical results — it exists so the differential
// suite can exercise the heap and wheel against the sort on the full
// closed-loop registry.
func (s *simState) runEventq() {
	var q copyQueue
	if eventBackend == BackendHeap {
		h := eventq.NewHeap(copyLess)
		h.Grow(len(s.copies))
		q = h
	} else {
		// Size the wheel from the copies' time span so buckets stay small
		// regardless of the run's horizon.
		minArr, maxArr := math.Inf(1), math.Inf(-1)
		for i := range s.copies {
			if a := s.copies[i].arrive; a < minArr {
				minArr = a
			}
			if a := s.copies[i].arrive; a > maxArr {
				maxArr = a
			}
		}
		width := (maxArr - minArr) / float64(len(s.copies)+1) * 4
		if !(width > 0) || math.IsInf(width, 0) {
			width = 1
		}
		q = eventq.NewWheel(width, 1024, minArr, copyArrive, copyLess)
	}
	for i := range s.copies {
		q.Push(s.copies[i])
	}
	for q.Len() > 0 {
		c := q.Pop()
		s.serveCopy(&c, c.node)
	}
}

// serveCopy processes one copy at its node-arrival instant: conditional
// launch suppression, fault application, jitter, FCFS submission, and the
// router-side best-response update. node is the effective target — equal
// to c.node in closed-loop mode, but the open-loop simulator re-routes
// copies whose planned node was drained from the active set between
// scheduling and arrival. Callers must invoke it in (arrive, sub, attempt)
// order, the global node-arrival order the FCFS queues require.
func (s *simState) serveCopy(c *subCopy, node int) {
	ad := s.adapt
	if ad != nil {
		ad.advanceTo(c.arrive)
		if c.arrive > ad.lastT {
			ad.lastT = c.arrive
		}
	}
	sub := &s.subs[c.sub]
	if c.kind != copyPrimary && sub.best <= c.launch {
		return // a response arrived before this deadline; never sent
	}
	if ad != nil && c.kind != copyPrimary && !ad.allowCond(node) {
		// Budget exhausted or breaker open: the copy is never launched,
		// so it counts in no rate metric (HedgeRate, RetriesPerQuery) —
		// launched copies count, suppressed ones don't, consistently.
		return
	}
	switch c.kind {
	case copyHedge:
		sub.hedged = true
	case copyRetry:
		sub.retries++
	}
	sub.retries += c.resends
	cfg := &s.cfg
	s.faults.applyOutages(node, c.arrive, s.queues[node])
	s.chaos.applyOutages(node, c.arrive, s.queues[node])
	svc := sub.svcMs
	if f := s.faults.slowFactor(node, c.arrive); f != 1 {
		svc *= f
	}
	if f := s.chaos.slowFactor(node, c.arrive); f != 1 {
		svc *= f
	}
	if cfg.JitterFrac > 0 {
		var draw float64
		if c.attempt == 0 {
			j := stats.SeededRNG(stats.SplitSeed(cfg.Seed^0x717E2, uint64(sub.q*s.plan.Nodes+node)))
			draw = j.NormFloat64()
		} else {
			draw = retryJitter(cfg.Seed, sub.q, node, c.attempt, s.plan.Nodes)
		}
		svc *= serve.Jitter(cfg.JitterFrac, draw)
	}
	start, done := s.queues[node].Submit(c.arrive, svc)
	if sub.q >= cfg.WarmupQueries && sub.dispatch >= s.warmupMs {
		if w := start - c.arrive; w > s.maxWait {
			s.maxWait = w
		}
	}
	back := done + cfg.Net.LatencyMs + cfg.Net.TransferMs(sub.respBytes)
	if back < sub.best {
		sub.best = back
	}
	if ad != nil {
		ad.observe(node, c.kind, back-c.launch, &ad.pendPrim, &ad.pendCond)
	}
}

// resolve is the router's join-side view of one sub-request after every
// copy has been processed: when the router stops waiting, and whether it
// got a response. With degraded joins the router abandons the sub-request
// at the retry budget's final deadline, dispatch+(MaxRetries+1)·TimeoutMs;
// otherwise it waits out the slowest copy.
func (s *simState) resolve(sub *subState) (doneAt float64, ok bool) {
	mit := &s.cfg.Mitigation
	if mit.DegradedJoin {
		deadline := sub.dispatch + float64(mit.MaxRetries+1)*mit.TimeoutMs
		if sub.best > deadline {
			return deadline, false
		}
	}
	return sub.best, true
}

// Simulate runs the discrete-event cluster simulation: Poisson query
// arrivals at the router; each query is split by the plan into per-shard
// sub-lookups (replicated hot rows short-circuit to the query's home
// node), fanned out with a network hop each way, served FCFS per node,
// and joined on the slowest sub-request, after which the dense stages
// are charged at the router.
//
// With Faults configured, per-node slowdown episodes stretch service
// times, transient unavailability windows hold each node's queue shut,
// and sub-request copies are dropped in transit; Mitigation sets how the
// router survives them (timeouts, standby retries, hedged backups,
// degraded joins). A degraded join abandons unanswered shards at the
// retry budget's deadline, and the abandoned lookups are excluded from
// Completeness.
//
// Queries are dispatched in arrival order; the per-query lookup ranks,
// the arrival stream, each (query, node, attempt) jitter and drop draw,
// and each node's fault timeline are all pure functions of (Seed, index)
// via stats.SplitSeed, so the result is a pure function of the config.
//
// With Open set, the run switches to the open-loop live-traffic mode in
// openloop.go: a time-driven traffic stream replaces the closed-loop
// Poisson count, and admission control, the user population, and the
// autoscaler come into play.
func Simulate(cfg Config) (Result, error) {
	if err := cfg.applyDefaults(); err != nil {
		return Result{}, err
	}
	if cfg.Open != nil {
		return simulateOpen(cfg)
	}
	plan := cfg.Plan
	model := plan.Model
	a := acquireArena()
	st := &simState{
		cfg:    cfg,
		plan:   plan,
		queues: a.queueSet(plan.Nodes, cfg.ServersPerNode),
	}
	if cfg.Faults.Active() {
		st.faults = newFaultState(cfg.Faults, cfg.Seed, plan.Nodes)
	}
	if cfg.Chaos.Active() {
		st.chaos = a.chaosFor(&cfg.Chaos, plan.Nodes)
	}
	if cfg.Mitigation.adaptive() {
		st.adapt = a.adaptFor(&cfg.Mitigation, plan.Nodes)
	}
	// Seed the scheduling scratch: one sub-request per query is the floor
	// (the home node always serves), and the copy count per sub-request is
	// fixed by the mitigation policy. Growth beyond this is amortized.
	copiesPerSub := 1
	if cfg.Mitigation.HedgeDelayMs > 0 {
		copiesPerSub++
	}
	if cfg.Mitigation.TimeoutMs > 0 {
		copiesPerSub += cfg.Mitigation.MaxRetries
	}
	if cap(a.subs) < cfg.Queries {
		a.subs = make([]subState, 0, cfg.Queries)
	}
	if cap(a.copies) < cfg.Queries*copiesPerSub {
		a.copies = make([]subCopy, 0, cfg.Queries*copiesPerSub)
	}
	st.subs = a.subs[:0]
	st.copies = a.copies[:0]
	arrivals := stats.NewRNG(stats.SplitSeed(cfg.Seed^0xA221, 0))

	// Phase 1: draw each query's arrival and lookups, split them by the
	// plan, and schedule every sub-request copy the router might launch.
	cold := arenaInts(&a.cold, plan.Nodes) // per-node shard-owned lookups of the current query (drawQuery zeroes)
	nows := arenaFloats(&a.nows, cfg.Queries)
	firstSub := arenaInts(&a.firstSub, cfg.Queries+1)
	if cap(a.latencies) < cfg.Queries-cfg.WarmupQueries {
		a.latencies = make([]float64, 0, cfg.Queries-cfg.WarmupQueries)
	}
	latencies := a.latencies[:0]
	var now, simEnd float64
	var fanoutSum, hotLookups, totalLookups int
	var subCount, hedgeCount, retryCount, fullJoins int
	var completenessSum float64

	// The Zipf sampler's rejection-inversion constants depend only on
	// (rows, exponent), and construction consumes no generator draws, so
	// one sampler serves every (query, table) stream; each stream keeps
	// its own generator below, making the draws byte-identical to the
	// per-stream samplers this replaces.
	var zipf *stats.Zipf
	switch cfg.Hotness {
	case trace.OneItem, trace.RandomAccess:
	default:
		zipf = stats.NewSharedZipf(model.RowsPerTable, cfg.Hotness.ReferenceExponent())
	}

	// Under the parallel backend, phase 1's draws — the bulk of its cost
	// — pre-compute concurrently; the arrival stream and copy scheduling
	// below stay sequential (they are cheap and stateful).
	parts := execParts(plan.Nodes)
	useParallel := parts > 1 && st.parallelizable()
	var preHot, preCold []int
	draws := cfg.SamplesPerQuery * model.LookupsPerSample
	if useParallel {
		preHot = arenaInts(&a.preHot, cfg.Queries)
		preCold = arenaInts(&a.preCold, cfg.Queries*plan.Nodes)
		st.predrawQueries(zipf, draws, cfg.Queries, parts, preHot, preCold)
	}
	for q := 0; q < cfg.Queries; q++ {
		now += arrivals.ExpFloat64() * cfg.MeanArrivalMs
		nows[q] = now
		firstSub[q] = len(st.subs)
		home := q % plan.Nodes
		var hot int
		coldq := cold
		if preCold != nil {
			hot = preHot[q]
			coldq = preCold[q*plan.Nodes : (q+1)*plan.Nodes]
		} else {
			hot = st.drawQuery(zipf, draws, q, coldq)
		}

		// Fan out: one sub-request per involved node, with a network hop
		// and message transfer each way.
		for n := 0; n < plan.Nodes; n++ {
			served := coldq[n]
			svcUs := cfg.Timing.SubRequestUs + cfg.Timing.ColdLookupUs*float64(coldq[n])
			if n == home && hot > 0 {
				served += hot
				svcUs += cfg.Timing.HotLookupUs * float64(hot)
			}
			if served == 0 {
				continue
			}
			reqBytes := int64(4*served) + wireHeaderBytes
			// The response carries partial pooled sums: one EmbDim vector
			// per (sample, table) slice served, fp32 on the wire.
			pooled := (served + model.LookupsPerSample - 1) / model.LookupsPerSample
			respBytes := int64(pooled)*int64(model.EmbDim)*4 + wireHeaderBytes
			st.schedule(q, home, n, served, svcUs/1e3, reqBytes, respBytes, now)
		}
		if q >= cfg.WarmupQueries {
			hotLookups += hot
			totalLookups += hot
			for _, c := range coldq {
				totalLookups += c
			}
		}
	}
	firstSub[cfg.Queries] = len(st.subs)

	// Phase 2: serve every copy in node-arrival order, FCFS per node —
	// partitioned across conservative windows under the parallel backend,
	// one goroutine otherwise.
	if useParallel {
		st.runParallel(parts, a.partScratchSet(parts))
	} else {
		st.run()
	}

	// Phase 3: join each query on its slowest surviving sub-request (or,
	// degraded, on the deadline the router abandons the slowest shard at),
	// then charge the dense stages at the router.
	for q := 0; q < cfg.Queries; q++ {
		joined := nows[q]
		queryLookups, servedLookups := 0, 0
		hedges, retries := 0, 0
		complete := true
		for i := firstSub[q]; i < firstSub[q+1]; i++ {
			sub := &st.subs[i]
			doneAt, ok := st.resolve(sub)
			if doneAt > joined {
				joined = doneAt
			}
			queryLookups += sub.served
			retries += sub.retries
			if sub.hedged {
				hedges++
			}
			if ok {
				servedLookups += sub.served
			} else {
				complete = false
			}
		}
		finish := joined + cfg.Timing.DenseMs
		if finish > simEnd {
			simEnd = finish
		}
		if q < cfg.WarmupQueries {
			continue
		}
		latencies = append(latencies, finish-nows[q])
		fanoutSum += firstSub[q+1] - firstSub[q]
		subCount += firstSub[q+1] - firstSub[q]
		hedgeCount += hedges
		retryCount += retries
		if complete {
			fullJoins++
		}
		if queryLookups > 0 {
			completenessSum += float64(servedLookups) / float64(queryLookups)
		} else {
			completenessSum++
		}
	}

	pct := stats.Percentiles(latencies, 0.50, 0.95, 0.99)
	res := Result{
		P50:                 pct[0],
		P95:                 pct[1],
		P99:                 pct[2],
		Mean:                stats.Mean(latencies),
		MeanFanout:          float64(fanoutSum) / float64(len(latencies)),
		MaxQueueWaitMs:      st.maxWait,
		Availability:        float64(fullJoins) / float64(len(latencies)),
		Completeness:        completenessSum / float64(len(latencies)),
		RetriesPerQuery:     float64(retryCount) / float64(len(latencies)),
		ReplicaBytesPerNode: plan.ReplicaBytesPerNode(),
		MaxShardBytes:       plan.MaxShardBytes(),
	}
	res.RetryAmplification = float64(subCount+hedgeCount+retryCount) / float64(len(latencies))
	if st.adapt != nil {
		res.BreakerOpenMinutes = st.adapt.finalize() / 60000
	}
	res.DomainAvailability = 1
	if st.chaos != nil && simEnd > 0 {
		res.DomainAvailability = 1 - st.chaos.outageMs(simEnd)/(float64(st.chaos.domains)*simEnd)
	}
	if subCount > 0 {
		res.HedgeRate = float64(hedgeCount) / float64(subCount)
	}
	if totalLookups > 0 {
		res.LocalFraction = float64(hotLookups) / float64(totalLookups)
	}
	var busySum, busyMax float64
	for _, qu := range st.queues {
		b := qu.BusyMs()
		busySum += b
		if b > busyMax {
			busyMax = b
		}
	}
	if simEnd > 0 {
		res.Utilization = busySum / (simEnd * float64(plan.Nodes*cfg.ServersPerNode))
	}
	if busySum > 0 {
		res.Imbalance = busyMax / (busySum / float64(plan.Nodes))
	}
	if check.Enabled {
		check.Assert(check.Finite(res.P50) && check.Finite(res.P99) && check.Finite(res.Mean) && check.Finite(res.Utilization),
			"cluster: non-finite latency summary (p50 %g, p99 %g, mean %g, util %g)",
			res.P50, res.P99, res.Mean, res.Utilization)
	}
	a.subs, a.copies, a.latencies = st.subs, st.copies, latencies
	a.release()
	return res, nil
}

// ReplicationPoint is one replication fraction's result.
type ReplicationPoint struct {
	Fraction float64
	Result   Result
}

// SweepReplication reruns the simulation across replication fractions,
// holding everything else (including the offered load and every random
// stream) fixed — the replication-memory vs tail-latency curve. The
// sweep rebuilds the plan per point from cfg.Plan's model, nodes, and
// policy.
func SweepReplication(cfg Config, fractions []float64) ([]ReplicationPoint, error) {
	if len(fractions) == 0 {
		return nil, fmt.Errorf("cluster: empty replication sweep")
	}
	if cfg.Plan == nil {
		return nil, fmt.Errorf("cluster: nil plan")
	}
	out := make([]ReplicationPoint, 0, len(fractions))
	for _, f := range fractions {
		plan, err := NewPlan(cfg.Plan.Model, cfg.Plan.Nodes, cfg.Plan.Policy, f, cfg.Seed)
		if err != nil {
			return nil, err
		}
		c := cfg
		c.Plan = plan
		r, err := Simulate(c)
		if err != nil {
			return nil, err
		}
		out = append(out, ReplicationPoint{Fraction: f, Result: r})
	}
	return out, nil
}
