package cluster

import (
	"testing"

	"dlrmsim/internal/trace"
)

func testTiming() Timing {
	return Timing{ColdLookupUs: 2, HotLookupUs: 0.1, SubRequestUs: 5, DenseMs: 0.05}
}

func testConfig(t *testing.T, nodes int, policy Policy, frac float64, h trace.Hotness) Config {
	t.Helper()
	plan, err := NewPlan(testModel(), nodes, policy, frac, 1)
	if err != nil {
		t.Fatal(err)
	}
	tm := testTiming()
	return Config{
		Plan:            plan,
		Hotness:         h,
		SamplesPerQuery: 8,
		Timing:          tm,
		Net:             DefaultNetwork(),
		ServersPerNode:  2,
		MeanArrivalMs:   ArrivalForUtilization(plan, tm, 8, 2, 0.55),
		JitterFrac:      0.08,
		Queries:         2000,
		Seed:            1,
	}
}

func TestSimulateDeterministic(t *testing.T) {
	cfg := testConfig(t, 4, RowRange, 0.01, trace.HighHot)
	a, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("simulation not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestPercentileOrdering(t *testing.T) {
	res, err := Simulate(testConfig(t, 4, RowRange, 0, trace.MediumHot))
	if err != nil {
		t.Fatal(err)
	}
	if !(res.P50 <= res.P95 && res.P95 <= res.P99) {
		t.Fatalf("percentiles out of order: %g %g %g", res.P50, res.P95, res.P99)
	}
	if res.Mean <= 0 || res.MeanFanout < 1 {
		t.Fatalf("degenerate result: %+v", res)
	}
}

// TestReplicationImprovesHighHotTail is the subsystem's headline claim
// (and the PR's acceptance criterion): under the High-hotness trace, p95
// improves (or stays flat) monotonically as the replication fraction
// grows, while the replication memory cost rises.
func TestReplicationImprovesHighHotTail(t *testing.T) {
	cfg := testConfig(t, 8, RowRange, 0, trace.HighHot)
	points, err := SweepReplication(cfg, []float64{0, 0.001, 0.01, 0.05, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(points); i++ {
		prev, cur := points[i-1], points[i]
		if cur.Result.P95 > prev.Result.P95 {
			t.Errorf("p95 regressed as replication grew: f=%g → %.4f ms, f=%g → %.4f ms",
				prev.Fraction, prev.Result.P95, cur.Fraction, cur.Result.P95)
		}
		if cur.Result.ReplicaBytesPerNode < prev.Result.ReplicaBytesPerNode {
			t.Errorf("replica memory shrank as f grew: f=%g", cur.Fraction)
		}
		if cur.Result.LocalFraction < prev.Result.LocalFraction {
			t.Errorf("local fraction shrank as f grew: f=%g", cur.Fraction)
		}
	}
	first, last := points[0].Result, points[len(points)-1].Result
	if last.P95 >= first.P95 {
		t.Errorf("replication never helped: p95 %.4f → %.4f ms", first.P95, last.P95)
	}
	if last.LocalFraction < 0.5 {
		t.Errorf("High-hot trace with 20%% replication serves only %.1f%% locally", 100*last.LocalFraction)
	}
	if last.MeanFanout >= first.MeanFanout {
		t.Errorf("replication did not shrink fan-out: %.2f → %.2f", first.MeanFanout, last.MeanFanout)
	}
}

func TestReplicationBarelyHelpsRandomAccess(t *testing.T) {
	cfg := testConfig(t, 8, RowRange, 0, trace.RandomAccess)
	points, err := SweepReplication(cfg, []float64{0, 0.01})
	if err != nil {
		t.Fatal(err)
	}
	// Uniform traffic puts ~f of lookups on replicas — replication buys
	// almost nothing, unlike the skewed classes.
	if lf := points[1].Result.LocalFraction; lf > 0.05 {
		t.Errorf("random access served %.1f%% locally at f=0.01", 100*lf)
	}
}

func TestTableWiseFanoutBounded(t *testing.T) {
	cfg := testConfig(t, 8, TableWise, 0, trace.MediumHot)
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	max := float64(cfg.Plan.Model.Tables)
	if res.MeanFanout > max {
		t.Fatalf("table-wise fan-out %.2f exceeds table count %g", res.MeanFanout, max)
	}
}

func TestMoreNodesReduceUtilization(t *testing.T) {
	small := testConfig(t, 2, RowRange, 0, trace.MediumHot)
	big := testConfig(t, 8, RowRange, 0, trace.MediumHot)
	big.MeanArrivalMs = small.MeanArrivalMs // fixed offered load
	rs, err := Simulate(small)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Simulate(big)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Utilization >= rs.Utilization {
		t.Fatalf("4x nodes did not reduce utilization: %.3f vs %.3f", rb.Utilization, rs.Utilization)
	}
}

func TestNetworkCostRaisesLatency(t *testing.T) {
	free := testConfig(t, 4, RowRange, 0, trace.MediumHot)
	free.Net = Network{}
	slow := testConfig(t, 4, RowRange, 0, trace.MediumHot)
	slow.Net = Network{LatencyMs: 0.5, BandwidthGBs: 1}
	rf, err := Simulate(free)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Simulate(slow)
	if err != nil {
		t.Fatal(err)
	}
	if rs.P50 <= rf.P50 {
		t.Fatalf("network hop cost did not raise latency: %.4f vs %.4f", rs.P50, rf.P50)
	}
}

func TestTransferMs(t *testing.T) {
	n := Network{LatencyMs: 0.05, BandwidthGBs: 10}
	if got := n.TransferMs(10_000_000); got != 1 {
		t.Fatalf("10 MB at 10 GB/s = %g ms, want 1", got)
	}
	if got := (Network{}).TransferMs(1 << 30); got != 0 {
		t.Fatalf("zero-bandwidth network charged %g ms", got)
	}
}

func TestConfigValidation(t *testing.T) {
	good := testConfig(t, 4, RowRange, 0, trace.MediumHot)
	bad := good
	bad.Plan = nil
	if _, err := Simulate(bad); err == nil {
		t.Error("accepted nil plan")
	}
	bad = good
	bad.SamplesPerQuery = 0
	if _, err := Simulate(bad); err == nil {
		t.Error("accepted zero samples")
	}
	bad = good
	bad.MeanArrivalMs = 0
	if _, err := Simulate(bad); err == nil {
		t.Error("accepted zero arrival")
	}
	bad = good
	bad.Timing.ColdLookupUs = 0
	if _, err := Simulate(bad); err == nil {
		t.Error("accepted zero lookup cost")
	}
	bad = good
	bad.Queries = 10
	bad.WarmupQueries = 10
	if _, err := Simulate(bad); err == nil {
		t.Error("accepted warmup >= queries")
	}
	if _, err := SweepReplication(good, nil); err == nil {
		t.Error("accepted empty sweep")
	}
}
