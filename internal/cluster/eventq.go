package cluster

// Event-queue backend selection. Both cluster loops consume sub-request
// copies in the same (arrive, sub, attempt) total order; HOW that order
// is produced is a pluggable backend so the differential suite can pin
// all implementations byte-identical across the experiment registry:
//
//   - BackendLegacy: the original paths — a one-shot slices.SortFunc in
//     the closed loop (every copy is known up front), container/heap
//     with `any`-boxed Push/Pop in the open loop.
//   - BackendHeap: eventq.Heap, the generic non-boxing binary heap.
//   - BackendWheel: eventq.Wheel, the calendar-queue timing wheel —
//     O(1) amortized per event, the default for the open-loop tier
//     where a day-in-the-life run is billions of events.
//
// BackendDefault resolves to each loop's native choice: the closed loop
// keeps the one-shot sort (nothing beats sorting a nearly-sorted array
// once), the open loop takes the wheel.

import (
	"container/heap"

	"dlrmsim/internal/eventq"
)

// EventBackend names one event-order implementation.
type EventBackend int

const (
	// BackendDefault picks each loop's native backend (sort / wheel).
	BackendDefault EventBackend = iota
	// BackendLegacy forces the original sort / boxed-heap paths.
	BackendLegacy
	// BackendHeap forces the generic eventq min-heap.
	BackendHeap
	// BackendWheel forces the calendar-queue timing wheel.
	BackendWheel
)

// eventBackend is the process-wide backend override. It exists for the
// differential suite; production callers leave it at BackendDefault.
var eventBackend = BackendDefault

// SetEventBackend overrides the event-queue backend and returns a
// restore func. Test-only: the override is process-wide, so callers
// must not run simulations concurrently with different backends.
func SetEventBackend(b EventBackend) (restore func()) {
	prev := eventBackend
	eventBackend = b
	return func() { eventBackend = prev }
}

// copyLess is the (arrive, sub, attempt) total order — identical to the
// closed-loop sort comparator; no two copies share (sub, attempt). The
// tie key is the sub's monotone creation seq, which equals the slot
// index except under stream-stats slot recycling (sim.go).
func copyLess(a, b subCopy) bool {
	if a.arrive != b.arrive {
		return a.arrive < b.arrive
	}
	if a.seq != b.seq {
		return a.seq < b.seq
	}
	return a.attempt < b.attempt
}

func copyArrive(c subCopy) float64 { return c.arrive }

// Wheel geometry for the open-loop copy queue: copies land within a few
// service times of the current instant, so a quarter-millisecond bucket
// keeps buckets near-singleton at production QPS while 4096 of them
// (a ~1s horizon) keep the overflow area essentially empty.
const (
	openWheelWidthMs = 0.25
	openWheelBuckets = 4096
)

// copyQueue is the open-loop event loop's view of its backend. The
// eventq types satisfy it directly; methods take and return subCopy by
// value, so no backend boxes elements (legacyCopyQueue excepted — that
// boxing is the bug BackendHeap/BackendWheel fix).
type copyQueue interface {
	Len() int
	Push(subCopy)
	Min() subCopy
	Pop() subCopy
}

func newCopyQueue(b EventBackend) copyQueue {
	switch b {
	case BackendLegacy:
		return &legacyCopyQueue{}
	case BackendHeap:
		return eventq.NewHeap(copyLess)
	default: // BackendDefault, BackendWheel
		return eventq.NewWheel(openWheelWidthMs, openWheelBuckets, 0, copyArrive, copyLess)
	}
}

// legacyCopyQueue adapts the original container/heap copyHeap to the
// copyQueue interface. Retained as the differential baseline; every
// Push/Pop allocates an interface box.
type legacyCopyQueue struct{ h copyHeap }

func (q *legacyCopyQueue) Len() int       { return q.h.Len() }
func (q *legacyCopyQueue) Push(c subCopy) { heap.Push(&q.h, c) }
func (q *legacyCopyQueue) Min() subCopy   { return q.h[0] }
func (q *legacyCopyQueue) Pop() subCopy   { return heap.Pop(&q.h).(subCopy) }
