package cluster

import (
	"math"
	"testing"

	"dlrmsim/internal/trace"
	"dlrmsim/internal/traffic"
)

// streamTestOpen is the shared open-loop spec for stream-vs-batch
// comparisons: shedding, a population, faults-free but hedged, at
// moderate overload so violations and sheds actually occur.
func streamTestOpen(t *testing.T, stream bool) Config {
	t.Helper()
	cfg := openTestConfig(t, 4, &OpenLoop{
		Arrivals:    traffic.Config{Model: traffic.Poisson, RatePerMs: openRate(t, 4, 0.75)},
		Population:  &traffic.Population{Users: 64, RevisitProb: 0.5, Affinity: 0.6},
		DurationMs:  600,
		SLAMs:       2,
		Admission:   Admission{Policy: ShedOverBudget, QueueBudgetMs: 8},
		StreamStats: stream,
	})
	cfg.Mitigation = Mitigation{TimeoutMs: 2, MaxRetries: 2, HedgeDelayMs: 1, DegradedJoin: true}
	cfg.Faults = FaultModel{
		SlowdownEveryMs: 40, SlowdownMeanMs: 6, SlowdownFactor: 4,
		DownEveryMs: 120, DownMeanMs: 3,
		DropProb: 0.01,
	}
	return cfg
}

// TestStreamStatsMatchesBatch pins the stream-stats accuracy contract:
// every counter metric is EXACTLY the batch join's value; the
// percentiles sit within the sketch's error bound; Mean differs only
// by float summation order.
func TestStreamStatsMatchesBatch(t *testing.T) {
	batch, err := Simulate(streamTestOpen(t, false))
	if err != nil {
		t.Fatal(err)
	}
	stream, err := Simulate(streamTestOpen(t, true))
	if err != nil {
		t.Fatal(err)
	}

	// Exact: everything except the three percentiles and the mean.
	exact := []struct {
		name string
		b, s float64
	}{
		{"MaxQueueWaitMs", batch.MaxQueueWaitMs, stream.MaxQueueWaitMs},
		{"MeanFanout", batch.MeanFanout, stream.MeanFanout},
		{"Availability", batch.Availability, stream.Availability},
		{"Completeness", batch.Completeness, stream.Completeness},
		{"RetriesPerQuery", batch.RetriesPerQuery, stream.RetriesPerQuery},
		{"HedgeRate", batch.HedgeRate, stream.HedgeRate},
		{"OfferedQPS", batch.OfferedQPS, stream.OfferedQPS},
		{"Goodput", batch.Goodput, stream.Goodput},
		{"ShedRate", batch.ShedRate, stream.ShedRate},
		{"RevisitRate", batch.RevisitRate, stream.RevisitRate},
		{"SLAViolationMinutes", batch.SLAViolationMinutes, stream.SLAViolationMinutes},
		{"MeanActiveNodes", batch.MeanActiveNodes, stream.MeanActiveNodes},
		{"Utilization", batch.Utilization, stream.Utilization},
		{"Imbalance", batch.Imbalance, stream.Imbalance},
		{"LocalFraction", batch.LocalFraction, stream.LocalFraction},
	}
	for _, e := range exact {
		if e.b != e.s {
			t.Errorf("%s: batch %v, stream %v (must be exact)", e.name, e.b, e.s)
		}
	}
	if batch.Goodput == 0 || batch.ShedRate == 0 || batch.SLAViolationMinutes == 0 {
		t.Fatalf("fixture too tame to exercise the contract: %+v", batch)
	}

	// Bounded: percentiles within twice the sketch's half-bucket bound.
	relTol := 2.0 / 128
	for _, p := range []struct {
		name string
		b, s float64
	}{{"P50", batch.P50, stream.P50}, {"P95", batch.P95, stream.P95}, {"P99", batch.P99, stream.P99}} {
		if rel := math.Abs(p.s-p.b) / p.b; rel > relTol {
			t.Errorf("%s: batch %g, stream %g (rel err %.4f > %.4f)", p.name, p.b, p.s, rel, relTol)
		}
	}
	if rel := math.Abs(stream.Mean-batch.Mean) / batch.Mean; rel > 1e-9 {
		t.Errorf("Mean: batch %g, stream %g (beyond FP reassociation)", batch.Mean, stream.Mean)
	}
}

// TestStreamStatsFlatMemory pins the O(1)-sample guarantee: quadrupling
// the run length must not grow the live-record high-water mark, which
// tracks in-flight work, not run length.
func TestStreamStatsFlatMemory(t *testing.T) {
	run := func(durationMs float64) (liveSubs, liveJoins, arrivals int) {
		defer func() { streamHighWater = nil }()
		streamHighWater = func(s, j int) { liveSubs, liveJoins = s, j }
		cfg := openTestConfig(t, 4, &OpenLoop{
			Arrivals:    traffic.Config{Model: traffic.Poisson, RatePerMs: openRate(t, 4, 0.6)},
			DurationMs:  durationMs,
			SLAMs:       5,
			StreamStats: true,
		})
		res, err := Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		arrivals = int(res.OfferedQPS * (durationMs - durationMs/20) / 1e3)
		return
	}
	s1, j1, n1 := run(500)
	s4, j4, n4 := run(2000)
	if n4 < 3*n1 {
		t.Fatalf("fixture broken: 4x duration saw %d vs %d arrivals", n4, n1)
	}
	if s1 == 0 || j1 == 0 {
		t.Fatal("high-water hook never fired")
	}
	// The in-flight population is set by load, not horizon: allow noise
	// but reject anything resembling linear growth.
	if float64(s4) > 2*float64(s1) || float64(j4) > 2*float64(j1) {
		t.Fatalf("live records grew with run length: subs %d -> %d, joins %d -> %d (arrivals %d -> %d)",
			s1, s4, j1, j4, n1, n4)
	}
	if s4 > n4/4 || j4 > n4/4 {
		t.Fatalf("high-water %d subs / %d joins not small against %d arrivals", s4, j4, n4)
	}
}

// TestStreamStatsDeterministic: the stream-stats run is still a pure
// function of the config.
func TestStreamStatsDeterministic(t *testing.T) {
	a, err := Simulate(streamTestOpen(t, true))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(streamTestOpen(t, true))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("stream-stats run not deterministic:\n%+v\n%+v", a, b)
	}
}

// TestOpenClosedLoopAgreement is the preallocation satellite's
// regression: the open loop driven by a constant-rate Poisson stream
// and the closed loop at the same mean arrival interval describe the
// same system, so their steady-state summaries must agree. The arrival
// processes are distinct random streams, so agreement is statistical —
// but at matched load, deviations beyond tens of percent mean one loop
// is charging different work.
func TestOpenClosedLoopAgreement(t *testing.T) {
	util := 0.5
	closed := testConfig(t, 4, RowRange, 0.01, trace.HighHot)
	closed.MeanArrivalMs = ArrivalForUtilization(closed.Plan, closed.Timing, 8, 2, util)
	closed.Queries = 4000
	cRes, err := Simulate(closed)
	if err != nil {
		t.Fatal(err)
	}

	open := openTestConfig(t, 4, &OpenLoop{
		Arrivals:   traffic.Config{Model: traffic.Poisson, RatePerMs: 1 / closed.MeanArrivalMs},
		DurationMs: float64(closed.Queries) * closed.MeanArrivalMs,
		SLAMs:      50,
	})
	oRes, err := Simulate(open)
	if err != nil {
		t.Fatal(err)
	}

	within := func(name string, a, b, tol float64) {
		t.Helper()
		if rel := math.Abs(a-b) / b; rel > tol {
			t.Errorf("%s: open %g vs closed %g (rel %.3f > %.2f)", name, a, b, rel, tol)
		}
	}
	within("Mean", oRes.Mean, cRes.Mean, 0.20)
	within("P50", oRes.P50, cRes.P50, 0.20)
	within("P95", oRes.P95, cRes.P95, 0.25)
	within("MeanFanout", oRes.MeanFanout, cRes.MeanFanout, 0.05)
	within("Utilization", oRes.Utilization, cRes.Utilization, 0.20)
	if oRes.ShedRate != 0 || oRes.Goodput == 0 {
		t.Fatalf("open-loop baseline should admit and serve everything: %+v", oRes)
	}
}
