package cluster

import (
	"fmt"

	"dlrmsim/internal/dlrm"
	"dlrmsim/internal/stats"
)

// Policy selects how a model's embedding tables are sharded across nodes.
type Policy int

const (
	// TableWise assigns whole tables round-robin: table t lives on node
	// t mod N. Lookups for one table never fan out, but per-node memory
	// is lumpy (whole tables) and hot tables concentrate load.
	TableWise Policy = iota
	// RowRange splits every table's rows into N contiguous ranges, one
	// per node. Memory is balanced to the row, but every table's lookups
	// fan out across all nodes that own accessed rows.
	RowRange
)

// String returns the policy's CLI spelling.
func (p Policy) String() string {
	switch p {
	case TableWise:
		return "tablewise"
	case RowRange:
		return "rowrange"
	default:
		return "invalid"
	}
}

// AllPolicies lists the sharding policies.
var AllPolicies = []Policy{TableWise, RowRange}

// ParsePolicy resolves a policy from its CLI spelling.
func ParsePolicy(name string) (Policy, error) {
	switch name {
	case "tablewise", "table":
		return TableWise, nil
	case "rowrange", "row":
		return RowRange, nil
	}
	return 0, fmt.Errorf("cluster: unknown sharding policy %q", name)
}

// Plan places one model's embedding tables on a cluster: the sharding
// policy, the per-node owned-shard footprint, and the replicated hot-row
// set (the top HotRows Zipf ranks of every table, present on every node).
type Plan struct {
	// Model is the sharded DLRM architecture.
	Model dlrm.Config
	// Nodes is the cluster size.
	Nodes int
	// Policy is the sharding policy.
	Policy Policy
	// HotRows is the number of rows per table (the hottest, by access
	// rank) replicated onto every node. 0 disables replication.
	HotRows int
	// ShardBytes is each node's owned (non-replica) embedding footprint.
	ShardBytes []int64

	// perms holds the per-table rank→row affine bijections.
	perms []perm
	// chunk is the row-range size per node (RowRange only).
	chunk int
}

// perm is one table's rank→row affine bijection: row = (rank·mult+add) mod rows.
type perm struct{ mult, add uint64 }

// NewPlan shards model across nodes under policy, replicating the top
// replicateFrac of every table's rows (by hotness rank) onto every node.
func NewPlan(model dlrm.Config, nodes int, policy Policy, replicateFrac float64, seed uint64) (*Plan, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if nodes < 1 {
		return nil, fmt.Errorf("cluster: %d nodes", nodes)
	}
	if replicateFrac < 0 || replicateFrac > 1 {
		return nil, fmt.Errorf("cluster: replication fraction %g outside [0,1]", replicateFrac)
	}
	if policy != TableWise && policy != RowRange {
		return nil, fmt.Errorf("cluster: invalid policy %d", policy)
	}
	p := &Plan{
		Model:   model,
		Nodes:   nodes,
		Policy:  policy,
		HotRows: int(replicateFrac * float64(model.RowsPerTable)),
		chunk:   (model.RowsPerTable + nodes - 1) / nodes,
	}
	p.perms = make([]perm, model.Tables)
	rows := uint64(model.RowsPerTable)
	for t := range p.perms {
		h := stats.Mix64(seed ^ uint64(t)*0x9E37)
		mult := h%rows | 1
		for gcd(mult, rows) != 1 {
			mult += 2
			if mult >= rows {
				mult = 1
			}
		}
		p.perms[t] = perm{mult: mult, add: stats.Mix64(h) % rows}
	}
	if replicateFrac > 0 && p.HotRows == 0 {
		p.HotRows = 1
	}
	perTable := model.PerTableBytes()
	rowBytes := perTable / int64(model.RowsPerTable)
	p.ShardBytes = make([]int64, nodes)
	switch policy {
	case TableWise:
		for t := 0; t < model.Tables; t++ {
			p.ShardBytes[t%nodes] += perTable
		}
	case RowRange:
		for n := 0; n < nodes; n++ {
			rows := model.RowsPerTable - n*p.chunk
			if rows > p.chunk {
				rows = p.chunk
			}
			if rows < 0 {
				rows = 0
			}
			p.ShardBytes[n] = int64(rows) * rowBytes * int64(model.Tables)
		}
	}
	return p, nil
}

// Owner returns the node owning (table, row) under the sharding policy.
func (p *Plan) Owner(table int, row int32) int {
	if p.Policy == TableWise {
		return table % p.Nodes
	}
	return int(row) / p.chunk
}

// Replicated reports whether a lookup with the given hotness rank hits
// the replicated hot-row set (ranks are 0-based, hottest first).
func (p *Plan) Replicated(rank int) bool { return rank < p.HotRows }

// rowOfRank maps a Zipf rank to a table-specific row id via the same
// affine bijection trace.Dataset uses, so each table's hot rows land at
// different row offsets — without it, RowRange would place every table's
// hottest rows on node 0.
func (p *Plan) rowOfRank(table, rank int) int32 {
	pm := p.perms[table]
	return int32((uint64(rank)*pm.mult + pm.add) % uint64(p.Model.RowsPerTable))
}

func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// ReplicaBytesPerNode returns the replication memory overhead each node
// carries: the hot rows of every table, minus the ~1/Nodes share the node
// already owns as shard data.
func (p *Plan) ReplicaBytesPerNode() int64 {
	rowBytes := p.Model.PerTableBytes() / int64(p.Model.RowsPerTable)
	total := int64(p.HotRows) * rowBytes * int64(p.Model.Tables)
	return total * int64(p.Nodes-1) / int64(p.Nodes)
}

// MaxShardBytes returns the largest per-node owned footprint — the
// capacity a node must provision before replicas.
func (p *Plan) MaxShardBytes() int64 {
	var max int64
	for _, b := range p.ShardBytes {
		if b > max {
			max = b
		}
	}
	return max
}

// TotalBytes returns the cluster-wide embedding footprint: all shards
// plus every node's replicas.
func (p *Plan) TotalBytes() int64 {
	var sum int64
	for _, b := range p.ShardBytes {
		sum += b
	}
	return sum + p.ReplicaBytesPerNode()*int64(p.Nodes)
}
