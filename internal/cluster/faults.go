package cluster

// The robustness subsystem: a deterministic fault model injected into
// Simulate (per-node slowdown episodes, transient unavailability windows,
// sub-request drops) and the router-side mitigation policies that survive
// it (per-sub-request timeouts with bounded retry to a standby, hedged
// backups, degraded joins). A perfect fleet is the zero value of both
// structs, and with both zero the simulation arithmetic is byte-identical
// to the pre-fault simulator.
//
// Substitution statement: real fleets fail through kernel scheduling
// stalls, GC pauses, deployment restarts, and packet loss; we substitute
// three seeded processes — exponential on/off slowdown episodes,
// exponential on/off outage windows (applied to the node's queue via
// serve.Queue.Unavailable), and an i.i.d. per-copy drop coin. The
// mitigation side mirrors the standard production toolkit (cf. the
// tail-at-scale literature and BagPipe's degraded cached lookups): each
// shard has a standby owner at node (owner+k) mod N that can serve the
// shard's rows, the router hedges a backup copy after a fixed delay, and
// a degraded join returns partial pooled sums when the retry budget's
// deadline passes, trading completeness for bounded tail latency.
//
// Every draw is a pure function of (Seed, query, node, attempt) via
// stats.SplitSeed, and per-node episode timelines are pure functions of
// (Seed, node), so fault-injected results keep the registry-wide
// byte-identical-at-any-worker-count determinism property.

import (
	"fmt"

	"dlrmsim/internal/serve"
	"dlrmsim/internal/stats"
)

// FaultModel describes the deterministic fault processes injected into a
// cluster simulation. The zero value injects nothing.
type FaultModel struct {
	// SlowdownEveryMs is the mean interval between per-node slowdown
	// episodes (exponential gaps; 0 disables slowdowns).
	SlowdownEveryMs float64
	// SlowdownMeanMs is the mean duration of one slowdown episode
	// (exponential durations).
	SlowdownMeanMs float64
	// SlowdownFactor multiplies a node's service times while an episode
	// is active (≥ 1; e.g. 4 models a node at quarter speed).
	SlowdownFactor float64
	// DownEveryMs is the mean interval between per-node transient
	// unavailability windows (exponential gaps; 0 disables outages).
	// While a window is open the node's servers accept no new work
	// (serve.Queue.Unavailable); requests arriving mid-window wait it
	// out unless the router's mitigation gives up on them first.
	DownEveryMs float64
	// DownMeanMs is the mean outage duration (exponential durations).
	DownMeanMs float64
	// DropProb is the probability each dispatched sub-request copy
	// (primary, hedge, or retry) is lost in transit, in [0, 1).
	DropProb float64
	// DropDetectMs is the transport-level loss-detection delay: a
	// dropped copy is noticed and re-sent to the same target this long
	// after its dispatch, under any router policy — the transport's
	// retransmit timer sits below the router's timeout, as in real RPC
	// stacks. Defaults to 1 ms when DropProb > 0.
	DropDetectMs float64
}

// Active reports whether the model injects any fault.
func (f FaultModel) Active() bool {
	return f.SlowdownEveryMs > 0 || f.DownEveryMs > 0 || f.DropProb > 0
}

func (f *FaultModel) validate() error {
	if f.DropProb < 0 || f.DropProb >= 1 {
		return fmt.Errorf("cluster: drop probability %g outside [0,1)", f.DropProb)
	}
	if f.SlowdownEveryMs < 0 || f.DownEveryMs < 0 || f.SlowdownMeanMs < 0 || f.DownMeanMs < 0 || f.DropDetectMs < 0 {
		return fmt.Errorf("cluster: negative fault interval")
	}
	if f.SlowdownEveryMs > 0 {
		if f.SlowdownMeanMs <= 0 {
			return fmt.Errorf("cluster: slowdown episodes need a positive mean duration")
		}
		if f.SlowdownFactor < 1 {
			return fmt.Errorf("cluster: slowdown factor %g < 1", f.SlowdownFactor)
		}
	}
	if f.DownEveryMs > 0 && f.DownMeanMs <= 0 {
		return fmt.Errorf("cluster: unavailability windows need a positive mean duration")
	}
	if f.DropProb > 0 && f.DropDetectMs == 0 {
		f.DropDetectMs = 1
	}
	return nil
}

// Mitigation is the router-side policy for surviving faults. The zero
// value is the naive router: every response is awaited however long it
// takes (transit losses are still recovered by the transport's
// DropDetectMs re-sends), no hedging, no degraded joins.
type Mitigation struct {
	// TimeoutMs is the per-sub-request attempt deadline measured from
	// dispatch: when no response has arrived k·TimeoutMs after the
	// sub-request was dispatched, the router launches retry k to the
	// shard's standby chain. 0 disables timeouts.
	TimeoutMs float64
	// MaxRetries bounds the timeout-driven retries. Retry k targets node
	// (owner+k) mod Nodes — the shard's standby chain. When the budget is
	// exhausted and DegradedJoin is false, the router waits out the
	// slowest in-flight copy.
	MaxRetries int
	// HedgeDelayMs launches one backup copy to the shard's standby owner
	// this long after dispatch when no response has arrived yet — the
	// classic hedged request. The earliest response wins. 0 disables
	// hedging.
	HedgeDelayMs float64
	// DegradedJoin lets the router give up on a sub-request at the retry
	// budget's final deadline, dispatch+(MaxRetries+1)·TimeoutMs, joining
	// the query with partial pooled sums: the abandoned shard's lookups
	// are excluded and the query's Completeness drops below 1.
	//
	// Contract: DegradedJoin REQUIRES TimeoutMs > 0 — the degraded join
	// is defined by the timeout deadline, so it cannot stand alone.
	// validate rejects the combination; it is not a silent no-op.
	DegradedJoin bool

	// The adaptive-overload knobs below (adapt.go) turn the static
	// policy above into one that stops retry storms from amplifying
	// load. All adaptive state evolves on a fixed epoch grid so output
	// stays byte-identical under the parallel execution backend.

	// RetryBudget caps conditional copies (hedges + timeout retries) at
	// this fraction of primary copies served, cumulatively: a
	// conditional launches only while launched conditionals stay under
	// RetryBudget·primaries, measured at epoch boundaries. 0 disables
	// the budget. Until the first epoch settles the measured traffic is
	// zero and conditionals are denied — a ≤-one-epoch warmup artifact.
	RetryBudget float64
	// AdaptEpochMs is the adaptive control epoch: budget and breaker
	// decisions see state settled at multiples of it. 0 defaults to
	// 4·TimeoutMs (or 4·HedgeDelayMs with no timeout).
	AdaptEpochMs float64
	// BreakerTripRate opens a node's circuit breaker when, in one epoch
	// with at least BreakerMinSamples attempts, the fraction of copies
	// answering past TimeoutMs reaches it (in (0, 1]). An open breaker
	// suppresses conditional copies to the node; primaries always flow.
	// 0 disables breakers; > 0 requires TimeoutMs > 0.
	BreakerTripRate float64
	// BreakerMinSamples is the minimum per-epoch attempt count before a
	// closed breaker may trip (0 defaults to 10).
	BreakerMinSamples int
	// BreakerCooldownMs holds an open breaker before it half-opens to
	// probe (0 defaults to 4 epochs).
	BreakerCooldownMs float64
}

// Active reports whether any mitigation is configured.
func (m Mitigation) Active() bool {
	return m.TimeoutMs > 0 || m.MaxRetries > 0 || m.HedgeDelayMs > 0 || m.DegradedJoin
}

// adaptive reports whether the adaptive-overload machinery (adapt.go)
// engages: a retry/hedge budget, per-node breakers, or both.
func (m *Mitigation) adaptive() bool {
	return m.RetryBudget > 0 || m.BreakerTripRate > 0
}

// validate checks the policy and resolves the adaptive zero-means-
// default knobs in place (pointer receiver, like FaultModel.validate —
// Config.Validate copies first to stay mutation-free).
func (m *Mitigation) validate() error {
	if m.TimeoutMs < 0 || m.HedgeDelayMs < 0 || m.MaxRetries < 0 {
		return fmt.Errorf("cluster: negative mitigation parameter")
	}
	if m.MaxRetries > 0 && m.TimeoutMs <= 0 {
		return fmt.Errorf("cluster: retries need a timeout to fire on")
	}
	if m.DegradedJoin && m.TimeoutMs <= 0 {
		return fmt.Errorf("cluster: degraded joins need a timeout deadline")
	}
	if m.RetryBudget < 0 || m.AdaptEpochMs < 0 || m.BreakerCooldownMs < 0 || m.BreakerMinSamples < 0 {
		return fmt.Errorf("cluster: negative adaptive-mitigation parameter")
	}
	if m.RetryBudget > 0 && m.MaxRetries <= 0 && m.HedgeDelayMs <= 0 {
		return fmt.Errorf("cluster: a retry budget needs retries or hedges to cap")
	}
	if m.BreakerTripRate != 0 && !(m.BreakerTripRate > 0 && m.BreakerTripRate <= 1) {
		return fmt.Errorf("cluster: breaker trip rate %g outside (0,1]", m.BreakerTripRate)
	}
	if m.BreakerTripRate > 0 && m.TimeoutMs <= 0 {
		return fmt.Errorf("cluster: circuit breakers need a timeout to measure against")
	}
	if m.BreakerTripRate == 0 && (m.BreakerMinSamples != 0 || m.BreakerCooldownMs != 0) {
		return fmt.Errorf("cluster: breaker knobs (min samples %d, cooldown %g ms) need a trip rate",
			m.BreakerMinSamples, m.BreakerCooldownMs)
	}
	if !m.adaptive() {
		if m.AdaptEpochMs != 0 {
			return fmt.Errorf("cluster: adaptive epoch %g ms needs a retry budget or breaker trip rate", m.AdaptEpochMs)
		}
		return nil
	}
	if m.AdaptEpochMs == 0 {
		if m.TimeoutMs > 0 {
			m.AdaptEpochMs = 4 * m.TimeoutMs
		} else {
			m.AdaptEpochMs = 4 * m.HedgeDelayMs
		}
	}
	if m.BreakerTripRate > 0 {
		if m.BreakerMinSamples == 0 {
			m.BreakerMinSamples = 10
		}
		if m.BreakerCooldownMs == 0 {
			m.BreakerCooldownMs = 4 * m.AdaptEpochMs
		}
	}
	return nil
}

// seed salts for the fault subsystem's independent streams.
const (
	saltSlowdown uint64 = 0x510D0
	saltOutage   uint64 = 0xD0109
	saltDrop     uint64 = 0xD60B
	saltRetry    uint64 = 0x9ED6E
)

// track lazily materializes one node's episode timeline: alternating
// exponential gaps and durations from a dedicated split stream, so the
// windows are a pure function of (seed, node) no matter when — or in what
// order — the simulation asks about them.
type track struct {
	rng     *stats.RNG
	gapMean float64
	durMean float64
	win     [][2]float64
	horizon float64 // timeline materialized through this instant
	applied int     // windows already pushed onto the node's queue
}

func newTrack(seed, salt uint64, node int, gapMean, durMean float64) *track {
	return &track{
		rng:     stats.NewRNG(stats.SplitSeed(seed^salt, uint64(node))),
		gapMean: gapMean,
		durMean: durMean,
	}
}

// extend materializes windows until the timeline covers t.
func (tr *track) extend(t float64) {
	for tr.horizon <= t {
		start := tr.horizon + tr.rng.ExpFloat64()*tr.gapMean
		end := start + tr.rng.ExpFloat64()*tr.durMean
		tr.win = append(tr.win, [2]float64{start, end})
		tr.horizon = end
	}
}

// inside reports whether t falls in an episode window. Because retries
// and hedges launch later than subsequently dispatched queries, lookups
// are not monotone in t; the materialized timeline answers any t below
// the horizon.
func (tr *track) inside(t float64) bool {
	tr.extend(t)
	lo, hi := 0, len(tr.win)
	for lo < hi { // first window with start > t
		mid := (lo + hi) / 2
		if tr.win[mid][0] <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo > 0 && t < tr.win[lo-1][1]
}

// faultState carries the per-node fault timelines of one simulation run.
type faultState struct {
	model FaultModel
	seed  uint64
	slow  []*track
	down  []*track
}

func newFaultState(model FaultModel, seed uint64, nodes int) *faultState {
	fs := &faultState{model: model, seed: seed}
	if model.SlowdownEveryMs > 0 {
		fs.slow = make([]*track, nodes)
		for n := range fs.slow {
			fs.slow[n] = newTrack(seed, saltSlowdown, n, model.SlowdownEveryMs, model.SlowdownMeanMs)
		}
	}
	if model.DownEveryMs > 0 {
		fs.down = make([]*track, nodes)
		for n := range fs.down {
			fs.down[n] = newTrack(seed, saltOutage, n, model.DownEveryMs, model.DownMeanMs)
		}
	}
	return fs
}

// slowFactor returns the service-time multiplier in effect on node at t.
func (fs *faultState) slowFactor(node int, t float64) float64 {
	if fs == nil || fs.slow == nil || !fs.slow[node].inside(t) {
		return 1
	}
	return fs.model.SlowdownFactor
}

// applyOutages pushes every outage window opening by t onto the node's
// queue. Windows are applied in start order as arrivals reach them, per
// serve.Queue.Unavailable's contract.
func (fs *faultState) applyOutages(node int, t float64, q *serve.Queue) {
	if fs == nil || fs.down == nil {
		return
	}
	tr := fs.down[node]
	tr.extend(t)
	for tr.applied < len(tr.win) && tr.win[tr.applied][0] <= t {
		q.Unavailable(tr.win[tr.applied][1])
		tr.applied++
	}
}

// dropStream returns the deterministic coin stream deciding how many
// consecutive copies of attempt a of query q's sub-request to node the
// transport loses before one gets through.
func (fs *faultState) dropStream(q, node, attempt, nodes int) stats.RNG {
	key := stats.SplitSeed(fs.seed^saltDrop, uint64(q)*uint64(nodes)+uint64(node))
	return stats.SeededRNG(stats.SplitSeed(key, uint64(attempt)))
}

// retryJitter is the jitter draw for retry/hedge copies — primaries keep
// the legacy (q, node) stream so fault-free runs stay byte-identical.
func retryJitter(seed uint64, q, node, attempt, nodes int) float64 {
	key := stats.SplitSeed(seed^saltRetry, uint64(q)*uint64(nodes)+uint64(node))
	rng := stats.SeededRNG(stats.SplitSeed(key, uint64(attempt)))
	return rng.NormFloat64()
}

// dropShift returns how long the transport's retransmit timer delays one
// copy's node arrival (resends × DropDetectMs): losses are recovered
// below the router under any policy, so delivery always completes.
func (fs *faultState) dropShift(q, node, attempt, nodes int) (shift float64, resends int) {
	if fs == nil || fs.model.DropProb <= 0 {
		return 0, 0
	}
	coin := fs.dropStream(q, node, attempt, nodes)
	for coin.Float64() < fs.model.DropProb {
		resends++
		shift += fs.model.DropDetectMs
	}
	return shift, resends
}
