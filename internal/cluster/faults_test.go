package cluster

import (
	"math"
	"testing"

	"dlrmsim/internal/trace"
)

// testFaults models rare-but-severe node trouble: occasional factor-6
// slowdown episodes, rarer outage windows, and 2% transit loss. Episodes
// are spaced far enough apart that a node drains its backlog before the
// next one — the regime where the tail is fault-dominated and mitigation
// can route around the sick node.
func testFaults() FaultModel {
	return FaultModel{
		SlowdownEveryMs: 200,
		SlowdownMeanMs:  10,
		SlowdownFactor:  6,
		DownEveryMs:     300,
		DownMeanMs:      4,
		DropProb:        0.02,
	}
}

// faultConfig is testConfig at half load with testFaults injected. At
// half load a factor-6 slowdown episode still saturates its node (offered
// ×6 > 1) and builds a backlog, but the fleet drains it between episodes
// — faults visibly hurt the tail, and mitigation traffic (hedges,
// retries) fits in the spare capacity instead of tipping the fleet into a
// retry storm.
func faultConfig(t *testing.T, h trace.Hotness) Config {
	t.Helper()
	cfg := testConfig(t, 4, RowRange, 0.01, h)
	cfg.MeanArrivalMs *= 2
	cfg.Faults = testFaults()
	return cfg
}

// cleanBaseline runs faultConfig's load with no faults — the reference
// the mitigation policies calibrate their deadlines against. Calibrating
// off the healthy tail (not the faulted median) is the point: a policy
// tuned to the faulted distribution fires far too late to help.
func cleanBaseline(t *testing.T, h trace.Hotness) Result {
	t.Helper()
	cfg := faultConfig(t, h)
	cfg.Faults = FaultModel{}
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCleanFleetReportsPerfectRobustness(t *testing.T) {
	res, err := Simulate(testConfig(t, 4, RowRange, 0.01, trace.MediumHot))
	if err != nil {
		t.Fatal(err)
	}
	if res.Availability != 1 || res.Completeness != 1 {
		t.Errorf("clean fleet availability %g, completeness %g, want 1, 1", res.Availability, res.Completeness)
	}
	if res.HedgeRate != 0 || res.RetriesPerQuery != 0 {
		t.Errorf("clean fleet hedges %g, retries %g, want 0, 0", res.HedgeRate, res.RetriesPerQuery)
	}
}

func TestFaultInjectionDeterministic(t *testing.T) {
	cfg := faultConfig(t, trace.HighHot)
	cfg.Mitigation = Mitigation{TimeoutMs: 2, MaxRetries: 2, HedgeDelayMs: 0.5, DegradedJoin: true}
	a, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("fault-injected simulation not deterministic:\n%+v\n%+v", a, b)
	}
	cfg.Seed++
	c, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("different seed produced identical fault-injected result")
	}
}

func TestFaultsWidenTail(t *testing.T) {
	clean, err := Simulate(testConfig(t, 4, RowRange, 0.01, trace.MediumHot))
	if err != nil {
		t.Fatal(err)
	}
	// Each fault class alone should hurt the tail of the naive router.
	classes := map[string]FaultModel{
		"slowdown": {SlowdownEveryMs: 40, SlowdownMeanMs: 8, SlowdownFactor: 6},
		"outage":   {DownEveryMs: 150, DownMeanMs: 4},
		"drop":     {DropProb: 0.05},
	}
	for name, fm := range classes {
		cfg := testConfig(t, 4, RowRange, 0.01, trace.MediumHot)
		cfg.Faults = fm
		res, err := Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.P99 <= clean.P99 {
			t.Errorf("%s faults did not widen p99: %.4f vs clean %.4f", name, res.P99, clean.P99)
		}
		// The naive router never loses data — it waits (or re-sends).
		if res.Availability != 1 || res.Completeness != 1 {
			t.Errorf("%s faults broke completeness on the naive router: avail %g compl %g",
				name, res.Availability, res.Completeness)
		}
	}
}

func TestNaiveRouterResendsDrops(t *testing.T) {
	cfg := testConfig(t, 4, RowRange, 0.01, trace.MediumHot)
	cfg.Faults = FaultModel{DropProb: 0.1}
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.RetriesPerQuery <= 0 {
		t.Fatal("10% drops produced zero transport re-sends")
	}
	if res.HedgeRate != 0 {
		t.Fatalf("naive router hedged: %g", res.HedgeRate)
	}
}

func TestHedgingFiresAndHelps(t *testing.T) {
	clean := cleanBaseline(t, trace.MediumHot)
	none := faultConfig(t, trace.MediumHot)
	res0, err := Simulate(none)
	if err != nil {
		t.Fatal(err)
	}
	hedged := faultConfig(t, trace.MediumHot)
	hedged.Mitigation = Mitigation{HedgeDelayMs: 2 * clean.P95}
	res1, err := Simulate(hedged)
	if err != nil {
		t.Fatal(err)
	}
	if res1.HedgeRate <= 0 {
		t.Fatal("hedging never fired under faults")
	}
	if res1.HedgeRate > 0.5 {
		t.Fatalf("hedge rate %.2f implausibly high for a 2×(clean p95) delay", res1.HedgeRate)
	}
	if res1.P99 >= res0.P99 {
		t.Errorf("hedged p99 %.4f did not beat naive p99 %.4f", res1.P99, res0.P99)
	}
	if res1.Availability != 1 || res1.Completeness != 1 {
		t.Errorf("hedging lost data: avail %g compl %g", res1.Availability, res1.Completeness)
	}
}

func TestTimeoutRetryHelpsUnderFaults(t *testing.T) {
	clean := cleanBaseline(t, trace.MediumHot)
	none := faultConfig(t, trace.MediumHot)
	res0, err := Simulate(none)
	if err != nil {
		t.Fatal(err)
	}
	retry := faultConfig(t, trace.MediumHot)
	retry.Mitigation = Mitigation{TimeoutMs: 2 * clean.P95, MaxRetries: 3}
	res1, err := Simulate(retry)
	if err != nil {
		t.Fatal(err)
	}
	if res1.RetriesPerQuery <= 0 {
		t.Fatal("timeout retries never fired under faults")
	}
	if res1.P99 >= res0.P99 {
		t.Errorf("retry p99 %.4f did not beat naive p99 %.4f", res1.P99, res0.P99)
	}
}

func TestDegradedJoinTradesCompletenessForBoundedTail(t *testing.T) {
	clean := cleanBaseline(t, trace.MediumHot)
	base, err := Simulate(faultConfig(t, trace.MediumHot))
	if err != nil {
		t.Fatal(err)
	}
	deg := faultConfig(t, trace.MediumHot)
	deg.Mitigation = Mitigation{TimeoutMs: 4 * clean.P95, MaxRetries: 1, DegradedJoin: true}
	res, err := Simulate(deg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Availability >= 1 || res.Completeness >= 1 {
		t.Fatalf("degraded joins never gave anything up: avail %g compl %g", res.Availability, res.Completeness)
	}
	if res.Completeness < 0.9 {
		t.Fatalf("degraded joins gave up %.1f%% of lookups — deadline too tight for the test config", 100*(1-res.Completeness))
	}
	// Every sub-request resolves by dispatch+(MaxRetries+1)·Timeout, so
	// the query tail is bounded by the deadline chain plus the dense
	// stage — the whole point of a degraded join.
	bound := float64(deg.Mitigation.MaxRetries+1)*deg.Mitigation.TimeoutMs + deg.Timing.DenseMs
	if res.P99 > bound+1e-9 {
		t.Errorf("degraded p99 %.4f exceeds the deadline bound %.4f", res.P99, bound)
	}
	if res.P99 >= base.P99 {
		t.Errorf("degraded p99 %.4f did not beat naive p99 %.4f", res.P99, base.P99)
	}
}

func TestMitigationValidation(t *testing.T) {
	good := faultConfig(t, trace.MediumHot)
	bad := good
	bad.Faults.DropProb = 1
	if _, err := Simulate(bad); err == nil {
		t.Error("accepted certain drop")
	}
	bad = good
	bad.Faults.SlowdownEveryMs = 10
	bad.Faults.SlowdownMeanMs = 0
	if _, err := Simulate(bad); err == nil {
		t.Error("accepted slowdown episodes with zero duration")
	}
	bad = good
	bad.Faults.SlowdownFactor = 0.5
	bad.Faults.SlowdownMeanMs = 1
	bad.Faults.SlowdownEveryMs = 10
	if _, err := Simulate(bad); err == nil {
		t.Error("accepted slowdown factor < 1")
	}
	bad = good
	bad.Mitigation = Mitigation{MaxRetries: 2}
	if _, err := Simulate(bad); err == nil {
		t.Error("accepted retries without a timeout")
	}
	bad = good
	bad.Mitigation = Mitigation{DegradedJoin: true}
	if _, err := Simulate(bad); err == nil {
		t.Error("accepted degraded joins without a timeout")
	}
	bad = good
	bad.Mitigation = Mitigation{TimeoutMs: -1}
	if _, err := Simulate(bad); err == nil {
		t.Error("accepted negative timeout")
	}
}

// TestWarmupWaitsExcluded pins the satellite fix: MaxQueueWaitMs must
// measure post-warmup sub-requests only, matching serve.Simulate — before
// the fix, warmup queries' queueing spikes leaked into the metric, so a
// run whose worst wait fell inside the warmup window reported a larger
// MaxQueueWaitMs than the same run measured post-warmup only.
func TestWarmupWaitsExcluded(t *testing.T) {
	mk := func(warmup int) Config {
		cfg := testConfig(t, 4, RowRange, 0, trace.MediumHot)
		cfg.Queries = 400
		cfg.WarmupQueries = warmup
		return cfg
	}
	full, err := Simulate(mk(-1)) // explicit zero warmup: every wait counts
	if err != nil {
		t.Fatal(err)
	}
	// Scan warmup lengths for one whose window contains the global worst
	// wait; with a 400-query run and the worst wait rarely in the final
	// few queries, some prefix qualifies.
	for _, warmup := range []int{350, 300, 200, 100} {
		trimmed, err := Simulate(mk(warmup))
		if err != nil {
			t.Fatal(err)
		}
		if trimmed.MaxQueueWaitMs > full.MaxQueueWaitMs {
			t.Fatalf("post-warmup max wait %.4f exceeds full-run max %.4f",
				trimmed.MaxQueueWaitMs, full.MaxQueueWaitMs)
		}
		if trimmed.MaxQueueWaitMs < full.MaxQueueWaitMs {
			return // the fix is observable: warmup spike excluded
		}
	}
	t.Fatal("no warmup window excluded the worst wait — metric still counts warmup queries")
}

// TestExplicitZeroWarmupQueries: 0 means unset (5% default), -1 means
// explicitly zero, other negatives are rejected.
func TestExplicitZeroWarmupQueries(t *testing.T) {
	cfg := testConfig(t, 4, RowRange, 0, trace.MediumHot)
	cfg.WarmupQueries = -1
	zero, err := Simulate(cfg)
	if err != nil {
		t.Fatalf("explicit-zero warmup rejected: %v", err)
	}
	cfg.WarmupQueries = 0
	def, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if zero == def {
		t.Fatal("explicit-zero warmup produced the same result as the 5% default")
	}
	cfg.WarmupQueries = -2
	if _, err := Simulate(cfg); err == nil {
		t.Fatal("accepted warmup -2")
	}
}

// TestTrackInside pins the lazy episode timeline: windows alternate gaps
// and durations, and membership answers correctly for out-of-order
// queries below the materialized horizon.
func TestTrackInside(t *testing.T) {
	tr := newTrack(7, saltSlowdown, 0, 10, 3)
	tr.extend(200)
	if len(tr.win) == 0 {
		t.Fatal("no windows materialized over 200 ms with a 10 ms mean gap")
	}
	prevEnd := 0.0
	for i, w := range tr.win {
		if w[0] < prevEnd || w[1] <= w[0] {
			t.Fatalf("window %d malformed: [%g, %g) after end %g", i, w[0], w[1], prevEnd)
		}
		prevEnd = w[1]
	}
	// Probe forwards then backwards: answers must agree with the windows.
	probes := []float64{0, 5, 50, 150, 199, 120, 3}
	for _, p := range probes {
		want := false
		for _, w := range tr.win {
			if p >= w[0] && p < w[1] {
				want = true
			}
		}
		if got := tr.inside(p); got != want {
			t.Errorf("inside(%g) = %v, want %v", p, got, want)
		}
	}
	mid := tr.win[0][0] + (tr.win[0][1]-tr.win[0][0])/2
	if !tr.inside(mid) {
		t.Error("midpoint of first window reported outside")
	}
	if tr.inside(tr.win[0][1]) && tr.win[0][1] != tr.win[1][0] {
		t.Error("window end (exclusive) reported inside")
	}
}

// TestFaultsOffMatchesLegacyPath: an explicitly zero FaultModel and
// Mitigation must reproduce the unconfigured simulation exactly.
func TestFaultsOffMatchesLegacyPath(t *testing.T) {
	plain := testConfig(t, 4, RowRange, 0.01, trace.HighHot)
	res0, err := Simulate(plain)
	if err != nil {
		t.Fatal(err)
	}
	withZero := plain
	withZero.Faults = FaultModel{}
	withZero.Mitigation = Mitigation{}
	res1, err := Simulate(withZero)
	if err != nil {
		t.Fatal(err)
	}
	if res0 != res1 {
		t.Fatalf("zero fault config changed results:\n%+v\n%+v", res0, res1)
	}
	if math.IsNaN(res0.P99) {
		t.Fatal("NaN latency")
	}
}
