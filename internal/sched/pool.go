// Package sched implements the paper's §4.3 thread-pool modification as a
// real concurrent component: instead of one global task queue that any
// worker may steal from (PyTorch's stock inter-op pool), workers are
// organized into core groups of two "SMT siblings" that share one private
// task queue. An inference dispatched to a group stays on that group —
// "one inference instance will always run on the same physical core, and
// other threads on other physical cores cannot steal the inference task."
//
// Go cannot pin goroutines to hardware threads, so the *scheduling
// policy* (queue topology, no cross-core stealing, sibling cooperation on
// one batch) is real, while hardware placement is the runtime's business;
// the performance consequences of placement are what package cpusim
// models. This package is the software architecture a production port
// would keep.
package sched

import (
	"errors"
	"fmt"
	"sync"
)

// Task is one unit of work. Tasks dispatched to the same group may run
// concurrently on the group's two workers.
type Task func()

// Policy selects the queue topology.
type Policy int

const (
	// GlobalQueue is the stock design: one queue, every worker pulls
	// from it (work can migrate freely across cores).
	GlobalQueue Policy = iota
	// PerCoreQueue is the paper's design: two workers per group share a
	// private queue; no cross-group stealing.
	PerCoreQueue
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case GlobalQueue:
		return "global-queue"
	case PerCoreQueue:
		return "per-core-queue"
	default:
		return "invalid"
	}
}

// Pool is a hyperthreading-aware worker pool. Construct with NewPool;
// Close releases the workers.
type Pool struct {
	policy Policy
	groups int

	mu     sync.Mutex
	cond   *sync.Cond
	queues [][]Task // one per group (or a single global queue)
	closed bool

	wg sync.WaitGroup

	// execMu guards execCount; per-group execution counts let tests
	// verify placement.
	execMu    sync.Mutex
	execCount []int64
}

// NewPool starts a pool with `groups` core groups of two workers each.
func NewPool(policy Policy, groups int) (*Pool, error) {
	if groups < 1 {
		return nil, fmt.Errorf("sched: %d groups", groups)
	}
	if policy != GlobalQueue && policy != PerCoreQueue {
		return nil, fmt.Errorf("sched: invalid policy %d", policy)
	}
	p := &Pool{policy: policy, groups: groups, execCount: make([]int64, groups)}
	p.cond = sync.NewCond(&p.mu)
	nq := groups
	if policy == GlobalQueue {
		nq = 1
	}
	p.queues = make([][]Task, nq)
	for g := 0; g < groups; g++ {
		for w := 0; w < 2; w++ {
			p.wg.Add(1)
			go p.worker(g)
		}
	}
	return p, nil
}

// Groups returns the number of core groups.
func (p *Pool) Groups() int { return p.groups }

// Policy returns the queue topology.
func (p *Pool) Policy() Policy { return p.policy }

// queueFor maps a group to its queue index.
func (p *Pool) queueFor(group int) int {
	if p.policy == GlobalQueue {
		return 0
	}
	return group
}

// Submit enqueues a task for the given core group. Under GlobalQueue the
// group is only advisory (any worker may take it); under PerCoreQueue the
// task is guaranteed to execute on the named group. Submit fails after
// Close and on an out-of-range group.
func (p *Pool) Submit(group int, task Task) error {
	if group < 0 || group >= p.groups {
		return fmt.Errorf("sched: group %d out of range [0,%d)", group, p.groups)
	}
	if task == nil {
		return errors.New("sched: nil task")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return errors.New("sched: pool is closed")
	}
	q := p.queueFor(group)
	p.queues[q] = append(p.queues[q], task)
	p.cond.Broadcast()
	return nil
}

// worker runs one hardware context of group g.
func (p *Pool) worker(g int) {
	defer p.wg.Done()
	q := p.queueFor(g)
	for {
		p.mu.Lock()
		for len(p.queues[q]) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.queues[q]) == 0 && p.closed {
			p.mu.Unlock()
			return
		}
		task := p.queues[q][0]
		p.queues[q] = p.queues[q][1:]
		p.mu.Unlock()

		task()
		p.execMu.Lock()
		p.execCount[g]++
		p.execMu.Unlock()
	}
}

// ExecCounts returns how many tasks each group's workers have completed.
func (p *Pool) ExecCounts() []int64 {
	p.execMu.Lock()
	defer p.execMu.Unlock()
	return append([]int64(nil), p.execCount...)
}

// Close drains outstanding tasks and stops the workers. It is safe to
// call once; Submit after Close fails.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}
