package sched

import (
	"fmt"
	"sync"

	"dlrmsim/internal/dlrm"
	"dlrmsim/internal/embedding"
)

// Mode selects how a batch's stages are decomposed onto a core group.
type Mode int

const (
	// Sequential runs the whole inference as one task (the stock design;
	// the group's second worker idles or serves another batch).
	Sequential Mode = iota
	// ModelParallel is MP-HT's decomposition: the embedding stage and
	// the bottom MLP run as two concurrent tasks on the group's
	// siblings; interaction + top MLP run after the join.
	ModelParallel
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Sequential:
		return "sequential"
	case ModelParallel:
		return "model-parallel"
	default:
		return "invalid"
	}
}

// Server executes numeric DLRM inference on a hyperthreading-aware pool.
// It is safe for concurrent use: callers may dispatch batches to distinct
// groups in parallel.
type Server struct {
	pool  *Pool
	model *dlrm.Model
	mode  Mode
}

// NewServer wraps pool and model. The pool should use PerCoreQueue for
// the placement guarantees the paper's design depends on.
func NewServer(pool *Pool, model *dlrm.Model, mode Mode) (*Server, error) {
	if pool == nil || model == nil {
		return nil, fmt.Errorf("sched: nil pool or model")
	}
	if mode != Sequential && mode != ModelParallel {
		return nil, fmt.Errorf("sched: invalid mode %d", mode)
	}
	return &Server{pool: pool, model: model, mode: mode}, nil
}

// Mode returns the stage-decomposition mode.
func (s *Server) Mode() Mode { return s.mode }

// InferBatch runs one batch on the given core group and returns the CTR
// predictions. Under ModelParallel, the embedding stage and the bottom
// MLP execute as concurrent sibling tasks — numerically identical to
// sequential execution because the stages are independent (the property
// §4.3 exploits).
func (s *Server) InferBatch(group int, dense [][]float32, src embedding.BatchSource) ([]float32, error) {
	batch := len(dense)
	if batch == 0 {
		return nil, fmt.Errorf("sched: empty batch")
	}
	if s.mode == Sequential {
		var preds []float32
		var err error
		var wg sync.WaitGroup
		wg.Add(1)
		if e := s.pool.Submit(group, func() {
			defer wg.Done()
			preds, err = s.model.Infer(dense, src)
		}); e != nil {
			return nil, e
		}
		wg.Wait()
		return preds, err
	}

	// ModelParallel: two independent stage tasks on the group.
	var (
		wg        sync.WaitGroup
		bottomOut [][]float32
		pooled    [][][]float32
		embErr    error
		botErr    error
	)
	wg.Add(2)
	if e := s.pool.Submit(group, func() {
		defer wg.Done()
		pooled, embErr = s.model.EmbedBatch(batch, src)
	}); e != nil {
		return nil, e
	}
	if e := s.pool.Submit(group, func() {
		defer wg.Done()
		bottomOut, botErr = s.model.Bottom().Forward(dense)
	}); e != nil {
		return nil, e
	}
	wg.Wait()
	if embErr != nil {
		return nil, embErr
	}
	if botErr != nil {
		return nil, botErr
	}

	// Join: interaction + top MLP on the same group.
	var preds []float32
	var err error
	wg.Add(1)
	if e := s.pool.Submit(group, func() {
		defer wg.Done()
		preds, err = s.model.InteractTop(bottomOut, pooled)
	}); e != nil {
		return nil, e
	}
	wg.Wait()
	return preds, err
}

// InferAll dispatches a set of batches across all groups round-robin and
// waits for every prediction; result i corresponds to batches[i].
func (s *Server) InferAll(denses [][][]float32, srcs []embedding.BatchSource) ([][]float32, error) {
	if len(denses) != len(srcs) {
		return nil, fmt.Errorf("sched: %d dense batches vs %d sparse sources", len(denses), len(srcs))
	}
	out := make([][]float32, len(denses))
	errs := make([]error, len(denses))
	var wg sync.WaitGroup
	for i := range denses {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i], errs[i] = s.InferBatch(i%s.pool.Groups(), denses[i], srcs[i])
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
