package sched

import (
	"sync"
	"sync/atomic"
	"testing"

	"dlrmsim/internal/dlrm"
	"dlrmsim/internal/embedding"
	"dlrmsim/internal/trace"
)

func TestNewPoolValidation(t *testing.T) {
	if _, err := NewPool(PerCoreQueue, 0); err == nil {
		t.Fatal("accepted zero groups")
	}
	if _, err := NewPool(Policy(9), 2); err == nil {
		t.Fatal("accepted invalid policy")
	}
}

func TestPoolRunsTasks(t *testing.T) {
	p, err := NewPool(PerCoreQueue, 2)
	if err != nil {
		t.Fatal(err)
	}
	var n int64
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		if err := p.Submit(i%2, func() {
			atomic.AddInt64(&n, 1)
			wg.Done()
		}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	p.Close()
	if n != 100 {
		t.Fatalf("ran %d tasks", n)
	}
}

func TestPerCoreQueueNoStealing(t *testing.T) {
	p, err := NewPool(PerCoreQueue, 4)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	// Submit work only to group 1.
	for i := 0; i < 50; i++ {
		wg.Add(1)
		if err := p.Submit(1, func() { wg.Done() }); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	p.Close()
	counts := p.ExecCounts()
	if counts[1] != 50 {
		t.Fatalf("group 1 ran %d tasks, want 50", counts[1])
	}
	for g, c := range counts {
		if g != 1 && c != 0 {
			t.Fatalf("group %d stole %d tasks", g, c)
		}
	}
}

func TestGlobalQueueMigratesWork(t *testing.T) {
	p, err := NewPool(GlobalQueue, 4)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	// Eight tasks "submitted to group 0" that each hold their worker
	// until all eight are running: with 4 groups × 2 workers, this can
	// only complete if the global queue spreads work across groups.
	for i := 0; i < 8; i++ {
		wg.Add(1)
		if err := p.Submit(0, func() {
			started <- struct{}{}
			<-release
			wg.Done()
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		<-started
	}
	close(release)
	wg.Wait()
	p.Close()
	ran := 0
	for _, c := range p.ExecCounts() {
		if c > 0 {
			ran++
		}
	}
	if ran != 4 {
		t.Fatalf("global queue used %d group(s), want all 4", ran)
	}
}

func TestSubmitAfterCloseFails(t *testing.T) {
	p, err := NewPool(PerCoreQueue, 1)
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	if err := p.Submit(0, func() {}); err == nil {
		t.Fatal("accepted submit after close")
	}
}

func TestSubmitValidation(t *testing.T) {
	p, err := NewPool(PerCoreQueue, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Submit(5, func() {}); err == nil {
		t.Fatal("accepted out-of-range group")
	}
	if err := p.Submit(0, nil); err == nil {
		t.Fatal("accepted nil task")
	}
}

func TestPolicyStrings(t *testing.T) {
	if GlobalQueue.String() == "invalid" || PerCoreQueue.String() == "invalid" {
		t.Fatal("policies unnamed")
	}
	if Policy(7).String() != "invalid" {
		t.Fatal("bad policy not flagged")
	}
	if Sequential.String() == "invalid" || ModelParallel.String() == "invalid" {
		t.Fatal("modes unnamed")
	}
	if Mode(7).String() != "invalid" {
		t.Fatal("bad mode not flagged")
	}
}

// serverFixture builds a small model + dataset + pool-backed server.
func serverFixture(t *testing.T, mode Mode) (*Server, *dlrm.Model, *trace.Dataset, *Pool) {
	t.Helper()
	cfg := dlrm.RM2Small().Scaled(20)
	model, err := dlrm.New(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := trace.NewDataset(trace.Config{
		Hotness: trace.MediumHot, Rows: cfg.RowsPerTable, Tables: cfg.Tables,
		BatchSize: 4, LookupsPerSample: cfg.LookupsPerSample, Batches: 8, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewPool(PerCoreQueue, 3)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(pool, model, mode)
	if err != nil {
		t.Fatal(err)
	}
	return srv, model, ds, pool
}

func TestServerModelParallelMatchesDirectInference(t *testing.T) {
	srv, model, ds, pool := serverFixture(t, ModelParallel)
	defer pool.Close()
	dense := model.DenseBatch(4, 9)
	src := func(tbl int) trace.TableBatch { return ds.Batch(0, tbl) }
	want, err := model.Infer(dense, src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := srv.InferBatch(1, dense, src)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d: MP-HT %g != direct %g", i, got[i], want[i])
		}
	}
	// All three tasks ran on group 1.
	counts := pool.ExecCounts()
	if counts[1] != 3 {
		t.Fatalf("group 1 ran %d tasks, want 3 (emb, bottom, join)", counts[1])
	}
}

func TestServerSequentialMatchesDirectInference(t *testing.T) {
	srv, model, ds, pool := serverFixture(t, Sequential)
	defer pool.Close()
	dense := model.DenseBatch(4, 9)
	src := func(tbl int) trace.TableBatch { return ds.Batch(0, tbl) }
	want, _ := model.Infer(dense, src)
	got, err := srv.InferBatch(0, dense, src)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d differs", i)
		}
	}
}

func TestServerInferAllConcurrent(t *testing.T) {
	srv, model, ds, pool := serverFixture(t, ModelParallel)
	defer pool.Close()
	const batches = 6
	denses := make([][][]float32, batches)
	srcs := make([]embedding.BatchSource, batches)
	for b := 0; b < batches; b++ {
		b := b
		denses[b] = model.DenseBatch(4, uint64(b))
		srcs[b] = func(tbl int) trace.TableBatch { return ds.Batch(b, tbl) }
	}
	got, err := srv.InferAll(denses, srcs)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < batches; b++ {
		want, err := model.Infer(denses[b], srcs[b])
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[b][i] != want[i] {
				t.Fatalf("batch %d sample %d: %g != %g", b, i, got[b][i], want[i])
			}
		}
	}
}

func TestServerValidation(t *testing.T) {
	if _, err := NewServer(nil, nil, Sequential); err == nil {
		t.Fatal("accepted nil pool/model")
	}
	srv, model, _, pool := serverFixture(t, ModelParallel)
	defer pool.Close()
	_ = model
	if _, err := srv.InferBatch(0, nil, nil); err == nil {
		t.Fatal("accepted empty batch")
	}
	if _, err := srv.InferAll(make([][][]float32, 2), nil); err == nil {
		t.Fatal("accepted mismatched InferAll inputs")
	}
}

func TestServerErrorPropagation(t *testing.T) {
	srv, model, _, pool := serverFixture(t, ModelParallel)
	defer pool.Close()
	dense := model.DenseBatch(4, 1)
	// Sparse source whose batch size mismatches dense.
	bad := func(tbl int) trace.TableBatch {
		return trace.TableBatch{Offsets: []int32{0, 1}, Indices: []int32{0}}
	}
	if _, err := srv.InferBatch(0, dense, bad); err == nil {
		t.Fatal("embedding error not propagated")
	}
}
