package check

import (
	"strings"
	"testing"
)

func TestAssertDisabledIsNoOp(t *testing.T) {
	defer func(old bool) { Enabled = old }(Enabled)
	Enabled = false
	Assert(false, "must not fire when disabled")
}

func TestAssertEnabledPanicsWithMessage(t *testing.T) {
	defer func(old bool) { Enabled = old }(Enabled)
	Enabled = true
	Assert(true, "must not fire on a true condition")
	defer func() {
		r := recover()
		s, ok := r.(string)
		if !ok || !strings.Contains(s, "invariant violated") || !strings.Contains(s, "x=7") {
			t.Errorf("panic = %v, want formatted invariant message", r)
		}
	}()
	Assert(false, "x=%d", 7)
	t.Fatal("Assert(false) did not panic with Enabled set")
}
