// Package check provides opt-in runtime invariant assertions for the
// simulators. Assertions are compiled in everywhere but cost one branch on
// a package-level bool when disabled, so the benchmarked hot paths pay
// nothing by default; the CLIs' -check flag (and any test that wants the
// extra scrutiny) enables them process-wide.
//
// An assertion failure panics: it indicates simulator state that should be
// impossible under any configuration that passed Validate(), i.e. a bug in
// the engine rather than bad user input. The experiment runner's panic
// isolation converts such a panic into a typed exp.CellError, so a tripped
// invariant in one sweep cell surfaces as a structured failure instead of
// killing the whole grid.
package check

import (
	"fmt"
	"math"
)

// Enabled turns runtime invariant assertions on. It is set once at process
// start (CLI flag parsing, test setup) before any simulation runs; it must
// not be toggled while simulations are in flight.
var Enabled bool

// Assert panics with a formatted "invariant violated" message when
// assertions are enabled and cond is false. Callers should keep argument
// construction trivial (or guard expensive ones with check.Enabled) so the
// disabled path stays free.
func Assert(cond bool, format string, args ...any) {
	if Enabled && !cond {
		panic(fmt.Sprintf("invariant violated: "+format, args...))
	}
}

// Finite reports whether v is neither NaN nor ±Inf. Simulator result
// paths assert it on every summary statistic they emit — a non-finite
// latency or utilization always means an engine bug, never bad input.
func Finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}
