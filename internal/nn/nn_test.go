package nn

import (
	"math"
	"testing"

	"dlrmsim/internal/cpusim"
)

func mustMLP(t *testing.T, dims []int, sigmoid bool) *MLP {
	t.Helper()
	m, err := NewMLP("test", dims, 11, sigmoid)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewMLPValidation(t *testing.T) {
	if _, err := NewMLP("x", []int{8}, 1, false); err == nil {
		t.Fatal("accepted single-dim MLP")
	}
	if _, err := NewMLP("x", []int{8, 0, 4}, 1, false); err == nil {
		t.Fatal("accepted zero width")
	}
}

func TestMLPShapes(t *testing.T) {
	m := mustMLP(t, []int{13, 64, 32}, false)
	if m.InputDim() != 13 || m.OutputDim() != 32 || m.Layers() != 2 {
		t.Fatalf("dims: in=%d out=%d layers=%d", m.InputDim(), m.OutputDim(), m.Layers())
	}
	out, err := m.Forward([][]float32{make([]float32, 13), make([]float32, 13)})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || len(out[0]) != 32 {
		t.Fatalf("forward shape = %dx%d", len(out), len(out[0]))
	}
}

func TestMLPRejectsWrongInputDim(t *testing.T) {
	m := mustMLP(t, []int{13, 8}, false)
	if _, err := m.Forward([][]float32{make([]float32, 5)}); err == nil {
		t.Fatal("accepted wrong input dim")
	}
}

func TestMLPDeterministic(t *testing.T) {
	m1 := mustMLP(t, []int{8, 16, 4}, false)
	m2 := mustMLP(t, []int{8, 16, 4}, false)
	in := [][]float32{{1, -2, 3, -4, 5, -6, 7, -8}}
	a, _ := m1.Forward(in)
	b, _ := m2.Forward(in)
	for i := range a[0] {
		if a[0][i] != b[0][i] {
			t.Fatal("same seed produced different outputs")
		}
	}
}

func TestMLPReLUHiddenNonNegative(t *testing.T) {
	// A 1-hidden-layer net: inspect the hidden activations by making the
	// "output" the hidden layer.
	m := mustMLP(t, []int{8, 32}, false)
	_ = m
	// Hidden layers are only non-negative when they're not the last
	// layer; test via a 2-layer net with known input instead: outputs
	// must be finite and not all zero.
	m2 := mustMLP(t, []int{8, 32, 4}, false)
	out, err := m2.Forward([][]float32{{1, 2, 3, 4, 5, 6, 7, 8}})
	if err != nil {
		t.Fatal(err)
	}
	nonzero := false
	for _, v := range out[0] {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("non-finite output %g", v)
		}
		if v != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("all outputs zero")
	}
}

func TestMLPSigmoidOutputInUnitInterval(t *testing.T) {
	m := mustMLP(t, []int{16, 8, 1}, true)
	in := make([]float32, 16)
	for i := range in {
		in[i] = float32(i) - 8
	}
	out, err := m.Forward([][]float32{in})
	if err != nil {
		t.Fatal(err)
	}
	p := out[0][0]
	if p <= 0 || p >= 1 {
		t.Fatalf("CTR prediction %g not in (0,1)", p)
	}
}

func TestMLPFLOPsAndWeights(t *testing.T) {
	m := mustMLP(t, []int{10, 20, 5}, false)
	if got := m.FLOPs(1); got != 2*(10*20+20*5) {
		t.Fatalf("FLOPs = %d", got)
	}
	if got := m.FLOPs(3); got != 3*2*(10*20+20*5) {
		t.Fatalf("batched FLOPs = %d", got)
	}
	wantW := int64(10*20*4 + 20*4 + 20*5*4 + 5*4)
	if got := m.WeightBytes(); got != wantW {
		t.Fatalf("weight bytes = %d, want %d", got, wantW)
	}
}

func TestMLPStreamOpAccounting(t *testing.T) {
	m := mustMLP(t, []int{64, 128, 32}, false)
	s := m.NewStream(StreamConfig{FlopsPerCycle: 32, Batch: 4})
	var op cpusim.Op
	var loads int64
	var compute float64
	for s.Next(&op) {
		switch op.Kind {
		case cpusim.OpLoad:
			loads++
		case cpusim.OpCompute:
			compute += op.Cost
		}
	}
	wantLines := (int64(64*128*4+128*4) + 63) / 64
	wantLines += (int64(128*32*4+32*4) + 63) / 64
	if loads != wantLines {
		t.Fatalf("weight-line loads = %d, want %d", loads, wantLines)
	}
	wantCycles := float64(m.FLOPs(4)) / 32
	if math.Abs(compute-wantCycles) > 1e-6*wantCycles {
		t.Fatalf("compute cycles = %g, want %g", compute, wantCycles)
	}
}

func TestMLPStreamSequentialAddresses(t *testing.T) {
	m := mustMLP(t, []int{32, 16}, false)
	s := m.NewStream(StreamConfig{FlopsPerCycle: 32, Batch: 1})
	var op cpusim.Op
	var prev int64 = -1
	for s.Next(&op) {
		if op.Kind != cpusim.OpLoad {
			continue
		}
		if prev >= 0 && int64(op.Addr) != prev+64 {
			t.Fatalf("non-sequential weight stream: %#x after %#x", op.Addr, prev)
		}
		prev = int64(op.Addr)
	}
}

func TestInteractionOutputDim(t *testing.T) {
	it := Interaction{Dim: 128, Tables: 60}
	// 61 vectors → 61*60/2 = 1830 dots + 128 passthrough.
	if got := it.OutputDim(); got != 128+1830 {
		t.Fatalf("output dim = %d", got)
	}
}

func TestInteractionForward(t *testing.T) {
	it := Interaction{Dim: 2, Tables: 2}
	bottom := []float32{1, 2}
	emb := [][]float32{{3, 4}, {5, 6}}
	out, err := it.Forward(bottom, emb)
	if err != nil {
		t.Fatal(err)
	}
	// Output: [1 2, b·e0, b·e1, e0·e1] = [1 2 11 17 39].
	want := []float32{1, 2, 11, 17, 39}
	if len(out) != len(want) {
		t.Fatalf("out = %v", out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out[%d] = %g, want %g", i, out[i], want[i])
		}
	}
}

func TestInteractionValidation(t *testing.T) {
	it := Interaction{Dim: 4, Tables: 1}
	if _, err := it.Forward([]float32{1}, [][]float32{{1, 2, 3, 4}}); err == nil {
		t.Fatal("accepted wrong bottom dim")
	}
	if _, err := it.Forward(make([]float32, 4), nil); err == nil {
		t.Fatal("accepted missing tables")
	}
	if _, err := it.Forward(make([]float32, 4), [][]float32{{1}}); err == nil {
		t.Fatal("accepted wrong table dim")
	}
}

func TestInteractionStreamComputeMatchesFLOPs(t *testing.T) {
	it := Interaction{Dim: 64, Tables: 8}
	s := it.NewStream(StreamConfig{FlopsPerCycle: 32, Batch: 4})
	var op cpusim.Op
	var compute float64
	for s.Next(&op) {
		if op.Kind == cpusim.OpCompute {
			compute += op.Cost
		}
	}
	want := float64(it.FLOPs(4)) / 32
	if math.Abs(compute-want) > 1e-6*want {
		t.Fatalf("compute = %g, want %g", compute, want)
	}
}

func TestMLPDifferentSeedsDiffer(t *testing.T) {
	m1, _ := NewMLP("a", []int{8, 4}, 1, false)
	m2, _ := NewMLP("a", []int{8, 4}, 2, false)
	in := [][]float32{{1, 1, 1, 1, 1, 1, 1, 1}}
	a, _ := m1.Forward(in)
	b, _ := m2.Forward(in)
	same := true
	for i := range a[0] {
		if a[0][i] != b[0][i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical weights")
	}
}
