package nn

import (
	"fmt"

	"dlrmsim/internal/cpusim"
	"dlrmsim/internal/memsim"
)

// interactBase places interaction scratch buffers in their own region.
const interactBase memsim.Addr = 1 << 38

// Interactor is a feature-interaction layer: it merges the bottom-MLP
// output with the pooled embedding vectors into the top MLP's input. The
// DLRM paper uses pairwise dot products (Interaction); DCN-v2 models use
// cross layers (CrossInteraction); Wide&Deep-style models concatenate
// (ConcatInteraction). All variants share the embedding front end, which
// is why the paper's optimizations transfer across model families (§2.3).
type Interactor interface {
	// OutputDim is the width fed to the top MLP.
	OutputDim() int
	// Forward merges one sample's bottom vector and embedding vectors.
	Forward(bottom []float32, emb [][]float32) ([]float32, error)
	// FLOPs is the multiply-add work for one batch.
	FLOPs(batch int) int64
	// NewStream is the stage's instruction stream for one batch.
	NewStream(cfg StreamConfig) cpusim.Stream
}

// Interaction implements DLRM's dot-product feature interaction: given the
// bottom-MLP output and one pooled embedding vector per table (all of
// dimension Dim), it computes all pairwise dot products among the
// (Tables+1) vectors and concatenates them with the bottom-MLP output.
type Interaction struct {
	// Dim is the shared vector dimension.
	Dim int
	// Tables is the number of embedding vectors (the bottom-MLP output
	// makes it Tables+1 interacting features).
	Tables int
}

// OutputDim returns the interaction output size: the bottom-MLP vector
// plus the strictly-lower-triangle of the pairwise dot-product matrix.
func (it Interaction) OutputDim() int {
	n := it.Tables + 1
	return it.Dim + n*(n-1)/2
}

// FLOPs returns the multiply-add FLOPs for one batch of `batch` samples.
func (it Interaction) FLOPs(batch int) int64 {
	n := int64(it.Tables + 1)
	return int64(batch) * n * (n - 1) / 2 * int64(it.Dim) * 2
}

// Forward computes the interaction for one sample: bottom is the
// bottom-MLP output; emb[t] is table t's pooled vector.
func (it Interaction) Forward(bottom []float32, emb [][]float32) ([]float32, error) {
	if len(bottom) != it.Dim {
		return nil, fmt.Errorf("nn: interaction bottom dim %d, want %d", len(bottom), it.Dim)
	}
	if len(emb) != it.Tables {
		return nil, fmt.Errorf("nn: interaction got %d tables, want %d", len(emb), it.Tables)
	}
	vecs := make([][]float32, 0, it.Tables+1)
	vecs = append(vecs, bottom)
	for t, e := range emb {
		if len(e) != it.Dim {
			return nil, fmt.Errorf("nn: interaction table %d dim %d, want %d", t, len(e), it.Dim)
		}
		vecs = append(vecs, e)
	}
	out := make([]float32, 0, it.OutputDim())
	out = append(out, bottom...)
	for i := 1; i < len(vecs); i++ {
		for j := 0; j < i; j++ {
			var dot float32
			for k := 0; k < it.Dim; k++ {
				dot += vecs[i][k] * vecs[j][k]
			}
			out = append(out, dot)
		}
	}
	return out, nil
}

// NewStream returns the interaction's instruction stream for one batch.
// The inputs are recently produced activations (cache-resident), so the
// stream is dominated by compute with a light pass over the activation
// lines.
func (it Interaction) NewStream(cfg StreamConfig) cpusim.Stream {
	if cfg.FlopsPerCycle <= 0 || cfg.Batch < 1 {
		panic(fmt.Sprintf("nn: bad stream config %+v", cfg))
	}
	actBytes := int64(it.Tables+1) * int64(it.Dim) * 4 * int64(cfg.Batch)
	lines := (actBytes + memsim.LineSize - 1) / memsim.LineSize
	perLine := float64(it.FLOPs(cfg.Batch)) / cfg.FlopsPerCycle / float64(lines)
	var line int64
	emitLoad := true
	return cpusim.FuncStream(func(op *cpusim.Op) bool {
		if line >= lines {
			return false
		}
		if emitLoad {
			*op = cpusim.Op{Kind: cpusim.OpLoad, Addr: interactBase + memsim.Addr(line*memsim.LineSize)}
			emitLoad = false
			return true
		}
		*op = cpusim.Op{Kind: cpusim.OpCompute, Cost: perLine}
		emitLoad = true
		line++
		return true
	})
}
