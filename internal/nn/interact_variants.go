package nn

import (
	"fmt"

	"dlrmsim/internal/cpusim"
	"dlrmsim/internal/memsim"
)

// concat joins the bottom vector and the embedding vectors, validating
// the shared dimension.
func concat(dim, tables int, bottom []float32, emb [][]float32) ([]float32, error) {
	if len(bottom) != dim {
		return nil, fmt.Errorf("nn: interaction bottom dim %d, want %d", len(bottom), dim)
	}
	if len(emb) != tables {
		return nil, fmt.Errorf("nn: interaction got %d tables, want %d", len(emb), tables)
	}
	out := make([]float32, 0, (tables+1)*dim)
	out = append(out, bottom...)
	for t, e := range emb {
		if len(e) != dim {
			return nil, fmt.Errorf("nn: interaction table %d dim %d, want %d", t, len(e), dim)
		}
		out = append(out, e...)
	}
	return out, nil
}

// CrossInteraction is the DCN-v2 variant: features are concatenated and
// refined by a low-rank cross network; the cross output is the top MLP's
// input.
type CrossInteraction struct {
	// Dim is the shared vector dimension; Tables the embedding count.
	Dim    int
	Tables int
	// Net is the cross network over the concatenated width.
	Net CrossNet
}

// NewCrossInteraction builds the variant with the conventional DCN-v2
// defaults (rank 64 capped at half the concat width, 3 layers).
func NewCrossInteraction(dim, tables int, seed uint64) (CrossInteraction, error) {
	if dim < 1 || tables < 1 {
		return CrossInteraction{}, fmt.Errorf("nn: bad cross interaction %dx%d", dim, tables)
	}
	concatDim := (tables + 1) * dim
	rank := 64
	if rank > concatDim/2 {
		rank = (concatDim + 1) / 2
	}
	return CrossInteraction{
		Dim: dim, Tables: tables,
		Net: CrossNet{Dim: concatDim, Rank: rank, Layers: 3, Seed: seed ^ 0xDC2},
	}, nil
}

// OutputDim implements Interactor.
func (c CrossInteraction) OutputDim() int { return c.Net.Dim }

// FLOPs implements Interactor.
func (c CrossInteraction) FLOPs(batch int) int64 { return c.Net.FLOPs(batch) }

// Forward implements Interactor.
func (c CrossInteraction) Forward(bottom []float32, emb [][]float32) ([]float32, error) {
	x0, err := concat(c.Dim, c.Tables, bottom, emb)
	if err != nil {
		return nil, err
	}
	return c.Net.Forward(x0)
}

// NewStream implements Interactor.
func (c CrossInteraction) NewStream(cfg StreamConfig) cpusim.Stream {
	return c.Net.NewStream(cfg)
}

// ConcatInteraction is the Wide&Deep-style variant: plain concatenation,
// no interaction compute — the top MLP sees every feature directly.
type ConcatInteraction struct {
	Dim    int
	Tables int
}

// OutputDim implements Interactor.
func (c ConcatInteraction) OutputDim() int { return (c.Tables + 1) * c.Dim }

// FLOPs implements Interactor: concatenation is data movement only.
func (c ConcatInteraction) FLOPs(batch int) int64 { return 0 }

// Forward implements Interactor.
func (c ConcatInteraction) Forward(bottom []float32, emb [][]float32) ([]float32, error) {
	return concat(c.Dim, c.Tables, bottom, emb)
}

// NewStream implements Interactor: one pass over the activation lines.
func (c ConcatInteraction) NewStream(cfg StreamConfig) cpusim.Stream {
	if cfg.FlopsPerCycle <= 0 || cfg.Batch < 1 {
		panic(fmt.Sprintf("nn: bad stream config %+v", cfg))
	}
	bytes := int64(c.OutputDim()) * 4 * int64(cfg.Batch)
	lines := (bytes + memsim.LineSize - 1) / memsim.LineSize
	var line int64
	return cpusim.FuncStream(func(op *cpusim.Op) bool {
		if line >= lines {
			return false
		}
		*op = cpusim.Op{Kind: cpusim.OpLoad, Addr: interactBase + memsim.Addr(line*memsim.LineSize)}
		line++
		return true
	})
}
