// Package nn implements the dense stages of DLRM: multi-layer perceptrons
// and the pairwise-dot feature-interaction layer, both as numeric
// operators and as instruction streams for the timing simulator.
//
// Weights are procedural (hash-derived), like embedding tables: no storage,
// full reproducibility. The MLP instruction stream interleaves sequential
// weight-line loads with compute blocks — the regular, hardware-prefetch-
// friendly pattern that makes these stages compute-bound on real CPUs.
package nn

import (
	"fmt"
	"math"

	"dlrmsim/internal/cpusim"
	"dlrmsim/internal/memsim"
	"dlrmsim/internal/stats"
)

// weightsBase places MLP weights in their own address region.
const weightsBase memsim.Addr = 1 << 36

// MLP is a fully-connected ReLU network. Construct with NewMLP.
type MLP struct {
	name       string
	dims       []int // dims[0] is the input size; dims[1:] are layer widths
	seed       uint64
	base       memsim.Addr
	sigmoidOut bool
}

// NewMLP builds an MLP named name with the given dimension chain
// (input, hidden..., output). sigmoidOut applies a sigmoid at the last
// layer (DLRM's top MLP produces a CTR probability); otherwise all layers
// use ReLU except the linear last layer.
func NewMLP(name string, dims []int, seed uint64, sigmoidOut bool) (*MLP, error) {
	if len(dims) < 2 {
		return nil, fmt.Errorf("nn: MLP %q needs at least input and output dims, got %v", name, dims)
	}
	for _, d := range dims {
		if d < 1 {
			return nil, fmt.Errorf("nn: MLP %q has non-positive dim in %v", name, dims)
		}
	}
	m := &MLP{name: name, dims: append([]int(nil), dims...), seed: seed, sigmoidOut: sigmoidOut}
	m.base = weightsBase + memsim.Addr(stats.Mix64(seed^uint64(len(name)))%(1<<30))*256
	return m, nil
}

// Name returns the MLP's name.
func (m *MLP) Name() string { return m.name }

// Dims returns the dimension chain (input first).
func (m *MLP) Dims() []int { return append([]int(nil), m.dims...) }

// InputDim and OutputDim return the end dimensions.
func (m *MLP) InputDim() int { return m.dims[0] }

// OutputDim returns the final layer width.
func (m *MLP) OutputDim() int { return m.dims[len(m.dims)-1] }

// Layers returns the number of weight matrices.
func (m *MLP) Layers() int { return len(m.dims) - 1 }

// WeightBytes returns the total weight footprint (fp32, plus biases).
func (m *MLP) WeightBytes() int64 {
	var total int64
	for l := 0; l < m.Layers(); l++ {
		total += int64(m.dims[l])*int64(m.dims[l+1])*4 + int64(m.dims[l+1])*4
	}
	return total
}

// FLOPs returns the multiply-add FLOPs for one forward pass of `batch`
// samples.
func (m *MLP) FLOPs(batch int) int64 {
	var f int64
	for l := 0; l < m.Layers(); l++ {
		f += 2 * int64(m.dims[l]) * int64(m.dims[l+1])
	}
	return f * int64(batch)
}

// weight returns the procedural weight W[l][i][j] (input i, output j),
// scaled like Xavier initialization.
func (m *MLP) weight(l, i, j int) float32 {
	h := stats.Mix64(m.seed ^ uint64(l)<<40 ^ uint64(i)<<20 ^ uint64(j))
	scale := math.Sqrt(2.0 / float64(m.dims[l]+m.dims[l+1]))
	return float32((stats.MixFloat01(h) - 0.5) * 2 * scale)
}

// bias returns the procedural bias b[l][j].
func (m *MLP) bias(l, j int) float32 {
	h := stats.Mix64(m.seed ^ 0xB1A5 ^ uint64(l)<<32 ^ uint64(j))
	return float32((stats.MixFloat01(h) - 0.5) * 0.02)
}

// Forward evaluates the MLP on a batch of input rows. Each input must
// have length InputDim. The returned rows have length OutputDim.
func (m *MLP) Forward(inputs [][]float32) ([][]float32, error) {
	out := make([][]float32, len(inputs))
	for s, in := range inputs {
		if len(in) != m.dims[0] {
			return nil, fmt.Errorf("nn: MLP %q sample %d has dim %d, want %d", m.name, s, len(in), m.dims[0])
		}
		cur := in
		for l := 0; l < m.Layers(); l++ {
			next := make([]float32, m.dims[l+1])
			for j := range next {
				acc := m.bias(l, j)
				for i, v := range cur {
					acc += v * m.weight(l, i, j)
				}
				next[j] = acc
			}
			last := l == m.Layers()-1
			switch {
			case last && m.sigmoidOut:
				for j, v := range next {
					next[j] = float32(1 / (1 + math.Exp(-float64(v))))
				}
			case !last:
				for j, v := range next {
					if v < 0 {
						next[j] = 0
					}
				}
			}
			cur = next
		}
		out[s] = cur
	}
	return out, nil
}

// StreamConfig configures MLP instruction-stream generation.
type StreamConfig struct {
	// FlopsPerCycle is the platform's effective f32 throughput.
	FlopsPerCycle float64
	// Batch is the number of samples processed per pass.
	Batch int
}

// NewStream returns the instruction stream of one forward pass: for each
// layer, the weight matrix is streamed line-by-line (sequential loads the
// hardware stride prefetcher loves) interleaved with the matching share
// of the layer's compute.
func (m *MLP) NewStream(cfg StreamConfig) cpusim.Stream {
	if cfg.FlopsPerCycle <= 0 || cfg.Batch < 1 {
		panic(fmt.Sprintf("nn: bad stream config %+v", cfg))
	}
	return &mlpStream{m: m, cfg: cfg}
}

type mlpStream struct {
	m   *MLP
	cfg StreamConfig

	layer      int
	line       int64
	layerLines int64
	perLine    float64
	layerBase  memsim.Addr
	emitLoad   bool
	done       bool
}

// Next implements cpusim.Stream.
func (s *mlpStream) Next(op *cpusim.Op) bool {
	if s.done {
		return false
	}
	if s.layerLines == 0 { // enter next layer
		if s.layer >= s.m.Layers() {
			s.done = true
			return false
		}
		wBytes := int64(s.m.dims[s.layer])*int64(s.m.dims[s.layer+1])*4 + int64(s.m.dims[s.layer+1])*4
		s.layerLines = (wBytes + memsim.LineSize - 1) / memsim.LineSize
		flops := 2 * int64(s.m.dims[s.layer]) * int64(s.m.dims[s.layer+1]) * int64(s.cfg.Batch)
		s.perLine = float64(flops) / s.cfg.FlopsPerCycle / float64(s.layerLines)
		s.layerBase = s.m.base + memsim.Addr(s.layer)<<24
		s.line = 0
		s.emitLoad = true
	}
	if s.emitLoad {
		*op = cpusim.Op{Kind: cpusim.OpLoad, Addr: s.layerBase + memsim.Addr(s.line*memsim.LineSize)}
		s.emitLoad = false
		return true
	}
	*op = cpusim.Op{Kind: cpusim.OpCompute, Cost: s.perLine}
	s.emitLoad = true
	s.line++
	if s.line >= s.layerLines {
		s.layer++
		s.layerLines = 0
	}
	return true
}
