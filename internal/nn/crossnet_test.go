package nn

import (
	"math"
	"testing"

	"dlrmsim/internal/cpusim"
)

func testCross() CrossNet { return CrossNet{Dim: 32, Rank: 8, Layers: 3, Seed: 5} }

func TestCrossNetValidate(t *testing.T) {
	if err := testCross().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := testCross()
	bad.Rank = 0
	if bad.Validate() == nil {
		t.Fatal("accepted zero rank")
	}
}

func TestCrossNetForwardShape(t *testing.T) {
	c := testCross()
	x := make([]float32, 32)
	for i := range x {
		x[i] = float32(i) / 32
	}
	out, err := c.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 32 {
		t.Fatalf("output dim = %d", len(out))
	}
	for _, v := range out {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("non-finite output %g", v)
		}
	}
}

func TestCrossNetRejectsWrongDim(t *testing.T) {
	if _, err := testCross().Forward(make([]float32, 7)); err == nil {
		t.Fatal("accepted wrong input dim")
	}
}

func TestCrossNetDeterministicAndSeedSensitive(t *testing.T) {
	x := make([]float32, 32)
	x[0] = 1
	a, _ := testCross().Forward(x)
	b, _ := testCross().Forward(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("not deterministic")
		}
	}
	other := testCross()
	other.Seed = 6
	c, _ := other.Forward(x)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds gave identical networks")
	}
}

func TestCrossNetResidualProperty(t *testing.T) {
	// With a zero input, every layer's Hadamard term vanishes (x0 = 0),
	// so the output must be exactly zero — the residual path.
	c := testCross()
	out, err := c.Forward(make([]float32, 32))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != 0 {
			t.Fatalf("zero input produced nonzero output at %d: %g", i, v)
		}
	}
}

func TestCrossNetStreamAccounting(t *testing.T) {
	c := testCross()
	s := c.NewStream(StreamConfig{FlopsPerCycle: 32, Batch: 4})
	var op cpusim.Op
	var loads int64
	var compute float64
	for s.Next(&op) {
		switch op.Kind {
		case cpusim.OpLoad:
			loads++
		case cpusim.OpCompute:
			compute += op.Cost
		}
	}
	wantLines := (c.WeightBytes() + 63) / 64
	if loads != wantLines {
		t.Fatalf("weight lines = %d, want %d", loads, wantLines)
	}
	wantCycles := float64(c.FLOPs(4)) / 32
	if math.Abs(compute-wantCycles) > 1e-6*wantCycles {
		t.Fatalf("compute = %g, want %g", compute, wantCycles)
	}
}

func TestCrossInteractionImplementsInteractor(t *testing.T) {
	ci, err := NewCrossInteraction(16, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	var _ Interactor = ci
	if ci.OutputDim() != 64 { // (3+1)*16
		t.Fatalf("output dim = %d", ci.OutputDim())
	}
	bottom := make([]float32, 16)
	emb := [][]float32{make([]float32, 16), make([]float32, 16), make([]float32, 16)}
	bottom[0] = 1
	out, err := ci.Forward(bottom, emb)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 64 {
		t.Fatalf("forward dim = %d", len(out))
	}
	if ci.FLOPs(2) <= 0 {
		t.Fatal("no FLOPs")
	}
}

func TestNewCrossInteractionRankCap(t *testing.T) {
	// Tiny concat width: rank must cap at half of it.
	ci, err := NewCrossInteraction(4, 1, 1) // concat dim 8
	if err != nil {
		t.Fatal(err)
	}
	if ci.Net.Rank > 4 {
		t.Fatalf("rank = %d not capped", ci.Net.Rank)
	}
	if _, err := NewCrossInteraction(0, 1, 1); err == nil {
		t.Fatal("accepted zero dim")
	}
}

func TestConcatInteraction(t *testing.T) {
	c := ConcatInteraction{Dim: 4, Tables: 2}
	var _ Interactor = c
	if c.OutputDim() != 12 {
		t.Fatalf("output dim = %d", c.OutputDim())
	}
	out, err := c.Forward([]float32{1, 2, 3, 4}, [][]float32{{5, 6, 7, 8}, {9, 10, 11, 12}})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12} {
		if out[i] != want {
			t.Fatalf("out[%d] = %g", i, out[i])
		}
	}
	if c.FLOPs(10) != 0 {
		t.Fatal("concat should be compute-free")
	}
	counts := cpusim.CountOps(c.NewStream(StreamConfig{FlopsPerCycle: 32, Batch: 2}))
	if counts[cpusim.OpLoad] == 0 {
		t.Fatal("concat stream should touch activation lines")
	}
	if _, err := c.Forward([]float32{1}, nil); err == nil {
		t.Fatal("accepted bad dims")
	}
}
