package nn

import (
	"fmt"

	"dlrmsim/internal/cpusim"
	"dlrmsim/internal/memsim"
	"dlrmsim/internal/stats"
)

// crossBase places cross-network weights in their own address region.
const crossBase memsim.Addr = 1 << 37

// CrossNet is a DCN-v2 style cross network with low-rank weights: each
// layer computes
//
//	x_{l+1} = x0 ⊙ (U_l · (V_l · x_l) + b_l) + x_l
//
// over the concatenated feature vector x0 = [bottom | emb_1 | ... |
// emb_T]. The paper's §2.3 argues its optimizations transfer to such
// models because they keep the same embedding front end; CrossNet lets
// the repository test that claim (see the ext6 experiment).
type CrossNet struct {
	// Dim is the concatenated feature width.
	Dim int
	// Rank is the low-rank factor width (DCN-v2's U/V matrices).
	Rank int
	// Layers is the number of cross layers.
	Layers int
	// Seed derives the procedural weights.
	Seed uint64
}

// Validate reports configuration errors.
func (c CrossNet) Validate() error {
	if c.Dim < 1 || c.Rank < 1 || c.Layers < 1 {
		return fmt.Errorf("nn: bad cross net %+v", c)
	}
	return nil
}

// WeightBytes returns the parameter footprint: per layer, V (rank×dim),
// U (dim×rank), and the bias (dim), all fp32.
func (c CrossNet) WeightBytes() int64 {
	perLayer := int64(c.Rank)*int64(c.Dim)*2*4 + int64(c.Dim)*4
	return int64(c.Layers) * perLayer
}

// FLOPs returns multiply-add FLOPs for one pass over `batch` samples.
func (c CrossNet) FLOPs(batch int) int64 {
	// V·x and U·(Vx): 2·rank·dim each... V·x = 2·rank·dim, U·y = 2·dim·rank,
	// plus the Hadamard and residual (3·dim).
	perSample := int64(c.Layers) * (4*int64(c.Rank)*int64(c.Dim) + 3*int64(c.Dim))
	return int64(batch) * perSample
}

func (c CrossNet) v(l, i, j int) float32 { // V_l[i][j], i<rank, j<dim
	h := stats.Mix64(c.Seed ^ 0x5EC ^ uint64(l)<<40 ^ uint64(i)<<20 ^ uint64(j))
	return float32(stats.MixFloat01(h)-0.5) * 0.02
}

func (c CrossNet) u(l, i, j int) float32 { // U_l[i][j], i<dim, j<rank
	h := stats.Mix64(c.Seed ^ 0xA11CE ^ uint64(l)<<40 ^ uint64(i)<<20 ^ uint64(j))
	return float32(stats.MixFloat01(h)-0.5) * 0.02
}

func (c CrossNet) bias(l, i int) float32 {
	h := stats.Mix64(c.Seed ^ 0xB1A5 ^ uint64(l)<<32 ^ uint64(i))
	return float32(stats.MixFloat01(h)-0.5) * 0.01
}

// Forward evaluates the cross network on x0 (length Dim) and returns the
// final layer's output (length Dim).
func (c CrossNet) Forward(x0 []float32) ([]float32, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if len(x0) != c.Dim {
		return nil, fmt.Errorf("nn: cross input dim %d, want %d", len(x0), c.Dim)
	}
	x := append([]float32(nil), x0...)
	vx := make([]float32, c.Rank)
	for l := 0; l < c.Layers; l++ {
		for r := 0; r < c.Rank; r++ {
			var acc float32
			for j, v := range x {
				acc += c.v(l, r, j) * v
			}
			vx[r] = acc
		}
		next := make([]float32, c.Dim)
		for i := 0; i < c.Dim; i++ {
			acc := c.bias(l, i)
			for r := 0; r < c.Rank; r++ {
				acc += c.u(l, i, r) * vx[r]
			}
			next[i] = x0[i]*acc + x[i]
		}
		x = next
	}
	return x, nil
}

// NewStream returns the cross network's instruction stream: per layer the
// U/V weight matrices stream sequentially (HW-prefetch-friendly) with the
// layer's compute interleaved.
func (c CrossNet) NewStream(cfg StreamConfig) cpusim.Stream {
	if cfg.FlopsPerCycle <= 0 || cfg.Batch < 1 {
		panic(fmt.Sprintf("nn: bad stream config %+v", cfg))
	}
	if err := c.Validate(); err != nil {
		panic(err)
	}
	totalLines := (c.WeightBytes() + memsim.LineSize - 1) / memsim.LineSize
	perLine := float64(c.FLOPs(cfg.Batch)) / cfg.FlopsPerCycle / float64(totalLines)
	base := crossBase + memsim.Addr(stats.Mix64(c.Seed)%(1<<24))*memsim.LineSize
	var line int64
	emitLoad := true
	return cpusim.FuncStream(func(op *cpusim.Op) bool {
		if line >= totalLines {
			return false
		}
		if emitLoad {
			*op = cpusim.Op{Kind: cpusim.OpLoad, Addr: base + memsim.Addr(line*memsim.LineSize)}
			emitLoad = false
			return true
		}
		*op = cpusim.Op{Kind: cpusim.OpCompute, Cost: perLine}
		emitLoad = true
		line++
		return true
	})
}
