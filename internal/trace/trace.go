// Package trace synthesizes embedding-lookup input streams (offsets and
// indices arrays, exactly the shape PyTorch's embedding_bag consumes) whose
// statistics match the production traces the paper uses.
//
// The paper reduces Meta's published DLRM traces to three hotness classes
// with measured unique-access fractions — High 3%, Medium 24%, Low 60% —
// plus two synthetic extremes, one-item (all lookups hit one row) and
// random (uniform). This package generates index streams from a truncated
// power-law (Zipf) sampler whose exponent is calibrated, per configuration,
// so the generated stream reproduces the target unique fraction. That is
// the statistic every downstream analysis (reuse distance, cold misses,
// cache hit rates) actually depends on.
package trace

import (
	"fmt"
	"sort"

	"dlrmsim/internal/stats"
)

// Hotness classifies an input trace by how concentrated its row accesses
// are.
type Hotness int

// Hotness classes, ordered from most to least concentrated.
const (
	// OneItem is the paper's best-case synthetic input: every lookup in a
	// table goes to row 0.
	OneItem Hotness = iota
	// HighHot matches the "High Hot" production trace (~3% unique).
	HighHot
	// MediumHot matches the "Medium Hot" production trace (~24% unique).
	MediumHot
	// LowHot matches the "Low Hot" production trace (~60% unique).
	LowHot
	// RandomAccess is the worst-case synthetic input: uniform over rows.
	RandomAccess
)

// String returns the paper's name for the class.
func (h Hotness) String() string {
	switch h {
	case OneItem:
		return "one-item"
	case HighHot:
		return "High Hot"
	case MediumHot:
		return "Medium Hot"
	case LowHot:
		return "Low Hot"
	case RandomAccess:
		return "random"
	default:
		return "invalid"
	}
}

// TargetUniqueFraction returns the unique-access fraction the class is
// calibrated to (the paper's Section 5 measurements), or -1 for the
// synthetic extremes which are defined directly.
func (h Hotness) TargetUniqueFraction() float64 {
	switch h {
	case HighHot:
		return 0.03
	case MediumHot:
		return 0.24
	case LowHot:
		return 0.60
	default:
		return -1
	}
}

// ReferenceExponent returns the class's Zipf exponent calibrated at paper
// scale (1M-row tables, multi-million-access traces) so the generated
// stream reproduces the paper's unique-access fractions there. High and
// Medium were fit by bisection (3% and 24% unique over 2M draws); Low Hot
// is near-uniform, matching 60% unique when the trace length is of the
// order of the table height. Using fixed paper-scale exponents keeps the
// *shape* of the distribution intact when experiments scale tables down —
// calibrating the unique fraction on a short stream would instead collapse
// the hot working set into the L1, which never happens at real scale.
func (h Hotness) ReferenceExponent() float64 {
	switch h {
	case HighHot:
		return 1.326
	case MediumHot:
		return 0.893
	case LowHot:
		return 0.40
	default:
		return 0
	}
}

// AllHotness lists the classes in the order the paper's figures use.
var AllHotness = []Hotness{OneItem, HighHot, MediumHot, LowHot, RandomAccess}

// ProductionHotness lists only the three production-trace classes.
var ProductionHotness = []Hotness{HighHot, MediumHot, LowHot}

// Config describes one synthetic trace.
type Config struct {
	// Hotness selects the access-concentration class.
	Hotness Hotness
	// Rows is the number of rows per embedding table.
	Rows int
	// Tables is the number of embedding tables.
	Tables int
	// BatchSize is the number of samples per batch.
	BatchSize int
	// LookupsPerSample is the (average) pooling factor: indices per
	// sample per table.
	LookupsPerSample int
	// Batches is the number of batches the trace covers; the Zipf
	// exponent is calibrated against the whole stream length.
	Batches int
	// Seed drives all generation; equal configs generate equal traces.
	Seed uint64
	// CalibrateUnique fits the Zipf exponent so that THIS trace's unique
	// fraction matches the class target, instead of using the
	// paper-scale reference exponent. Only meaningful when the trace is
	// itself at production scale; see Hotness.ReferenceExponent.
	CalibrateUnique bool
}

// Validate reports whether the configuration is generatable.
func (c Config) Validate() error {
	if c.Rows < 1 || c.Tables < 1 || c.BatchSize < 1 || c.LookupsPerSample < 1 || c.Batches < 1 {
		return fmt.Errorf("trace: non-positive dimension in %+v", c)
	}
	return nil
}

// TableBatch is the embedding_bag input for one (batch, table) pair:
// sample i pools indices Indices[Offsets[i]:Offsets[i+1]].
type TableBatch struct {
	Offsets []int32
	Indices []int32
}

// Lookups returns the total number of index lookups in the batch.
func (tb TableBatch) Lookups() int { return len(tb.Indices) }

// Dataset generates deterministic TableBatches for a Config. Construct
// with NewDataset; generation is cheap and stateless per (batch, table),
// so multi-core simulations can generate work lazily and identically on
// every bandwidth-fixed-point replay.
type Dataset struct {
	cfg      Config
	exponent float64 // calibrated Zipf exponent (hot classes only)
}

// calibrationCap bounds the stream length used during exponent
// calibration; unique fractions are estimated on a prefix for very long
// traces to keep NewDataset fast.
const calibrationCap = 200_000

// NewDataset calibrates (if needed) and returns a Dataset. The returned
// error only reflects invalid configuration.
func NewDataset(cfg Config) (*Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Dataset{cfg: cfg, exponent: cfg.Hotness.ReferenceExponent()}
	if target := cfg.Hotness.TargetUniqueFraction(); target > 0 && cfg.CalibrateUnique {
		draws := cfg.BatchSize * cfg.LookupsPerSample * cfg.Batches
		if draws > calibrationCap {
			draws = calibrationCap
		}
		d.exponent = stats.CalibrateZipfExponent(cfg.Seed^0xCA11B, cfg.Rows, draws, target)
	}
	return d, nil
}

// Config returns the dataset's configuration.
func (d *Dataset) Config() Config { return d.cfg }

// Exponent returns the calibrated Zipf exponent (0 for OneItem/Random).
func (d *Dataset) Exponent() float64 { return d.exponent }

// rowPerm maps a Zipf rank to a table-specific row id via an affine
// bijection, so each table has its own set of hot rows (the paper notes
// hotness varies across tables within a dataset).
func (d *Dataset) rowPerm(table int) (mult, add uint64) {
	rows := uint64(d.cfg.Rows)
	h := stats.Mix64(d.cfg.Seed ^ uint64(table)*0x9E37)
	mult = h%rows | 1 // odd-ish start
	for gcd(mult, rows) != 1 {
		mult += 2
		if mult >= rows {
			mult = 1
		}
	}
	add = stats.Mix64(h) % rows
	return mult, add
}

func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Batch generates the embedding_bag input for (batchIdx, tableIdx).
func (d *Dataset) Batch(batchIdx, tableIdx int) TableBatch {
	c := d.cfg
	rng := stats.NewRNG(stats.Mix64(c.Seed ^ uint64(batchIdx)<<20 ^ uint64(tableIdx)))
	n := c.BatchSize * c.LookupsPerSample
	tb := TableBatch{
		Offsets: make([]int32, c.BatchSize+1),
		Indices: make([]int32, 0, n),
	}
	mult, add := d.rowPerm(tableIdx)
	var sample func() int32
	switch c.Hotness {
	case OneItem:
		sample = func() int32 { return 0 }
	case RandomAccess:
		sample = func() int32 { return int32(rng.Intn(c.Rows)) }
	default:
		z := stats.NewZipf(rng, c.Rows, d.exponent)
		sample = func() int32 {
			rank := uint64(z.Sample())
			return int32((rank*mult + add) % uint64(c.Rows))
		}
	}
	for s := 0; s < c.BatchSize; s++ {
		tb.Offsets[s] = int32(len(tb.Indices))
		for l := 0; l < c.LookupsPerSample; l++ {
			tb.Indices = append(tb.Indices, sample())
		}
	}
	tb.Offsets[c.BatchSize] = int32(len(tb.Indices))
	return tb
}

// UniqueFraction measures the fraction of distinct indices across the
// whole trace for one table — the statistic the paper characterizes
// datasets by.
func (d *Dataset) UniqueFraction(tableIdx int) float64 {
	seen := make(map[int32]struct{})
	total := 0
	for b := 0; b < d.cfg.Batches; b++ {
		tb := d.Batch(b, tableIdx)
		for _, ix := range tb.Indices {
			seen[ix] = struct{}{}
		}
		total += len(tb.Indices)
	}
	if total == 0 {
		return 0
	}
	return float64(len(seen)) / float64(total)
}

// AccessCounts returns per-row access counts for one table across the
// whole trace, sorted descending — the paper's Fig. 5 histogram.
func (d *Dataset) AccessCounts(tableIdx int) []int {
	counts := make(map[int32]int)
	for b := 0; b < d.cfg.Batches; b++ {
		tb := d.Batch(b, tableIdx)
		for _, ix := range tb.Indices {
			counts[ix]++
		}
	}
	out := make([]int, 0, len(counts))
	for _, c := range counts {
		out = append(out, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}
