package trace

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

// limitedWriter errors after n bytes, to exercise Write's error paths.
type limitedWriter struct {
	n int
}

func (w *limitedWriter) Write(p []byte) (int, error) {
	if len(p) > w.n {
		n := w.n
		w.n = 0
		return n, io.ErrShortWrite
	}
	w.n -= len(p)
	return len(p), nil
}

func TestWriteSurfacesWriterErrors(t *testing.T) {
	cfg := smallConfig(MediumHot)
	cfg.Tables = 1
	cfg.Batches = 1
	d := mustDataset(t, cfg)
	// Fail at various truncation points: header, offsets, indices.
	for _, limit := range []int{0, 10, 100, 2000} {
		if err := Write(&limitedWriter{n: limit}, d); err == nil {
			t.Errorf("limit %d: Write succeeded on failing writer", limit)
		}
	}
}

func TestReadRejectsTruncatedPayload(t *testing.T) {
	cfg := smallConfig(MediumHot)
	cfg.Tables = 1
	cfg.Batches = 1
	d := mustDataset(t, cfg)
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{len(full) / 2, len(full) - 4, 40} {
		if _, err := Read(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("accepted payload truncated to %d bytes", cut)
		}
	}
}

func TestReadRejectsWrongVersion(t *testing.T) {
	var buf bytes.Buffer
	binary.Write(&buf, binary.LittleEndian, uint32(fileMagic))
	binary.Write(&buf, binary.LittleEndian, uint32(99)) // bad version
	if _, err := Read(&buf); err == nil {
		t.Fatal("accepted unknown version")
	}
}

func TestReadRejectsInvalidConfig(t *testing.T) {
	var buf bytes.Buffer
	binary.Write(&buf, binary.LittleEndian, uint32(fileMagic))
	binary.Write(&buf, binary.LittleEndian, uint32(fileVersion))
	// hotness, rows=0 (invalid), tables, bs, lps, nb, seed
	for _, v := range []int32{0, 0, 1, 1, 1, 1} {
		binary.Write(&buf, binary.LittleEndian, v)
	}
	binary.Write(&buf, binary.LittleEndian, uint64(1))
	if _, err := Read(&buf); err == nil {
		t.Fatal("accepted zero-row config")
	}
}

func TestStoredTraceIsBatchProviderShaped(t *testing.T) {
	cfg := smallConfig(HighHot)
	cfg.Tables = 2
	cfg.Batches = 2
	d := mustDataset(t, cfg)
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	st, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	tb := st.Batch(1, 1)
	if len(tb.Offsets) != cfg.BatchSize+1 {
		t.Fatalf("offsets len = %d", len(tb.Offsets))
	}
}
