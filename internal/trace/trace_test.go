package trace

import (
	"bytes"
	"math"
	"testing"
)

func smallConfig(h Hotness) Config {
	return Config{
		Hotness:          h,
		Rows:             50_000,
		Tables:           4,
		BatchSize:        32,
		LookupsPerSample: 40,
		Batches:          8,
		Seed:             42,
	}
}

func mustDataset(t *testing.T, cfg Config) *Dataset {
	t.Helper()
	d, err := NewDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestConfigValidate(t *testing.T) {
	good := smallConfig(LowHot)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Rows = 0
	if bad.Validate() == nil {
		t.Fatal("accepted zero rows")
	}
}

func TestBatchShape(t *testing.T) {
	d := mustDataset(t, smallConfig(MediumHot))
	tb := d.Batch(0, 0)
	if len(tb.Offsets) != 33 {
		t.Fatalf("offsets len = %d", len(tb.Offsets))
	}
	if len(tb.Indices) != 32*40 {
		t.Fatalf("indices len = %d", len(tb.Indices))
	}
	if tb.Offsets[0] != 0 || tb.Offsets[32] != int32(len(tb.Indices)) {
		t.Fatal("offset endpoints wrong")
	}
	for s := 0; s < 32; s++ {
		if tb.Offsets[s+1]-tb.Offsets[s] != 40 {
			t.Fatalf("sample %d has %d lookups", s, tb.Offsets[s+1]-tb.Offsets[s])
		}
	}
	if tb.Lookups() != 32*40 {
		t.Fatalf("Lookups() = %d", tb.Lookups())
	}
}

func TestIndicesInRange(t *testing.T) {
	for _, h := range AllHotness {
		d := mustDataset(t, smallConfig(h))
		tb := d.Batch(3, 2)
		for _, ix := range tb.Indices {
			if ix < 0 || int(ix) >= d.Config().Rows {
				t.Fatalf("%v: index %d out of range", h, ix)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	d1 := mustDataset(t, smallConfig(LowHot))
	d2 := mustDataset(t, smallConfig(LowHot))
	a, b := d1.Batch(5, 1), d2.Batch(5, 1)
	for i := range a.Indices {
		if a.Indices[i] != b.Indices[i] {
			t.Fatalf("index %d differs", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	c2 := smallConfig(LowHot)
	c2.Seed = 43
	a := mustDataset(t, smallConfig(LowHot)).Batch(0, 0)
	b := mustDataset(t, c2).Batch(0, 0)
	same := 0
	for i := range a.Indices {
		if a.Indices[i] == b.Indices[i] {
			same++
		}
	}
	if same == len(a.Indices) {
		t.Fatal("different seeds produced identical batch")
	}
}

func TestOneItemAlwaysRowZero(t *testing.T) {
	d := mustDataset(t, smallConfig(OneItem))
	tb := d.Batch(0, 3)
	for _, ix := range tb.Indices {
		if ix != 0 {
			t.Fatalf("one-item index = %d", ix)
		}
	}
}

func TestRandomIsNearlyUnique(t *testing.T) {
	// 10240 draws from 50k rows uniform: expected unique fraction ~90%.
	d := mustDataset(t, smallConfig(RandomAccess))
	if u := d.UniqueFraction(0); u < 0.8 {
		t.Fatalf("random unique fraction = %.3f", u)
	}
}

func TestHotnessCalibration(t *testing.T) {
	// With CalibrateUnique, the generated trace must land near the
	// paper's unique-access fractions: High 3%, Medium 24%, Low 60%.
	for _, h := range ProductionHotness {
		cfg := smallConfig(h)
		cfg.CalibrateUnique = true
		d := mustDataset(t, cfg)
		got := d.UniqueFraction(0)
		want := h.TargetUniqueFraction()
		if math.Abs(got-want) > 0.08 {
			t.Errorf("%v: unique fraction %.3f, want ~%.2f", h, got, want)
		}
	}
}

func TestReferenceExponents(t *testing.T) {
	// Fixed paper-scale exponents must be ordered (hotter = steeper) and
	// reproduce the paper's unique fractions at production scale. The
	// production-scale check is done with a modest sample against the
	// analytically expected direction rather than re-running the full 2M
	// draw calibration.
	sH, sM, sL := HighHot.ReferenceExponent(), MediumHot.ReferenceExponent(), LowHot.ReferenceExponent()
	if !(sH > sM && sM > sL && sL > 0) {
		t.Fatalf("exponents not ordered: %g %g %g", sH, sM, sL)
	}
	if OneItem.ReferenceExponent() != 0 || RandomAccess.ReferenceExponent() != 0 {
		t.Fatal("synthetic extremes should have no exponent")
	}
}

func TestHotnessOrdering(t *testing.T) {
	uh := mustDataset(t, smallConfig(HighHot)).UniqueFraction(1)
	um := mustDataset(t, smallConfig(MediumHot)).UniqueFraction(1)
	ul := mustDataset(t, smallConfig(LowHot)).UniqueFraction(1)
	if !(uh < um && um < ul) {
		t.Fatalf("unique fractions not ordered: high=%.3f med=%.3f low=%.3f", uh, um, ul)
	}
}

func TestTablesHaveDifferentHotRows(t *testing.T) {
	d := mustDataset(t, smallConfig(HighHot))
	top := func(table int) int32 {
		counts := map[int32]int{}
		tb := d.Batch(0, table)
		for _, ix := range tb.Indices {
			counts[ix]++
		}
		var best int32
		bestN := -1
		for ix, n := range counts {
			if n > bestN {
				best, bestN = ix, n
			}
		}
		return best
	}
	if top(0) == top(1) && top(1) == top(2) && top(2) == top(3) {
		t.Fatal("all tables share the same hottest row; per-table permutation broken")
	}
}

func TestAccessCountsDescendingAndTotal(t *testing.T) {
	d := mustDataset(t, smallConfig(HighHot))
	counts := d.AccessCounts(0)
	total := 0
	for i, c := range counts {
		total += c
		if i > 0 && counts[i-1] < c {
			t.Fatal("counts not descending")
		}
	}
	want := 32 * 40 * 8
	if total != want {
		t.Fatalf("total accesses = %d, want %d", total, want)
	}
	// High hot: the hottest row dominates.
	if counts[0] < total/100 {
		t.Fatalf("hottest row only %d/%d accesses", counts[0], total)
	}
}

func TestHotnessStrings(t *testing.T) {
	for _, h := range AllHotness {
		if h.String() == "invalid" {
			t.Fatalf("hotness %d has no name", h)
		}
	}
	if Hotness(99).String() != "invalid" {
		t.Fatal("out-of-range hotness not flagged")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	cfg := smallConfig(MediumHot)
	cfg.Tables = 2
	cfg.Batches = 3
	d := mustDataset(t, cfg)
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	st, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if st.Config != cfg {
		t.Fatalf("config round-trip: %+v != %+v", st.Config, cfg)
	}
	for b := 0; b < cfg.Batches; b++ {
		for tb := 0; tb < cfg.Tables; tb++ {
			want := d.Batch(b, tb)
			got := st.Batch(b, tb)
			for i := range want.Indices {
				if want.Indices[i] != got.Indices[i] {
					t.Fatalf("batch %d table %d index %d differs", b, tb, i)
				}
			}
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8})); err == nil {
		t.Fatal("accepted garbage")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("accepted empty input")
	}
}

func TestRowPermIsBijectionSample(t *testing.T) {
	d := mustDataset(t, Config{
		Hotness: HighHot, Rows: 101, Tables: 1, BatchSize: 4,
		LookupsPerSample: 4, Batches: 1, Seed: 9,
	})
	mult, add := d.rowPerm(0)
	seen := make(map[uint64]bool, 101)
	for r := uint64(0); r < 101; r++ {
		v := (r*mult + add) % 101
		if seen[v] {
			t.Fatalf("row permutation collides at rank %d", r)
		}
		seen[v] = true
	}
}
