package core

import (
	"fmt"

	"dlrmsim/internal/cpusim"
	"dlrmsim/internal/dlrm"
	"dlrmsim/internal/embedding"
	"dlrmsim/internal/platform"
	"dlrmsim/internal/trace"
)

// NUMAOptions configures a multi-socket embedding-stage run. The paper
// pins inference to one socket of its 2-socket testbed; this extension
// quantifies the alternative — page-interleaved tables with cores on one
// or both sockets.
type NUMAOptions struct {
	// Model, Hotness, BatchSize, Seed as in Options. The platform is the
	// paper's Cascade Lake 6240R (the only modeled 2-socket testbed).
	Model     dlrm.Config
	Hotness   trace.Hotness
	BatchSize int
	Seed      uint64

	// Sockets (1 or 2) and CoresPerSocket shape the node.
	Sockets        int
	CoresPerSocket int
	// ActiveCores run one batch each (socket-major placement); the rest
	// idle. This is how "pinned to socket 0" (ActiveCores ≤
	// CoresPerSocket) versus "spread" is expressed.
	ActiveCores int
	// RemotePenaltyCyc is the interconnect penalty (default 150).
	RemotePenaltyCyc int64
	// Prefetch enables Algorithm 3 in the embedding streams.
	Prefetch embedding.PrefetchConfig
	// BandwidthIterations bounds the per-socket fixed point.
	BandwidthIterations int
}

// NUMAReport is the embedding-only result of a multi-socket run.
type NUMAReport struct {
	BatchLatencyCycles float64
	BatchLatencyMs     float64
	AvgLoadLatency     float64
	RemoteFillFraction float64
	SocketBandwidthGBs []float64
}

// RunNUMA executes the embedding stage of one batch per active core on a
// (possibly) multi-socket Cascade Lake node.
func RunNUMA(opts NUMAOptions) (NUMAReport, error) {
	cpu := platform.CascadeLake()
	if opts.BatchSize == 0 {
		opts.BatchSize = 64
	}
	if opts.Sockets == 0 {
		opts.Sockets = 1
	}
	if opts.CoresPerSocket == 0 {
		opts.CoresPerSocket = cpu.Cores
	}
	if opts.ActiveCores == 0 {
		opts.ActiveCores = opts.CoresPerSocket
	}
	if opts.RemotePenaltyCyc == 0 {
		opts.RemotePenaltyCyc = 150
	}
	if opts.ActiveCores > opts.Sockets*opts.CoresPerSocket {
		return NUMAReport{}, fmt.Errorf("core: %d active cores on %d", opts.ActiveCores, opts.Sockets*opts.CoresPerSocket)
	}
	if err := opts.Model.Validate(); err != nil {
		return NUMAReport{}, err
	}
	model, err := dlrm.New(opts.Model, opts.Seed)
	if err != nil {
		return NUMAReport{}, err
	}
	ds, err := trace.NewDataset(trace.Config{
		Hotness:          opts.Hotness,
		Rows:             opts.Model.RowsPerTable,
		Tables:           opts.Model.Tables,
		BatchSize:        opts.BatchSize,
		LookupsPerSample: opts.Model.LookupsPerSample,
		Batches:          opts.ActiveCores,
		Seed:             opts.Seed ^ 0xDA7A,
	})
	if err != nil {
		return NUMAReport{}, err
	}
	sys := cpusim.NewNUMASystem(cpusim.NUMAParams{
		Core:                cpu.Core,
		Mem:                 cpu.Mem,
		Sockets:             opts.Sockets,
		CoresPerSocket:      opts.CoresPerSocket,
		RemotePenaltyCyc:    opts.RemotePenaltyCyc,
		BandwidthIterations: opts.BandwidthIterations,
	})
	work := make([]cpusim.CoreWork, opts.ActiveCores)
	for c := 0; c < opts.ActiveCores; c++ {
		c := c
		work[c] = cpusim.SingleWork(func() cpusim.Stream {
			return model.EmbeddingStream(
				func(tableID int) trace.TableBatch { return ds.Batch(c, tableID) },
				dlrm.StreamParams{
					FlopsPerCycle: cpu.FlopsPerCycle,
					Batch:         opts.BatchSize,
					BufBase:       bufBase(c, 0),
					Prefetch:      opts.Prefetch,
				})
		})
	}
	res := sys.Run(work)
	rep := NUMAReport{
		BatchLatencyCycles: meanCoreCycles(res.PerCore),
		AvgLoadLatency:     res.AvgLoadLatency,
		RemoteFillFraction: res.RemoteFillFraction,
	}
	rep.BatchLatencyMs = cpu.CyclesToMs(rep.BatchLatencyCycles)
	for _, b := range res.SocketBandwidthBytesPerCyc {
		rep.SocketBandwidthGBs = append(rep.SocketBandwidthGBs, b*cpu.FrequencyGHz)
	}
	return rep, nil
}

func meanCoreCycles(per []cpusim.CoreRunResult) float64 {
	if len(per) == 0 {
		return 0
	}
	var sum float64
	for _, c := range per {
		sum += c.Cycles
	}
	return sum / float64(len(per))
}
