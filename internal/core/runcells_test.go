package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"dlrmsim/internal/stats"
	"dlrmsim/internal/trace"
)

func cellGrid() []Options {
	var cells []Options
	for _, s := range []Scheme{Baseline, SWPF, Integrated} {
		for _, h := range []trace.Hotness{trace.HighHot, trace.LowHot} {
			o := testOptions(s, h)
			o.Model = o.Model.Scaled(2) // 1/20 total
			cells = append(cells, o)
		}
	}
	return cells
}

// TestRunCellsMatchesSequential: the fan-out primitive returns exactly
// the reports a sequential loop of Run calls produces, index-aligned,
// for any worker count.
func TestRunCellsMatchesSequential(t *testing.T) {
	cells := cellGrid()
	want := make([]Report, len(cells))
	for i, c := range cells {
		rep, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = rep
	}
	for _, workers := range []int{1, 2, 8} {
		got, err := RunCells(context.Background(), cells, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("workers=%d: cell %d report differs from sequential Run", workers, i)
			}
		}
	}
}

// TestRunCellsSeedSplitting: zero-seed cells get per-index seeds split
// from the base stream — deterministic across worker counts and equal to
// the explicit stats.SplitSeed derivation.
func TestRunCellsSeedSplitting(t *testing.T) {
	cells := make([]Options, 2)
	for i := range cells {
		cells[i] = testOptions(Baseline, trace.MediumHot)
		cells[i].Seed = 0
	}
	par, err := RunCells(context.Background(), cells, 2)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := RunCells(context.Background(), cells, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cells {
		explicit := cells[i]
		explicit.Seed = stats.SplitSeed(1, uint64(i))
		want, err := Run(explicit)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(par[i], want) || !reflect.DeepEqual(seq[i], want) {
			t.Fatalf("cell %d: split-seed derivation differs between RunCells and explicit seed", i)
		}
	}
	// The two cells consume decorrelated streams, so identical options
	// with different split seeds should not produce identical traffic.
	if par[0].DRAMBytes == par[1].DRAMBytes && par[0].BatchLatencyCycles == par[1].BatchLatencyCycles {
		t.Error("split seeds produced identical reports; streams look correlated")
	}
}

// TestRunCellsFailureCancels: one invalid cell fails the batch with its
// index, and a dead context aborts before simulating anything.
func TestRunCellsFailureCancels(t *testing.T) {
	cells := cellGrid()
	bad := testOptions(Baseline, trace.LowHot)
	bad.Cores = 10_000 // more cores than any platform has
	cells = append(cells, bad)
	for _, workers := range []int{1, 4} {
		if _, err := RunCells(context.Background(), cells, workers); err == nil {
			t.Fatalf("workers=%d: invalid cell did not fail the batch", workers)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunCells(ctx, cellGrid(), 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
