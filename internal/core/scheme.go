// Package core is the library form of the paper's contribution: it binds a
// DLRM model, a CPU platform, a dataset hotness class, and one of the six
// design points the paper evaluates, runs the timing simulation, and
// returns batch latency plus the microarchitectural metrics the paper
// reports (L1D hit rate, average load latency, DRAM bandwidth).
//
// Design points (§6): Baseline (HW prefetch on), NoHWPF, SWPF (Algorithm 3
// software prefetching), DPHT (naive data-parallel hyperthreading), MPHT
// (the paper's model-parallel hyperthreading), and Integrated (SWPF+MPHT).
package core

import "fmt"

// Scheme selects one of the paper's design points.
type Scheme int

// The six design points of the evaluation (§6).
const (
	// Baseline is sequential execution with hardware prefetching on.
	Baseline Scheme = iota
	// NoHWPF disables the hardware prefetchers ("w/o HW-PF").
	NoHWPF
	// SWPF adds Algorithm 3 software prefetching to the embedding stage.
	SWPF
	// DPHT colocates two independent inferences on one core's SMT
	// contexts (the naive hyperthreading prior work dismissed).
	DPHT
	// MPHT colocates the embedding stage and the Bottom-MLP of the SAME
	// batch on one core's SMT contexts (the paper's design).
	MPHT
	// Integrated combines SWPF and MPHT (the paper's best design).
	Integrated
)

// AllSchemes lists the design points in the paper's presentation order.
var AllSchemes = []Scheme{NoHWPF, Baseline, SWPF, DPHT, MPHT, Integrated}

// String returns the paper's name for the scheme.
func (s Scheme) String() string {
	switch s {
	case Baseline:
		return "baseline"
	case NoHWPF:
		return "w/o HW-PF"
	case SWPF:
		return "SW-PF"
	case DPHT:
		return "DP-HT"
	case MPHT:
		return "MP-HT"
	case Integrated:
		return "Integrated"
	default:
		return "invalid"
	}
}

// UsesSWPrefetch reports whether the scheme inserts software prefetches.
func (s Scheme) UsesSWPrefetch() bool { return s == SWPF || s == Integrated }

// UsesSMT reports whether the scheme uses both hardware threads.
func (s Scheme) UsesSMT() bool { return s == DPHT || s == MPHT || s == Integrated }

// ParseScheme resolves a scheme from its CLI spelling.
func ParseScheme(name string) (Scheme, error) {
	switch name {
	case "baseline":
		return Baseline, nil
	case "nohwpf", "w/o HW-PF", "hwpf-off":
		return NoHWPF, nil
	case "swpf", "SW-PF":
		return SWPF, nil
	case "dpht", "DP-HT":
		return DPHT, nil
	case "mpht", "MP-HT":
		return MPHT, nil
	case "integrated", "Integrated":
		return Integrated, nil
	}
	return 0, fmt.Errorf("core: unknown scheme %q", name)
}
