package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"dlrmsim/internal/check"
	"dlrmsim/internal/cpusim"
	"dlrmsim/internal/dlrm"
	"dlrmsim/internal/embedding"
	"dlrmsim/internal/memsim"
	"dlrmsim/internal/platform"
	"dlrmsim/internal/stats"
	"dlrmsim/internal/trace"
)

// Stage labels used in Report.StageCycles.
const (
	StageEmbedding = "embedding"
	StageBottom    = "bottom-mlp"
	StageTop       = "interaction+top-mlp"
	StageSMTPair   = "embedding+bottom (SMT)"
	StageInference = "inference"
)

// BatchProvider supplies embedding_bag inputs per (batch, table) pair.
// Both trace.Dataset (synthetic) and trace.StoredTrace (replayed from a
// file) satisfy it.
type BatchProvider interface {
	Batch(batchIdx, tableIdx int) trace.TableBatch
}

// Options configures one engine run.
type Options struct {
	// Model is the DLRM architecture (a Table 2 config, possibly Scaled).
	Model dlrm.Config
	// CPU is the platform (defaults to Cascade Lake when zero).
	CPU platform.CPU
	// Hotness selects the input-trace class.
	Hotness trace.Hotness
	// Scheme selects the design point.
	Scheme Scheme
	// BatchSize defaults to 64, the paper's SLA-constrained choice.
	BatchSize int
	// Batches is the number of batches measured per core (default 1).
	Batches int
	// Cores is the number of cores used; 0 means all of CPU.Cores.
	Cores int
	// Prefetch overrides the platform-tuned Algorithm 3 knobs for
	// SWPF/Integrated runs. Zero means use CPU.TunedPFDist/TunedPFBlocks.
	Prefetch embedding.PrefetchConfig
	// Seed drives trace and parameter generation.
	Seed uint64
	// Trace, when non-nil, supplies the embedding_bag inputs instead of
	// a synthesized dataset — e.g. a trace.StoredTrace written by
	// cmd/tracegen, for replaying one input set across design points or
	// machines. It must cover Batches×Cores batches (2x for DP-HT) of
	// Model.Tables tables at BatchSize samples.
	Trace BatchProvider
	// BandwidthIterations bounds the DRAM fixed point (0 = cpusim's
	// default of 3).
	BandwidthIterations int
	// EmbeddingOnly runs just the embedding stage (Figs. 12, Table 4).
	// Valid for Baseline, NoHWPF, and SWPF.
	EmbeddingOnly bool
}

func (o *Options) applyDefaults() error {
	if o.CPU.Name == "" {
		o.CPU = platform.CascadeLake()
	}
	// Reject what no default can repair. Negative batch geometry used to
	// slip through (zero means default, so only == 0 was checked) and
	// surfaced as empty work lists and zero-division NaNs downstream.
	if o.BatchSize < 0 || o.Batches < 0 || o.BandwidthIterations < 0 {
		return fmt.Errorf("core: negative run geometry (batch %d, batches %d, bwiters %d)",
			o.BatchSize, o.Batches, o.BandwidthIterations)
	}
	if o.BatchSize == 0 {
		o.BatchSize = 64
	}
	if o.Batches == 0 {
		o.Batches = 1
	}
	if o.Cores == 0 {
		o.Cores = o.CPU.Cores
	}
	if o.Cores < 1 || o.Cores > o.CPU.Cores {
		return fmt.Errorf("core: %d cores on a %d-core %s", o.Cores, o.CPU.Cores, o.CPU.Name)
	}
	if o.Scheme.UsesSWPrefetch() && !o.Prefetch.Enabled() {
		o.Prefetch = embedding.PrefetchConfig{Dist: o.CPU.TunedPFDist, Blocks: o.CPU.TunedPFBlocks}
	}
	if o.EmbeddingOnly && o.Scheme.UsesSMT() {
		return fmt.Errorf("core: embedding-only runs are sequential; %v uses SMT", o.Scheme)
	}
	return o.Model.Validate()
}

// Report is the engine's output for one (model, platform, dataset, scheme)
// point.
type Report struct {
	// Scheme, ModelName, CPUName, Hotness identify the design point.
	Scheme    Scheme
	ModelName string
	CPUName   string
	Hotness   trace.Hotness

	// BatchLatencyCycles is the mean time one batch spends executing on
	// its core (queueing excluded); BatchLatencyMs converts it.
	BatchLatencyCycles float64
	BatchLatencyMs     float64
	// ThroughputBatchesPerSec counts completed batches per second across
	// all active cores (DP-HT trades latency for this).
	ThroughputBatchesPerSec float64
	// StageCycles is the mean per-batch duration of each pipeline stage.
	StageCycles map[string]float64

	// Microarchitectural metrics (the paper's VTune counters).
	AvgLoadLatency       float64
	L1HitRate            float64
	L2HitRate            float64
	L3HitRate            float64
	DRAMBytes            uint64
	BandwidthGBs         float64
	BandwidthUtilization float64
	SWPrefetches         uint64
}

// batchRegion spaces per-batch buffer regions; inputs+outputs per batch
// stay far below this.
const batchRegion memsim.Addr = 1 << 28

// systemPools recycles cpusim.System instances between design points with
// identical parameters. Building a System dominates a cell's allocations —
// the LLC model alone is tens of megabytes — while System.Run already
// resets every piece of state it reads: the shared LLC+DRAM at each
// bandwidth fixed-point iteration, each worked core's hierarchy at
// runOnce, and the core-local pools/thread contexts at phase start. A
// recycled System is therefore observably identical to a fresh one.
// cpusim.SystemParams is a comparable value type, so it keys the map
// directly; sweeps run the same few parameter sets thousands of times.
var systemPools sync.Map // cpusim.SystemParams -> *sync.Pool of *cpusim.System

func acquireSystem(p cpusim.SystemParams) *cpusim.System {
	if v, ok := systemPools.Load(p); ok {
		if s, _ := v.(*sync.Pool).Get().(*cpusim.System); s != nil {
			return s
		}
	}
	return cpusim.NewSystem(p)
}

func releaseSystem(p cpusim.SystemParams, s *cpusim.System) {
	v, _ := systemPools.LoadOrStore(p, &sync.Pool{})
	v.(*sync.Pool).Put(s)
}

// bufBase returns the private buffer region for a (core, instance) slot.
func bufBase(core, instance int) memsim.Addr {
	return memsim.Addr(1)<<33 + memsim.Addr(core*2+instance)*batchRegion
}

// Run executes one design point and reports its metrics. A run is a pure
// function of its options: every random stream inside (model parameters,
// trace synthesis) is derived statelessly from Options.Seed, so equal
// options produce bit-identical reports regardless of what else runs
// concurrently.
func Run(opts Options) (Report, error) {
	return RunContext(context.Background(), opts)
}

// RunContext is Run with cancellation: a dead context makes the engine
// return ctx.Err() at the next checkpoint (before setup, after trace
// synthesis, before simulation) instead of completing the design point.
// Parallel sweeps use this so one failing cell cancels the rest.
func RunContext(ctx context.Context, opts Options) (Report, error) {
	if err := ctx.Err(); err != nil {
		return Report{}, err
	}
	if err := opts.applyDefaults(); err != nil {
		return Report{}, err
	}
	model, err := dlrm.New(opts.Model, opts.Seed)
	if err != nil {
		return Report{}, err
	}
	// DP-HT consumes two batches per core per round.
	perCore := opts.Batches
	instances := 1
	if opts.Scheme == DPHT {
		instances = 2
	}
	var provider BatchProvider = opts.Trace
	if provider == nil {
		ds, err := trace.NewDataset(trace.Config{
			Hotness:          opts.Hotness,
			Rows:             opts.Model.RowsPerTable,
			Tables:           opts.Model.Tables,
			BatchSize:        opts.BatchSize,
			LookupsPerSample: opts.Model.LookupsPerSample,
			Batches:          opts.Batches * opts.Cores * instances,
			Seed:             opts.Seed ^ 0xDA7A,
		})
		if err != nil {
			return Report{}, err
		}
		provider = ds
	}
	if err := ctx.Err(); err != nil {
		return Report{}, err
	}

	mem := opts.CPU.Mem
	mem.HWPrefetch = opts.Scheme != NoHWPF
	sysParams := cpusim.SystemParams{
		Core:                opts.CPU.Core,
		Mem:                 mem,
		Cores:               opts.Cores,
		BandwidthIterations: opts.BandwidthIterations,
	}
	sys := acquireSystem(sysParams)
	defer releaseSystem(sysParams, sys)

	sp := func(core, instance int, pf embedding.PrefetchConfig) dlrm.StreamParams {
		return dlrm.StreamParams{
			FlopsPerCycle: opts.CPU.FlopsPerCycle,
			Batch:         opts.BatchSize,
			BufBase:       bufBase(core, instance),
			Prefetch:      pf,
		}
	}
	src := func(batchIdx int) embedding.BatchSource {
		return func(tableID int) trace.TableBatch { return provider.Batch(batchIdx, tableID) }
	}
	embStream := func(core, instance, batchIdx int, pf embedding.PrefetchConfig) cpusim.StreamFactory {
		return func() cpusim.Stream {
			return model.EmbeddingStream(src(batchIdx), sp(core, instance, pf))
		}
	}
	bottomStream := func(core, instance int) cpusim.StreamFactory {
		return func() cpusim.Stream { return model.BottomStream(sp(core, instance, embedding.PrefetchConfig{})) }
	}
	topStream := func(core, instance int) cpusim.StreamFactory {
		return func() cpusim.Stream { return model.TopStream(sp(core, instance, embedding.PrefetchConfig{})) }
	}
	fullInference := func(core, instance, batchIdx int, pf embedding.PrefetchConfig) cpusim.StreamFactory {
		return func() cpusim.Stream {
			return cpusim.NewConcatStream(
				model.EmbeddingStream(src(batchIdx), sp(core, instance, pf)),
				model.BottomStream(sp(core, instance, pf)),
				model.TopStream(sp(core, instance, pf)),
			)
		}
	}

	pf := embedding.PrefetchConfig{}
	if opts.Scheme.UsesSWPrefetch() {
		pf = opts.Prefetch
	}

	work := make([]cpusim.CoreWork, opts.Cores)
	for c := 0; c < opts.Cores; c++ {
		var phases []cpusim.Phase
		for b := 0; b < perCore; b++ {
			// Round-robin batch assignment: batch index advances across
			// cores first, then rounds.
			switch opts.Scheme {
			case Baseline, NoHWPF, SWPF:
				bi := b*opts.Cores + c
				phases = append(phases, cpusim.Phase{
					Label:   StageEmbedding,
					Streams: []cpusim.StreamFactory{embStream(c, 0, bi, pf)},
				})
				if !opts.EmbeddingOnly {
					phases = append(phases,
						cpusim.Phase{Label: StageBottom, Streams: []cpusim.StreamFactory{bottomStream(c, 0)}},
						cpusim.Phase{Label: StageTop, Streams: []cpusim.StreamFactory{topStream(c, 0)}},
					)
				}
			case DPHT:
				b0 := (b*opts.Cores + c) * 2
				phases = append(phases, cpusim.Phase{
					Label: StageInference,
					Streams: []cpusim.StreamFactory{
						fullInference(c, 0, b0, pf),
						fullInference(c, 1, b0+1, pf),
					},
				})
			case MPHT, Integrated:
				bi := b*opts.Cores + c
				phases = append(phases,
					cpusim.Phase{
						Label: StageSMTPair,
						Streams: []cpusim.StreamFactory{
							embStream(c, 0, bi, pf),
							bottomStream(c, 1),
						},
					},
					cpusim.Phase{Label: StageTop, Streams: []cpusim.StreamFactory{topStream(c, 0)}},
				)
			default:
				return Report{}, fmt.Errorf("core: unhandled scheme %v", opts.Scheme)
			}
		}
		work[c] = cpusim.CoreWork{Phases: phases}
	}
	if err := ctx.Err(); err != nil {
		return Report{}, err
	}

	res := sys.Run(work)

	rep := Report{
		Scheme:    opts.Scheme,
		ModelName: opts.Model.Name,
		CPUName:   opts.CPU.Name,
		Hotness:   opts.Hotness,

		AvgLoadLatency:       res.AvgLoadLatency,
		L1HitRate:            res.L1HitRate,
		L2HitRate:            res.L2HitRate,
		L3HitRate:            res.L3HitRate,
		DRAMBytes:            res.DRAMBytes,
		BandwidthUtilization: res.BandwidthUtilization,
		SWPrefetches:         res.SWPrefetches,
		StageCycles:          map[string]float64{},
	}
	rep.BatchLatencyCycles = res.MeanCoreCycles() / float64(perCore)
	rep.BatchLatencyMs = opts.CPU.CyclesToMs(rep.BatchLatencyCycles)
	if res.Cycles > 0 {
		secs := res.Cycles / (opts.CPU.FrequencyGHz * 1e9)
		rep.ThroughputBatchesPerSec = float64(perCore*instances*opts.Cores) / secs
		rep.BandwidthGBs = res.BandwidthBytesPerCyc * opts.CPU.FrequencyGHz
	}
	for _, label := range []string{StageEmbedding, StageBottom, StageTop, StageSMTPair, StageInference} {
		if v := res.MeanPhaseCycles(label); v > 0 {
			rep.StageCycles[label] = v
		}
	}
	if check.Enabled {
		finite := func(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
		check.Assert(finite(rep.BatchLatencyCycles) && finite(rep.BatchLatencyMs) &&
			finite(rep.ThroughputBatchesPerSec) && finite(rep.AvgLoadLatency) &&
			finite(rep.BandwidthGBs) && finite(rep.BandwidthUtilization),
			"core: non-finite report for %s/%v/%v", rep.ModelName, rep.Scheme, rep.Hotness)
	}
	return rep, nil
}

// EmbeddingStageCycles returns the per-batch embedding time: the explicit
// embedding phase when present, otherwise the SMT pair phase (where the
// embedding thread dominates).
func (r Report) EmbeddingStageCycles() float64 {
	if v, ok := r.StageCycles[StageEmbedding]; ok {
		return v
	}
	return r.StageCycles[StageSMTPair]
}

// Speedup returns base's latency divided by r's (how much faster r is).
func (r Report) Speedup(base Report) float64 {
	if r.BatchLatencyCycles == 0 {
		return 0
	}
	return base.BatchLatencyCycles / r.BatchLatencyCycles
}

// RunCells executes independent design points over a pool of workers and
// returns the reports index-aligned with cells. workers <= 0 uses
// GOMAXPROCS. A cell whose Seed is zero gets a per-cell seed split from
// its index (stats.SplitSeed(1, i)) — the derivation depends only on the
// cell's position, never on worker count or scheduling, so the reports
// are identical for every worker count, including 1. The first failing
// cell cancels the remainder; the lowest-index error is returned.
func RunCells(ctx context.Context, cells []Options, workers int) ([]Report, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	seeded := func(i int) Options {
		c := cells[i]
		if c.Seed == 0 {
			c.Seed = stats.SplitSeed(1, uint64(i))
		}
		return c
	}
	reps := make([]Report, len(cells))
	if workers == 1 || len(cells) < 2 {
		for i := range cells {
			rep, err := RunContext(ctx, seeded(i))
			if err != nil {
				return nil, fmt.Errorf("cell %d: %w", i, err)
			}
			reps[i] = rep
		}
		return reps, nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, len(cells))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := range cells {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-ctx.Done():
				errs[i] = ctx.Err()
				return
			}
			reps[i], errs[i] = RunContext(ctx, seeded(i))
			if errs[i] != nil {
				cancel()
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cell %d: %w", i, err)
		}
	}
	return reps, nil
}
