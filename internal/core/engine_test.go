package core

import (
	"testing"

	"dlrmsim/internal/dlrm"
	"dlrmsim/internal/embedding"
	"dlrmsim/internal/trace"
)

// testOptions returns a heavily scaled-down rm2_1 on few cores so the
// whole scheme matrix runs in seconds.
func testOptions(s Scheme, h trace.Hotness) Options {
	return Options{
		Model:               dlrm.RM2Small().Scaled(10), // 6 tables, 12 lookups, 100K rows
		Hotness:             h,
		Scheme:              s,
		BatchSize:           16,
		Cores:               2,
		Seed:                1,
		BandwidthIterations: 2,
	}
}

func mustRun(t *testing.T, o Options) Report {
	t.Helper()
	rep, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestRunBaselineProducesSaneReport(t *testing.T) {
	rep := mustRun(t, testOptions(Baseline, trace.LowHot))
	if rep.BatchLatencyCycles <= 0 || rep.BatchLatencyMs <= 0 {
		t.Fatalf("latency = %g cyc / %g ms", rep.BatchLatencyCycles, rep.BatchLatencyMs)
	}
	if rep.L1HitRate <= 0 || rep.L1HitRate > 1 {
		t.Fatalf("L1 hit rate = %g", rep.L1HitRate)
	}
	if rep.StageCycles[StageEmbedding] <= 0 {
		t.Fatal("missing embedding stage time")
	}
	if rep.StageCycles[StageBottom] <= 0 || rep.StageCycles[StageTop] <= 0 {
		t.Fatalf("missing MLP stages: %+v", rep.StageCycles)
	}
	if rep.ThroughputBatchesPerSec <= 0 {
		t.Fatal("missing throughput")
	}
}

func TestEmbeddingDominatesRM2(t *testing.T) {
	rep := mustRun(t, testOptions(Baseline, trace.MediumHot))
	emb := rep.StageCycles[StageEmbedding]
	total := rep.BatchLatencyCycles
	if frac := emb / total; frac < 0.6 {
		t.Fatalf("embedding fraction = %.2f, RM2 should be embedding-heavy", frac)
	}
}

func TestSWPFBeatsBaseline(t *testing.T) {
	for _, h := range []trace.Hotness{trace.LowHot, trace.MediumHot} {
		base := mustRun(t, testOptions(Baseline, h))
		swpf := mustRun(t, testOptions(SWPF, h))
		sp := swpf.Speedup(base)
		if sp <= 1.0 {
			t.Errorf("%v: SW-PF speedup = %.3f, want > 1", h, sp)
		}
		if sp > 2.5 {
			t.Errorf("%v: SW-PF speedup = %.3f, implausibly high", h, sp)
		}
	}
}

func TestSWPFImprovesL1HitRateAndLoadLatency(t *testing.T) {
	base := mustRun(t, testOptions(Baseline, trace.LowHot))
	swpf := mustRun(t, testOptions(SWPF, trace.LowHot))
	if swpf.L1HitRate <= base.L1HitRate {
		t.Fatalf("L1 hit rate: baseline %.3f, SW-PF %.3f", base.L1HitRate, swpf.L1HitRate)
	}
	if swpf.AvgLoadLatency >= base.AvgLoadLatency {
		t.Fatalf("load latency: baseline %.1f, SW-PF %.1f", base.AvgLoadLatency, swpf.AvgLoadLatency)
	}
	if swpf.SWPrefetches == 0 {
		t.Fatal("SW-PF issued no prefetches")
	}
	if base.SWPrefetches != 0 {
		t.Fatal("baseline issued software prefetches")
	}
}

func TestMPHTBeatsBaseline(t *testing.T) {
	base := mustRun(t, testOptions(Baseline, trace.HighHot))
	mpht := mustRun(t, testOptions(MPHT, trace.HighHot))
	if sp := mpht.Speedup(base); sp <= 1.0 {
		t.Fatalf("MP-HT speedup = %.3f, want > 1", sp)
	}
}

func TestDPHTHurtsLatencyButHelpsThroughput(t *testing.T) {
	base := mustRun(t, testOptions(Baseline, trace.MediumHot))
	dpht := mustRun(t, testOptions(DPHT, trace.MediumHot))
	if sp := dpht.Speedup(base); sp >= 1.0 {
		t.Fatalf("DP-HT latency speedup = %.3f, should be < 1", sp)
	}
	if dpht.ThroughputBatchesPerSec <= base.ThroughputBatchesPerSec {
		t.Fatalf("DP-HT throughput %.2f <= baseline %.2f",
			dpht.ThroughputBatchesPerSec, base.ThroughputBatchesPerSec)
	}
}

func TestIntegratedIsBest(t *testing.T) {
	base := mustRun(t, testOptions(Baseline, trace.LowHot))
	swpf := mustRun(t, testOptions(SWPF, trace.LowHot))
	mpht := mustRun(t, testOptions(MPHT, trace.LowHot))
	integ := mustRun(t, testOptions(Integrated, trace.LowHot))
	spI := integ.Speedup(base)
	if spI <= swpf.Speedup(base) {
		t.Fatalf("Integrated (%.3f) should beat SW-PF (%.3f)", spI, swpf.Speedup(base))
	}
	if spI <= mpht.Speedup(base) {
		t.Fatalf("Integrated (%.3f) should beat MP-HT (%.3f)", spI, mpht.Speedup(base))
	}
}

func TestEmbeddingOnlyMode(t *testing.T) {
	o := testOptions(SWPF, trace.LowHot)
	o.EmbeddingOnly = true
	rep := mustRun(t, o)
	if _, ok := rep.StageCycles[StageBottom]; ok {
		t.Fatal("embedding-only run executed the bottom MLP")
	}
	if rep.EmbeddingStageCycles() <= 0 {
		t.Fatal("missing embedding time")
	}
}

func TestEmbeddingOnlyRejectsSMTSchemes(t *testing.T) {
	o := testOptions(MPHT, trace.LowHot)
	o.EmbeddingOnly = true
	if _, err := Run(o); err == nil {
		t.Fatal("accepted embedding-only MP-HT")
	}
}

func TestHotnessOrdersLatency(t *testing.T) {
	hi := mustRun(t, testOptions(Baseline, trace.HighHot))
	lo := mustRun(t, testOptions(Baseline, trace.LowHot))
	if hi.BatchLatencyCycles >= lo.BatchLatencyCycles {
		t.Fatalf("high hot (%.0f) should be faster than low hot (%.0f)",
			hi.BatchLatencyCycles, lo.BatchLatencyCycles)
	}
}

func TestRunIsDeterministic(t *testing.T) {
	a := mustRun(t, testOptions(SWPF, trace.MediumHot))
	b := mustRun(t, testOptions(SWPF, trace.MediumHot))
	if a.BatchLatencyCycles != b.BatchLatencyCycles || a.DRAMBytes != b.DRAMBytes {
		t.Fatalf("nondeterministic: %g/%d vs %g/%d",
			a.BatchLatencyCycles, a.DRAMBytes, b.BatchLatencyCycles, b.DRAMBytes)
	}
}

func TestRunRejectsTooManyCores(t *testing.T) {
	o := testOptions(Baseline, trace.LowHot)
	o.Cores = 1000
	if _, err := Run(o); err == nil {
		t.Fatal("accepted 1000 cores")
	}
}

func TestDefaultPrefetchFromPlatform(t *testing.T) {
	o := testOptions(SWPF, trace.LowHot)
	if err := (&o).applyDefaults(); err != nil {
		t.Fatal(err)
	}
	if o.Prefetch.Dist != o.CPU.TunedPFDist || o.Prefetch.Blocks != o.CPU.TunedPFBlocks {
		t.Fatalf("prefetch defaults = %+v", o.Prefetch)
	}
}

func TestSchemeStringsAndParse(t *testing.T) {
	for _, s := range AllSchemes {
		if s.String() == "invalid" {
			t.Fatalf("scheme %d unnamed", s)
		}
	}
	for _, name := range []string{"baseline", "nohwpf", "swpf", "dpht", "mpht", "integrated"} {
		if _, err := ParseScheme(name); err != nil {
			t.Fatalf("ParseScheme(%q): %v", name, err)
		}
	}
	if _, err := ParseScheme("bogus"); err == nil {
		t.Fatal("accepted bogus scheme")
	}
}

func TestTunePrefetchFindsBest(t *testing.T) {
	o := testOptions(SWPF, trace.LowHot)
	o.Cores = 1
	points, best, err := TunePrefetch(o, []int{1, 4}, []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.BatchLatencyCycles < best.BatchLatencyCycles {
			t.Fatalf("best (%+v) is not minimal vs %+v", best, p)
		}
	}
}

func TestExplicitPrefetchOverride(t *testing.T) {
	o := testOptions(SWPF, trace.LowHot)
	o.Prefetch = embedding.PrefetchConfig{Dist: 2, Blocks: 1}
	rep := mustRun(t, o)
	if rep.SWPrefetches == 0 {
		t.Fatal("override disabled prefetching")
	}
}
