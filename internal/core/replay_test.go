package core

import (
	"bytes"
	"testing"

	"dlrmsim/internal/dlrm"
	"dlrmsim/internal/trace"
)

// TestReplayedTraceMatchesSyntheticRun: writing a trace with trace.Write,
// reading it back, and running the engine on the replay must give
// bit-identical timing to running on the live dataset (the provider is
// the only difference).
func TestReplayedTraceMatchesSyntheticRun(t *testing.T) {
	opts := testOptions(SWPF, trace.MediumHot)
	live := mustRun(t, opts)

	// Rebuild the exact dataset the engine synthesizes internally.
	ds, err := trace.NewDataset(trace.Config{
		Hotness:          opts.Hotness,
		Rows:             opts.Model.RowsPerTable,
		Tables:           opts.Model.Tables,
		BatchSize:        opts.BatchSize,
		LookupsPerSample: opts.Model.LookupsPerSample,
		Batches:          1 * opts.Cores,
		Seed:             opts.Seed ^ 0xDA7A,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.Write(&buf, ds); err != nil {
		t.Fatal(err)
	}
	stored, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	opts.Trace = stored
	replay := mustRun(t, opts)
	if replay.BatchLatencyCycles != live.BatchLatencyCycles {
		t.Fatalf("replay %.2f cycles != live %.2f", replay.BatchLatencyCycles, live.BatchLatencyCycles)
	}
	if replay.DRAMBytes != live.DRAMBytes {
		t.Fatalf("replay traffic %d != live %d", replay.DRAMBytes, live.DRAMBytes)
	}
}

// TestReplayAcrossSchemes: one stored trace can be replayed under several
// design points — the input is held constant while the design varies.
func TestReplayAcrossSchemes(t *testing.T) {
	base := testOptions(Baseline, trace.LowHot)
	ds, err := trace.NewDataset(trace.Config{
		Hotness: base.Hotness, Rows: base.Model.RowsPerTable, Tables: base.Model.Tables,
		BatchSize: base.BatchSize, LookupsPerSample: base.Model.LookupsPerSample,
		Batches: base.Cores, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.Write(&buf, ds); err != nil {
		t.Fatal(err)
	}
	stored, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	base.Trace = stored
	bl := mustRun(t, base)
	swpf := base
	swpf.Scheme = SWPF
	sw := mustRun(t, swpf)
	if sw.Speedup(bl) <= 1 {
		t.Fatalf("SW-PF on a replayed trace: speedup %.2f", sw.Speedup(bl))
	}
}

var _ BatchProvider = (*trace.Dataset)(nil)
var _ BatchProvider = (*trace.StoredTrace)(nil)

func TestDLRMConfigInteractionStrings(t *testing.T) {
	for _, k := range []dlrm.InteractionKind{dlrm.DotInteraction, dlrm.CrossInteraction, dlrm.ConcatInteraction} {
		if k.String() == "invalid" {
			t.Fatalf("kind %d unnamed", k)
		}
	}
	if dlrm.InteractionKind(9).String() != "invalid" {
		t.Fatal("bad kind not flagged")
	}
}
