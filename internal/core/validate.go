package core

import (
	"errors"
	"fmt"

	"dlrmsim/internal/platform"
)

// Validate reports every violation in the options at once (errors.Join),
// under the same zero-means-default convention applyDefaults uses: zero
// fields are fine, values that no default can repair are not. The CLIs
// call this on every cell before a sweep starts, so a bad flag fails in
// milliseconds with an actionable list instead of surfacing as a NaN
// table — or a panic — hours into the grid.
func (o Options) Validate() error {
	var errs []error
	if err := o.Model.Validate(); err != nil {
		errs = append(errs, err)
	}
	cpu := o.CPU
	if cpu.Name == "" {
		cpu = platform.CascadeLake()
	}
	if err := cpu.Validate(); err != nil {
		errs = append(errs, err)
	}
	if o.BatchSize < 0 {
		errs = append(errs, fmt.Errorf("core: negative batch size %d", o.BatchSize))
	}
	if o.Batches < 0 {
		errs = append(errs, fmt.Errorf("core: negative batch count %d", o.Batches))
	}
	if o.Cores < 0 || o.Cores > cpu.Cores {
		errs = append(errs, fmt.Errorf("core: %d cores on a %d-core %s", o.Cores, cpu.Cores, cpu.Name))
	}
	if o.Scheme < Baseline || o.Scheme > Integrated {
		errs = append(errs, fmt.Errorf("core: invalid scheme %d", int(o.Scheme)))
	}
	if o.BandwidthIterations < 0 {
		errs = append(errs, fmt.Errorf("core: negative bandwidth iterations %d", o.BandwidthIterations))
	}
	if o.Prefetch.Dist < 0 || o.Prefetch.Blocks < 0 {
		errs = append(errs, fmt.Errorf("core: negative prefetch knobs (dist %d, blocks %d)",
			o.Prefetch.Dist, o.Prefetch.Blocks))
	}
	if o.EmbeddingOnly && o.Scheme.UsesSMT() {
		errs = append(errs, fmt.Errorf("core: embedding-only runs are sequential; %v uses SMT", o.Scheme))
	}
	return errors.Join(errs...)
}
