package core

import (
	"fmt"

	"dlrmsim/internal/embedding"
)

// TunePoint is one evaluated (pf_dist, pf_blocks) setting.
type TunePoint struct {
	Dist, Blocks       int
	BatchLatencyCycles float64
	L1HitRate          float64
	AvgLoadLatency     float64
}

// TunePrefetch sweeps Algorithm 3's knobs on the given workload (the
// scheme is forced to SWPF) and returns every evaluated point plus the
// fastest one — the paper's Fig. 10(b)/(c) design-space exploration,
// which is how the per-platform tuned settings in package platform were
// found.
func TunePrefetch(opts Options, dists, blocks []int) ([]TunePoint, TunePoint, error) {
	if len(dists) == 0 || len(blocks) == 0 {
		return nil, TunePoint{}, fmt.Errorf("core: empty tuning grid")
	}
	opts.Scheme = SWPF
	var points []TunePoint
	best := TunePoint{BatchLatencyCycles: -1}
	for _, d := range dists {
		for _, b := range blocks {
			o := opts
			o.Prefetch = embedding.PrefetchConfig{Dist: d, Blocks: b}
			rep, err := Run(o)
			if err != nil {
				return nil, TunePoint{}, err
			}
			p := TunePoint{
				Dist: d, Blocks: b,
				BatchLatencyCycles: rep.BatchLatencyCycles,
				L1HitRate:          rep.L1HitRate,
				AvgLoadLatency:     rep.AvgLoadLatency,
			}
			points = append(points, p)
			if best.BatchLatencyCycles < 0 || p.BatchLatencyCycles < best.BatchLatencyCycles {
				best = p
			}
		}
	}
	return points, best, nil
}
