package core

import (
	"testing"

	"dlrmsim/internal/dlrm"
	"dlrmsim/internal/embedding"
	"dlrmsim/internal/trace"
)

func numaOpts() NUMAOptions {
	return NUMAOptions{
		Model:               dlrm.RM2Small().Scaled(16),
		Hotness:             trace.MediumHot,
		BatchSize:           16,
		Seed:                1,
		Sockets:             1,
		CoresPerSocket:      2,
		ActiveCores:         2,
		BandwidthIterations: 2,
	}
}

func TestRunNUMAPinnedBaseline(t *testing.T) {
	rep, err := RunNUMA(numaOpts())
	if err != nil {
		t.Fatal(err)
	}
	if rep.BatchLatencyCycles <= 0 || rep.BatchLatencyMs <= 0 {
		t.Fatalf("latency = %g cyc / %g ms", rep.BatchLatencyCycles, rep.BatchLatencyMs)
	}
	if rep.RemoteFillFraction != 0 {
		t.Fatalf("pinned run reported %g remote fills", rep.RemoteFillFraction)
	}
	if len(rep.SocketBandwidthGBs) != 1 {
		t.Fatalf("socket BW entries = %d", len(rep.SocketBandwidthGBs))
	}
}

func TestRunNUMAInterleavedIsSlower(t *testing.T) {
	pinned, err := RunNUMA(numaOpts())
	if err != nil {
		t.Fatal(err)
	}
	o := numaOpts()
	o.Sockets = 2
	inter, err := RunNUMA(o)
	if err != nil {
		t.Fatal(err)
	}
	if inter.BatchLatencyCycles <= pinned.BatchLatencyCycles {
		t.Fatalf("interleaved (%g) not slower than pinned (%g)",
			inter.BatchLatencyCycles, pinned.BatchLatencyCycles)
	}
	if inter.RemoteFillFraction < 0.25 {
		t.Fatalf("remote fill fraction = %g, want ~0.5", inter.RemoteFillFraction)
	}
	if len(inter.SocketBandwidthGBs) != 2 {
		t.Fatalf("socket BW entries = %d", len(inter.SocketBandwidthGBs))
	}
}

func TestRunNUMAPrefetchHelpsRemote(t *testing.T) {
	o := numaOpts()
	o.Sockets = 2
	base, err := RunNUMA(o)
	if err != nil {
		t.Fatal(err)
	}
	o.Prefetch = embedding.PrefetchConfig{Dist: 4, Blocks: 8}
	swpf, err := RunNUMA(o)
	if err != nil {
		t.Fatal(err)
	}
	if swpf.BatchLatencyCycles >= base.BatchLatencyCycles {
		t.Fatalf("SW-PF (%g) did not help interleaved run (%g)",
			swpf.BatchLatencyCycles, base.BatchLatencyCycles)
	}
}

func TestRunNUMAValidation(t *testing.T) {
	o := numaOpts()
	o.ActiveCores = 100
	if _, err := RunNUMA(o); err == nil {
		t.Fatal("accepted more active cores than exist")
	}
	o = numaOpts()
	o.Model.Tables = 0
	if _, err := RunNUMA(o); err == nil {
		t.Fatal("accepted invalid model")
	}
}

func TestRunNUMADefaults(t *testing.T) {
	rep, err := RunNUMA(NUMAOptions{
		Model:   dlrm.RM2Small().Scaled(20),
		Hotness: trace.HighHot,
		Seed:    2,
		// everything else defaulted: 1 socket, all 24 CSL cores active
		CoresPerSocket: 2, // keep the test fast
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.BatchLatencyCycles <= 0 {
		t.Fatal("empty report")
	}
}

func TestReportHelpers(t *testing.T) {
	a := Report{BatchLatencyCycles: 100, StageCycles: map[string]float64{StageEmbedding: 60}}
	b := Report{BatchLatencyCycles: 50, StageCycles: map[string]float64{StageSMTPair: 40}}
	if a.Speedup(b) != 0.5 {
		t.Fatalf("speedup = %g", a.Speedup(b))
	}
	if (Report{}).Speedup(a) != 0 {
		t.Fatal("zero-latency speedup should be 0")
	}
	if a.EmbeddingStageCycles() != 60 {
		t.Fatal("explicit embedding stage not used")
	}
	if b.EmbeddingStageCycles() != 40 {
		t.Fatal("SMT pair fallback not used")
	}
}
