package core

import (
	"strings"
	"testing"

	"dlrmsim/internal/dlrm"
	"dlrmsim/internal/platform"
)

// TestValidateCollectsAllViolations: one call reports every problem, not
// just the first — the CLI contract that lets a user fix a whole bad flag
// set in one round trip.
func TestValidateCollectsAllViolations(t *testing.T) {
	opts := Options{
		Model:               dlrm.RM2Small(),
		BatchSize:           -1,
		Batches:             -2,
		Cores:               1000,
		Scheme:              Scheme(99),
		BandwidthIterations: -3,
	}
	err := opts.Validate()
	if err == nil {
		t.Fatal("Validate accepted a config with five violations")
	}
	for _, want := range []string{
		"negative batch size -1",
		"negative batch count -2",
		"1000 cores",
		"invalid scheme 99",
		"negative bandwidth iterations -3",
	} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error missing %q:\n%v", want, err)
		}
	}
}

func TestValidateAcceptsZeroMeansDefault(t *testing.T) {
	if err := (Options{Model: dlrm.RM2Small()}).Validate(); err != nil {
		t.Errorf("zero-valued options rejected: %v", err)
	}
	opts := Options{Model: dlrm.RM2Small(), CPU: platform.IceLake(), Cores: 32}
	if err := opts.Validate(); err != nil {
		t.Errorf("full platform core count rejected: %v", err)
	}
}

func TestValidateEmbeddingOnlySMT(t *testing.T) {
	opts := Options{Model: dlrm.RM2Small(), Scheme: MPHT, EmbeddingOnly: true}
	if err := opts.Validate(); err == nil {
		t.Error("embedding-only with an SMT scheme accepted")
	}
}

// TestRunRejectsNegativeGeometry is the flag-audit regression: negative
// batch geometry used to slip through applyDefaults (only == 0 was
// checked) and surfaced as empty work lists and NaN throughput downstream.
func TestRunRejectsNegativeGeometry(t *testing.T) {
	for _, opts := range []Options{
		{Model: dlrm.RM2Small().Scaled(20), BatchSize: -8},
		{Model: dlrm.RM2Small().Scaled(20), Batches: -1},
		{Model: dlrm.RM2Small().Scaled(20), BandwidthIterations: -2},
	} {
		if _, err := Run(opts); err == nil || !strings.Contains(err.Error(), "negative run geometry") {
			t.Errorf("Run(%+v) err = %v, want negative-geometry rejection", opts, err)
		}
	}
}
