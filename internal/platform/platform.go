// Package platform defines the CPU configurations the paper evaluates:
// the primary Cascade Lake 6240R testbed (Table 3) and the four additional
// parts of Fig. 16 (Skylake, Ice Lake, Sapphire Rapids, Zen 3).
//
// The microarchitectural knobs follow DESIGN.md §5: the instruction window
// scales each part's implicit memory-level parallelism (the paper
// attributes ICL/SPR's stronger baselines to 58% / 129% wider windows),
// while the fill-buffer-like MLP caps and the prefetch-queue depth govern
// how much software prefetching can add on top.
package platform

import (
	"errors"
	"fmt"

	"dlrmsim/internal/cpusim"
	"dlrmsim/internal/memsim"
)

// CPU bundles everything the simulator needs to model one platform.
type CPU struct {
	// Name is the short tag used in figures (CSL, SKL, ...).
	Name string
	// FullName is the marketing part name.
	FullName string
	// Cores is the physical core count used in "multi-core" runs.
	Cores int
	// FrequencyGHz converts simulated cycles to wall-clock time.
	FrequencyGHz float64
	// Core holds the timing-model parameters.
	Core cpusim.CoreParams
	// Mem holds the cache/DRAM geometry. HWPrefetch defaults to on
	// (the paper's baseline).
	Mem memsim.MemParams
	// FlopsPerCycle is the effective fp32 throughput of the SIMD units.
	FlopsPerCycle float64
	// TunedPFDist and TunedPFBlocks are the per-platform optimal
	// software-prefetch settings the paper reports (§6.4).
	TunedPFDist   int
	TunedPFBlocks int
}

// Validate reports every problem with the platform description at once:
// core knobs, memory geometry, clock, and tuning defaults.
func (c CPU) Validate() error {
	var errs []error
	if c.Name == "" {
		errs = append(errs, fmt.Errorf("platform: empty name"))
	}
	if c.Cores < 1 {
		errs = append(errs, fmt.Errorf("platform: %s: %d cores", c.Name, c.Cores))
	}
	if c.FrequencyGHz <= 0 {
		errs = append(errs, fmt.Errorf("platform: %s: non-positive frequency %g GHz", c.Name, c.FrequencyGHz))
	}
	if c.FlopsPerCycle <= 0 {
		errs = append(errs, fmt.Errorf("platform: %s: non-positive FLOPs/cycle %g", c.Name, c.FlopsPerCycle))
	}
	if c.TunedPFDist < 0 || c.TunedPFBlocks < 0 {
		errs = append(errs, fmt.Errorf("platform: %s: negative tuned prefetch knobs (%d, %d)",
			c.Name, c.TunedPFDist, c.TunedPFBlocks))
	}
	if err := c.Core.Validate(); err != nil {
		errs = append(errs, err)
	}
	if err := c.Mem.Validate(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// CyclesToMs converts simulated cycles to milliseconds on this part.
func (c CPU) CyclesToMs(cycles float64) float64 {
	return cycles / (c.FrequencyGHz * 1e9) * 1e3
}

// MsToCycles converts milliseconds to cycles on this part.
func (c CPU) MsToCycles(ms float64) float64 {
	return ms / 1e3 * c.FrequencyGHz * 1e9
}

// bw converts GB/s to bytes per core cycle at the given frequency.
func bw(gbs, ghz float64) float64 { return gbs * 1e9 / (ghz * 1e9) }

// CascadeLake returns the paper's primary testbed: Xeon Gold 6240R
// (Table 3): 24 cores/socket, 2.4 GHz, 32 KiB L1D, 1 MiB L2, 35.75 MiB
// L3, DDR4-2933 at 140 GB/s/socket.
func CascadeLake() CPU {
	ghz := 2.4
	return CPU{
		Name:         "CSL",
		FullName:     "Intel Xeon Gold 6240R (Cascade Lake)",
		Cores:        24,
		FrequencyGHz: ghz,
		Core: cpusim.CoreParams{
			IssueWidth:       4,
			WindowSize:       224,
			DemandMLP:        7,
			FillBuffers:      13,
			PipelinedLatency: 6,
		},
		Mem: memsim.MemParams{
			L1:         memsim.CacheConfig{Name: "L1D", SizeBytes: 32 << 10, Ways: 8, LatencyCyc: 5},
			L2:         memsim.CacheConfig{Name: "L2", SizeBytes: 1 << 20, Ways: 16, LatencyCyc: 14},
			L3:         memsim.CacheConfig{Name: "L3", SizeBytes: 35_750_000, Ways: 11, LatencyCyc: 50},
			DRAM:       memsim.DRAMConfig{BaseLatencyCyc: 220, PeakBandwidthBytesPerCyc: bw(140, ghz), QueueSensitivity: 1},
			HWPrefetch: true,
		},
		FlopsPerCycle: 32,
		TunedPFDist:   4,
		TunedPFBlocks: 8,
	}
}

// Skylake returns the Xeon Gold 6136 configuration (Fig. 16): an older
// part with less cache and bandwidth than CSL but the same window.
func Skylake() CPU {
	ghz := 3.0
	return CPU{
		Name:         "SKL",
		FullName:     "Intel Xeon Gold 6136 (Skylake)",
		Cores:        24,
		FrequencyGHz: ghz,
		Core: cpusim.CoreParams{
			IssueWidth:       4,
			WindowSize:       224,
			DemandMLP:        7,
			FillBuffers:      13,
			PipelinedLatency: 6,
		},
		Mem: memsim.MemParams{
			L1:         memsim.CacheConfig{Name: "L1D", SizeBytes: 32 << 10, Ways: 8, LatencyCyc: 5},
			L2:         memsim.CacheConfig{Name: "L2", SizeBytes: 1 << 20, Ways: 16, LatencyCyc: 14},
			L3:         memsim.CacheConfig{Name: "L3", SizeBytes: 24_750_000, Ways: 11, LatencyCyc: 48},
			DRAM:       memsim.DRAMConfig{BaseLatencyCyc: 250, PeakBandwidthBytesPerCyc: bw(119, ghz), QueueSensitivity: 1},
			HWPrefetch: true,
		},
		FlopsPerCycle: 32,
		TunedPFDist:   4,
		TunedPFBlocks: 8,
	}
}

// IceLake returns the Ice Lake server configuration (Fig. 16): a 58%
// wider instruction window lifts the baseline's implicit MLP, so the
// tuned prefetch amount drops to 2 lines.
func IceLake() CPU {
	ghz := 2.4
	return CPU{
		Name:         "ICL",
		FullName:     "Intel Xeon Silver 4314 (Ice Lake)",
		Cores:        32,
		FrequencyGHz: ghz,
		Core: cpusim.CoreParams{
			IssueWidth:       5,
			WindowSize:       352,
			DemandMLP:        11,
			FillBuffers:      18,
			PipelinedLatency: 6,
		},
		Mem: memsim.MemParams{
			L1:         memsim.CacheConfig{Name: "L1D", SizeBytes: 48 << 10, Ways: 12, LatencyCyc: 5},
			L2:         memsim.CacheConfig{Name: "L2", SizeBytes: 1280 << 10, Ways: 20, LatencyCyc: 16},
			L3:         memsim.CacheConfig{Name: "L3", SizeBytes: 24 << 20, Ways: 12, LatencyCyc: 52},
			DRAM:       memsim.DRAMConfig{BaseLatencyCyc: 230, PeakBandwidthBytesPerCyc: bw(166, ghz), QueueSensitivity: 1},
			HWPrefetch: true,
		},
		FlopsPerCycle: 32,
		TunedPFDist:   4,
		TunedPFBlocks: 2,
	}
}

// SapphireRapids returns the Sapphire Rapids configuration (Fig. 16):
// a 129% wider window than CSL; tuned prefetch amount 2.
func SapphireRapids() CPU {
	ghz := 2.0
	return CPU{
		Name:         "SPR",
		FullName:     "Intel Xeon Platinum 8480+ (Sapphire Rapids)",
		Cores:        56,
		FrequencyGHz: ghz,
		Core: cpusim.CoreParams{
			IssueWidth:       6,
			WindowSize:       512,
			DemandMLP:        14,
			FillBuffers:      22,
			PipelinedLatency: 6,
		},
		Mem: memsim.MemParams{
			L1:         memsim.CacheConfig{Name: "L1D", SizeBytes: 48 << 10, Ways: 12, LatencyCyc: 5},
			L2:         memsim.CacheConfig{Name: "L2", SizeBytes: 2 << 20, Ways: 16, LatencyCyc: 16},
			L3:         memsim.CacheConfig{Name: "L3", SizeBytes: 105 << 20, Ways: 15, LatencyCyc: 56},
			DRAM:       memsim.DRAMConfig{BaseLatencyCyc: 240, PeakBandwidthBytesPerCyc: bw(307, ghz), QueueSensitivity: 1},
			HWPrefetch: true,
		},
		FlopsPerCycle: 64,
		TunedPFDist:   4,
		TunedPFBlocks: 2,
	}
}

// Zen3 returns the AMD EPYC 7763 configuration (Fig. 16). The paper notes
// heavy bandwidth contention at full core count; its tuned prefetch
// amount is 4.
func Zen3() CPU {
	ghz := 2.45
	return CPU{
		Name:         "Zen3",
		FullName:     "AMD EPYC 7763 (Zen 3)",
		Cores:        64,
		FrequencyGHz: ghz,
		Core: cpusim.CoreParams{
			IssueWidth:       4,
			WindowSize:       256,
			DemandMLP:        8,
			FillBuffers:      14,
			PipelinedLatency: 6,
		},
		Mem: memsim.MemParams{
			L1:         memsim.CacheConfig{Name: "L1D", SizeBytes: 32 << 10, Ways: 8, LatencyCyc: 4},
			L2:         memsim.CacheConfig{Name: "L2", SizeBytes: 512 << 10, Ways: 8, LatencyCyc: 12},
			L3:         memsim.CacheConfig{Name: "L3", SizeBytes: 32 << 20, Ways: 16, LatencyCyc: 46},
			DRAM:       memsim.DRAMConfig{BaseLatencyCyc: 260, PeakBandwidthBytesPerCyc: bw(204, ghz), QueueSensitivity: 1.2},
			HWPrefetch: true,
		},
		FlopsPerCycle: 32,
		TunedPFDist:   4,
		TunedPFBlocks: 4,
	}
}

// All returns the Fig. 16 platform list in the paper's order.
func All() []CPU {
	return []CPU{Skylake(), CascadeLake(), IceLake(), SapphireRapids(), Zen3()}
}

// ByName resolves a platform tag (case-sensitive short name).
func ByName(name string) (CPU, error) {
	for _, c := range All() {
		if c.Name == name {
			return c, nil
		}
	}
	return CPU{}, fmt.Errorf("platform: unknown CPU %q", name)
}
