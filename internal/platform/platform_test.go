package platform

import (
	"math"
	"testing"
)

func TestAllPlatformsValidate(t *testing.T) {
	for _, c := range All() {
		if err := c.Core.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
		if c.Cores < 1 || c.FrequencyGHz <= 0 || c.FlopsPerCycle <= 0 {
			t.Errorf("%s: bad top-level params", c.Name)
		}
		if !c.Mem.HWPrefetch {
			t.Errorf("%s: baseline must have HW prefetch on", c.Name)
		}
		if c.TunedPFDist < 1 || c.TunedPFBlocks < 1 {
			t.Errorf("%s: missing tuned prefetch settings", c.Name)
		}
	}
}

func TestCascadeLakeMatchesTable3(t *testing.T) {
	c := CascadeLake()
	if c.Cores != 24 {
		t.Errorf("cores = %d", c.Cores)
	}
	if c.FrequencyGHz != 2.4 {
		t.Errorf("frequency = %g", c.FrequencyGHz)
	}
	if c.Mem.L1.SizeBytes != 32<<10 || c.Mem.L1.LatencyCyc != 5 {
		t.Errorf("L1 = %+v", c.Mem.L1)
	}
	if c.Mem.L2.SizeBytes != 1<<20 {
		t.Errorf("L2 = %+v", c.Mem.L2)
	}
	// 35.75 MB L3 (decimal MB per Intel specs).
	if math.Abs(float64(c.Mem.L3.SizeBytes)-35.75e6) > 1e6 {
		t.Errorf("L3 = %d", c.Mem.L3.SizeBytes)
	}
	// 140 GB/s at 2.4 GHz ≈ 58.3 B/cyc.
	if math.Abs(c.Mem.DRAM.PeakBandwidthBytesPerCyc-58.33) > 0.5 {
		t.Errorf("bandwidth = %g B/cyc", c.Mem.DRAM.PeakBandwidthBytesPerCyc)
	}
	if c.TunedPFDist != 4 || c.TunedPFBlocks != 8 {
		t.Errorf("tuned prefetch = %d/%d", c.TunedPFDist, c.TunedPFBlocks)
	}
}

func TestWindowOrderingMatchesPaper(t *testing.T) {
	// The paper: ICL +58%, SPR +129% instruction window vs CSL.
	csl, icl, spr := CascadeLake(), IceLake(), SapphireRapids()
	if r := float64(icl.Core.WindowSize) / float64(csl.Core.WindowSize); math.Abs(r-1.58) > 0.05 {
		t.Errorf("ICL/CSL window ratio = %.2f, want ~1.58", r)
	}
	if r := float64(spr.Core.WindowSize) / float64(csl.Core.WindowSize); math.Abs(r-2.29) > 0.05 {
		t.Errorf("SPR/CSL window ratio = %.2f, want ~2.29", r)
	}
	// Wider windows carry more implicit MLP.
	if !(csl.Core.DemandMLP < icl.Core.DemandMLP && icl.Core.DemandMLP < spr.Core.DemandMLP) {
		t.Error("demand MLP not ordered with window size")
	}
}

func TestTunedPrefetchAmounts(t *testing.T) {
	// §6.4: optimal prefetch amounts are 8 (CSL/SKL), 2 (ICL, SPR), 4 (Zen3).
	want := map[string]int{"CSL": 8, "SKL": 8, "ICL": 2, "SPR": 2, "Zen3": 4}
	for _, c := range All() {
		if c.TunedPFBlocks != want[c.Name] {
			t.Errorf("%s tuned blocks = %d, want %d", c.Name, c.TunedPFBlocks, want[c.Name])
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"SKL", "CSL", "ICL", "SPR", "Zen3"} {
		c, err := ByName(name)
		if err != nil || c.Name != name {
			t.Fatalf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("M1"); err == nil {
		t.Fatal("accepted unknown platform")
	}
}

func TestCycleTimeConversions(t *testing.T) {
	c := CascadeLake()
	// 2.4e9 cycles = 1000 ms.
	if ms := c.CyclesToMs(2.4e9); math.Abs(ms-1000) > 1e-9 {
		t.Fatalf("CyclesToMs = %g", ms)
	}
	if cyc := c.MsToCycles(1000); math.Abs(cyc-2.4e9) > 1 {
		t.Fatalf("MsToCycles = %g", cyc)
	}
	// Round trip.
	if rt := c.CyclesToMs(c.MsToCycles(123.4)); math.Abs(rt-123.4) > 1e-9 {
		t.Fatalf("round trip = %g", rt)
	}
}

func TestPlatformNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range All() {
		if seen[c.Name] {
			t.Fatalf("duplicate platform %s", c.Name)
		}
		seen[c.Name] = true
	}
}
