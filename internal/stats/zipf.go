package stats

import (
	"fmt"
	"math"
	"sort"
)

// Zipf samples ranks in [0, N) with probability proportional to
// 1/(rank+1)^s. It uses the rejection-inversion method of Hörmann and
// Derflinger, which needs O(1) time per sample and no O(N) setup, so it
// works for table sizes in the millions.
type Zipf struct {
	rng *RNG
	n   float64
	s   float64
	// precomputed constants for rejection-inversion
	oneMinusS    float64
	invOneMinusS float64
	hx0          float64
	hImaxPlus1   float64
	sCut         float64
}

// NewZipf returns a Zipf sampler over ranks [0, n) with exponent s > 0,
// s != 1 handled exactly and s == 1 via a tiny offset. It panics if n < 1
// or s <= 0, which indicate a programming error in the caller.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	if n < 1 {
		panic(fmt.Sprintf("stats: NewZipf with n=%d", n))
	}
	if s <= 0 {
		panic(fmt.Sprintf("stats: NewZipf with s=%g", s))
	}
	if s == 1 {
		s = 1 + 1e-9
	}
	z := &Zipf{rng: rng, n: float64(n), s: s}
	z.oneMinusS = 1 - s
	z.invOneMinusS = 1 / z.oneMinusS
	z.hx0 = z.h(0.5) - 1
	z.hImaxPlus1 = z.h(z.n + 0.5)
	z.sCut = 1 - z.hInv(z.h(1.5)-math.Pow(1, -s))
	return z
}

// NewSharedZipf returns a sampler with no generator of its own, for use
// with SampleWith only. Construction never draws from the generator, so a
// shared sampler plus per-stream generators yields exactly the streams
// that per-stream samplers would.
func NewSharedZipf(n int, s float64) *Zipf { return NewZipf(nil, n, s) }

// h is the antiderivative of x^-s used by rejection-inversion.
func (z *Zipf) h(x float64) float64 {
	return math.Exp(z.oneMinusS*math.Log(x)) * z.invOneMinusS
}

func (z *Zipf) hInv(x float64) float64 {
	return math.Exp(z.invOneMinusS * math.Log(z.oneMinusS*x))
}

// Sample returns a rank in [0, n). Rank 0 is the hottest.
func (z *Zipf) Sample() int { return z.SampleWith(z.rng) }

// SampleWith draws a rank using r instead of the sampler's own stream.
// The sampler's constants depend only on (n, s), so one Zipf can serve
// many independent streams — construction is the expensive part.
func (z *Zipf) SampleWith(r *RNG) int {
	for {
		u := z.hImaxPlus1 + r.Float64()*(z.hx0-z.hImaxPlus1)
		x := z.hInv(u)
		k := math.Floor(x + 0.5)
		if k < 1 {
			k = 1
		} else if k > z.n {
			k = z.n
		}
		if k-x <= z.sCut || u >= z.h(k+0.5)-math.Exp(-z.s*math.Log(k)) {
			return int(k) - 1
		}
	}
}

// UniqueFraction estimates, by simulation, the fraction of distinct ranks
// drawn in a stream of length draws from a Zipf(n, s) distribution. It is
// used to calibrate the exponent against the paper's reported unique-access
// percentages (High=3%, Medium=24%, Low=60%).
func UniqueFraction(seed uint64, n, draws int, s float64) float64 {
	rng := NewRNG(seed)
	z := NewZipf(rng, n, s)
	seen := make(map[int]struct{}, draws)
	for i := 0; i < draws; i++ {
		seen[z.Sample()] = struct{}{}
	}
	return float64(len(seen)) / float64(draws)
}

// CalibrateZipfExponent finds, by bisection, the exponent s for which a
// Zipf(n, s) stream of the given length has approximately the target
// unique-access fraction. Larger s means hotter (fewer unique accesses).
func CalibrateZipfExponent(seed uint64, n, draws int, targetUnique float64) float64 {
	lo, hi := 0.01, 3.0
	for i := 0; i < 24; i++ {
		mid := (lo + hi) / 2
		u := UniqueFraction(seed, n, draws, mid)
		if u > targetUnique {
			lo = mid // too uniform; need hotter
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// AccessCounts draws `draws` samples from sampler and returns the per-rank
// access counts sorted descending — the data behind the paper's Fig. 5
// hot-embedding histograms.
func AccessCounts(sample func() int, draws int) []int {
	counts := map[int]int{}
	for i := 0; i < draws; i++ {
		counts[sample()]++
	}
	out := make([]int, 0, len(counts))
	for _, c := range counts {
		out = append(out, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}
