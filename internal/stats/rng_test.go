package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(7)
	s := r.Split()
	// The split stream must differ from the parent's continuation.
	same := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == s.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split stream collided with parent %d times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %g", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %g, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(13)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %g, want ~1", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(17)
	var sum, sumSq float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %g, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(23)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation element %d", v)
		}
		seen[v] = true
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := NewRNG(29)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range s {
		sum += v
	}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	sum2 := 0
	for _, v := range s {
		sum2 += v
	}
	if sum != sum2 {
		t.Fatalf("shuffle changed contents: %v", s)
	}
}

func TestMix64Deterministic(t *testing.T) {
	if Mix64(12345) != Mix64(12345) {
		t.Fatal("Mix64 not deterministic")
	}
	if Mix64(1) == Mix64(2) {
		t.Fatal("Mix64 collision on adjacent inputs")
	}
}

func TestMixFloat01Property(t *testing.T) {
	f := func(x uint64) bool {
		v := MixFloat01(x)
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
