package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int64{0, 1, 2, 3, 100, 1000} {
		h.Add(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != 0 || h.Max() != 1000 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
	wantMean := float64(0+1+2+3+100+1000) / 6
	if math.Abs(h.Mean()-wantMean) > 1e-9 {
		t.Fatalf("mean = %g, want %g", h.Mean(), wantMean)
	}
}

func TestHistogramInf(t *testing.T) {
	h := NewHistogram()
	h.Add(5)
	h.AddInf()
	h.AddInf()
	if h.InfCount() != 2 {
		t.Fatalf("inf count = %d", h.InfCount())
	}
	if got := h.InfFraction(); math.Abs(got-2.0/3) > 1e-9 {
		t.Fatalf("inf fraction = %g", got)
	}
	// Mean considers only finite values.
	if h.Mean() != 5 {
		t.Fatalf("mean = %g", h.Mean())
	}
}

func TestHistogramFractionBelow(t *testing.T) {
	h := NewHistogram()
	// 10 observations of 0 and 10 of 1024.
	for i := 0; i < 10; i++ {
		h.Add(0)
		h.Add(1024)
	}
	if got := h.FractionBelow(1); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("FractionBelow(1) = %g, want 0.5", got)
	}
	if got := h.FractionBelow(100000); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("FractionBelow(100000) = %g, want 1", got)
	}
	if got := h.FractionBelow(0); got != 0 {
		t.Fatalf("FractionBelow(0) = %g, want 0", got)
	}
}

func TestHistogramFractionBelowCountsInfInDenominator(t *testing.T) {
	h := NewHistogram()
	h.Add(0)
	h.AddInf()
	// One of two observations is below any positive limit: infinite reuse
	// distance (cold miss) can never be a hit.
	if got := h.FractionBelow(10); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("FractionBelow with inf = %g, want 0.5", got)
	}
}

func TestHistogramAddPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	NewHistogram().Add(-1)
}

func TestHistogramMonotoneFractionBelow(t *testing.T) {
	f := func(vals []uint16) bool {
		h := NewHistogram()
		for _, v := range vals {
			h.Add(int64(v))
		}
		prev := -1.0
		for _, limit := range []int64{1, 2, 4, 64, 1024, 70000} {
			fb := h.FractionBelow(limit)
			if fb < prev-1e-12 || fb < 0 || fb > 1 {
				return false
			}
			prev = fb
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNonEmptyBuckets(t *testing.T) {
	h := NewHistogram()
	h.Add(0)
	h.Add(3)
	h.Add(3)
	h.AddInf()
	bs := h.NonEmptyBuckets()
	if len(bs) != 3 {
		t.Fatalf("buckets = %+v", bs)
	}
	if bs[0].Lo != 0 || bs[0].Count != 1 {
		t.Fatalf("bucket0 = %+v", bs[0])
	}
	if bs[1].Lo != 2 || bs[1].Hi != 3 || bs[1].Count != 2 {
		t.Fatalf("bucket1 = %+v", bs[1])
	}
	last := bs[len(bs)-1]
	if last.Lo != -1 || last.Count != 1 {
		t.Fatalf("inf bucket = %+v", last)
	}
}

func TestPercentile(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Percentile(s, 0.5); got != 5 {
		t.Fatalf("p50 = %g", got)
	}
	if got := Percentile(s, 0.95); got != 10 {
		t.Fatalf("p95 = %g", got)
	}
	if got := Percentile(s, 0); got != 1 {
		t.Fatalf("p0 = %g", got)
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Fatalf("empty percentile = %g", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	s := []float64{3, 1, 2}
	Percentile(s, 0.5)
	if s[0] != 3 || s[1] != 1 || s[2] != 2 {
		t.Fatalf("input mutated: %v", s)
	}
}

func TestMeanAndGeoMean(t *testing.T) {
	if got := Mean([]float64{2, 4, 6}); got != 4 {
		t.Fatalf("mean = %g", got)
	}
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-9 {
		t.Fatalf("geomean = %g", got)
	}
	if got := GeoMean([]float64{0, -3}); got != 0 {
		t.Fatalf("geomean of nonpositives = %g", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("mean of empty = %g", got)
	}
}
