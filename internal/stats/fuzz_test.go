package stats

import "testing"

// FuzzSplitSeed checks the seed-splitting scheme the parallel runner's
// determinism rests on: derivation is a pure function of (seed, cell), and
// adjacent keys — the ones real sweeps actually use side by side — never
// collide, in either coordinate, nor with the mixed parent seed.
func FuzzSplitSeed(f *testing.F) {
	f.Add(uint64(0), uint64(0))
	f.Add(uint64(1), uint64(1))
	f.Add(uint64(0xDEADBEEF), uint64(1<<63))
	f.Add(^uint64(0), ^uint64(0))
	f.Fuzz(func(t *testing.T, seed, cell uint64) {
		got := SplitSeed(seed, cell)
		if got != SplitSeed(seed, cell) {
			t.Fatal("SplitSeed is not deterministic")
		}
		if got == SplitSeed(seed, cell+1) {
			t.Fatalf("cells %d and %d of seed %#x collide", cell, cell+1, seed)
		}
		if got == SplitSeed(seed+1, cell) {
			t.Fatalf("seeds %#x and %#x collide at cell %d", seed, seed+1, cell)
		}
		// cell+1 wraps to 0 at MaxUint64, where the derivation degenerates
		// to Mix64(seed) by construction; every reachable cell index (sweep
		// sizes are far below 2^64) must stay clear of the parent stream.
		if cell != ^uint64(0) && got == Mix64(seed) {
			t.Fatalf("cell %d collides with the mixed parent seed %#x", cell, seed)
		}
		// Derived streams must not repeat their seed as the first draw — a
		// correlated first output would couple every cell to its neighbor.
		r := SeededRNG(got)
		if r.Uint64() == got {
			t.Fatalf("first draw of cell %d equals its seed", cell)
		}
	})
}
