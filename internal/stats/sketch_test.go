package stats

import (
	"math"
	"math/rand"
	"testing"
)

// TestPercentilesMatchesPercentile pins the sort-once batch API to the
// one-at-a-time reference: bit-identical values on random samples.
func TestPercentilesMatchesPercentile(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ps := []float64{0, 0.25, 0.5, 0.9, 0.95, 0.99, 1, -0.5, 1.5}
	for _, n := range []int{1, 2, 3, 10, 97, 1000} {
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = rng.ExpFloat64() * 50
		}
		got := Percentiles(samples, ps...)
		for i, p := range ps {
			want := Percentile(samples, p)
			if got[i] != want {
				t.Fatalf("n=%d p=%g: Percentiles=%v Percentile=%v", n, p, got[i], want)
			}
		}
	}
	// Empty input: zeros, matching Percentile's convention.
	for _, v := range Percentiles(nil, 0.5, 0.99) {
		if v != 0 {
			t.Fatalf("Percentiles(nil) = %v", v)
		}
	}
}

func TestPercentilesDoesNotMutate(t *testing.T) {
	s := []float64{3, 1, 2}
	Percentiles(s, 0.5, 0.99)
	if s[0] != 3 || s[1] != 1 || s[2] != 2 {
		t.Fatalf("input mutated: %v", s)
	}
}

// TestPercentilesAllocs proves the batch API allocates exactly twice
// (the sample copy and the result slice) regardless of how many
// quantiles are requested — versus 3 copies for 3 Percentile calls.
func TestPercentilesAllocs(t *testing.T) {
	samples := make([]float64, 4096)
	rng := rand.New(rand.NewSource(7))
	for i := range samples {
		samples[i] = rng.Float64()
	}
	ps := []float64{0.5, 0.95, 0.99}
	allocs := testing.AllocsPerRun(50, func() {
		Percentiles(samples, ps...)
	})
	if allocs > 2 {
		t.Fatalf("Percentiles allocated %.0f times, want <= 2", allocs)
	}
}

// TestQuantileSketchErrorBound checks the sketch against exact
// nearest-rank on heavy-tailed samples: every quantile within the
// advertised relative error.
func TestQuantileSketchErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		n := 2000 + trial*3000
		samples := make([]float64, n)
		var sk QuantileSketch
		for i := range samples {
			// Lognormal-ish latencies spanning several octaves.
			v := math.Exp(rng.NormFloat64()*1.5 + 3)
			samples[i] = v
			sk.Add(v)
		}
		bound := sk.RelativeError() * 2 // half-bucket rep + rank ties at edges
		for _, p := range []float64{0.5, 0.9, 0.95, 0.99, 0.999} {
			exact := Percentile(samples, p)
			got := sk.Quantile(p)
			if rel := math.Abs(got-exact) / exact; rel > bound {
				t.Fatalf("trial %d p=%g: sketch=%g exact=%g rel err %.4f > %.4f",
					trial, p, got, exact, rel, bound)
			}
		}
	}
}

func TestQuantileSketchExactStats(t *testing.T) {
	var sk QuantileSketch
	vals := []float64{0, 1.5, 3, 100, 0.25}
	var sum float64
	for _, v := range vals {
		sk.Add(v)
		sum += v
	}
	if sk.Count() != uint64(len(vals)) {
		t.Fatalf("count = %d", sk.Count())
	}
	if sk.Min() != 0 || sk.Max() != 100 {
		t.Fatalf("min/max = %g/%g", sk.Min(), sk.Max())
	}
	if math.Abs(sk.Mean()-sum/float64(len(vals))) > 1e-12 {
		t.Fatalf("mean = %g", sk.Mean())
	}
	// Extremes resolve exactly: p=0 is the min, p=1 the max (clamped).
	if got := sk.Quantile(0); got != 0 {
		t.Fatalf("q0 = %g", got)
	}
	if got := sk.Quantile(1); got != 100 {
		t.Fatalf("q1 = %g", got)
	}
}

func TestQuantileSketchEmpty(t *testing.T) {
	var sk QuantileSketch
	if sk.Quantile(0.5) != 0 || sk.Mean() != 0 || sk.Min() != 0 || sk.Max() != 0 {
		t.Fatal("empty sketch must report zeros")
	}
}

// TestQuantileSketchClamps drives samples outside the representable
// range: they must still count, and quantiles must resolve to the
// exact min/max rather than a bucket representative.
func TestQuantileSketchClamps(t *testing.T) {
	var sk QuantileSketch
	tiny := math.Ldexp(1, sketchMinExp-5) // below range
	huge := math.Ldexp(1, sketchMinExp+sketchOctaves+5)
	sk.Add(tiny)
	sk.Add(huge)
	sk.Add(math.Inf(1))
	if sk.Count() != 3 {
		t.Fatalf("count = %d", sk.Count())
	}
	if got := sk.Quantile(0.01); got != tiny {
		t.Fatalf("low quantile = %g, want %g", got, tiny)
	}
	if got := sk.Quantile(1); !math.IsInf(got, 1) {
		t.Fatalf("high quantile = %g", got)
	}
}

// TestQuantileSketchAddAllocs: the whole point is flat memory — Add
// must never allocate.
func TestQuantileSketchAddAllocs(t *testing.T) {
	var sk QuantileSketch
	rng := rand.New(rand.NewSource(3))
	vals := make([]float64, 1024)
	for i := range vals {
		vals[i] = rng.ExpFloat64() * 20
	}
	allocs := testing.AllocsPerRun(20, func() {
		for _, v := range vals {
			sk.Add(v)
		}
	})
	if allocs != 0 {
		t.Fatalf("Add allocated %.0f times, want 0", allocs)
	}
}

// TestSketchIndexMonotone: bucket index must be non-decreasing in the
// value, or rank walks would misorder quantiles.
func TestSketchIndexMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	prevV, prevI := 0.0, -1
	vals := make([]float64, 0, 4096)
	for i := 0; i < 4096; i++ {
		vals = append(vals, math.Exp(rng.NormFloat64()*4))
	}
	// Also hit exact bucket boundaries.
	for e := sketchMinExp; e < sketchMinExp+sketchOctaves; e++ {
		vals = append(vals, math.Ldexp(1, e))
	}
	sortFloat64s(vals)
	for _, v := range vals {
		i := sketchIndex(v)
		if i < 0 {
			continue
		}
		if prevI >= 0 && i < prevI {
			t.Fatalf("index not monotone: f(%g)=%d after f(%g)=%d", v, i, prevV, prevI)
		}
		// The representative must sit inside a half-width of v's bucket.
		rep := sketchValue(i)
		if rel := math.Abs(rep-v) / v; rel > 1.0/float64(sketchSubBuckets) {
			t.Fatalf("rep %g too far from %g (rel %.4f)", rep, v, rel)
		}
		prevV, prevI = v, i
	}
}

func sortFloat64s(s []float64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
