package stats

import (
	"math"
	"math/rand"
	"testing"
)

// TestPercentilesMatchesPercentile pins the sort-once batch API to the
// one-at-a-time reference: bit-identical values on random samples.
func TestPercentilesMatchesPercentile(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ps := []float64{0, 0.25, 0.5, 0.9, 0.95, 0.99, 1, -0.5, 1.5}
	for _, n := range []int{1, 2, 3, 10, 97, 1000} {
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = rng.ExpFloat64() * 50
		}
		got := Percentiles(samples, ps...)
		for i, p := range ps {
			want := Percentile(samples, p)
			if got[i] != want {
				t.Fatalf("n=%d p=%g: Percentiles=%v Percentile=%v", n, p, got[i], want)
			}
		}
	}
	// Empty input: zeros, matching Percentile's convention.
	for _, v := range Percentiles(nil, 0.5, 0.99) {
		if v != 0 {
			t.Fatalf("Percentiles(nil) = %v", v)
		}
	}
}

func TestPercentilesDoesNotMutate(t *testing.T) {
	s := []float64{3, 1, 2}
	Percentiles(s, 0.5, 0.99)
	if s[0] != 3 || s[1] != 1 || s[2] != 2 {
		t.Fatalf("input mutated: %v", s)
	}
}

// TestPercentilesAllocs proves the batch API allocates exactly twice
// (the sample copy and the result slice) regardless of how many
// quantiles are requested — versus 3 copies for 3 Percentile calls.
func TestPercentilesAllocs(t *testing.T) {
	samples := make([]float64, 4096)
	rng := rand.New(rand.NewSource(7))
	for i := range samples {
		samples[i] = rng.Float64()
	}
	ps := []float64{0.5, 0.95, 0.99}
	allocs := testing.AllocsPerRun(50, func() {
		Percentiles(samples, ps...)
	})
	if allocs > 2 {
		t.Fatalf("Percentiles allocated %.0f times, want <= 2", allocs)
	}
}

// TestQuantileSketchErrorBound checks the sketch against exact
// nearest-rank on heavy-tailed samples: every quantile within the
// advertised relative error.
func TestQuantileSketchErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		n := 2000 + trial*3000
		samples := make([]float64, n)
		var sk QuantileSketch
		for i := range samples {
			// Lognormal-ish latencies spanning several octaves.
			v := math.Exp(rng.NormFloat64()*1.5 + 3)
			samples[i] = v
			sk.Add(v)
		}
		bound := sk.RelativeError() * 2 // half-bucket rep + rank ties at edges
		for _, p := range []float64{0.5, 0.9, 0.95, 0.99, 0.999} {
			exact := Percentile(samples, p)
			got := sk.Quantile(p)
			if rel := math.Abs(got-exact) / exact; rel > bound {
				t.Fatalf("trial %d p=%g: sketch=%g exact=%g rel err %.4f > %.4f",
					trial, p, got, exact, rel, bound)
			}
		}
	}
}

func TestQuantileSketchExactStats(t *testing.T) {
	var sk QuantileSketch
	vals := []float64{0, 1.5, 3, 100, 0.25}
	var sum float64
	for _, v := range vals {
		sk.Add(v)
		sum += v
	}
	if sk.Count() != uint64(len(vals)) {
		t.Fatalf("count = %d", sk.Count())
	}
	if sk.Min() != 0 || sk.Max() != 100 {
		t.Fatalf("min/max = %g/%g", sk.Min(), sk.Max())
	}
	if math.Abs(sk.Mean()-sum/float64(len(vals))) > 1e-12 {
		t.Fatalf("mean = %g", sk.Mean())
	}
	// Extremes resolve exactly: p=0 is the min, p=1 the max (clamped).
	if got := sk.Quantile(0); got != 0 {
		t.Fatalf("q0 = %g", got)
	}
	if got := sk.Quantile(1); got != 100 {
		t.Fatalf("q1 = %g", got)
	}
}

func TestQuantileSketchEmpty(t *testing.T) {
	var sk QuantileSketch
	if sk.Quantile(0.5) != 0 || sk.Mean() != 0 || sk.Min() != 0 || sk.Max() != 0 {
		t.Fatal("empty sketch must report zeros")
	}
}

// TestQuantileSketchClamps drives samples outside the representable
// range: they must still count, and quantiles must resolve to the
// exact min/max rather than a bucket representative.
func TestQuantileSketchClamps(t *testing.T) {
	var sk QuantileSketch
	tiny := math.Ldexp(1, sketchMinExp-5) // below range
	huge := math.Ldexp(1, sketchMinExp+sketchOctaves+5)
	sk.Add(tiny)
	sk.Add(huge)
	sk.Add(math.Inf(1))
	if sk.Count() != 3 {
		t.Fatalf("count = %d", sk.Count())
	}
	if got := sk.Quantile(0.01); got != tiny {
		t.Fatalf("low quantile = %g, want %g", got, tiny)
	}
	if got := sk.Quantile(1); !math.IsInf(got, 1) {
		t.Fatalf("high quantile = %g", got)
	}
}

// TestQuantileSketchAddAllocs: the whole point is flat memory — Add
// must never allocate.
func TestQuantileSketchAddAllocs(t *testing.T) {
	var sk QuantileSketch
	rng := rand.New(rand.NewSource(3))
	vals := make([]float64, 1024)
	for i := range vals {
		vals[i] = rng.ExpFloat64() * 20
	}
	allocs := testing.AllocsPerRun(20, func() {
		for _, v := range vals {
			sk.Add(v)
		}
	})
	if allocs != 0 {
		t.Fatalf("Add allocated %.0f times, want 0", allocs)
	}
}

// TestSketchIndexMonotone: bucket index must be non-decreasing in the
// value, or rank walks would misorder quantiles.
func TestSketchIndexMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	prevV, prevI := 0.0, -1
	vals := make([]float64, 0, 4096)
	for i := 0; i < 4096; i++ {
		vals = append(vals, math.Exp(rng.NormFloat64()*4))
	}
	// Also hit exact bucket boundaries.
	for e := sketchMinExp; e < sketchMinExp+sketchOctaves; e++ {
		vals = append(vals, math.Ldexp(1, e))
	}
	sortFloat64s(vals)
	for _, v := range vals {
		i := sketchIndex(v)
		if i < 0 {
			continue
		}
		if prevI >= 0 && i < prevI {
			t.Fatalf("index not monotone: f(%g)=%d after f(%g)=%d", v, i, prevV, prevI)
		}
		// The representative must sit inside a half-width of v's bucket.
		rep := sketchValue(i)
		if rel := math.Abs(rep-v) / v; rel > 1.0/float64(sketchSubBuckets) {
			t.Fatalf("rep %g too far from %g (rel %.4f)", rep, v, rel)
		}
		prevV, prevI = v, i
	}
}

// TestQuantileSketchMergeEqualsConcatenated is the merge property test:
// splitting one stream into k disjoint sub-streams, sketching each, and
// merging must reproduce the concatenated stream's sketch EXACTLY —
// same count, min, max, and bit-identical quantiles at every cut point
// (bucket counts are integers, so no tolerance is needed). Mean may
// differ only by float summation order.
func TestQuantileSketchMergeEqualsConcatenated(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial, parts := range []int{1, 2, 3, 8} {
		n := 500 + trial*1700
		var whole QuantileSketch
		shards := make([]QuantileSketch, parts)
		for i := 0; i < n; i++ {
			v := math.Exp(rng.NormFloat64()*2 + 1)
			if i%7 == 0 {
				v = 0 // exercise the zero bucket
			}
			whole.Add(v)
			shards[i%parts].Add(v)
		}
		var merged QuantileSketch
		for p := range shards {
			merged.Merge(&shards[p])
		}
		if merged.Count() != whole.Count() {
			t.Fatalf("parts=%d: merged count %d != %d", parts, merged.Count(), whole.Count())
		}
		if merged.Min() != whole.Min() || merged.Max() != whole.Max() {
			t.Fatalf("parts=%d: merged min/max %g/%g != %g/%g",
				parts, merged.Min(), merged.Max(), whole.Min(), whole.Max())
		}
		for _, p := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1} {
			if got, want := merged.Quantile(p), whole.Quantile(p); got != want {
				t.Fatalf("parts=%d p=%g: merged quantile %g != concatenated %g", parts, p, got, want)
			}
		}
		if math.Abs(merged.Mean()-whole.Mean()) > 1e-9*whole.Mean() {
			t.Fatalf("parts=%d: merged mean %g vs %g", parts, merged.Mean(), whole.Mean())
		}
	}
}

// TestQuantileSketchMergePreservesErrorBound: the merged sketch's
// quantiles must stay within the advertised relative error of the exact
// nearest-rank over the full sample set — merging must not widen the
// bound.
func TestQuantileSketchMergePreservesErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	n := 6000
	samples := make([]float64, n)
	shards := make([]QuantileSketch, 4)
	for i := range samples {
		v := math.Exp(rng.NormFloat64()*1.5 + 3)
		samples[i] = v
		shards[i%len(shards)].Add(v)
	}
	var merged QuantileSketch
	for p := range shards {
		merged.Merge(&shards[p])
	}
	bound := merged.RelativeError() * 2
	for _, p := range []float64{0.5, 0.9, 0.95, 0.99, 0.999} {
		exact := Percentile(samples, p)
		got := merged.Quantile(p)
		if rel := math.Abs(got-exact) / exact; rel > bound {
			t.Fatalf("p=%g: merged=%g exact=%g rel err %.4f > %.4f", p, got, exact, rel, bound)
		}
	}
}

// TestQuantileSketchMergeEdgeCases: merging with empty sketches in
// either position, clamp counters, and self-reset reuse.
func TestQuantileSketchMergeEdgeCases(t *testing.T) {
	var empty, filled QuantileSketch
	filled.Add(2)
	filled.Add(math.Inf(1))
	filled.Add(math.Ldexp(1, sketchMinExp-3)) // low clamp

	var dst QuantileSketch
	dst.Merge(&empty) // no-op
	if dst.Count() != 0 {
		t.Fatalf("merge of empty changed count: %d", dst.Count())
	}
	dst.Merge(&filled) // empty dst adopts o wholesale
	if dst.Count() != 3 || dst.Min() != filled.Min() || !math.IsInf(dst.Max(), 1) {
		t.Fatalf("empty-dst merge: count %d min %g max %g", dst.Count(), dst.Min(), dst.Max())
	}
	dst.Merge(&filled) // non-empty merge doubles every counter
	if dst.Count() != 6 {
		t.Fatalf("count = %d, want 6", dst.Count())
	}
	if filled.Count() != 3 {
		t.Fatalf("merge mutated its argument: count %d", filled.Count())
	}
	dst.Reset()
	if dst.Count() != 0 || dst.Quantile(0.5) != 0 || dst.Sum() != 0 {
		t.Fatal("Reset did not zero the sketch")
	}
}

func sortFloat64s(s []float64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
