// Package stats provides deterministic random number generation, power-law
// (Zipf) sampling, histograms, and percentile estimation used throughout the
// simulator. All randomness in the repository flows through this package so
// that every experiment is reproducible bit-for-bit from its seed.
package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random generator based on
// splitmix64. The zero value is a valid generator seeded with 0; prefer
// NewRNG to make the seed explicit.
//
// RNG is not safe for concurrent use; give each goroutine its own stream
// via Split.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// SeededRNG returns a generator value seeded with seed. It produces the
// same stream as NewRNG(seed); hot paths that create one generator per
// simulated entity use it to keep the state on the stack.
func SeededRNG(seed uint64) RNG {
	return RNG{state: seed}
}

// Split derives an independent generator from r. The derived stream is
// decorrelated from r's future output, so parallel workers can each take a
// split without sharing state.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64() ^ 0x9e3779b97f4a7c15}
}

// Uint64 returns the next value in the stream.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative 63-bit value.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (Box-Muller).
func (r *RNG) NormFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			v := r.Float64()
			return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1 (mean 1).
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly reorders the n elements addressed by swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Mix64 is the stateless splitmix64 finalizer, useful for deriving
// deterministic per-key values (e.g. procedural embedding table contents)
// without carrying generator state.
func Mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// MixFloat01 maps an arbitrary key to a deterministic value in [0, 1).
func MixFloat01(x uint64) float64 {
	return float64(Mix64(x)>>11) / (1 << 53)
}

// SplitSeed derives the seed for parallel cell i of a run seeded with
// seed. Each cell gets a decorrelated splitmix64 stream that is a pure
// function of (seed, cell) — no generator state is shared between cells,
// so neither worker count nor scheduling order can change which random
// stream a cell consumes. This is the seed-splitting scheme the parallel
// experiment runner's determinism guarantee rests on.
func SplitSeed(seed, cell uint64) uint64 {
	return Mix64(seed ^ (cell+1)*0x517CC1B727220A95)
}
