package stats

import (
	"math"
)

// QuantileSketch is a fixed-memory streaming quantile estimator for
// non-negative samples (latencies in ms). It buckets values on a
// base-2 logarithmic grid with linear sub-buckets per octave — the
// HDR-histogram layout — so Add is O(1) with no floating-point log, the
// memory footprint is a compile-time constant regardless of how many
// samples are observed, and every quantile is error-bounded: the
// returned value differs from the exact nearest-rank sample by at most
// half a bucket, a relative error of 1/(2·sketchSubBuckets) ≈ 0.8%.
//
// The open-loop cluster simulator's -stream-stats mode feeds every
// post-warmup latency through one of these instead of retaining the
// per-query sample slice, which is what keeps a day-in-the-life run at
// production QPS (billions of events) in flat memory. The default
// (exact nearest-rank over retained samples) is unchanged; the sketch
// is the opt-in trade of ≤0.8% value error for O(1)-sample memory.
//
// The zero value is ready to use.
type QuantileSketch struct {
	// counts is indexed by (octave, sub-bucket). Octave o covers values
	// in [2^(o+sketchMinExp-1), 2^(o+sketchMinExp)), split into
	// sketchSubBuckets equal linear steps.
	counts [sketchOctaves * sketchSubBuckets]uint64
	// zero counts exact zeros (a zero-latency sample has no octave).
	zero uint64
	// low/high count samples clamped below/above the representable
	// range; their contribution to quantiles is min/max respectively.
	low, high uint64

	count    uint64
	sum      float64
	min, max float64
}

const (
	// sketchSubBuckets is the linear resolution within one octave;
	// 64 bounds the relative half-bucket error at 1/128 ≈ 0.8%.
	sketchSubBuckets = 64
	// sketchMinExp/sketchOctaves pin the representable range to
	// [2^-21, 2^42) ≈ [0.5 ns, 4.4e12 ms] when samples are in ms —
	// far wider than any simulated latency; outliers clamp to min/max.
	sketchMinExp  = -21
	sketchOctaves = 64
)

// sketchIndex maps a positive finite v to its bucket, or a negative
// sentinel: -1 below range, -2 above.
func sketchIndex(v float64) int {
	frac, exp := math.Frexp(v) // v = frac * 2^exp, frac in [0.5, 1)
	o := exp - sketchMinExp - 1
	if o < 0 {
		return -1
	}
	if o >= sketchOctaves {
		return -2
	}
	sub := int((frac - 0.5) * (2 * sketchSubBuckets))
	if sub >= sketchSubBuckets { // frac == nextafter(1, 0) rounding guard
		sub = sketchSubBuckets - 1
	}
	return o*sketchSubBuckets + sub
}

// sketchValue returns the representative (midpoint) value of bucket i.
func sketchValue(i int) float64 {
	o := i / sketchSubBuckets
	sub := i % sketchSubBuckets
	lo := math.Ldexp(0.5+float64(sub)/(2*sketchSubBuckets), o+sketchMinExp+1)
	width := math.Ldexp(1/float64(2*sketchSubBuckets), o+sketchMinExp+1)
	return lo + width/2
}

// Add records one sample. Negative and non-finite samples are treated
// as range clamps (counted, reflected in min/max) rather than dropped,
// so Count always equals the number of Add calls.
func (s *QuantileSketch) Add(v float64) {
	if s.count == 0 {
		s.min, s.max = v, v
	} else {
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
	}
	s.count++
	s.sum += v
	switch {
	case v == 0 || v < 0 || math.IsNaN(v):
		s.zero++
	case math.IsInf(v, 1):
		s.high++
	default:
		switch i := sketchIndex(v); i {
		case -1:
			s.low++
		case -2:
			s.high++
		default:
			s.counts[i]++
		}
	}
}

// Merge folds every sample recorded in o into s, as if each of o's Add
// calls had been made on s instead. Because the bucket layout is a
// compile-time constant, merging is an element-wise sum of the count
// arrays plus exact min/max/count updates — the merged sketch's bucket
// state (and therefore every Quantile) is IDENTICAL to the sketch of
// the concatenated stream, and the half-bucket error bound is
// preserved. Only Mean can differ from the concatenated stream's, and
// only by float summation order (sum is accumulated per sketch, then
// added once here).
//
// The parallel cluster backend relies on this: each partition feeds its
// own sketch and the barrier merges them, so the merged quantiles are
// byte-identical to the sequential single-sketch run. o is unchanged.
func (s *QuantileSketch) Merge(o *QuantileSketch) {
	if o.count == 0 {
		return
	}
	if s.count == 0 {
		*s = *o
		return
	}
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.count += o.count
	s.sum += o.sum
	s.zero += o.zero
	s.low += o.low
	s.high += o.high
	for i := range s.counts {
		s.counts[i] += o.counts[i]
	}
}

// Reset returns the sketch to its zero state, ready for reuse.
func (s *QuantileSketch) Reset() { *s = QuantileSketch{} }

// Sum returns the running sum of all samples (0 when empty). Exposed so
// callers that need an order-independent mean can keep their own
// canonical-order sum and still cross-check the sketch's.
func (s *QuantileSketch) Sum() float64 { return s.sum }

// Count returns the number of samples observed.
func (s *QuantileSketch) Count() uint64 { return s.count }

// Mean returns the running mean (0 when empty).
func (s *QuantileSketch) Mean() float64 {
	if s.count == 0 {
		return 0
	}
	return s.sum / float64(s.count)
}

// Min and Max return the exact extrema (0 when empty).
func (s *QuantileSketch) Min() float64 {
	if s.count == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest sample (0 when empty).
func (s *QuantileSketch) Max() float64 {
	if s.count == 0 {
		return 0
	}
	return s.max
}

// RelativeError returns the worst-case relative error of Quantile for
// in-range samples: half of one sub-bucket.
func (s *QuantileSketch) RelativeError() float64 {
	return 1 / float64(2*sketchSubBuckets)
}

// Quantile returns the p-quantile (p in [0,1], nearest-rank over the
// bucketed counts). The result is clamped into [Min, Max], so exact
// zeros, sub-range, and over-range samples resolve exactly.
func (s *QuantileSketch) Quantile(p float64) float64 {
	if s.count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := uint64(math.Ceil(p * float64(s.count)))
	if rank < 1 {
		rank = 1
	}
	// Walk in value order: zeros/negatives, sub-range clamps, buckets,
	// over-range clamps.
	cum := s.zero + s.low
	v := s.min
	if cum < rank {
		found := false
		for i := range s.counts {
			cum += s.counts[i]
			if cum >= rank {
				v = sketchValue(i)
				found = true
				break
			}
		}
		if !found {
			v = s.max // rank falls into the over-range clamp count
		}
	}
	if v < s.min {
		v = s.min
	}
	if v > s.max {
		v = s.max
	}
	return v
}
