package stats

import (
	"testing"
)

func TestZipfRange(t *testing.T) {
	rng := NewRNG(1)
	z := NewZipf(rng, 1000, 1.1)
	for i := 0; i < 50000; i++ {
		v := z.Sample()
		if v < 0 || v >= 1000 {
			t.Fatalf("sample %d out of range", v)
		}
	}
}

func TestZipfRankZeroHottest(t *testing.T) {
	rng := NewRNG(2)
	z := NewZipf(rng, 10000, 1.2)
	counts := make([]int, 10000)
	for i := 0; i < 200000; i++ {
		counts[z.Sample()]++
	}
	if counts[0] <= counts[100] {
		t.Fatalf("rank 0 (%d) not hotter than rank 100 (%d)", counts[0], counts[100])
	}
	if counts[0] <= counts[9999] {
		t.Fatalf("rank 0 (%d) not hotter than tail (%d)", counts[0], counts[9999])
	}
}

func TestZipfHigherExponentIsHotter(t *testing.T) {
	uLow := UniqueFraction(3, 100000, 50000, 0.3)
	uHigh := UniqueFraction(3, 100000, 50000, 1.5)
	if uHigh >= uLow {
		t.Fatalf("unique fraction should fall with exponent: s=0.3→%.3f, s=1.5→%.3f", uLow, uHigh)
	}
}

func TestZipfSmallN(t *testing.T) {
	rng := NewRNG(4)
	z := NewZipf(rng, 1, 1.0)
	for i := 0; i < 100; i++ {
		if z.Sample() != 0 {
			t.Fatal("n=1 sampler must always return 0")
		}
	}
}

func TestZipfPanicsOnBadArgs(t *testing.T) {
	for _, tc := range []struct {
		n int
		s float64
	}{{0, 1}, {-5, 1}, {10, 0}, {10, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewZipf(%d, %g) did not panic", tc.n, tc.s)
				}
			}()
			NewZipf(NewRNG(1), tc.n, tc.s)
		}()
	}
}

func TestCalibrateZipfExponent(t *testing.T) {
	// The paper reports unique-access fractions of 3%, 24%, 60% for
	// High/Medium/Low hotness. Calibration must recover exponents that
	// reproduce those fractions on a fresh stream.
	for _, target := range []float64{0.03, 0.24, 0.60} {
		s := CalibrateZipfExponent(7, 50000, 20000, target)
		got := UniqueFraction(99, 50000, 20000, s)
		if diff := got - target; diff > 0.05 || diff < -0.05 {
			t.Errorf("target unique=%.2f: calibrated s=%.3f gives %.3f", target, s, got)
		}
	}
}

func TestAccessCountsSortedDescending(t *testing.T) {
	rng := NewRNG(8)
	z := NewZipf(rng, 5000, 1.0)
	counts := AccessCounts(z.Sample, 30000)
	total := 0
	for i, c := range counts {
		total += c
		if i > 0 && counts[i-1] < c {
			t.Fatalf("counts not descending at %d", i)
		}
	}
	if total != 30000 {
		t.Fatalf("counts sum to %d, want 30000", total)
	}
}

func BenchmarkZipfSample(b *testing.B) {
	rng := NewRNG(1)
	z := NewZipf(rng, 1_000_000, 1.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Sample()
	}
}
