package stats

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
)

// Histogram is a log2-bucketed histogram of non-negative integer values
// (reuse distances, latencies, queue depths). Bucket i covers
// [2^(i-1), 2^i) for i >= 1; bucket 0 covers {0}. A separate counter tracks
// "infinite" observations (cold misses in reuse-distance analysis).
type Histogram struct {
	buckets []uint64
	inf     uint64
	count   uint64
	sum     float64
	min     int64
	max     int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{min: math.MaxInt64, max: math.MinInt64}
}

// Add records one observation of value v (v >= 0).
func (h *Histogram) Add(v int64) {
	if v < 0 {
		panic(fmt.Sprintf("stats: Histogram.Add(%d)", v))
	}
	b := bits.Len64(uint64(v))
	for len(h.buckets) <= b {
		h.buckets = append(h.buckets, 0)
	}
	h.buckets[b]++
	h.count++
	h.sum += float64(v)
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// AddInf records an observation with no finite value (e.g. first touch of a
// line in reuse-distance analysis — a cold miss).
func (h *Histogram) AddInf() {
	h.inf++
	h.count++
}

// Count returns the total number of observations, including infinite ones.
func (h *Histogram) Count() uint64 { return h.count }

// InfCount returns the number of infinite observations.
func (h *Histogram) InfCount() uint64 { return h.inf }

// InfFraction returns the fraction of observations that were infinite.
func (h *Histogram) InfFraction() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.inf) / float64(h.count)
}

// Mean returns the mean of the finite observations.
func (h *Histogram) Mean() float64 {
	finite := h.count - h.inf
	if finite == 0 {
		return 0
	}
	return h.sum / float64(finite)
}

// Min and Max return the extrema of the finite observations (0 if none).
func (h *Histogram) Min() int64 {
	if h.count == h.inf {
		return 0
	}
	return h.min
}

// Max returns the largest finite observation (0 if none).
func (h *Histogram) Max() int64 {
	if h.count == h.inf {
		return 0
	}
	return h.max
}

// FractionBelow returns the fraction of all observations (including
// infinite ones in the denominator) whose value is strictly less than
// limit. For reuse-distance analysis this is exactly the hit rate of a
// fully-associative LRU cache holding `limit` blocks.
func (h *Histogram) FractionBelow(limit int64) float64 {
	if h.count == 0 || limit <= 0 {
		return 0
	}
	var below uint64
	for b, n := range h.buckets {
		if n == 0 {
			continue
		}
		lo, hi := bucketRange(b)
		switch {
		case hi < limit:
			below += n
		case lo >= limit:
			// entirely above
		default:
			// straddling bucket: assume uniform within the bucket
			frac := float64(limit-lo) / float64(hi-lo+1)
			below += uint64(float64(n) * frac)
		}
	}
	return float64(below) / float64(h.count)
}

func bucketRange(b int) (lo, hi int64) {
	if b == 0 {
		return 0, 0
	}
	return int64(1) << (b - 1), int64(1)<<b - 1
}

// Buckets returns (lo, hi, count) triples for the non-empty buckets in
// ascending order, followed by the infinite count as (−1, −1, inf).
type Bucket struct {
	Lo, Hi int64 // Lo=Hi=-1 marks the infinite bucket
	Count  uint64
}

// NonEmptyBuckets lists the populated buckets in ascending value order; the
// infinite bucket, if populated, comes last with Lo=Hi=-1.
func (h *Histogram) NonEmptyBuckets() []Bucket {
	var out []Bucket
	for b, n := range h.buckets {
		if n == 0 {
			continue
		}
		lo, hi := bucketRange(b)
		out = append(out, Bucket{Lo: lo, Hi: hi, Count: n})
	}
	if h.inf > 0 {
		out = append(out, Bucket{Lo: -1, Hi: -1, Count: h.inf})
	}
	return out
}

// String renders a compact textual sketch of the histogram.
func (h *Histogram) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "n=%d mean=%.1f inf=%.1f%%", h.count, h.Mean(), 100*h.InfFraction())
	return sb.String()
}

// Percentile returns the p-quantile (p in [0,1]) of a sample slice. The
// slice is copied, so the caller's data is not reordered. Uses the
// nearest-rank method, which is what serving papers (p95, p99) report.
func Percentile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	rank := int(math.Ceil(p * float64(len(s))))
	if rank < 1 {
		rank = 1
	}
	return s[rank-1]
}

// Percentiles returns the p-quantiles for each p in ps, sorting the
// sample copy ONCE. Every result is bit-identical to calling
// Percentile(samples, p) per p — same copy, same sort, same
// nearest-rank formula — but a summary that reports p50/p95/p99 pays
// for one O(n log n) sort instead of three. The caller's slice is not
// reordered.
func Percentiles(samples []float64, ps ...float64) []float64 {
	out := make([]float64, len(ps))
	if len(samples) == 0 {
		return out
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	for i, p := range ps {
		if p < 0 {
			p = 0
		}
		if p > 1 {
			p = 1
		}
		rank := int(math.Ceil(p * float64(len(s))))
		if rank < 1 {
			rank = 1
		}
		out[i] = s[rank-1]
	}
	return out
}

// Mean returns the arithmetic mean of samples (0 for an empty slice).
func Mean(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	var sum float64
	for _, v := range samples {
		sum += v
	}
	return sum / float64(len(samples))
}

// GeoMean returns the geometric mean of positive samples; zero or negative
// entries are skipped. Speedup summaries across benchmarks conventionally
// use the geometric mean.
func GeoMean(samples []float64) float64 {
	var logSum float64
	n := 0
	for _, v := range samples {
		if v > 0 {
			logSum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}
