package cpusim

import (
	"testing"
	"testing/quick"

	"dlrmsim/internal/memsim"
)

// TestMoreWorkNeverFaster: appending ops to a stream can never reduce the
// completion time.
func TestMoreWorkNeverFaster(t *testing.T) {
	f := func(raw []uint8, extra uint8) bool {
		ops := make([]Op, 0, len(raw))
		for _, r := range raw {
			switch r % 3 {
			case 0:
				ops = append(ops, Op{Kind: OpCompute, Cost: float64(r%7) + 0.5})
			case 1:
				ops = append(ops, Op{Kind: OpLoad, Addr: memsim.Addr(r) * 8192})
			default:
				ops = append(ops, Op{Kind: OpStore, Addr: memsim.Addr(r) * 8192})
			}
		}
		shorter := newTestCore(false).Run(NewSliceStream(ops)).Cycles
		longer := newTestCore(false).Run(NewSliceStream(append(append([]Op{}, ops...),
			computeOps(int(extra%8)+1, 1)...))).Cycles
		return longer >= shorter
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestWiderIssueNotMeaningfullySlower: raising issue width cannot
// meaningfully increase the completion time of a fixed single-threaded
// stream. A small tolerance is allowed: changing issue timing shifts when
// fills land and which pool entry a stall waits on, and such scheduling
// anomalies (familiar from real out-of-order machines) can cost a few
// cycles.
func TestWiderIssueNotMeaningfullySlower(t *testing.T) {
	mp := testMemParams(false)
	run := func(width float64, ops []Op) float64 {
		p := testCoreParams()
		p.IssueWidth = width
		c := NewCore(p, memsim.NewHierarchy(mp, memsim.NewShared(mp)))
		return c.Run(NewSliceStream(ops)).Cycles
	}
	f := func(raw []uint8) bool {
		ops := make([]Op, 0, len(raw))
		for _, r := range raw {
			if r%2 == 0 {
				ops = append(ops, Op{Kind: OpCompute, Cost: 0.5})
			} else {
				ops = append(ops, Op{Kind: OpLoad, Addr: memsim.Addr(r) * 4096})
			}
		}
		wide, narrow := run(8, ops), run(2, ops)
		return wide <= narrow*1.05+8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestMoreMLPNeverSlower: raising DemandMLP (with FillBuffers along)
// cannot slow a load-only stream down.
func TestMoreMLPNeverSlower(t *testing.T) {
	mp := testMemParams(false)
	run := func(mlp int, n int) float64 {
		p := testCoreParams()
		p.DemandMLP = mlp
		p.FillBuffers = mlp + 2
		c := NewCore(p, memsim.NewHierarchy(mp, memsim.NewShared(mp)))
		return c.Run(NewSliceStream(coldLoads(n, 0))).Cycles
	}
	for _, n := range []int{1, 10, 100} {
		prev := run(1, n)
		for _, mlp := range []int{2, 4, 8, 16} {
			cur := run(mlp, n)
			if cur > prev+1e-9 {
				t.Fatalf("n=%d: MLP=%d slower (%g) than smaller MLP (%g)", n, mlp, cur, prev)
			}
			prev = cur
		}
	}
}

// TestThreadResultAccounting: issued op counts are exact and stall +
// compute cycles never exceed total cycles.
func TestThreadResultAccounting(t *testing.T) {
	ops := append(computeOps(10, 3), coldLoads(20, 0)...)
	res := newTestCore(false).Run(NewSliceStream(ops))
	tr := res.Threads[0]
	if tr.Issued != 30 {
		t.Fatalf("issued = %d", tr.Issued)
	}
	if tr.StallCycles+tr.ComputeCycles > tr.Cycles+1e-9 {
		t.Fatalf("stall %g + compute %g > total %g", tr.StallCycles, tr.ComputeCycles, tr.Cycles)
	}
	if tr.Cycles != res.Cycles {
		t.Fatal("single-thread core cycles mismatch")
	}
}

// TestPhasedWorkSequencing: a two-phase core work runs phases back to
// back, and phase durations sum to the total.
func TestPhasedWorkSequencing(t *testing.T) {
	sys := NewSystem(testSystemParams(1))
	work := []CoreWork{{Phases: []Phase{
		{Label: "a", Streams: []StreamFactory{func() Stream { return NewSliceStream(computeOps(10, 5)) }}},
		{Label: "b", Streams: []StreamFactory{func() Stream { return NewSliceStream(coldLoads(10, 0)) }}},
	}}}
	res := sys.Run(work)
	pc := res.PerCore[0]
	if len(pc.Phases) != 2 {
		t.Fatalf("phases = %d", len(pc.Phases))
	}
	if pc.Phases[0].Label != "a" || pc.Phases[1].Label != "b" {
		t.Fatalf("labels = %v/%v", pc.Phases[0].Label, pc.Phases[1].Label)
	}
	if pc.Phases[1].Start != pc.Phases[0].End {
		t.Fatalf("phase b starts at %g, phase a ends at %g", pc.Phases[1].Start, pc.Phases[0].End)
	}
	sum := (pc.Phases[0].End - pc.Phases[0].Start) + (pc.Phases[1].End - pc.Phases[1].Start)
	if diff := sum - pc.Cycles; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("phase durations sum %g != total %g", sum, pc.Cycles)
	}
	if got := pc.PhaseCycles("a"); got != pc.Phases[0].End-pc.Phases[0].Start {
		t.Fatalf("PhaseCycles(a) = %g", got)
	}
	if got := pc.PhaseCycles("missing"); got != 0 {
		t.Fatalf("PhaseCycles(missing) = %g", got)
	}
}

// TestSMTPhaseWithTwoStreams: a phase with two streams runs them as
// siblings and reports both thread results.
func TestSMTPhaseWithTwoStreams(t *testing.T) {
	sys := NewSystem(testSystemParams(1))
	work := []CoreWork{{Phases: []Phase{{
		Label: "pair",
		Streams: []StreamFactory{
			func() Stream { return NewSliceStream(computeOps(10, 5)) },
			func() Stream { return NewSliceStream(coldLoads(10, 1<<30)) },
		},
	}}}}
	res := sys.Run(work)
	if got := len(res.PerCore[0].Phases[0].Threads); got != 2 {
		t.Fatalf("thread results = %d", got)
	}
}

// TestMeanPhaseCyclesAveragesAcrossCores verifies the aggregate helper.
func TestMeanPhaseCyclesAveragesAcrossCores(t *testing.T) {
	sys := NewSystem(testSystemParams(2))
	mk := func(n int) CoreWork {
		return CoreWork{Phases: []Phase{{
			Label:   "w",
			Streams: []StreamFactory{func() Stream { return NewSliceStream(computeOps(n, 1)) }},
		}}}
	}
	res := sys.Run([]CoreWork{mk(10), mk(30)})
	d0 := res.PerCore[0].PhaseCycles("w")
	d1 := res.PerCore[1].PhaseCycles("w")
	want := (d0 + d1) / 2
	if got := res.MeanPhaseCycles("w"); got != want {
		t.Fatalf("mean phase = %g, want %g", got, want)
	}
	if got := res.MeanCoreCycles(); got != (res.PerCore[0].Cycles+res.PerCore[1].Cycles)/2 {
		t.Fatalf("mean core cycles = %g", got)
	}
}
