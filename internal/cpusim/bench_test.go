package cpusim

import (
	"testing"

	"dlrmsim/internal/memsim"
)

func benchCoreParams() CoreParams {
	return CoreParams{
		IssueWidth:       4,
		WindowSize:       224,
		DemandMLP:        7,
		FillBuffers:      13,
		PipelinedLatency: 6,
	}
}

func benchMemParams() memsim.MemParams {
	return memsim.MemParams{
		L1:         memsim.CacheConfig{Name: "L1D", SizeBytes: 32 << 10, Ways: 8, LatencyCyc: 5},
		L2:         memsim.CacheConfig{Name: "L2", SizeBytes: 1 << 20, Ways: 16, LatencyCyc: 14},
		L3:         memsim.CacheConfig{Name: "L3", SizeBytes: 8 << 20, Ways: 11, LatencyCyc: 50},
		DRAM:       memsim.DRAMConfig{BaseLatencyCyc: 220, PeakBandwidthBytesPerCyc: 58, QueueSensitivity: 1},
		HWPrefetch: true,
	}
}

// benchOps synthesizes an embedding-shaped instruction mix: pooling loads
// with row-to-row indirection, interleaved software prefetches, and the
// accumulate/store tail of each pooled vector.
func benchOps(n int) []Op {
	ops := make([]Op, 0, n)
	state := uint64(0xDA7A_5EED)
	var row memsim.Addr
	for len(ops) < n {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		row = memsim.LineAddr(memsim.Addr(state % (1 << 26)))
		next := memsim.LineAddr(memsim.Addr((state * 0x9E3779B97F4A7C15) % (1 << 26)))
		ops = append(ops, Op{Kind: OpPrefetch, Addr: next, Hint: memsim.KindPrefetchL1})
		for i := 0; i < 4; i++ {
			ops = append(ops, Op{Kind: OpLoad, Addr: row + memsim.Addr(i)*memsim.LineSize})
		}
		ops = append(ops, Op{Kind: OpCompute, Cost: 2})
		ops = append(ops, Op{Kind: OpStore, Addr: memsim.Addr(1<<30) + memsim.Addr(len(ops)%64)*memsim.LineSize})
	}
	return ops[:n]
}

// BenchmarkCoreStepLoop drives the Core step loop over a fixed synthetic
// stream; one iteration executes the full 16Ki-op stream (single-threaded
// or as an SMT pair over split halves).
func BenchmarkCoreStepLoop(b *testing.B) {
	ops := benchOps(1 << 14)
	half := len(ops) / 2
	b.Run("st", func(b *testing.B) {
		mp := benchMemParams()
		c := NewCore(benchCoreParams(), memsim.NewHierarchy(mp, memsim.NewShared(mp)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Run(NewSliceStream(ops))
		}
	})
	b.Run("smt", func(b *testing.B) {
		mp := benchMemParams()
		c := NewCore(benchCoreParams(), memsim.NewHierarchy(mp, memsim.NewShared(mp)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Run(NewSliceStream(ops[:half]), NewSliceStream(ops[half:]))
		}
	})
}
