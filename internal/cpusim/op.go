// Package cpusim models CPU cores executing abstract instruction streams
// against a memsim memory hierarchy. The model is deliberately not
// cycle-accurate RTL; it captures the three mechanisms the paper's results
// hinge on:
//
//  1. memory-level parallelism limited by the instruction window and by
//     MSHR-like fill buffers (so out-of-order cores overlap misses, and
//     wider windows overlap more — the Fig. 16 effect),
//  2. software prefetches that occupy fill buffers but not the window (so
//     they take misses off the retirement critical path — §4.2), and
//  3. 2-way SMT where a thread stalled on memory donates its issue slots
//     to the sibling (so MP-HT overlaps the memory-bound embedding stage
//     with the compute-bound Bottom-MLP — §4.3).
//
// Streams are pull-based iterators so multi-million-op kernels never have
// to be materialized in memory.
package cpusim

import "dlrmsim/internal/memsim"

// OpKind classifies one abstract instruction.
type OpKind uint8

// Instruction kinds.
const (
	// OpCompute models a block of execution-bound work (e.g. SIMD FMAs)
	// costing Op.Cost cycles at full issue rate.
	OpCompute OpKind = iota
	// OpLoad is a demand load of the line containing Op.Addr.
	OpLoad
	// OpStore is a store to the line containing Op.Addr (write-buffered:
	// it never stalls the thread).
	OpStore
	// OpPrefetch is a software prefetch of Op.Addr with hint Op.Hint.
	OpPrefetch
)

// Op is one instruction handed to the core model.
type Op struct {
	Kind OpKind
	Addr memsim.Addr
	// Cost is the execution time in cycles for OpCompute ops. It is the
	// *throughput* cost (FLOPs divided by the platform's FLOPs/cycle),
	// not a latency.
	Cost float64
	// Hint selects the target level for OpPrefetch
	// (KindPrefetchL1/L2/L3).
	Hint memsim.AccessKind
	// Lines turns an OpLoad or OpPrefetch into a burst over that many
	// consecutive cache lines starting at Addr — the shape of an
	// embedding-row gather. 0 and 1 both mean a single line. Timing is
	// bit-identical to emitting the lines as individual ops (each line
	// pays issue, window, and fill-buffer costs, and the core still
	// yields to its SMT sibling and the cross-core interleaver between
	// lines); the burst only removes the per-line trip through the
	// Stream interface. Note streams emit fewer (wider) ops, so
	// CountOps counts a burst once.
	Lines int32
}

// Stream supplies ops one at a time. Next fills *op and reports whether an
// op was produced; it returns false at end of stream.
type Stream interface {
	Next(op *Op) bool
}

// StreamFactory builds a fresh stream. The multi-core simulator re-runs
// streams while solving the DRAM-bandwidth fixed point, so work must be
// supplied as replayable factories rather than one-shot iterators.
type StreamFactory func() Stream

// SliceStream replays a fixed slice of ops. Primarily for tests.
type SliceStream struct {
	ops []Op
	pos int
}

// NewSliceStream returns a stream over ops.
func NewSliceStream(ops []Op) *SliceStream { return &SliceStream{ops: ops} }

// Next implements Stream.
func (s *SliceStream) Next(op *Op) bool {
	if s.pos >= len(s.ops) {
		return false
	}
	*op = s.ops[s.pos]
	s.pos++
	return true
}

// ConcatStream runs a sequence of streams back to back, modeling
// consecutive pipeline stages executing on one thread.
type ConcatStream struct {
	streams []Stream
	idx     int
}

// NewConcatStream concatenates the given streams.
func NewConcatStream(streams ...Stream) *ConcatStream {
	return &ConcatStream{streams: streams}
}

// Next implements Stream.
func (s *ConcatStream) Next(op *Op) bool {
	for s.idx < len(s.streams) {
		if s.streams[s.idx].Next(op) {
			return true
		}
		s.idx++
	}
	return false
}

// FuncStream adapts a closure to the Stream interface.
type FuncStream func(op *Op) bool

// Next implements Stream.
func (f FuncStream) Next(op *Op) bool { return f(op) }

// CountOps drains a stream and returns the number of ops by kind; a
// convenience for tests and workload introspection.
func CountOps(s Stream) map[OpKind]int64 {
	counts := make(map[OpKind]int64)
	var op Op
	for s.Next(&op) {
		counts[op.Kind]++
	}
	return counts
}

// CountLines drains a stream and returns per-kind counts with burst ops
// weighted by the lines they cover (Lines > 1 counts Lines times). This
// is the instruction count the core actually executes, matching what
// per-line emission of the same work would produce.
func CountLines(s Stream) map[OpKind]int64 {
	counts := make(map[OpKind]int64)
	var op Op
	for s.Next(&op) {
		n := int64(1)
		if op.Lines > 1 {
			n = int64(op.Lines)
		}
		counts[op.Kind] += n
	}
	return counts
}
