package cpusim

import (
	"fmt"
	"math"

	"dlrmsim/internal/check"
	"dlrmsim/internal/memsim"
)

// CoreParams sets the microarchitectural knobs of one physical core.
type CoreParams struct {
	// IssueWidth is the sustained issue rate in ops per cycle.
	IssueWidth float64
	// WindowSize is the instruction-window (ROB) depth in ops. A thread
	// stalls when its oldest incomplete load falls WindowSize ops behind
	// the issue point. Under SMT contention each thread sees half.
	WindowSize int
	// DemandMLP caps outstanding demand misses per core. It models the
	// effective memory-level parallelism the out-of-order engine
	// sustains for loads on the retirement path, and is therefore lower
	// than the raw fill-buffer count.
	DemandMLP int
	// FillBuffers caps TOTAL outstanding fills (demand misses plus
	// software/hardware prefetches), like a physical LFB/MSHR file
	// shared by both SMT threads. Prefetches occupy fill buffers but
	// never the instruction window — which is exactly why Algorithm 3
	// helps: the same fills stop blocking retirement.
	FillBuffers int
	// PipelinedLatency is the largest load latency the out-of-order
	// engine hides completely (roughly the L2 hit latency); cheaper
	// loads never occupy miss-tracking resources.
	PipelinedLatency int64
}

// Validate reports whether the parameters are usable.
func (p CoreParams) Validate() error {
	if p.IssueWidth <= 0 {
		return fmt.Errorf("cpusim: IssueWidth %g", p.IssueWidth)
	}
	if p.WindowSize < 2 {
		return fmt.Errorf("cpusim: WindowSize %d", p.WindowSize)
	}
	if p.DemandMLP < 1 || p.FillBuffers < 1 {
		return fmt.Errorf("cpusim: MLP caps %d/%d", p.DemandMLP, p.FillBuffers)
	}
	if p.FillBuffers < p.DemandMLP {
		return fmt.Errorf("cpusim: FillBuffers %d < DemandMLP %d", p.FillBuffers, p.DemandMLP)
	}
	return nil
}

type inflightLoad struct {
	completeAt float64
	seq        int64
}

// thread is one SMT hardware context.
type thread struct {
	stream Stream
	now    float64
	start  float64
	seq    int64
	// loads is this thread's in-flight-load FIFO (ascending seq).
	// loadHead indexes the logical front, like fillPool: retiring is an
	// index bump, not a memmove of the whole window.
	loads    []inflightLoad
	loadHead int
	done     bool

	// In-progress load/prefetch burst (Op.Lines > 1): the next line and
	// how many remain. A burst suspends whenever the per-op scheduler
	// would have run someone else and resumes on the next Step.
	gatherAddr memsim.Addr
	gatherLeft int32
	gatherHint memsim.AccessKind
	gatherPf   bool

	// span describes the time interval consumed by the last op, used by
	// the sibling to decide whether issue slots are contended.
	spanEnd   float64
	spanIssue bool // true: actively issuing; false: stalled on memory

	// activeCyc accumulates time spent issuing/executing (stalls
	// excluded); activeCyc / elapsed is the thread's pipeline duty
	// cycle, which scales how much it slows a sibling down.
	activeCyc float64

	// stats
	issued    int64
	stallCyc  float64
	computeCy float64
}

// duty returns the thread's pipeline duty cycle so far in [0, 1]. A
// freshly started thread is assumed fully active.
func (t *thread) duty() float64 {
	elapsed := t.now - t.start
	if elapsed <= 0 {
		return 1
	}
	d := t.activeCyc / elapsed
	if d > 1 {
		return 1
	}
	return d
}

// ThreadResult summarizes one hardware context after a run.
type ThreadResult struct {
	// Cycles is the thread's completion time.
	Cycles float64
	// Issued is the number of ops the thread executed.
	Issued int64
	// StallCycles is time spent stalled on the window, MSHRs, or
	// prefetch-queue backpressure.
	StallCycles float64
	// ComputeCycles is time spent in OpCompute execution.
	ComputeCycles float64
}

// CoreResult summarizes a core run.
type CoreResult struct {
	// Cycles is the core's completion time (max over threads).
	Cycles float64
	// Threads holds per-context results, in the order streams were given.
	Threads []ThreadResult
}

// Core models one physical core: up to two SMT contexts in front of a
// private memsim.Hierarchy. The zero value is unusable; construct with
// NewCore.
type Core struct {
	params CoreParams
	hier   *memsim.Hierarchy

	// Core-wide miss pools (completion times, ascending), shared by both
	// SMT contexts like physical fill buffers.
	demand   fillPool
	prefetch fillPool

	threads  []*thread
	thrStore [2]thread // backing for threads, reused across Begin calls

	// op is Step's decode scratch. It is a field rather than a local so
	// the Stream interface call cannot force a fresh heap allocation on
	// every op (the escape analyzer cannot see through the interface).
	op Op

	// burstLimit is the cross-core interleaving horizon runStates sets
	// before bursting this core: a multi-line op suspends once the
	// thread clock passes it, exactly where the per-op driver would
	// have handed control back. +Inf outside runStates.
	burstLimit float64
}

// fillPool is an ascending queue of fill completion times. head indexes
// the logical front, so popping and draining are O(1) index bumps instead
// of memmoves; insertion stays a short shuffle near the tail (a pool
// holds at most FillBuffers entries). Equal completion times keep their
// insertion order, exactly like the linear insertion this replaces.
type fillPool struct {
	buf  []float64
	head int
}

func (p *fillPool) size() int      { return len(p.buf) - p.head }
func (p *fillPool) front() float64 { return p.buf[p.head] }

func (p *fillPool) reset() {
	p.buf = p.buf[:0]
	p.head = 0
}

func (p *fillPool) popFront() {
	p.head++
	if p.head == len(p.buf) {
		p.reset()
	}
}

// drainBefore drops entries completed by now (the queue is ascending).
func (p *fillPool) drainBefore(now float64) {
	h := p.head
	for h < len(p.buf) && p.buf[h] <= now {
		h++
	}
	if h == len(p.buf) {
		p.reset()
		return
	}
	p.head = h
}

// insert places v keeping the queue ascending (stable for equal values).
func (p *fillPool) insert(v float64) {
	if p.head > 0 && len(p.buf) == cap(p.buf) {
		n := copy(p.buf, p.buf[p.head:])
		p.buf = p.buf[:n]
		p.head = 0
	}
	p.buf = append(p.buf, v)
	i := len(p.buf) - 1
	for i > p.head && p.buf[i-1] > v {
		p.buf[i] = p.buf[i-1]
		i--
	}
	p.buf[i] = v
}

// NewCore builds a core over the given private hierarchy. It panics on
// invalid parameters (a configuration bug, not a runtime condition).
func NewCore(params CoreParams, hier *memsim.Hierarchy) *Core {
	if err := params.Validate(); err != nil {
		panic(err)
	}
	return &Core{params: params, hier: hier, burstLimit: math.Inf(1)}
}

// Hierarchy returns the core's private memory hierarchy.
func (c *Core) Hierarchy() *memsim.Hierarchy { return c.hier }

// Params returns the core's microarchitectural parameters.
func (c *Core) Params() CoreParams { return c.params }

// Run executes one or two streams to completion on the core's SMT
// contexts, starting at cycle 0, and returns the timing summary. It is a
// convenience wrapper for single-core experiments; multi-core runs are
// driven by System, which interleaves cores itself.
func (c *Core) Run(streams ...Stream) CoreResult {
	c.burstLimit = math.Inf(1) // standalone run: no cross-core horizon
	c.Begin(streams...)
	for {
		t := c.nextThread()
		if t == nil {
			break
		}
		c.Step(t)
	}
	return c.Collect()
}

// Begin installs fresh streams on the core's SMT contexts starting at
// cycle 0. One stream is single-threaded execution; two streams are SMT
// siblings. Pools are cleared; the hierarchy's caches retain their
// (possibly warmed) state.
func (c *Core) Begin(streams ...Stream) { c.BeginAt(0, streams...) }

// BeginAt is Begin with an explicit start time, used to chain pipeline
// phases on one core: the next phase starts where the previous ended.
func (c *Core) BeginAt(start float64, streams ...Stream) {
	if len(streams) < 1 || len(streams) > 2 {
		panic(fmt.Sprintf("cpusim: Begin with %d streams", len(streams)))
	}
	c.threads = c.threads[:0]
	for i, s := range streams {
		t := &c.thrStore[i]
		loads := t.loads[:0] // keep the FIFO's backing array across phases
		*t = thread{stream: s, now: start, start: start, spanEnd: start, spanIssue: true, loads: loads}
		c.threads = append(c.threads, t)
	}
	// burstLimit is deliberately left alone: BeginAt runs inside a
	// runStates burst when phases chain, and the horizon must survive
	// the phase boundary.
	c.demand.reset()
	c.prefetch.reset()
}

// Done reports whether all contexts have drained their streams.
func (c *Core) Done() bool {
	for _, t := range c.threads {
		if !t.done {
			return false
		}
	}
	return true
}

// NextTime returns the simulated time at which the core wants to issue its
// next op, or false when finished. System uses it for earliest-first
// interleaving across cores.
func (c *Core) NextTime() (float64, bool) {
	t := c.nextThread()
	if t == nil {
		return 0, false
	}
	return t.now, true
}

// StepEarliest advances the core's earliest runnable context by one op.
func (c *Core) StepEarliest() {
	if t := c.nextThread(); t != nil {
		c.Step(t)
	}
}

// Collect returns the timing summary of the current/finished run.
func (c *Core) Collect() CoreResult {
	res := CoreResult{Threads: make([]ThreadResult, len(c.threads))}
	for i, t := range c.threads {
		res.Threads[i] = ThreadResult{
			Cycles:        t.now,
			Issued:        t.issued,
			StallCycles:   t.stallCyc,
			ComputeCycles: t.computeCy,
		}
		if t.now > res.Cycles {
			res.Cycles = t.now
		}
	}
	return res
}

// nextThread returns the runnable context with the smallest clock (ties
// go to the lower index, as a front-to-back scan would give). It is
// specialized for the only legal shapes — zero, one, or two contexts —
// because it runs once per simulated op.
func (c *Core) nextThread() *thread {
	switch len(c.threads) {
	case 1:
		if t := c.threads[0]; !t.done {
			return t
		}
	case 2:
		a, b := c.threads[0], c.threads[1]
		switch {
		case a.done && b.done:
		case a.done:
			return b
		case b.done:
			return a
		case b.now < a.now:
			return b
		default:
			return a
		}
	}
	return nil
}

func (c *Core) sibling(t *thread) *thread {
	for _, o := range c.threads {
		if o != t {
			return o
		}
	}
	return nil
}

// contention returns the issue-slowdown factor in [1, 2] imposed by the
// sibling context. A sibling inside a memory-stall span costs nothing —
// its slots are donated (the SMT effect MP-HT exploits). An active
// sibling costs in proportion to its pipeline duty cycle: a compute-bound
// sibling (duty ≈ 1) halves throughput, a memory-bound sibling that only
// issues a few ops between stalls (duty ≈ 0.2) costs ~20%.
func (c *Core) contention(t *thread) float64 {
	sib := c.sibling(t)
	if sib == nil || sib.done {
		return 1
	}
	if sib.now > t.now && !sib.spanIssue {
		// Sibling's clock is ahead because it is waiting on memory.
		return 1
	}
	return 1 + sib.duty()
}

// Step executes one op from thread t.
//
// Timing rules (see DESIGN.md §5):
//   - every op pays 1/width issue cycles (width halves under contention);
//   - OpCompute additionally pays its Cost (doubled under contention);
//   - OpLoad consults the hierarchy; latencies above PipelinedLatency
//     enter the shared demand pool (stall when full) and the thread's
//     window FIFO (stall when the oldest is WindowSize ops behind);
//   - OpPrefetch consults the hierarchy but only ever occupies the
//     prefetch pool, applying backpressure when it is full;
//   - OpStore updates cache state and never stalls (write buffering).
func (c *Core) Step(t *thread) {
	prevNow := t.now
	if t.gatherLeft > 0 {
		// Resume a suspended burst without touching the stream.
		c.stepGather(t)
		c.finishStep(t, prevNow)
		return
	}
	op := &c.op
	if !t.stream.Next(op) {
		// Drain: completion waits for the thread's outstanding loads.
		if t.loadSize() > 0 {
			if last := t.loads[len(t.loads)-1].completeAt; last > t.now {
				t.stallCyc += last - t.now
				t.now = last
			}
			t.loads = t.loads[:0]
			t.loadHead = 0
		}
		t.done = true
		return
	}
	if op.Lines > 1 && (op.Kind == OpLoad || op.Kind == OpPrefetch) {
		t.gatherAddr = op.Addr
		t.gatherLeft = op.Lines
		t.gatherPf = op.Kind == OpPrefetch
		if t.gatherPf {
			t.gatherHint = op.Hint
			if !t.gatherHint.IsPrefetch() {
				t.gatherHint = memsim.KindPrefetchL1
			}
		}
		c.stepGather(t)
		c.finishStep(t, prevNow)
		return
	}
	t.seq++
	t.issued++

	factor := c.contention(t)
	width := c.params.IssueWidth / factor
	window := int(float64(c.params.WindowSize) / factor)
	t.spanIssue = true
	issueCyc := 1 / width
	t.now += issueCyc
	t.activeCyc += issueCyc

	switch op.Kind {
	case OpCompute:
		cost := op.Cost * factor
		t.now += cost
		t.activeCyc += cost
		t.computeCy += cost

	case OpStore:
		c.hier.Access(int64(t.now), op.Addr, memsim.KindStore)

	case OpLoad:
		c.execLoad(t, op.Addr, window)

	case OpPrefetch:
		hint := op.Hint
		if !hint.IsPrefetch() {
			hint = memsim.KindPrefetchL1
		}
		c.execPrefetch(t, op.Addr, hint)

	default:
		panic(fmt.Sprintf("cpusim: unknown op kind %d", op.Kind))
	}
	c.finishStep(t, prevNow)
}

// finishStep closes one Step: span bookkeeping plus the monotonic-clock
// assertion. Per-thread event times are monotonic: every Step rule only
// ever advances the clock, and the aggregation above (phase chaining,
// fixed-point iteration) depends on it. The Enabled guard keeps the
// variadic boxing off the disabled hot path (zero-alloc guards).
func (c *Core) finishStep(t *thread, prevNow float64) {
	t.spanEnd = t.now
	if check.Enabled {
		check.Assert(t.now >= prevNow && !math.IsNaN(t.now),
			"cpusim: thread clock moved backwards (%g -> %g)", prevNow, t.now)
	}
}

// execLoad runs one demand-load line: hierarchy access, fill-buffer and
// MLP admission, then window occupancy — retire completed loads and
// stall if the oldest incomplete one is too far behind.
func (c *Core) execLoad(t *thread, addr memsim.Addr, window int) {
	res := c.hier.Access(int64(t.now), addr, memsim.KindLoad)
	if res.Latency > c.params.PipelinedLatency {
		completeAt := t.now + float64(res.Latency)
		c.demand.drainBefore(t.now)
		c.prefetch.drainBefore(t.now)
		if c.demand.size() >= c.params.DemandMLP {
			c.stallUntil(t, c.demand.front())
			c.demand.popFront()
		}
		if c.demand.size()+c.prefetch.size() >= c.params.FillBuffers {
			c.stallUntil(t, c.earliestFill())
			c.popEarliestFill()
		}
		c.demand.insert(completeAt)
		t.pushLoad(inflightLoad{completeAt: completeAt, seq: t.seq})
	}
	t.trimLoads()
	if t.loadSize() > 0 && t.seq-t.loads[t.loadHead].seq >= int64(window) {
		c.stallUntil(t, t.loads[t.loadHead].completeAt)
		t.popLoad()
	}
}

// execPrefetch runs one software-prefetch line: it occupies the
// prefetch pool (backpressure when the fill buffers are full) but never
// the instruction window.
func (c *Core) execPrefetch(t *thread, addr memsim.Addr, hint memsim.AccessKind) {
	res := c.hier.Access(int64(t.now), addr, hint)
	if res.Latency > c.params.PipelinedLatency {
		c.demand.drainBefore(t.now)
		c.prefetch.drainBefore(t.now)
		if c.demand.size()+c.prefetch.size() >= c.params.FillBuffers {
			c.stallUntil(t, c.earliestFill())
			c.popEarliestFill()
		}
		c.prefetch.insert(t.now + float64(res.Latency))
	}
}

// stepGather advances a multi-line burst (Op.Lines > 1), line by line.
// Each line repeats the single-op rules bit for bit — issue cycles,
// contention factor, window and fill-buffer stalls — so timing is
// identical to per-line emission; the burst only skips the per-line
// trip through Stream.Next and the scheduler. Between lines it suspends
// exactly where the per-op drivers would have run someone else: when
// nextThread picks the SMT sibling, or when the clock passes the
// cross-core burstLimit. The remaining lines resume on the next Step.
func (c *Core) stepGather(t *thread) {
	for {
		t.seq++
		t.issued++
		factor := c.contention(t)
		width := c.params.IssueWidth / factor
		t.spanIssue = true
		issueCyc := 1 / width
		t.now += issueCyc
		t.activeCyc += issueCyc
		if t.gatherPf {
			c.execPrefetch(t, t.gatherAddr, t.gatherHint)
		} else {
			window := int(float64(c.params.WindowSize) / factor)
			c.execLoad(t, t.gatherAddr, window)
		}
		t.gatherAddr += memsim.LineSize
		t.gatherLeft--
		if t.gatherLeft == 0 {
			return
		}
		if t.now > c.burstLimit || c.nextThread() != t {
			return
		}
	}
}

// earliestFill returns the soonest completion time across both fill
// pools (the pools are non-empty in aggregate when called).
func (c *Core) earliestFill() float64 {
	switch {
	case c.demand.size() == 0:
		return c.prefetch.front()
	case c.prefetch.size() == 0:
		return c.demand.front()
	case c.demand.front() <= c.prefetch.front():
		return c.demand.front()
	default:
		return c.prefetch.front()
	}
}

// popEarliestFill removes the entry earliestFill returned.
func (c *Core) popEarliestFill() {
	switch {
	case c.demand.size() == 0:
		c.prefetch.popFront()
	case c.prefetch.size() == 0:
		c.demand.popFront()
	case c.demand.front() <= c.prefetch.front():
		c.demand.popFront()
	default:
		c.prefetch.popFront()
	}
}

// stallUntil advances t to wake (if in the future), accounting the stall
// and marking the span as non-issuing so the sibling inherits the slots.
func (c *Core) stallUntil(t *thread, wake float64) {
	if wake > t.now {
		t.stallCyc += wake - t.now
		t.now = wake
		t.spanIssue = false
	}
}

func (t *thread) loadSize() int { return len(t.loads) - t.loadHead }

// pushLoad appends to the in-flight FIFO, compacting the consumed head
// space first when the backing array is full (same policy as
// fillPool.insert: the memmove happens once per wrap, not per retire).
func (t *thread) pushLoad(l inflightLoad) {
	if t.loadHead > 0 && len(t.loads) == cap(t.loads) {
		n := copy(t.loads, t.loads[t.loadHead:])
		t.loads = t.loads[:n]
		t.loadHead = 0
	}
	t.loads = append(t.loads, l)
}

// popLoad drops the FIFO's front (an index bump, not a memmove).
func (t *thread) popLoad() {
	t.loadHead++
	if t.loadHead == len(t.loads) {
		t.loads = t.loads[:0]
		t.loadHead = 0
	}
}

// trimLoads retires loads completed by now (the FIFO ascends in
// completeAt order only approximately — it ascends in seq; completion
// times are whatever the hierarchy returned — so it stops at the first
// still-outstanding entry, exactly like the copy-based version).
func (t *thread) trimLoads() {
	h := t.loadHead
	for h < len(t.loads) && t.loads[h].completeAt <= t.now {
		h++
	}
	if h == len(t.loads) {
		t.loads = t.loads[:0]
		t.loadHead = 0
		return
	}
	t.loadHead = h
}
