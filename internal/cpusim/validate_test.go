package cpusim

import (
	"math"
	"testing"

	"dlrmsim/internal/memsim"
)

// Simulator self-validation: classic microbenchmarks driven through the
// timing model must recover the hardware parameters they were configured
// with. These are the sanity anchors behind every figure the repository
// reproduces.

// pointerChase emits n serialized loads: each load is followed by enough
// window pressure (window=2 core) to expose full latency. We model the
// dependency by running on a core with WindowSize=2 so no two misses
// overlap.
func chaseCore(mp memsim.MemParams) *Core {
	p := testCoreParams()
	p.WindowSize = 2 // serialize: the next load can't issue past an incomplete one
	return NewCore(p, memsim.NewHierarchy(mp, memsim.NewShared(mp)))
}

func TestValidateDRAMLatencyRecovered(t *testing.T) {
	// A single cold load followed by the stream-end drain measures the
	// full miss latency: L3 (50) + DRAM base (200).
	mp := testMemParams(false)
	res := chaseCore(mp).Run(NewSliceStream(coldLoads(1, 0)))
	if res.Cycles < 250 || res.Cycles > 252 {
		t.Fatalf("cold-load completion = %.2f cycles, configured 250", res.Cycles)
	}
}

func TestValidateWindow2ChaseFloorsAtHalfLatency(t *testing.T) {
	// The model has no explicit data dependencies: a new load issues and
	// *then* the window stall applies, so the tightest serialization a
	// WindowSize=2 core can express keeps two misses in flight —
	// latency/2 per step. This pins down that documented behavior.
	mp := testMemParams(false)
	const n = 200
	var ops []Op
	for i := 0; i < n; i++ {
		ops = append(ops,
			Op{Kind: OpLoad, Addr: memsim.Addr(i) * 8192},
			Op{Kind: OpCompute, Cost: 0})
	}
	res := chaseCore(mp).Run(NewSliceStream(ops))
	perMiss := res.Cycles / n
	if perMiss < 115 || perMiss > 140 {
		t.Fatalf("window-2 chase cost = %.1f cycles/step, want ~125 (latency/2)", perMiss)
	}
}

func TestValidateL1LatencyRecovered(t *testing.T) {
	mp := testMemParams(false)
	core := chaseCore(mp)
	// Warm a line then chase it: per-access cost ≈ issue only (hits are
	// pipelined below PipelinedLatency).
	ops := []Op{{Kind: OpLoad, Addr: 0}, {Kind: OpCompute, Cost: 300}}
	for i := 0; i < 100; i++ {
		ops = append(ops, Op{Kind: OpLoad, Addr: 0})
	}
	res := core.Run(NewSliceStream(ops))
	hier := core.Hierarchy()
	// All but the first access hit L1.
	if hits := hier.L1.Stats.DemandHits; hits != 100 {
		t.Fatalf("L1 hits = %d", hits)
	}
	perHit := (res.Cycles - 300 - 250) / 100
	if perHit > 2 {
		t.Fatalf("L1-hit loop cost %.2f cycles per access, want ~issue-bound", perHit)
	}
}

func TestValidateStreamingBandwidthBounded(t *testing.T) {
	// A pure streaming read at full MLP cannot exceed the configured
	// DRAM peak, and should get reasonably close to the per-core fill
	// limit min(peak, MLP×64/latency).
	mp := testMemParams(false)
	sys := NewSystem(SystemParams{Core: testCoreParams(), Mem: mp, Cores: 1})
	res := sys.Run([]CoreWork{SingleWork(loadFactory(4000, 0))})
	peak := mp.DRAM.PeakBandwidthBytesPerCyc
	if res.BandwidthBytesPerCyc > peak {
		t.Fatalf("realized %.2f B/cyc exceeds peak %.2f", res.BandwidthBytesPerCyc, peak)
	}
	mlpLimit := float64(testCoreParams().DemandMLP) * memsim.LineSize / 250
	if res.BandwidthBytesPerCyc < 0.5*math.Min(peak, mlpLimit) {
		t.Fatalf("realized %.2f B/cyc far below the %.2f fill limit",
			res.BandwidthBytesPerCyc, math.Min(peak, mlpLimit))
	}
}

func TestValidateMLPRecovered(t *testing.T) {
	// With a huge window and independent misses, sustained misses per
	// unit time ≈ DemandMLP / missLatency.
	mp := testMemParams(false)
	p := testCoreParams()
	p.DemandMLP = 8
	p.FillBuffers = 10
	core := NewCore(p, memsim.NewHierarchy(mp, memsim.NewShared(mp)))
	const n = 800
	res := core.Run(NewSliceStream(coldLoads(n, 0)))
	effMLP := float64(n) * 250 / res.Cycles
	if effMLP < 6.5 || effMLP > 9.5 {
		t.Fatalf("effective MLP = %.2f, configured 8", effMLP)
	}
}

func TestValidateIssueWidthRecovered(t *testing.T) {
	mp := testMemParams(false)
	p := testCoreParams()
	p.IssueWidth = 4
	core := NewCore(p, memsim.NewHierarchy(mp, memsim.NewShared(mp)))
	// 4000 zero-cost compute ops: time ≈ n / width.
	res := core.Run(NewSliceStream(computeOps(4000, 0)))
	ipc := 4000 / res.Cycles
	if math.Abs(ipc-4) > 0.2 {
		t.Fatalf("IPC = %.2f, configured width 4", ipc)
	}
}

// TestValidateRooflineLowerBound: any simulated embedding-like run must
// take at least max(bytes/peakBW, issueTime) — the roofline bound. If the
// simulator ever beats it, the timing model is broken.
func TestValidateRooflineLowerBound(t *testing.T) {
	mp := testMemParams(false)
	sys := NewSystem(SystemParams{Core: testCoreParams(), Mem: mp, Cores: 2})
	mk := func(core int) CoreWork {
		return SingleWork(loadFactory(2000, memsim.Addr(core)<<32))
	}
	res := sys.Run([]CoreWork{mk(0), mk(1)})
	bwBound := float64(res.DRAMBytes) / mp.DRAM.PeakBandwidthBytesPerCyc
	issueBound := 2000.0 / testCoreParams().IssueWidth
	lower := math.Max(bwBound, issueBound)
	if res.Cycles < lower {
		t.Fatalf("simulated %.0f cycles beats the roofline bound %.0f", res.Cycles, lower)
	}
}

// TestValidateSMTThroughputCeiling: two SMT threads can never exceed the
// core's single-thread issue throughput.
func TestValidateSMTThroughputCeiling(t *testing.T) {
	one := newTestCore(false).Run(NewSliceStream(computeOps(2000, 0)))
	pair := newTestCore(false).Run(
		NewSliceStream(computeOps(1000, 0)),
		NewSliceStream(computeOps(1000, 0)))
	// The same 2000 ops split across siblings must not finish faster.
	if pair.Cycles < one.Cycles*0.95 {
		t.Fatalf("SMT pair (%.0f) beat single-thread issue (%.0f)", pair.Cycles, one.Cycles)
	}
}
