package cpusim

import (
	"fmt"
	"math"

	"dlrmsim/internal/memsim"
)

// NUMAParams configures a multi-socket run. Each socket gets its own LLC
// and DRAM; memory lines are page-interleaved across sockets, and a core
// filling a line homed on the other socket pays the interconnect penalty
// and consumes the remote socket's bandwidth — the standard first-order
// NUMA model.
//
// The paper's testbed is a 2-socket 6240R pinned to one socket; this
// extension quantifies what unpinned, interleaved execution would cost.
type NUMAParams struct {
	Core CoreParams
	Mem  memsim.MemParams
	// Sockets is the socket count (≥ 1).
	Sockets int
	// CoresPerSocket cores are instantiated per socket.
	CoresPerSocket int
	// RemotePenaltyCyc is the extra latency of a remote-socket fill
	// (~60-90 ns on UPI; in cycles at the core clock).
	RemotePenaltyCyc int64
	// BandwidthIterations bounds the per-socket DRAM fixed point
	// (default 3).
	BandwidthIterations int
}

// NUMAResult extends the flat metrics with per-socket bandwidth.
type NUMAResult struct {
	// Cycles is the completion time of the slowest core.
	Cycles float64
	// PerCore holds per-core results (socket-major order).
	PerCore []CoreRunResult
	// SocketBandwidthBytesPerCyc is realized DRAM bandwidth per socket.
	SocketBandwidthBytesPerCyc []float64
	// RemoteFillFraction is the fraction of DRAM fills served by a
	// non-local socket.
	RemoteFillFraction float64
	// AvgLoadLatency is the mean demand-load latency across cores.
	AvgLoadLatency float64
}

// NUMASystem owns the sockets of a multi-socket node.
type NUMASystem struct {
	params  NUMAParams
	shareds []*memsim.Shared
	cores   []*Core // socket-major: cores[s*CoresPerSocket + i]
}

// NewNUMASystem builds the node. It panics on invalid configuration.
func NewNUMASystem(p NUMAParams) *NUMASystem {
	if p.Sockets < 1 || p.CoresPerSocket < 1 {
		panic(fmt.Sprintf("cpusim: %d sockets x %d cores", p.Sockets, p.CoresPerSocket))
	}
	if err := p.Core.Validate(); err != nil {
		panic(err)
	}
	if p.BandwidthIterations <= 0 {
		p.BandwidthIterations = 3
	}
	n := &NUMASystem{params: p}
	for s := 0; s < p.Sockets; s++ {
		n.shareds = append(n.shareds, memsim.NewShared(p.Mem))
	}
	// Page-interleaved homing plus cross-references between sockets.
	// (Only the 2-socket case wires Remote; more sockets would need a
	// multi-way Remote, which no modeled platform requires.)
	if p.Sockets == 2 {
		for s := 0; s < 2; s++ {
			sid := s
			n.shareds[s].Remote = n.shareds[1-s].DRAM
			n.shareds[s].RemotePenaltyCyc = p.RemotePenaltyCyc
			n.shareds[s].HomeLocal = func(a memsim.Addr) bool {
				return int(a>>12)%2 == sid
			}
		}
	}
	for s := 0; s < p.Sockets; s++ {
		for i := 0; i < p.CoresPerSocket; i++ {
			hier := memsim.NewHierarchy(p.Mem, n.shareds[s])
			n.cores = append(n.cores, NewCore(p.Core, hier))
		}
	}
	return n
}

// Cores returns the total core count (socket-major indexing).
func (n *NUMASystem) Cores() int { return len(n.cores) }

// Run simulates per-core work (socket-major order), resolving each
// socket's DRAM utilization by fixed point.
func (n *NUMASystem) Run(work []CoreWork) NUMAResult {
	if len(work) > len(n.cores) {
		panic(fmt.Sprintf("cpusim: %d work items for %d cores", len(work), len(n.cores)))
	}
	rho := make([]float64, n.params.Sockets)
	var res NUMAResult
	for iter := 0; iter < n.params.BandwidthIterations; iter++ {
		for s, sh := range n.shareds {
			sh.Reset()
			sh.DRAM.SetUtilization(rho[s])
		}
		res = n.runOnce(work)
		if res.Cycles <= 0 {
			break
		}
		converged := true
		for s := range rho {
			realized := res.SocketBandwidthBytesPerCyc[s] / n.params.Mem.DRAM.PeakBandwidthBytesPerCyc
			if math.Abs(realized-rho[s]) >= 0.01 {
				converged = false
			}
			rho[s] = (rho[s] + realized) / 2
		}
		if converged {
			break
		}
	}
	return res
}

func (n *NUMASystem) runOnce(work []CoreWork) NUMAResult {
	states := make([]*coreState, 0, len(work))
	for i, w := range work {
		core := n.cores[i]
		core.Hierarchy().Reset()
		cs := &coreState{core: core, work: w}
		if len(w.Phases) == 0 {
			cs.done = true
		} else {
			cs.beginPhase()
		}
		states = append(states, cs)
	}
	runStates(states)

	res := NUMAResult{
		PerCore:                    make([]CoreRunResult, len(states)),
		SocketBandwidthBytesPerCyc: make([]float64, n.params.Sockets),
	}
	var loads uint64
	var latSum int64
	for i, cs := range states {
		res.PerCore[i] = cs.res
		if cs.res.Cycles > res.Cycles {
			res.Cycles = cs.res.Cycles
		}
		hs := cs.core.Hierarchy().Stats
		loads += hs.Loads
		latSum += hs.LoadLatencySum
	}
	if loads > 0 {
		res.AvgLoadLatency = float64(latSum) / float64(loads)
	}
	if res.Cycles > 0 {
		var total, remote uint64
		for s, sh := range n.shareds {
			res.SocketBandwidthBytesPerCyc[s] = float64(sh.DRAM.Stats.BytesRead) / res.Cycles
			total += sh.DRAM.Stats.LineFills
		}
		// Remote fraction: fills whose requester lived on the other
		// socket. With page interleaving and symmetric load, each
		// socket's DRAM serves ~half of each side's fills; measure it
		// directly from the homing function by sampling the recorded
		// traffic split instead: a fill recorded on socket s from a core
		// on socket s' != s is remote. The DRAM stats don't track the
		// requester, so approximate by traffic imbalance when only one
		// socket has cores active.
		if n.params.Sockets == 2 {
			active := [2]bool{}
			for i := range states {
				active[i/n.params.CoresPerSocket] = true
			}
			if active[0] != active[1] {
				// Single-socket workload: everything recorded on the
				// idle socket's DRAM is remote traffic.
				idle := 0
				if active[0] {
					idle = 1
				}
				remote = n.shareds[idle].DRAM.Stats.LineFills
			}
		}
		if total > 0 {
			res.RemoteFillFraction = float64(remote) / float64(total)
		}
	}
	return res
}
