package cpusim

import (
	"errors"
	"fmt"
	"math"

	"dlrmsim/internal/memsim"
)

// SystemParams configures a multi-core run.
type SystemParams struct {
	Core CoreParams
	Mem  memsim.MemParams
	// Cores is the number of physical cores to instantiate.
	Cores int
	// BandwidthIterations is how many fixed-point refinements of the DRAM
	// utilization to run (see DESIGN.md §5). 0 means the default of 3.
	BandwidthIterations int
	// InitialUtilization seeds the fixed point; useful when the caller
	// already knows the run is bandwidth-bound.
	InitialUtilization float64
}

// Validate reports every problem with the system parameters at once
// (errors.Join): the core's microarchitectural knobs, the full memory
// geometry, the core count, and the fixed-point controls. NewSystem
// panics on the same conditions; Validate is the fail-fast front door for
// config layers and CLIs.
func (p SystemParams) Validate() error {
	var errs []error
	if p.Cores < 1 {
		errs = append(errs, fmt.Errorf("cpusim: %d cores", p.Cores))
	}
	if err := p.Core.Validate(); err != nil {
		errs = append(errs, err)
	}
	if err := p.Mem.Validate(); err != nil {
		errs = append(errs, err)
	}
	if p.BandwidthIterations < 0 {
		errs = append(errs, fmt.Errorf("cpusim: negative bandwidth iterations %d", p.BandwidthIterations))
	}
	if p.InitialUtilization < 0 || p.InitialUtilization >= 1 {
		errs = append(errs, fmt.Errorf("cpusim: initial utilization %g outside [0,1)", p.InitialUtilization))
	}
	return errors.Join(errs...)
}

// Validate rejects SMT shapes the core cannot execute: every phase must
// run one or two streams (one hardware context or an SMT sibling pair).
func (w CoreWork) Validate() error {
	for i, ph := range w.Phases {
		if len(ph.Streams) < 1 || len(ph.Streams) > 2 {
			return fmt.Errorf("cpusim: phase %d (%q) has %d streams; SMT contexts are 1 or 2", i, ph.Label, len(ph.Streams))
		}
	}
	return nil
}

// Phase is one stage of a core's pipeline: one stream runs the phase
// single-threaded, two run as SMT siblings (e.g. MP-HT's embedding +
// Bottom-MLP pair). Phases of one core run back to back; different cores
// are independent.
type Phase struct {
	// Label names the phase in results (e.g. "embedding", "bottom-mlp").
	Label string
	// Streams holds 1 or 2 stream factories.
	Streams []StreamFactory
}

// CoreWork is the phased workload for one core.
type CoreWork struct {
	Phases []Phase
}

// SingleWork wraps plain streams as a one-phase CoreWork (convenience for
// workloads without stage structure).
func SingleWork(streams ...StreamFactory) CoreWork {
	return CoreWork{Phases: []Phase{{Label: "work", Streams: streams}}}
}

// PhaseResult reports one executed phase on one core.
type PhaseResult struct {
	Label string
	// Start and End are absolute simulated times; End-Start is the
	// phase's duration on that core.
	Start, End float64
	// Threads holds the per-SMT-context stats for the phase.
	Threads []ThreadResult
}

// CoreRunResult aggregates one core's phased execution.
type CoreRunResult struct {
	// Cycles is the core's total completion time.
	Cycles float64
	// Phases lists per-phase results in execution order.
	Phases []PhaseResult
}

// PhaseCycles returns the summed duration of all phases with the label.
func (c CoreRunResult) PhaseCycles(label string) float64 {
	var total float64
	for _, p := range c.Phases {
		if p.Label == label {
			total += p.End - p.Start
		}
	}
	return total
}

// SystemResult aggregates a multi-core simulation.
type SystemResult struct {
	// Cycles is the completion time of the slowest core.
	Cycles float64
	// PerCore holds each core's result, index-aligned with the work.
	PerCore []CoreRunResult
	// DRAMBytes is the total traffic the run moved from memory.
	DRAMBytes uint64
	// BandwidthBytesPerCyc is realized DRAM bandwidth (bytes/cycle).
	BandwidthBytesPerCyc float64
	// BandwidthUtilization is realized bandwidth over the platform peak.
	BandwidthUtilization float64
	// AvgLoadLatency is the demand-load latency averaged over all cores.
	AvgLoadLatency float64
	// L1HitRate, L2HitRate, L3HitRate are demand hit rates aggregated
	// over all cores.
	L1HitRate, L2HitRate, L3HitRate float64
	// SWPrefetches counts software prefetch ops issued across cores.
	SWPrefetches uint64
}

// MeanPhaseCycles returns the mean duration of the labeled phase across
// cores that executed it.
func (r SystemResult) MeanPhaseCycles(label string) float64 {
	var total float64
	n := 0
	for _, c := range r.PerCore {
		for _, p := range c.Phases {
			if p.Label == label {
				total += p.End - p.Start
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// MeanCoreCycles returns the mean completion time across active cores —
// the per-batch latency when each core processes one batch.
func (r SystemResult) MeanCoreCycles() float64 {
	if len(r.PerCore) == 0 {
		return 0
	}
	var total float64
	for _, c := range r.PerCore {
		total += c.Cycles
	}
	return total / float64(len(r.PerCore))
}

// System owns the cores and shared memory of one simulated socket.
type System struct {
	params SystemParams
	shared *memsim.Shared
	cores  []*Core
}

// NewSystem builds a socket with params.Cores cores. It panics on invalid
// configuration.
func NewSystem(params SystemParams) *System {
	if params.Cores < 1 {
		panic(fmt.Sprintf("cpusim: %d cores", params.Cores))
	}
	if err := params.Core.Validate(); err != nil {
		panic(err)
	}
	if params.BandwidthIterations <= 0 {
		params.BandwidthIterations = 3
	}
	s := &System{params: params, shared: memsim.NewShared(params.Mem)}
	for i := 0; i < params.Cores; i++ {
		hier := memsim.NewHierarchy(params.Mem, s.shared)
		s.cores = append(s.cores, NewCore(params.Core, hier))
	}
	return s
}

// Shared exposes the socket's LLC and DRAM.
func (s *System) Shared() *memsim.Shared { return s.shared }

// Cores returns the core count.
func (s *System) Cores() int { return len(s.cores) }

// Core returns core i (for counter inspection after a run).
func (s *System) Core(i int) *Core { return s.cores[i] }

// Run simulates the given per-core work to completion. len(work) must not
// exceed the core count; unassigned cores stay idle. Cores interleave
// earliest-first in simulated time, so shared-LLC interactions
// (constructive and destructive) happen in causal order.
//
// DRAM bandwidth is resolved by fixed point: the run is simulated with a
// guessed utilization ρ, the realized utilization is measured, and the
// guess is updated (damped) until the iteration budget is spent or the
// guess converges. The final iteration's state is returned.
func (s *System) Run(work []CoreWork) SystemResult {
	if len(work) > len(s.cores) {
		panic(fmt.Sprintf("cpusim: %d work items for %d cores", len(work), len(s.cores)))
	}
	rho := s.params.InitialUtilization
	var res SystemResult
	for iter := 0; iter < s.params.BandwidthIterations; iter++ {
		s.shared.Reset()
		s.shared.DRAM.SetUtilization(rho)
		res = s.runOnce(work)
		if res.Cycles <= 0 {
			break
		}
		realized := res.BandwidthUtilization
		if math.Abs(realized-rho) < 0.01 {
			break
		}
		rho = (rho + realized) / 2
	}
	return res
}

type coreState struct {
	core       *Core
	work       CoreWork
	phase      int
	phaseStart float64
	res        CoreRunResult
	done       bool
}

func (cs *coreState) beginPhase() {
	ph := cs.work.Phases[cs.phase]
	streams := make([]Stream, len(ph.Streams))
	for i, f := range ph.Streams {
		streams[i] = f()
	}
	cs.core.BeginAt(cs.phaseStart, streams...)
}

func (cs *coreState) finishPhase() {
	ph := cs.work.Phases[cs.phase]
	cr := cs.core.Collect()
	end := cr.Cycles
	if end < cs.phaseStart {
		end = cs.phaseStart
	}
	cs.res.Phases = append(cs.res.Phases, PhaseResult{
		Label: ph.Label, Start: cs.phaseStart, End: end, Threads: cr.Threads,
	})
	cs.phase++
	if cs.phase < len(cs.work.Phases) {
		cs.phaseStart = end
		cs.beginPhase()
		return
	}
	cs.res.Cycles = end
	cs.done = true
}

func (s *System) runOnce(work []CoreWork) SystemResult {
	states := make([]*coreState, 0, len(work))
	for i, w := range work {
		core := s.cores[i]
		core.Hierarchy().Reset()
		cs := &coreState{core: core, work: w}
		if len(w.Phases) == 0 {
			cs.done = true
		} else {
			cs.beginPhase()
		}
		states = append(states, cs)
	}

	runStates(states)

	res := SystemResult{PerCore: make([]CoreRunResult, len(states))}
	var loads, l1h, l1m, l2h, l2m, swpf uint64
	var latSum int64
	for i, cs := range states {
		res.PerCore[i] = cs.res
		if cs.res.Cycles > res.Cycles {
			res.Cycles = cs.res.Cycles
		}
		hs := cs.core.Hierarchy().Stats
		loads += hs.Loads
		latSum += hs.LoadLatencySum
		swpf += hs.SWPrefetches
		l1h += cs.core.Hierarchy().L1.Stats.DemandHits
		l1m += cs.core.Hierarchy().L1.Stats.DemandMisses
		l2h += cs.core.Hierarchy().L2.Stats.DemandHits
		l2m += cs.core.Hierarchy().L2.Stats.DemandMisses
	}
	res.DRAMBytes = s.shared.DRAM.Stats.BytesRead
	if res.Cycles > 0 {
		res.BandwidthBytesPerCyc = float64(res.DRAMBytes) / res.Cycles
		res.BandwidthUtilization = res.BandwidthBytesPerCyc / s.params.Mem.DRAM.PeakBandwidthBytesPerCyc
	}
	if loads > 0 {
		res.AvgLoadLatency = float64(latSum) / float64(loads)
	}
	res.L1HitRate = rate(l1h, l1m)
	res.L2HitRate = rate(l2h, l2m)
	res.SWPrefetches = swpf
	l3 := s.shared.L3.Stats
	res.L3HitRate = rate(l3.DemandHits, l3.DemandMisses)
	return res
}

// runStates drives a set of per-core phase state machines to completion
// with earliest-first interleaving. The earliest core is stepped in a
// burst until its clock passes the runner-up: cores only interact through
// the shared LLC and DRAM, so sub-runner-up reordering is unobservable,
// and the burst removes the per-op scheduling scan.
func runStates(states []*coreState) {
	for {
		var best *coreState
		bestT, nextT := math.Inf(1), math.Inf(1)
		for _, cs := range states {
			if cs.done {
				continue
			}
			t, ok := cs.core.NextTime()
			if !ok {
				continue
			}
			if t < bestT {
				best, bestT, nextT = cs, t, bestT
			} else if t < nextT {
				nextT = t
			}
		}
		if best == nil {
			break
		}
		// Multi-line bursts inside Step suspend at the same horizon the
		// per-op check below enforces, so a gather cannot overrun the
		// runner-up core by more than one line.
		best.core.burstLimit = nextT
		for {
			best.core.StepEarliest()
			for !best.done && best.core.Done() {
				best.finishPhase()
			}
			if best.done {
				break
			}
			if t, ok := best.core.NextTime(); !ok || t > nextT {
				break
			}
		}
	}
}

func rate(h, m uint64) float64 {
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}
