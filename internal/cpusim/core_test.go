package cpusim

import (
	"testing"

	"dlrmsim/internal/memsim"
)

func testMemParams(hwpf bool) memsim.MemParams {
	return memsim.MemParams{
		L1:         memsim.CacheConfig{Name: "L1D", SizeBytes: 32 << 10, Ways: 8, LatencyCyc: 5},
		L2:         memsim.CacheConfig{Name: "L2", SizeBytes: 1 << 20, Ways: 16, LatencyCyc: 14},
		L3:         memsim.CacheConfig{Name: "L3", SizeBytes: 8 << 20, Ways: 11, LatencyCyc: 50},
		DRAM:       memsim.DRAMConfig{BaseLatencyCyc: 200, PeakBandwidthBytesPerCyc: 58, QueueSensitivity: 1},
		HWPrefetch: hwpf,
	}
}

func testCoreParams() CoreParams {
	return CoreParams{
		IssueWidth:       4,
		WindowSize:       224,
		DemandMLP:        10,
		FillBuffers:      12,
		PipelinedLatency: 14,
	}
}

func newTestCore(hwpf bool) *Core {
	mp := testMemParams(hwpf)
	return NewCore(testCoreParams(), memsim.NewHierarchy(mp, memsim.NewShared(mp)))
}

func computeOps(n int, cost float64) []Op {
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = Op{Kind: OpCompute, Cost: cost}
	}
	return ops
}

// coldLoads builds n loads to distinct lines far apart (no spatial reuse).
func coldLoads(n int, base memsim.Addr) []Op {
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = Op{Kind: OpLoad, Addr: base + memsim.Addr(i)*8192}
	}
	return ops
}

func TestComputeOnlyTiming(t *testing.T) {
	c := newTestCore(false)
	res := c.Run(NewSliceStream(computeOps(100, 2)))
	// 100 ops × (0.25 issue + 2 compute) = 225 cycles.
	if res.Cycles < 220 || res.Cycles > 230 {
		t.Fatalf("compute-only cycles = %g", res.Cycles)
	}
	if res.Threads[0].Issued != 100 {
		t.Fatalf("issued = %d", res.Threads[0].Issued)
	}
}

func TestL1HitLoadsAreFast(t *testing.T) {
	c := newTestCore(false)
	// Warm one line, then hammer it.
	ops := []Op{{Kind: OpLoad, Addr: 0x1000}}
	for i := 0; i < 99; i++ {
		ops = append(ops, Op{Kind: OpLoad, Addr: 0x1000})
	}
	res := c.Run(NewSliceStream(ops))
	// One cold miss (~250) plus 99 pipelined hits (~0.25 each).
	if res.Cycles > 400 {
		t.Fatalf("hit-dominated stream took %g cycles", res.Cycles)
	}
}

func TestMissOverlapWithinMLP(t *testing.T) {
	c := newTestCore(false)
	res := c.Run(NewSliceStream(coldLoads(100, 0)))
	serial := 100.0 * 250
	// With DemandMLP=10 the misses overlap ~10 deep.
	if res.Cycles > serial/4 {
		t.Fatalf("no overlap: %g cycles vs serial %g", res.Cycles, serial)
	}
	if res.Cycles < serial/15 {
		t.Fatalf("too much overlap: %g cycles", res.Cycles)
	}
}

func TestDemandMLPCapMatters(t *testing.T) {
	mp := testMemParams(false)
	wide := testCoreParams()
	narrow := testCoreParams()
	narrow.DemandMLP = 1
	cw := NewCore(wide, memsim.NewHierarchy(mp, memsim.NewShared(mp)))
	cn := NewCore(narrow, memsim.NewHierarchy(mp, memsim.NewShared(mp)))
	rw := cw.Run(NewSliceStream(coldLoads(50, 0)))
	rn := cn.Run(NewSliceStream(coldLoads(50, 0)))
	if rn.Cycles < 3*rw.Cycles {
		t.Fatalf("MLP=1 (%g) should be much slower than MLP=10 (%g)", rn.Cycles, rw.Cycles)
	}
}

func TestWindowLimitsMLP(t *testing.T) {
	mp := testMemParams(false)
	small := testCoreParams()
	small.WindowSize = 2
	cs := NewCore(small, memsim.NewHierarchy(mp, memsim.NewShared(mp)))
	cl := newTestCore(false)
	rs := cs.Run(NewSliceStream(coldLoads(50, 0)))
	rl := cl.Run(NewSliceStream(coldLoads(50, 0)))
	if rs.Cycles < 2*rl.Cycles {
		t.Fatalf("window=2 (%g) should be much slower than window=224 (%g)", rs.Cycles, rl.Cycles)
	}
}

func TestTimelyPrefetchHidesMissLatency(t *testing.T) {
	// Prefetch every line ~1000 cycles of compute before its demand load.
	var ops []Op
	n := 20
	for i := 0; i < n; i++ {
		ops = append(ops, Op{Kind: OpPrefetch, Addr: memsim.Addr(i) * 8192, Hint: memsim.KindPrefetchL1})
	}
	ops = append(ops, computeOps(10, 100)...) // 1000 cycles of cover
	for i := 0; i < n; i++ {
		ops = append(ops, Op{Kind: OpLoad, Addr: memsim.Addr(i) * 8192})
	}
	withPF := newTestCore(false).Run(NewSliceStream(ops))

	// Same work without the prefetches.
	var noPF []Op
	noPF = append(noPF, computeOps(10, 100)...)
	noPF = append(noPF, coldLoads(n, 0)...)
	without := newTestCore(false).Run(NewSliceStream(noPF))

	// The prefetch version still pays the compute but the loads all hit.
	if withPF.Cycles >= without.Cycles {
		t.Fatalf("prefetching didn't help: %g vs %g", withPF.Cycles, without.Cycles)
	}
}

func TestPrefetchPoolBackpressure(t *testing.T) {
	mp := testMemParams(false)
	p := testCoreParams()
	p.DemandMLP = 1
	p.FillBuffers = 1
	c := NewCore(p, memsim.NewHierarchy(mp, memsim.NewShared(mp)))
	var ops []Op
	for i := 0; i < 50; i++ {
		ops = append(ops, Op{Kind: OpPrefetch, Addr: memsim.Addr(i) * 8192, Hint: memsim.KindPrefetchL1})
	}
	res := c.Run(NewSliceStream(ops))
	// With a single prefetch slot, 50 prefetch misses serialize at ~250
	// cycles each (minus one unstalled tail).
	if res.Cycles < 40*250 {
		t.Fatalf("prefetch backpressure missing: %g cycles", res.Cycles)
	}
}

func TestStoresDoNotStall(t *testing.T) {
	c := newTestCore(false)
	var ops []Op
	for i := 0; i < 100; i++ {
		ops = append(ops, Op{Kind: OpStore, Addr: memsim.Addr(i) * 8192})
	}
	res := c.Run(NewSliceStream(ops))
	if res.Cycles > 100 {
		t.Fatalf("stores stalled: %g cycles", res.Cycles)
	}
}

func TestSMTOverlapsMemoryAndCompute(t *testing.T) {
	// A memory-bound stream and a compute-bound stream, run separately
	// and then as SMT siblings. SMT time must be well below the sum and
	// close to the max — the MP-HT effect.
	mem := func() []Op { return coldLoads(200, 0) }
	cmp := func() []Op { return computeOps(100, 20) }

	cm := newTestCore(false).Run(NewSliceStream(mem()))
	cc := newTestCore(false).Run(NewSliceStream(cmp()))
	both := newTestCore(false).Run(NewSliceStream(mem()), NewSliceStream(cmp()))

	sum := cm.Cycles + cc.Cycles
	maxT := cm.Cycles
	if cc.Cycles > maxT {
		maxT = cc.Cycles
	}
	if both.Cycles >= 0.9*sum {
		t.Fatalf("SMT gained nothing: both=%g sum=%g", both.Cycles, sum)
	}
	if both.Cycles < maxT {
		t.Fatalf("SMT faster than the slower member alone: %g < %g", both.Cycles, maxT)
	}
}

func TestSMTComputeComputeContends(t *testing.T) {
	// Two compute-bound threads on one core share issue slots: the pair
	// finishes in ~2x one thread's time (no free lunch).
	one := newTestCore(false).Run(NewSliceStream(computeOps(100, 5)))
	pair := newTestCore(false).Run(
		NewSliceStream(computeOps(100, 5)), NewSliceStream(computeOps(100, 5)))
	if pair.Cycles < 1.7*one.Cycles {
		t.Fatalf("compute-compute SMT too cheap: pair=%g one=%g", pair.Cycles, one.Cycles)
	}
}

func TestSMTMemoryMemoryContendsOnMSHRs(t *testing.T) {
	// Two memory-bound threads share the demand pool: per-thread latency
	// roughly doubles versus running alone — the paper's DP-HT problem.
	one := newTestCore(false).Run(NewSliceStream(coldLoads(200, 0)))
	pair := newTestCore(false).Run(
		NewSliceStream(coldLoads(200, 0)),
		NewSliceStream(coldLoads(200, 1<<30)))
	if pair.Cycles < 1.5*one.Cycles {
		t.Fatalf("memory-memory SMT too cheap: pair=%g one=%g", pair.Cycles, one.Cycles)
	}
}

func TestRunPanicsOnZeroStreams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	newTestCore(false).Run()
}

func TestCoreParamsValidate(t *testing.T) {
	good := testCoreParams()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.IssueWidth = 0
	if bad.Validate() == nil {
		t.Fatal("accepted zero issue width")
	}
	bad = good
	bad.WindowSize = 1
	if bad.Validate() == nil {
		t.Fatal("accepted window of 1")
	}
	bad = good
	bad.DemandMLP = 0
	if bad.Validate() == nil {
		t.Fatal("accepted zero MLP")
	}
}

func TestCountOps(t *testing.T) {
	s := NewSliceStream([]Op{{Kind: OpLoad}, {Kind: OpLoad}, {Kind: OpCompute}})
	counts := CountOps(s)
	if counts[OpLoad] != 2 || counts[OpCompute] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestConcatStream(t *testing.T) {
	s := NewConcatStream(
		NewSliceStream([]Op{{Kind: OpLoad, Addr: 1}}),
		NewSliceStream(nil),
		NewSliceStream([]Op{{Kind: OpCompute, Cost: 3}}),
	)
	var op Op
	if !s.Next(&op) || op.Kind != OpLoad {
		t.Fatal("first op wrong")
	}
	if !s.Next(&op) || op.Kind != OpCompute {
		t.Fatal("second op wrong")
	}
	if s.Next(&op) {
		t.Fatal("stream should be exhausted")
	}
}
