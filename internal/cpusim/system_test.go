package cpusim

import (
	"testing"

	"dlrmsim/internal/memsim"
)

func testSystemParams(cores int) SystemParams {
	return SystemParams{
		Core:  testCoreParams(),
		Mem:   testMemParams(false),
		Cores: cores,
	}
}

func loadFactory(n int, base memsim.Addr) StreamFactory {
	return func() Stream { return NewSliceStream(coldLoads(n, base)) }
}

func TestSystemSingleCoreMatchesCore(t *testing.T) {
	sys := NewSystem(testSystemParams(1))
	res := sys.Run([]CoreWork{SingleWork(loadFactory(100, 0))})
	solo := newTestCore(false).Run(NewSliceStream(coldLoads(100, 0)))
	// Same workload; the system run resolves bandwidth (utilization is
	// tiny for one core) so the times should agree within a few percent.
	ratio := res.Cycles / solo.Cycles
	if ratio < 0.9 || ratio > 1.3 {
		t.Fatalf("system=%g solo=%g", res.Cycles, solo.Cycles)
	}
}

func TestSystemMoreCoresMoreBandwidth(t *testing.T) {
	work := func(n int) []CoreWork {
		w := make([]CoreWork, n)
		for i := range w {
			// Disjoint address regions per core: pure bandwidth demand.
			w[i] = SingleWork(loadFactory(400, memsim.Addr(i)<<32))
		}
		return w
	}
	sys1 := NewSystem(testSystemParams(1))
	sys8 := NewSystem(testSystemParams(8))
	r1 := sys1.Run(work(1))
	r8 := sys8.Run(work(8))
	if r8.BandwidthBytesPerCyc <= r1.BandwidthBytesPerCyc {
		t.Fatalf("bandwidth did not scale: 1 core %.2f, 8 cores %.2f B/cyc",
			r1.BandwidthBytesPerCyc, r8.BandwidthBytesPerCyc)
	}
	// Per-batch latency may degrade but must not explode unboundedly.
	if r8.Cycles > 10*r1.Cycles {
		t.Fatalf("8-core run %gx slower than 1-core", r8.Cycles/r1.Cycles)
	}
}

func TestSystemBandwidthUtilizationBounded(t *testing.T) {
	sys := NewSystem(testSystemParams(8))
	w := make([]CoreWork, 8)
	for i := range w {
		w[i] = SingleWork(loadFactory(500, memsim.Addr(i)<<32))
	}
	res := sys.Run(w)
	if res.BandwidthUtilization < 0 || res.BandwidthUtilization > 1.01 {
		t.Fatalf("utilization = %g", res.BandwidthUtilization)
	}
}

func TestSystemConstructiveSharing(t *testing.T) {
	// Two cores touching the SAME lines: the second requester should find
	// them in the shared L3, cutting total DRAM traffic versus disjoint
	// working sets.
	shared := NewSystem(testSystemParams(2)).Run([]CoreWork{
		SingleWork(loadFactory(200, 0)),
		SingleWork(loadFactory(200, 0)),
	})
	disjoint := NewSystem(testSystemParams(2)).Run([]CoreWork{
		SingleWork(loadFactory(200, 0)),
		SingleWork(loadFactory(200, 1<<32)),
	})
	if shared.DRAMBytes >= disjoint.DRAMBytes {
		t.Fatalf("no constructive sharing: shared=%d disjoint=%d", shared.DRAMBytes, disjoint.DRAMBytes)
	}
}

func TestSystemPerCoreResults(t *testing.T) {
	sys := NewSystem(testSystemParams(3))
	res := sys.Run([]CoreWork{
		SingleWork(loadFactory(10, 0)),
		SingleWork(loadFactory(100, 1<<32)),
	})
	if len(res.PerCore) != 2 {
		t.Fatalf("per-core results = %d", len(res.PerCore))
	}
	if res.PerCore[1].Cycles <= res.PerCore[0].Cycles {
		t.Fatal("core with 10x work should be slower")
	}
	if res.Cycles != res.PerCore[1].Cycles {
		t.Fatal("system cycles should be the slowest core")
	}
}

func TestSystemHitRateCounters(t *testing.T) {
	sys := NewSystem(testSystemParams(1))
	// One cold miss, time for the fill to land, then 99 L1 hits.
	f := func() Stream {
		ops := []Op{{Kind: OpLoad, Addr: 0x4000}, {Kind: OpCompute, Cost: 300}}
		for i := 0; i < 99; i++ {
			ops = append(ops, Op{Kind: OpLoad, Addr: 0x4000})
		}
		return NewSliceStream(ops)
	}
	res := sys.Run([]CoreWork{SingleWork(f)})
	if res.L1HitRate < 0.98 {
		t.Fatalf("L1 hit rate = %g", res.L1HitRate)
	}
	if res.AvgLoadLatency > 10 {
		t.Fatalf("avg load latency = %g", res.AvgLoadLatency)
	}
}

func TestSystemPanicsOnTooMuchWork(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewSystem(testSystemParams(1)).Run([]CoreWork{{}, {}})
}

func TestSystemRunIsDeterministic(t *testing.T) {
	run := func() SystemResult {
		sys := NewSystem(testSystemParams(4))
		w := make([]CoreWork, 4)
		for i := range w {
			w[i] = SingleWork(loadFactory(100, memsim.Addr(i)<<32))
		}
		return sys.Run(w)
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.DRAMBytes != b.DRAMBytes {
		t.Fatalf("nondeterministic: %g/%d vs %g/%d", a.Cycles, a.DRAMBytes, b.Cycles, b.DRAMBytes)
	}
}
