package cpusim

import (
	"testing"

	"dlrmsim/internal/memsim"
)

func numaParams(sockets, coresPer int) NUMAParams {
	return NUMAParams{
		Core:             testCoreParams(),
		Mem:              testMemParams(false),
		Sockets:          sockets,
		CoresPerSocket:   coresPer,
		RemotePenaltyCyc: 150,
	}
}

func TestNUMASingleSocketMatchesSystem(t *testing.T) {
	work := []CoreWork{SingleWork(loadFactory(200, 0))}
	numa := NewNUMASystem(numaParams(1, 2)).Run(work)
	flat := NewSystem(testSystemParams(2)).Run(work)
	ratio := numa.Cycles / flat.Cycles
	if ratio < 0.99 || ratio > 1.01 {
		t.Fatalf("1-socket NUMA (%g) != flat system (%g)", numa.Cycles, flat.Cycles)
	}
	if numa.RemoteFillFraction != 0 {
		t.Fatalf("1-socket run reported %g remote fills", numa.RemoteFillFraction)
	}
}

func TestNUMARemoteAccessesCostMore(t *testing.T) {
	// One core on socket 0 scanning page-interleaved memory (stride of
	// one page plus a line, so consecutive accesses alternate home
	// sockets): ~half the fills are remote, so the run must be slower
	// than a UMA system and must report remote traffic.
	pageLoads := func() Stream {
		ops := make([]Op, 400)
		for i := range ops {
			ops[i] = Op{Kind: OpLoad, Addr: memsim.Addr(i) * (4096 + 64)}
		}
		return NewSliceStream(ops)
	}
	work := []CoreWork{SingleWork(func() Stream { return pageLoads() })}
	numa := NewNUMASystem(numaParams(2, 1)).Run(work)
	flat := NewSystem(testSystemParams(1)).Run(work)
	if numa.Cycles <= flat.Cycles {
		t.Fatalf("NUMA run (%g) not slower than UMA (%g)", numa.Cycles, flat.Cycles)
	}
	if numa.RemoteFillFraction < 0.3 || numa.RemoteFillFraction > 0.7 {
		t.Fatalf("remote fill fraction = %g, want ~0.5 under page interleaving", numa.RemoteFillFraction)
	}
	if numa.AvgLoadLatency <= flat.AvgLoadLatency {
		t.Fatalf("NUMA load latency %g not above UMA %g", numa.AvgLoadLatency, flat.AvgLoadLatency)
	}
}

func TestNUMATwoSocketsDoubleBandwidth(t *testing.T) {
	// Symmetric load on both sockets: aggregate bandwidth should exceed
	// one socket's run.
	mk := func(n int) []CoreWork {
		w := make([]CoreWork, n)
		for i := range w {
			w[i] = SingleWork(loadFactory(400, memsim.Addr(i)<<32))
		}
		return w
	}
	two := NewNUMASystem(numaParams(2, 2)).Run(mk(4))
	var bwTwo float64
	for _, b := range two.SocketBandwidthBytesPerCyc {
		bwTwo += b
	}
	one := NewSystem(testSystemParams(2)).Run(mk(2))
	if bwTwo <= one.BandwidthBytesPerCyc {
		t.Fatalf("2-socket bandwidth %.2f not above 1-socket %.2f", bwTwo, one.BandwidthBytesPerCyc)
	}
	if len(two.PerCore) != 4 {
		t.Fatalf("per-core results = %d", len(two.PerCore))
	}
}

func TestNUMAPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewNUMASystem(numaParams(0, 1)) },
		func() { NewNUMASystem(numaParams(1, 0)) },
		func() { NewNUMASystem(numaParams(1, 1)).Run(make([]CoreWork, 5)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			f()
		}()
	}
}

func TestNUMADeterministic(t *testing.T) {
	run := func() NUMAResult {
		return NewNUMASystem(numaParams(2, 2)).Run([]CoreWork{
			SingleWork(loadFactory(100, 0)),
			SingleWork(loadFactory(100, 1<<32)),
			SingleWork(loadFactory(100, 2<<32)),
		})
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.AvgLoadLatency != b.AvgLoadLatency {
		t.Fatal("NUMA run not deterministic")
	}
}
