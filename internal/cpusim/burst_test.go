package cpusim

import (
	"reflect"
	"testing"

	"dlrmsim/internal/memsim"
)

// expandBursts rewrites every multi-line op as the equivalent per-line
// sequence — the legacy emission shape burst ops must be bit-identical to.
func expandBursts(ops []Op) []Op {
	out := make([]Op, 0, len(ops))
	for _, op := range ops {
		if op.Lines > 1 && (op.Kind == OpLoad || op.Kind == OpPrefetch) {
			for i := int32(0); i < op.Lines; i++ {
				line := op
				line.Addr = op.Addr + memsim.Addr(i)*memsim.LineSize
				line.Lines = 0
				out = append(out, line)
			}
			continue
		}
		out = append(out, op)
	}
	return out
}

// gatherOps builds an embedding-shaped op sequence: prefetch bursts ahead
// of multi-line row gathers, interleaved with accumulator load/compute/
// store triples — the workload Op.Lines exists for. Rows land across a
// footprint well beyond L2 so the stream mixes hits and misses at every
// level.
func gatherOps(seed uint64, n int, rowLines int32) []Op {
	state := seed
	rnd := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	rowAddr := func() memsim.Addr {
		return memsim.Addr(rnd()%(1<<22)) * memsim.LineSize * memsim.Addr(rowLines)
	}
	var ops []Op
	accBase := memsim.Addr(1 << 33)
	for i := 0; i < n; i++ {
		if i%3 == 0 {
			hint := memsim.KindPrefetchL1
			if i%6 == 0 {
				hint = memsim.KindPrefetchL2
			}
			ops = append(ops, Op{Kind: OpPrefetch, Addr: rowAddr(), Hint: hint, Lines: rowLines})
		}
		ops = append(ops, Op{Kind: OpLoad, Addr: rowAddr(), Lines: rowLines})
		acc := accBase + memsim.Addr(i%4)*512
		ops = append(ops,
			Op{Kind: OpLoad, Addr: acc},
			Op{Kind: OpCompute, Cost: 2.5},
			Op{Kind: OpStore, Addr: acc},
		)
	}
	return ops
}

// hierStats snapshots the counters a timing divergence would perturb.
func hierStats(h *memsim.Hierarchy) [4]memsim.CacheStats {
	return [4]memsim.CacheStats{h.L1.Stats, h.L2.Stats, {}, {}}
}

// TestBurstMatchesPerLineSingleThread pins the Op.Lines contract on one
// context: CoreResult and every cache counter must match per-line
// emission exactly.
func TestBurstMatchesPerLineSingleThread(t *testing.T) {
	for _, hwpf := range []bool{false, true} {
		ops := gatherOps(0x9E3779B97F4A7C15, 400, 8)
		mp := testMemParams(hwpf)
		cb := NewCore(testCoreParams(), memsim.NewHierarchy(mp, memsim.NewShared(mp)))
		cl := NewCore(testCoreParams(), memsim.NewHierarchy(mp, memsim.NewShared(mp)))
		rb := cb.Run(NewSliceStream(ops))
		rl := cl.Run(NewSliceStream(expandBursts(ops)))
		// Bursts count issue per covered line, so even Issued must match.
		if !reflect.DeepEqual(rb, rl) {
			t.Fatalf("hwpf=%v: results diverge:\nburst    %+v\nper-line %+v", hwpf, rb, rl)
		}
		if cb.Hierarchy().Stats != cl.Hierarchy().Stats {
			t.Fatalf("hwpf=%v: hierarchy stats diverge:\nburst    %+v\nper-line %+v",
				hwpf, cb.Hierarchy().Stats, cl.Hierarchy().Stats)
		}
		if hierStats(cb.Hierarchy()) != hierStats(cl.Hierarchy()) {
			t.Fatalf("hwpf=%v: cache stats diverge", hwpf)
		}
	}
}

// TestBurstMatchesPerLineSMT runs a gather thread against a compute-heavy
// sibling: the burst must yield to the sibling between lines exactly
// where per-line decoding would have.
func TestBurstMatchesPerLineSMT(t *testing.T) {
	gather := gatherOps(0xA5A5A5A55A5A5A5A, 300, 8)
	sibling := gatherOps(0xDEADBEEFCAFEF00D, 200, 4)
	mp := testMemParams(true)
	cb := NewCore(testCoreParams(), memsim.NewHierarchy(mp, memsim.NewShared(mp)))
	cl := NewCore(testCoreParams(), memsim.NewHierarchy(mp, memsim.NewShared(mp)))
	rb := cb.Run(NewSliceStream(gather), NewSliceStream(sibling))
	rl := cl.Run(NewSliceStream(expandBursts(gather)), NewSliceStream(expandBursts(sibling)))
	if !reflect.DeepEqual(rb, rl) {
		t.Fatalf("SMT results diverge:\nburst    %+v\nper-line %+v", rb, rl)
	}
	if cb.Hierarchy().Stats != cl.Hierarchy().Stats {
		t.Fatalf("hierarchy stats diverge:\nburst    %+v\nper-line %+v",
			cb.Hierarchy().Stats, cl.Hierarchy().Stats)
	}
}

// TestBurstMatchesPerLineSystem drives multi-core earliest-first
// interleaving: bursts must suspend at runStates' cross-core horizon so
// the shared-LLC access order — and therefore every counter and cycle
// count — matches per-line emission.
func TestBurstMatchesPerLineSystem(t *testing.T) {
	seeds := []uint64{0x123456789ABCDEF, 0xFEDCBA987654321, 0x0F1E2D3C4B5A697,
		0x1111111122222222}
	work := func(expand bool) []CoreWork {
		var ws []CoreWork
		for i, seed := range seeds {
			seed := seed
			nLines := int32(4 + 2*(i%3)) // 4, 6, 8 — staggered burst widths
			mk := func() Stream {
				ops := gatherOps(seed, 250, nLines)
				if expand {
					ops = expandBursts(ops)
				}
				return NewSliceStream(ops)
			}
			if i%2 == 1 {
				// Odd cores run an SMT pair to mix sibling yields with
				// cross-core suspension.
				sib := seed ^ 0xABCDABCDABCDABCD
				mkSib := func() Stream {
					ops := gatherOps(sib, 150, 2)
					if expand {
						ops = expandBursts(ops)
					}
					return NewSliceStream(ops)
				}
				ws = append(ws, CoreWork{Phases: []Phase{
					{Label: "pair", Streams: []StreamFactory{mk, mkSib}},
					{Label: "tail", Streams: []StreamFactory{mk}},
				}})
				continue
			}
			ws = append(ws, SingleWork(mk))
		}
		return ws
	}
	params := SystemParams{Core: testCoreParams(), Mem: testMemParams(true), Cores: len(seeds)}
	rb := NewSystem(params).Run(work(false))
	rl := NewSystem(params).Run(work(true))
	if !reflect.DeepEqual(rb, rl) {
		t.Fatalf("system results diverge:\nburst    %+v\nper-line %+v", rb, rl)
	}
}
