package cpusim

import (
	"testing"

	"dlrmsim/internal/memsim"
)

// TestCoreStepLoopSteadyStateZeroAlloc pins the per-op step path to zero
// heap allocations once the core is warm: Begin reuses the thread store
// and each thread's load FIFO, the fill pools reuse their backing arrays,
// and Step decodes into the core-owned Op scratch so the Stream interface
// call cannot force an escape (DESIGN.md §9). One run replays the full
// stream through Begin/nextThread/Step; Collect is excluded because its
// result slice is a deliberate per-run allocation.
func TestCoreStepLoopSteadyStateZeroAlloc(t *testing.T) {
	ops := benchOps(1 << 10)
	mp := benchMemParams()
	c := NewCore(benchCoreParams(), memsim.NewHierarchy(mp, memsim.NewShared(mp)))
	s := NewSliceStream(ops)
	c.Run(s) // warm-up: grows pools, load FIFOs, and prefetcher state

	avg := testing.AllocsPerRun(5, func() {
		s.pos = 0
		c.Begin(s)
		for {
			th := c.nextThread()
			if th == nil {
				break
			}
			c.Step(th)
		}
	})
	if avg != 0 {
		t.Fatalf("Core step loop allocates %.2f objects per run in steady state; want 0", avg)
	}
}

// TestCoreSMTStepLoopSteadyStateZeroAlloc is the two-context variant: SMT
// arbitration (contention factors, tie-breaking) must not allocate either.
func TestCoreSMTStepLoopSteadyStateZeroAlloc(t *testing.T) {
	ops := benchOps(1 << 10)
	half := len(ops) / 2
	mp := benchMemParams()
	c := NewCore(benchCoreParams(), memsim.NewHierarchy(mp, memsim.NewShared(mp)))
	s0, s1 := NewSliceStream(ops[:half]), NewSliceStream(ops[half:])
	c.Run(s0, s1)

	avg := testing.AllocsPerRun(5, func() {
		s0.pos, s1.pos = 0, 0
		c.Begin(s0, s1)
		for {
			th := c.nextThread()
			if th == nil {
				break
			}
			c.Step(th)
		}
	})
	if avg != 0 {
		t.Fatalf("SMT step loop allocates %.2f objects per run in steady state; want 0", avg)
	}
}
