package eventq

import (
	"math/rand"
	"slices"
	"testing"
)

// ev mirrors the simulators' event shape: a fire time plus tie-break
// fields giving a unique total order.
type ev struct {
	t   float64
	sub int
	gen int
}

func evTime(e ev) float64 { return e.t }

func evLess(a, b ev) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	if a.sub != b.sub {
		return a.sub < b.sub
	}
	return a.gen < b.gen
}

func evCmp(a, b ev) int {
	switch {
	case evLess(a, b):
		return -1
	case evLess(b, a):
		return 1
	default:
		return 0
	}
}

// randomEvents builds n events with clustered times (duplicates
// included) so tie-breaking is exercised.
func randomEvents(rng *rand.Rand, n int) []ev {
	out := make([]ev, n)
	for i := range out {
		out[i] = ev{
			t:   float64(rng.Intn(n/2+1)) * 0.73,
			sub: i,
			gen: rng.Intn(3),
		}
	}
	return out
}

func TestHeapPopsInOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 2, 7, 100, 2048} {
		events := randomEvents(rng, n)
		h := NewHeap(evLess)
		h.Grow(len(events))
		for _, e := range events {
			h.Push(e)
		}
		want := slices.Clone(events)
		slices.SortFunc(want, evCmp)
		got := make([]ev, 0, n)
		for h.Len() > 0 {
			if h.Min() != h.s[0] {
				t.Fatal("Min disagrees with root")
			}
			got = append(got, h.Pop())
		}
		if !slices.Equal(got, want) {
			t.Fatalf("n=%d: heap order diverges from sort", n)
		}
	}
}

func TestHeapInterleavedMonotone(t *testing.T) {
	// Push/pop interleaving with the monotone-time pattern the
	// simulators use: every push's time >= the last popped time.
	rng := rand.New(rand.NewSource(2))
	h := NewHeap(evLess)
	w := NewWheel(0.5, 16, 0, evTime, evLess)
	now := 0.0
	sub := 0
	for step := 0; step < 5000; step++ {
		if rng.Intn(3) > 0 || h.Len() == 0 {
			e := ev{t: now + float64(rng.Intn(40))*0.25, sub: sub}
			sub++
			h.Push(e)
			w.Push(e)
		} else {
			a, b := h.Pop(), w.Pop()
			if a != b {
				t.Fatalf("step %d: heap %+v wheel %+v", step, a, b)
			}
			now = a.t
		}
	}
	for h.Len() > 0 {
		if a, b := h.Pop(), w.Pop(); a != b {
			t.Fatalf("drain: heap %+v wheel %+v", a, b)
		}
	}
	if w.Len() != 0 {
		t.Fatalf("wheel retains %d events", w.Len())
	}
}

func TestWheelMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Deliberately adversarial geometries: width far too small (deep
	// overflow churn), far too large (everything in one bucket), and a
	// single-bucket ring.
	for _, g := range []struct {
		width   float64
		buckets int
	}{{0.01, 4}, {1000, 8}, {0.73, 1}, {0.5, 64}} {
		for _, n := range []int{1, 2, 33, 500} {
			events := randomEvents(rng, n)
			w := NewWheel(g.width, g.buckets, 0, evTime, evLess)
			for _, e := range events {
				w.Push(e)
			}
			want := slices.Clone(events)
			slices.SortFunc(want, evCmp)
			for i, wantE := range want {
				if got := w.Min(); got != wantE {
					t.Fatalf("w=%g b=%d n=%d: Min[%d] = %+v, want %+v", g.width, g.buckets, n, i, got, wantE)
				}
				if got := w.Pop(); got != wantE {
					t.Fatalf("w=%g b=%d n=%d: pop[%d] = %+v, want %+v", g.width, g.buckets, n, i, got, wantE)
				}
			}
			if w.Len() != 0 {
				t.Fatalf("wheel not drained: %d left", w.Len())
			}
		}
	}
}

func TestWheelNegativeAndOffsetTimes(t *testing.T) {
	// Events before the wheel's start time and far beyond its horizon.
	w := NewWheel(1.0, 4, 100, evTime, evLess)
	events := []ev{{t: 99.5, sub: 0}, {t: 100, sub: 1}, {t: 1e6, sub: 2}, {t: 250, sub: 3}}
	for _, e := range events {
		w.Push(e)
	}
	want := slices.Clone(events)
	slices.SortFunc(want, evCmp)
	for _, e := range want {
		if got := w.Pop(); got != e {
			t.Fatalf("pop %+v, want %+v", got, e)
		}
	}
}

func TestWheelMonotoneViolationPanics(t *testing.T) {
	w := NewWheel(1.0, 8, 0, evTime, evLess)
	w.Push(ev{t: 5})
	w.Pop()
	defer func() {
		if recover() == nil {
			t.Fatal("push before last popped time did not panic")
		}
	}()
	w.Push(ev{t: 1})
}

func TestHeapPushPopAllocs(t *testing.T) {
	h := NewHeap(evLess)
	h.Grow(64)
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			h.Push(ev{t: float64(i % 7), sub: i})
		}
		for h.Len() > 0 {
			h.Pop()
		}
	})
	if allocs != 0 {
		t.Fatalf("heap push/pop allocated %.0f times, want 0 (container/heap boxes every element)", allocs)
	}
}

func TestWheelSteadyStateAllocs(t *testing.T) {
	// After warmup, a monotone push/pop cycle reuses bucket storage.
	w := NewWheel(0.5, 32, 0, evTime, evLess)
	now := 0.0
	sub := 0
	cycle := func() {
		for i := 0; i < 8; i++ {
			w.Push(ev{t: now + float64(i)*0.4, sub: sub})
			sub++
		}
		for i := 0; i < 8; i++ {
			now = evTime(w.Pop())
		}
	}
	for i := 0; i < 64; i++ { // warm bucket capacity
		cycle()
	}
	if allocs := testing.AllocsPerRun(100, cycle); allocs != 0 {
		t.Fatalf("steady-state wheel cycle allocated %.0f times, want 0", allocs)
	}
}

func TestNewWheelValidation(t *testing.T) {
	for _, bad := range []func(){
		func() { NewWheel(0, 8, 0, evTime, evLess) },
		func() { NewWheel(1, 0, 0, evTime, evLess) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid geometry did not panic")
				}
			}()
			bad()
		}()
	}
}

// TestWheelResetReuse: a Reset wheel must behave exactly like a fresh
// NewWheel at the new start time — including after a partial drain that
// left events in the ring, the overflow area, and a half-consumed
// in-drain bucket — and steady-state reuse must not allocate.
func TestWheelResetReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	w := NewWheel(0.5, 8, 0, evTime, evLess)
	for round := 0; round < 4; round++ {
		start := float64(round * 1000)
		w.Reset(start)
		events := randomEvents(rng, 200)
		for i := range events {
			events[i].t += start
		}
		for _, e := range events {
			w.Push(e)
		}
		// Drain only half on odd rounds so Reset must clear mid-drain
		// bucket state and a non-empty overflow.
		want := slices.Clone(events)
		slices.SortFunc(want, evCmp)
		n := len(want)
		if round%2 == 1 {
			n /= 2
		}
		for i := 0; i < n; i++ {
			if got := w.Pop(); got != want[i] {
				t.Fatalf("round %d pop[%d] = %+v, want %+v", round, i, got, want[i])
			}
		}
	}
	// After the rounds grew every bucket, a full reuse cycle is
	// allocation-free.
	events := randomEvents(rng, 100)
	allocs := testing.AllocsPerRun(20, func() {
		w.Reset(0)
		for _, e := range events {
			w.Push(e)
		}
		for w.Len() > 0 {
			w.Pop()
		}
	})
	if allocs != 0 {
		t.Fatalf("reused wheel allocated %.1f times per cycle, want 0", allocs)
	}
}

// TestWheelResetClearsMonotoneContract: Reset must forget the popped
// high-water mark, or a rebased wheel would panic on legitimately
// earlier times.
func TestWheelResetClearsMonotoneContract(t *testing.T) {
	w := NewWheel(1.0, 4, 100, evTime, evLess)
	w.Push(ev{t: 500})
	w.Pop()
	w.Reset(0)
	w.Push(ev{t: 1}) // earlier than the popped 500: legal after Reset
	if got := w.Pop(); got.t != 1 {
		t.Fatalf("popped %+v", got)
	}
}
