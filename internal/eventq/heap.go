// Package eventq is the shared event-scheduling core for the
// discrete-event tiers (closed/open-loop cluster, hetsched). It offers
// two priority-queue backends over one contract:
//
//   - Heap[T]: a generic binary min-heap. Unlike container/heap it is
//     monomorphized per element type — Push/Pop move T values directly,
//     with no interface boxing, so pushing a struct does not allocate.
//   - Wheel[T]: a calendar-queue timing wheel for monotone event time,
//     O(1) amortized push/pop when the bucket width matches the event
//     density (see wheel.go).
//
// Both pop in the exact total order of the supplied comparator, so a
// simulator can swap backends without perturbing event order: the
// differential suite in internal/exp pins wheel, heap, and the legacy
// sort/scan paths byte-identical across the experiment registry.
package eventq

// Heap is a binary min-heap ordered by a caller-supplied strict
// comparator. The zero value is not ready; use NewHeap.
type Heap[T any] struct {
	less func(a, b T) bool
	s    []T
}

// NewHeap returns an empty heap ordered by less, which must be a strict
// weak ordering. Simulators pass a total order (every tie broken) so
// pop order is deterministic and backend-independent.
func NewHeap[T any](less func(a, b T) bool) *Heap[T] {
	return &Heap[T]{less: less}
}

// Len returns the number of queued elements.
func (h *Heap[T]) Len() int { return len(h.s) }

// Reset empties the heap, keeping its capacity for reuse.
func (h *Heap[T]) Reset() { h.s = h.s[:0] }

// Grow ensures capacity for n additional elements without reallocation.
func (h *Heap[T]) Grow(n int) {
	if need := len(h.s) + n; need > cap(h.s) {
		s := make([]T, len(h.s), need)
		copy(s, h.s)
		h.s = s
	}
}

// Push adds v. Amortized O(1) append plus O(log n) sift.
func (h *Heap[T]) Push(v T) {
	h.s = append(h.s, v)
	h.up(len(h.s) - 1)
}

// Min returns the least element without removing it. Panics when empty.
func (h *Heap[T]) Min() T { return h.s[0] }

// Pop removes and returns the least element. Panics when empty.
func (h *Heap[T]) Pop() T {
	s := h.s
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	var zero T
	s[n] = zero // release references held by the vacated slot
	h.s = s[:n]
	if n > 1 {
		h.down(0)
	}
	return top
}

func (h *Heap[T]) up(i int) {
	s := h.s
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(s[i], s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *Heap[T]) down(i int) {
	s := h.s
	n := len(s)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && h.less(s[r], s[l]) {
			m = r
		}
		if !h.less(s[m], s[i]) {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
}
