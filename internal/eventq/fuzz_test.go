package eventq

import (
	"encoding/binary"
	"slices"
	"testing"
)

// FuzzEventOrder drives both backends through an arbitrary interleaving
// of pushes and pops decoded from the fuzz input and checks three
// invariants: (1) heap, wheel, and a reference sort agree element-for-
// element, (2) pop order is non-decreasing under the comparator, and
// (3) nothing is lost or duplicated. The decoded schedule respects the
// monotone-time contract (push times are offsets from the last pop), so
// every generated interleaving is one a simulator could produce.
func FuzzEventOrder(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 255, 254, 0, 0, 1, 1})
	f.Add(func() []byte {
		var b []byte
		for i := 0; i < 64; i++ {
			b = append(b, byte(i*37), byte(i))
		}
		return b
	}())
	f.Fuzz(func(t *testing.T, data []byte) {
		// Geometry from the first bytes, schedule from the rest.
		width := 0.25
		buckets := 8
		if len(data) >= 2 {
			width = float64(data[0]%32+1) * 0.125
			buckets = int(data[1]%16) + 1
			data = data[2:]
		}
		h := NewHeap(evLess)
		w := NewWheel(width, buckets, 0, evTime, evLess)
		var pushed, popped []ev
		now := 0.0
		sub := 0
		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i], data[i+1]
			if op%4 == 0 && h.Len() > 0 {
				a, b := h.Pop(), w.Pop()
				if a != b {
					t.Fatalf("pop %d: heap %+v wheel %+v", len(popped), a, b)
				}
				if n := len(popped); n > 0 && evLess(a, popped[n-1]) {
					t.Fatalf("pop order regressed: %+v after %+v", a, popped[n-1])
				}
				popped = append(popped, a)
				now = a.t
			} else {
				e := ev{t: now + float64(arg)*0.2, sub: sub, gen: int(op) % 3}
				sub++
				h.Push(e)
				w.Push(e)
				pushed = append(pushed, e)
			}
		}
		for h.Len() > 0 {
			a, b := h.Pop(), w.Pop()
			if a != b {
				t.Fatalf("drain: heap %+v wheel %+v", a, b)
			}
			popped = append(popped, a)
		}
		if w.Len() != 0 {
			t.Fatalf("wheel retains %d events after heap drained", w.Len())
		}
		// Conservation: popped must be a permutation of pushed — and since
		// the schedule is monotone, exactly the sorted-by-comparator merge
		// of the push batches. Verify against a global reference sort of
		// the pop multiset.
		if len(popped) != len(pushed) {
			t.Fatalf("pushed %d, popped %d", len(pushed), len(popped))
		}
		ref := slices.Clone(pushed)
		slices.SortFunc(ref, evCmp)
		check := slices.Clone(popped)
		slices.SortFunc(check, evCmp)
		if !slices.Equal(ref, check) {
			t.Fatal("popped multiset differs from pushed multiset")
		}
	})
}

// FuzzWheelGeometry pins that pop order is independent of wheel
// geometry: any (width, buckets) pair yields the identical sequence for
// the same event set.
func FuzzWheelGeometry(f *testing.F) {
	f.Add(uint64(1), uint64(2))
	f.Add(uint64(0xDEADBEEF), uint64(0xABCDEF0123))
	f.Fuzz(func(t *testing.T, a, b uint64) {
		var raw [16]byte
		binary.LittleEndian.PutUint64(raw[:8], a)
		binary.LittleEndian.PutUint64(raw[8:], b)
		events := make([]ev, 0, 16)
		for i, c := range raw {
			events = append(events, ev{t: float64(c) * 0.3, sub: i})
		}
		var orders [][]ev
		for _, g := range []struct {
			width   float64
			buckets int
		}{{0.1, 2}, {1, 16}, {500, 3}} {
			w := NewWheel(g.width, g.buckets, 0, evTime, evLess)
			for _, e := range events {
				w.Push(e)
			}
			var order []ev
			for w.Len() > 0 {
				order = append(order, w.Pop())
			}
			orders = append(orders, order)
		}
		for i := 1; i < len(orders); i++ {
			if !slices.Equal(orders[0], orders[i]) {
				t.Fatalf("geometry %d pops a different order", i)
			}
		}
	})
}
