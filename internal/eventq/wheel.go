package eventq

import (
	"math"
	"slices"
)

// Wheel is a calendar-queue timing wheel: a ring of time buckets of
// fixed width, plus an overflow area for events beyond the ring's
// horizon. It assumes MONOTONE insertion time — an event may never be
// pushed with a time earlier than the last popped event's time — which
// every tier here satisfies (an event scheduled at simulation time t
// fires at >= t). Under that contract:
//
//   - Push appends to the event's future bucket unsorted (O(1)), or
//     binary-search-inserts into the in-drain bucket (rare).
//   - A bucket is sorted with the FULL comparator only when the wheel
//     advances into it, so pop order equals the comparator's total
//     order exactly — byte-identical to a heap or a global sort.
//   - Events beyond the horizon (ring span) go to the overflow list and
//     are redistributed one revolution at a time; with a bucket width
//     near the inter-event spacing the overflow stays near-empty and
//     both Push and Pop are O(1) amortized, versus O(log n) for a heap
//     holding the same events.
//
// The zero value is not ready; use NewWheel.
type Wheel[T any] struct {
	time func(T) float64
	less func(a, b T) bool

	width   float64
	origin  float64
	buckets []bucket[T]
	curAbs  int64 // absolute index (since origin) of the in-drain bucket
	ringLen int   // events resident in ring buckets
	overNew []T   // overflow: events at absolute bucket >= horizon
	horizon int64 // first absolute index NOT held by the ring

	maxPopped float64 // high-water mark enforcing the monotone contract
	popped    bool
}

type bucket[T any] struct {
	events []T
	head   int  // consumed prefix of events (in-drain bucket only)
	sorted bool // events[head:] is comparator-sorted
}

// NewWheel returns a wheel of `buckets` slots of `width` time units,
// starting at time start. time extracts an event's fire time; less is
// the full total order (time-primary, all ties broken) that pops obey.
func NewWheel[T any](width float64, buckets int, start float64, time func(T) float64, less func(a, b T) bool) *Wheel[T] {
	if width <= 0 || buckets <= 0 {
		panic("eventq: wheel needs positive width and bucket count")
	}
	return &Wheel[T]{
		time:    time,
		less:    less,
		width:   width,
		origin:  start,
		buckets: make([]bucket[T], buckets),
		horizon: int64(buckets),
	}
}

// Len returns the number of queued events.
func (w *Wheel[T]) Len() int { return w.ringLen + len(w.overNew) }

// Reset empties the wheel and rebases it at time start, keeping every
// bucket's capacity — the arena-reuse hook for per-run (and, in the
// parallel cluster backend, per-partition) wheel recycling. Elements
// are zeroed so a reused wheel retains no references.
func (w *Wheel[T]) Reset(start float64) {
	var zero T
	for i := range w.buckets {
		b := &w.buckets[i]
		for j := range b.events {
			b.events[j] = zero
		}
		b.events = b.events[:0]
		b.head = 0
		b.sorted = false
	}
	for i := range w.overNew {
		w.overNew[i] = zero
	}
	w.overNew = w.overNew[:0]
	w.ringLen = 0
	w.origin = start
	w.curAbs = 0
	w.horizon = int64(len(w.buckets))
	w.maxPopped = 0
	w.popped = false
}

func (w *Wheel[T]) absIndex(t float64) int64 {
	i := int64(math.Floor((t - w.origin) / w.width))
	if i < w.curAbs {
		// Equal-time pushes can land a hair under the in-drain bucket's
		// lower edge through FP rounding; the monotone contract makes the
		// in-drain bucket the only legal home.
		i = w.curAbs
	}
	return i
}

// Push queues v. v's time must be >= the time of the last popped event
// (monotone contract); eventq panics otherwise rather than silently
// misordering the simulation.
func (w *Wheel[T]) Push(v T) {
	t := w.time(v)
	if w.popped && t < w.maxPopped {
		panic("eventq: wheel push violates monotone-time contract")
	}
	abs := w.absIndex(t)
	if abs >= w.horizon {
		w.overNew = append(w.overNew, v)
		return
	}
	b := &w.buckets[abs%int64(len(w.buckets))]
	if abs == w.curAbs && b.sorted {
		// The in-drain bucket stays sorted: insert at the comparator
		// position within the unconsumed tail.
		lo, hi := b.head, len(b.events)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if w.less(b.events[mid], v) {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		b.events = append(b.events, v)
		copy(b.events[lo+1:], b.events[lo:])
		b.events[lo] = v
	} else {
		b.events = append(b.events, v)
	}
	w.ringLen++
}

// Pop removes and returns the least event by the full comparator.
// Panics when empty.
func (w *Wheel[T]) Pop() T {
	b := w.advance()
	v := b.events[b.head]
	var zero T
	b.events[b.head] = zero
	b.head++
	w.ringLen--
	if b.head == len(b.events) {
		b.events = b.events[:0]
		b.head = 0
		b.sorted = false
	}
	w.maxPopped = w.time(v)
	w.popped = true
	return v
}

// Min returns the least event without removing it. Panics when empty.
func (w *Wheel[T]) Min() T {
	b := w.advance()
	return b.events[b.head]
}

// advance moves curAbs to the first non-empty bucket, redistributing
// overflow as revolutions complete, and returns that bucket sorted and
// non-empty. Panics when the wheel is empty.
func (w *Wheel[T]) advance() *bucket[T] {
	if w.Len() == 0 {
		panic("eventq: empty wheel")
	}
	n := int64(len(w.buckets))
	for {
		if w.ringLen == 0 {
			// Ring drained: jump straight to the earliest overflow
			// revolution instead of stepping through empty buckets.
			minAbs := w.absIndex(w.time(w.overNew[0]))
			for _, v := range w.overNew[1:] {
				if a := w.absIndex(w.time(v)); a < minAbs {
					minAbs = a
				}
			}
			w.curAbs = minAbs
			w.horizon = w.curAbs + n
			w.redistribute()
			continue
		}
		b := &w.buckets[w.curAbs%n]
		if b.head < len(b.events) {
			if !b.sorted {
				w.sortBucket(b)
			}
			return b
		}
		w.curAbs++
		if w.curAbs == w.horizon {
			// A full revolution completed: extend the horizon and pull
			// newly-in-range overflow events into the ring.
			w.horizon += n
			w.redistribute()
		}
	}
}

// redistribute moves overflow events whose bucket now falls inside
// [curAbs, horizon) into the ring.
func (w *Wheel[T]) redistribute() {
	kept := w.overNew[:0]
	for _, v := range w.overNew {
		abs := w.absIndex(w.time(v))
		if abs < w.horizon {
			b := &w.buckets[abs%int64(len(w.buckets))]
			b.events = append(b.events, v)
			b.sorted = false
			w.ringLen++
		} else {
			kept = append(kept, v)
		}
	}
	var zero T
	for i := len(kept); i < len(w.overNew); i++ {
		w.overNew[i] = zero
	}
	w.overNew = kept
}

// sortBucket comparator-sorts the bucket's events. Buckets are tiny
// when the width matches the event density (insertion sort); a
// mis-sized or deliberately coarse wheel degrades to one O(k log k)
// sort per bucket, never O(k²). Either path yields the comparator's
// unique total order, so the choice is unobservable.
func (w *Wheel[T]) sortBucket(b *bucket[T]) {
	s := b.events[b.head:]
	if len(s) > 32 {
		slices.SortFunc(s, func(a, b T) int {
			switch {
			case w.less(a, b):
				return -1
			case w.less(b, a):
				return 1
			default:
				return 0
			}
		})
		b.sorted = true
		return
	}
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i
		for j > 0 && w.less(v, s[j-1]) {
			s[j] = s[j-1]
			j--
		}
		s[j] = v
	}
	b.sorted = true
}
