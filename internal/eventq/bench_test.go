package eventq

import (
	"container/heap"
	"testing"
)

// benchEvent mirrors the simulators' event shape: a time plus tie keys.
type benchEvent struct {
	t    float64
	seq  int32
	kind int32
}

func benchLess(a, b benchEvent) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

func benchTime(e benchEvent) float64 { return e.t }

// boxedEventHeap is the container/heap baseline the generic backends
// replace: every Push and Pop moves the element through an `any`
// interface, allocating per scheduled event.
type boxedEventHeap []benchEvent

func (h boxedEventHeap) Len() int           { return len(h) }
func (h boxedEventHeap) Less(i, j int) bool { return benchLess(h[i], h[j]) }
func (h boxedEventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *boxedEventHeap) Push(x any)        { *h = append(*h, x.(benchEvent)) }
func (h *boxedEventHeap) Pop() (popped any) {
	old := *h
	n := len(old) - 1
	popped = old[n]
	*h = old[:n]
	return
}

// benchQueue is the push/pop surface the churn driver needs; all three
// backends satisfy it (the boxed baseline via a tiny adapter).
type benchQueue interface {
	Len() int
	Push(benchEvent)
	Pop() benchEvent
}

type boxedAdapter struct{ h boxedEventHeap }

func (q *boxedAdapter) Len() int          { return q.h.Len() }
func (q *boxedAdapter) Push(e benchEvent) { heap.Push(&q.h, e) }
func (q *boxedAdapter) Pop() benchEvent   { return heap.Pop(&q.h).(benchEvent) }

// churn drives a queue through the simulators' steady-state shape: a
// standing population of pending events, each pop scheduling a short
// burst of near-future followers (a completion arming retries, fills,
// timers). Times are monotone non-decreasing from the popped event, the
// wheel's contract. Each iteration gets a fresh queue: a drained wheel
// keeps its clock, so reuse would push t=0 below the watermark.
func churn(b *testing.B, mk func() benchQueue, events int) {
	b.ReportAllocs()
	b.ResetTimer()
	const standing = 4096 // pending-event population, at-scale serving shape
	for i := 0; i < b.N; i++ {
		q := mk()
		state := uint64(0x9E3779B97F4A7C15)
		seq := int32(0)
		for p := 0; p < standing; p++ {
			q.Push(benchEvent{t: float64(p) * 0.013, seq: seq})
			seq++
		}
		now := 0.0
		for n := 0; n < events; n++ {
			e := q.Pop()
			if e.t > now {
				now = e.t
			}
			if q.Len() < standing {
				state ^= state << 13
				state ^= state >> 7
				state ^= state << 17
				dt := float64(state%1024) / 4096 // 0..0.25 ms ahead
				q.Push(benchEvent{t: now + dt, seq: seq, kind: int32(n)})
				seq++
			}
		}
		for q.Len() > 0 {
			q.Pop()
		}
	}
	b.SetBytes(int64(events))
}

// BenchmarkEventQueue compares the event-core backends on the same
// churn: the boxed container/heap baseline the simulators started with,
// the generic non-boxing heap, and the calendar-queue timing wheel.
func BenchmarkEventQueue(b *testing.B) {
	const events = 1 << 16
	b.Run("boxed", func(b *testing.B) {
		churn(b, func() benchQueue { return &boxedAdapter{} }, events)
	})
	b.Run("heap", func(b *testing.B) {
		churn(b, func() benchQueue { return NewHeap(benchLess) }, events)
	})
	b.Run("wheel", func(b *testing.B) {
		churn(b, func() benchQueue {
			// Width chosen for near-singleton steady-state buckets, the
			// same sizing rule the open-loop copy queue uses.
			return NewWheel(0.001, 4096, 0, benchTime, benchLess)
		}, events)
	})
}
