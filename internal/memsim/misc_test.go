package memsim

import "testing"

func TestLevelAndKindStrings(t *testing.T) {
	want := map[Level]string{LevelL1: "L1D", LevelL2: "L2", LevelL3: "L3", LevelDRAM: "DRAM"}
	for l, s := range want {
		if l.String() != s {
			t.Errorf("Level %d = %q, want %q", l, l.String(), s)
		}
	}
	if Level(99).String() != "invalid" {
		t.Error("bad level not flagged")
	}
	kinds := map[AccessKind]string{
		KindLoad: "load", KindStore: "store",
		KindPrefetchL1: "prefetch.t0", KindPrefetchL2: "prefetch.t1", KindPrefetchL3: "prefetch.t2",
	}
	for k, s := range kinds {
		if k.String() != s {
			t.Errorf("kind %d = %q, want %q", k, k.String(), s)
		}
	}
	if AccessKind(99).String() != "invalid" {
		t.Error("bad kind not flagged")
	}
	if KindLoad.IsPrefetch() || !KindPrefetchL3.IsPrefetch() {
		t.Error("IsPrefetch wrong")
	}
}

func TestAccessorsAndResets(t *testing.T) {
	p := smallParams(true)
	sh := NewShared(p)
	h := NewHierarchy(p, sh)
	if h.Shared() != sh {
		t.Fatal("Shared accessor")
	}
	if h.L1.Config().Name != "L1D" {
		t.Fatal("cache Config accessor")
	}
	d := sh.DRAM
	if d.Config().BaseLatencyCyc != 200 {
		t.Fatal("DRAM Config accessor")
	}
	d.SetUtilization(0.4)
	if d.Utilization() != 0.4 {
		t.Fatal("Utilization accessor")
	}
	d.SetUtilization(-1)
	if d.Utilization() != 0 {
		t.Fatal("negative utilization not clamped")
	}
	d.RecordFill(false)
	d.Reset()
	if d.Stats.LineFills != 0 {
		t.Fatal("DRAM reset")
	}
	h.Access(0, 0x100, KindLoad)
	sh.Reset()
	if sh.L3.Contains(0x100) {
		t.Fatal("shared reset")
	}
	if got := (HierStats{}).AvgLoadLatency(); got != 0 {
		t.Fatalf("idle avg load latency = %g", got)
	}
}

func TestNewDRAMDefaultsAndPanics(t *testing.T) {
	d := NewDRAM(DRAMConfig{BaseLatencyCyc: 100, PeakBandwidthBytesPerCyc: 10})
	if d.Config().QueueSensitivity != 1 {
		t.Fatal("queue sensitivity default")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on zero-latency DRAM")
		}
	}()
	NewDRAM(DRAMConfig{})
}

func TestNewStridePrefetcherDefaults(t *testing.T) {
	p := NewStridePrefetcher(0, 0)
	if p.Degree != 1 || p.TableSize != 16 {
		t.Fatalf("defaults = %d/%d", p.Degree, p.TableSize)
	}
	p.Reset() // must not panic on empty state
}

func TestNextLinePrefetcherReset(t *testing.T) {
	p := NewNextLinePrefetcher(1)
	p.Reset() // stateless; must not panic
	if got := p.OnDemandMiss(0, nil); len(got) != 1 {
		t.Fatal("reset broke the prefetcher")
	}
}

func TestSharedRemoteHoming(t *testing.T) {
	p := smallParams(false)
	local := NewShared(p)
	remote := NewShared(p)
	local.Remote = remote.DRAM
	local.RemotePenaltyCyc = 123
	local.HomeLocal = func(a Addr) bool { return a < 0x1000 }
	// Local line: base latency.
	if got := local.memLatency(0x100); got != 200 {
		t.Fatalf("local latency = %d", got)
	}
	// Remote line: remote DRAM latency + penalty.
	if got := local.memLatency(0x2000); got != 200+123 {
		t.Fatalf("remote latency = %d", got)
	}
	local.recordFill(0x100, false)
	local.recordFill(0x2000, true)
	if local.DRAM.Stats.LineFills != 1 || remote.DRAM.Stats.LineFills != 1 {
		t.Fatalf("fills recorded wrong: local=%d remote=%d",
			local.DRAM.Stats.LineFills, remote.DRAM.Stats.LineFills)
	}
	if remote.DRAM.Stats.PrefetchFills != 1 {
		t.Fatal("remote prefetch fill not counted")
	}
}
