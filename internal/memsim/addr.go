// Package memsim models a CPU memory hierarchy — set-associative LRU
// caches, hardware prefetchers, and a bandwidth-aware DRAM — at cache-line
// granularity. It is functional *and* timed: every line carries the cycle at
// which its fill completes, so a demand load that arrives while a prefetch
// is still in flight observes the residual latency, exactly the effect the
// paper's software-prefetch timeliness study (Fig. 10b) depends on.
//
// The package is deliberately single-threaded: multi-core interleaving is
// orchestrated by package cpusim, which advances per-core streams in
// simulated time and shares one Hierarchy's L3/DRAM among cores.
package memsim

// Addr is a byte address in the simulated physical address space.
type Addr uint64

// LineSize is the cache line size in bytes. All modeled platforms use 64.
const LineSize = 64

// lineShift is log2(LineSize), for index math that shifts instead of divides.
const lineShift = 6

// LineAddr returns the line-aligned address containing a.
func LineAddr(a Addr) Addr { return a &^ (LineSize - 1) }

// Level identifies where in the hierarchy an access was satisfied.
type Level int

// Hierarchy levels, ordered nearest-first.
const (
	LevelL1 Level = iota
	LevelL2
	LevelL3
	LevelDRAM
	numLevels
)

// String returns the conventional name of the level.
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1D"
	case LevelL2:
		return "L2"
	case LevelL3:
		return "L3"
	case LevelDRAM:
		return "DRAM"
	default:
		return "invalid"
	}
}

// AccessKind distinguishes demand traffic from prefetch traffic.
type AccessKind int

// Access kinds. Prefetches specify the level the line should land in,
// mirroring _MM_HINT_T0/T1/T2.
const (
	KindLoad AccessKind = iota
	KindStore
	KindPrefetchL1 // _MM_HINT_T0
	KindPrefetchL2 // _MM_HINT_T1
	KindPrefetchL3 // _MM_HINT_T2
)

// IsPrefetch reports whether the kind is any prefetch hint.
func (k AccessKind) IsPrefetch() bool { return k >= KindPrefetchL1 }

// String names the access kind.
func (k AccessKind) String() string {
	switch k {
	case KindLoad:
		return "load"
	case KindStore:
		return "store"
	case KindPrefetchL1:
		return "prefetch.t0"
	case KindPrefetchL2:
		return "prefetch.t1"
	case KindPrefetchL3:
		return "prefetch.t2"
	default:
		return "invalid"
	}
}

// AccessResult reports where an access hit and what it cost.
type AccessResult struct {
	// Level is the hierarchy level that supplied the data.
	Level Level
	// Latency is the access cost in core cycles, including any residual
	// wait on an in-flight fill.
	Latency int64
	// InFlightHit is true when the line was found still being filled
	// (e.g. a demand load caught up with its prefetch).
	InFlightHit bool
}
