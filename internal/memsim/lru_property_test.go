package memsim

import (
	"testing"
	"testing/quick"
)

// refLRU is a straightforward reference model of a set-associative LRU
// cache: per set, a slice ordered most-recent-first.
type refLRU struct {
	ways int
	sets map[uint64][]uint64
	mask uint64
}

func newRefLRU(sizeBytes int64, ways int) *refLRU {
	numSets := sizeBytes / (LineSize * int64(ways))
	// Round down to a power of two like the real cache.
	p := int64(1)
	for p*2 <= numSets {
		p *= 2
	}
	return &refLRU{ways: ways, sets: map[uint64][]uint64{}, mask: uint64(p - 1)}
}

func (r *refLRU) key(a Addr) (uint64, uint64) {
	la := uint64(LineAddr(a)) / LineSize
	return la & r.mask, la
}

// access touches a line; returns whether it was a hit.
func (r *refLRU) access(a Addr) bool {
	si, line := r.key(a)
	set := r.sets[si]
	for i, l := range set {
		if l == line {
			copy(set[1:i+1], set[:i])
			set[0] = line
			return true
		}
	}
	set = append([]uint64{line}, set...)
	if len(set) > r.ways {
		set = set[:r.ways]
	}
	r.sets[si] = set
	return false
}

// TestCacheMatchesReferenceLRU drives the production cache and the
// reference model with the same random access string and requires
// identical hit/miss behavior on every access.
func TestCacheMatchesReferenceLRU(t *testing.T) {
	f := func(raw []uint16) bool {
		c := NewCache(CacheConfig{Name: "p", SizeBytes: 2048, Ways: 4, LatencyCyc: 1})
		ref := newRefLRU(2048, 4)
		for _, r := range raw {
			a := Addr(r) * LineSize
			_, hit := c.Lookup(a, true, 0)
			if !hit {
				c.Fill(a, 0, false)
			}
			if hit != ref.access(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestCacheHitRateBoundedByCompulsory checks that with demand-fill-only
// operation, misses are at least the number of distinct lines touched.
func TestCacheHitRateBoundedByCompulsory(t *testing.T) {
	f := func(raw []uint8) bool {
		c := NewCache(CacheConfig{Name: "p", SizeBytes: 4096, Ways: 8, LatencyCyc: 1})
		distinct := map[Addr]bool{}
		for _, r := range raw {
			a := Addr(r) * LineSize
			distinct[a] = true
			if _, hit := c.Lookup(a, true, 0); !hit {
				c.Fill(a, 0, false)
			}
		}
		return c.Stats.DemandMisses >= uint64(len(distinct))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestBiggerCacheNeverHitsLess: LRU caches have the stack (inclusion)
// property at equal associativity structure; with full associativity a
// bigger cache's hit count dominates. Use 1-set caches to make both
// fully associative.
func TestBiggerCacheNeverHitsLess(t *testing.T) {
	f := func(raw []uint8) bool {
		small := NewCache(CacheConfig{Name: "s", SizeBytes: 4 * LineSize, Ways: 4, LatencyCyc: 1})
		big := NewCache(CacheConfig{Name: "b", SizeBytes: 16 * LineSize, Ways: 16, LatencyCyc: 1})
		for _, r := range raw {
			a := Addr(r%64) * LineSize
			if _, hit := small.Lookup(a, true, 0); !hit {
				small.Fill(a, 0, false)
			}
			if _, hit := big.Lookup(a, true, 0); !hit {
				big.Fill(a, 0, false)
			}
		}
		return big.Stats.DemandHits >= small.Stats.DemandHits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
