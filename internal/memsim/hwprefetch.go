package memsim

// Hardware prefetchers. Off-the-shelf CPUs ship simple next-line and
// stride/stream engines (the paper cites Intel's four per-core
// prefetchers). They excel on the sequential streams of the MLP stages and
// on the consecutive lines *within* one embedding row, but cannot follow
// the row-to-row indirection — which is why the paper finds toggling them
// nearly irrelevant for the embedding stage (Fig. 10a, "w/o HW-PF").

// HWPrefetcher is the interface the hierarchy drives on every demand miss
// (training) to obtain addresses worth prefetching.
type HWPrefetcher interface {
	// OnDemandMiss observes a demand miss to line address a and returns
	// the line addresses to prefetch (possibly none).
	OnDemandMiss(a Addr) []Addr
	// Reset clears training state.
	Reset()
}

// NextLinePrefetcher fetches the next sequential line on every demand
// miss — the classic L1 "adjacent line" prefetcher.
type NextLinePrefetcher struct {
	// Degree lines are fetched ahead (typically 1-2).
	Degree int
	out    []Addr
}

// NewNextLinePrefetcher returns a next-line prefetcher of the given degree.
func NewNextLinePrefetcher(degree int) *NextLinePrefetcher {
	if degree < 1 {
		degree = 1
	}
	return &NextLinePrefetcher{Degree: degree}
}

// OnDemandMiss returns the next Degree sequential lines.
func (p *NextLinePrefetcher) OnDemandMiss(a Addr) []Addr {
	p.out = p.out[:0]
	for i := 1; i <= p.Degree; i++ {
		p.out = append(p.out, a+Addr(i)*LineSize)
	}
	return p.out
}

// Reset is a no-op: the next-line prefetcher is stateless.
func (p *NextLinePrefetcher) Reset() {}

// StridePrefetcher is a table-based stride detector in the style of Intel's
// L2 streamer: it tracks recent miss addresses per 4 KiB region, and once
// two consecutive misses in a region exhibit the same stride it prefetches
// Degree further strides ahead.
type StridePrefetcher struct {
	// Degree strides are fetched once a stream is confirmed.
	Degree int
	// TableSize bounds the number of concurrently tracked regions.
	TableSize int

	entries map[Addr]*strideEntry
	fifo    []Addr
	out     []Addr
}

type strideEntry struct {
	lastAddr  Addr
	stride    int64
	confirmed bool
}

// NewStridePrefetcher returns a stride prefetcher covering up to tableSize
// concurrent streams.
func NewStridePrefetcher(degree, tableSize int) *StridePrefetcher {
	if degree < 1 {
		degree = 1
	}
	if tableSize < 1 {
		tableSize = 16
	}
	return &StridePrefetcher{
		Degree:    degree,
		TableSize: tableSize,
		entries:   make(map[Addr]*strideEntry, tableSize),
	}
}

const regionShift = 12 // 4 KiB regions, matching page-bounded HW streamers

// OnDemandMiss trains on the miss and returns prefetch candidates.
func (p *StridePrefetcher) OnDemandMiss(a Addr) []Addr {
	p.out = p.out[:0]
	region := a >> regionShift
	e, ok := p.entries[region]
	if !ok {
		if len(p.entries) >= p.TableSize {
			// Evict the oldest tracked region.
			old := p.fifo[0]
			p.fifo = p.fifo[1:]
			delete(p.entries, old)
		}
		e = &strideEntry{lastAddr: a}
		p.entries[region] = e
		p.fifo = append(p.fifo, region)
		return nil
	}
	stride := int64(a) - int64(e.lastAddr)
	if stride != 0 && stride == e.stride {
		e.confirmed = true
	} else {
		e.confirmed = false
	}
	e.stride = stride
	e.lastAddr = a
	if !e.confirmed || stride == 0 {
		return nil
	}
	for i := 1; i <= p.Degree; i++ {
		next := int64(a) + stride*int64(i)
		if next < 0 {
			break
		}
		// HW streamers do not cross the 4 KiB boundary.
		if Addr(next)>>regionShift != region {
			break
		}
		p.out = append(p.out, LineAddr(Addr(next)))
	}
	return p.out
}

// Reset clears all training state.
func (p *StridePrefetcher) Reset() {
	p.entries = make(map[Addr]*strideEntry, p.TableSize)
	p.fifo = p.fifo[:0]
}
