package memsim

// Hardware prefetchers. Off-the-shelf CPUs ship simple next-line and
// stride/stream engines (the paper cites Intel's four per-core
// prefetchers). They excel on the sequential streams of the MLP stages and
// on the consecutive lines *within* one embedding row, but cannot follow
// the row-to-row indirection — which is why the paper finds toggling them
// nearly irrelevant for the embedding stage (Fig. 10a, "w/o HW-PF").

// HWPrefetcher is the interface the hierarchy drives on every demand miss
// (training) to obtain addresses worth prefetching.
type HWPrefetcher interface {
	// OnDemandMiss observes a demand miss to line address a and appends
	// the line addresses worth prefetching (possibly none) to out,
	// returning the extended slice. The caller owns out's backing array,
	// so a steady-state miss stream allocates nothing.
	OnDemandMiss(a Addr, out []Addr) []Addr
	// Reset clears training state.
	Reset()
}

// NextLinePrefetcher fetches the next sequential line on every demand
// miss — the classic L1 "adjacent line" prefetcher.
type NextLinePrefetcher struct {
	// Degree lines are fetched ahead (typically 1-2).
	Degree int
}

// NewNextLinePrefetcher returns a next-line prefetcher of the given degree.
func NewNextLinePrefetcher(degree int) *NextLinePrefetcher {
	if degree < 1 {
		degree = 1
	}
	return &NextLinePrefetcher{Degree: degree}
}

// OnDemandMiss appends the next Degree sequential lines to out.
func (p *NextLinePrefetcher) OnDemandMiss(a Addr, out []Addr) []Addr {
	for i := 1; i <= p.Degree; i++ {
		out = append(out, a+Addr(i)*LineSize)
	}
	return out
}

// Reset is a no-op: the next-line prefetcher is stateless.
func (p *NextLinePrefetcher) Reset() {}

// StridePrefetcher is a table-based stride detector in the style of Intel's
// L2 streamer: it tracks recent miss addresses per 4 KiB region, and once
// two consecutive misses in a region exhibit the same stride it prefetches
// Degree further strides ahead.
//
// The tracking table is a fixed array of TableSize slots plus a ring FIFO
// of region tags for eviction order; only the region→slot map involves the
// allocator, and it stays at TableSize entries, so steady-state training
// is allocation-free.
type StridePrefetcher struct {
	// Degree strides are fetched once a stream is confirmed.
	Degree int
	// TableSize bounds the number of concurrently tracked regions.
	TableSize int

	slots   map[Addr]int32 // region tag -> index into entries
	entries []strideEntry  // TableSize slots
	fifo    []Addr         // ring of region tags, oldest at head
	head    int
	count   int
}

type strideEntry struct {
	lastAddr  Addr
	stride    int64
	confirmed bool
}

// NewStridePrefetcher returns a stride prefetcher covering up to tableSize
// concurrent streams.
func NewStridePrefetcher(degree, tableSize int) *StridePrefetcher {
	if degree < 1 {
		degree = 1
	}
	if tableSize < 1 {
		tableSize = 16
	}
	return &StridePrefetcher{
		Degree:    degree,
		TableSize: tableSize,
		slots:     make(map[Addr]int32, tableSize),
		entries:   make([]strideEntry, tableSize),
		fifo:      make([]Addr, tableSize),
	}
}

const regionShift = 12 // 4 KiB regions, matching page-bounded HW streamers

// OnDemandMiss trains on the miss and appends prefetch candidates to out.
func (p *StridePrefetcher) OnDemandMiss(a Addr, out []Addr) []Addr {
	region := a >> regionShift
	si, ok := p.slots[region]
	if !ok {
		if p.count >= p.TableSize {
			// Evict the oldest tracked region and reuse its slot.
			old := p.fifo[p.head]
			si = p.slots[old]
			delete(p.slots, old)
			p.fifo[p.head] = region
			p.head++
			if p.head == p.TableSize {
				p.head = 0
			}
		} else {
			pos := p.head + p.count
			if pos >= p.TableSize {
				pos -= p.TableSize
			}
			p.fifo[pos] = region
			si = int32(p.count)
			p.count++
		}
		p.slots[region] = si
		p.entries[si] = strideEntry{lastAddr: a}
		return out
	}
	e := &p.entries[si]
	stride := int64(a) - int64(e.lastAddr)
	e.confirmed = stride != 0 && stride == e.stride
	e.stride = stride
	e.lastAddr = a
	if !e.confirmed || stride == 0 {
		return out
	}
	for i := 1; i <= p.Degree; i++ {
		next := int64(a) + stride*int64(i)
		if next < 0 {
			break
		}
		// HW streamers do not cross the 4 KiB boundary.
		if Addr(next)>>regionShift != region {
			break
		}
		out = append(out, LineAddr(Addr(next)))
	}
	return out
}

// Reset clears all training state.
func (p *StridePrefetcher) Reset() {
	clear(p.slots)
	p.head = 0
	p.count = 0
}
