package memsim

import "testing"

// benchParams is a Cascade-Lake-shaped hierarchy with a reduced LLC so the
// benchmark's working set exercises every level without an 18 MB Reset
// dominating setup.
func benchParams() MemParams {
	return MemParams{
		L1:         CacheConfig{Name: "L1D", SizeBytes: 32 << 10, Ways: 8, LatencyCyc: 5},
		L2:         CacheConfig{Name: "L2", SizeBytes: 1 << 20, Ways: 16, LatencyCyc: 14},
		L3:         CacheConfig{Name: "L3", SizeBytes: 8 << 20, Ways: 11, LatencyCyc: 50},
		DRAM:       DRAMConfig{BaseLatencyCyc: 220, PeakBandwidthBytesPerCyc: 58, QueueSensitivity: 1},
		HWPrefetch: true,
	}
}

// benchAddrs builds a deterministic access string shaped like the embedding
// stage: short sequential bursts (the within-row pooling walk) separated by
// pseudo-random jumps between rows (the row-to-row indirection).
func benchAddrs(n int) []Addr {
	addrs := make([]Addr, n)
	state := uint64(0x9E3779B97F4A7C15)
	var row Addr
	for i := range addrs {
		if i%8 == 0 {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			row = Addr(state % (1 << 26)) // 64 MB footprint: misses at every level
		}
		addrs[i] = LineAddr(row) + Addr(i%8)*LineSize
	}
	return addrs
}

// BenchmarkHierarchyAccess measures the full demand path — L1→L2→L3→DRAM
// probes, inclusive fills, and hardware-prefetcher training — per access.
func BenchmarkHierarchyAccess(b *testing.B) {
	p := benchParams()
	sh := NewShared(p)
	h := NewHierarchy(p, sh)
	addrs := benchAddrs(1 << 14)
	mask := len(addrs) - 1
	b.ReportAllocs()
	b.ResetTimer()
	var now int64
	for i := 0; i < b.N; i++ {
		h.Access(now, addrs[i&mask], KindLoad)
		now += 4
	}
}

// BenchmarkCacheLookupHit isolates the tag-scan hit path of one level.
func BenchmarkCacheLookupHit(b *testing.B) {
	c := NewCache(CacheConfig{Name: "L2", SizeBytes: 1 << 20, Ways: 16, LatencyCyc: 14})
	addrs := make([]Addr, 256)
	for i := range addrs {
		addrs[i] = Addr(i) * LineSize
		c.Fill(addrs[i], 0, false)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(addrs[i&255], true, int64(i))
	}
}

// BenchmarkCacheFillEvict isolates the victim-selection path: every fill
// lands in a full set and evicts its LRU line.
func BenchmarkCacheFillEvict(b *testing.B) {
	c := NewCache(CacheConfig{Name: "L1D", SizeBytes: 32 << 10, Ways: 8, LatencyCyc: 5})
	addrs := benchAddrs(1 << 12)
	mask := len(addrs) - 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Fill(addrs[i&mask], int64(i), false)
	}
}
