package memsim

import (
	"testing"
)

// batchAddrs builds a gather-shaped access string: rows of `run`
// consecutive addresses (several per line, lines back to back)
// separated by pseudo-random row jumps — the workload AccessBatch's
// same-line fast path is built for.
func batchAddrs(n, run int) []Addr {
	addrs := make([]Addr, n)
	state := uint64(0x2545F4914F6CDD1D)
	var row Addr
	for i := range addrs {
		if i%run == 0 {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			row = Addr(state % (1 << 24))
		}
		addrs[i] = row + Addr(i%run)*16 // 4 accesses per 64 B line
	}
	return addrs
}

// TestAccessBatchMatchesSequential pins AccessBatch's contract: identical
// results, identical hierarchy and per-level counters, identical cache
// state to per-element Access — across loads, stores, and prefetch
// batches, with hardware prefetchers on.
func TestAccessBatchMatchesSequential(t *testing.T) {
	p := benchParams()
	shSeq, shBat := NewShared(p), NewShared(p)
	seq := NewHierarchy(p, shSeq)
	bat := NewHierarchy(p, shBat)

	kinds := []AccessKind{KindLoad, KindStore, KindLoad, KindPrefetchL1, KindLoad}
	var out []AccessResult
	for round, kind := range kinds {
		addrs := batchAddrs(2048, 2+round*3)
		var now int64 = int64(round) * 1000

		want := make([]AccessResult, 0, len(addrs))
		for _, a := range addrs {
			want = append(want, seq.Access(now, a, kind))
		}
		out = bat.AccessBatch(now, addrs, kind, out[:0])

		if len(out) != len(want) {
			t.Fatalf("round %d: %d results, want %d", round, len(out), len(want))
		}
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("round %d addr %d (%#x): batch %+v, sequential %+v",
					round, i, addrs[i], out[i], want[i])
			}
		}
	}

	if seq.Stats != bat.Stats {
		t.Errorf("hierarchy stats diverge:\nseq   %+v\nbatch %+v", seq.Stats, bat.Stats)
	}
	for _, c := range []struct {
		name     string
		seq, bat *Cache
	}{{"L1", seq.L1, bat.L1}, {"L2", seq.L2, bat.L2}, {"L3", shSeq.L3, shBat.L3}} {
		if c.seq.Stats != c.bat.Stats {
			t.Errorf("%s stats diverge:\nseq   %+v\nbatch %+v", c.name, c.seq.Stats, c.bat.Stats)
		}
	}
	// Spot-check residency agreement on the last round's lines.
	for _, a := range batchAddrs(2048, 14) {
		if seq.L1.Contains(a) != bat.L1.Contains(a) || seq.L2.Contains(a) != bat.L2.Contains(a) {
			t.Fatalf("cache contents diverge at %#x", a)
		}
	}
}

// TestAccessBatchAllocs pins the batch path to zero allocations when the
// caller provides capacity — the point of batching is less per-access
// work, not a new source of garbage.
func TestAccessBatchAllocs(t *testing.T) {
	p := benchParams()
	h := NewHierarchy(p, NewShared(p))
	addrs := batchAddrs(512, 8)
	out := make([]AccessResult, 0, len(addrs))
	var now int64
	if allocs := testing.AllocsPerRun(20, func() {
		out = h.AccessBatch(now, addrs, KindLoad, out[:0])
		now += 100
	}); allocs != 0 {
		t.Errorf("AccessBatch allocates %.1f per batch; want 0", allocs)
	}
}

// BenchmarkAccessBatch measures the batched gather walk against
// BenchmarkHierarchyAccess's per-element baseline shape; the same-line
// fast path should win on any run length > 1.
func BenchmarkAccessBatch(b *testing.B) {
	p := benchParams()
	h := NewHierarchy(p, NewShared(p))
	addrs := batchAddrs(1<<13, 8)
	out := make([]AccessResult, 0, len(addrs))
	b.ReportAllocs()
	b.ResetTimer()
	var now int64
	for i := 0; i < b.N; i++ {
		out = h.AccessBatch(now, addrs, KindLoad, out[:0])
		now += 1000
	}
	b.SetBytes(int64(len(addrs)))
}

// BenchmarkAccessSequential is the per-element control for
// BenchmarkAccessBatch on the identical access string.
func BenchmarkAccessSequential(b *testing.B) {
	p := benchParams()
	h := NewHierarchy(p, NewShared(p))
	addrs := batchAddrs(1<<13, 8)
	b.ReportAllocs()
	b.ResetTimer()
	var now int64
	for i := 0; i < b.N; i++ {
		for _, a := range addrs {
			h.Access(now, a, KindLoad)
		}
		now += 1000
	}
	b.SetBytes(int64(len(addrs)))
}
